package optimizer

import (
	"math"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/rng"
)

func testCatalog() *catalog.Catalog {
	c := catalog.New("test")
	c.AddTable(catalog.Table{Name: "big", Rows: 1_000_000, RowBytes: 100})
	c.AddTable(catalog.Table{Name: "small", Rows: 1_000, RowBytes: 100})
	c.AddIndex(catalog.Index{Name: "big_pk", Table: "big", Columns: []string{"id"}, Clustering: true})
	c.AddIndex(catalog.Index{Name: "big_sec", Table: "big", Columns: []string{"x"}})
	c.AddIndex(catalog.Index{Name: "small_pk", Table: "small", Columns: []string{"id"}, Clustering: true})
	return c
}

func newOpt() *Optimizer { return New(DefaultModel(), testCatalog()) }

func TestTableScanCost(t *testing.T) {
	o := newOpt()
	c := o.Cost(&TableScan{Table: "big", Selectivity: 0.5})
	m := o.Model
	wantCPU := 1_000_000 * m.CPURow
	if !close(c.CPUSeconds, wantCPU) {
		t.Fatalf("cpu = %v, want %v", c.CPUSeconds, wantCPU)
	}
	if c.Rows != 500_000 {
		t.Fatalf("rows = %v, want 500000 after selectivity", c.Rows)
	}
	if c.IOSeconds <= 0 || c.Pages <= 0 {
		t.Fatal("scan must read pages")
	}
}

func TestTableScanDefaultSelectivity(t *testing.T) {
	o := newOpt()
	c := o.Cost(&TableScan{Table: "big"})
	if c.Rows != 1_000_000 {
		t.Fatalf("unspecified selectivity should emit everything, got %v", c.Rows)
	}
}

func TestClusteredIndexScanCheaperThanUnclustered(t *testing.T) {
	o := newOpt()
	cl := o.Cost(&IndexScan{Index: "big_pk", Selectivity: 0.1})
	uncl := o.Cost(&IndexScan{Index: "big_sec", Selectivity: 0.1})
	if cl.IOSeconds >= uncl.IOSeconds {
		t.Fatalf("clustered I/O %v should be cheaper than unclustered %v", cl.IOSeconds, uncl.IOSeconds)
	}
}

func TestSmallIndexScanCheaperThanFullScan(t *testing.T) {
	o := newOpt()
	scan := o.Cost(&TableScan{Table: "big"})
	ix := o.Cost(&IndexScan{Index: "big_pk", Selectivity: 0.001})
	if o.Model.Timerons(ix) >= o.Model.Timerons(scan) {
		t.Fatalf("selective index scan %v should beat full scan %v",
			o.Model.Timerons(ix), o.Model.Timerons(scan))
	}
}

func TestFilterReducesRowsAddsCPU(t *testing.T) {
	o := newOpt()
	base := o.Cost(&TableScan{Table: "big"})
	f := o.Cost(&Filter{Input: &TableScan{Table: "big"}, Selectivity: 0.25})
	if f.Rows != base.Rows*0.25 {
		t.Fatalf("filtered rows = %v", f.Rows)
	}
	if f.CPUSeconds <= base.CPUSeconds {
		t.Fatal("filter must add CPU")
	}
	if f.IOSeconds != base.IOSeconds {
		t.Fatal("filter must not add I/O")
	}
}

func TestHashJoinFanoutAndSelectivity(t *testing.T) {
	o := newOpt()
	build := &TableScan{Table: "small"}
	probe := &TableScan{Table: "big"}
	fan := o.Cost(&HashJoin{Build: build, Probe: probe, Fanout: 2})
	if fan.Rows != 2_000_000 {
		t.Fatalf("fanout rows = %v, want 2M", fan.Rows)
	}
	sel := o.Cost(&HashJoin{Build: build, Probe: probe, JoinSelectivity: 1e-6})
	want := 1000.0 * 1_000_000 * 1e-6
	if !close(sel.Rows, want) {
		t.Fatalf("selectivity rows = %v, want %v", sel.Rows, want)
	}
}

func TestHashJoinSpill(t *testing.T) {
	o := newOpt()
	inMem := o.Cost(&HashJoin{
		Build:  &TableScan{Table: "small"},
		Probe:  &TableScan{Table: "big"},
		Fanout: 1,
	})
	spilled := o.Cost(&HashJoin{
		Build:  &TableScan{Table: "big"}, // 1M rows > SortMemRows
		Probe:  &TableScan{Table: "small"},
		Fanout: 1,
	})
	scanIO := o.Cost(&TableScan{Table: "big"}).IOSeconds +
		o.Cost(&TableScan{Table: "small"}).IOSeconds
	if !close(inMem.IOSeconds, scanIO) {
		t.Fatal("in-memory join should add no I/O")
	}
	if spilled.IOSeconds <= scanIO {
		t.Fatal("oversized build side must spill")
	}
}

func TestSortCosts(t *testing.T) {
	o := newOpt()
	small := o.Cost(&Sort{Input: &TableScan{Table: "small"}})
	big := o.Cost(&Sort{Input: &TableScan{Table: "big"}})
	if small.IOSeconds != o.Cost(&TableScan{Table: "small"}).IOSeconds {
		t.Fatal("small sort should stay in memory")
	}
	if big.IOSeconds <= o.Cost(&TableScan{Table: "big"}).IOSeconds {
		t.Fatal("big sort must spill")
	}
	if big.CPUSeconds <= o.Cost(&TableScan{Table: "big"}).CPUSeconds {
		t.Fatal("sort must add comparisons")
	}
}

func TestGroupAggCapsGroups(t *testing.T) {
	o := newOpt()
	c := o.Cost(&GroupAgg{Input: &TableScan{Table: "small"}, Groups: 1_000_000})
	if c.Rows != 1000 {
		t.Fatalf("groups capped at input rows: %v", c.Rows)
	}
	c = o.Cost(&GroupAgg{Input: &TableScan{Table: "big"}, Groups: 7})
	if c.Rows != 7 {
		t.Fatalf("rows = %v, want 7 groups", c.Rows)
	}
}

func TestNLJoinScalesWithOuter(t *testing.T) {
	o := newOpt()
	one := o.Cost(&NLJoin{Outer: &TableScan{Table: "small", Selectivity: 0.001}, InnerIndex: "big_sec", MatchRows: 3})
	many := o.Cost(&NLJoin{Outer: &TableScan{Table: "small"}, InnerIndex: "big_sec", MatchRows: 3})
	if many.IOSeconds <= one.IOSeconds {
		t.Fatal("more probes must cost more I/O")
	}
	if many.Rows != 3000 {
		t.Fatalf("rows = %v, want outer*match", many.Rows)
	}
}

func TestIndexLookupIsCheap(t *testing.T) {
	o := newOpt()
	c := o.Cost(&IndexLookup{Index: "big_pk", Rows: 1})
	if ts := o.Model.Timerons(c); ts > 1 {
		t.Fatalf("point lookup = %v timerons, should be tiny", ts)
	}
	if c.CPUSeconds <= 0 {
		t.Fatal("lookup needs CPU")
	}
}

func TestUpdateAndInsertForceLog(t *testing.T) {
	o := newOpt()
	u := o.Cost(&Update{Input: &IndexLookup{Index: "big_pk", Rows: 1}, Rows: 1})
	if u.IOSeconds < o.Model.LogWriteIO {
		t.Fatal("update must force a log write")
	}
	i := o.Cost(&Insert{Table: "small", Rows: 5})
	if i.IOSeconds < o.Model.LogWriteIO {
		t.Fatal("insert must force a log write")
	}
}

func TestBatchSumsAndRepeats(t *testing.T) {
	o := newOpt()
	one := o.Cost(&Batch{Ops: []Op{&IndexLookup{Index: "big_pk", Rows: 1}}})
	ten := o.Cost(&Batch{Ops: []Op{&IndexLookup{Index: "big_pk", Rows: 1}}, Repeat: 10})
	if !close(ten.CPUSeconds, 10*one.CPUSeconds) {
		t.Fatalf("repeat: %v vs 10x %v", ten.CPUSeconds, one.CPUSeconds)
	}
	// Per-statement overhead must be charged once per op.
	two := o.Cost(&Batch{Ops: []Op{
		&IndexLookup{Index: "big_pk", Rows: 1},
		&IndexLookup{Index: "big_pk", Rows: 1},
	}})
	if two.CPUSeconds <= 2*one.CPUSeconds-o.Model.StmtOverheadCPU/2 && o.Model.StmtOverheadCPU > 0 {
		t.Fatal("expected per-statement overhead")
	}
}

func TestEstimateNoiseOnlyAffectsEstimate(t *testing.T) {
	o := newOpt()
	src := rng.New(5)
	plan := &TableScan{Table: "big"}
	est := o.Estimate(plan, src)
	truth := o.Cost(plan)
	if est.True != truth {
		t.Fatal("true cost must be noise-free")
	}
	diff := false
	for i := 0; i < 20 && !diff; i++ {
		e := o.Estimate(plan, src)
		if !close(e.Est.CPUSeconds, truth.CPUSeconds) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("estimates never deviated from truth despite noise")
	}
}

func TestEstimateWithoutNoiseDeterministic(t *testing.T) {
	m := DefaultModel()
	m.EstimateSigma = 0
	o := New(m, testCatalog())
	plan := &TableScan{Table: "big"}
	e := o.Estimate(plan, rng.New(1))
	if e.Est != e.True {
		t.Fatal("sigma 0 must yield exact estimates")
	}
	if e.Timerons != m.Timerons(e.True) {
		t.Fatal("timerons mismatch")
	}
}

func TestEstimateNoiseIsUnbiasedInMedian(t *testing.T) {
	o := newOpt()
	src := rng.New(77)
	plan := &TableScan{Table: "big"}
	truth := o.Cost(plan).CPUSeconds
	above := 0
	n := 2000
	for i := 0; i < n; i++ {
		if o.Estimate(plan, src).Est.CPUSeconds > truth {
			above++
		}
	}
	frac := float64(above) / float64(n)
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("noise median biased: %v above truth", frac)
	}
}

func TestParallelismByCost(t *testing.T) {
	if p := parallelism(100); p != 1 {
		t.Fatalf("tiny query parallelism = %d, want 1", p)
	}
	if p := parallelism(5000); p != 2 {
		t.Fatalf("large query parallelism = %d, want 2", p)
	}
}

func TestExplainRendersTree(t *testing.T) {
	o := newOpt()
	plan := &HashJoin{
		Build:  &TableScan{Table: "small"},
		Probe:  &Filter{Input: &TableScan{Table: "big"}, Selectivity: 0.5},
		Fanout: 1,
	}
	out := o.Explain(plan)
	for _, want := range []string{"HSJOIN", "TBSCAN(small)", "FILTER", "TBSCAN(big)", "timerons"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	// Children must be indented deeper than the root.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("explain should have 4 nodes, got %d", len(lines))
	}
	if strings.HasPrefix(lines[1], strings.TrimLeft(lines[0], " ")) {
		t.Fatal("children not indented")
	}
}

func TestUnknownObjectsPanic(t *testing.T) {
	o := newOpt()
	for _, plan := range []Op{
		&TableScan{Table: "nope"},
		&IndexScan{Index: "nope"},
		&IndexLookup{Index: "nope"},
		&NLJoin{Outer: &TableScan{Table: "small"}, InnerIndex: "nope"},
		&Insert{Table: "nope"},
	} {
		plan := plan
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%T with unknown object did not panic", plan)
				}
			}()
			o.Cost(plan)
		}()
	}
}

func TestCostMonotoneInSelectivity(t *testing.T) {
	o := newOpt()
	prev := -1.0
	for sel := 0.1; sel <= 1.0; sel += 0.1 {
		c := o.Model.Timerons(o.Cost(&IndexScan{Index: "big_pk", Selectivity: sel}))
		if c < prev {
			t.Fatalf("cost decreased with selectivity at %v", sel)
		}
		prev = c
	}
}

func TestTimeronsLinearInDemands(t *testing.T) {
	m := DefaultModel()
	a := Cost{CPUSeconds: 1, IOSeconds: 0}
	b := Cost{CPUSeconds: 0, IOSeconds: 1}
	if !close(m.Timerons(a), m.TimeronPerCPUSec) || !close(m.Timerons(b), m.TimeronPerIOSec) {
		t.Fatal("timeron weights wrong")
	}
	sum := Cost{CPUSeconds: 1, IOSeconds: 1}
	if !close(m.Timerons(sum), m.TimeronPerCPUSec+m.TimeronPerIOSec) {
		t.Fatal("timerons not additive")
	}
}

func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
