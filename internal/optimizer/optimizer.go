// Package optimizer models the part of a DBMS query optimizer the paper's
// controller consumes: it turns an access plan against catalog statistics
// into estimated CPU and I/O service demands and a single scalar cost in
// *timerons* — DB2's "generic cost measure used by the optimizer to express
// the combined resource usage to execute a query".
//
// Two views of every plan exist:
//
//   - the *true* resource demand, which drives the simulated engine, and
//   - the *estimate*, which is the true demand perturbed by estimation
//     noise and is the only thing the controller ever sees. The paper
//     notes that "cost-based resource allocation is somehow inaccurate";
//     the noise models that inaccuracy and is ablatable.
package optimizer

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/rng"
)

// Cost accumulates the estimated resources for a (sub)plan.
type Cost struct {
	CPUSeconds float64 // CPU service demand with one dedicated CPU
	IOSeconds  float64 // I/O service demand with one dedicated disk stream
	Rows       float64 // output cardinality
	Pages      float64 // pages read or written
}

// Add returns the sum of two costs, keeping the receiver's Rows.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		CPUSeconds: c.CPUSeconds + o.CPUSeconds,
		IOSeconds:  c.IOSeconds + o.IOSeconds,
		Rows:       c.Rows,
		Pages:      c.Pages + o.Pages,
	}
}

// Model holds the cost-model coefficients. All times are seconds; the
// defaults approximate the paper's testbed (dual 1 GHz CPUs, SCSI disk
// array with prefetch).
type Model struct {
	// SeqPageIO is the time to read one page sequentially.
	SeqPageIO float64
	// RandPageIO is the time to read one page with a random seek.
	RandPageIO float64
	// CPURow is the CPU time to process one row through a simple operator.
	CPURow float64
	// CPUHashRow is the CPU time to hash/probe one row.
	CPUHashRow float64
	// CPUCompare is the CPU time for one sort comparison.
	CPUCompare float64
	// SortMemRows is the number of rows that sort in memory; larger inputs
	// spill and pay extra I/O.
	SortMemRows float64
	// LogWriteIO is the I/O time to force one log write (transactions).
	LogWriteIO float64
	// StmtOverheadCPU is the per-statement CPU overhead (parse, bind,
	// agent dispatch) charged for each statement in a Batch — significant
	// for multi-statement OLTP transactions, negligible for single long
	// DSS queries.
	StmtOverheadCPU float64
	// TimeronPerCPUSec and TimeronPerIOSec convert service demands into
	// the scalar timeron cost.
	TimeronPerCPUSec float64
	TimeronPerIOSec  float64
	// EstimateSigma is the log-normal sigma of estimation noise applied
	// to the optimizer's cost estimate (0 disables noise).
	EstimateSigma float64
}

// DefaultModel returns coefficients calibrated so that the paper's
// workload spans roughly 100-25,000 timerons for TPC-H-like queries and
// ~1 timeron for TPC-C-like transactions, with a system cost-limit knee
// near 30,000 timerons (see EXPERIMENTS.md).
func DefaultModel() Model {
	return Model{
		SeqPageIO:        0.0002,
		RandPageIO:       0.004,
		CPURow:           3e-6,
		CPUHashRow:       5.5e-6,
		CPUCompare:       0.7e-6,
		SortMemRows:      200_000,
		LogWriteIO:       0.0005,
		StmtOverheadCPU:  0.0012,
		TimeronPerCPUSec: 160,
		TimeronPerIOSec:  43,
		EstimateSigma:    0.15,
	}
}

// Timerons converts a cost into the scalar timeron measure.
func (m Model) Timerons(c Cost) float64 {
	return c.CPUSeconds*m.TimeronPerCPUSec + c.IOSeconds*m.TimeronPerIOSec
}

// Op is a node in an access plan.
type Op interface {
	// cost computes the cumulative cost of the subtree rooted here.
	cost(m Model, cat *catalog.Catalog) Cost
	// String names the operator for plan rendering.
	String() string
	// Children returns the operator's inputs.
	Children() []Op
}

// TableScan reads an entire table sequentially, emitting Selectivity of
// its rows.
type TableScan struct {
	Table       string
	Selectivity float64
}

func (o *TableScan) String() string { return fmt.Sprintf("TBSCAN(%s)", o.Table) }

// Children implements Op.
func (o *TableScan) Children() []Op { return nil }

func (o *TableScan) cost(m Model, cat *catalog.Catalog) Cost {
	t := cat.MustTable(o.Table)
	sel := clampSel(o.Selectivity)
	return Cost{
		CPUSeconds: float64(t.Rows) * m.CPURow,
		IOSeconds:  float64(t.Pages) * m.SeqPageIO,
		Rows:       float64(t.Rows) * sel,
		Pages:      float64(t.Pages),
	}
}

// IndexScan reads Selectivity of a table through an index. Clustered
// indexes touch contiguous data pages; unclustered ones pay a random read
// per qualifying row (capped at the table size).
type IndexScan struct {
	Index       string
	Selectivity float64
}

func (o *IndexScan) String() string { return fmt.Sprintf("IXSCAN(%s)", o.Index) }

// Children implements Op.
func (o *IndexScan) Children() []Op { return nil }

func (o *IndexScan) cost(m Model, cat *catalog.Catalog) Cost {
	ix, ok := cat.Index(o.Index)
	if !ok {
		panic(fmt.Sprintf("optimizer: unknown index %q", o.Index))
	}
	t := cat.MustTable(ix.Table)
	sel := clampSel(o.Selectivity)
	rows := float64(t.Rows) * sel
	leaf := float64(ix.LeafPages)*sel + float64(ix.Levels)
	var dataIO, dataPages float64
	if ix.Clustering {
		dataPages = float64(t.Pages) * sel
		dataIO = dataPages * m.SeqPageIO
	} else {
		dataPages = math.Min(rows, float64(t.Pages))
		dataIO = dataPages * m.RandPageIO
	}
	return Cost{
		CPUSeconds: rows * m.CPURow,
		IOSeconds:  leaf*m.SeqPageIO + dataIO,
		Rows:       rows,
		Pages:      leaf + dataPages,
	}
}

// Filter applies a predicate, keeping Selectivity of its input's rows.
type Filter struct {
	Input       Op
	Selectivity float64
}

func (o *Filter) String() string { return "FILTER" }

// Children implements Op.
func (o *Filter) Children() []Op { return []Op{o.Input} }

func (o *Filter) cost(m Model, cat *catalog.Catalog) Cost {
	in := o.Input.cost(m, cat)
	c := in
	c.CPUSeconds += in.Rows * m.CPURow
	c.Rows = in.Rows * clampSel(o.Selectivity)
	return c
}

// HashJoin joins two inputs with a hash table built on the smaller side.
// JoinSelectivity scales the Cartesian cardinality; Fanout, when non-zero,
// instead sets output rows = probe rows * Fanout (the common key-FK case).
type HashJoin struct {
	Build, Probe    Op
	JoinSelectivity float64
	Fanout          float64
}

func (o *HashJoin) String() string { return "HSJOIN" }

// Children implements Op.
func (o *HashJoin) Children() []Op { return []Op{o.Build, o.Probe} }

func (o *HashJoin) cost(m Model, cat *catalog.Catalog) Cost {
	b := o.Build.cost(m, cat)
	p := o.Probe.cost(m, cat)
	c := b.Add(p)
	c.CPUSeconds += (b.Rows + p.Rows) * m.CPUHashRow
	// Spill: when the build side exceeds sort memory, write+read it once.
	if b.Rows > m.SortMemRows {
		spillPages := b.Rows * 64 / catalog.PageSize // ~64 B spilled per row
		c.IOSeconds += 2 * spillPages * m.SeqPageIO
		c.Pages += 2 * spillPages
	}
	if o.Fanout > 0 {
		c.Rows = p.Rows * o.Fanout
	} else {
		c.Rows = b.Rows * p.Rows * clampSel(o.JoinSelectivity)
	}
	return c
}

// NLJoin probes an index once per outer row (index nested-loop join).
type NLJoin struct {
	Outer      Op
	InnerIndex string
	// MatchRows is the average number of inner rows per outer row.
	MatchRows float64
}

func (o *NLJoin) String() string { return fmt.Sprintf("NLJOIN(%s)", o.InnerIndex) }

// Children implements Op.
func (o *NLJoin) Children() []Op { return []Op{o.Outer} }

func (o *NLJoin) cost(m Model, cat *catalog.Catalog) Cost {
	out := o.Outer.cost(m, cat)
	ix, ok := cat.Index(o.InnerIndex)
	if !ok {
		panic(fmt.Sprintf("optimizer: unknown index %q", o.InnerIndex))
	}
	c := out
	probes := out.Rows
	// Each probe descends the B-tree; assume interior levels cached, leaf
	// plus one data page paid as random I/O with a warm-cache discount.
	const cacheHit = 0.7
	perProbeIO := (1 - cacheHit) * 2 * m.RandPageIO
	c.CPUSeconds += probes * float64(ix.Levels) * 4 * m.CPURow
	c.IOSeconds += probes * perProbeIO
	c.Pages += probes * 2 * (1 - cacheHit)
	match := o.MatchRows
	if match <= 0 {
		match = 1
	}
	c.Rows = probes * match
	return c
}

// Sort orders its input, spilling to disk beyond Model.SortMemRows.
type Sort struct {
	Input Op
}

func (o *Sort) String() string { return "SORT" }

// Children implements Op.
func (o *Sort) Children() []Op { return []Op{o.Input} }

func (o *Sort) cost(m Model, cat *catalog.Catalog) Cost {
	in := o.Input.cost(m, cat)
	c := in
	n := math.Max(in.Rows, 2)
	c.CPUSeconds += n * math.Log2(n) * m.CPUCompare
	if in.Rows > m.SortMemRows {
		spillPages := in.Rows * 64 / catalog.PageSize
		c.IOSeconds += 2 * spillPages * m.SeqPageIO
		c.Pages += 2 * spillPages
	}
	return c
}

// GroupAgg aggregates its input into Groups output rows.
type GroupAgg struct {
	Input  Op
	Groups float64
}

func (o *GroupAgg) String() string { return "GRPBY" }

// Children implements Op.
func (o *GroupAgg) Children() []Op { return []Op{o.Input} }

func (o *GroupAgg) cost(m Model, cat *catalog.Catalog) Cost {
	in := o.Input.cost(m, cat)
	c := in
	c.CPUSeconds += in.Rows * m.CPUHashRow
	g := o.Groups
	if g <= 0 {
		g = 1
	}
	c.Rows = math.Min(g, math.Max(in.Rows, 1))
	return c
}

// IndexLookup fetches Rows rows by exact key through an index — the bread
// and butter of OLTP plans.
type IndexLookup struct {
	Index string
	Rows  float64
}

func (o *IndexLookup) String() string { return fmt.Sprintf("FETCH(%s)", o.Index) }

// Children implements Op.
func (o *IndexLookup) Children() []Op { return nil }

func (o *IndexLookup) cost(m Model, cat *catalog.Catalog) Cost {
	ix, ok := cat.Index(o.Index)
	if !ok {
		panic(fmt.Sprintf("optimizer: unknown index %q", o.Index))
	}
	rows := math.Max(o.Rows, 1)
	// OLTP working sets are hot: most lookups hit the buffer pool. The
	// B-tree is descended once; each qualifying row then pays a fetch.
	const cacheHit = 0.995
	c := Cost{
		CPUSeconds: (float64(ix.Levels)*20 + rows*20) * m.CPURow,
		IOSeconds:  rows * (1 - cacheHit) * 2 * m.RandPageIO,
		Rows:       rows,
		Pages:      rows * 2 * (1 - cacheHit),
	}
	return c
}

// Update modifies Rows rows already located by Input and forces a log
// write at commit.
type Update struct {
	Input Op
	Rows  float64
}

func (o *Update) String() string { return "UPDATE" }

// Children implements Op.
func (o *Update) Children() []Op { return []Op{o.Input} }

func (o *Update) cost(m Model, cat *catalog.Catalog) Cost {
	in := o.Input.cost(m, cat)
	rows := o.Rows
	if rows <= 0 {
		rows = in.Rows
	}
	c := in
	c.CPUSeconds += rows * 20 * m.CPURow
	c.IOSeconds += m.LogWriteIO
	c.Rows = rows
	return c
}

// Insert appends Rows rows into a table and forces a log write.
type Insert struct {
	Table string
	Rows  float64
}

func (o *Insert) String() string { return fmt.Sprintf("INSERT(%s)", o.Table) }

// Children implements Op.
func (o *Insert) Children() []Op { return nil }

func (o *Insert) cost(m Model, cat *catalog.Catalog) Cost {
	cat.MustTable(o.Table) // validate
	rows := math.Max(o.Rows, 1)
	return Cost{
		CPUSeconds: rows * 25 * m.CPURow,
		IOSeconds:  m.LogWriteIO,
		Rows:       rows,
	}
}

// Batch sequences several statements into one unit of work — how the
// TPC-C-like transactions (which run many lookups, updates, and inserts
// per transaction) are costed.
type Batch struct {
	Ops []Op
	// Repeat runs the whole batch Repeat times (0 means once).
	Repeat int
}

func (o *Batch) String() string { return fmt.Sprintf("BATCH(x%d)", max(o.Repeat, 1)) }

// Children implements Op.
func (o *Batch) Children() []Op { return o.Ops }

func (o *Batch) cost(m Model, cat *catalog.Catalog) Cost {
	var c Cost
	for _, op := range o.Ops {
		oc := op.cost(m, cat)
		c.CPUSeconds += oc.CPUSeconds + m.StmtOverheadCPU
		c.IOSeconds += oc.IOSeconds
		c.Pages += oc.Pages
		c.Rows = oc.Rows
	}
	r := float64(max(o.Repeat, 1))
	c.CPUSeconds *= r
	c.IOSeconds *= r
	c.Pages *= r
	return c
}

// Estimate is the optimizer's output for one statement.
type Estimate struct {
	// True is the actual resource demand that the engine will consume.
	True Cost
	// Est is the (possibly noisy) demand the controller sees.
	Est Cost
	// Timerons is the scalar cost computed from Est — what Query
	// Patroller's control tables would record.
	Timerons float64
	// Parallelism is the intra-query parallelism degree the engine uses
	// (DB2 intra-partition parallelism: big DSS queries get subagents).
	Parallelism int
}

// Optimizer evaluates plans against one catalog.
type Optimizer struct {
	Model   Model
	Catalog *catalog.Catalog
}

// New returns an optimizer over cat using model m.
func New(m Model, cat *catalog.Catalog) *Optimizer {
	if cat == nil {
		panic("optimizer: nil catalog")
	}
	return &Optimizer{Model: m, Catalog: cat}
}

// Cost returns the exact (noise-free) cost of a plan.
func (o *Optimizer) Cost(plan Op) Cost {
	if plan == nil {
		panic("optimizer: nil plan")
	}
	return plan.cost(o.Model, o.Catalog)
}

// Estimate costs a plan and applies estimation noise drawn from src. A nil
// src (or EstimateSigma 0) yields a noise-free estimate.
func (o *Optimizer) Estimate(plan Op, src *rng.Source) Estimate {
	truth := o.Cost(plan)
	est := truth
	if src != nil && o.Model.EstimateSigma > 0 {
		f := src.LogNormalMedian(1, o.Model.EstimateSigma)
		est.CPUSeconds *= f
		est.IOSeconds *= f
		est.Rows *= f
	}
	return Estimate{
		True:        truth,
		Est:         est,
		Timerons:    o.Model.Timerons(est),
		Parallelism: parallelism(o.Model.Timerons(truth)),
	}
}

// parallelism maps a query's size to an intra-query parallelism degree:
// sub-second statements run serially; large DSS queries run with degree 2,
// matching DB2's intra-partition parallelism on the paper's two-CPU box.
func parallelism(timerons float64) int {
	if timerons < 1000 {
		return 1
	}
	return 2
}

// Explain renders the plan tree with per-node costs, one node per line —
// the moral equivalent of DB2's EXPLAIN output and handy in examples.
func (o *Optimizer) Explain(plan Op) string {
	var b []byte
	var walk func(op Op, depth int)
	walk = func(op Op, depth int) {
		c := op.cost(o.Model, o.Catalog)
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		b = append(b, fmt.Sprintf("%-24s rows=%-12.0f timerons=%.1f\n",
			op.String(), c.Rows, o.Model.Timerons(c))...)
		for _, ch := range op.Children() {
			walk(ch, depth+1)
		}
	}
	walk(plan, 0)
	return string(b)
}

func clampSel(s float64) float64 {
	if s <= 0 {
		return 1 // unspecified selectivity means "everything"
	}
	if s > 1 {
		return 1
	}
	return s
}
