// Closed-loop client drivers. The paper's workload intensity is controlled
// purely by the number of interactive clients per class; each client
// submits queries one after another with zero think time.
package workload

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/rng"
)

// Client is one interactive connection submitting queries from a template
// set in a closed loop.
type Client struct {
	ID    engine.ClientID
	Class *Class

	pool     *Pool
	set      *Set
	src      *rng.Source
	active   bool
	inFlight bool

	// group/gidx tie a lazily materialized client back to its streaming
	// group so it can park (shrink to 12 bytes) when deactivated. Both are
	// zero for eager clients.
	group *lazyGroup
	gidx  int

	// Submitted counts queries this client has issued.
	Submitted int
}

// Active reports whether the client is currently driving load.
func (c *Client) Active() bool { return c.active }

// submitNext issues the client's next query (zero think time).
//
//qlint:hotpath
func (c *Client) submitNext() {
	inst := c.set.Generate(c.src)
	// Queries come from the submitter's freelist: the engine recycles
	// them on terminal state, so a million-query run reuses a handful of
	// objects instead of allocating one per statement. A fleet run swaps
	// in a router here; the single-engine path is untouched.
	sub := c.pool.route
	q := sub.AcquireQuery()
	q.Client = c.ID
	q.Class = c.Class.ID
	q.Template = inst.Template
	q.Cost = inst.Timerons
	q.Demand = inst.Demand
	c.inFlight = true
	c.Submitted++
	sub.Submit(q)
}

// Submitter is where clients send their queries: a single engine in the
// classic rig, or a fleet router that picks a backend per query. Both
// hand out queries from a freelist via AcquireQuery.
type Submitter interface {
	AcquireQuery() *engine.Query
	Submit(*engine.Query)
}

// Pool owns all clients of an experiment and routes engine completions
// back to them. Period changes activate or park clients per class.
type Pool struct {
	route   Submitter
	clients map[engine.ClientID]*Client // eager clients + live streaming clients
	//lint:ignore ckptcover derived per-class index; rebuilt from the clients table by construction on restore
	byClass map[engine.ClassID][]*Client
	groups  map[engine.ClassID]*lazyGroup
	nextID  engine.ClientID
}

// lazyGroup is one class's streaming client population. Clients exist as
// full objects only while active or in flight; everything else is a
// 12-byte (rng cursor, submit count) record. The parent stream is
// consumed identically to AddClients — one Uint64 per client, in order —
// so a streaming run is byte-identical to an eager one.
type lazyGroup struct {
	class *Class
	set   *Set
	start engine.ClientID // id of offset 0

	// state[i] is client i's rng cursor: seeded at construction exactly
	// like AddClients' src.Split() child, written back on park.
	state     []uint64
	submitted []int32
	live      map[int]*Client // materialized clients by offset
	lo, hi    int             // current active window [lo, hi)
}

// NewPool returns a pool bound to eng, registering its completion hook.
func NewPool(eng *engine.Engine) *Pool {
	p := &Pool{
		route:   eng,
		clients: make(map[engine.ClientID]*Client),
		byClass: make(map[engine.ClassID][]*Client),
		groups:  make(map[engine.ClassID]*lazyGroup),
	}
	eng.OnDone(p.onDone)
	return p
}

// NewRoutedPool returns a pool that submits through route instead of a
// single engine. Completions still arrive engine-by-engine: the caller
// passes every engine queries can land on so the pool's closed loop
// keeps turning wherever the router sends them.
func NewRoutedPool(route Submitter, engines []*engine.Engine) *Pool {
	if route == nil || len(engines) == 0 {
		panic("workload: NewRoutedPool needs a router and at least one engine")
	}
	p := &Pool{
		route:   route,
		clients: make(map[engine.ClientID]*Client),
		byClass: make(map[engine.ClassID][]*Client),
		groups:  make(map[engine.ClassID]*lazyGroup),
	}
	for _, eng := range engines {
		eng.OnDone(p.onDone)
	}
	return p
}

// AddClients creates n parked clients for class drawing from set. Each
// client gets an independent random stream split from src, so client
// counts in one class never perturb another class's draws.
func (p *Pool) AddClients(class *Class, set *Set, n int, src *rng.Source) {
	if class == nil || set == nil {
		panic("workload: AddClients with nil class or set")
	}
	if _, ok := p.groups[class.ID]; ok {
		panic(fmt.Sprintf("workload: class %d mixes streaming and eager clients", class.ID))
	}
	for i := 0; i < n; i++ {
		p.nextID++
		c := &Client{ID: p.nextID, Class: class, pool: p, set: set, src: src.Split()}
		p.clients[c.ID] = c
		p.byClass[class.ID] = append(p.byClass[class.ID], c)
	}
}

// AddClientsStreaming creates n streaming clients for class drawing from
// set. The parent stream src is consumed exactly as AddClients would
// (one draw per client, in order), but no Client objects are built until
// a client is first activated; the pool's behaviour is byte-identical to
// the eager path. A class is either streaming or eager, never both, and
// a streaming class takes exactly one AddClientsStreaming call.
func (p *Pool) AddClientsStreaming(class *Class, set *Set, n int, src *rng.Source) {
	if class == nil || set == nil {
		panic("workload: AddClientsStreaming with nil class or set")
	}
	if n == 0 {
		return
	}
	if len(p.byClass[class.ID]) > 0 {
		panic(fmt.Sprintf("workload: class %d mixes streaming and eager clients", class.ID))
	}
	if _, ok := p.groups[class.ID]; ok {
		panic(fmt.Sprintf("workload: streaming class %d already has clients", class.ID))
	}
	g := &lazyGroup{
		class:     class,
		set:       set,
		start:     p.nextID + 1,
		state:     make([]uint64, n),
		submitted: make([]int32, n),
		live:      make(map[int]*Client),
	}
	for i := 0; i < n; i++ {
		// Same cursor a Split() child would start from.
		g.state[i] = rng.New(src.Uint64()).State()
	}
	p.nextID += engine.ClientID(n)
	p.groups[class.ID] = g
}

// materialize returns the live client at offset i, building it from the
// parked record if needed.
func (g *lazyGroup) materialize(p *Pool, i int) *Client {
	if c, ok := g.live[i]; ok {
		return c
	}
	src := rng.New(0)
	src.SetState(g.state[i])
	c := &Client{
		ID:        g.start + engine.ClientID(i),
		Class:     g.class,
		pool:      p,
		set:       g.set,
		src:       src,
		group:     g,
		gidx:      i,
		Submitted: int(g.submitted[i]),
	}
	g.live[i] = c
	p.clients[c.ID] = c
	return c
}

// park shrinks an inactive, idle client back to its 12-byte record.
func (g *lazyGroup) park(p *Pool, c *Client) {
	g.state[c.gidx] = c.src.State()
	g.submitted[c.gidx] = int32(c.Submitted)
	delete(g.live, c.gidx)
	delete(p.clients, c.ID)
}

// Client returns the client with the given ID, or nil. For streaming
// classes only live (active or in-flight) clients resolve.
func (p *Pool) Client(id engine.ClientID) *Client { return p.clients[id] }

// Clients returns all clients of a class (active and parked). Streaming
// classes have no materialized population to return; asking for one is a
// programming error.
func (p *Pool) Clients(class engine.ClassID) []*Client {
	if _, ok := p.groups[class]; ok {
		panic(fmt.Sprintf("workload: Clients(%d) on a streaming class", class))
	}
	return p.byClass[class]
}

// ActiveClients returns the IDs of currently active clients of a class —
// the set the snapshot monitor samples.
func (p *Pool) ActiveClients(class engine.ClassID) []engine.ClientID {
	if g, ok := p.groups[class]; ok {
		ids := make([]engine.ClientID, 0, g.hi-g.lo)
		for i := g.lo; i < g.hi; i++ {
			ids = append(ids, g.start+engine.ClientID(i))
		}
		return ids
	}
	var ids []engine.ClientID
	for _, c := range p.byClass[class] {
		if c.active {
			ids = append(ids, c.ID)
		}
	}
	return ids
}

// ActiveCount returns how many clients of the class are active.
func (p *Pool) ActiveCount(class engine.ClassID) int {
	if g, ok := p.groups[class]; ok {
		return g.hi - g.lo
	}
	n := 0
	for _, c := range p.byClass[class] {
		if c.active {
			n++
		}
	}
	return n
}

// SetActive adjusts the number of active clients in a class. Newly
// activated idle clients submit immediately; deactivated clients finish
// their in-flight query and then park.
func (p *Pool) SetActive(class engine.ClassID, n int) {
	if g, ok := p.groups[class]; ok {
		if n < 0 || n > len(g.state) {
			panic(fmt.Sprintf("workload: SetActive(%d, %d) with only %d clients", class, n, len(g.state)))
		}
		p.setWindow(g, 0, n)
		return
	}
	cs := p.byClass[class]
	if n < 0 || n > len(cs) {
		panic(fmt.Sprintf("workload: SetActive(%d, %d) with only %d clients", class, n, len(cs)))
	}
	for i, c := range cs {
		want := i < n
		if want == c.active {
			continue
		}
		c.active = want
		if want && !c.inFlight {
			c.submitNext()
		}
	}
}

// SetActiveWindow activates exactly the clients with class-offsets in
// [lo, hi), deactivating everything outside. SetActive(class, n) is the
// window [0, n); a non-zero lo lets long-running workloads rotate client
// cohorts so the set of distinct clients is unbounded while the live set
// stays small.
func (p *Pool) SetActiveWindow(class engine.ClassID, lo, hi int) {
	if g, ok := p.groups[class]; ok {
		if lo < 0 || hi < lo || hi > len(g.state) {
			panic(fmt.Sprintf("workload: SetActiveWindow(%d, %d, %d) with only %d clients",
				class, lo, hi, len(g.state)))
		}
		p.setWindow(g, lo, hi)
		return
	}
	cs := p.byClass[class]
	if lo < 0 || hi < lo || hi > len(cs) {
		panic(fmt.Sprintf("workload: SetActiveWindow(%d, %d, %d) with only %d clients",
			class, lo, hi, len(cs)))
	}
	for i, c := range cs {
		want := i >= lo && i < hi
		if want == c.active {
			continue
		}
		c.active = want
		if want && !c.inFlight {
			c.submitNext()
		}
	}
}

// setWindow moves a streaming group's active window. Deactivations are
// processed first (they emit nothing, so their order cannot influence
// the simulation); activations then run in ascending offset order —
// exactly the submit order the eager path produces.
func (p *Pool) setWindow(g *lazyGroup, lo, hi int) {
	for i, c := range g.live {
		if (i < lo || i >= hi) && c.active {
			c.active = false
			if !c.inFlight {
				g.park(p, c)
			}
		}
	}
	for i := lo; i < hi; i++ {
		c := g.materialize(p, i)
		if !c.active {
			c.active = true
			if !c.inFlight {
				c.submitNext()
			}
		}
	}
	g.lo, g.hi = lo, hi
}

// onDone is the pool's engine completion listener.
//
//qlint:hotpath
func (p *Pool) onDone(q *engine.Query) {
	c, ok := p.clients[q.Client]
	if !ok {
		return // query from a non-pool submitter (tests, examples)
	}
	c.inFlight = false
	if c.active {
		c.submitNext() // zero think time
		return
	}
	if c.group != nil {
		c.group.park(p, c)
	}
}
