// Closed-loop client drivers. The paper's workload intensity is controlled
// purely by the number of interactive clients per class; each client
// submits queries one after another with zero think time.
package workload

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/rng"
)

// Client is one interactive connection submitting queries from a template
// set in a closed loop.
type Client struct {
	ID    engine.ClientID
	Class *Class

	pool     *Pool
	set      *Set
	src      *rng.Source
	active   bool
	inFlight bool

	// Submitted counts queries this client has issued.
	Submitted int
}

// Active reports whether the client is currently driving load.
func (c *Client) Active() bool { return c.active }

func (c *Client) submitNext() {
	inst := c.set.Generate(c.src)
	q := &engine.Query{
		Client:   c.ID,
		Class:    c.Class.ID,
		Template: inst.Template,
		Cost:     inst.Timerons,
		Demand:   inst.Demand,
	}
	c.inFlight = true
	c.Submitted++
	c.pool.eng.Submit(q)
}

// Pool owns all clients of an experiment and routes engine completions
// back to them. Period changes activate or park clients per class.
type Pool struct {
	eng     *engine.Engine
	clients map[engine.ClientID]*Client
	byClass map[engine.ClassID][]*Client
	nextID  engine.ClientID
}

// NewPool returns a pool bound to eng, registering its completion hook.
func NewPool(eng *engine.Engine) *Pool {
	p := &Pool{
		eng:     eng,
		clients: make(map[engine.ClientID]*Client),
		byClass: make(map[engine.ClassID][]*Client),
	}
	eng.OnDone(p.onDone)
	return p
}

// AddClients creates n parked clients for class drawing from set. Each
// client gets an independent random stream split from src, so client
// counts in one class never perturb another class's draws.
func (p *Pool) AddClients(class *Class, set *Set, n int, src *rng.Source) {
	if class == nil || set == nil {
		panic("workload: AddClients with nil class or set")
	}
	for i := 0; i < n; i++ {
		p.nextID++
		c := &Client{ID: p.nextID, Class: class, pool: p, set: set, src: src.Split()}
		p.clients[c.ID] = c
		p.byClass[class.ID] = append(p.byClass[class.ID], c)
	}
}

// Client returns the client with the given ID, or nil.
func (p *Pool) Client(id engine.ClientID) *Client { return p.clients[id] }

// Clients returns all clients of a class (active and parked).
func (p *Pool) Clients(class engine.ClassID) []*Client { return p.byClass[class] }

// ActiveClients returns the IDs of currently active clients of a class —
// the set the snapshot monitor samples.
func (p *Pool) ActiveClients(class engine.ClassID) []engine.ClientID {
	var ids []engine.ClientID
	for _, c := range p.byClass[class] {
		if c.active {
			ids = append(ids, c.ID)
		}
	}
	return ids
}

// ActiveCount returns how many clients of the class are active.
func (p *Pool) ActiveCount(class engine.ClassID) int {
	n := 0
	for _, c := range p.byClass[class] {
		if c.active {
			n++
		}
	}
	return n
}

// SetActive adjusts the number of active clients in a class. Newly
// activated idle clients submit immediately; deactivated clients finish
// their in-flight query and then park.
func (p *Pool) SetActive(class engine.ClassID, n int) {
	cs := p.byClass[class]
	if n < 0 || n > len(cs) {
		panic(fmt.Sprintf("workload: SetActive(%d, %d) with only %d clients", class, n, len(cs)))
	}
	for i, c := range cs {
		want := i < n
		if want == c.active {
			continue
		}
		c.active = want
		if want && !c.inFlight {
			c.submitNext()
		}
	}
}

func (p *Pool) onDone(q *engine.Query) {
	c, ok := p.clients[q.Client]
	if !ok {
		return // query from a non-pool submitter (tests, examples)
	}
	c.inFlight = false
	if c.active {
		c.submitNext() // zero think time
	}
}
