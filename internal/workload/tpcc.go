// TPC-C-like transactional templates. The paper drove its OLTP class with
// TPC-C transactions against a 50-warehouse database. Each template is a
// Batch of index lookups, updates, and inserts mirroring the statement
// profile of the corresponding TPC-C transaction; all have sub-second
// stand-alone execution times and are CPU-dominated, matching the paper's
// observation that "OLTP queries are CPU intensive".
package workload

import (
	"repro/internal/catalog"
	"repro/internal/optimizer"
)

// TPCCCatalog returns the catalog the OLTP templates are costed against
// (50 warehouses, the paper's configuration).
func TPCCCatalog() *catalog.Catalog { return catalog.TPCC(50) }

// TPCCTemplates returns the five TPC-C-like transaction templates with the
// standard TPC-C mix weights.
func TPCCTemplates() []Template {
	look := func(index string, rows float64) optimizer.Op {
		return &optimizer.IndexLookup{Index: index, Rows: rows}
	}
	upd := func(index string, rows float64) optimizer.Op {
		return &optimizer.Update{Input: look(index, rows), Rows: rows}
	}
	ins := func(table string, rows float64) optimizer.Op {
		return &optimizer.Insert{Table: table, Rows: rows}
	}

	newOrder := &optimizer.Batch{Ops: []optimizer.Op{
		look("w_id", 1),
		upd("d_w_id_d_id", 1),
		look("c_w_id_c_d_id_c_id", 1),
		look("i_id", 10),
		upd("s_w_id_s_i_id", 10),
		ins("order", 1),
		ins("neworder", 1),
		ins("orderline", 10),
	}}

	payment := &optimizer.Batch{Ops: []optimizer.Op{
		upd("w_id", 1),
		upd("d_w_id_d_id", 1),
		upd("c_w_id_c_d_id_c_id", 1),
		// 60% of payments locate the customer by last name, scanning a
		// small cluster of matches; approximate with a few extra fetches.
		look("c_last", 3),
		ins("history", 1),
	}}

	orderStatus := &optimizer.Batch{Ops: []optimizer.Op{
		look("c_w_id_c_d_id_c_id", 1),
		look("o_w_id_o_d_id_o_id", 1),
		look("ol_w_id_ol_d_id_ol_o_id", 10),
	}}

	// Delivery processes one batch of ten districts.
	delivery := &optimizer.Batch{Ops: []optimizer.Op{
		upd("no_w_id_no_d_id_no_o_id", 1),
		upd("o_w_id_o_d_id_o_id", 1),
		upd("ol_w_id_ol_d_id_ol_o_id", 10),
		upd("c_w_id_c_d_id_c_id", 1),
	}, Repeat: 10}

	stockLevel := &optimizer.Batch{Ops: []optimizer.Op{
		look("d_w_id_d_id", 1),
		look("ol_w_id_ol_d_id_ol_o_id", 200),
		look("s_w_id_s_i_id", 120),
	}}

	t := func(name string, weight, sigma float64, plan optimizer.Op) Template {
		return Template{Name: name, Kind: OLTP, Plan: plan, Weight: weight, SizeSigma: sigma}
	}
	return []Template{
		t("NewOrder", 45, 0.20, newOrder),
		t("Payment", 43, 0.15, payment),
		t("OrderStatus", 4, 0.15, orderStatus),
		t("Delivery", 4, 0.10, delivery),
		t("StockLevel", 4, 0.20, stockLevel),
	}
}
