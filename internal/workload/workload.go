// Package workload defines the paper's mixed workload: service classes
// with performance goals and business importance, TPC-H-like and
// TPC-C-like query templates, closed-loop interactive clients with zero
// think time, and the 18-period intensity schedule of Figure 3.
package workload

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/rng"
)

// Kind distinguishes the two workload types in the mix.
type Kind int

// Workload kinds.
const (
	OLAP Kind = iota
	OLTP
)

func (k Kind) String() string {
	if k == OLAP {
		return "OLAP"
	}
	return "OLTP"
}

// Metric is the performance metric a class's goal is expressed in. The
// paper uses query velocity for OLAP classes (their response times vary
// too widely for a response-time goal to be meaningful) and average
// response time for the OLTP class.
type Metric int

// Goal metrics.
const (
	// Velocity goals are "at least": measured velocity >= Target.
	Velocity Metric = iota
	// AvgResponseTime goals are "at most": measured mean RT <= Target.
	AvgResponseTime
)

func (m Metric) String() string {
	if m == Velocity {
		return "velocity"
	}
	return "avg-response-time"
}

// Goal is a class's service level objective.
type Goal struct {
	Metric Metric
	Target float64
}

// Met reports whether an observed value satisfies the goal.
func (g Goal) Met(observed float64) bool {
	if g.Metric == Velocity {
		return observed >= g.Target
	}
	return observed <= g.Target
}

// String renders the goal the way the paper states them.
func (g Goal) String() string {
	if g.Metric == Velocity {
		return fmt.Sprintf("velocity >= %.2f", g.Target)
	}
	return fmt.Sprintf("avg RT <= %.2gs", g.Target)
}

// Class is a service class: a named slice of the workload with a goal and
// a business importance level (higher is more important; importance only
// matters while the goal is violated — it is not a priority).
type Class struct {
	ID         engine.ClassID
	Name       string
	Kind       Kind
	Goal       Goal
	Importance int
}

// PaperClasses returns the three service classes of the paper's
// experiments: two OLAP classes with velocity goals 0.4 (importance 1) and
// 0.6 (importance 2), and the OLTP class with a 0.25 s average
// response-time goal (importance 3, the highest).
func PaperClasses() []*Class {
	return []*Class{
		{ID: 1, Name: "Class 1", Kind: OLAP, Goal: Goal{Velocity, 0.40}, Importance: 1},
		{ID: 2, Name: "Class 2", Kind: OLAP, Goal: Goal{Velocity, 0.60}, Importance: 2},
		{ID: 3, Name: "Class 3", Kind: OLTP, Goal: Goal{AvgResponseTime, 0.25}, Importance: 3},
	}
}

// Template is one query or transaction type a class's clients draw from.
type Template struct {
	Name string
	Kind Kind
	Plan optimizer.Op
	// Weight is the template's relative frequency within its set.
	Weight float64
	// SizeSigma is the log-normal spread of per-instance size: individual
	// executions of the same template vary with predicate values.
	SizeSigma float64
}

// Instance is one generated query, ready to submit.
type Instance struct {
	Template    string
	True        optimizer.Cost
	Est         optimizer.Cost
	Timerons    float64
	Parallelism int
	Demand      engine.Demand
}

// Set is a compiled collection of templates sharing one optimizer.
type Set struct {
	opt       *optimizer.Optimizer
	templates []Template
	weights   []float64
	base      []optimizer.Cost
}

// NewSet compiles templates against opt, pre-costing every plan once.
func NewSet(opt *optimizer.Optimizer, templates []Template) *Set {
	if len(templates) == 0 {
		panic("workload: empty template set")
	}
	s := &Set{opt: opt, templates: templates}
	for _, t := range templates {
		if t.Weight <= 0 {
			panic(fmt.Sprintf("workload: template %q has non-positive weight", t.Name))
		}
		s.weights = append(s.weights, t.Weight)
		s.base = append(s.base, opt.Cost(t.Plan))
	}
	return s
}

// Templates returns the compiled templates (shared; do not mutate).
func (s *Set) Templates() []Template { return s.templates }

// BaseCost returns the noise-free cost of template i.
func (s *Set) BaseCost(i int) optimizer.Cost { return s.base[i] }

// BaseTimerons returns the noise-free timeron cost of template i.
func (s *Set) BaseTimerons(i int) float64 { return s.opt.Model.Timerons(s.base[i]) }

// Generate draws one instance: template by weight, instance size by the
// template's log-normal spread, and an optimizer estimate perturbed by the
// cost model's estimation noise.
func (s *Set) Generate(src *rng.Source) Instance {
	i := src.WeightedChoice(s.weights)
	return s.GenerateFrom(i, src)
}

// GenerateFrom draws one instance of a specific template.
func (s *Set) GenerateFrom(i int, src *rng.Source) Instance {
	t := s.templates[i]
	truth := s.base[i]
	if t.SizeSigma > 0 {
		f := src.LogNormalMedian(1, t.SizeSigma)
		truth.CPUSeconds *= f
		truth.IOSeconds *= f
		truth.Rows *= f
		truth.Pages *= f
	}
	est := truth
	if sigma := s.opt.Model.EstimateSigma; sigma > 0 {
		f := src.LogNormalMedian(1, sigma)
		est.CPUSeconds *= f
		est.IOSeconds *= f
		est.Rows *= f
	}
	trueTimerons := s.opt.Model.Timerons(truth)
	par := ParallelismFor(trueTimerons)
	return Instance{
		Template:    t.Name,
		True:        truth,
		Est:         est,
		Timerons:    s.opt.Model.Timerons(est),
		Parallelism: par,
		Demand:      DemandFor(truth, par),
	}
}

// ParallelismFor maps a query's true size to its intra-query parallelism
// degree: sub-second statements run serially; large DSS queries run with
// degree 2 (DB2 intra-partition parallelism on the paper's two-CPU box).
func ParallelismFor(timerons float64) int {
	if timerons < 1000 {
		return 1
	}
	return 2
}

// DemandFor converts a cost into an engine demand: CPU and I/O proceed in
// overlapped pipelines, so stand-alone execution time is the larger of the
// two demands divided by the parallelism degree, and the consumption rates
// follow from preserving total CPU- and I/O-seconds.
func DemandFor(c optimizer.Cost, parallelism int) engine.Demand {
	if parallelism < 1 {
		parallelism = 1
	}
	cpu := math.Max(c.CPUSeconds, 0)
	io := math.Max(c.IOSeconds, 0)
	long := math.Max(cpu, io)
	if long <= 0 {
		// Degenerate plan; give it a microscopic CPU-only demand.
		return engine.Demand{Work: 1e-6, CPURate: 1}
	}
	work := long / float64(parallelism)
	return engine.Demand{
		Work:    work,
		CPURate: cpu / work,
		IORate:  io / work,
	}
}
