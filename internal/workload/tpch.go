// TPC-H-like decision-support templates. The paper ran the 22 TPC-H
// queries on a 500 MB database, excluding the four very large ones
// (Q16, Q19, Q20, Q21), leaving 18 templates. The plans below are
// simplified but structurally faithful sketches of each query's dominant
// access pattern; what matters for the reproduction is the resulting
// heavy-tailed timeron distribution, not SQL-level fidelity.
package workload

import (
	"repro/internal/catalog"
	"repro/internal/optimizer"
)

// TPCHCatalog returns the catalog the OLAP templates are costed against
// (scale factor 0.5 = the paper's 500 MB database).
func TPCHCatalog() *catalog.Catalog { return catalog.TPCH(0.5) }

// TPCHTemplates returns the 18 OLAP templates (TPC-H minus Q16/Q19/Q20/Q21)
// with uniform weights, matching interactive clients that submit a random
// query from the set, one after another.
func TPCHTemplates() []Template {
	scanL := func(sel float64) optimizer.Op { return &optimizer.TableScan{Table: "lineitem", Selectivity: sel} }
	scanO := func(sel float64) optimizer.Op { return &optimizer.TableScan{Table: "orders", Selectivity: sel} }
	scanC := func(sel float64) optimizer.Op { return &optimizer.TableScan{Table: "customer", Selectivity: sel} }
	scanPS := func(sel float64) optimizer.Op { return &optimizer.TableScan{Table: "partsupp", Selectivity: sel} }
	scanP := func(sel float64) optimizer.Op { return &optimizer.TableScan{Table: "part", Selectivity: sel} }
	scanS := func(sel float64) optimizer.Op { return &optimizer.TableScan{Table: "supplier", Selectivity: sel} }

	t := func(name string, sigma float64, plan optimizer.Op) Template {
		return Template{Name: name, Kind: OLAP, Plan: plan, Weight: 1, SizeSigma: sigma}
	}

	return []Template{
		// Q1 pricing summary report: near-full lineitem scan + aggregation.
		t("Q1", 0.10, &optimizer.Sort{Input: &optimizer.GroupAgg{
			Input:  scanL(0.98),
			Groups: 4,
		}}),
		// Q2 minimum cost supplier: small region-scoped join tree.
		t("Q2", 0.35, &optimizer.Sort{Input: &optimizer.HashJoin{
			Build:  &optimizer.HashJoin{Build: scanS(1), Probe: scanPS(0.2), Fanout: 1},
			Probe:  scanP(0.004),
			Fanout: 4,
		}}),
		// Q3 shipping priority: customer x orders x lineitem with a top-N sort.
		t("Q3", 0.25, &optimizer.Sort{Input: &optimizer.HashJoin{
			Build:  &optimizer.HashJoin{Build: scanC(0.2), Probe: scanO(0.48), Fanout: 0.2},
			Probe:  scanL(0.54),
			Fanout: 0.1,
		}}),
		// Q4 order priority checking: orders semi-join lineitem.
		t("Q4", 0.20, &optimizer.GroupAgg{
			Input:  &optimizer.HashJoin{Build: scanO(0.038), Probe: scanL(0.5), Fanout: 0.05},
			Groups: 5,
		}),
		// Q5 local supplier volume: six-way join scoped to one region.
		t("Q5", 0.30, &optimizer.GroupAgg{
			Input: &optimizer.HashJoin{
				Build:  &optimizer.HashJoin{Build: scanC(0.2), Probe: scanO(0.15), Fanout: 0.2},
				Probe:  &optimizer.HashJoin{Build: scanS(0.2), Probe: scanL(1), Fanout: 0.2},
				Fanout: 0.04,
			},
			Groups: 5,
		}),
		// Q6 forecasting revenue change: cheap predicate-only lineitem scan.
		t("Q6", 0.10, &optimizer.GroupAgg{Input: scanL(0.019), Groups: 1}),
		// Q7 volume shipping between two nations.
		t("Q7", 0.30, &optimizer.Sort{Input: &optimizer.GroupAgg{
			Input: &optimizer.HashJoin{
				Build:  &optimizer.HashJoin{Build: scanS(0.08), Probe: scanL(1), Fanout: 0.08},
				Probe:  &optimizer.HashJoin{Build: scanC(0.08), Probe: scanO(1), Fanout: 0.08},
				Fanout: 0.01,
			},
			Groups: 4,
		}}),
		// Q8 national market share: part-scoped eight-way join.
		t("Q8", 0.35, &optimizer.GroupAgg{
			Input: &optimizer.HashJoin{
				Build: scanP(0.007),
				Probe: &optimizer.HashJoin{
					Build:  scanO(0.3),
					Probe:  &optimizer.HashJoin{Build: scanS(1), Probe: scanL(1), Fanout: 1},
					Fanout: 0.3,
				},
				Fanout: 0.007,
			},
			Groups: 2,
		}),
		// Q9 product type profit measure: one of the heaviest remaining
		// queries — lineitem joined to partsupp/part/supplier, grouped.
		t("Q9", 0.25, &optimizer.Sort{Input: &optimizer.GroupAgg{
			Input: &optimizer.HashJoin{
				Build:  &optimizer.HashJoin{Build: scanP(0.055), Probe: scanPS(1), Fanout: 0.055},
				Probe:  &optimizer.HashJoin{Build: scanS(1), Probe: scanL(1), Fanout: 1},
				Fanout: 0.055,
			},
			Groups: 175,
		}}),
		// Q10 returned item reporting.
		t("Q10", 0.25, &optimizer.Sort{Input: &optimizer.GroupAgg{
			Input: &optimizer.HashJoin{
				Build:  &optimizer.HashJoin{Build: scanC(1), Probe: scanO(0.038), Fanout: 1},
				Probe:  scanL(0.25),
				Fanout: 0.038,
			},
			Groups: 50000,
		}}),
		// Q11 important stock identification: partsupp x supplier.
		t("Q11", 0.20, &optimizer.Sort{Input: &optimizer.GroupAgg{
			Input:  &optimizer.HashJoin{Build: scanS(0.04), Probe: scanPS(1), Fanout: 0.04},
			Groups: 10000,
		}}),
		// Q12 shipping modes and order priority.
		t("Q12", 0.15, &optimizer.GroupAgg{
			Input:  &optimizer.HashJoin{Build: scanL(0.017), Probe: scanO(1), Fanout: 0.017},
			Groups: 2,
		}),
		// Q13 customer distribution: customer left-join orders.
		t("Q13", 0.15, &optimizer.Sort{Input: &optimizer.GroupAgg{
			Input:  &optimizer.HashJoin{Build: scanC(1), Probe: scanO(0.98), Fanout: 1},
			Groups: 40,
		}}),
		// Q14 promotion effect: one month of lineitem joined to part.
		t("Q14", 0.15, &optimizer.GroupAgg{
			Input:  &optimizer.HashJoin{Build: scanP(1), Probe: scanL(0.013), Fanout: 1},
			Groups: 1,
		}),
		// Q15 top supplier: quarterly revenue view + join.
		t("Q15", 0.20, &optimizer.HashJoin{
			Build:  &optimizer.GroupAgg{Input: scanL(0.26), Groups: 5000},
			Probe:  scanS(1),
			Fanout: 1,
		}),
		// Q17 small-quantity-order revenue: tiny part set probing lineitem
		// through its part-key index (random I/O heavy).
		t("Q17", 0.40, &optimizer.GroupAgg{
			Input:  &optimizer.NLJoin{Outer: scanP(0.001), InnerIndex: "l_partkey", MatchRows: 30},
			Groups: 1,
		}),
		// Q18 large-volume customer: hash-aggregate lineitem by order,
		// then join orders.
		t("Q18", 0.20, &optimizer.Sort{Input: &optimizer.HashJoin{
			Build:  &optimizer.GroupAgg{Input: scanL(1), Groups: 750000},
			Probe:  scanO(1),
			Fanout: 0.001,
		}}),
		// Q22 global sales opportunity: customer anti-join orders.
		t("Q22", 0.25, &optimizer.Sort{Input: &optimizer.GroupAgg{
			Input:  &optimizer.HashJoin{Build: scanC(0.013), Probe: scanO(1), Fanout: 0.013},
			Groups: 7,
		}}),
	}
}
