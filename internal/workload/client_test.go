package workload

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// fastSet returns a template set with a single tiny deterministic query,
// so client-loop tests have exact timing.
func fastSet(t *testing.T) *Set {
	t.Helper()
	m := optimizer.DefaultModel()
	m.EstimateSigma = 0
	opt := optimizer.New(m, TPCCCatalog())
	return NewSet(opt, []Template{{
		Name:   "tiny",
		Kind:   OLTP,
		Plan:   &optimizer.IndexLookup{Index: "w_id", Rows: 1},
		Weight: 1,
	}})
}

func newPoolRig(t *testing.T) (*Pool, *engine.Engine, *simclock.Clock, *Class) {
	t.Helper()
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 100, IOCapacity: 100}, clock)
	pool := NewPool(eng)
	class := &Class{ID: 3, Name: "oltp", Kind: OLTP, Goal: Goal{AvgResponseTime, 1}, Importance: 1}
	pool.AddClients(class, fastSet(t), 4, rng.New(1))
	return pool, eng, clock, class
}

func TestClientsParkUntilActivated(t *testing.T) {
	pool, eng, clock, class := newPoolRig(t)
	clock.RunUntil(1)
	if eng.Stats().Submitted != 0 {
		t.Fatal("parked clients submitted work")
	}
	pool.SetActive(class.ID, 2)
	clock.RunUntil(2)
	if got := eng.Stats().Submitted; got == 0 {
		t.Fatal("activated clients submitted nothing")
	}
	if pool.ActiveCount(class.ID) != 2 {
		t.Fatalf("ActiveCount = %d", pool.ActiveCount(class.ID))
	}
}

func TestZeroThinkTimeResubmission(t *testing.T) {
	pool, eng, clock, class := newPoolRig(t)
	pool.SetActive(class.ID, 1)
	clock.RunUntil(10)
	st := eng.Stats()
	// One client, tiny queries, huge capacity: thousands of completions,
	// and never more than one in flight.
	if st.Completed < 1000 {
		t.Fatalf("only %d completions in 10s", st.Completed)
	}
	if st.Submitted != st.Completed && st.Submitted != st.Completed+1 {
		t.Fatalf("closed loop violated: %d submitted vs %d completed", st.Submitted, st.Completed)
	}
}

func TestDeactivationStopsResubmission(t *testing.T) {
	pool, eng, clock, class := newPoolRig(t)
	pool.SetActive(class.ID, 3)
	clock.RunUntil(1)
	before := eng.Stats().Submitted
	pool.SetActive(class.ID, 0)
	clock.RunUntil(1.001) // let in-flight queries drain
	settled := eng.Stats().Submitted
	if settled > before+3 {
		t.Fatalf("deactivated clients kept submitting: %d -> %d", before, settled)
	}
	clock.RunUntil(5)
	if eng.Stats().Submitted != settled {
		t.Fatal("submissions continued after drain")
	}
	if eng.Active() != 0 {
		t.Fatal("queries still active after deactivation drain")
	}
}

func TestReactivationResumes(t *testing.T) {
	pool, eng, clock, class := newPoolRig(t)
	pool.SetActive(class.ID, 1)
	clock.RunUntil(1)
	pool.SetActive(class.ID, 0)
	clock.RunUntil(2)
	mid := eng.Stats().Submitted
	pool.SetActive(class.ID, 1)
	clock.RunUntil(3)
	if eng.Stats().Submitted <= mid {
		t.Fatal("reactivated client did not resume")
	}
}

func TestSetActiveBoundsPanics(t *testing.T) {
	pool, _, _, class := newPoolRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("over-activation did not panic")
		}
	}()
	pool.SetActive(class.ID, 5)
}

func TestActiveClientsList(t *testing.T) {
	pool, _, _, class := newPoolRig(t)
	pool.SetActive(class.ID, 2)
	ids := pool.ActiveClients(class.ID)
	if len(ids) != 2 {
		t.Fatalf("ActiveClients = %v", ids)
	}
	all := pool.Clients(class.ID)
	if len(all) != 4 {
		t.Fatalf("Clients = %d, want 4", len(all))
	}
}

func TestClientQueriesCarryClassAndCost(t *testing.T) {
	pool, eng, clock, class := newPoolRig(t)
	// Pool queries are engine-pooled and recycled after OnDone returns,
	// so the listener copies what it needs instead of keeping pointers.
	type record struct {
		class    engine.ClassID
		cost     float64
		template string
	}
	var seen []record
	eng.OnDone(func(q *engine.Query) {
		seen = append(seen, record{q.Class, q.Cost, q.Template})
	})
	pool.SetActive(class.ID, 1)
	clock.RunUntil(0.01)
	if len(seen) == 0 {
		t.Fatal("no completions")
	}
	for _, q := range seen {
		if q.class != class.ID {
			t.Fatalf("query class %d, want %d", q.class, class.ID)
		}
		if q.cost <= 0 {
			t.Fatal("query without cost estimate")
		}
		if q.template != "tiny" {
			t.Fatalf("template %q", q.template)
		}
	}
}

func TestScheduleInstall(t *testing.T) {
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 100, IOCapacity: 100}, clock)
	pool := NewPool(eng)
	class := &Class{ID: 1, Name: "c", Kind: OLTP, Goal: Goal{AvgResponseTime, 1}, Importance: 1}
	pool.AddClients(class, fastSet(t), 3, rng.New(1))

	sched := Schedule{
		PeriodSeconds: 10,
		Clients: []map[engine.ClassID]int{
			{1: 1}, {1: 3}, {1: 0},
		},
	}
	var periods []int
	counts := map[int]int{}
	sched.Install(clock, pool, func(p int) {
		periods = append(periods, p)
		counts[p] = pool.ActiveCount(1)
	})
	clock.RunUntil(sched.Duration())
	if len(periods) != 3 {
		t.Fatalf("periods fired %v", periods)
	}
	if counts[0] != 1 || counts[1] != 3 || counts[2] != 0 {
		t.Fatalf("client counts per period %v", counts)
	}
}

func TestScheduleHelpers(t *testing.T) {
	s := PaperSchedule()
	if s.Periods() != 18 {
		t.Fatalf("Periods = %d", s.Periods())
	}
	if s.Duration() != 18*80*60 {
		t.Fatalf("Duration = %v, want 24h", s.Duration())
	}
	if s.PeriodAt(-5) != 0 || s.PeriodAt(0) != 0 || s.PeriodAt(80*60) != 1 {
		t.Fatal("PeriodAt boundaries wrong")
	}
	if s.PeriodAt(1e9) != 17 {
		t.Fatal("PeriodAt must clamp to last period")
	}
	max := s.MaxClients()
	if max[1] != 6 || max[2] != 6 || max[3] != 25 {
		t.Fatalf("MaxClients = %v", max)
	}
}

func TestPaperScheduleMatchesPaperConstraints(t *testing.T) {
	s := PaperSchedule()
	for p, counts := range s.Clients {
		for _, cls := range []engine.ClassID{1, 2} {
			if counts[cls] < 2 || counts[cls] > 6 {
				t.Fatalf("period %d class %d count %d outside 2..6", p+1, cls, counts[cls])
			}
		}
		if counts[3] < 15 || counts[3] > 25 {
			t.Fatalf("period %d OLTP count %d outside 15..25", p+1, counts[3])
		}
	}
	// Period 18 is the paper's heaviest: (2, 6, 25).
	last := s.Clients[17]
	if last[1] != 2 || last[2] != 6 || last[3] != 25 {
		t.Fatalf("period 18 = %v, want (2,6,25)", last)
	}
	// Period 17: medium OLTP, highest OLAP intensity.
	p17 := s.Clients[16]
	if p17[3] != 20 {
		t.Fatal("period 17 OLTP must be medium (20)")
	}
	if p17[1]+p17[2] != 12 {
		t.Fatalf("period 17 OLAP clients = %d, want the maximum 12", p17[1]+p17[2])
	}
	// OLTP cycles low/medium/high.
	for p := 0; p < 18; p++ {
		want := []int{15, 20, 25}[p%3]
		if s.Clients[p][3] != want {
			t.Fatalf("period %d OLTP = %d, want %d", p+1, s.Clients[p][3], want)
		}
	}
}

func TestScheduleInstallValidation(t *testing.T) {
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 1, IOCapacity: 1}, clock)
	pool := NewPool(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("empty schedule did not panic")
		}
	}()
	Schedule{PeriodSeconds: 1}.Install(clock, pool, nil)
}
