// Checkpoint support for the client pool and the intensity schedule.
//
// The pool's structure (which clients exist, their class and template
// set) is rebuilt by re-running the experiment's construction sequence;
// only the per-client dynamic state — activity, in-flight flag, submit
// count, and the private random stream — is serialized. Schedule
// boundaries are plain clock events whose closures Install creates; a
// checkpoint records each future boundary's (period, event ref) pair so
// Restore can re-arm identical closures.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/simclock"
)

// ClientState is one client's serializable dynamic state.
type ClientState struct {
	ID        engine.ClientID
	Active    bool
	InFlight  bool
	Submitted int
	RNG       uint64
}

// PoolState is the pool's serializable state.
type PoolState struct {
	NextID  engine.ClientID
	Clients []ClientState // sorted by client id
}

// CheckpointState captures every client's dynamic state.
func (p *Pool) CheckpointState() PoolState {
	st := PoolState{NextID: p.nextID}
	for _, c := range p.clients {
		st.Clients = append(st.Clients, ClientState{
			ID:        c.ID,
			Active:    c.active,
			InFlight:  c.inFlight,
			Submitted: c.Submitted,
			RNG:       c.src.State(),
		})
	}
	sort.Slice(st.Clients, func(i, j int) bool { return st.Clients[i].ID < st.Clients[j].ID })
	return st
}

// RestoreCheckpoint overwrites the dynamic state of a structurally
// identical pool (same AddClients sequence as the checkpointed run).
func (p *Pool) RestoreCheckpoint(st PoolState) {
	if len(p.clients) != len(st.Clients) {
		panic(fmt.Sprintf("workload: pool restore with %d clients, checkpoint has %d",
			len(p.clients), len(st.Clients)))
	}
	p.nextID = st.NextID
	for _, cs := range st.Clients {
		c, ok := p.clients[cs.ID]
		if !ok {
			panic(fmt.Sprintf("workload: pool restore: unknown client %d", cs.ID))
		}
		c.active = cs.Active
		c.inFlight = cs.InFlight
		c.Submitted = cs.Submitted
		c.src.SetState(cs.RNG)
	}
}

// BoundaryRef records one scheduled period boundary for a checkpoint.
type BoundaryRef struct {
	Period int
	Ref    simclock.EventRef
}

// Installation tracks the boundary events one Install call scheduled, so
// a checkpoint can record and a restore re-arm them.
type Installation struct {
	sched    Schedule
	pool     *Pool
	onPeriod func(int)
	refs     []BoundaryRef
}

// CheckpointState returns the refs of boundaries still in the future at
// time now (boundaries at or before now have already fired).
func (inst *Installation) CheckpointState(now simclock.Time) []BoundaryRef {
	var out []BoundaryRef
	for _, b := range inst.refs {
		if b.Ref.At > now {
			out = append(out, b)
		}
	}
	return out
}

// RestoreBoundaries re-arms checkpointed period boundaries on a restored
// clock, with closures equivalent to the ones Install created. It returns
// an Installation so later checkpoints of the resumed run work the same
// way.
func (s Schedule) RestoreBoundaries(clock *simclock.Clock, pool *Pool, onPeriod func(period int), refs []BoundaryRef) *Installation {
	inst := &Installation{sched: s, pool: pool, onPeriod: onPeriod}
	for _, b := range refs {
		p := b.Period
		clock.RestoreEvent(b.Ref, func() { s.applyPeriod(pool, onPeriod, p) })
		inst.refs = append(inst.refs, b)
	}
	return inst
}
