// Checkpoint support for the client pool and the intensity schedule.
//
// The pool's structure (which clients exist, their class and template
// set) is rebuilt by re-running the experiment's construction sequence;
// only the per-client dynamic state — activity, in-flight flag, submit
// count, and the private random stream — is serialized. Schedule
// boundaries are plain clock events whose closures Install creates; a
// checkpoint records each future boundary's (period, event ref) pair so
// Restore can re-arm identical closures.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/simclock"
)

// ClientState is one client's serializable dynamic state.
type ClientState struct {
	ID        engine.ClientID
	Active    bool
	InFlight  bool
	Submitted int
	RNG       uint64
}

// PoolState is the pool's serializable state.
type PoolState struct {
	NextID  engine.ClientID
	Clients []ClientState // sorted by client id
}

// CheckpointState captures every client's dynamic state. Streaming and
// eager pools serialize identically: a parked or never-materialized
// streaming client records the same (inactive, idle) state and rng
// cursor its eager twin would.
func (p *Pool) CheckpointState() PoolState {
	st := PoolState{NextID: p.nextID}
	for _, c := range p.clients {
		st.Clients = append(st.Clients, ClientState{
			ID:        c.ID,
			Active:    c.active,
			InFlight:  c.inFlight,
			Submitted: c.Submitted,
			RNG:       c.src.State(),
		})
	}
	for _, g := range p.groups {
		for i := range g.state {
			if _, ok := g.live[i]; ok {
				continue // already captured from p.clients
			}
			st.Clients = append(st.Clients, ClientState{
				ID:        g.start + engine.ClientID(i),
				Submitted: int(g.submitted[i]),
				RNG:       g.state[i],
			})
		}
	}
	sort.Slice(st.Clients, func(i, j int) bool { return st.Clients[i].ID < st.Clients[j].ID })
	return st
}

// totalClients counts every client the pool was built with, materialized
// or not.
func (p *Pool) totalClients() int {
	n := len(p.clients)
	for _, g := range p.groups {
		n += len(g.state) - len(g.live)
	}
	return n
}

// groupFor returns the streaming group owning id, or nil.
func (p *Pool) groupFor(id engine.ClientID) *lazyGroup {
	for _, g := range p.groups {
		if id >= g.start && int(id-g.start) < len(g.state) {
			return g
		}
	}
	return nil
}

// RestoreCheckpoint overwrites the dynamic state of a structurally
// identical pool (same AddClients/AddClientsStreaming sequence as the
// checkpointed run). Streaming clients materialize only if the
// checkpoint has them active or in flight; the rest stay parked.
func (p *Pool) RestoreCheckpoint(st PoolState) {
	if p.totalClients() != len(st.Clients) {
		panic(fmt.Sprintf("workload: pool restore with %d clients, checkpoint has %d",
			p.totalClients(), len(st.Clients)))
	}
	p.nextID = st.NextID
	for _, cs := range st.Clients {
		c, ok := p.clients[cs.ID]
		if !ok {
			g := p.groupFor(cs.ID)
			if g == nil {
				panic(fmt.Sprintf("workload: pool restore: unknown client %d", cs.ID))
			}
			i := int(cs.ID - g.start)
			if !cs.Active && !cs.InFlight {
				g.state[i] = cs.RNG
				g.submitted[i] = int32(cs.Submitted)
				continue
			}
			c = g.materialize(p, i)
		}
		c.active = cs.Active
		c.inFlight = cs.InFlight
		c.Submitted = cs.Submitted
		c.src.SetState(cs.RNG)
	}
	// Rebuild each group's active window from the restored flags (the
	// window is always contiguous — it only ever moves via setWindow).
	for _, g := range p.groups {
		g.lo, g.hi = 0, 0
		first := true
		for i, c := range g.live {
			if !c.active {
				continue
			}
			if first || i < g.lo {
				g.lo = i
			}
			if first || i+1 > g.hi {
				g.hi = i + 1
			}
			first = false
		}
	}
}

// BoundaryRef records one scheduled period boundary for a checkpoint.
type BoundaryRef struct {
	Period int
	Ref    simclock.EventRef
}

// Installation tracks the boundary events one Install call scheduled, so
// a checkpoint can record and a restore re-arm them.
type Installation struct {
	sched    Schedule
	pool     *Pool
	onPeriod func(int)
	refs     []BoundaryRef
}

// CheckpointState returns the refs of boundaries still in the future at
// time now (boundaries at or before now have already fired).
func (inst *Installation) CheckpointState(now simclock.Time) []BoundaryRef {
	var out []BoundaryRef
	for _, b := range inst.refs {
		if b.Ref.At > now {
			out = append(out, b)
		}
	}
	return out
}

// RestoreBoundaries re-arms checkpointed period boundaries on a restored
// clock, with closures equivalent to the ones Install created. It returns
// an Installation so later checkpoints of the resumed run work the same
// way.
func (s Schedule) RestoreBoundaries(clock *simclock.Clock, pool *Pool, onPeriod func(period int), refs []BoundaryRef) *Installation {
	inst := &Installation{sched: s, pool: pool, onPeriod: onPeriod}
	for _, b := range refs {
		p := b.Period
		clock.RestoreEvent(b.Ref, func() { s.applyPeriod(pool, onPeriod, p) })
		inst.refs = append(inst.refs, b)
	}
	return inst
}
