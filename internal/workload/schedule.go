// The experiment's time-varying intensity schedule (the paper's Figure 3):
// eighteen 8-minute periods with per-class client counts; intensity is
// constant within a period.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/simclock"
)

// Schedule is a sequence of equal-length periods, each fixing the number
// of active clients per class.
type Schedule struct {
	PeriodSeconds float64
	// Clients[p][classID] is the active-client count in period p.
	Clients []map[engine.ClassID]int
}

// Periods returns the number of periods.
func (s Schedule) Periods() int { return len(s.Clients) }

// Duration returns the schedule's total length in seconds.
func (s Schedule) Duration() float64 { return s.PeriodSeconds * float64(len(s.Clients)) }

// PeriodAt maps a virtual time to a period index (clamped to the last
// period after the schedule ends).
func (s Schedule) PeriodAt(t simclock.Time) int {
	if t < 0 {
		return 0
	}
	p := int(t / s.PeriodSeconds)
	if p >= len(s.Clients) {
		p = len(s.Clients) - 1
	}
	return p
}

// MaxClients returns the largest client count any period needs per class —
// how many clients the pool must pre-create.
func (s Schedule) MaxClients() map[engine.ClassID]int {
	m := make(map[engine.ClassID]int)
	for _, per := range s.Clients {
		for cls, n := range per {
			if n > m[cls] {
				m[cls] = n
			}
		}
	}
	return m
}

// Install arranges for pool client counts to track the schedule: period 0
// is applied immediately and each subsequent boundary is scheduled on the
// clock. onPeriod, when non-nil, fires at the start of every period. The
// returned Installation records the boundary events for checkpointing;
// callers that never checkpoint may ignore it.
func (s Schedule) Install(clock *simclock.Clock, pool *Pool, onPeriod func(period int)) *Installation {
	if len(s.Clients) == 0 {
		panic("workload: empty schedule")
	}
	if s.PeriodSeconds <= 0 {
		panic(fmt.Sprintf("workload: non-positive period length %v", s.PeriodSeconds))
	}
	inst := &Installation{sched: s, pool: pool, onPeriod: onPeriod}
	s.applyPeriod(pool, onPeriod, 0)
	for p := 1; p < len(s.Clients); p++ {
		p := p
		ref := clock.AtRef(float64(p)*s.PeriodSeconds, func() { s.applyPeriod(pool, onPeriod, p) })
		inst.refs = append(inst.refs, BoundaryRef{Period: p, Ref: ref})
	}
	return inst
}

// applyPeriod activates period p's client counts. Classes apply in ID
// order: SetActive submits queries for newly activated clients, so
// map-order iteration would make the simulation's event order — and thus
// whole runs — irreproducible.
func (s Schedule) applyPeriod(pool *Pool, onPeriod func(period int), p int) {
	ids := make([]engine.ClassID, 0, len(s.Clients[p]))
	for cls := range s.Clients[p] {
		ids = append(ids, cls)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, cls := range ids {
		pool.SetActive(cls, s.Clients[p][cls])
	}
	if onPeriod != nil {
		onPeriod(p)
	}
}

// PaperSchedule reconstructs Figure 3: a 24-hour run broken into 18
// equal 80-minute periods (the OCR of the paper reads "8-minute", but 18
// periods covering the stated 24 hours makes each period 80 minutes — the
// dropped-digit pattern appears throughout the scanned text). OLAP class
// client counts vary between 2 and 6; the OLTP class cycles low/medium/
// high (15/20/25). Period 18 is the heaviest overall (2, 6, 25); period 17
// pairs medium OLTP intensity with the highest OLAP intensity. The paper's
// figure is only readable at this resolution — the exact per-period OLAP
// counts are reconstructed, the constraints above are preserved.
func PaperSchedule() Schedule {
	class1 := []int{2, 4, 3, 2, 3, 4, 4, 2, 3, 3, 4, 2, 2, 3, 4, 2, 6, 2}
	class2 := []int{3, 2, 4, 3, 4, 2, 3, 4, 2, 4, 2, 3, 4, 2, 3, 3, 6, 6}
	class3 := []int{15, 20, 25, 15, 20, 25, 15, 20, 25, 15, 20, 25, 15, 20, 25, 15, 20, 25}
	s := Schedule{PeriodSeconds: 80 * 60}
	for p := 0; p < 18; p++ {
		s.Clients = append(s.Clients, map[engine.ClassID]int{
			1: class1[p],
			2: class2[p],
			3: class3[p],
		})
	}
	return s
}
