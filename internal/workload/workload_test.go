package workload

import (
	"math"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/rng"
)

func olapSet() *Set {
	opt := optimizer.New(optimizer.DefaultModel(), TPCHCatalog())
	return NewSet(opt, TPCHTemplates())
}

func oltpSet() *Set {
	opt := optimizer.New(optimizer.DefaultModel(), TPCCCatalog())
	return NewSet(opt, TPCCTemplates())
}

func TestPaperClasses(t *testing.T) {
	classes := PaperClasses()
	if len(classes) != 3 {
		t.Fatalf("%d classes, want 3", len(classes))
	}
	c1, c2, c3 := classes[0], classes[1], classes[2]
	if c1.Kind != OLAP || c2.Kind != OLAP || c3.Kind != OLTP {
		t.Fatal("class kinds wrong")
	}
	if c1.Goal.Target != 0.4 || c2.Goal.Target != 0.6 || c3.Goal.Target != 0.25 {
		t.Fatal("goals do not match the paper")
	}
	if !(c3.Importance > c2.Importance && c2.Importance > c1.Importance) {
		t.Fatal("importance ordering wrong")
	}
}

func TestGoalMet(t *testing.T) {
	v := Goal{Velocity, 0.5}
	if !v.Met(0.5) || !v.Met(0.9) || v.Met(0.4) {
		t.Fatal("velocity goal semantics wrong")
	}
	rt := Goal{AvgResponseTime, 0.25}
	if !rt.Met(0.25) || !rt.Met(0.1) || rt.Met(0.3) {
		t.Fatal("response-time goal semantics wrong")
	}
}

func TestTPCHTemplateCount(t *testing.T) {
	ts := TPCHTemplates()
	if len(ts) != 18 {
		t.Fatalf("%d OLAP templates, want 18 (22 minus Q16/Q19/Q20/Q21)", len(ts))
	}
	names := map[string]bool{}
	for _, tp := range ts {
		if tp.Kind != OLAP {
			t.Fatalf("template %s is not OLAP", tp.Name)
		}
		if names[tp.Name] {
			t.Fatalf("duplicate template %s", tp.Name)
		}
		names[tp.Name] = true
	}
	for _, excluded := range []string{"Q16", "Q19", "Q20", "Q21"} {
		if names[excluded] {
			t.Fatalf("%s must be excluded per the paper", excluded)
		}
	}
}

func TestOLAPCostSpread(t *testing.T) {
	s := olapSet()
	min, max := math.Inf(1), 0.0
	var sum float64
	for i := range s.Templates() {
		tm := s.BaseTimerons(i)
		if tm <= 0 {
			t.Fatalf("template %d has non-positive cost", i)
		}
		min = math.Min(min, tm)
		max = math.Max(max, tm)
		sum += tm
	}
	if max/min < 20 {
		t.Fatalf("cost spread %v is not heavy-tailed (min %v max %v)", max/min, min, max)
	}
	mean := sum / 18
	// The class cost limits in the experiments assume a workload mean in
	// the low thousands of timerons and a max below half the 30k system
	// limit (the paper excluded the very large queries for this reason).
	if mean < 1500 || mean > 8000 {
		t.Fatalf("mean OLAP cost %v out of calibrated range", mean)
	}
	if max > 15000 {
		t.Fatalf("max OLAP cost %v would starve under the 30k system limit", max)
	}
}

func TestOLTPTemplatesAreSubSecondAndCPUBound(t *testing.T) {
	s := oltpSet()
	for i, tp := range s.Templates() {
		c := s.BaseCost(i)
		d := DemandFor(c, 1)
		if d.Work >= 1 {
			t.Fatalf("%s exec alone %vs is not sub-second", tp.Name, d.Work)
		}
		if c.CPUSeconds <= c.IOSeconds {
			t.Fatalf("%s must be CPU-bound (cpu %v <= io %v)", tp.Name, c.CPUSeconds, c.IOSeconds)
		}
	}
}

func TestTPCCMixWeights(t *testing.T) {
	ts := TPCCTemplates()
	if len(ts) != 5 {
		t.Fatalf("%d OLTP templates, want 5", len(ts))
	}
	var total float64
	byName := map[string]float64{}
	for _, tp := range ts {
		total += tp.Weight
		byName[tp.Name] = tp.Weight
	}
	if byName["NewOrder"]/total < 0.40 {
		t.Fatal("NewOrder weight below TPC-C mix")
	}
	if byName["Payment"]/total < 0.40 {
		t.Fatal("Payment weight below TPC-C mix")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	s := olapSet()
	a, b := rng.New(9), rng.New(9)
	for i := 0; i < 50; i++ {
		ia, ib := s.Generate(a), s.Generate(b)
		if ia.Template != ib.Template || ia.Timerons != ib.Timerons {
			t.Fatal("generation not deterministic for equal seeds")
		}
	}
}

func TestGenerateVariesInstanceSize(t *testing.T) {
	s := olapSet()
	src := rng.New(4)
	seen := map[float64]bool{}
	for i := 0; i < 30; i++ {
		inst := s.GenerateFrom(0, src)
		seen[inst.True.CPUSeconds] = true
	}
	if len(seen) < 25 {
		t.Fatalf("instance sizes barely vary: %d distinct of 30", len(seen))
	}
}

func TestGenerateEstimateDiffersFromTruth(t *testing.T) {
	s := olapSet()
	src := rng.New(4)
	diff := 0
	for i := 0; i < 50; i++ {
		inst := s.Generate(src)
		if math.Abs(inst.Est.CPUSeconds-inst.True.CPUSeconds) > 1e-12 {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("optimizer estimation noise never applied")
	}
}

func TestGenerateDemandConsistency(t *testing.T) {
	s := olapSet()
	src := rng.New(6)
	for i := 0; i < 200; i++ {
		inst := s.Generate(src)
		d := inst.Demand
		if d.Work <= 0 {
			t.Fatal("non-positive work")
		}
		// Demand must conserve the plan's true CPU/IO seconds.
		if !close(d.CPUSeconds(), inst.True.CPUSeconds) || !close(d.IOSeconds(), inst.True.IOSeconds) {
			t.Fatalf("demand loses service time: %+v vs %+v", d, inst.True)
		}
		if inst.Parallelism < 1 || inst.Parallelism > 2 {
			t.Fatalf("parallelism %d out of range", inst.Parallelism)
		}
	}
}

func TestDemandForOverlapsStations(t *testing.T) {
	c := optimizer.Cost{CPUSeconds: 10, IOSeconds: 40}
	d := DemandFor(c, 1)
	if !close(d.Work, 40) {
		t.Fatalf("work = %v, want max(cpu,io) = 40", d.Work)
	}
	if !close(d.CPURate, 0.25) || !close(d.IORate, 1) {
		t.Fatalf("rates = %v/%v", d.CPURate, d.IORate)
	}
	d2 := DemandFor(c, 2)
	if !close(d2.Work, 20) || !close(d2.IORate, 2) {
		t.Fatalf("parallel demand = %+v", d2)
	}
}

func TestDemandForDegenerate(t *testing.T) {
	d := DemandFor(optimizer.Cost{}, 1)
	if d.Validate() != nil {
		t.Fatal("degenerate cost must still produce a valid demand")
	}
}

func TestParallelismForThresholds(t *testing.T) {
	if ParallelismFor(999) != 1 || ParallelismFor(1001) != 2 {
		t.Fatal("parallelism thresholds moved")
	}
}

func TestNewSetRejectsBadTemplates(t *testing.T) {
	opt := optimizer.New(optimizer.DefaultModel(), TPCHCatalog())
	defer func() {
		if recover() == nil {
			t.Fatal("zero-weight template did not panic")
		}
	}()
	NewSet(opt, []Template{{Name: "bad", Plan: &optimizer.TableScan{Table: "lineitem"}, Weight: 0}})
}

func TestNewSetRejectsEmpty(t *testing.T) {
	opt := optimizer.New(optimizer.DefaultModel(), TPCHCatalog())
	defer func() {
		if recover() == nil {
			t.Fatal("empty set did not panic")
		}
	}()
	NewSet(opt, nil)
}

func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
