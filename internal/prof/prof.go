// Package prof wires the runtime's CPU and heap profilers into the
// CLIs' -pprof flags. Output paths are caller-supplied (no timestamps,
// no wall-clock reads — profiles land next to the run's other
// artifacts under deterministic names).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Modes accepted by Start.
const (
	CPU  = "cpu"
	Heap = "heap"
)

// Start arms the requested profile and returns the function that
// finalizes it. For "cpu" the profiler starts immediately and stop
// writes the accumulated samples; for "heap" nothing runs until stop,
// which snapshots the live heap (after a GC, so the numbers reflect
// retained memory rather than collection timing). An empty mode
// returns a no-op stop, so callers can wire the flag through
// unconditionally.
func Start(mode, file string) (stop func() error, err error) {
	switch mode {
	case "":
		return func() error { return nil }, nil
	case CPU:
		f, err := os.Create(file)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		return func() error {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			return nil
		}, nil
	case Heap:
		// Create eagerly so an unwritable path fails before the run, not
		// after it.
		f, err := os.Create(file)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		return func() error {
			runtime.GC() // settle live-heap accounting before the snapshot
			werr := pprof.Lookup("heap").WriteTo(f, 0)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("prof: %w", werr)
			}
			return nil
		}, nil
	default:
		return nil, fmt.Errorf("prof: unknown profile mode %q (want cpu or heap)", mode)
	}
}
