// Package solver implements the Performance Solver: given each class's
// utility function and a performance model predicting its metric at any
// candidate cost limit, find the scheduling plan — the vector of class
// cost limits summing to the system cost limit — that maximizes total
// system utility.
//
// Two implementations are provided: a greedy coordinate-exchange solver
// (the production path, linear in the number of moves) and an exhaustive
// grid solver used for small class counts and as a test oracle verifying
// the greedy solver's optimality gap.
package solver

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/utility"
)

// ClassSpec describes one service class to the solver.
type ClassSpec struct {
	ID engine.ClassID
	// Utility scores the class's predicted performance.
	Utility utility.Function
	// Predict maps a candidate cost limit to the class's predicted
	// goal-metric value (built from the perfmodel and the class's last
	// measured performance).
	Predict func(limit float64) float64
	// Min is the smallest allocation the class may receive.
	Min float64
	// GoalDir and GoalTarget optionally describe the class's SLO so the
	// introspecting solvers (Introspector) can judge predicted goal
	// attainment and unreachability. The search itself never reads them
	// — plan choice depends only on Utility and Predict.
	GoalDir    GoalDirection
	GoalTarget float64
}

// Problem is a complete solver input.
type Problem struct {
	Classes []ClassSpec
	// Total is the system cost limit every plan must sum to.
	Total float64
	// Step is the granularity of limit adjustments, in timerons.
	Step float64
}

// Plan maps class IDs to cost limits.
type Plan map[engine.ClassID]float64

// Clone returns a copy of the plan.
func (p Plan) Clone() Plan {
	out := make(Plan, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Sum returns the plan's total allocation. Accumulation runs over sorted
// class IDs: map order would perturb the floating-point rounding from
// process to process, and the total feeds planner decisions.
func (p Plan) Sum() float64 {
	ids := make([]engine.ClassID, 0, len(p))
	for id := range p {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	total := 0.0
	for _, id := range ids {
		total += p[id]
	}
	return total
}

// Solver finds a utility-maximizing plan, starting the search from start
// (which may be nil for "no preference").
type Solver interface {
	Solve(p Problem, start Plan) Plan
}

// Utility evaluates a plan's total system utility under the problem's
// predictions.
func Utility(p Problem, plan Plan) float64 {
	total := 0.0
	for _, c := range p.Classes {
		total += c.Utility.Utility(c.Predict(plan[c.ID]))
	}
	return total
}

func validate(p Problem) {
	if len(p.Classes) == 0 {
		panic("solver: no classes")
	}
	if p.Total <= 0 || p.Step <= 0 {
		panic(fmt.Sprintf("solver: invalid total %v / step %v", p.Total, p.Step))
	}
	minSum := 0.0
	for _, c := range p.Classes {
		if c.Utility == nil || c.Predict == nil {
			panic(fmt.Sprintf("solver: class %d missing utility or prediction", c.ID))
		}
		if c.Min < 0 {
			panic(fmt.Sprintf("solver: class %d negative minimum", c.ID))
		}
		minSum += c.Min
	}
	if minSum > p.Total {
		panic(fmt.Sprintf("solver: class minimums %v exceed total %v", minSum, p.Total))
	}
}

// normalize produces a feasible starting plan: every class at least at its
// minimum, the remainder distributed proportionally to start (or equally
// when start is nil/empty).
func normalize(p Problem, start Plan) Plan {
	plan := make(Plan, len(p.Classes))
	minSum := 0.0
	for _, c := range p.Classes {
		plan[c.ID] = c.Min
		minSum += c.Min
	}
	spare := p.Total - minSum
	weights := make([]float64, len(p.Classes))
	wTotal := 0.0
	for i, c := range p.Classes {
		w := 0.0
		if start != nil {
			w = math.Max(start[c.ID]-c.Min, 0)
		}
		weights[i] = w
		wTotal += w
	}
	for i, c := range p.Classes {
		if wTotal > 0 {
			plan[c.ID] += spare * weights[i] / wTotal
		} else {
			plan[c.ID] += spare / float64(len(p.Classes))
		}
	}
	return plan
}

// Greedy is the production solver: repeated best-improvement transfers
// from a donor class to a recipient class until no transfer improves
// total utility. Each round considers geometrically growing transfer
// sizes (Step, 2·Step, 4·Step, ...), which escapes the local optima of
// convex-marginal utility curves where a large reallocation pays off even
// though no single small step does. Deterministic: ties break on lower
// class index.
type Greedy struct {
	// MaxMoves bounds the search; 0 means a generous default derived
	// from Total/Step.
	MaxMoves int
}

// Solve implements Solver. The exchange runs from the caller's starting
// plan and from each single-class "corner" (one class holding everything
// above the others' minimums); the best result wins. Multi-start covers
// all-or-nothing utility landscapes — e.g. a response-time goal only
// reachable with nearly the whole budget — where no sequence of
// individually improving pairwise transfers crosses the valley.
func (g Greedy) Solve(p Problem, start Plan) Plan {
	plan, _ := g.SolveIntrospect(p, start)
	return plan
}

// cornerPlans returns, per class, the allocation giving that class all
// budget above the other classes' minimums.
func cornerPlans(p Problem) []Plan {
	var out []Plan
	for _, favored := range p.Classes {
		plan := make(Plan, len(p.Classes))
		rest := p.Total
		for _, c := range p.Classes {
			if c.ID != favored.ID {
				plan[c.ID] = c.Min
				rest -= c.Min
			}
		}
		plan[favored.ID] = rest
		out = append(out, plan)
	}
	return out
}

// solveFrom runs the exchange from one starting plan, returning the
// local optimum and how many improving transfers it took.
func (g Greedy) solveFrom(p Problem, plan Plan) (Plan, int) {
	classes := orderedClasses(p)

	maxMoves := g.MaxMoves
	if maxMoves <= 0 {
		maxMoves = int(p.Total/p.Step)*len(p.Classes) + 32
	}

	classUtil := func(c ClassSpec, limit float64) float64 {
		return c.Utility.Utility(c.Predict(limit))
	}

	const eps = 1e-12
	moves := 0
	for move := 0; move < maxMoves; move++ {
		bestGain := eps
		var bestFrom, bestTo = -1, -1
		bestAmount := 0.0
		for i, donor := range classes {
			avail := plan[donor.ID] - donor.Min
			if avail < p.Step-1e-9 {
				continue
			}
			for amount := p.Step; amount <= avail+1e-9; amount *= 2 {
				amt := math.Min(amount, avail)
				lossU := classUtil(donor, plan[donor.ID]) - classUtil(donor, plan[donor.ID]-amt)
				for j, rcpt := range classes {
					if i == j {
						continue
					}
					gainU := classUtil(rcpt, plan[rcpt.ID]+amt) - classUtil(rcpt, plan[rcpt.ID])
					if net := gainU - lossU; net > bestGain {
						bestGain = net
						bestFrom, bestTo = i, j
						bestAmount = amt
					}
				}
				if amount >= avail {
					break // amt was clamped to avail: the donor is drained
				}
			}
		}
		if bestFrom < 0 {
			break
		}
		plan[classes[bestFrom].ID] -= bestAmount
		plan[classes[bestTo].ID] += bestAmount
		moves++
	}
	return plan, moves
}

// Grid is the exhaustive solver: it enumerates all plans on the Step grid
// (feasible for two or three classes) and returns the best. Used as the
// greedy solver's oracle in tests and available as an ablation.
type Grid struct{}

// Solve implements Solver. It panics for more than three classes — the
// enumeration would be infeasible, and the paper's experiments use three.
func (Grid) Solve(p Problem, start Plan) Plan {
	validate(p)
	return gridSolve(p, nil)
}

// gridSolve dispatches on class count; s, when non-nil, accumulates the
// search summary without influencing the chosen plan.
func gridSolve(p Problem, s *Search) Plan {
	classes := orderedClasses(p)
	switch len(classes) {
	case 1:
		if s != nil {
			s.Candidates = 1
		}
		return Plan{classes[0].ID: p.Total}
	case 2:
		return gridSearch(p, classes, 2, s)
	case 3:
		return gridSearch(p, classes, 3, s)
	default:
		panic(fmt.Sprintf("solver: grid solver supports <= 3 classes, got %d", len(classes)))
	}
}

func gridSearch(p Problem, classes []ClassSpec, n int, s *Search) Plan {
	best := normalize(p, nil)
	bestU := Utility(p, best)
	runnerUp := math.Inf(-1)
	candidates := 1
	steps := int(p.Total / p.Step)

	try := func(alloc []float64) {
		plan := make(Plan, n)
		for i, c := range classes {
			if alloc[i] < c.Min-1e-9 {
				return
			}
			plan[c.ID] = alloc[i]
		}
		candidates++
		if u := Utility(p, plan); u > bestU+1e-12 {
			if bestU > runnerUp {
				runnerUp = bestU
			}
			bestU = u
			best = plan
		} else if u > runnerUp {
			runnerUp = u
		}
	}

	if n == 2 {
		for a := 0; a <= steps; a++ {
			x := float64(a) * p.Step
			try([]float64{x, p.Total - x})
		}
	} else {
		for a := 0; a <= steps; a++ {
			x := float64(a) * p.Step
			for b := 0; a+b <= steps; b++ {
				y := float64(b) * p.Step
				try([]float64{x, y, p.Total - x - y})
			}
		}
	}
	if s != nil {
		s.Candidates = candidates
		if candidates > 1 {
			s.RunnerUp, s.HasRunnerUp = runnerUp, true
		}
	}
	return best
}

func orderedClasses(p Problem) []ClassSpec {
	classes := make([]ClassSpec, len(p.Classes))
	copy(classes, p.Classes)
	sort.Slice(classes, func(i, j int) bool { return classes[i].ID < classes[j].ID })
	return classes
}
