package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/utility"
)

// goalProblem is a three-class paper-shaped problem with goal metadata
// attached so the introspection layer can judge feasibility.
func goalProblem() Problem {
	return Problem{
		Total: 30000,
		Step:  500,
		Classes: []ClassSpec{
			{ID: 1, Utility: utility.NewVelocity(0.4, 1), Min: 500,
				Predict: velPredict(1.0 / 15000), GoalDir: GoalAtLeast, GoalTarget: 0.4},
			{ID: 2, Utility: utility.NewVelocity(0.6, 2), Min: 500,
				Predict: velPredict(1.0 / 15000), GoalDir: GoalAtLeast, GoalTarget: 0.6},
			{ID: 3, Utility: utility.NewResponseTime(0.25, 3),
				Predict: rtPredict(0.5, 5e-5, 0.05), GoalDir: GoalAtMost, GoalTarget: 0.25},
		},
	}
}

// plansEqual compares plans field-exactly: introspection must not perturb
// a single bit of the chosen allocation.
func plansEqual(a, b Plan) bool {
	if len(a) != len(b) {
		return false
	}
	for id, v := range a {
		w, ok := b[id]
		//lint:ignore floateq introspection must reproduce the exact same floats, so bit-identity is the property under test
		if !ok || v != w {
			return false
		}
	}
	return true
}

func TestSolveIntrospectMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		p := goalProblem()
		start := Plan{1: 10000, 2: 10000, 3: 10000}
		if iter > 0 {
			a := float64(rng.Intn(40)) * 500
			b := float64(rng.Intn(int((30000-a)/500)+1)) * 500
			start = Plan{1: a, 2: b, 3: 30000 - a - b}
		}
		for _, tc := range []struct {
			name string
			s    Solver
		}{{"greedy", Greedy{}}, {"grid", Grid{}}} {
			plan := tc.s.Solve(p, start)
			iplan, search := tc.s.(Introspector).SolveIntrospect(p, start)
			if !plansEqual(plan, iplan) {
				t.Fatalf("%s: introspected plan %v != plain plan %v", tc.name, iplan, plan)
			}
			if search.Candidates < 1 {
				t.Fatalf("%s: no candidates counted", tc.name)
			}
			if search.HasRunnerUp && search.RunnerUp > search.BestUtility {
				t.Fatalf("%s: runner-up %v beats best %v", tc.name, search.RunnerUp, search.BestUtility)
			}
			if got := Utility(p, iplan); math.Abs(got-search.BestUtility) > 1e-9 {
				t.Fatalf("%s: BestUtility %v != Utility(plan) %v", tc.name, search.BestUtility, got)
			}
			if len(search.Classes) != 3 {
				t.Fatalf("%s: %d class analyses", tc.name, len(search.Classes))
			}
			for i, cs := range search.Classes {
				if i > 0 && cs.ID <= search.Classes[i-1].ID {
					t.Fatalf("%s: class analyses not sorted: %v", tc.name, search.Classes)
				}
			}
		}
	}
}

func TestSearchFeasibleProblem(t *testing.T) {
	// Generous budget: every goal is reachable and the optimum meets all.
	p := goalProblem()
	_, search := Greedy{}.SolveIntrospect(p, nil)
	if search.Infeasible {
		t.Fatalf("feasible problem flagged infeasible: %+v", search)
	}
	if search.Binding != 0 {
		t.Fatalf("feasible problem has binding class %d", search.Binding)
	}
	for _, cs := range search.Classes {
		if !cs.Reachable {
			t.Fatalf("class %d goal should be reachable: %+v", cs.ID, cs)
		}
	}
}

func TestSearchUnreachableGoalBinds(t *testing.T) {
	// Class 3's response-time goal cannot be met at any allocation: the
	// prediction floor sits above the target. It must be flagged binding
	// with Reachable=false, and the miss must carry a positive shortfall.
	p := goalProblem()
	p.Classes[2].Predict = rtPredict(1.5, 1e-5, 0.8)
	for _, tc := range []struct {
		name string
		in   Introspector
	}{{"greedy", Greedy{}}, {"grid", Grid{}}} {
		_, search := tc.in.SolveIntrospect(p, nil)
		if !search.Infeasible {
			t.Fatalf("%s: unreachable goal not flagged infeasible", tc.name)
		}
		if search.Binding != 3 {
			t.Fatalf("%s: binding class %d, want 3", tc.name, search.Binding)
		}
		cs, ok := search.Class(3)
		if !ok || cs.Reachable || cs.GoalMet {
			t.Fatalf("%s: class 3 analysis %+v", tc.name, cs)
		}
		if cs.Shortfall <= 0 {
			t.Fatalf("%s: class 3 shortfall %v", tc.name, cs.Shortfall)
		}
		if cs.Ceiling > 1.5 || cs.Ceiling < 0.8 {
			t.Fatalf("%s: class 3 ceiling %v outside model range", tc.name, cs.Ceiling)
		}
	}
}

func TestSearchConflictingGoalsBindByShortfall(t *testing.T) {
	// Two velocity classes whose goals are individually reachable (each
	// corner prediction hits 1) but jointly impossible: meeting both
	// needs 0.9*20000 + 0.9*20000 > 20000 total. The binding class is the
	// one the optimum leaves furthest from its goal, relatively.
	p := Problem{
		Total: 20000,
		Step:  500,
		Classes: []ClassSpec{
			{ID: 1, Utility: utility.NewVelocity(0.9, 1),
				Predict: velPredict(1.0 / 20000), GoalDir: GoalAtLeast, GoalTarget: 0.9},
			{ID: 2, Utility: utility.NewVelocity(0.9, 2),
				Predict: velPredict(1.0 / 20000), GoalDir: GoalAtLeast, GoalTarget: 0.9},
		},
	}
	_, search := Greedy{}.SolveIntrospect(p, nil)
	if !search.Infeasible {
		t.Fatalf("conflicting goals not flagged infeasible: %+v", search)
	}
	cs, _ := search.Class(search.Binding)
	if cs.GoalMet {
		t.Fatalf("binding class %d met its goal: %+v", search.Binding, cs)
	}
	if !cs.Reachable {
		t.Fatalf("binding class %d should be individually reachable: %+v", search.Binding, cs)
	}
	for _, other := range search.Classes {
		if other.GoalMet || other.ID == search.Binding {
			continue
		}
		if other.Shortfall > cs.Shortfall {
			t.Fatalf("class %d shortfall %v exceeds binding class %d's %v",
				other.ID, other.Shortfall, search.Binding, cs.Shortfall)
		}
	}
}
