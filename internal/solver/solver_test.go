package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/utility"
)

// linear velocity prediction: v = min(1, k*limit)
func velPredict(k float64) func(float64) float64 {
	return func(limit float64) float64 { return math.Min(1, k*limit) }
}

// rtPredict: t = base - s*limit, clamped at floor
func rtPredict(base, s, floor float64) func(float64) float64 {
	return func(limit float64) float64 { return math.Max(floor, base-s*limit) }
}

func twoClassProblem() Problem {
	return Problem{
		Total: 10000,
		Step:  500,
		Classes: []ClassSpec{
			{ID: 1, Utility: utility.NewVelocity(0.4, 1), Predict: velPredict(1.0 / 10000)},
			{ID: 2, Utility: utility.NewVelocity(0.6, 2), Predict: velPredict(1.0 / 10000)},
		},
	}
}

func TestPlanHelpers(t *testing.T) {
	p := Plan{1: 100, 2: 200}
	c := p.Clone()
	c[1] = 999
	if p[1] != 100 {
		t.Fatal("Clone is not a copy")
	}
	if p.Sum() != 300 {
		t.Fatalf("Sum = %v", p.Sum())
	}
}

func TestGreedyConservesTotal(t *testing.T) {
	p := twoClassProblem()
	plan := Greedy{}.Solve(p, nil)
	if math.Abs(plan.Sum()-p.Total) > 1e-6 {
		t.Fatalf("plan sum %v != total %v", plan.Sum(), p.Total)
	}
}

func TestGreedyPrefersImportantViolatedClass(t *testing.T) {
	p := twoClassProblem()
	plan := Greedy{}.Solve(p, nil)
	// Class 2 has a higher goal and higher importance under the same
	// prediction curve: it must get more.
	if plan[2] <= plan[1] {
		t.Fatalf("plan %v should favor class 2", plan)
	}
}

func TestGreedyRespectsMinimums(t *testing.T) {
	p := twoClassProblem()
	p.Classes[0].Min = 3000
	plan := Greedy{}.Solve(p, nil)
	if plan[1] < 3000-1e-9 {
		t.Fatalf("class 1 below minimum: %v", plan[1])
	}
	if math.Abs(plan.Sum()-p.Total) > 1e-6 {
		t.Fatal("total violated with minimums")
	}
}

func TestGreedyMatchesGridOnRandomProblems(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		p := Problem{
			Total: 30000,
			Step:  1500,
			Classes: []ClassSpec{
				{
					ID:      1,
					Utility: utility.NewVelocity(0.2+0.6*rnd.Float64(), 1),
					Predict: velPredict((0.5 + rnd.Float64()) / 30000),
				},
				{
					ID:      2,
					Utility: utility.NewVelocity(0.2+0.6*rnd.Float64(), 2),
					Predict: velPredict((0.5 + rnd.Float64()) / 30000),
				},
				{
					ID:      3,
					Utility: utility.NewResponseTime(0.1+0.4*rnd.Float64(), 3),
					Predict: rtPredict(0.2+0.4*rnd.Float64(), rnd.Float64()*2e-5, 0.05),
				},
			},
		}
		greedy := Greedy{}.Solve(p, nil)
		grid := Grid{}.Solve(p, nil)
		ug, ugrid := Utility(p, greedy), Utility(p, grid)
		// Greedy must come within a small gap of the exhaustive optimum.
		if ug < ugrid-0.05*math.Abs(ugrid)-1e-6 {
			t.Fatalf("trial %d: greedy %v far below grid %v (plans %v vs %v)",
				trial, ug, ugrid, greedy, grid)
		}
	}
}

func TestGreedyDeterministic(t *testing.T) {
	p := twoClassProblem()
	a := Greedy{}.Solve(p, nil)
	b := Greedy{}.Solve(p, nil)
	for id := range a {
		if a[id] != b[id] {
			t.Fatal("greedy solver not deterministic")
		}
	}
}

func TestGreedyUsesStartingPlan(t *testing.T) {
	// With a flat utility landscape (everything saturated at 1), the
	// solver has no reason to move and should keep the start shape.
	p := Problem{
		Total: 10000,
		Step:  500,
		Classes: []ClassSpec{
			{ID: 1, Utility: utility.NewVelocity(0.4, 1), Predict: func(float64) float64 { return 1 }},
			{ID: 2, Utility: utility.NewVelocity(0.6, 1), Predict: func(float64) float64 { return 1 }},
		},
	}
	start := Plan{1: 8000, 2: 2000}
	plan := Greedy{}.Solve(p, start)
	if math.Abs(plan[1]-8000) > 1e-6 || math.Abs(plan[2]-2000) > 1e-6 {
		t.Fatalf("flat landscape moved away from start: %v", plan)
	}
}

func TestGridSingleClass(t *testing.T) {
	p := Problem{
		Total: 5000,
		Step:  500,
		Classes: []ClassSpec{
			{ID: 7, Utility: utility.NewVelocity(0.5, 1), Predict: velPredict(1.0 / 5000)},
		},
	}
	plan := Grid{}.Solve(p, nil)
	if plan[7] != 5000 {
		t.Fatalf("single class must get everything: %v", plan)
	}
}

func TestGridRespectsMinimums(t *testing.T) {
	p := twoClassProblem()
	p.Classes[1].Min = 7000
	plan := Grid{}.Solve(p, nil)
	if plan[2] < 7000 {
		t.Fatalf("grid violated minimum: %v", plan)
	}
}

func TestGridTooManyClassesPanics(t *testing.T) {
	p := twoClassProblem()
	for i := 0; i < 2; i++ {
		p.Classes = append(p.Classes, ClassSpec{
			ID: engine.ClassID(10 + i), Utility: utility.NewVelocity(0.5, 1), Predict: velPredict(1),
		})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("4-class grid did not panic")
		}
	}()
	Grid{}.Solve(p, nil)
}

func TestValidateRejectsBadProblems(t *testing.T) {
	good := twoClassProblem()
	cases := []func(p *Problem){
		func(p *Problem) { p.Classes = nil },
		func(p *Problem) { p.Total = 0 },
		func(p *Problem) { p.Step = 0 },
		func(p *Problem) { p.Classes[0].Utility = nil },
		func(p *Problem) { p.Classes[0].Predict = nil },
		func(p *Problem) { p.Classes[0].Min = -1 },
		func(p *Problem) { p.Classes[0].Min = 6000; p.Classes[1].Min = 6000 },
	}
	for i, mutate := range cases {
		p := good
		p.Classes = append([]ClassSpec{}, good.Classes...)
		mutate(&p)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			Greedy{}.Solve(p, nil)
		}()
	}
}

func TestUtilityEvaluation(t *testing.T) {
	p := twoClassProblem()
	plan := Plan{1: 4000, 2: 6000}
	got := Utility(p, plan)
	want := p.Classes[0].Utility.Utility(0.4) + p.Classes[1].Utility.Utility(0.6)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Utility = %v, want %v", got, want)
	}
}

func TestNormalizeProportionalSpare(t *testing.T) {
	p := twoClassProblem()
	plan := normalize(p, Plan{1: 7500, 2: 2500})
	if math.Abs(plan[1]-7500) > 1e-9 || math.Abs(plan[2]-2500) > 1e-9 {
		t.Fatalf("normalize reshaped a feasible start: %v", plan)
	}
	// Nil start splits equally.
	eq := normalize(p, nil)
	if math.Abs(eq[1]-5000) > 1e-9 {
		t.Fatalf("equal split = %v", eq)
	}
}

func TestNormalizeLiftsToMinimums(t *testing.T) {
	p := twoClassProblem()
	p.Classes[0].Min = 4000
	plan := normalize(p, Plan{1: 0, 2: 10000})
	if plan[1] < 4000-1e-9 {
		t.Fatalf("normalize ignored minimum: %v", plan)
	}
	if math.Abs(plan.Sum()-p.Total) > 1e-6 {
		t.Fatalf("normalize broke total: %v", plan)
	}
}
