// Solver search introspection: the decision audit log wants to know not
// just the chosen plan but how hard it was to find — candidate plans
// considered, improving moves taken, how close the runner-up came — and
// whether the chosen plan meets every class's goal at all. Introspection
// is strictly observational: the introspecting entry points choose the
// exact same plan Solve would, and the goal analysis runs after the
// search using only pure Predict calls.
package solver

import (
	"math"

	"repro/internal/engine"
)

// GoalDirection tells the search analysis how a class's predicted metric
// compares against its goal target.
type GoalDirection int

// Goal directions.
const (
	// GoalNone marks a class without a recorded goal; it never drives
	// the infeasibility signal.
	GoalNone GoalDirection = iota
	// GoalAtLeast requires metric >= target (OLAP velocity goals).
	GoalAtLeast
	// GoalAtMost requires metric <= target (response-time goals).
	GoalAtMost
)

// ClassSearch is the per-class slice of a Search: what the models
// forecast for the class at its chosen allocation and at its corner
// allocation — all budget above the other classes' minimums, the best
// the system could possibly give it.
type ClassSearch struct {
	ID engine.ClassID
	// Alloc is the chosen cost limit.
	Alloc float64
	// Predicted is the model's forecast at Alloc.
	Predicted float64
	// Ceiling is the forecast at the class's corner allocation.
	Ceiling float64
	// GoalMet reports whether Predicted satisfies the class goal
	// (vacuously true without a goal).
	GoalMet bool
	// Reachable reports whether Ceiling satisfies the class goal; false
	// means the goal is unreachable even with the whole spare budget.
	Reachable bool
	// Shortfall is the normalized goal miss at Alloc (0 when met).
	Shortfall float64
}

// Search summarizes one solver invocation for the decision audit log.
type Search struct {
	// Iterations counts improving transfers taken across all search
	// starts (greedy); zero for the exhaustive grid solver.
	Iterations int
	// Candidates counts complete plans evaluated: the normalized start
	// plus one corner per class for the greedy solver, feasible grid
	// points for the grid solver.
	Candidates int
	// BestUtility is the chosen plan's total utility.
	BestUtility float64
	// RunnerUp is the best utility among the candidates that lost;
	// HasRunnerUp is false when there was only one candidate.
	RunnerUp    float64
	HasRunnerUp bool
	// Infeasible reports that even the utility-optimal plan misses at
	// least one class's goal — the solver found no plan meeting all
	// goals. Binding names the class driving it: an unreachable goal
	// wins over a merely-conflicting one, a larger shortfall over a
	// smaller, and the lower ID breaks ties. Zero when feasible.
	Infeasible bool
	Binding    engine.ClassID
	// Classes holds the per-class analysis, sorted by ID.
	Classes []ClassSearch
}

// Clone returns a deep copy (the Classes slice is shared otherwise).
func (s Search) Clone() Search {
	s.Classes = append([]ClassSearch(nil), s.Classes...)
	return s
}

// Class returns the per-class analysis for id, or a zero ClassSearch.
func (s Search) Class(id engine.ClassID) (ClassSearch, bool) {
	for _, cs := range s.Classes {
		if cs.ID == id {
			return cs, true
		}
	}
	return ClassSearch{}, false
}

// Introspector is implemented by solvers that report a Search summary
// alongside the plan. SolveIntrospect must choose the identical plan
// Solve would — introspection may never perturb control decisions.
type Introspector interface {
	SolveIntrospect(p Problem, start Plan) (Plan, Search)
}

// analyzeGoals fills the feasibility half of a Search from the chosen
// plan: per-class predictions, ceilings, and the binding class.
func analyzeGoals(p Problem, plan Plan, s *Search) {
	classes := orderedClasses(p)
	minSum := 0.0
	for _, c := range classes {
		minSum += c.Min
	}
	for _, c := range classes {
		corner := p.Total - (minSum - c.Min)
		cs := ClassSearch{
			ID:        c.ID,
			Alloc:     plan[c.ID],
			Predicted: c.Predict(plan[c.ID]),
			Ceiling:   c.Predict(corner),
			GoalMet:   true,
			Reachable: true,
		}
		switch c.GoalDir {
		case GoalAtLeast:
			cs.GoalMet = cs.Predicted >= c.GoalTarget
			cs.Reachable = cs.Ceiling >= c.GoalTarget
			if !cs.GoalMet && c.GoalTarget > 0 {
				cs.Shortfall = (c.GoalTarget - cs.Predicted) / c.GoalTarget
			}
		case GoalAtMost:
			cs.GoalMet = cs.Predicted <= c.GoalTarget
			cs.Reachable = cs.Ceiling <= c.GoalTarget
			if !cs.GoalMet && c.GoalTarget > 0 {
				cs.Shortfall = (cs.Predicted - c.GoalTarget) / c.GoalTarget
			}
		}
		s.Classes = append(s.Classes, cs)
	}
	bind := -1
	for i, cs := range s.Classes {
		if cs.GoalMet {
			continue
		}
		s.Infeasible = true
		if bind < 0 || bindsHarder(cs, s.Classes[bind]) {
			bind = i
		}
	}
	if bind >= 0 {
		s.Binding = s.Classes[bind].ID
	}
}

// bindsHarder ranks two goal-missing classes for the Binding slot.
func bindsHarder(a, b ClassSearch) bool {
	if a.Reachable != b.Reachable {
		return !a.Reachable // unreachable goals bind hardest
	}
	return a.Shortfall > b.Shortfall // ties keep the lower ID (scan order)
}

// SolveIntrospect implements Introspector for the greedy solver. The
// search is the exact multi-start exchange Solve runs; only counters and
// the losing candidates' utilities are recorded on the side.
func (g Greedy) SolveIntrospect(p Problem, start Plan) (Plan, Search) {
	validate(p)
	var s Search
	best, moves := g.solveFrom(p, normalize(p, start))
	s.Iterations = moves
	s.Candidates = 1
	bestU := Utility(p, best)
	runnerUp := math.Inf(-1)
	for _, corner := range cornerPlans(p) {
		plan, moves := g.solveFrom(p, corner)
		s.Iterations += moves
		s.Candidates++
		if u := Utility(p, plan); u > bestU+1e-12 {
			if bestU > runnerUp {
				runnerUp = bestU
			}
			best, bestU = plan, u
		} else if u > runnerUp {
			runnerUp = u
		}
	}
	s.BestUtility = bestU
	if s.Candidates > 1 {
		s.RunnerUp, s.HasRunnerUp = runnerUp, true
	}
	analyzeGoals(p, best, &s)
	return best, s
}

// SolveIntrospect implements Introspector for the grid solver.
func (Grid) SolveIntrospect(p Problem, start Plan) (Plan, Search) {
	validate(p)
	var s Search
	plan := gridSolve(p, &s)
	s.BestUtility = Utility(p, plan)
	analyzeGoals(p, plan, &s)
	return plan, s
}
