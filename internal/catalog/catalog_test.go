package catalog

import (
	"strings"
	"testing"
)

func TestAddTableDerivesPages(t *testing.T) {
	c := New("db")
	tab := c.AddTable(Table{Name: "t", Rows: 1000, RowBytes: 100})
	// 4096/100 = 40 rows per page -> 25 pages.
	if tab.Pages != 25 {
		t.Fatalf("Pages = %d, want 25", tab.Pages)
	}
}

func TestAddTableRespectsExplicitPages(t *testing.T) {
	c := New("db")
	tab := c.AddTable(Table{Name: "t", Rows: 1000, RowBytes: 100, Pages: 7})
	if tab.Pages != 7 {
		t.Fatalf("Pages = %d, want explicit 7", tab.Pages)
	}
}

func TestAddTableWideRows(t *testing.T) {
	c := New("db")
	tab := c.AddTable(Table{Name: "wide", Rows: 10, RowBytes: 100000})
	if tab.Pages != 10 {
		t.Fatalf("wide rows: Pages = %d, want one row per page", tab.Pages)
	}
}

func TestDuplicateTablePanics(t *testing.T) {
	c := New("db")
	c.AddTable(Table{Name: "t", Rows: 1, RowBytes: 10})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate table did not panic")
		}
	}()
	c.AddTable(Table{Name: "t", Rows: 1, RowBytes: 10})
}

func TestAddIndexDerivesShape(t *testing.T) {
	c := New("db")
	c.AddTable(Table{Name: "t", Rows: 1_000_000, RowBytes: 100})
	ix := c.AddIndex(Index{Name: "i", Table: "t", Columns: []string{"k"}})
	if ix.LeafPages <= 0 {
		t.Fatal("no leaf pages derived")
	}
	// 170^2 = 28900 < 1e6 <= 170^3, so 2 internal jumps + leaf = 4 levels.
	if ix.Levels != 4 {
		t.Fatalf("Levels = %d, want 4", ix.Levels)
	}
	tab, _ := c.Table("t")
	if len(tab.Indexes) != 1 || tab.Indexes[0] != "i" {
		t.Fatalf("table index list = %v", tab.Indexes)
	}
}

func TestAddIndexUnknownTablePanics(t *testing.T) {
	c := New("db")
	defer func() {
		if recover() == nil {
			t.Fatal("index on unknown table did not panic")
		}
	}()
	c.AddIndex(Index{Name: "i", Table: "missing"})
}

func TestMustTablePanicsOnUnknown(t *testing.T) {
	c := New("db")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustTable on unknown did not panic")
		}
		if !strings.Contains(r.(string), "unknown table") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	c.MustTable("nope")
}

func TestTableNamesSorted(t *testing.T) {
	c := New("db")
	for _, n := range []string{"zeta", "alpha", "mid"} {
		c.AddTable(Table{Name: n, Rows: 1, RowBytes: 10})
	}
	names := c.TableNames()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("TableNames = %v", names)
		}
	}
}

func TestTPCHShape(t *testing.T) {
	c := TPCH(0.5)
	li := c.MustTable("lineitem")
	if li.Rows != 3_000_000 {
		t.Fatalf("lineitem rows = %d at sf 0.5, want 3M", li.Rows)
	}
	ord := c.MustTable("orders")
	if li.Rows != 4*ord.Rows {
		t.Fatalf("lineitem:orders = %d:%d, want 4:1", li.Rows, ord.Rows)
	}
	// The 500 MB database should occupy roughly 125k pages (~500 MB).
	total := c.TotalPages()
	if total < 100_000 || total > 250_000 {
		t.Fatalf("total pages = %d, not in a ~500MB ballpark", total)
	}
	if _, ok := c.Index("l_orderkey"); !ok {
		t.Fatal("missing lineitem clustering index")
	}
}

func TestTPCHScalesLinearly(t *testing.T) {
	small := TPCH(0.5)
	big := TPCH(1.0)
	s := small.MustTable("lineitem").Rows
	b := big.MustTable("lineitem").Rows
	if b != 2*s {
		t.Fatalf("scaling broken: sf1=%d, sf0.5=%d", b, s)
	}
	// Fixed-size tables do not scale.
	if small.MustTable("nation").Rows != big.MustTable("nation").Rows {
		t.Fatal("nation should not scale")
	}
}

func TestTPCCShape(t *testing.T) {
	c := TPCC(50)
	if c.MustTable("warehouse").Rows != 50 {
		t.Fatal("warehouse rows != warehouses")
	}
	if c.MustTable("stock").Rows != 5_000_000 {
		t.Fatalf("stock rows = %d, want 100k per warehouse", c.MustTable("stock").Rows)
	}
	if c.MustTable("item").Rows != 100_000 {
		t.Fatal("item table must be warehouse-independent")
	}
	for _, ix := range []string{"c_w_id_c_d_id_c_id", "ol_w_id_ol_d_id_ol_o_id", "s_w_id_s_i_id"} {
		if _, ok := c.Index(ix); !ok {
			t.Fatalf("missing index %s", ix)
		}
	}
}

func TestInvalidScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TPCH(0) did not panic")
		}
	}()
	TPCH(0)
}

func TestInvalidWarehousesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TPCC(0) did not panic")
		}
	}()
	TPCC(0)
}
