// Package catalog models the database statistics the optimizer consults:
// table cardinalities, row widths, page counts, and available indexes for a
// TPC-H-like decision-support database and a TPC-C-like transactional
// database.
//
// The paper's testbed used a 500 MB TPC-H database and a 50-warehouse TPC-C
// database, placed in separate databases so the experiments isolate CPU and
// I/O allocation effects; the two Catalog constructors mirror that setup.
package catalog

import (
	"fmt"
	"sort"
)

// PageSize is the size of a database page in bytes (DB2's default 4 KiB).
const PageSize = 4096

// Index describes a secondary access path on a table.
type Index struct {
	Name    string
	Table   string
	Columns []string
	// Clustering indexes return rows in physical order, so range scans
	// through them touch contiguous pages.
	Clustering bool
	// LeafPages is the number of leaf pages in the index.
	LeafPages int
	// Levels is the B-tree height, including the leaf level.
	Levels int
}

// Table describes one base table's statistics.
type Table struct {
	Name     string
	Rows     int64
	RowBytes int
	// Pages is the number of data pages the table occupies.
	Pages int64
	// Indexes lists secondary access paths, keyed by name in the Catalog.
	Indexes []string
}

// Catalog is a collection of table and index statistics for one database.
type Catalog struct {
	Name    string
	tables  map[string]*Table
	indexes map[string]*Index
}

// New returns an empty catalog with the given database name.
func New(name string) *Catalog {
	return &Catalog{
		Name:    name,
		tables:  make(map[string]*Table),
		indexes: make(map[string]*Index),
	}
}

// AddTable registers a table, deriving Pages from Rows and RowBytes when
// Pages is zero. It panics on duplicate names: catalogs are built once by
// hand, so a duplicate is a programming error.
func (c *Catalog) AddTable(t Table) *Table {
	if _, dup := c.tables[t.Name]; dup {
		panic(fmt.Sprintf("catalog: duplicate table %q", t.Name))
	}
	if t.Rows < 0 || t.RowBytes <= 0 {
		panic(fmt.Sprintf("catalog: invalid stats for table %q", t.Name))
	}
	if t.Pages == 0 {
		rowsPerPage := int64(PageSize / t.RowBytes)
		if rowsPerPage < 1 {
			rowsPerPage = 1
		}
		t.Pages = (t.Rows + rowsPerPage - 1) / rowsPerPage
	}
	tt := t
	c.tables[t.Name] = &tt
	return &tt
}

// AddIndex registers an index on an existing table, deriving LeafPages and
// Levels when zero. It panics if the table is unknown or the name is a
// duplicate.
func (c *Catalog) AddIndex(ix Index) *Index {
	t, ok := c.tables[ix.Table]
	if !ok {
		panic(fmt.Sprintf("catalog: index %q on unknown table %q", ix.Name, ix.Table))
	}
	if _, dup := c.indexes[ix.Name]; dup {
		panic(fmt.Sprintf("catalog: duplicate index %q", ix.Name))
	}
	if ix.LeafPages == 0 {
		// Assume ~16-byte key entries plus overhead: ~170 entries/page.
		ix.LeafPages = int(t.Rows/170) + 1
	}
	if ix.Levels == 0 {
		ix.Levels = 2
		for span := int64(170); span < t.Rows; span *= 170 {
			ix.Levels++
		}
	}
	ii := ix
	c.indexes[ix.Name] = &ii
	t.Indexes = append(t.Indexes, ix.Name)
	return &ii
}

// Table returns the statistics for a table. ok is false when unknown.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// MustTable returns the statistics for a table, panicking when unknown.
// The optimizer uses it for hand-built plans whose tables must exist.
func (c *Catalog) MustTable(name string) *Table {
	t, ok := c.tables[name]
	if !ok {
		panic(fmt.Sprintf("catalog: unknown table %q in %s", name, c.Name))
	}
	return t
}

// Index returns the statistics for an index. ok is false when unknown.
func (c *Catalog) Index(name string) (*Index, bool) {
	ix, ok := c.indexes[name]
	return ix, ok
}

// TableNames returns all table names in sorted order.
func (c *Catalog) TableNames() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalPages returns the number of data pages across all tables.
func (c *Catalog) TotalPages() int64 {
	var total int64
	for _, t := range c.tables {
		total += t.Pages
	}
	return total
}

// TPCH returns a catalog for a TPC-H-like database at the given scale
// factor. The paper used a 500 MB database, i.e. scale factor 0.5.
func TPCH(scale float64) *Catalog {
	if scale <= 0 {
		panic("catalog: TPCH scale must be positive")
	}
	c := New(fmt.Sprintf("tpch-sf%.2g", scale))
	rows := func(base float64) int64 { return int64(base * scale) }

	c.AddTable(Table{Name: "lineitem", Rows: rows(6_000_000), RowBytes: 120})
	c.AddTable(Table{Name: "orders", Rows: rows(1_500_000), RowBytes: 100})
	c.AddTable(Table{Name: "partsupp", Rows: rows(800_000), RowBytes: 140})
	c.AddTable(Table{Name: "part", Rows: rows(200_000), RowBytes: 160})
	c.AddTable(Table{Name: "customer", Rows: rows(150_000), RowBytes: 180})
	c.AddTable(Table{Name: "supplier", Rows: rows(10_000), RowBytes: 160})
	c.AddTable(Table{Name: "nation", Rows: 25, RowBytes: 120})
	c.AddTable(Table{Name: "region", Rows: 5, RowBytes: 120})

	c.AddIndex(Index{Name: "l_orderkey", Table: "lineitem", Columns: []string{"l_orderkey"}, Clustering: true})
	c.AddIndex(Index{Name: "l_partkey", Table: "lineitem", Columns: []string{"l_partkey"}})
	c.AddIndex(Index{Name: "o_orderkey", Table: "orders", Columns: []string{"o_orderkey"}, Clustering: true})
	c.AddIndex(Index{Name: "o_custkey", Table: "orders", Columns: []string{"o_custkey"}})
	c.AddIndex(Index{Name: "ps_partkey", Table: "partsupp", Columns: []string{"ps_partkey"}, Clustering: true})
	c.AddIndex(Index{Name: "p_partkey", Table: "part", Columns: []string{"p_partkey"}, Clustering: true})
	c.AddIndex(Index{Name: "c_custkey", Table: "customer", Columns: []string{"c_custkey"}, Clustering: true})
	c.AddIndex(Index{Name: "s_suppkey", Table: "supplier", Columns: []string{"s_suppkey"}, Clustering: true})
	return c
}

// TPCC returns a catalog for a TPC-C-like database with the given number of
// warehouses. The paper used 50 warehouses.
func TPCC(warehouses int) *Catalog {
	if warehouses <= 0 {
		panic("catalog: TPCC warehouses must be positive")
	}
	w := int64(warehouses)
	c := New(fmt.Sprintf("tpcc-w%d", warehouses))

	c.AddTable(Table{Name: "warehouse", Rows: w, RowBytes: 96})
	c.AddTable(Table{Name: "district", Rows: 10 * w, RowBytes: 112})
	c.AddTable(Table{Name: "customer", Rows: 30_000 * w, RowBytes: 680})
	c.AddTable(Table{Name: "history", Rows: 30_000 * w, RowBytes: 52})
	c.AddTable(Table{Name: "neworder", Rows: 9_000 * w, RowBytes: 12})
	c.AddTable(Table{Name: "order", Rows: 30_000 * w, RowBytes: 32})
	c.AddTable(Table{Name: "orderline", Rows: 300_000 * w, RowBytes: 64})
	c.AddTable(Table{Name: "item", Rows: 100_000, RowBytes: 88})
	c.AddTable(Table{Name: "stock", Rows: 100_000 * w, RowBytes: 320})

	c.AddIndex(Index{Name: "w_id", Table: "warehouse", Columns: []string{"w_id"}, Clustering: true})
	c.AddIndex(Index{Name: "d_w_id_d_id", Table: "district", Columns: []string{"d_w_id", "d_id"}, Clustering: true})
	c.AddIndex(Index{Name: "c_w_id_c_d_id_c_id", Table: "customer", Columns: []string{"c_w_id", "c_d_id", "c_id"}, Clustering: true})
	c.AddIndex(Index{Name: "c_last", Table: "customer", Columns: []string{"c_w_id", "c_d_id", "c_last"}})
	c.AddIndex(Index{Name: "no_w_id_no_d_id_no_o_id", Table: "neworder", Columns: []string{"no_w_id", "no_d_id", "no_o_id"}, Clustering: true})
	c.AddIndex(Index{Name: "o_w_id_o_d_id_o_id", Table: "order", Columns: []string{"o_w_id", "o_d_id", "o_id"}, Clustering: true})
	c.AddIndex(Index{Name: "ol_w_id_ol_d_id_ol_o_id", Table: "orderline", Columns: []string{"ol_w_id", "ol_d_id", "ol_o_id"}, Clustering: true})
	c.AddIndex(Index{Name: "i_id", Table: "item", Columns: []string{"i_id"}, Clustering: true})
	c.AddIndex(Index{Name: "s_w_id_s_i_id", Table: "stock", Columns: []string{"s_w_id", "s_i_id"}, Clustering: true})
	return c
}
