// Package simclock provides a deterministic discrete-event simulation
// kernel. All other packages in this repository run on virtual time
// supplied by a Clock, so a 24-hour experiment from the paper finishes in
// well under a second of wall time.
//
// Time is represented as float64 seconds from the start of the simulation.
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking by sequence number), which keeps runs fully
// deterministic.
//
// The event queue is a binary heap of event values stored inline in a
// slice: scheduling an event performs no per-event allocation (the slice
// is its own free-list — vacated slots are reused by later events), and
// the hot path runs hand-rolled sift loops instead of container/heap's
// interface dispatch. Cancellation is opt-in: only events scheduled via
// AtCancellable/AfterCancellable pay for registration in the id→index
// map; the common never-cancelled event (client arrivals, schedule
// boundaries) skips the map entirely.
//
// A Clock is not safe for concurrent use. Parallel experiments must give
// every run its own Clock (see internal/experiment's isolation invariant).
package simclock

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time = float64

// EventFunc is a callback invoked when an event fires. The clock's Now()
// equals the event's scheduled time during the call.
type EventFunc func()

// EventID identifies a cancellable scheduled event. The zero EventID is
// never issued and is never pending.
type EventID uint64

// event is stored by value inside the Clock's heap slice; id is 0 for
// events that cannot be cancelled (the common case).
type event struct {
	at  Time
	seq uint64
	id  EventID
	fn  EventFunc
}

// before is the deterministic firing order: earliest time first, FIFO
// (scheduling order) among ties.
func (e *event) before(o *event) bool {
	if e.at < o.at {
		return true
	}
	if o.at < e.at {
		return false
	}
	return e.seq < o.seq
}

// Clock is a discrete-event simulation clock. The zero value is not usable;
// call New.
type Clock struct {
	now    Time
	seq    uint64
	nextID EventID
	heap   []event
	// byID maps a cancellable event's id to its current heap index. It is
	// allocated lazily on the first AtCancellable call, so clocks that
	// never cancel (most experiment runs) carry no map at all.
	byID    map[EventID]int
	stopped bool
}

// New returns a Clock positioned at time 0 with no pending events.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() Time { return c.now }

// Pending reports the number of events still scheduled.
func (c *Clock) Pending() int { return len(c.heap) }

func (c *Clock) validate(t Time, fn EventFunc) {
	if fn == nil {
		panic("simclock: nil event function")
	}
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling event at %v before now %v", t, c.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("simclock: invalid event time %v", t))
	}
}

// At schedules fn to run at absolute virtual time t. Events scheduled with
// At cannot be cancelled; use AtCancellable when cancellation is needed.
// Scheduling in the past panics: it would silently corrupt causality in a
// simulation.
func (c *Clock) At(t Time, fn EventFunc) {
	c.validate(t, fn)
	c.seq++
	c.push(event{at: t, seq: c.seq, fn: fn})
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (c *Clock) After(d float64, fn EventFunc) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	c.At(c.now+d, fn)
}

// AtCancellable schedules fn at absolute time t and returns an EventID
// that Cancel accepts. Cancellable events additionally maintain an
// id→heap-index registration, so reserve this path for events that
// realistically may be cancelled (completion re-arms, ticker ticks).
func (c *Clock) AtCancellable(t Time, fn EventFunc) EventID {
	c.validate(t, fn)
	c.seq++
	c.nextID++
	if c.byID == nil {
		//lint:ignore hotalloc one-time lazy init of the cancellable-event index
		c.byID = make(map[EventID]int, 8)
	}
	c.push(event{at: t, seq: c.seq, id: c.nextID, fn: fn})
	return c.nextID
}

// AfterCancellable schedules fn d seconds from now, cancellably.
func (c *Clock) AfterCancellable(d float64, fn EventFunc) EventID {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return c.AtCancellable(c.now+d, fn)
}

// Cancel removes a scheduled cancellable event. It reports whether the
// event was still pending (false if it already fired, was previously
// cancelled, or was scheduled via the non-cancellable At/After path).
func (c *Clock) Cancel(id EventID) bool {
	i, ok := c.byID[id]
	if !ok {
		return false
	}
	delete(c.byID, id)
	c.removeAt(i)
	return true
}

// Stop makes the currently executing Run return once the in-flight event
// callback finishes. Pending events remain scheduled.
func (c *Clock) Stop() { c.stopped = true }

// Step fires the single earliest pending event, advancing the clock to its
// time. It reports whether an event fired.
func (c *Clock) Step() bool {
	if len(c.heap) == 0 {
		return false
	}
	e := c.heap[0]
	n := len(c.heap) - 1
	if n > 0 {
		c.heap[0] = c.heap[n]
		c.heap[n] = event{} // release the closure for GC
		c.heap = c.heap[:n]
		c.siftDown(0)
	} else {
		c.heap[0] = event{}
		c.heap = c.heap[:0]
	}
	if e.id != 0 {
		delete(c.byID, e.id)
	}
	c.now = e.at
	e.fn()
	return true
}

// Run fires events in order until no events remain or Stop is called.
func (c *Clock) Run() {
	c.stopped = false
	for !c.stopped && c.Step() {
	}
}

// RunUntil fires events with scheduled time <= deadline, then advances the
// clock to exactly deadline. Events after the deadline stay pending.
func (c *Clock) RunUntil(deadline Time) {
	if deadline < c.now {
		panic(fmt.Sprintf("simclock: RunUntil deadline %v before now %v", deadline, c.now))
	}
	c.stopped = false
	for !c.stopped {
		if len(c.heap) == 0 || c.heap[0].at > deadline {
			break
		}
		c.Step()
	}
	if !c.stopped && c.now < deadline {
		c.now = deadline
	}
}

// NextEventTime returns the time of the earliest pending event and true, or
// 0 and false when nothing is scheduled.
func (c *Clock) NextEventTime() (Time, bool) {
	if len(c.heap) == 0 {
		return 0, false
	}
	return c.heap[0].at, true
}

// --- heap internals (hand-rolled: no container/heap interface dispatch,
// hole-based sifting writes each element once, and the id→index map is
// only touched for cancellable events) ---

func (c *Clock) push(e event) {
	c.heap = append(c.heap, e)
	c.siftUp(len(c.heap) - 1)
}

func (c *Clock) siftUp(i int) {
	h := c.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !e.before(&h[p]) {
			break
		}
		h[i] = h[p]
		if h[i].id != 0 {
			c.byID[h[i].id] = i
		}
		i = p
	}
	h[i] = e
	if e.id != 0 {
		c.byID[e.id] = i
	}
}

// siftDown restores heap order below i; it reports whether the element
// moved (used by removeAt to decide whether siftUp is still needed).
func (c *Clock) siftDown(i int) bool {
	h := c.heap
	n := len(h)
	e := h[i]
	start := i
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].before(&h[l]) {
			m = r
		}
		if !h[m].before(&e) {
			break
		}
		h[i] = h[m]
		if h[i].id != 0 {
			c.byID[h[i].id] = i
		}
		i = m
	}
	h[i] = e
	if e.id != 0 {
		c.byID[e.id] = i
	}
	return i != start
}

// removeAt deletes the event at heap index i (used only by Cancel).
func (c *Clock) removeAt(i int) {
	n := len(c.heap) - 1
	if i != n {
		c.heap[i] = c.heap[n]
		c.heap[n] = event{}
		c.heap = c.heap[:n]
		if !c.siftDown(i) {
			c.siftUp(i)
		}
	} else {
		c.heap[n] = event{}
		c.heap = c.heap[:n]
	}
}

// Ticker invokes fn every interval seconds, starting one interval from the
// time StartTicker is called, until the returned stop function is invoked.
type Ticker struct {
	clock    *Clock
	interval float64
	fn       EventFunc
	tick     EventFunc // built once; rescheduling allocates no closures
	pending  EventID
	active   bool
}

// StartTicker schedules fn to run every interval seconds. The interval must
// be positive.
func (c *Clock) StartTicker(interval float64, fn EventFunc) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("simclock: non-positive ticker interval %v", interval))
	}
	t := &Ticker{clock: c, interval: interval, fn: fn, active: true}
	t.tick = func() {
		if !t.active {
			return
		}
		t.fn()
		if t.active {
			t.schedule()
		}
	}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.pending = t.clock.AfterCancellable(t.interval, t.tick)
}

// Stop cancels future ticks. It is safe to call from within the tick
// callback and safe to call more than once.
func (t *Ticker) Stop() {
	if !t.active {
		return
	}
	t.active = false
	t.clock.Cancel(t.pending)
}

// Start re-arms a stopped ticker: the next tick fires one interval from
// now. Starting an active ticker is a no-op.
func (t *Ticker) Start() {
	if t.active {
		return
	}
	t.active = true
	t.schedule()
}
