// Package simclock provides a deterministic discrete-event simulation
// kernel. All other packages in this repository run on virtual time
// supplied by a Clock, so a 24-hour experiment from the paper finishes in
// well under a second of wall time.
//
// Time is represented as float64 seconds from the start of the simulation.
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking by sequence number), which keeps runs fully
// deterministic.
package simclock

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time = float64

// EventFunc is a callback invoked when an event fires. The clock's Now()
// equals the event's scheduled time during the call.
type EventFunc func()

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

type event struct {
	at    Time
	seq   uint64
	id    EventID
	fn    EventFunc
	index int // heap index, -1 when removed
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Clock is a discrete-event simulation clock. The zero value is not usable;
// call New.
type Clock struct {
	now     Time
	seq     uint64
	nextID  EventID
	heap    eventHeap
	byID    map[EventID]*event
	stopped bool
}

// New returns a Clock positioned at time 0 with no pending events.
func New() *Clock {
	return &Clock{byID: make(map[EventID]*event)}
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() Time { return c.now }

// Pending reports the number of events still scheduled.
func (c *Clock) Pending() int { return len(c.heap) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently corrupt causality in a simulation.
func (c *Clock) At(t Time, fn EventFunc) EventID {
	if fn == nil {
		panic("simclock: nil event function")
	}
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling event at %v before now %v", t, c.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("simclock: invalid event time %v", t))
	}
	c.nextID++
	c.seq++
	e := &event{at: t, seq: c.seq, id: c.nextID, fn: fn}
	heap.Push(&c.heap, e)
	c.byID[e.id] = e
	return e.id
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (c *Clock) After(d float64, fn EventFunc) EventID {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return c.At(c.now+d, fn)
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending (false if it already fired or was previously cancelled).
func (c *Clock) Cancel(id EventID) bool {
	e, ok := c.byID[id]
	if !ok {
		return false
	}
	delete(c.byID, id)
	heap.Remove(&c.heap, e.index)
	return true
}

// Stop makes the currently executing Run return once the in-flight event
// callback finishes. Pending events remain scheduled.
func (c *Clock) Stop() { c.stopped = true }

// Step fires the single earliest pending event, advancing the clock to its
// time. It reports whether an event fired.
func (c *Clock) Step() bool {
	if len(c.heap) == 0 {
		return false
	}
	e := heap.Pop(&c.heap).(*event)
	delete(c.byID, e.id)
	c.now = e.at
	e.fn()
	return true
}

// Run fires events in order until no events remain or Stop is called.
func (c *Clock) Run() {
	c.stopped = false
	for !c.stopped && c.Step() {
	}
}

// RunUntil fires events with scheduled time <= deadline, then advances the
// clock to exactly deadline. Events after the deadline stay pending.
func (c *Clock) RunUntil(deadline Time) {
	if deadline < c.now {
		panic(fmt.Sprintf("simclock: RunUntil deadline %v before now %v", deadline, c.now))
	}
	c.stopped = false
	for !c.stopped {
		if len(c.heap) == 0 || c.heap[0].at > deadline {
			break
		}
		c.Step()
	}
	if !c.stopped && c.now < deadline {
		c.now = deadline
	}
}

// NextEventTime returns the time of the earliest pending event and true, or
// 0 and false when nothing is scheduled.
func (c *Clock) NextEventTime() (Time, bool) {
	if len(c.heap) == 0 {
		return 0, false
	}
	return c.heap[0].at, true
}

// Ticker invokes fn every interval seconds, starting one interval from the
// time StartTicker is called, until the returned stop function is invoked.
type Ticker struct {
	clock    *Clock
	interval float64
	fn       EventFunc
	pending  EventID
	active   bool
}

// StartTicker schedules fn to run every interval seconds. The interval must
// be positive.
func (c *Clock) StartTicker(interval float64, fn EventFunc) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("simclock: non-positive ticker interval %v", interval))
	}
	t := &Ticker{clock: c, interval: interval, fn: fn, active: true}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.pending = t.clock.After(t.interval, func() {
		if !t.active {
			return
		}
		t.fn()
		if t.active {
			t.schedule()
		}
	})
}

// Stop cancels future ticks. It is safe to call from within the tick
// callback and safe to call more than once.
func (t *Ticker) Stop() {
	if !t.active {
		return
	}
	t.active = false
	t.clock.Cancel(t.pending)
}
