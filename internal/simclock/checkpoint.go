// Checkpoint support: the clock's scheduling state is exportable and
// restorable so a run can be frozen at a quiescent boundary (between
// RunUntil calls, when no event at or before now remains) and resumed
// later with identical behaviour.
//
// Event callbacks are closures and cannot be serialized; instead each
// owning component records the (time, sequence, id) triple of every event
// it has pending — an EventRef — and re-arms an equivalent closure via
// RestoreEvent after Restore has reset the counters. Because both the
// sequence counter and each event's original sequence number are
// preserved, FIFO tie-breaking among simultaneous events reproduces
// exactly, and events scheduled after the restore draw the same sequence
// numbers they would have drawn in an uninterrupted run.
package simclock

import "fmt"

// EventRef identifies one scheduled event for checkpoint/restore: its
// absolute firing time, the sequence number that tie-breaks simultaneous
// events, and — for cancellable events — the id Cancel accepts. Refs are
// plain data, safe to serialize.
type EventRef struct {
	At  Time
	Seq uint64
	ID  EventID // 0 for events scheduled via At/After/AtRef
}

// State is the clock's counter state at a checkpoint boundary. It does
// not carry the pending events themselves — their callbacks are closures
// only the owning components can rebuild (see RestoreEvent).
type State struct {
	Now    Time
	Seq    uint64
	NextID EventID
}

// State captures the clock's counters for a checkpoint.
func (c *Clock) State() State {
	return State{Now: c.now, Seq: c.seq, NextID: c.nextID}
}

// Restore resets the clock to a checkpointed state: every pending event
// is discarded (the callers re-arm theirs via RestoreEvent) and the time,
// sequence, and id counters resume exactly where the checkpointed run
// left them. Restore may rewind time; it is the one sanctioned way to do
// so.
func (c *Clock) Restore(s State) {
	for i := range c.heap {
		c.heap[i] = event{} // release closures for GC
	}
	c.heap = c.heap[:0]
	c.byID = nil
	c.now = s.Now
	c.seq = s.Seq
	c.nextID = s.NextID
	c.stopped = false
}

// RestoreEvent re-arms one event with its original scheduling triple, so
// the restored heap fires in exactly the checkpointed order. The ref must
// come from the same logical run: its sequence and id must not exceed the
// restored counters, and its time must not lie in the past.
func (c *Clock) RestoreEvent(ref EventRef, fn EventFunc) {
	c.validate(ref.At, fn)
	if ref.Seq == 0 || ref.Seq > c.seq {
		panic(fmt.Sprintf("simclock: restored event seq %d outside issued range [1,%d]", ref.Seq, c.seq))
	}
	if ref.ID > c.nextID {
		panic(fmt.Sprintf("simclock: restored event id %d outside issued range [1,%d]", ref.ID, c.nextID))
	}
	if ref.ID != 0 {
		if c.byID == nil {
			c.byID = make(map[EventID]int, 8)
		}
		if _, dup := c.byID[ref.ID]; dup {
			panic(fmt.Sprintf("simclock: restored event id %d already pending", ref.ID))
		}
	}
	c.push(event{at: ref.At, seq: ref.Seq, id: ref.ID, fn: fn})
}

// AtRef schedules fn at absolute time t exactly like At, additionally
// returning the event's ref so the caller can checkpoint it. Events
// scheduled this way still cannot be cancelled.
func (c *Clock) AtRef(t Time, fn EventFunc) EventRef {
	c.validate(t, fn)
	c.seq++
	c.push(event{at: t, seq: c.seq, fn: fn})
	return EventRef{At: t, Seq: c.seq}
}

// AfterRef schedules fn d seconds from now, returning its ref.
func (c *Clock) AfterRef(d float64, fn EventFunc) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return c.AtRef(c.now+d, fn)
}

// Ref returns the checkpoint ref of a pending cancellable event, or
// ok=false when the id is no longer pending.
func (c *Clock) Ref(id EventID) (EventRef, bool) {
	i, ok := c.byID[id]
	if !ok {
		return EventRef{}, false
	}
	e := &c.heap[i]
	return EventRef{At: e.at, Seq: e.seq, ID: e.id}, true
}

// Ref returns the ref of the ticker's pending tick, or ok=false when the
// ticker is stopped.
func (t *Ticker) Ref() (EventRef, bool) {
	if !t.active {
		return EventRef{}, false
	}
	return t.clock.Ref(t.pending)
}

// TickerState is a ticker's serializable state.
type TickerState struct {
	Active bool
	Ref    EventRef // meaningful only when Active
}

// State captures the ticker for a checkpoint. It panics when the ticker
// is active but its pending tick is not in the clock — a ticker's tick
// always reschedules itself, so at a quiescent boundary an active ticker
// always has a pending event.
func (t *Ticker) State() TickerState {
	if !t.active {
		return TickerState{}
	}
	ref, ok := t.clock.Ref(t.pending)
	if !ok {
		panic("simclock: active ticker has no pending tick")
	}
	return TickerState{Active: true, Ref: ref}
}

// Restore re-arms the ticker after Clock.Restore discarded its pending
// tick: active=false leaves it stopped; otherwise ref must be the tick
// ref the checkpoint recorded.
func (t *Ticker) Restore(ref EventRef, active bool) {
	t.active = active
	if !active {
		return
	}
	if ref.ID == 0 {
		panic("simclock: ticker restore requires a cancellable ref")
	}
	t.clock.RestoreEvent(ref, t.tick)
	t.pending = ref.ID
}
