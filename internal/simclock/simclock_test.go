package simclock

import (
	"math/rand"
	"sort"
	"testing"
)

func TestNewClockStartsAtZero(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", c.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	c := New()
	var fired []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		c.At(at, func() { fired = append(fired, at) })
	}
	c.Run()
	want := []float64{1, 2, 3, 4, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired order %v, want %v", fired, want)
		}
	}
}

func TestSameTimeEventsFireFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(7, func() { order = append(order, i) })
	}
	c.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("FIFO violated at %d: order %v", i, order)
		}
	}
}

func TestNowDuringEventEqualsScheduledTime(t *testing.T) {
	c := New()
	c.At(42.5, func() {
		if c.Now() != 42.5 {
			t.Errorf("Now() inside event = %v, want 42.5", c.Now())
		}
	})
	c.Run()
	if c.Now() != 42.5 {
		t.Fatalf("Now() after run = %v, want 42.5", c.Now())
	}
}

func TestAfterSchedulesRelativeToNow(t *testing.T) {
	c := New()
	var second float64
	c.At(10, func() {
		c.After(5, func() { second = c.Now() })
	})
	c.Run()
	if second != 15 {
		t.Fatalf("After fired at %v, want 15", second)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := New()
	fired := false
	id := c.AtCancellable(1, func() { fired = true })
	if !c.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if c.Cancel(id) {
		t.Fatal("second Cancel returned true")
	}
	c.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	c := New()
	var fired []int
	ids := make([]EventID, 5)
	for i := 0; i < 5; i++ {
		i := i
		ids[i] = c.AtCancellable(float64(i), func() { fired = append(fired, i) })
	}
	c.Cancel(ids[2])
	c.Run()
	want := []int{0, 1, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestCancelAfterFiringReturnsFalse(t *testing.T) {
	c := New()
	id := c.AtCancellable(1, func() {})
	c.Run()
	if c.Cancel(id) {
		t.Fatal("Cancel returned true for an already-fired event")
	}
	if c.Cancel(0) || c.Cancel(EventID(999)) {
		t.Fatal("Cancel returned true for a never-issued id")
	}
}

// TestMixedCancellableOrdering interleaves cancellable and plain events
// and checks that cancellation never perturbs the firing order of the
// survivors — the id→heap-index map must stay consistent across sifts.
func TestMixedCancellableOrdering(t *testing.T) {
	c := New()
	var fired []int
	var ids []EventID
	for i := 0; i < 20; i++ {
		i := i
		at := float64((i * 7) % 10)
		if i%2 == 0 {
			ids = append(ids, c.AtCancellable(at, func() { fired = append(fired, i) }))
		} else {
			c.At(at, func() { fired = append(fired, i) })
		}
	}
	// Cancel every other cancellable event (indices 0, 4, 8, ...).
	cancelled := map[int]bool{}
	for j, id := range ids {
		if j%2 == 0 {
			if !c.Cancel(id) {
				t.Fatalf("Cancel of pending event %d failed", j)
			}
			cancelled[2*j] = true
		}
	}
	c.Run()
	if len(fired) != 20-len(cancelled) {
		t.Fatalf("fired %d events, want %d", len(fired), 20-len(cancelled))
	}
	for _, i := range fired {
		if cancelled[i] {
			t.Fatalf("cancelled event %d fired", i)
		}
	}
	// Survivors must fire in (time, scheduling-order) order.
	at := func(i int) float64 { return float64((i * 7) % 10) }
	for k := 1; k < len(fired); k++ {
		a, b := fired[k-1], fired[k]
		if at(a) > at(b) || (at(a) == at(b) && a > b) {
			t.Fatalf("ordering violated: event %d fired before %d (%v)", a, b, fired)
		}
	}
}

// TestRandomizedCancelProperty schedules a random mix of cancellable and
// plain events, cancels a random subset (some before running, some from
// inside callbacks), and checks the survivors fire in order. This is the
// regression guard for the lazy cancellation index.
func TestRandomizedCancelProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		c := New()
		n := 300
		type ev struct {
			at        float64
			cancelled bool
		}
		evs := make([]ev, n)
		ids := make([]EventID, n)
		var fired []int
		for i := 0; i < n; i++ {
			i := i
			evs[i].at = float64(rnd.Intn(50))
			if rnd.Intn(2) == 0 {
				ids[i] = c.AtCancellable(evs[i].at, func() { fired = append(fired, i) })
			} else {
				c.At(evs[i].at, func() { fired = append(fired, i) })
			}
		}
		for i := 0; i < n; i++ {
			if ids[i] != 0 && rnd.Intn(3) == 0 {
				if !c.Cancel(ids[i]) {
					t.Fatalf("trial %d: Cancel of pending event %d failed", trial, i)
				}
				evs[i].cancelled = true
			}
		}
		c.Run()
		want := 0
		for _, e := range evs {
			if !e.cancelled {
				want++
			}
		}
		if len(fired) != want {
			t.Fatalf("trial %d: fired %d, want %d", trial, len(fired), want)
		}
		for k := 1; k < len(fired); k++ {
			a, b := fired[k-1], fired[k]
			if evs[a].at > evs[b].at || (evs[a].at == evs[b].at && a > b) {
				t.Fatalf("trial %d: ordering violated at %d", trial, k)
			}
		}
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	c := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		c.At(at, func() { fired = append(fired, at) })
	}
	c.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want two events", fired)
	}
	if c.Now() != 2.5 {
		t.Fatalf("Now() = %v, want deadline 2.5", c.Now())
	}
	if c.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", c.Pending())
	}
	c.RunUntil(10)
	if len(fired) != 4 {
		t.Fatalf("fired %v after second RunUntil, want all four", fired)
	}
}

func TestRunUntilInclusiveOfDeadlineEvents(t *testing.T) {
	c := New()
	fired := false
	c.At(3, func() { fired = true })
	c.RunUntil(3)
	if !fired {
		t.Fatal("event at exactly the deadline did not fire")
	}
}

func TestStopHaltsRun(t *testing.T) {
	c := New()
	count := 0
	for i := 1; i <= 10; i++ {
		c.At(float64(i), func() {
			count++
			if count == 3 {
				c.Stop()
			}
		})
	}
	c.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	c.Run() // resumes
	if count != 10 {
		t.Fatalf("ran %d events total, want 10", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	c := New()
	c.At(5, func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	c.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	c.After(-1, func() {})
}

func TestNilEventFuncPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event func did not panic")
		}
	}()
	c.At(1, nil)
}

func TestEventsScheduledDuringEventRun(t *testing.T) {
	c := New()
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 100 {
			c.After(1, schedule)
		}
	}
	c.After(1, schedule)
	c.Run()
	if depth != 100 {
		t.Fatalf("chained depth = %d, want 100", depth)
	}
	if c.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", c.Now())
	}
}

func TestZeroDelayEventFiresAfterCurrentEvent(t *testing.T) {
	c := New()
	var order []string
	c.At(1, func() {
		c.After(0, func() { order = append(order, "zero") })
		order = append(order, "outer")
	})
	c.At(1, func() { order = append(order, "sibling") })
	c.Run()
	want := []string{"outer", "sibling", "zero"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestNextEventTime(t *testing.T) {
	c := New()
	if _, ok := c.NextEventTime(); ok {
		t.Fatal("NextEventTime reported an event on an empty clock")
	}
	c.At(9, func() {})
	c.At(4, func() {})
	if at, ok := c.NextEventTime(); !ok || at != 4 {
		t.Fatalf("NextEventTime = %v, %v; want 4, true", at, ok)
	}
}

func TestTickerFiresAtInterval(t *testing.T) {
	c := New()
	var times []float64
	tk := c.StartTicker(10, func() { times = append(times, c.Now()) })
	c.At(35, func() { tk.Stop() })
	c.Run()
	want := []float64{10, 20, 30}
	if len(times) != len(want) {
		t.Fatalf("ticks at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks at %v, want %v", times, want)
		}
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	c := New()
	count := 0
	var tk *Ticker
	tk = c.StartTicker(1, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	c.Run()
	if count != 2 {
		t.Fatalf("ticked %d times after in-callback Stop, want 2", count)
	}
	tk.Stop() // idempotent
}

func TestTickerInvalidIntervalPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive interval did not panic")
		}
	}()
	c.StartTicker(0, func() {})
}

// TestRandomizedOrderingProperty drives a random schedule and checks the
// global ordering invariant: events fire in non-decreasing time, and ties
// fire in scheduling order.
func TestRandomizedOrderingProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		c := New()
		type rec struct {
			at  float64
			seq int
		}
		var fired []rec
		n := 200
		times := make([]float64, n)
		for i := 0; i < n; i++ {
			times[i] = float64(rnd.Intn(40)) // many ties
		}
		for i := 0; i < n; i++ {
			i := i
			c.At(times[i], func() { fired = append(fired, rec{times[i], i}) })
		}
		c.Run()
		if len(fired) != n {
			t.Fatalf("trial %d: fired %d, want %d", trial, len(fired), n)
		}
		if !sort.SliceIsSorted(fired, func(a, b int) bool {
			if fired[a].at != fired[b].at {
				return fired[a].at < fired[b].at
			}
			return fired[a].seq < fired[b].seq
		}) {
			t.Fatalf("trial %d: ordering invariant violated", trial)
		}
	}
}
