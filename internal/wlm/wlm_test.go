package wlm

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/simclock"
)

// oltpLoop drives a closed-loop client submitting fixed-demand
// transactions of the given class.
func oltpLoop(eng *engine.Engine, client engine.ClientID, class engine.ClassID, work float64) {
	var submit func()
	submit = func() {
		eng.Submit(&engine.Query{
			Client: client,
			Class:  class,
			Demand: engine.Demand{Work: work, CPURate: 1},
		})
	}
	eng.OnDone(func(q *engine.Query) {
		if q.Client == client && q.Class == class {
			submit()
		}
	})
	submit()
}

// backgroundHog keeps n CPU-hungry queries of the given class running.
func backgroundHog(eng *engine.Engine, class engine.ClassID, n int, cpuRate float64) {
	for i := 0; i < n; i++ {
		client := engine.ClientID(1000 + i)
		var submit func()
		submit = func() {
			eng.Submit(&engine.Query{
				Client: client,
				Class:  class,
				Demand: engine.Demand{Work: 50, CPURate: cpuRate},
			})
		}
		eng.OnDone(func(q *engine.Query) {
			if q.Client == client {
				submit()
			}
		})
		submit()
	}
}

func newRig(t *testing.T, goal float64) (*Controller, *engine.Engine, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 2, IOCapacity: 14}, clock)
	var clients []engine.ClientID
	for i := 1; i <= 8; i++ {
		clients = append(clients, engine.ClientID(i))
	}
	ctl, err := New(DefaultConfig(), eng, 3, goal, func() []engine.ClientID { return clients })
	if err != nil {
		t.Fatal(err)
	}
	return ctl, eng, clock
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Interval = 0 },
		func(c *Config) { c.SampleInterval = 0 },
		func(c *Config) { c.Gain = 0 },
		func(c *Config) { c.MinWeight = 0 },
		func(c *Config) { c.MaxWeight = c.MinWeight / 2 },
		func(c *Config) { c.Slack = 0 },
		func(c *Config) { c.Slack = 1.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		clock := simclock.New()
		eng := engine.New(engine.DefaultConfig(), clock)
		if _, err := New(cfg, eng, 1, 0.25, func() []engine.ClientID { return nil }); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	clock := simclock.New()
	eng := engine.New(engine.DefaultConfig(), clock)
	if _, err := New(DefaultConfig(), eng, 1, 0, func() []engine.ClientID { return nil }); err == nil {
		t.Fatal("zero goal accepted")
	}
	if _, err := New(DefaultConfig(), eng, 1, 0.25, nil); err == nil {
		t.Fatal("nil client source accepted")
	}
}

func TestWeightRisesUnderViolation(t *testing.T) {
	ctl, eng, clock := newRig(t, 0.10)
	// 8 OLTP clients with 20ms transactions + heavy background class:
	// uncontrolled RT far above the 100ms goal.
	for i := 1; i <= 8; i++ {
		oltpLoop(eng, engine.ClientID(i), 3, 0.02)
	}
	backgroundHog(eng, 1, 6, 2)
	ctl.Start()
	clock.RunUntil(600)
	if ctl.Weight() <= DefaultConfig().MinWeight {
		t.Fatalf("weight stayed at minimum %v despite violation", ctl.Weight())
	}
	hist := ctl.History()
	if len(hist) == 0 {
		t.Fatal("no control records")
	}
	last := hist[len(hist)-1]
	if last.Samples == 0 {
		t.Fatal("no snapshot samples")
	}
	// The direct control must have pushed RT to (or below) the goal.
	if last.MeanRT > 0.13 {
		t.Fatalf("RT still %v after 10 minutes of direct control", last.MeanRT)
	}
}

func TestDirectControlBeatsNoControl(t *testing.T) {
	run := func(controlled bool) float64 {
		clock := simclock.New()
		eng := engine.New(engine.Config{CPUCapacity: 2, IOCapacity: 14}, clock)
		var clients []engine.ClientID
		for i := 1; i <= 8; i++ {
			clients = append(clients, engine.ClientID(i))
			oltpLoop(eng, engine.ClientID(i), 3, 0.02)
		}
		backgroundHog(eng, 1, 6, 2)
		var ctl *Controller
		if controlled {
			var err error
			ctl, err = New(DefaultConfig(), eng, 3, 0.10, func() []engine.ClientID { return clients })
			if err != nil {
				t.Fatal(err)
			}
			ctl.Start()
		}
		clock.RunUntil(600)
		// Measure steady-state RT from the last snapshot of each client.
		var sum float64
		var n int
		for _, id := range clients {
			if s, ok := eng.LastFinished(id); ok {
				sum += s.RespTime
				n++
			}
		}
		return sum / float64(n)
	}
	uncontrolled := run(false)
	controlled := run(true)
	if controlled >= uncontrolled {
		t.Fatalf("direct control did not help: %v vs %v", controlled, uncontrolled)
	}
	if controlled > 0.13 {
		t.Fatalf("controlled RT %v misses the 0.10 goal badly", controlled)
	}
}

func TestWeightDecaysWithSlack(t *testing.T) {
	ctl, eng, clock := newRig(t, 10) // absurdly loose goal
	for i := 1; i <= 2; i++ {
		oltpLoop(eng, engine.ClientID(i), 3, 0.01)
	}
	ctl.weight = 32 // pretend a past violation pushed it up
	ctl.Start()
	clock.RunUntil(1200)
	if ctl.Weight() > 4 {
		t.Fatalf("weight %v did not decay with massive slack", ctl.Weight())
	}
}

func TestWeightClamped(t *testing.T) {
	ctl, eng, clock := newRig(t, 0.0001) // unreachable goal
	for i := 1; i <= 8; i++ {
		oltpLoop(eng, engine.ClientID(i), 3, 0.02)
	}
	backgroundHog(eng, 1, 6, 2)
	ctl.Start()
	clock.RunUntil(3000)
	if ctl.Weight() > DefaultConfig().MaxWeight {
		t.Fatalf("weight %v exceeded MaxWeight", ctl.Weight())
	}
}

func TestStartStop(t *testing.T) {
	ctl, eng, clock := newRig(t, 0.1)
	oltpLoop(eng, 1, 3, 0.01)
	ctl.Start()
	clock.RunUntil(120)
	n := len(ctl.History())
	ctl.Stop()
	clock.RunUntil(600)
	if len(ctl.History()) != n {
		t.Fatal("controller kept running after Stop")
	}
	ctl.Stop() // idempotent
}

func TestDoubleStartPanics(t *testing.T) {
	ctl, _, _ := newRig(t, 0.1)
	ctl.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	ctl.Start()
}
