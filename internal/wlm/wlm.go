// Package wlm implements the paper's future-work direction: "The most
// effective way to manage performance of OLTP workload is to directly
// control it. One approach is to implement the control mechanism inside
// the DBMS itself."
//
// The Controller drives the engine's in-DBMS weighted fair sharing
// (engine.SetClassWeights) with a feedback loop: every control interval
// it measures the OLTP class's average response time through the same
// snapshot-monitor sampling the Query Scheduler uses and adjusts the
// class's share weight multiplicatively — raising it while the SLO is
// violated, decaying it gently back toward parity while there is slack.
// No query is ever intercepted, so — unlike admission control — this
// mechanism can manage sub-second OLTP statements without the
// interception overhead the paper measured to be prohibitive.
//
// (Historically, this is exactly the mechanism DB2 later shipped as its
// Workload Manager.)
package wlm

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// Config tunes the direct controller.
type Config struct {
	// Interval is the control-loop period in seconds.
	Interval float64
	// SampleInterval is the snapshot-monitor sampling period in seconds.
	SampleInterval float64
	// Gain is the multiplicative step per interval: a 2x SLO violation
	// raises the weight by roughly Gain per interval.
	Gain float64
	// MinWeight and MaxWeight clamp the managed class's weight.
	MinWeight, MaxWeight float64
	// Slack is the fraction of the goal below which the controller
	// starts decaying the weight back toward MinWeight (headroom so the
	// weight does not thrash around the goal).
	Slack float64
}

// DefaultConfig returns the settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		Interval:       30,
		SampleInterval: 10,
		Gain:           0.5,
		MinWeight:      1,
		MaxWeight:      64,
		Slack:          0.85,
	}
}

func (c Config) validate() error {
	if c.Interval <= 0 || c.SampleInterval <= 0 {
		return fmt.Errorf("wlm: intervals must be positive")
	}
	if c.Gain <= 0 {
		return fmt.Errorf("wlm: gain must be positive")
	}
	if c.MinWeight <= 0 || c.MaxWeight < c.MinWeight {
		return fmt.Errorf("wlm: invalid weight bounds [%v, %v]", c.MinWeight, c.MaxWeight)
	}
	if c.Slack <= 0 || c.Slack > 1 {
		return fmt.Errorf("wlm: slack %v out of (0, 1]", c.Slack)
	}
	return nil
}

// Record is one control interval's outcome.
type Record struct {
	Time    simclock.Time
	MeanRT  float64
	Samples int
	Weight  float64
}

// Controller adapts one class's sharing weight to its response-time SLO.
type Controller struct {
	cfg     Config
	eng     *engine.Engine
	clock   *simclock.Clock
	class   engine.ClassID
	goal    float64
	clients func() []engine.ClientID

	weight  float64
	window  stats.Summary
	lastRT  float64
	history []Record

	sampleTicker  *simclock.Ticker
	controlTicker *simclock.Ticker
	running       bool
}

// New builds a controller holding class to an average response-time goal
// (seconds), sampling the listed clients. It does not start the loop.
func New(cfg Config, eng *engine.Engine, class engine.ClassID, goal float64,
	clients func() []engine.ClientID) (*Controller, error) {

	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if goal <= 0 {
		return nil, fmt.Errorf("wlm: goal %v must be positive", goal)
	}
	if clients == nil {
		return nil, fmt.Errorf("wlm: nil client source")
	}
	return &Controller{
		cfg:     cfg,
		eng:     eng,
		clock:   eng.Clock(),
		class:   class,
		goal:    goal,
		clients: clients,
		weight:  cfg.MinWeight,
		lastRT:  goal,
	}, nil
}

// Start applies the initial weight and begins sampling and controlling.
func (c *Controller) Start() {
	if c.running {
		panic("wlm: controller already started")
	}
	c.running = true
	c.apply()
	c.sampleTicker = c.clock.StartTicker(c.cfg.SampleInterval, c.sample)
	c.controlTicker = c.clock.StartTicker(c.cfg.Interval, c.tick)
}

// Stop halts the loop, leaving the current weight in force.
func (c *Controller) Stop() {
	if !c.running {
		return
	}
	c.running = false
	c.sampleTicker.Stop()
	c.controlTicker.Stop()
}

// Weight returns the current sharing weight of the managed class.
func (c *Controller) Weight() float64 { return c.weight }

// History returns every control interval's record.
func (c *Controller) History() []Record { return c.history }

func (c *Controller) sample() {
	for _, id := range c.clients() {
		if s, ok := c.eng.LastFinished(id); ok {
			c.window.Add(s.RespTime)
		}
	}
}

func (c *Controller) tick() {
	rt := c.lastRT
	samples := c.window.Count()
	if samples > 0 {
		rt = c.window.Mean()
		c.lastRT = rt
	}
	c.window.Reset()

	switch {
	case rt > c.goal:
		// Violating: raise the share proportionally to the violation.
		c.weight *= 1 + c.cfg.Gain*(rt/c.goal-1)
	case rt < c.goal*c.cfg.Slack:
		// Comfortable headroom: give capacity back to the other classes.
		c.weight *= 1 - c.cfg.Gain*0.25*(1-rt/(c.goal*c.cfg.Slack))
	}
	c.weight = stats.Clamp(c.weight, c.cfg.MinWeight, c.cfg.MaxWeight)
	c.apply()
	c.history = append(c.history, Record{
		Time:    c.clock.Now(),
		MeanRT:  rt,
		Samples: samples,
		Weight:  c.weight,
	})
}

// apply pushes the weight into the engine, leaving other classes at 1.
func (c *Controller) apply() {
	c.eng.SetClassWeights(map[engine.ClassID]float64{c.class: c.weight})
}
