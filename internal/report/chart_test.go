package report

import (
	"strings"
	"testing"
)

func render(c Chart) (string, []string) {
	out := c.Render()
	return out, strings.Split(strings.TrimRight(out, "\n"), "\n")
}

func TestRenderEmptyChart(t *testing.T) {
	out, _ := render(Chart{Title: "empty"})
	if !strings.Contains(out, "empty") || !strings.Contains(out, "no data") {
		t.Fatalf("empty chart output: %q", out)
	}
}

func TestRenderContainsTitleAxesAndLegend(t *testing.T) {
	out, lines := render(Chart{
		Title:  "my chart",
		YLabel: "velocity",
		XLabel: "period",
		Series: []Series{{Name: "class 1", Values: []float64{0.2, 0.4, 0.6}}},
	})
	if !strings.HasPrefix(lines[0], "my chart") {
		t.Fatal("missing title")
	}
	for _, want := range []string{"* class 1", "y: velocity", "(period)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderPlotsExtremesAtEdges(t *testing.T) {
	c := Chart{
		Width:  21,
		Height: 9,
		YMin:   0,
		YMax:   1,
		Series: []Series{{Name: "s", Values: []float64{0, 1}}},
	}
	_, lines := render(c)
	// Row 1 of output (after no title) is the top plot row: the value 1
	// lands there; the bottom plot row holds the value 0.
	top := lines[0]
	bottom := lines[8]
	if !strings.Contains(top, "*") {
		t.Fatalf("max value not on top row: %q", top)
	}
	if !strings.Contains(bottom, "*") {
		t.Fatalf("min value not on bottom row: %q", bottom)
	}
}

func TestRenderGoalLine(t *testing.T) {
	out, _ := render(Chart{
		YMin:   0,
		YMax:   1,
		Goals:  []float64{0.5},
		Series: []Series{{Name: "s", Values: []float64{0.9, 0.9}}},
	})
	if !strings.Contains(out, "- -") {
		t.Fatalf("goal line not drawn:\n%s", out)
	}
	if !strings.Contains(out, "-- goal") {
		t.Fatal("goal legend missing")
	}
}

func TestRenderMultipleSeriesDistinctMarks(t *testing.T) {
	out, _ := render(Chart{
		Series: []Series{
			{Name: "a", Values: []float64{1, 2, 3}},
			{Name: "b", Values: []float64{3, 2, 1}},
		},
	})
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("marks not distinct:\n%s", out)
	}
}

func TestRenderMaskHidesPoints(t *testing.T) {
	masked, _ := render(Chart{
		Width: 30, Height: 10, YMin: 0, YMax: 10,
		Series: []Series{{
			Name:   "s",
			Values: []float64{5, 10, 5},
			Mask:   []bool{true, false, true},
		}},
	})
	// The masked middle value (10, the top row) must not be plotted.
	lines := strings.Split(masked, "\n")
	if strings.Contains(lines[0], "*") {
		t.Fatalf("masked point plotted:\n%s", masked)
	}
}

func TestRenderAutoRangeAnchorsNearZero(t *testing.T) {
	c := Chart{Series: []Series{{Name: "s", Values: []float64{0.1, 8, 9}}}}
	lo, hi := c.yRange()
	if lo != 0 {
		t.Fatalf("lo = %v, want anchored at 0", lo)
	}
	if hi < 9 {
		t.Fatalf("hi = %v below max", hi)
	}
}

func TestRenderFixedRangeClampsOutliers(t *testing.T) {
	out, _ := render(Chart{
		YMin: 0, YMax: 1,
		Series: []Series{{Name: "s", Values: []float64{0.5, 42}}},
	})
	// Should not panic and the outlier lands on the top row.
	if !strings.Contains(out, "*") {
		t.Fatal("nothing plotted")
	}
}

func TestRenderSinglePoint(t *testing.T) {
	out, _ := render(Chart{Series: []Series{{Name: "s", Values: []float64{3}}}})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestRenderConnectsPointsWithTrace(t *testing.T) {
	out, _ := render(Chart{
		Width: 40, Height: 12, YMin: 0, YMax: 10,
		Series: []Series{{Name: "s", Values: []float64{0, 10}}},
	})
	if !strings.Contains(out, ".") {
		t.Fatalf("no connecting trace between distant points:\n%s", out)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{0: "0", 12345: "12345", 42.4: "42.4", 0.25: "0.25"}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Fatalf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
