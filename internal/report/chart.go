// Package report renders experiment series as terminal charts — the
// closest a text UI gets to the paper's figures. It is deliberately
// dependency-free: fixed-grid ASCII line charts with axes, multiple
// series, a legend, and an optional horizontal goal line.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name   string
	Values []float64
	// Mask, when non-nil, hides points where Mask[i] is false (e.g.
	// periods with no completions).
	Mask []bool
}

// Chart is a multi-series line chart over a shared integer X axis
// (period numbers, sweep indices, ...).
type Chart struct {
	Title  string
	YLabel string
	XLabel string
	Width  int // plot columns (default 60)
	Height int // plot rows (default 16)
	// YMin/YMax fix the Y range; when both are zero the range is fitted
	// to the data (and the goal lines).
	YMin, YMax float64
	// Goals draws dashed horizontal reference lines (e.g. SLO targets).
	Goals  []float64
	Series []Series
}

// seriesMarks assigns each series a distinct mark.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart into a string.
func (c Chart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 60
	}
	height := c.Height
	if height <= 0 {
		height = 16
	}
	n := 0
	for _, s := range c.Series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	if n == 0 {
		return c.Title + "\n(no data)\n"
	}

	lo, hi := c.yRange()
	if hi <= lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(frac * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return height - 1 - r // row 0 is the top
	}
	col := func(i int) int {
		if n == 1 {
			return width / 2
		}
		return i * (width - 1) / (n - 1)
	}

	for _, g := range c.Goals {
		if g < lo || g > hi {
			continue
		}
		r := row(g)
		for x := 0; x < width; x += 2 {
			grid[r][x] = '-'
		}
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		prevSet := false
		var prevR, prevC int
		for i, v := range s.Values {
			if i >= n {
				break
			}
			if s.Mask != nil && i < len(s.Mask) && !s.Mask[i] {
				prevSet = false
				continue
			}
			r, x := row(v), col(i)
			if prevSet {
				drawLine(grid, prevC, prevR, x, r, mark)
			}
			grid[r][x] = mark
			prevR, prevC, prevSet = r, x, true
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	axisw := len(formatTick(hi))
	if w := len(formatTick(lo)); w > axisw {
		axisw = w
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", axisw)
		switch r {
		case 0:
			label = pad(formatTick(hi), axisw)
		case height - 1:
			label = pad(formatTick(lo), axisw)
		case (height - 1) / 2:
			label = pad(formatTick((hi+lo)/2), axisw)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", axisw), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  1%s%d", strings.Repeat(" ", axisw),
		strings.Repeat(" ", max(1, width-2-len(fmt.Sprint(n)))), n)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", c.XLabel)
	}
	b.WriteByte('\n')
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarks[si%len(seriesMarks)], s.Name))
	}
	if len(c.Goals) > 0 {
		legend = append(legend, "-- goal")
	}
	if c.YLabel != "" {
		legend = append(legend, "y: "+c.YLabel)
	}
	fmt.Fprintf(&b, "   %s\n", strings.Join(legend, "   "))
	return b.String()
}

func (c Chart) yRange() (lo, hi float64) {
	if c.YMin != 0 || c.YMax != 0 {
		return c.YMin, c.YMax
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	consider := func(v float64) {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	for _, s := range c.Series {
		for i, v := range s.Values {
			if s.Mask != nil && i < len(s.Mask) && !s.Mask[i] {
				continue
			}
			consider(v)
		}
	}
	for _, g := range c.Goals {
		consider(g)
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	if lo > 0 && lo < hi/3 {
		lo = 0 // charts that nearly touch zero read better anchored at it
	}
	span := hi - lo
	return lo, hi + 0.05*span
}

// drawLine connects two grid cells with a light trace so series read as
// lines rather than scatter points. Endpoints are drawn by the caller.
func drawLine(grid [][]byte, x0, y0, x1, y1 int, mark byte) {
	steps := max(abs(x1-x0), abs(y1-y0))
	if steps <= 1 {
		return
	}
	for s := 1; s < steps; s++ {
		x := x0 + (x1-x0)*s/steps
		y := y0 + (y1-y0)*s/steps
		if grid[y][x] == ' ' || grid[y][x] == '-' {
			grid[y][x] = '.'
		}
	}
	_ = mark
}

func formatTick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
