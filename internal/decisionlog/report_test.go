package decisionlog

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
)

func TestParseTickRange(t *testing.T) {
	for _, tc := range []struct {
		spec     string
		from, to int
		bad      bool
	}{
		{spec: "", from: 0, to: 0},
		{spec: "7", from: 7, to: 7},
		{spec: "3-5", from: 3, to: 5},
		{spec: "0", bad: true},
		{spec: "5-3", bad: true},
		{spec: "x", bad: true},
		{spec: "3-", bad: true},
	} {
		tr, err := ParseTickRange(tc.spec)
		if tc.bad {
			if err == nil {
				t.Errorf("ParseTickRange(%q) accepted", tc.spec)
			}
			continue
		}
		if err != nil || tr.From != tc.from || tr.To != tc.to {
			t.Errorf("ParseTickRange(%q) = %+v, %v", tc.spec, tr, err)
		}
	}
	tr := TickRange{From: 3, To: 5}
	for tick, want := range map[int]bool{2: false, 3: true, 5: true, 6: false} {
		if tr.Contains(tick) != want {
			t.Errorf("Contains(%d) = %v", tick, !want)
		}
	}
	if open := (TickRange{}); !open.Contains(1) || !open.Contains(1<<20) {
		t.Error("open range excluded ticks")
	}
}

func TestParseWhyQuery(t *testing.T) {
	meta := testMeta()
	for _, spec := range []string{"class=1", "class=A", "class=Class1", "class=class1"} {
		q, err := ParseWhyQuery(spec, meta)
		if err != nil || q.Class.ID != 1 {
			t.Errorf("ParseWhyQuery(%q) = %+v, %v", spec, q, err)
		}
	}
	// Letter B is the second roster class (ID 3), not class ID 2.
	q, err := ParseWhyQuery("class=B tick=3-5", meta)
	if err != nil || q.Class.ID != 3 || q.Window.From != 3 || q.Window.To != 5 {
		t.Fatalf("ParseWhyQuery(class=B tick=3-5) = %+v, %v", q, err)
	}
	for _, spec := range []string{"", "tick=3", "class=9", "class=Z", "class=1 tick=0", "class=1 foo=bar", "class"} {
		if _, err := ParseWhyQuery(spec, meta); err == nil {
			t.Errorf("ParseWhyQuery(%q) accepted", spec)
		}
	}
}

// buildTestLog writes a small log: tick 1 meets both goals, tick 2
// misses both (closing tick 1's window), tick 3 closes tick 2's.
func buildTestLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	dw, err := NewWriter(&buf, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	dw.Note(testRec(60, 0.45, 0.2))
	rec := testRec(120, 0.35, 0.3)
	rec.Limits = solver0(18000, 12000)
	dw.Note(rec)
	dw.Note(testRec(180, 0.5, 0.21))
	dw.Flush()
	if dw.Err() != nil {
		t.Fatal(dw.Err())
	}
	return buf.Bytes()
}

// solver0 builds a 2-class plan for the test roster.
func solver0(l1, l3 float64) map[engine.ClassID]float64 {
	return map[engine.ClassID]float64{1: l1, 3: l3}
}

func TestSummarize(t *testing.T) {
	log := buildTestLog(t)
	var out bytes.Buffer
	if err := Summarize(&out, bytes.NewReader(log)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Decision log: unit (seed 7)",
		"Ticks: 3 total, 0 held",
		"Class1",
		"Class3",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	// Two closed windows per class: tick 1 met, tick 2 missed → 1/2.
	if !strings.Contains(s, "0.50") {
		t.Errorf("summary missing 0.50 attainment:\n%s", s)
	}
}

func TestSummarizeRejectsCorruptLog(t *testing.T) {
	var out bytes.Buffer
	if err := Summarize(&out, strings.NewReader("not json\n")); err == nil {
		t.Fatal("corrupt log accepted")
	}
	if out.Len() != 0 {
		t.Fatalf("partial output on error: %q", out.String())
	}
}

func TestTimelineWindow(t *testing.T) {
	log := buildTestLog(t)
	var out bytes.Buffer
	if err := Timeline(&out, bytes.NewReader(log), TickRange{From: 2, To: 2}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "tick    1") || strings.Contains(s, "tick    3") {
		t.Fatalf("window leak:\n%s", s)
	}
	if !strings.Contains(s, "tick    2") || !strings.Contains(s, "limits: 1=18000 3=12000") {
		t.Fatalf("timeline line malformed:\n%s", s)
	}
	// Tick 2's harvest closed tick 1's window with misses on both classes
	// — but the missed marker belongs to tick 2's record (its own window,
	// closed by tick 3, was met again). Tick 2's actual: 0.5 velocity ok,
	// 0.21 RT ok → no missed marker.
	if strings.Contains(s, "missed:") {
		t.Fatalf("unexpected miss marker:\n%s", s)
	}
}

func TestTimelineMissMarker(t *testing.T) {
	log := buildTestLog(t)
	var out bytes.Buffer
	if err := Timeline(&out, bytes.NewReader(log), TickRange{From: 1, To: 1}); err != nil {
		t.Fatal(err)
	}
	// Tick 1's window was closed by the missing harvest (0.35 < 0.4,
	// 0.3 > 0.25): both classes missed.
	if !strings.Contains(out.String(), "missed:1,3") {
		t.Fatalf("tick 1 should carry missed:1,3:\n%s", out.String())
	}
}

func TestWhy(t *testing.T) {
	log := buildTestLog(t)
	var out bytes.Buffer
	if err := Why(&out, bytes.NewReader(log), "class=A", TickRange{}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Why Class1 (OLAP, goal v >= 0.4)",
		"throttled 20000->18000",    // tick 2 cut the limit
		"actual v=0.350 MISS",       // tick 1's back-filled outcome
		"actual v=0.500 ok",         // tick 2's back-filled outcome
		"model olap-velocity@20000", // provenance
		"gap to runner-up 0.300",    // 3.5 - 3.2
	} {
		if !strings.Contains(s, want) {
			t.Errorf("why output missing %q:\n%s", want, s)
		}
	}

	out.Reset()
	err := Why(&out, bytes.NewReader(log), "class=9", TickRange{})
	var spec *SpecError
	if !errors.As(err, &spec) {
		t.Fatalf("bad spec error = %v", err)
	}
}

func TestWhyHeldTick(t *testing.T) {
	var buf bytes.Buffer
	dw, err := NewWriter(&buf, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	dw.Note(testRec(60, 0.45, 0.2))
	held := testRec(120, 0, 0)
	held.Held = true
	held.Measurement.Dropped = true
	dw.Note(held)
	dw.Flush()

	var out bytes.Buffer
	if err := Why(&out, bytes.NewReader(buf.Bytes()), "class=A tick=2", TickRange{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "held: degraded harvest") {
		t.Fatalf("held tick not explained:\n%s", out.String())
	}
}

// traceJSONL handcrafts a trace export; the format is pinned by the
// trace package's golden tests, so building lines directly is safe.
func traceJSONL(events ...string) string {
	var b strings.Builder
	b.WriteString(`{"type":"meta","v":1,"experiment":"unit","seed":7,"period_seconds":600,"periods":1,` +
		`"classes":[{"id":1,"name":"Class1","kind":"OLAP","goal":"velocity >= 0.40","target":0.4},` +
		`{"id":3,"name":"Class3","kind":"OLTP","goal":"avg RT <= 0.25s","target":0.25}]}` + "\n")
	for i, e := range events {
		b.WriteString(fmt.Sprintf(`{"type":"event","seq":%d,%s}`, i+1, e))
		b.WriteByte('\n')
	}
	return b.String()
}

func ev(t float64, kind string, class, query, client int) string {
	return fmt.Sprintf(`"t":%g,"kind":%q,"class":%d,"query":%d,"client":%d`, t, kind, class, query, client)
}

func TestAttributeSharesSumToMiss(t *testing.T) {
	log := buildTestLog(t)
	// One OLAP logical query with a retry: submit t=0, aborted and
	// re-queued, resubmitted as query 2 at t=10, starts t=12, done t=20.
	// fault=10, wait=2, exec=8 → v = 8/20 = 0.4... make exec 10 (done 22):
	// v = 10/22 ≈ 0.4545 which meets the 0.4 goal. Use done t=18: exec 6,
	// resp 18, v=1/3 < 0.4 → miss.
	// One OLTP query: submit/start t=0, done t=0.5 → rt 0.5 > 0.25 → miss.
	tr := traceJSONL(
		ev(0, "submit", 1, 1, 1),
		ev(0, "start", 1, 1, 1),
		ev(0, "submit", 3, 10, 40),
		ev(0, "start", 3, 10, 40),
		ev(0.5, "done", 3, 10, 40),
		ev(5, "abort", 1, 1, 1),
		ev(5, "retry", 1, 1, 1),
		ev(10, "submit", 1, 2, 1),
		ev(12, "start", 1, 2, 1),
		ev(18, "done", 1, 2, 1),
	)
	rows, meta, err := Attribute(bytes.NewReader(log), strings.NewReader(tr))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Experiment != "unit" || len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}

	olap := rows[0]
	if olap.Completed != 1 || olap.FaultTime != 10 || olap.WaitTime != 2 || olap.ExecTime != 6 {
		t.Fatalf("OLAP times: %+v", olap)
	}
	if want := 6.0 / 18.0; !close1e9(olap.Observed, want) {
		t.Fatalf("OLAP observed %v, want %v", olap.Observed, want)
	}
	checkShares(t, olap)
	// Goal 0.4 is reachable (ceiling 0.8 in the log) → no infeasible
	// share; fault removal alone recovers to 6/8 = 0.75 ≥ 0.4, so the
	// whole miss lands on faults.
	if olap.InfeasibleShare != 0 || !close1e9(olap.FaultShare, olap.Miss) {
		t.Fatalf("OLAP shares: %+v", olap)
	}

	oltp := rows[1]
	if oltp.Completed != 1 || !close1e9(oltp.Observed, 0.5) {
		t.Fatalf("OLTP row: %+v", oltp)
	}
	checkShares(t, oltp)
	// No faults, no wait → the whole miss is execution time (the log's
	// best RT ceiling 0.1 beats the 0.25 goal, so nothing is infeasible).
	if !close1e9(oltp.ExecShare, oltp.Miss) || oltp.Miss != 0.25 {
		t.Fatalf("OLTP shares: %+v", oltp)
	}
}

func TestAttributeInfeasibleShare(t *testing.T) {
	// A log whose best OLAP ceiling (0.3) sits below the 0.4 goal: the
	// gap is structurally unfixable and must be peeled off first.
	var buf bytes.Buffer
	dw, err := NewWriter(&buf, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	rec := testRec(60, 0.2, 0.2)
	rec.Search.Classes[0].Ceiling = 0.3
	rec.Search.Classes[0].GoalMet = false
	rec.Search.Classes[0].Reachable = false
	rec.Search.Infeasible = true
	rec.Search.Binding = 1
	dw.Note(rec)
	dw.Flush()

	// velocity = 2/10 = 0.2: miss 0.2, of which 0.4-0.3 = 0.1 infeasible;
	// no faults; removing wait recovers to 1.0, so the rest is wait.
	tr := traceJSONL(
		ev(0, "submit", 1, 1, 1),
		ev(8, "start", 1, 1, 1),
		ev(10, "done", 1, 1, 1),
	)
	rows, _, err := Attribute(bytes.NewReader(buf.Bytes()), strings.NewReader(tr))
	if err != nil {
		t.Fatal(err)
	}
	olap := rows[0]
	checkShares(t, olap)
	if !close1e9(olap.InfeasibleShare, 0.1) || !close1e9(olap.WaitShare, 0.1) ||
		olap.FaultShare != 0 || !close1e9(olap.ExecShare, 0) {
		t.Fatalf("shares: %+v", olap)
	}
	if !olap.HasCeiling || olap.BestCeiling != 0.3 {
		t.Fatalf("ceiling: %+v", olap)
	}
}

// TestAttributeSameInstantHandoff pins the regression where a client's
// next submit+start are emitted before the previous query's done at the
// same timestamp (the engine's closed-loop clients do this): per-query
// state must not be clobbered by the successor.
func TestAttributeSameInstantHandoff(t *testing.T) {
	log := buildTestLog(t)
	tr := traceJSONL(
		ev(0, "submit", 3, 1, 40),
		ev(0, "start", 3, 1, 40),
		ev(0.5, "submit", 3, 2, 40), // successor lands before q1's done
		ev(0.5, "start", 3, 2, 40),
		ev(0.5, "done", 3, 1, 40),
		ev(0.6, "done", 3, 2, 40),
	)
	rows, _, err := Attribute(bytes.NewReader(log), strings.NewReader(tr))
	if err != nil {
		t.Fatal(err)
	}
	oltp := rows[1]
	if oltp.Completed != 2 || !close1e9(oltp.ExecTime, 0.6) {
		t.Fatalf("handoff broke per-query state: %+v", oltp)
	}
	if !close1e9(oltp.Observed, 0.3) {
		t.Fatalf("observed rt %v, want 0.3", oltp.Observed)
	}
}

func TestTickRangeValidate(t *testing.T) {
	for _, tc := range []struct {
		tr       TickRange
		lastTick int
		bad      bool
	}{
		{tr: TickRange{}, lastTick: 3},               // open window always fits
		{tr: TickRange{From: 3, To: 3}, lastTick: 3}, // last tick inclusive
		{tr: TickRange{From: 1, To: 3}, lastTick: 3}, // full range
		{tr: TickRange{From: 4, To: 4}, lastTick: 3, bad: true},
		{tr: TickRange{From: 3, To: 99}, lastTick: 3, bad: true},
		{tr: TickRange{From: 1, To: 2}, lastTick: 0, bad: true}, // empty log
	} {
		err := tc.tr.Validate(tc.lastTick)
		if (err != nil) != tc.bad {
			t.Errorf("Validate(%+v, last=%d) = %v", tc.tr, tc.lastTick, err)
		}
	}
}

// A window reaching past the log's last tick is a spec mistake, not an
// empty result: both -timeline and -why must fail with a SpecError so
// qreport exits 2 instead of printing a silently truncated breakdown.
func TestTimelineRejectsWindowPastLastTick(t *testing.T) {
	log := buildTestLog(t) // 3 ticks
	for _, tr := range []TickRange{{From: 99, To: 99}, {From: 3, To: 99}} {
		var out bytes.Buffer
		err := Timeline(&out, bytes.NewReader(log), tr)
		var spec *SpecError
		if !errors.As(err, &spec) {
			t.Errorf("Timeline(%+v) = %v, want SpecError", tr, err)
		}
	}
	// The full in-range window still renders.
	var out bytes.Buffer
	if err := Timeline(&out, bytes.NewReader(log), TickRange{From: 1, To: 3}); err != nil {
		t.Fatalf("in-range window rejected: %v", err)
	}
}

func TestWhyRejectsWindowPastLastTick(t *testing.T) {
	log := buildTestLog(t) // 3 ticks
	var out bytes.Buffer
	err := Why(&out, bytes.NewReader(log), "class=A tick=3-99", TickRange{})
	var spec *SpecError
	if !errors.As(err, &spec) {
		t.Fatalf("spec window past end = %v, want SpecError", err)
	}
	// The -window flag's range is validated too.
	err = Why(&out, bytes.NewReader(log), "class=A", TickRange{From: 7, To: 7})
	if !errors.As(err, &spec) {
		t.Fatalf("flag window past end = %v, want SpecError", err)
	}
	if err = Why(&out, bytes.NewReader(log), "class=A tick=2-3", TickRange{}); err != nil {
		t.Fatalf("in-range window rejected: %v", err)
	}
}

// TestAttributeAllAbortedClass pins the fault-injection corner where a
// class submits queries but completes none (every attempt aborted): the
// shares must carry the full miss instead of silently reporting zero,
// and nothing may divide by the zero completion count.
func TestAttributeAllAbortedClass(t *testing.T) {
	log := buildTestLog(t)
	// Class 1 (velocity goal 0.4): two submits, both aborted, no done.
	// Class 3 (RT goal): one normal query so the roster stays measurable.
	tr := traceJSONL(
		ev(0, "submit", 1, 1, 1),
		ev(0, "submit", 3, 10, 40),
		ev(0, "start", 3, 10, 40),
		ev(0.1, "done", 3, 10, 40),
		ev(5, "abort", 1, 1, 1),
		ev(10, "submit", 1, 2, 2),
		ev(15, "abort", 1, 2, 2),
	)
	rows, _, err := Attribute(bytes.NewReader(log), strings.NewReader(tr))
	if err != nil {
		t.Fatal(err)
	}
	olap := rows[0]
	if olap.Completed != 0 || olap.Submitted != 2 || olap.Aborted != 2 {
		t.Fatalf("OLAP tallies: %+v", olap)
	}
	checkShares(t, olap)
	// All-lost velocity counts as velocity-0 deliveries (mirroring the
	// metrics collector): the whole target is missed, and with the log's
	// ceiling (0.8) above the goal nothing is infeasible — the miss lands
	// entirely on faults.
	if olap.Observed != 0 || !close1e9(olap.Miss, 0.4) {
		t.Fatalf("OLAP observed/miss: %+v", olap)
	}
	if olap.InfeasibleShare != 0 || !close1e9(olap.FaultShare, 0.4) {
		t.Fatalf("OLAP shares: %+v", olap)
	}
	// NaN in any share would poison the table render.
	for _, v := range []float64{olap.Observed, olap.Miss, olap.FaultShare, olap.ExecShare} {
		if v != v {
			t.Fatalf("NaN share: %+v", olap)
		}
	}
}

// An all-aborted class under an unreachable goal peels the infeasible
// part off first, exactly like the completed-query path.
func TestAttributeAllAbortedInfeasibleClass(t *testing.T) {
	var buf bytes.Buffer
	dw, err := NewWriter(&buf, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	rec := testRec(60, 0.2, 0.2)
	rec.Search.Classes[0].Ceiling = 0.3
	rec.Search.Classes[0].GoalMet = false
	rec.Search.Classes[0].Reachable = false
	dw.Note(rec)
	dw.Flush()

	tr := traceJSONL(
		ev(0, "submit", 1, 1, 1),
		ev(5, "abort", 1, 1, 1),
	)
	rows, _, err := Attribute(bytes.NewReader(buf.Bytes()), strings.NewReader(tr))
	if err != nil {
		t.Fatal(err)
	}
	olap := rows[0]
	checkShares(t, olap)
	// Miss 0.4: ceiling 0.3 makes 0.1 structurally unfixable, the
	// remaining 0.3 is charged to the faults that ate every query.
	if !close1e9(olap.Miss, 0.4) || !close1e9(olap.InfeasibleShare, 0.1) || !close1e9(olap.FaultShare, 0.3) {
		t.Fatalf("shares: %+v", olap)
	}
	// An RT class with zero completions has no honest observed number:
	// it stays unmeasured rather than inventing a miss.
	if oltp := rows[1]; oltp.Miss != 0 || oltp.Observed != 0 {
		t.Fatalf("OLTP row should stay unmeasured: %+v", oltp)
	}
}

func checkShares(t *testing.T, at Attribution) {
	t.Helper()
	sum := at.InfeasibleShare + at.FaultShare + at.WaitShare + at.ExecShare
	if !close1e9(sum, at.Miss) {
		t.Fatalf("shares sum %v != miss %v: %+v", sum, at.Miss, at)
	}
	for _, v := range []float64{at.InfeasibleShare, at.FaultShare, at.WaitShare, at.ExecShare} {
		if v < 0 {
			t.Fatalf("negative share: %+v", at)
		}
	}
}

func close1e9(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestMetricsCrossCheck(t *testing.T) {
	expo := strings.Join([]string{
		"# HELP qs_slo_attainment_ratio x",
		`qs_slo_attainment_ratio{class="1"} 0.5`,
		`qs_plan_held_total 3`,
		`qs_infeasible_ticks_total 7`,
	}, "\n") + "\n"
	var out bytes.Buffer
	if err := MetricsCrossCheck(&out, strings.NewReader(expo)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, `qs_slo_attainment_ratio{class="1"} 0.5`) ||
		!strings.Contains(s, "qs_infeasible_ticks_total 7") {
		t.Fatalf("families missing:\n%s", s)
	}
	if strings.Contains(s, "qs_plan_held_total") || strings.Contains(s, "# HELP") {
		t.Fatalf("unrelated lines leaked:\n%s", s)
	}

	out.Reset()
	if err := MetricsCrossCheck(&out, strings.NewReader("other_metric 1\n")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "none found") {
		t.Fatalf("empty cross-check not flagged:\n%s", out.String())
	}
}

// buildFleetTestLog writes a 2-backend log with a failover, a recovery,
// a brownout, and a migration interleaved between the tick records.
func buildFleetTestLog(t *testing.T, infeasibleTick2 bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	meta := testMeta()
	meta.Backends = []BackendMeta{{ID: 1, Name: "b1"}, {ID: 2, Name: "b2"}}
	dw, err := NewWriter(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	dw.NoteBackend(1, testRec(60, 0.45, 0.2))
	dw.NoteBackend(2, testRec(60, 0.45, 0.2))
	dw.NoteFleet(FleetRecord{T: 90, Event: "failover", Backend: 2, Moved: 3})
	rec := testRec(120, 0.35, 0.3)
	if infeasibleTick2 {
		rec.Search.Infeasible = true
		rec.Search.Binding = 1
	}
	dw.NoteBackend(1, rec)
	dw.NoteBackend(2, testRec(120, 0.35, 0.3))
	dw.NoteFleet(FleetRecord{T: 150, Event: "recover", Backend: 2})
	dw.NoteFleet(FleetRecord{T: 155, Event: "degraded", Backend: 1, Factor: 0.25})
	dw.NoteFleet(FleetRecord{T: 170, Event: "restored", Backend: 1})
	dw.NoteFleet(FleetRecord{T: 175, Event: "migration", Backend: 1, Class: 1, Target: 2})
	dw.NoteBackend(1, testRec(180, 0.5, 0.21))
	dw.NoteBackend(2, testRec(180, 0.5, 0.21))
	dw.Flush()
	if dw.Err() != nil {
		t.Fatal(dw.Err())
	}
	return buf.Bytes()
}

func TestTimelineRendersFleetAvailability(t *testing.T) {
	log := buildFleetTestLog(t, false)
	var out bytes.Buffer
	if err := Timeline(&out, bytes.NewReader(log), TickRange{}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Backend availability:",
		"backend 1: UP 0s-155s, DEGRADED x0.25 155s-170s, UP 170s-end",
		"backend 2: UP 0s-90s, DOWN 90s-150s, UP 150s-end  (3 queries re-dispatched on failover)",
		"Fleet events:",
		"backend 2 DOWN — failover, 3 queries re-dispatched to survivors",
		"backend 2 UP — rejoined with warm-up share",
		"backend 1 DEGRADED — running at x0.25 speed",
		"backend 1 restored to full speed",
		"backend 1 infeasible — migrating Class1 to backend 2",
		"tick    1 b2", // fleet tick lines carry the backend tag
	} {
		if !strings.Contains(s, want) {
			t.Errorf("fleet timeline missing %q:\n%s", want, s)
		}
	}
}

// An INFEASIBLE verdict at a tick where a backend is down must name the
// capacity loss; the same verdict before any fleet event must not.
func TestWhyNamesCapacityLoss(t *testing.T) {
	log := buildFleetTestLog(t, true)
	var out bytes.Buffer
	if err := Why(&out, bytes.NewReader(log), "class=1 tick=2", TickRange{}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "INFEASIBLE") {
		t.Fatalf("why output missing the INFEASIBLE verdict:\n%s", s)
	}
	if !strings.Contains(s, "capacity lost: backend 2 down since t=90s") {
		t.Errorf("why output does not name the capacity loss:\n%s", s)
	}
}

// A single-engine log must render exactly as before: no availability
// section, no backend tags.
func TestTimelineSingleEngineUnchangedByFleetSupport(t *testing.T) {
	log := buildTestLog(t)
	var out bytes.Buffer
	if err := Timeline(&out, bytes.NewReader(log), TickRange{}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "Backend availability") || strings.Contains(s, " b1 ") {
		t.Errorf("single-engine timeline grew fleet artifacts:\n%s", s)
	}
}
