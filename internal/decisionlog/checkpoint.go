// Checkpoint state for the decision-log writer. The pending record is
// deliberately NOT flushed at capture: the sink offset stays at a
// written-record boundary, so crash recovery truncates the file to
// SinkBytes and the resumed writer — restored with the same tick
// counter and pending record — continues byte-identically.
package decisionlog

import "sort"

// StreamState is one fleet backend's tick counter and pending record in
// serialized (sorted-by-backend) form.
type StreamState struct {
	Backend    int
	Tick       int
	HasPending bool
	Pending    Record
}

// CheckpointState is the writer's serializable state. The legacy single
// stream lives in Tick/HasPending/Pending; fleet backends (1..N) in
// Streams, sorted by backend ID.
type CheckpointState struct {
	Tick       int
	SinkBytes  int64
	HasPending bool
	Pending    Record
	Streams    []StreamState
}

// CheckpointState captures the writer at a quiescent boundary.
func (dw *Writer) CheckpointState() CheckpointState {
	st := CheckpointState{Tick: dw.tick, SinkBytes: dw.bytes}
	if dw.pending != nil {
		st.HasPending = true
		st.Pending = *dw.pending
	}
	for b, tick := range dw.bticks {
		ss := StreamState{Backend: b, Tick: tick}
		if p := dw.bpending[b]; p != nil {
			ss.HasPending = true
			ss.Pending = *p
		}
		st.Streams = append(st.Streams, ss)
	}
	sort.Slice(st.Streams, func(i, j int) bool { return st.Streams[i].Backend < st.Streams[j].Backend })
	return st
}

// RestoreCheckpoint overwrites a fresh (Resume)Writer with checkpointed
// state. The caller must have truncated the sink to st.SinkBytes first.
func (dw *Writer) RestoreCheckpoint(st CheckpointState) {
	if dw.tick != 0 || dw.pending != nil || dw.bticks != nil {
		panic("decisionlog: checkpoint restore onto a used writer")
	}
	dw.tick = st.Tick
	dw.bytes = st.SinkBytes
	if st.HasPending {
		p := st.Pending
		dw.pending = &p
	}
	if len(st.Streams) > 0 {
		dw.bticks = make(map[int]int, len(st.Streams))
		dw.bpending = make(map[int]*Record, len(st.Streams))
		for _, ss := range st.Streams {
			dw.bticks[ss.Backend] = ss.Tick
			if ss.HasPending {
				p := ss.Pending
				dw.bpending[ss.Backend] = &p
			}
		}
	}
}
