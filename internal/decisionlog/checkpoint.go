// Checkpoint state for the decision-log writer. The pending record is
// deliberately NOT flushed at capture: the sink offset stays at a
// written-record boundary, so crash recovery truncates the file to
// SinkBytes and the resumed writer — restored with the same tick
// counter and pending record — continues byte-identically.
package decisionlog

// CheckpointState is the writer's serializable state.
type CheckpointState struct {
	Tick       int
	SinkBytes  int64
	HasPending bool
	Pending    Record
}

// CheckpointState captures the writer at a quiescent boundary.
func (dw *Writer) CheckpointState() CheckpointState {
	st := CheckpointState{Tick: dw.tick, SinkBytes: dw.bytes}
	if dw.pending != nil {
		st.HasPending = true
		st.Pending = *dw.pending
	}
	return st
}

// RestoreCheckpoint overwrites a fresh (Resume)Writer with checkpointed
// state. The caller must have truncated the sink to st.SinkBytes first.
func (dw *Writer) RestoreCheckpoint(st CheckpointState) {
	if dw.tick != 0 || dw.pending != nil {
		panic("decisionlog: checkpoint restore onto a used writer")
	}
	dw.tick = st.Tick
	dw.bytes = st.SinkBytes
	if st.HasPending {
		p := st.Pending
		dw.pending = &p
	}
}
