// Streaming decision-log reader: one meta callback, one record callback
// per line, constant memory. The same shape as trace.ScanJSONL so
// cmd/qreport can join the two streams without buffering either.
package decisionlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Scanner buffer sizes: decision records carry a row per class and a
// back-filled outcome list, so lines stay small; the max guards against
// pathological rosters without buffering whole files.
const (
	scanInitBuf = 64 << 10
	scanMaxBuf  = 4 << 20
)

// ScanJSONL streams a decision log: onMeta is invoked once with the
// first line (which must be a meta line), then onRecord per decision
// line in file order. Fleet records are skipped — use ScanJSONLWithFleet
// to receive them. Either callback may be nil to skip. A callback
// returning an error aborts the scan with that error.
func ScanJSONL(r io.Reader, onMeta func(Meta) error, onRecord func(Record) error) error {
	return ScanJSONLWithFleet(r, onMeta, onRecord, nil)
}

// ScanJSONLWithFleet is ScanJSONL plus a fleet-record callback, invoked
// per "fleet" line in file order (nil skips them).
func ScanJSONLWithFleet(r io.Reader, onMeta func(Meta) error, onRecord func(Record) error, onFleet func(FleetRecord) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, scanInitBuf), scanMaxBuf)
	sawMeta := false
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if !sawMeta {
			var m Meta
			if err := json.Unmarshal(raw, &m); err != nil {
				return fmt.Errorf("decisionlog: line %d: %w", line, err)
			}
			if m.Type != "meta" {
				return fmt.Errorf("decisionlog: line %d: first line has type %q, want meta", line, m.Type)
			}
			if m.Version != Version {
				return fmt.Errorf("decisionlog: version %d log, reader supports %d", m.Version, Version)
			}
			sawMeta = true
			if onMeta != nil {
				if err := onMeta(m); err != nil {
					return err
				}
			}
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return fmt.Errorf("decisionlog: line %d: %w", line, err)
		}
		switch probe.Type {
		case "decision":
			var rec Record
			if err := json.Unmarshal(raw, &rec); err != nil {
				return fmt.Errorf("decisionlog: line %d: %w", line, err)
			}
			if onRecord != nil {
				if err := onRecord(rec); err != nil {
					return err
				}
			}
		case "fleet":
			if onFleet == nil {
				continue
			}
			var fr FleetRecord
			if err := json.Unmarshal(raw, &fr); err != nil {
				return fmt.Errorf("decisionlog: line %d: %w", line, err)
			}
			if err := onFleet(fr); err != nil {
				return err
			}
		default:
			return fmt.Errorf("decisionlog: line %d: unknown type %q", line, probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("decisionlog: scan: %w", err)
	}
	if !sawMeta {
		return fmt.Errorf("decisionlog: empty log (no meta line)")
	}
	return nil
}
