// Package decisionlog writes the control plane's decision audit log: one
// JSONL record per control tick capturing what the Query Scheduler saw
// (the harvested measurement), what it predicted (per-class model
// outputs and their provenance), how the Performance Solver searched
// (candidates, iterations, runner-up utility, infeasibility and the
// binding class), what it actuated (the cost limits), and — one tick
// later — what actually happened (the back-filled Actual outcomes).
//
// The log is versioned, deterministic, and resumable: records are
// buffered one tick so the next harvest can close the prediction window,
// the buffered record is carried in checkpoint state rather than the
// file, and a resumed run truncates the sink to the checkpointed byte
// offset and continues byte-identically (the same contract the trace
// sink follows).
package decisionlog

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

// Version is the decision-log format version, stamped into every meta
// line. Bump on any change to record field sets or semantics.
const Version = 1

// ClassMeta describes one service class in the meta line: everything a
// reader needs to interpret the class's decision rows without the
// scenario in hand.
type ClassMeta struct {
	ID         int     `json:"id"`
	Name       string  `json:"name"`
	Kind       string  `json:"kind"`   // "OLAP" | "OLTP"
	Metric     string  `json:"metric"` // "velocity" | "avg-response-time"
	Target     float64 `json:"target"`
	Importance int     `json:"importance"`
}

// BackendMeta describes one fleet backend in the meta line.
type BackendMeta struct {
	ID   int     `json:"id"` // 1-based, matches Record.Backend
	Name string  `json:"name"`
	CPU  float64 `json:"cpu"`
	IO   float64 `json:"io"`
}

// Meta is the log's first line: format version, run identity, and the
// class roster with goals.
type Meta struct {
	Type            string      `json:"type"` // always "meta"
	Version         int         `json:"version"`
	Experiment      string      `json:"experiment"`
	Seed            int64       `json:"seed"`
	ControlInterval float64     `json:"control_interval_seconds"`
	SLOWindow       int         `json:"slo_window"`
	SLOBudget       float64     `json:"slo_budget"`
	Classes         []ClassMeta `json:"classes"`
	// Backends is the fleet roster; empty (and omitted) for
	// single-backend runs, keeping legacy logs byte-identical.
	Backends []BackendMeta `json:"backends,omitempty"`
}

// ClassDecision is one class's row in a decision record: the measured
// anchor, the model's prediction and provenance, the goal analysis, the
// actuated limit, and the SLO accounting after this tick.
type ClassDecision struct {
	Class     int     `json:"class"`
	Limit     float64 `json:"limit"`
	PrevLimit float64 `json:"prev_limit"`
	Measured  float64 `json:"measured"`
	Samples   int     `json:"samples"`
	Idle      bool    `json:"idle,omitempty"`
	// Prediction and provenance — zero/empty on held ticks.
	Predicted   float64 `json:"predicted"`
	Ceiling     float64 `json:"ceiling"`
	Model       string  `json:"model,omitempty"`
	Anchor      float64 `json:"anchor"`
	AnchorLimit float64 `json:"anchor_limit"`
	// Goal analysis from the solver's search summary.
	Goal      float64 `json:"goal"`
	GoalMet   bool    `json:"goal_met"`
	Reachable bool    `json:"reachable"`
	Shortfall float64 `json:"shortfall"`
	// SLO accounting after this tick's measurement folded in.
	Attainment float64 `json:"attainment"`
	BurnRate   float64 `json:"burn_rate"`
}

// Outcome is the back-filled actual result for one class: what the next
// harvest measured over the window this record's plan governed.
type Outcome struct {
	Class    int     `json:"class"`
	Value    float64 `json:"value"`
	GoalMet  bool    `json:"goal_met"`
	AbsError float64 `json:"abs_error"` // |predicted - value|; 0 when no prediction existed
}

// Record is one control tick's decision, in audit order: inputs,
// predictions, search, actuation, and (back-filled) outcome.
type Record struct {
	Type string `json:"type"` // always "decision"
	// Backend is the 1-based fleet backend this tick belongs to; 0 (and
	// omitted) in single-backend logs. Each backend's ticks form an
	// independent stream with its own tick counter.
	Backend int     `json:"backend,omitempty"`
	Tick    int     `json:"tick"` // 1-based control tick index per stream
	T       float64 `json:"t"`    // sim time of the tick
	Held    bool    `json:"held,omitempty"`
	// Dropped / OLTPDropout flag fault-degraded harvests feeding the tick.
	Dropped     bool `json:"dropped,omitempty"`
	OLTPDropout bool `json:"oltp_dropout,omitempty"`
	// Solver search summary — zeros on held ticks.
	Utility     float64         `json:"utility"`
	RunnerUp    float64         `json:"runner_up"`
	HasRunnerUp bool            `json:"has_runner_up,omitempty"`
	Iterations  int             `json:"iterations"`
	Candidates  int             `json:"candidates"`
	Infeasible  bool            `json:"infeasible,omitempty"`
	Binding     int             `json:"binding,omitempty"`
	OLTPSlope   float64         `json:"oltp_slope"`
	Classes     []ClassDecision `json:"classes"`
	// Actual is back-filled from the next tick's harvest before the
	// record is written; the run's final record (flushed at shutdown)
	// and records followed by a fault-dropped harvest omit it.
	Actual []Outcome `json:"actual,omitempty"`
}

// FleetRecord is one fleet-level availability or mitigation event in
// the log: a backend failing over, recovering, degrading, or having its
// class demand migrated or shed. Unlike decision records these are not
// tick-buffered — there is no prediction window to close — so NoteFleet
// writes them immediately, interleaved with the decision streams in
// event order.
type FleetRecord struct {
	Type string  `json:"type"` // always "fleet"
	T    float64 `json:"t"`    // sim time of the event
	// Event: "failover" (backend crashed, queries re-dispatched),
	// "recover", "degraded", "restored", "migration", "migration-end",
	// "shed".
	Event   string `json:"event"`
	Backend int    `json:"backend"` // the event's subject, 1-based
	// Class / Target are set on migration and shed events.
	Class  int `json:"class,omitempty"`
	Target int `json:"target,omitempty"`
	// Factor is the brownout speed factor on degraded events.
	Factor float64 `json:"factor,omitempty"`
	// Moved counts queries re-dispatched to survivors on failover.
	Moved int `json:"moved,omitempty"`
}

// ClassesMeta renders a class roster into meta form, sorted by ID.
func ClassesMeta(classes []*workload.Class) []ClassMeta {
	out := make([]ClassMeta, 0, len(classes))
	for _, c := range classes {
		out = append(out, ClassMeta{
			ID:         int(c.ID),
			Name:       c.Name,
			Kind:       c.Kind.String(),
			Metric:     c.Goal.Metric.String(),
			Target:     c.Goal.Target,
			Importance: c.Importance,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Writer emits the decision log to a JSONL sink. Records lag one tick:
// Note buffers the newest record and writes its predecessor once the
// new harvest has closed the predecessor's prediction window. Not
// safe for concurrent use — the scheduler's plan hook is the only
// caller.
type Writer struct {
	w     io.Writer
	meta  Meta
	class map[engine.ClassID]ClassMeta
	ids   []engine.ClassID // sorted roster

	tick    int
	bytes   int64
	pending *Record
	// bticks/bpending are the per-backend tick counters and one-tick
	// buffers of a fleet log (streams 1..N); the legacy single stream
	// stays in tick/pending so its hot path and checkpoints are
	// untouched. Nil until NoteBackend is first called.
	bticks   map[int]int
	bpending map[int]*Record
	//lint:ignore ckptcover latched export error; a resumed run reopens the sink and starts clean
	err error
}

// NewWriter starts a decision log on w: validates the meta, stamps
// type/version, and writes the meta line.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	dw, err := newWriter(w, meta)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(dw.meta)
	if err != nil {
		return nil, fmt.Errorf("decisionlog: encode meta: %w", err)
	}
	line = append(line, '\n')
	n, err := w.Write(line)
	dw.bytes += int64(n)
	if err != nil {
		return nil, fmt.Errorf("decisionlog: write meta: %w", err)
	}
	return dw, nil
}

// ResumeWriter attaches to a sink that already holds a decision-log
// prefix (truncated to a checkpoint's SinkBytes): no meta line is
// written, and RestoreCheckpoint supplies the tick counter, byte offset,
// and pending record.
func ResumeWriter(w io.Writer, meta Meta) (*Writer, error) {
	return newWriter(w, meta)
}

func newWriter(w io.Writer, meta Meta) (*Writer, error) {
	if w == nil {
		return nil, fmt.Errorf("decisionlog: nil sink")
	}
	if len(meta.Classes) == 0 {
		return nil, fmt.Errorf("decisionlog: meta has no classes")
	}
	meta.Type = "meta"
	meta.Version = Version
	dw := &Writer{
		w:     w,
		meta:  meta,
		class: make(map[engine.ClassID]ClassMeta, len(meta.Classes)),
	}
	for _, c := range meta.Classes {
		id := engine.ClassID(c.ID)
		if _, dup := dw.class[id]; dup {
			return nil, fmt.Errorf("decisionlog: duplicate class %d in meta", c.ID)
		}
		dw.class[id] = c
		dw.ids = append(dw.ids, id)
	}
	sort.Slice(dw.ids, func(i, j int) bool { return dw.ids[i] < dw.ids[j] })
	return dw, nil
}

// Note folds one control tick into the log: the previous tick's record
// gains its Actual outcomes from this tick's harvest and is written; the
// new record becomes pending. Install it with qs.OnPlan(dw.Note).
func (dw *Writer) Note(rec core.PlanRecord) {
	dw.tick++
	if dw.pending != nil {
		dw.pending.Actual = dw.outcomes(dw.pending, rec.Measurement)
		dw.writeRecord(dw.pending)
	}
	r := dw.buildRecord(0, dw.tick, dw.pending, rec)
	dw.pending = &r
}

// NoteBackend is Note for one backend's stream of a fleet log: each
// backend's scheduler gets its own tick counter and one-tick buffer, so
// N interleaved control loops share a single sink without clobbering
// each other's prediction windows. Install per backend with
// qs.OnPlan(func(rec core.PlanRecord) { dw.NoteBackend(b, rec) }).
// Backend 0 is the legacy single stream (identical to Note).
func (dw *Writer) NoteBackend(b int, rec core.PlanRecord) {
	if b == 0 {
		dw.Note(rec)
		return
	}
	if dw.bticks == nil {
		dw.bticks = make(map[int]int)
		dw.bpending = make(map[int]*Record)
	}
	dw.bticks[b]++
	prev := dw.bpending[b]
	if prev != nil {
		prev.Actual = dw.outcomes(prev, rec.Measurement)
		dw.writeRecord(prev)
	}
	r := dw.buildRecord(b, dw.bticks[b], prev, rec)
	dw.bpending[b] = &r
}

// NoteFleet writes one fleet availability/mitigation event immediately.
// No buffering: fleet events have no prediction window, and writing in
// event order keeps the log a faithful interleaving of what the control
// plane knew when. Byte accounting goes through the same path as
// decision records, so checkpoints taken after a fleet event resume
// byte-identically.
func (dw *Writer) NoteFleet(fr FleetRecord) {
	if dw.err != nil {
		return
	}
	fr.Type = "fleet"
	line, err := json.Marshal(fr)
	if err != nil {
		dw.err = fmt.Errorf("decisionlog: encode fleet record: %w", err)
		return
	}
	line = append(line, '\n')
	n, werr := dw.w.Write(line)
	dw.bytes += int64(n)
	if werr != nil {
		dw.err = werr
	}
}

// Flush writes the trailing pending records (without Actual — no later
// harvest closed their windows), backend streams in ascending order.
// Call once at end of run; checkpoint capture deliberately does NOT
// flush, so the byte offset stays at a record boundary the resumed
// writer reproduces.
func (dw *Writer) Flush() {
	if dw.pending != nil {
		dw.writeRecord(dw.pending)
		dw.pending = nil
	}
	for _, b := range sortedStreamIDs(dw.bpending) {
		if p := dw.bpending[b]; p != nil {
			dw.writeRecord(p)
			delete(dw.bpending, b)
		}
	}
}

// sortedStreamIDs returns the map's backend IDs in ascending order.
func sortedStreamIDs(m map[int]*Record) []int {
	ids := make([]int, 0, len(m))
	for b := range m {
		ids = append(ids, b)
	}
	sort.Ints(ids)
	return ids
}

// SinkBytes returns the bytes written to the sink so far (the pending
// record is not included until written).
func (dw *Writer) SinkBytes() int64 { return dw.bytes }

// Err returns the first sink write error, latched.
func (dw *Writer) Err() error { return dw.err }

func (dw *Writer) writeRecord(r *Record) {
	if dw.err != nil {
		return
	}
	line, err := json.Marshal(r)
	if err != nil {
		dw.err = fmt.Errorf("decisionlog: encode record: %w", err)
		return
	}
	line = append(line, '\n')
	n, werr := dw.w.Write(line)
	dw.bytes += int64(n)
	if werr != nil {
		dw.err = werr
	}
}

// buildRecord renders a PlanRecord into its serialized form for one
// stream. Rows are emitted for every roster class in ID order; held
// ticks carry only the measured/limit columns. prev is the stream's
// previous record (the source of PrevLimit), tick its 1-based counter.
func (dw *Writer) buildRecord(backend, tick int, prev *Record, rec core.PlanRecord) Record {
	r := Record{
		Type:        "decision",
		Backend:     backend,
		Tick:        tick,
		T:           float64(rec.Time),
		Held:        rec.Held,
		Dropped:     rec.Measurement.Dropped,
		OLTPDropout: rec.Measurement.OLTPDropout,
		Utility:     rec.Utility,
		RunnerUp:    rec.Search.RunnerUp,
		HasRunnerUp: rec.Search.HasRunnerUp,
		Iterations:  rec.Search.Iterations,
		Candidates:  rec.Search.Candidates,
		Infeasible:  rec.Search.Infeasible,
		OLTPSlope:   rec.OLTPSlope,
	}
	if rec.Search.Infeasible {
		r.Binding = int(rec.Search.Binding)
	}
	for _, id := range dw.ids {
		cm := dw.class[id]
		cd := ClassDecision{
			Class: int(id),
			Limit: rec.Limits[id],
			Goal:  cm.Target,
		}
		if prev != nil {
			if row := prev.classRow(int(id)); row != nil {
				cd.PrevLimit = row.Limit
			}
		}
		cd.Measured, cd.Samples, cd.Idle = measuredValue(cm, rec.Measurement)
		if !rec.Held {
			cd.Predicted = rec.Predicted[id]
			if p, ok := rec.Provenance[id]; ok {
				cd.Model, cd.Anchor, cd.AnchorLimit = p.Model, p.Anchor, p.AnchorLimit
			}
			if cs, ok := rec.Search.Class(id); ok {
				cd.Ceiling = cs.Ceiling
				cd.GoalMet = cs.GoalMet
				cd.Reachable = cs.Reachable
				cd.Shortfall = cs.Shortfall
			}
			cd.Attainment = rec.Attainment[id]
			cd.BurnRate = rec.BurnRate[id]
		}
		r.Classes = append(r.Classes, cd)
	}
	return r
}

// classRow finds a class's row in a record (rows are sorted by class).
func (r *Record) classRow(class int) *ClassDecision {
	for i := range r.Classes {
		if r.Classes[i].Class == class {
			return &r.Classes[i]
		}
	}
	return nil
}

// measuredValue extracts one class's harvested metric: velocity for
// OLAP rows, mean response time for OLTP rows, with the sample count
// behind it and the idle flag.
func measuredValue(cm ClassMeta, meas core.Measurement) (v float64, samples int, idle bool) {
	id := engine.ClassID(cm.ID)
	if cm.Kind == workload.OLTP.String() {
		return meas.OLTPRespTime, meas.OLTPSamples, false
	}
	return meas.Velocity[id], meas.VelocitySamples[id], meas.Idle[id]
}

// outcomes closes a pending record's prediction window with the next
// tick's harvest: one Outcome per class the harvest actually observed
// (idle classes, empty OLTP intervals, and fault-dropped views yield
// none — mirroring the scheduler's SLO accounting).
func (dw *Writer) outcomes(pending *Record, meas core.Measurement) []Outcome {
	if meas.Dropped {
		return nil
	}
	var out []Outcome
	for _, id := range dw.ids {
		cm := dw.class[id]
		var v float64
		observed := false
		if cm.Kind == workload.OLTP.String() {
			if meas.OLTPSamples > 0 && !meas.OLTPDropout {
				v, observed = meas.OLTPRespTime, true
			}
		} else if !meas.Idle[id] {
			v, observed = meas.Velocity[id], true
		}
		if !observed {
			continue
		}
		o := Outcome{Class: int(id), Value: v, GoalMet: goalMet(cm, v)}
		if !pending.Held {
			if row := pending.classRow(int(id)); row != nil {
				o.AbsError = math.Abs(row.Predicted - v)
			}
		}
		out = append(out, o)
	}
	return out
}

// goalMet applies the class's goal direction: velocity goals are
// "at least", response-time goals "at most".
func goalMet(cm ClassMeta, v float64) bool {
	if cm.Metric == workload.Velocity.String() {
		return v >= cm.Target
	}
	return v <= cm.Target
}
