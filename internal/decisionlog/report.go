// The qreport engine: turns a decision audit log (plus optionally a
// trace and a metrics exposition) into an operator report — run summary
// with SLO attainment accounting, per-tick plan timeline, per-class
// "why" lines, and violation attribution that decomposes each missed
// goal into infeasible-goal vs fault/retry vs admission-wait vs
// execution-time shares. cmd/qreport is a thin flag wrapper over this
// file so the logic stays testable. Every view streams its input:
// memory is bounded by the answer (per-class tallies), not by the log
// or trace size.
package decisionlog

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SpecError marks a malformed or out-of-range query spec, so callers can
// distinguish usage mistakes from log problems (same split qtrace makes).
type SpecError struct{ Err error }

func (e *SpecError) Error() string { return e.Err.Error() }
func (e *SpecError) Unwrap() error { return e.Err }

// TickRange selects an inclusive 1-based tick window; zero bounds are
// open ("" selects everything, "7" one tick, "3-5" a range).
type TickRange struct{ From, To int }

// ParseTickRange parses "", "N", or "N-M".
func ParseTickRange(spec string) (TickRange, error) {
	var tr TickRange
	if spec == "" {
		return tr, nil
	}
	lo, hi, ranged := strings.Cut(spec, "-")
	n, err := strconv.Atoi(lo)
	if err != nil || n < 1 {
		return tr, fmt.Errorf("report: bad tick %q", spec)
	}
	tr.From, tr.To = n, n
	if ranged {
		m, err := strconv.Atoi(hi)
		if err != nil || m < n {
			return tr, fmt.Errorf("report: bad tick range %q", spec)
		}
		tr.To = m
	}
	return tr, nil
}

// Validate rejects a window whose explicit bounds lie beyond the log's
// last tick. A request like tick=3-99 against a 57-tick log is a spec
// mistake; rendering a silently empty (or silently truncated) breakdown
// would hide it, so report it as an error instead.
func (tr TickRange) Validate(lastTick int) error {
	hi := tr.To
	if hi == 0 {
		hi = tr.From
	}
	if hi == 0 || hi <= lastTick {
		return nil
	}
	if tr.From == tr.To {
		return fmt.Errorf("report: tick %d out of range 1..%d", hi, lastTick)
	}
	return fmt.Errorf("report: tick range %d-%d extends past last tick %d", tr.From, tr.To, lastTick)
}

// Contains reports whether tick falls in the window.
func (tr TickRange) Contains(tick int) bool {
	if tr.From > 0 && tick < tr.From {
		return false
	}
	if tr.To > 0 && tick > tr.To {
		return false
	}
	return true
}

// velocityGoal reports whether a roster class carries a velocity
// ("at least") goal rather than a response-time ("at most") one.
func velocityGoal(cm ClassMeta) bool {
	return cm.Metric == workload.Velocity.String()
}

// metricLabel is the short metric tag used in report lines.
func metricLabel(cm ClassMeta) string {
	if velocityGoal(cm) {
		return "v"
	}
	return "rt"
}

// resolveClass maps a class spec (numeric ID, letter A.. in roster
// order, or name) to a roster class.
func resolveClass(val string, meta Meta) (ClassMeta, error) {
	if n, err := strconv.Atoi(val); err == nil {
		for _, c := range meta.Classes {
			if c.ID == n {
				return c, nil
			}
		}
		return ClassMeta{}, fmt.Errorf("report: no class with ID %d in log", n)
	}
	if len(val) == 1 && val[0] >= 'A' && val[0] <= 'Z' {
		if i := int(val[0] - 'A'); i < len(meta.Classes) {
			return meta.Classes[i], nil
		}
		return ClassMeta{}, fmt.Errorf("report: class %q but log has only %d classes", val, len(meta.Classes))
	}
	for _, c := range meta.Classes {
		if strings.EqualFold(c.Name, val) {
			return c, nil
		}
	}
	return ClassMeta{}, fmt.Errorf("report: unknown class %q", val)
}

// classSummary accumulates one class's tallies over the whole log.
type classSummary struct {
	observed, met int // back-filled Actual outcomes and how many met goal
	errSum        float64
	errMax        float64
	errN          int // planned-tick outcomes with a prediction behind them
	attainment    float64
	burnRate      float64
	hasWindow     bool // saw at least one planned tick
}

// summaryAcc folds decision records into the report summary.
type summaryAcc struct {
	meta       Meta
	ticks      int
	held       int
	dropped    int
	infeasible int
	binding    map[int]int
	candidates int
	iterations int
	churn      int // ticks where at least one limit moved
	class      map[int]*classSummary
}

func newSummaryAcc(meta Meta) *summaryAcc {
	a := &summaryAcc{meta: meta, binding: make(map[int]int), class: make(map[int]*classSummary)}
	for _, c := range meta.Classes {
		a.class[c.ID] = &classSummary{}
	}
	return a
}

func (a *summaryAcc) add(r Record) {
	a.ticks++
	if r.Dropped {
		a.dropped++
	}
	if r.Held {
		a.held++
	} else {
		a.candidates += r.Candidates
		a.iterations += r.Iterations
		if r.Infeasible {
			a.infeasible++
			a.binding[r.Binding]++
		}
		moved := false
		for _, cd := range r.Classes {
			//lint:ignore floateq limits are actuated values copied verbatim between records; any bit change is a real plan change
			if cd.Limit != cd.PrevLimit {
				moved = true
			}
			if cs := a.class[cd.Class]; cs != nil {
				cs.attainment, cs.burnRate, cs.hasWindow = cd.Attainment, cd.BurnRate, true
			}
		}
		if moved {
			a.churn++
		}
	}
	for _, o := range r.Actual {
		cs := a.class[o.Class]
		if cs == nil {
			continue
		}
		cs.observed++
		if o.GoalMet {
			cs.met++
		}
		if !r.Held {
			cs.errN++
			cs.errSum += o.AbsError
			if o.AbsError > cs.errMax {
				cs.errMax = o.AbsError
			}
		}
	}
}

func (a *summaryAcc) render(w io.Writer) {
	m := a.meta
	fmt.Fprintf(w, "Decision log: %s (seed %d), format v%d\n", m.Experiment, m.Seed, m.Version)
	fmt.Fprintf(w, "Control: interval %.0fs, SLO window %d ticks, budget %.2f\n", m.ControlInterval, m.SLOWindow, m.SLOBudget)
	for i, c := range m.Classes {
		dir := ">="
		if !velocityGoal(c) {
			dir = "<="
		}
		fmt.Fprintf(w, "  class %d %q (%s): %s %s %g, importance %d  [letter %c]\n",
			c.ID, c.Name, c.Kind, metricLabel(c), dir, c.Target, c.Importance, 'A'+i)
	}
	planned := a.ticks - a.held
	fmt.Fprintf(w, "Ticks: %d total, %d held, %d degraded harvests\n", a.ticks, a.held, a.dropped)
	if planned > 0 {
		fmt.Fprintf(w, "Solver: mean candidates %.1f, mean iterations %.1f over %d planned ticks; plan changed on %d\n",
			float64(a.candidates)/float64(planned), float64(a.iterations)/float64(planned), planned, a.churn)
		fmt.Fprintf(w, "Feasibility: no plan met all goals on %d/%d planned ticks", a.infeasible, planned)
		if a.infeasible > 0 {
			var ids []int
			for id := range a.binding {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			parts := make([]string, 0, len(ids))
			for _, id := range ids {
				parts = append(parts, fmt.Sprintf("%s x%d", a.className(id), a.binding[id]))
			}
			fmt.Fprintf(w, " (binding: %s)", strings.Join(parts, ", "))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nSLO attainment (goal-met outcomes over the whole log; window columns from the last planned tick):\n")
	fmt.Fprintf(w, "  %-12s %9s %6s %10s %8s %8s %10s %10s\n",
		"class", "observed", "met", "attainment", "window", "burn", "mean|err|", "max|err|")
	for _, c := range m.Classes {
		cs := a.class[c.ID]
		att, errMean := "-", "-"
		if cs.observed > 0 {
			att = fmt.Sprintf("%.2f", float64(cs.met)/float64(cs.observed))
		}
		if cs.errN > 0 {
			errMean = fmt.Sprintf("%.4f", cs.errSum/float64(cs.errN))
		}
		win, burn := "-", "-"
		if cs.hasWindow {
			win = fmt.Sprintf("%.2f", cs.attainment)
			burn = fmt.Sprintf("%.2f", cs.burnRate)
		}
		fmt.Fprintf(w, "  %-12s %9d %6d %10s %8s %8s %10s %10.4f\n",
			c.Name, cs.observed, cs.met, att, win, burn, errMean, cs.errMax)
	}
}

func (a *summaryAcc) className(id int) string {
	for _, c := range a.meta.Classes {
		if c.ID == id {
			return c.Name
		}
	}
	return fmt.Sprintf("class %d", id)
}

// Summarize streams a decision log and writes the run summary: header,
// solver/feasibility tallies, and the SLO attainment table. Nothing is
// written until the scan succeeds. Fleet logs (meta carrying a backend
// roster) get one summary section per backend stream, plus the roster.
func Summarize(w io.Writer, r io.Reader) error {
	var meta Meta
	accs := make(map[int]*summaryAcc)
	err := ScanJSONL(r,
		func(m Meta) error { meta = m; return nil },
		func(rec Record) error {
			a := accs[rec.Backend]
			if a == nil {
				a = newSummaryAcc(meta)
				accs[rec.Backend] = a
			}
			a.add(rec)
			return nil
		})
	if err != nil {
		return err
	}
	if len(meta.Backends) == 0 {
		a := accs[0]
		if a == nil {
			a = newSummaryAcc(meta)
		}
		a.render(w)
		return nil
	}
	fmt.Fprintf(w, "Fleet decision log: %s (seed %d), format v%d — %d backends\n",
		meta.Experiment, meta.Seed, meta.Version, len(meta.Backends))
	for _, b := range meta.Backends {
		fmt.Fprintf(w, "  backend %d %q: cpu %g, io %g\n", b.ID, b.Name, b.CPU, b.IO)
	}
	for _, b := range meta.Backends {
		fmt.Fprintf(w, "\n=== backend %d: %s ===\n", b.ID, b.Name)
		a := accs[b.ID]
		if a == nil {
			fmt.Fprintf(w, "(no decision records)\n")
			continue
		}
		a.render(w)
	}
	return nil
}

// Timeline streams a decision log and writes one line per control tick
// in the window: time, utility, search effort, actuated limits, and
// feasibility/outcome flags. Lines print as records are scanned, so
// memory stays constant; corrupt input can leave partial output behind
// the returned error. Fleet logs get their availability spans and
// failover/migration markers appended after the tick lines.
func Timeline(w io.Writer, r io.Reader, window TickRange) error {
	var meta Meta
	var health fleetHealth
	lastTick := 0
	err := ScanJSONLWithFleet(r,
		func(m Meta) error {
			meta = m
			fmt.Fprintf(w, "Decision timeline: %s (seed %d)\n", m.Experiment, m.Seed)
			return nil
		},
		func(rec Record) error {
			if rec.Tick > lastTick {
				lastTick = rec.Tick
			}
			if !window.Contains(rec.Tick) {
				return nil
			}
			writeTimelineLine(w, meta, rec)
			return nil
		},
		func(fr FleetRecord) error { health.add(fr); return nil })
	if err != nil {
		return err
	}
	if verr := window.Validate(lastTick); verr != nil {
		return &SpecError{Err: verr}
	}
	health.render(w, meta)
	return nil
}

func writeTimelineLine(w io.Writer, meta Meta, rec Record) {
	var b strings.Builder
	fmt.Fprintf(&b, "tick %4d", rec.Tick)
	if rec.Backend > 0 {
		fmt.Fprintf(&b, " b%d", rec.Backend)
	}
	fmt.Fprintf(&b, "  t=%9.1fs", rec.T)
	if rec.Held {
		b.WriteString("  held (degraded harvest, limits frozen)")
	} else {
		fmt.Fprintf(&b, "  util %8.3f  cand %3d  limits:", rec.Utility, rec.Candidates)
		for _, cd := range rec.Classes {
			fmt.Fprintf(&b, " %d=%.0f", cd.Class, cd.Limit)
		}
		if rec.Infeasible {
			fmt.Fprintf(&b, "  INFEASIBLE binding=%s", metaClassName(meta, rec.Binding))
		}
	}
	if missed := missedClasses(rec); len(missed) > 0 {
		fmt.Fprintf(&b, "  missed:%s", joinInts(missed))
	}
	fmt.Fprintln(w, b.String())
}

// fleetHealth collects the fleet records interleaved in a fleet decision
// log. NoteFleet writes them unbuffered at event time, so they arrive in
// time order and every event at or before a decision record's T precedes
// that record in the file — which is what lets Why annotate streamed
// INFEASIBLE verdicts with the capacity already known to be lost.
type fleetHealth struct {
	events []FleetRecord
}

func (fh *fleetHealth) add(fr FleetRecord) { fh.events = append(fh.events, fr) }

// availability transitions map a fleet event to the backend state it
// enters; migration markers return "" (they move demand, not capacity).
func availabilityState(fr FleetRecord) string {
	switch fr.Event {
	case "failover":
		return "DOWN"
	case "recover", "restored":
		return "UP"
	case "degraded":
		return fmt.Sprintf("DEGRADED x%.2f", fr.Factor)
	}
	return ""
}

// render writes the backend availability spans and the fleet event
// markers. A log with no fleet records (single engine, or a fleet that
// never saw a fault) renders nothing.
func (fh *fleetHealth) render(w io.Writer, meta Meta) {
	if len(fh.events) == 0 || len(meta.Backends) == 0 {
		return
	}
	fmt.Fprintln(w, "Backend availability:")
	for _, bk := range meta.Backends {
		state, from := "UP", 0.0
		redispatched := 0
		var spans []string
		for _, fr := range fh.events {
			if fr.Backend != bk.ID {
				continue
			}
			if fr.Event == "failover" {
				redispatched += fr.Moved
			}
			next := availabilityState(fr)
			if next == "" || next == state {
				continue
			}
			spans = append(spans, fmt.Sprintf("%s %.0fs-%.0fs", state, from, fr.T))
			state, from = next, fr.T
		}
		spans = append(spans, fmt.Sprintf("%s %.0fs-end", state, from))
		line := fmt.Sprintf("  backend %d: %s", bk.ID, strings.Join(spans, ", "))
		if redispatched > 0 {
			line += fmt.Sprintf("  (%d queries re-dispatched on failover)", redispatched)
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintln(w, "Fleet events:")
	for _, fr := range fh.events {
		fmt.Fprintf(w, "  t=%9.1fs  %s\n", fr.T, fleetEventLine(meta, fr))
	}
}

// fleetEventLine renders one fleet record as an operator-readable marker.
func fleetEventLine(meta Meta, fr FleetRecord) string {
	switch fr.Event {
	case "failover":
		return fmt.Sprintf("backend %d DOWN — failover, %d queries re-dispatched to survivors", fr.Backend, fr.Moved)
	case "recover":
		return fmt.Sprintf("backend %d UP — rejoined with warm-up share", fr.Backend)
	case "degraded":
		return fmt.Sprintf("backend %d DEGRADED — running at x%.2f speed", fr.Backend, fr.Factor)
	case "restored":
		return fmt.Sprintf("backend %d restored to full speed", fr.Backend)
	case "migration":
		return fmt.Sprintf("backend %d infeasible — migrating %s to backend %d", fr.Backend, metaClassName(meta, fr.Class), fr.Target)
	case "migration-end":
		// Ends either because the source plans feasibly again or because
		// it died; the record does not distinguish.
		return fmt.Sprintf("migration of %s off backend %d ended", metaClassName(meta, fr.Class), fr.Backend)
	case "shed":
		return fmt.Sprintf("backend %d infeasible, no healthy peer — shedding %s", fr.Backend, metaClassName(meta, fr.Class))
	}
	return fmt.Sprintf("backend %d %s", fr.Backend, fr.Event)
}

// capacityNote names the capacity lost as of time t — the backends down
// or degraded — so an INFEASIBLE verdict can say what broke the plan.
// Returns "" when the fleet was whole.
func (fh *fleetHealth) capacityNote(t float64) string {
	type bkState struct {
		state  string // "" = up
		since  float64
		factor float64
	}
	states := make(map[int]*bkState)
	order := []int{}
	for _, fr := range fh.events {
		if fr.T > t {
			break // events are time-ordered
		}
		st := states[fr.Backend]
		if st == nil {
			st = &bkState{}
			states[fr.Backend] = st
			order = append(order, fr.Backend)
		}
		switch fr.Event {
		case "failover":
			st.state, st.since = "down", fr.T
		case "degraded":
			st.state, st.since, st.factor = "degraded", fr.T, fr.Factor
		case "recover", "restored":
			st.state = ""
		}
	}
	var parts []string
	for _, id := range order {
		st := states[id]
		switch st.state {
		case "down":
			parts = append(parts, fmt.Sprintf("backend %d down since t=%.0fs", id, st.since))
		case "degraded":
			parts = append(parts, fmt.Sprintf("backend %d at x%.2f speed since t=%.0fs", id, st.factor, st.since))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "capacity lost: " + strings.Join(parts, ", ")
}

func metaClassName(meta Meta, id int) string {
	for _, c := range meta.Classes {
		if c.ID == id {
			return c.Name
		}
	}
	return fmt.Sprintf("class %d", id)
}

// missedClasses lists the classes whose back-filled outcome missed goal.
func missedClasses(rec Record) []int {
	var out []int
	for _, o := range rec.Actual {
		if !o.GoalMet {
			out = append(out, o.Class)
		}
	}
	return out
}

func joinInts(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}

// WhyQuery addresses one class (and optionally a tick window) of the
// decision log, parsed from a spec like "class=B tick=3-5".
type WhyQuery struct {
	Class  ClassMeta
	Window TickRange
}

// ParseWhyQuery parses a -why spec against the log's roster. Classes may
// be named by numeric ID, letter (A = first roster class), or name;
// ticks are 1-based, singly ("tick=4") or as a range ("tick=3-5").
func ParseWhyQuery(spec string, meta Meta) (WhyQuery, error) {
	var q WhyQuery
	sawClass := false
	for _, field := range strings.Fields(spec) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return q, fmt.Errorf("report: %q is not key=value", field)
		}
		switch key {
		case "class":
			cm, err := resolveClass(val, meta)
			if err != nil {
				return q, err
			}
			q.Class = cm
			sawClass = true
		case "tick":
			tr, err := ParseTickRange(val)
			if err != nil {
				return q, err
			}
			q.Window = tr
		default:
			return q, fmt.Errorf("report: unknown key %q (want class=, tick=)", key)
		}
	}
	if !sawClass {
		return q, fmt.Errorf("report: spec %q must set class=", spec)
	}
	return q, nil
}

// Why streams a decision log and writes one explanation block per tick
// in the query's window: what the controller did to the class and why —
// the actuation verb, the prediction against the goal, reachability,
// the utility margin over the runner-up plan, and the back-filled
// actual outcome. On fleet logs an INFEASIBLE verdict also names the
// capacity lost (backends down or degraded at that tick), so "the plan
// can't meet the goal" reads as "because a backend died", not as a
// solver mystery. Spec errors are wrapped in *SpecError.
func Why(w io.Writer, r io.Reader, spec string, window TickRange) error {
	var q WhyQuery
	var health fleetHealth
	lastTick := 0
	err := ScanJSONLWithFleet(r,
		func(m Meta) error {
			var err error
			if q, err = ParseWhyQuery(spec, m); err != nil {
				return &SpecError{Err: err}
			}
			cm := q.Class
			dir := ">="
			if !velocityGoal(cm) {
				dir = "<="
			}
			fmt.Fprintf(w, "Why %s (%s, goal %s %s %g): %s (seed %d)\n",
				cm.Name, cm.Kind, metricLabel(cm), dir, cm.Target, m.Experiment, m.Seed)
			return nil
		},
		func(rec Record) error {
			if rec.Tick > lastTick {
				lastTick = rec.Tick
			}
			if !window.Contains(rec.Tick) || !q.Window.Contains(rec.Tick) {
				return nil
			}
			writeWhyLine(w, q.Class, rec, &health)
			return nil
		},
		func(fr FleetRecord) error { health.add(fr); return nil })
	if err != nil {
		return err
	}
	for _, tr := range []TickRange{window, q.Window} {
		if verr := tr.Validate(lastTick); verr != nil {
			return &SpecError{Err: verr}
		}
	}
	return nil
}

// writeWhyLine renders one tick's decision for one class.
func writeWhyLine(w io.Writer, cm ClassMeta, rec Record, health *fleetHealth) {
	cd := rec.classRow(cm.ID)
	if cd == nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tick %4d  t=%9.1fs  ", rec.Tick, rec.T)
	tag := metricLabel(cm)
	if rec.Held {
		fmt.Fprintf(&b, "held: degraded harvest (dropped=%v oltp_dropout=%v), limit frozen at %.0f",
			rec.Dropped, rec.OLTPDropout, cd.Limit)
	} else {
		verb := "held steady at"
		switch {
		case cd.Limit < cd.PrevLimit:
			verb = "throttled"
		case cd.Limit > cd.PrevLimit:
			verb = "boosted"
		}
		if verb == "held steady at" {
			fmt.Fprintf(&b, "%s %s %.0f: ", cm.Name, verb, cd.Limit)
		} else {
			fmt.Fprintf(&b, "%s %s %.0f->%.0f: ", cm.Name, verb, cd.PrevLimit, cd.Limit)
		}
		rel := ">="
		miss := "<"
		if !velocityGoal(cm) {
			rel, miss = "<=", ">"
		}
		if cd.GoalMet {
			fmt.Fprintf(&b, "predicted %s=%.3f %s goal %g", tag, cd.Predicted, rel, cd.Goal)
		} else {
			fmt.Fprintf(&b, "predicted %s=%.3f %s goal %g", tag, cd.Predicted, miss, cd.Goal)
			if cd.Reachable {
				fmt.Fprintf(&b, " (reachable: ceiling %.3f, conceded to higher utility)", cd.Ceiling)
			} else {
				fmt.Fprintf(&b, " (unreachable: ceiling %.3f)", cd.Ceiling)
			}
		}
		if cd.Model != "" {
			fmt.Fprintf(&b, "; model %s@%.0f", cd.Model, cd.AnchorLimit)
		}
		fmt.Fprintf(&b, "; utility %.3f", rec.Utility)
		if rec.HasRunnerUp {
			fmt.Fprintf(&b, ", gap to runner-up %.3f", rec.Utility-rec.RunnerUp)
		}
		if rec.Infeasible {
			fmt.Fprintf(&b, "; INFEASIBLE (binding class %d)", rec.Binding)
			if note := health.capacityNote(rec.T); note != "" {
				fmt.Fprintf(&b, "; %s", note)
			}
		}
	}
	fmt.Fprintln(w, b.String())
	for _, o := range rec.Actual {
		if o.Class != cm.ID {
			continue
		}
		verdict := "ok"
		if !o.GoalMet {
			verdict = "MISS"
		}
		fmt.Fprintf(w, "%26s  actual %s=%.3f %s (|pred-actual|=%.4f)", "",
			tag, o.Value, verdict, o.AbsError)
		if !rec.Held {
			if cd := rec.classRow(cm.ID); cd != nil {
				fmt.Fprintf(w, "; attainment %.2f, burn %.2f", cd.Attainment, cd.BurnRate)
			}
		}
		fmt.Fprintln(w)
	}
}

// Attribution decomposes one class's observed goal miss into additive
// shares: the part no plan could have fixed (infeasible goal), the part
// lost to faults and retries, the part spent waiting for admission, and
// the part spent executing. Shares sum exactly to Miss by construction.
type Attribution struct {
	Class     ClassMeta
	Completed int // logical queries completing inside the trace
	// Submitted counts logical queries first submitted inside the trace
	// and Aborted counts abort events; together they let a class whose
	// every query was lost to faults (zero completions) still carry its
	// miss instead of silently reporting 0.
	Submitted, Aborted int

	// Per-logical-query time totals from the trace: fault time (failed
	// attempts and retry backoff, first submit to last submit), admission
	// wait (last submit to start), and execution (start to done).
	FaultTime, WaitTime, ExecTime float64

	// Observed is the trace-derived goal metric over completed logical
	// queries: velocity = exec/(fault+wait+exec), RT = mean response.
	Observed float64
	// Miss is the directional gap from Observed to the goal (0 if met).
	Miss float64

	InfeasibleShare, FaultShare, WaitShare, ExecShare float64

	// BestCeiling is the best model ceiling seen across planned ticks
	// (max for velocity goals, min for RT goals); the infeasible share is
	// the part of the miss beyond it. HasCeiling is false when the log
	// had no planned ticks.
	BestCeiling float64
	HasCeiling  bool
}

// queryState tracks one in-flight attempt while scanning the trace,
// keyed by query ID (a closed-loop client's next submit can precede the
// previous query's done event at the same instant, so client identity
// alone cannot hold per-attempt state). firstSubmit reaches back through
// retries: resubmissions get fresh query IDs, but the QueryRetried event
// marks the failed attempt, and the client is blocked until its logical
// query resolves, so the client's next submit is the retry.
type queryState struct {
	class       engine.ClassID
	firstSubmit float64
	lastSubmit  float64
	start       float64
	started     bool
}

// attrAcc accumulates per-class attribution inputs from a trace scan.
// Memory is bounded by in-flight queries plus faults, never trace length.
type attrAcc struct {
	inflight map[engine.QueryID]*queryState
	// carry[client] holds a retried logical query's first submit time
	// until the retry's resubmission claims it.
	carry map[engine.ClientID]float64
	class map[int]*Attribution
}

func (a *attrAcc) add(e trace.Event) {
	switch e.Kind {
	case trace.QuerySubmit:
		st := &queryState{class: e.Class, firstSubmit: float64(e.Time), lastSubmit: float64(e.Time)}
		if first, ok := a.carry[e.Client]; ok {
			st.firstSubmit = first
			delete(a.carry, e.Client)
		} else if at := a.class[int(e.Class)]; at != nil {
			at.Submitted++ // a carry-claiming submit is a retry, not a new logical query
		}
		a.inflight[e.Query] = st
	case trace.QueryAborted:
		if at := a.class[int(e.Class)]; at != nil {
			at.Aborted++
		}
	case trace.QueryStart:
		if st := a.inflight[e.Query]; st != nil {
			st.start = float64(e.Time)
			st.started = true
		}
	case trace.QueryRetried:
		// Fires when a failed attempt is re-queued: the resubmission (the
		// client's next submit, under a fresh query ID) continues the same
		// logical query, so its first-submit time carries over. Exhausted
		// aborts never fire this, leaving a dead inflight entry behind —
		// bounded by the run's fault count.
		if st := a.inflight[e.Query]; st != nil {
			a.carry[e.Client] = st.firstSubmit
			delete(a.inflight, e.Query)
		}
	case trace.QueryDone:
		st := a.inflight[e.Query]
		if st == nil || !st.started {
			return
		}
		if at := a.class[int(st.class)]; at != nil {
			at.Completed++
			at.FaultTime += st.lastSubmit - st.firstSubmit
			at.WaitTime += st.start - st.lastSubmit
			at.ExecTime += float64(e.Time) - st.start
		}
		delete(a.inflight, e.Query)
	}
}

// Attribute joins a decision log (for the goal roster and model
// ceilings) with a trace (for per-query lifecycle time) into per-class
// violation attributions, in roster order. Both inputs are streamed;
// state is bounded by the roster and the number of concurrent clients.
func Attribute(decisions, tr io.Reader) ([]Attribution, Meta, error) {
	var meta Meta
	type ceiling struct {
		best float64
		seen bool
	}
	ceilings := make(map[int]*ceiling)
	err := ScanJSONL(decisions,
		func(m Meta) error {
			meta = m
			for _, c := range m.Classes {
				ceilings[c.ID] = &ceiling{}
			}
			return nil
		},
		func(rec Record) error {
			if rec.Held {
				return nil
			}
			for _, cd := range rec.Classes {
				c := ceilings[cd.Class]
				if c == nil {
					continue
				}
				cm, _ := metaClass(meta, cd.Class)
				better := cd.Ceiling > c.best
				if !velocityGoal(cm) {
					better = cd.Ceiling < c.best
				}
				if !c.seen || better {
					c.best, c.seen = cd.Ceiling, true
				}
			}
			return nil
		})
	if err != nil {
		return nil, meta, err
	}

	acc := &attrAcc{
		inflight: make(map[engine.QueryID]*queryState),
		carry:    make(map[engine.ClientID]float64),
		class:    make(map[int]*Attribution, len(meta.Classes)),
	}
	out := make([]Attribution, len(meta.Classes))
	for i, c := range meta.Classes {
		out[i].Class = c
		if ce := ceilings[c.ID]; ce.seen {
			out[i].BestCeiling, out[i].HasCeiling = ce.best, true
		}
		acc.class[c.ID] = &out[i]
	}
	err = trace.ScanJSONL(tr,
		func(trace.Meta) error { return nil },
		func(e trace.Event) error { acc.add(e); return nil })
	if err != nil {
		return nil, meta, err
	}
	for i := range out {
		out[i].attribute()
	}
	return out, meta, nil
}

// metaClass finds a roster class by ID.
func metaClass(meta Meta, id int) (ClassMeta, bool) {
	for _, c := range meta.Classes {
		if c.ID == id {
			return c, true
		}
	}
	return ClassMeta{}, false
}

// attribute turns the accumulated time totals into additive miss shares.
// The infeasible share is peeled off first (the part of the miss beyond
// the best plan's ceiling), then the remainder is charged to fault,
// wait, and execution in that order, each capped by the recovery that
// eliminating it alone could deliver; whatever is left lands on
// execution. The sequential split guarantees the shares sum to Miss.
func (at *Attribution) attribute() {
	resp := at.FaultTime + at.WaitTime + at.ExecTime
	if at.Completed == 0 || resp <= 0 {
		at.attributeLost()
		return
	}
	target := at.Class.Target
	var faultRecovery, waitRecovery float64
	if velocityGoal(at.Class) {
		at.Observed = at.ExecTime / resp
		at.Miss = math.Max(0, target-at.Observed)
		if at.HasCeiling {
			at.InfeasibleShare = clamp(target-at.BestCeiling, 0, at.Miss)
		}
		// Velocity with fault time removed, then with wait also removed
		// (pure execution is velocity 1 by definition).
		vNoFault := 1.0
		if at.WaitTime+at.ExecTime > 0 {
			vNoFault = at.ExecTime / (at.WaitTime + at.ExecTime)
		}
		faultRecovery = vNoFault - at.Observed
		waitRecovery = 1 - vNoFault
	} else {
		n := float64(at.Completed)
		at.Observed = resp / n
		at.Miss = math.Max(0, at.Observed-target)
		if at.HasCeiling {
			at.InfeasibleShare = clamp(at.BestCeiling-target, 0, at.Miss)
		}
		faultRecovery = at.FaultTime / n
		waitRecovery = at.WaitTime / n
	}
	rem := at.Miss - at.InfeasibleShare
	at.FaultShare = clamp(faultRecovery, 0, rem)
	rem -= at.FaultShare
	at.WaitShare = clamp(waitRecovery, 0, rem)
	at.ExecShare = rem - at.WaitShare
}

// attributeLost handles the all-lost window: a class that submitted
// queries but completed none because every attempt aborted under fault
// injection. A velocity goal counts lost queries as velocity-0
// deliveries (mirroring metrics.Collector), so the whole target is
// missed; the miss is peeled into the infeasible share and the
// remainder charged to faults, keeping the sum-to-miss invariant with
// no division by the zero completion count. Response-time classes have
// no honest number for a lost query and stay unmeasured, exactly like
// the collector.
func (at *Attribution) attributeLost() {
	if at.Submitted == 0 || at.Aborted == 0 || !velocityGoal(at.Class) {
		return
	}
	at.Observed = 0
	at.Miss = at.Class.Target
	if at.HasCeiling {
		at.InfeasibleShare = clamp(at.Class.Target-at.BestCeiling, 0, at.Miss)
	}
	at.FaultShare = at.Miss - at.InfeasibleShare
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RenderAttribution writes the violation attribution table plus one
// explanatory line per missed goal.
func RenderAttribution(w io.Writer, meta Meta, rows []Attribution) {
	fmt.Fprintf(w, "Violation attribution: %s (seed %d), completed logical queries\n", meta.Experiment, meta.Seed)
	fmt.Fprintf(w, "  %-12s %6s %4s %9s %9s %7s %11s %8s %8s %8s\n",
		"class", "done", "", "observed", "goal", "miss", "infeasible", "fault", "wait", "exec")
	for _, at := range rows {
		fmt.Fprintf(w, "  %-12s %6d %4s %9.3f %9g %7.3f %11.3f %8.3f %8.3f %8.3f\n",
			at.Class.Name, at.Completed, metricLabel(at.Class), at.Observed,
			at.Class.Target, at.Miss, at.InfeasibleShare, at.FaultShare, at.WaitShare, at.ExecShare)
	}
	for _, at := range rows {
		if at.Miss <= 0 {
			continue
		}
		fmt.Fprintf(w, "  %s: %s\n", at.Class.Name, at.explain())
	}
}

// explain renders a one-line cause ranking for a missed goal.
func (at *Attribution) explain() string {
	type share struct {
		name string
		v    float64
	}
	shares := []share{
		{"infeasible goal", at.InfeasibleShare},
		{"faults/retries", at.FaultShare},
		{"admission wait", at.WaitShare},
		{"execution time", at.ExecShare},
	}
	sort.SliceStable(shares, func(i, j int) bool { return shares[i].v > shares[j].v })
	var parts []string
	for _, s := range shares {
		if s.v <= 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.3f (%.0f%%)", s.name, s.v, 100*s.v/at.Miss))
	}
	msg := fmt.Sprintf("missed %s goal by %.3f", metricLabel(at.Class), at.Miss)
	if at.InfeasibleShare > 0 && at.HasCeiling {
		msg += fmt.Sprintf(" (best plan ceiling %.3f)", at.BestCeiling)
	}
	if len(parts) > 0 {
		msg += ": " + strings.Join(parts, ", ")
	}
	return msg
}

// metricsFamilies are the exposition families qreport echoes in its
// metrics cross-check section.
var metricsFamilies = []string{
	"qs_slo_attainment_ratio",
	"qs_slo_burn_rate",
	"qs_infeasible_ticks_total",
	"qs_infeasible_binding_total",
}

// MetricsCrossCheck streams a Prometheus text exposition and echoes the
// SLO and feasibility families, so an operator can eyeball the decision
// log's accounting against the run's exported metrics.
func MetricsCrossCheck(w io.Writer, r io.Reader) error {
	fmt.Fprintln(w, "Metrics cross-check (qs_slo_* / qs_infeasible_* families):")
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	matched := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, fam := range metricsFamilies {
			if strings.HasPrefix(line, fam) {
				fmt.Fprintf(w, "  %s\n", line)
				matched = true
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("report: metrics: %w", err)
	}
	if !matched {
		fmt.Fprintln(w, "  (none found — was the run in query-scheduler mode?)")
	}
	return nil
}
