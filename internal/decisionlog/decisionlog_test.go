package decisionlog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/simclock"
	"repro/internal/solver"
)

func simTime(t float64) simclock.Time { return simclock.Time(t) }

func testMeta() Meta {
	return Meta{
		Experiment:      "unit",
		Seed:            7,
		ControlInterval: 60,
		SLOWindow:       10,
		SLOBudget:       0.1,
		Classes: []ClassMeta{
			{ID: 1, Name: "Class1", Kind: "OLAP", Metric: "velocity", Target: 0.4, Importance: 1},
			{ID: 3, Name: "Class3", Kind: "OLTP", Metric: "avg-response-time", Target: 0.25, Importance: 3},
		},
	}
}

// testRec builds a plausible non-held PlanRecord for tick at time t.
func testRec(t float64, vel, rt float64) core.PlanRecord {
	return core.PlanRecord{
		Time: simTime(t),
		Measurement: core.Measurement{
			Velocity:        map[engine.ClassID]float64{1: vel},
			VelocitySamples: map[engine.ClassID]int{1: 12},
			Idle:            map[engine.ClassID]bool{},
			OLTPRespTime:    rt,
			OLTPSamples:     40,
		},
		Limits:    solver.Plan{1: 20000, 3: 10000},
		Utility:   3.5,
		OLTPSlope: -5e-6,
		Predicted: map[engine.ClassID]float64{1: vel * 1.1, 3: rt * 0.9},
		Search: solver.Search{
			Iterations: 4, Candidates: 9, BestUtility: 3.5,
			RunnerUp: 3.2, HasRunnerUp: true,
			Classes: []solver.ClassSearch{
				{ID: 1, Alloc: 20000, Predicted: vel * 1.1, Ceiling: 0.8, GoalMet: true, Reachable: true},
				{ID: 3, Alloc: 10000, Predicted: rt * 0.9, Ceiling: 0.1, GoalMet: true, Reachable: true},
			},
		},
		Provenance: map[engine.ClassID]core.Provenance{
			1: {Model: "olap-velocity", Anchor: vel, AnchorLimit: 20000},
			3: {Model: "oltp-linear", Anchor: rt},
		},
		Attainment: map[engine.ClassID]float64{1: 1, 3: 0.5},
		BurnRate:   map[engine.ClassID]float64{1: 0, 3: 2},
	}
}

func mustLines(t *testing.T, buf *bytes.Buffer, want int) []string {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != want {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), want, buf.String())
	}
	return lines
}

func TestWriterBackfillsActual(t *testing.T) {
	var buf bytes.Buffer
	dw, err := NewWriter(&buf, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	dw.Note(testRec(60, 0.45, 0.2))
	dw.Note(testRec(120, 0.35, 0.3))
	dw.Flush()
	if dw.Err() != nil {
		t.Fatal(dw.Err())
	}
	mustLines(t, &buf, 3)

	var meta Meta
	var recs []Record
	err = ScanJSONL(bytes.NewReader(buf.Bytes()),
		func(m Meta) error { meta = m; return nil },
		func(r Record) error { recs = append(recs, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != Version || meta.Experiment != "unit" || len(meta.Classes) != 2 {
		t.Fatalf("meta round trip: %+v", meta)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	// Tick 1 closed by tick 2's harvest: velocity 0.35 misses the 0.4
	// goal, RT 0.3 misses the 0.25 goal.
	r1 := recs[0]
	if r1.Tick != 1 || r1.T != 60 || len(r1.Actual) != 2 {
		t.Fatalf("record 1: %+v", r1)
	}
	if r1.Actual[0].Class != 1 || r1.Actual[0].Value != 0.35 || r1.Actual[0].GoalMet {
		t.Fatalf("record 1 OLAP outcome: %+v", r1.Actual[0])
	}
	if r1.Actual[1].Class != 3 || r1.Actual[1].Value != 0.3 || r1.Actual[1].GoalMet {
		t.Fatalf("record 1 OLTP outcome: %+v", r1.Actual[1])
	}
	wantErr := 0.45*1.1 - 0.35
	if d := r1.Actual[0].AbsError - wantErr; d > 1e-12 || d < -1e-12 {
		t.Fatalf("abs error %v, want %v", r1.Actual[0].AbsError, wantErr)
	}
	// Tick 2 flushed at end of run: window never closed.
	if recs[1].Tick != 2 || recs[1].Actual != nil {
		t.Fatalf("record 2: %+v", recs[1])
	}
	// PrevLimit chains from the prior tick's row.
	if recs[1].Classes[0].PrevLimit != 20000 || recs[0].Classes[0].PrevLimit != 0 {
		t.Fatalf("prev limits: %v then %v",
			recs[0].Classes[0].PrevLimit, recs[1].Classes[0].PrevLimit)
	}
}

func TestWriterHeldAndDroppedTicks(t *testing.T) {
	var buf bytes.Buffer
	dw, err := NewWriter(&buf, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	dw.Note(testRec(60, 0.45, 0.2))
	held := core.PlanRecord{
		Time:        simTime(120),
		Measurement: core.Measurement{Dropped: true},
		Limits:      solver.Plan{1: 20000, 3: 10000},
		Held:        true,
	}
	dw.Note(held)
	dw.Note(testRec(180, 0.5, 0.21))
	dw.Flush()

	var recs []Record
	if err := ScanJSONL(bytes.NewReader(buf.Bytes()), nil,
		func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	// The dropped harvest observes nothing: tick 1's window never closes.
	if recs[0].Actual != nil {
		t.Fatalf("tick 1 gained outcomes from a dropped harvest: %+v", recs[0].Actual)
	}
	if !recs[1].Held || !recs[1].Dropped {
		t.Fatalf("tick 2 flags: %+v", recs[1])
	}
	// A held tick's rows carry no prediction but keep the limits.
	if recs[1].Classes[0].Predicted != 0 || recs[1].Classes[0].Limit != 20000 {
		t.Fatalf("tick 2 row: %+v", recs[1].Classes[0])
	}
	// Tick 2's window is closed by tick 3's good harvest, with zero
	// AbsError (no prediction existed).
	if len(recs[1].Actual) != 2 || recs[1].Actual[0].AbsError != 0 || !recs[1].Actual[0].GoalMet {
		t.Fatalf("tick 2 outcomes: %+v", recs[1].Actual)
	}
}

func TestWriterIdleClassYieldsNoOutcome(t *testing.T) {
	var buf bytes.Buffer
	dw, err := NewWriter(&buf, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	dw.Note(testRec(60, 0.45, 0.2))
	next := testRec(120, 0, 0.2)
	next.Measurement.Idle[1] = true
	next.Measurement.OLTPSamples = 0
	dw.Note(next)
	dw.Flush()

	var recs []Record
	if err := ScanJSONL(bytes.NewReader(buf.Bytes()), nil,
		func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if recs[0].Actual != nil {
		t.Fatalf("idle/unsampled harvest produced outcomes: %+v", recs[0].Actual)
	}
}

// TestCheckpointResumeByteIdentical pins the resume contract: truncate
// to SinkBytes, restore the pending record, continue — the bytes must
// match an uninterrupted run exactly.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	recs := []core.PlanRecord{
		testRec(60, 0.45, 0.2),
		testRec(120, 0.35, 0.3),
		testRec(180, 0.5, 0.21),
		testRec(240, 0.42, 0.24),
	}

	var full bytes.Buffer
	fw, err := NewWriter(&full, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		fw.Note(r)
	}
	fw.Flush()

	var crash bytes.Buffer
	cw, err := NewWriter(&crash, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	cw.Note(recs[0])
	cw.Note(recs[1])
	st := cw.CheckpointState()
	if !st.HasPending || st.Tick != 2 {
		t.Fatalf("checkpoint state: %+v", st)
	}
	// Simulate the crash: garbage written after the checkpoint, then the
	// recovery truncation back to the checkpointed offset.
	cw.Note(recs[2])
	crash.Truncate(int(st.SinkBytes))

	rw, err := ResumeWriter(&crash, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	rw.RestoreCheckpoint(st)
	rw.Note(recs[2])
	rw.Note(recs[3])
	rw.Flush()

	if !bytes.Equal(full.Bytes(), crash.Bytes()) {
		t.Fatalf("resumed log differs from uninterrupted run:\nfull:\n%s\nresumed:\n%s",
			full.String(), crash.String())
	}
	if rw.SinkBytes() != fw.SinkBytes() {
		t.Fatalf("sink bytes %d vs %d", rw.SinkBytes(), fw.SinkBytes())
	}
}

func TestScanJSONLErrors(t *testing.T) {
	if err := ScanJSONL(strings.NewReader(""), nil, nil); err == nil {
		t.Fatal("empty log accepted")
	}
	if err := ScanJSONL(strings.NewReader(`{"type":"decision"}`+"\n"), nil, nil); err == nil {
		t.Fatal("record-first log accepted")
	}
	bad := `{"type":"meta","version":99,"classes":[{"id":1}]}` + "\n"
	if err := ScanJSONL(strings.NewReader(bad), nil, nil); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestNewWriterValidates(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Meta{}); err == nil {
		t.Fatal("empty roster accepted")
	}
	m := testMeta()
	m.Classes = append(m.Classes, m.Classes[0])
	if _, err := NewWriter(&buf, m); err == nil {
		t.Fatal("duplicate class accepted")
	}
}
