// Package perfmodel implements the paper's two performance models — the
// functions the Scheduling Planner uses to predict how a class's metric
// responds to a change in its cost limit.
//
// OLAP classes (Section 2 of the paper, from ref [4]):
//
//	V_i^k = min(1, V_i^{k-1} · C_i^k / C_i^{k-1})
//
// i.e. velocity scales proportionally with the class cost limit, capped at
// the ideal 1.
//
// The OLTP class (Section 3.2):
//
//	t^k = t^{k-1} + s · (C^k − C^{k-1})
//
// where C is the OLTP class's (virtual) cost limit and s is a constant
// "obtained using linear regression". Because the OLTP class is controlled
// only indirectly — growing its limit shrinks the OLAP classes' share —
// s is negative: more resources, lower response time. The slope is fit
// online over a sliding window of (limit, response-time) observations from
// past control intervals.
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// OLAPVelocity is the stateless velocity scaling model.
//
// Floor regularizes the multiplicative update: a class squeezed to the
// point where nothing completes measures velocity 0, and 0 · C/C' is 0 at
// every candidate limit — the planner would never see a reason to give the
// class resources again. Flooring the anchor velocity keeps the predicted
// gradient alive so a starved class can recover.
type OLAPVelocity struct {
	Floor float64
}

// DefaultVelocityFloor is the anchor floor used by the Query Scheduler.
const DefaultVelocityFloor = 0.05

// Name identifies the model in prediction-provenance records (the
// decision audit log's "which model produced this forecast" field).
func (OLAPVelocity) Name() string { return "olap-velocity" }

// Predict returns the predicted velocity at limit cNew given the measured
// velocity vPrev at limit cPrev.
func (m OLAPVelocity) Predict(vPrev, cPrev, cNew float64) float64 {
	if vPrev < m.Floor {
		vPrev = m.Floor
	}
	if cPrev <= 0 {
		// No history at a meaningful limit: be optimistic in proportion
		// to the new limit being non-zero at all.
		if cNew > 0 {
			return clamp01(vPrev)
		}
		return 0
	}
	if cNew <= 0 {
		return 0
	}
	return clamp01(vPrev * cNew / cPrev)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// OLTPConfig tunes the OLTP response-time model.
type OLTPConfig struct {
	// Window is how many past control intervals the regression sees.
	Window int
	// PriorSlope is the seconds-per-timeron slope assumed before enough
	// observations accumulate (negative: more limit, faster responses).
	PriorSlope float64
	// MinPoints is how many observations are required before the fitted
	// slope replaces the prior.
	MinPoints int
	// MaxAbsSlope bounds the fitted slope; wilder fits (from measurement
	// noise over a near-constant limit) fall back to the prior.
	MaxAbsSlope float64
	// FallbackToLastFit changes what an ill-conditioned window falls back
	// to: the last usable fitted slope instead of PriorSlope. With fault
	// injection a window can degenerate mid-run (dropped harvests leave
	// <2 distinct limits, or a storm yields an absurd slope); the most
	// recent trusted fit is a better guess than the cold-start prior.
	// Off by default to keep the paper-faithful behaviour.
	FallbackToLastFit bool
}

// DefaultOLTPConfig returns the configuration used in the experiments.
func DefaultOLTPConfig() OLTPConfig {
	return OLTPConfig{
		Window:      16,
		PriorSlope:  -5e-6,
		MinPoints:   4,
		MaxAbsSlope: 1e-3,
	}
}

// OLTPResponse is the online-fitted linear response-time model.
type OLTPResponse struct {
	cfg OLTPConfig
	reg *stats.SlidingRegression

	lastFit float64 // most recent usable fitted slope
	hasFit  bool
}

// NewOLTPResponse builds the model with the given configuration.
func NewOLTPResponse(cfg OLTPConfig) *OLTPResponse {
	if cfg.Window < 2 {
		panic(fmt.Sprintf("perfmodel: window %d too small", cfg.Window))
	}
	if cfg.MinPoints < 2 {
		panic("perfmodel: MinPoints must be at least 2")
	}
	return &OLTPResponse{cfg: cfg, reg: stats.NewSlidingRegression(cfg.Window)}
}

// Name identifies the model in prediction-provenance records.
func (m *OLTPResponse) Name() string { return "oltp-linear" }

// Observe records the measured average response time t under cost limit c
// for one control interval.
func (m *OLTPResponse) Observe(c, t float64) {
	if math.IsNaN(c) || math.IsNaN(t) || t < 0 {
		return
	}
	m.reg.Add(c, t)
}

// Slope returns the model's current s: the fitted regression slope when
// enough well-conditioned data exists, otherwise the fallback — the last
// usable fit when FallbackToLastFit is set and one exists, the prior
// slope otherwise.
func (m *OLTPResponse) Slope() float64 {
	if m.reg.Len() < m.cfg.MinPoints {
		return m.fallbackSlope()
	}
	fit, ok := m.reg.Fit()
	if !ok {
		// Fewer than two distinct limits in the window: the slope is
		// unidentifiable.
		return m.fallbackSlope()
	}
	s := fit.Slope
	// A positive slope would claim that giving the OLTP class more
	// resources slows it down — an artifact of noise; so would an
	// implausibly steep one. Fall back rather than trust it.
	if s >= 0 || math.Abs(s) > m.cfg.MaxAbsSlope {
		return m.fallbackSlope()
	}
	m.lastFit, m.hasFit = s, true
	return s
}

func (m *OLTPResponse) fallbackSlope() float64 {
	if m.cfg.FallbackToLastFit && m.hasFit {
		return m.lastFit
	}
	return m.cfg.PriorSlope
}

// FitQuality returns the R² of the current window fit (0 when unfittable).
func (m *OLTPResponse) FitQuality() float64 {
	fit, ok := m.reg.Fit()
	if !ok {
		return 0
	}
	return fit.R2
}

// Points returns how many observations the window currently holds.
func (m *OLTPResponse) Points() int { return m.reg.Len() }

// Predict returns the predicted average response time at limit cNew given
// the measured time tPrev at limit cPrev. Predictions never go negative.
func (m *OLTPResponse) Predict(tPrev, cPrev, cNew float64) float64 {
	t := tPrev + m.Slope()*(cNew-cPrev)
	if t < 0 {
		return 0
	}
	return t
}
