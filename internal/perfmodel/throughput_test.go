package perfmodel

import (
	"math"
	"testing"
)

func TestThroughputModelUnusableWithoutData(t *testing.T) {
	m := NewOLTPThroughput(DefaultThroughputConfig())
	if m.Usable() {
		t.Fatal("empty model claims usable")
	}
	// Prediction falls back to "no change".
	if got := m.Predict(0.3, 5000, 10000); got != 0.3 {
		t.Fatalf("fallback prediction = %v, want tPrev", got)
	}
}

func TestThroughputModelLearnsAffineCurve(t *testing.T) {
	m := NewOLTPThroughput(DefaultThroughputConfig())
	// Ground truth: X(C) = 40 + 0.004·C, N = 20 clients.
	n := 20.0
	x := func(c float64) float64 { return 40 + 0.004*c }
	for _, c := range []float64{0, 2000, 5000, 8000, 12000} {
		m.ObserveLoad(c, n/x(c), n)
	}
	if !m.Usable() {
		t.Fatal("model not usable after five clean points")
	}
	// Predict at a new limit, anchored at the last observation.
	cPrev, cNew := 12000.0, 2000.0
	got := m.Predict(n/x(cPrev), cPrev, cNew)
	want := n / x(cNew)
	if math.Abs(got-want) > 0.01*want {
		t.Fatalf("Predict = %v, want %v", got, want)
	}
}

func TestThroughputModelCapturesHyperbola(t *testing.T) {
	// The point of the model: halving available throughput doubles
	// response time — a shape the linear model cannot express.
	m := NewOLTPThroughput(DefaultThroughputConfig())
	n := 25.0
	x := func(c float64) float64 { return 10 + 0.002*c }
	for _, c := range []float64{2000, 6000, 10000, 14000} {
		m.ObserveLoad(c, n/x(c), n)
	}
	tPrev := n / x(14000) // 0.658 at X=38
	squeeze := m.Predict(tPrev, 14000, 2000)
	expand := m.Predict(tPrev, 14000, 26000)
	if squeeze/tPrev < 2 {
		t.Fatalf("squeeze should blow up hyperbolically: %v -> %v", tPrev, squeeze)
	}
	if expand >= tPrev {
		t.Fatalf("expanding the limit must help: %v -> %v", tPrev, expand)
	}
}

func TestThroughputModelRejectsNegativeSlope(t *testing.T) {
	m := NewOLTPThroughput(DefaultThroughputConfig())
	for _, c := range []float64{1000, 4000, 8000, 12000} {
		m.ObserveLoad(c, 0.1+c*1e-5, 20) // X falls with C: wrong sign
	}
	if m.Usable() {
		t.Fatal("negative-slope fit accepted")
	}
}

func TestThroughputModelFloorsPrediction(t *testing.T) {
	cfg := DefaultThroughputConfig()
	m := NewOLTPThroughput(cfg)
	n := 20.0
	for _, c := range []float64{4000, 8000, 12000, 16000} {
		m.ObserveLoad(c, n/(1+0.01*c), n)
	}
	// Extrapolating to C=0 would give X near 1; far below, the floor
	// must cap the predicted response time at N/MinThroughput.
	got := m.Predict(n/(1+0.01*16000), 16000, -1e9)
	if got > n/cfg.MinThroughput+1e-9 {
		t.Fatalf("prediction %v above the floor bound", got)
	}
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatal("unbounded prediction")
	}
}

func TestThroughputModelIgnoresGarbage(t *testing.T) {
	m := NewOLTPThroughput(DefaultThroughputConfig())
	m.ObserveLoad(math.NaN(), 0.3, 10)
	m.ObserveLoad(1000, 0, 10)
	m.ObserveLoad(1000, 0.3, 0)
	if m.Points() != 0 {
		t.Fatalf("garbage observations stored: %d", m.Points())
	}
}

func TestThroughputConfigValidation(t *testing.T) {
	bad := []ThroughputConfig{
		{Window: 1, MinPoints: 2, MinThroughput: 1},
		{Window: 4, MinPoints: 1, MinThroughput: 1},
		{Window: 4, MinPoints: 2, MinThroughput: 0},
	}
	for i, cfg := range bad {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad config %d did not panic", i)
				}
			}()
			NewOLTPThroughput(cfg)
		}()
	}
}
