package perfmodel

import (
	"math"
	"testing"
)

func TestOLAPVelocityScalesProportionally(t *testing.T) {
	m := OLAPVelocity{}
	if got := m.Predict(0.4, 1000, 2000); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("Predict = %v, want 0.8", got)
	}
	if got := m.Predict(0.4, 1000, 500); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Predict = %v, want 0.2", got)
	}
}

func TestOLAPVelocityCapsAtOne(t *testing.T) {
	m := OLAPVelocity{}
	if got := m.Predict(0.8, 1000, 5000); got != 1 {
		t.Fatalf("Predict = %v, want cap at 1", got)
	}
}

func TestOLAPVelocityZeroLimits(t *testing.T) {
	m := OLAPVelocity{}
	if got := m.Predict(0.5, 0, 1000); got != 0.5 {
		t.Fatalf("no-history prediction = %v, want measured value", got)
	}
	if got := m.Predict(0.5, 0, 0); got != 0 {
		t.Fatalf("zero-limit prediction = %v, want 0", got)
	}
	if got := m.Predict(0.5, 1000, 0); got != 0 {
		t.Fatalf("zero new limit = %v, want 0", got)
	}
}

func TestOLAPVelocityFloorEnablesRecovery(t *testing.T) {
	m := OLAPVelocity{Floor: 0.05}
	// A starved class measured at velocity 0 must still predict gains
	// from a larger limit.
	if got := m.Predict(0, 500, 5000); got <= 0 {
		t.Fatalf("floored prediction = %v, want positive", got)
	}
	bare := OLAPVelocity{}
	if got := bare.Predict(0, 500, 5000); got != 0 {
		t.Fatalf("unfloored model should stay at 0, got %v", got)
	}
}

func TestOLTPModelUsesPriorUntilEnoughData(t *testing.T) {
	cfg := DefaultOLTPConfig()
	m := NewOLTPResponse(cfg)
	if m.Slope() != cfg.PriorSlope {
		t.Fatal("empty model must use prior slope")
	}
	m.Observe(1000, 0.3)
	m.Observe(2000, 0.28)
	if m.Slope() != cfg.PriorSlope {
		t.Fatal("below MinPoints must still use prior")
	}
}

func TestOLTPModelLearnsSlope(t *testing.T) {
	cfg := DefaultOLTPConfig()
	m := NewOLTPResponse(cfg)
	// t = 0.4 - 1e-5 * C : raising the OLTP limit lowers response time.
	for _, c := range []float64{1000, 3000, 5000, 8000, 12000, 15000} {
		m.Observe(c, 0.4-1e-5*c)
	}
	if got := m.Slope(); math.Abs(got+1e-5) > 1e-9 {
		t.Fatalf("learned slope = %v, want -1e-5", got)
	}
	if m.FitQuality() < 0.999 {
		t.Fatalf("R2 = %v on noiseless data", m.FitQuality())
	}
	// Prediction anchored at the last measurement.
	got := m.Predict(0.3, 10000, 15000)
	want := 0.3 + (-1e-5)*5000
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Predict = %v, want %v", got, want)
	}
}

func TestOLTPModelRejectsPositiveSlope(t *testing.T) {
	cfg := DefaultOLTPConfig()
	m := NewOLTPResponse(cfg)
	for _, c := range []float64{1000, 3000, 5000, 8000} {
		m.Observe(c, 0.1+1e-5*c) // noise artifact: wrong sign
	}
	if m.Slope() != cfg.PriorSlope {
		t.Fatalf("positive fitted slope must fall back to prior, got %v", m.Slope())
	}
}

func TestOLTPModelRejectsWildSlope(t *testing.T) {
	cfg := DefaultOLTPConfig()
	cfg.MaxAbsSlope = 1e-4
	m := NewOLTPResponse(cfg)
	for i, c := range []float64{1000, 1001, 1002, 1003} {
		m.Observe(c, 10-float64(i)*3) // absurdly steep
	}
	if m.Slope() != cfg.PriorSlope {
		t.Fatalf("wild slope must fall back to prior, got %v", m.Slope())
	}
}

func TestOLTPModelWindowEviction(t *testing.T) {
	cfg := DefaultOLTPConfig()
	cfg.Window = 4
	cfg.MinPoints = 2
	m := NewOLTPResponse(cfg)
	// Old regime with slope -2e-5, then a new regime with slope -5e-6;
	// after eviction only the new regime should matter.
	for _, c := range []float64{1000, 2000, 3000, 4000} {
		m.Observe(c, 0.5-2e-5*c)
	}
	for _, c := range []float64{5000, 6000, 7000, 8000} {
		m.Observe(c, 0.3-5e-6*c)
	}
	if got := m.Slope(); math.Abs(got+5e-6) > 1e-9 {
		t.Fatalf("slope after regime change = %v, want -5e-6", got)
	}
	if m.Points() != 4 {
		t.Fatalf("window holds %d points, want 4", m.Points())
	}
}

func TestOLTPModelIgnoresBadObservations(t *testing.T) {
	m := NewOLTPResponse(DefaultOLTPConfig())
	m.Observe(math.NaN(), 0.3)
	m.Observe(1000, math.NaN())
	m.Observe(1000, -1)
	if m.Points() != 0 {
		t.Fatalf("bad observations stored: %d", m.Points())
	}
}

func TestOLTPPredictNeverNegative(t *testing.T) {
	m := NewOLTPResponse(DefaultOLTPConfig())
	if got := m.Predict(0.01, 0, 1e9); got < 0 {
		t.Fatalf("Predict = %v, must clamp at 0", got)
	}
}

func TestOLTPConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny window did not panic")
		}
	}()
	NewOLTPResponse(OLTPConfig{Window: 1, MinPoints: 2})
}

func TestOLTPModelFallsBackToLastFit(t *testing.T) {
	cfg := DefaultOLTPConfig()
	cfg.Window = 6
	cfg.FallbackToLastFit = true
	m := NewOLTPResponse(cfg)
	// A clean window establishes a usable fit.
	for _, c := range []float64{1000, 3000, 5000, 8000, 12000, 15000} {
		m.Observe(c, 0.4-1e-5*c)
	}
	if got := m.Slope(); math.Abs(got+1e-5) > 1e-9 {
		t.Fatalf("learned slope = %v, want -1e-5", got)
	}
	// A fault window then degenerates the regression: six observations
	// all at the same limit leave the slope unidentifiable.
	for i := 0; i < 6; i++ {
		m.Observe(9000, 0.31+0.001*float64(i))
	}
	if got := m.Slope(); math.Abs(got+1e-5) > 1e-9 {
		t.Fatalf("ill-conditioned window returned %v, want last fit -1e-5", got)
	}
}

func TestOLTPModelFallbackDefaultsToPrior(t *testing.T) {
	cfg := DefaultOLTPConfig()
	cfg.Window = 6
	m := NewOLTPResponse(cfg)
	for _, c := range []float64{1000, 3000, 5000, 8000, 12000, 15000} {
		m.Observe(c, 0.4-1e-5*c)
	}
	for i := 0; i < 6; i++ {
		m.Observe(9000, 0.31+0.001*float64(i))
	}
	// Paper-faithful default: the cold-start prior, not the stale fit.
	if got := m.Slope(); got != cfg.PriorSlope {
		t.Fatalf("default fallback = %v, want prior %v", got, cfg.PriorSlope)
	}
}
