package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// OLTPThroughput is the alternative OLTP performance model the paper's
// future-work section asks for ("Performance modeling for OLTP workload
// is another issue that needs to be addressed").
//
// The paper's linear model t^k = t^{k-1} + s·ΔC is a local tangent: it
// cannot represent the hyperbolic response-time blow-up as the OLAP
// classes crowd the CPUs. This model works in throughput space instead.
// With zero-think-time closed-loop clients, operational analysis gives
//
//	R = N / X
//
// where N is the OLTP in-system population and X its throughput. Every
// admitted OLAP timeron consumes a roughly fixed slice of the CPUs, so X
// is approximately *affine in the OLTP class's virtual cost limit*:
//
//	X(C) = α + β·C        (β > 0: a bigger virtual limit means less
//	                       OLAP admission and more CPU for OLTP)
//
// α and β are fit online by least squares over recent intervals, and the
// prediction R(C) = N / X(C) recovers the hyperbola the linear model
// misses: shrinking C toward saturation divides, not subtracts.
type OLTPThroughput struct {
	cfg ThroughputConfig
	reg *stats.SlidingRegression

	lastN float64 // most recent population
}

// ThroughputConfig tunes the throughput model.
type ThroughputConfig struct {
	// Window is how many past intervals the regression sees.
	Window int
	// MinPoints gates the fit, like the linear model's.
	MinPoints int
	// MinThroughput floors X(C) so predictions never divide by ~0.
	MinThroughput float64
}

// DefaultThroughputConfig returns the configuration used in experiments.
func DefaultThroughputConfig() ThroughputConfig {
	return ThroughputConfig{Window: 16, MinPoints: 4, MinThroughput: 0.5}
}

// NewOLTPThroughput builds the model.
func NewOLTPThroughput(cfg ThroughputConfig) *OLTPThroughput {
	if cfg.Window < 2 || cfg.MinPoints < 2 {
		panic(fmt.Sprintf("perfmodel: invalid throughput config %+v", cfg))
	}
	if cfg.MinThroughput <= 0 {
		panic("perfmodel: MinThroughput must be positive")
	}
	return &OLTPThroughput{cfg: cfg, reg: stats.NewSlidingRegression(cfg.Window)}
}

// Name identifies the model in prediction-provenance records.
func (m *OLTPThroughput) Name() string { return "oltp-throughput" }

// ObserveLoad records one interval: virtual limit c, measured mean
// response time t, and in-system population n. Intervals without
// meaningful measurements are skipped.
func (m *OLTPThroughput) ObserveLoad(c, t, n float64) {
	if math.IsNaN(c) || t <= 0 || n <= 0 {
		return
	}
	m.lastN = n
	m.reg.Add(c, n/t) // X = N/R by Little's law on the closed loop
}

// fit returns the affine throughput curve, ok=false before enough data.
func (m *OLTPThroughput) fit() (alpha, beta float64, ok bool) {
	if m.reg.Len() < m.cfg.MinPoints {
		return 0, 0, false
	}
	f, fitted := m.reg.Fit()
	if !fitted {
		return 0, 0, false
	}
	// A negative slope claims more OLTP budget hurts OLTP — noise.
	if f.Slope < 0 {
		return 0, 0, false
	}
	return f.Intercept, f.Slope, true
}

// Predict returns the expected mean response time at limit cNew, given
// the latest measurement tPrev at limit cPrev. Without a usable fit it
// falls back to "no change" (the caller may prefer the linear model's
// prior in that regime).
func (m *OLTPThroughput) Predict(tPrev, cPrev, cNew float64) float64 {
	alpha, beta, ok := m.fit()
	if !ok || m.lastN <= 0 {
		return tPrev
	}
	// Re-anchor the curve so it passes through the current observation:
	// keep the fitted slope, shift the intercept to match X(cPrev).
	xNow := m.lastN / math.Max(tPrev, 1e-9)
	xNew := xNow + beta*(cNew-cPrev)
	_ = alpha
	if xNew < m.cfg.MinThroughput {
		xNew = m.cfg.MinThroughput
	}
	return m.lastN / xNew
}

// Usable reports whether the model currently has a trustworthy fit.
func (m *OLTPThroughput) Usable() bool {
	_, _, ok := m.fit()
	return ok && m.lastN > 0
}

// Points returns how many observations the window holds.
func (m *OLTPThroughput) Points() int { return m.reg.Len() }
