// Checkpoint state for the online-fitted OLTP models (the OLAP velocity
// model is stateless).
package perfmodel

import "repro/internal/stats"

// OLTPResponseState is OLTPResponse's serializable state.
type OLTPResponseState struct {
	Reg     stats.RegressionState
	LastFit float64
	HasFit  bool
}

// CheckpointState captures the regression window and fit memory.
func (m *OLTPResponse) CheckpointState() OLTPResponseState {
	return OLTPResponseState{Reg: m.reg.State(), LastFit: m.lastFit, HasFit: m.hasFit}
}

// RestoreCheckpoint restores the window and fit memory.
func (m *OLTPResponse) RestoreCheckpoint(st OLTPResponseState) {
	m.reg.SetState(st.Reg)
	m.lastFit, m.hasFit = st.LastFit, st.HasFit
}

// OLTPThroughputState is OLTPThroughput's serializable state.
type OLTPThroughputState struct {
	Reg   stats.RegressionState
	LastN float64
}

// CheckpointState captures the regression window and last population.
func (m *OLTPThroughput) CheckpointState() OLTPThroughputState {
	return OLTPThroughputState{Reg: m.reg.State(), LastN: m.lastN}
}

// RestoreCheckpoint restores the window and last population.
func (m *OLTPThroughput) RestoreCheckpoint(st OLTPThroughputState) {
	m.reg.SetState(st.Reg)
	m.lastN = st.LastN
}
