// Package obs is the simulation's metrics registry: counters, gauges,
// and fixed-bucket histograms with labels, rendered as Prometheus-style
// text exposition. It is the numeric half of the observability layer
// (internal/trace is the event half): controllers and the experiment
// harness register instruments once and bump them on the hot path, and
// a run's final exposition is a machine-readable summary of controller
// behaviour — releases, holds, admission waits, prediction error.
//
// Determinism rules (enforced tree-wide by cmd/qlint):
//
//   - No wall clock. The registry's only notion of time is the virtual
//     sim-time source handed to New; exposition stamps sim_time_seconds,
//     never the host clock.
//   - No global state. Every run owns its registry, exactly as it owns
//     its simclock.Clock — the parallel experiment runner's isolation
//     invariant (internal/experiment/parallel.go) extends to metrics.
//     A Registry is not safe for concurrent use.
//   - Sorted exposition. Families render in name order and children in
//     label order, so two runs of the same seed produce byte-identical
//     text whatever order instruments were registered or touched in.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label is one name="value" pair qualifying an instrument.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates instrument families.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// child is one labelled instrument inside a family.
type child struct {
	labels string // rendered {k="v",...} suffix, "" when unlabelled
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups all children sharing one metric name.
type family struct {
	name     string
	help     string
	kind     kind
	bounds   []float64 // histogram families only
	children map[string]*child
}

// Registry holds a run's instruments. The zero value is not usable;
// construct with New.
type Registry struct {
	now      func() float64 // sim-time source; may be nil
	families map[string]*family
}

// New returns an empty registry. now, when non-nil, supplies the virtual
// time stamped into the exposition as sim_time_seconds; pass the owning
// run's clock.Now. Wall-clock sources are forbidden (and would not get
// past qlint).
func New(now func() float64) *Registry {
	return &Registry{now: now, families: make(map[string]*family)}
}

// family returns the named family, creating it on first use and
// verifying help/kind consistency on re-registration.
func (r *Registry) familyFor(name, help string, k kind) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, children: make(map[string]*child)}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, k, f.kind))
	}
	if f.help != help {
		panic(fmt.Sprintf("obs: metric %q re-registered with different help", name))
	}
	return f
}

// childFor returns the labelled child of f, creating it on first use.
func (f *family) childFor(labels []Label) *child {
	key := renderLabels(labels)
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: key}
		f.children[key] = c
	}
	return c
}

// renderLabels serializes labels sorted by key into the exposition
// suffix — the child's identity within its family.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		if l.Key == "" {
			panic("obs: empty label key")
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// Counter is a monotonically increasing value.
type Counter struct {
	v float64
}

// Inc adds 1.
//
//qlint:hotpath
func (c *Counter) Inc() { c.v++ }

// Add increases the counter; negative deltas are a bug.
//
//qlint:hotpath
func (c *Counter) Add(d float64) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("obs: counter add %v", d))
	}
	c.v += d
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// Counter returns the counter with the given name and labels, creating
// it on first use.
//
//qlint:coldpath metric registration is construction; steady-state code caches the returned handle
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	ch := r.familyFor(name, help, counterKind).childFor(labels)
	if ch.ctr == nil {
		ch.ctr = &Counter{}
	}
	return ch.ctr
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v float64
}

// Set assigns the gauge.
//
//qlint:hotpath
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the gauge by d (negative allowed).
//
//qlint:hotpath
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	ch := r.familyFor(name, help, gaugeKind).childFor(labels)
	if ch.gauge == nil {
		ch.gauge = &Gauge{}
	}
	return ch.gauge
}

// Histogram counts observations into fixed buckets. Buckets are
// cumulative in the exposition (le="x" counts observations <= x), with
// an implicit +Inf bucket equal to the total count.
type Histogram struct {
	bounds []float64 // strictly increasing, finite
	counts []uint64  // len(bounds)+1; last is the +Inf overflow
	sum    float64
	n      uint64
}

// Observe records one value.
//
//qlint:hotpath
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		panic("obs: histogram observe NaN")
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Histogram returns the histogram with the given name, bucket upper
// bounds, and labels, creating it on first use. Bounds must be finite
// and strictly increasing; re-registration must carry identical bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q has no buckets", name))
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram %q bound %v is not finite", name, b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing at %v", name, b))
		}
	}
	f := r.familyFor(name, help, histogramKind)
	if f.bounds == nil {
		f.bounds = append([]float64(nil), bounds...)
	} else if !boundsEqual(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	ch := f.childFor(labels)
	if ch.hist == nil {
		ch.hist = &Histogram{bounds: f.bounds, counts: make([]uint64, len(f.bounds)+1)}
	}
	return ch.hist
}

// boundsEqual reports whether two bucket-boundary slices are identical.
// Exact float comparison is correct here: bounds are configuration
// literals checked for identity, not computed quantities compared for
// closeness. The function is allowlisted for qlint's floateq check
// (lint.DefaultConfig), so bucket plumbing needs no per-site
// //lint:ignore directives.
func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DefaultDurationBuckets spans sub-second OLTP latencies through
// multi-hour OLAP admission waits (seconds).
func DefaultDurationBuckets() []float64 {
	return []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600, 1800, 3600}
}

// DefaultErrorBuckets covers relative and small absolute model errors.
func DefaultErrorBuckets() []float64 {
	return []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5}
}

// formatValue renders a sample value exactly (shortest round-trip form),
// so the exposition is byte-deterministic for identical runs.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in Prometheus text exposition format.
// Output is byte-deterministic: families sort by name, children by label
// string. When the registry has a time source, a sim_time_seconds gauge
// stamped from it leads the exposition.
func (r *Registry) WriteText(w io.Writer) error {
	var names []string
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	if r.now != nil {
		b.WriteString("# HELP sim_time_seconds Virtual time at exposition, in seconds since simulation start.\n")
		b.WriteString("# TYPE sim_time_seconds gauge\n")
		fmt.Fprintf(&b, "sim_time_seconds %s\n", formatValue(r.now()))
	}
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		var keys []string
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ch := f.children[k]
			switch f.kind {
			case counterKind:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ch.labels, formatValue(ch.ctr.v))
			case gaugeKind:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ch.labels, formatValue(ch.gauge.v))
			case histogramKind:
				writeHistogram(&b, f, ch)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram child: cumulative buckets, +Inf,
// sum, and count, each carrying the child's labels plus le.
func writeHistogram(b *strings.Builder, f *family, ch *child) {
	h := ch.hist
	withLE := func(le string) string {
		if ch.labels == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return ch.labels[:len(ch.labels)-1] + fmt.Sprintf(",le=%q}", le)
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, withLE(formatValue(bound)), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, withLE("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, ch.labels, formatValue(h.sum))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, ch.labels, h.n)
}
