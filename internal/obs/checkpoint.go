// Checkpoint state for the metrics registry. Restore writes checkpointed
// values INTO the registry's existing (or newly created) instruments via
// the same family/child paths normal registration uses, so instrument
// pointers already cached in controller closures keep observing the same
// counters after a resume.
package obs

import (
	"fmt"
	"sort"
)

// ChildState is one labelled instrument's serialized state.
type ChildState struct {
	Labels string // rendered {k="v",...} identity, "" when unlabelled
	Value  float64
	// Histogram children only:
	HistCounts []uint64
	HistSum    float64
	HistN      uint64
}

// FamilyState is one metric family's serialized state.
type FamilyState struct {
	Name     string
	Help     string
	Kind     int // counterKind/gaugeKind/histogramKind
	Bounds   []float64
	Children []ChildState // sorted by label string
}

// CheckpointState is the registry's serializable state.
type CheckpointState struct {
	Families []FamilyState // sorted by name
}

// CheckpointState captures every instrument's current value.
func (r *Registry) CheckpointState() CheckpointState {
	var st CheckpointState
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		fs := FamilyState{
			Name:   f.name,
			Help:   f.help,
			Kind:   int(f.kind),
			Bounds: append([]float64(nil), f.bounds...),
		}
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ch := f.children[k]
			cs := ChildState{Labels: k}
			switch f.kind {
			case counterKind:
				cs.Value = ch.ctr.v
			case gaugeKind:
				cs.Value = ch.gauge.v
			case histogramKind:
				cs.HistCounts = append([]uint64(nil), ch.hist.counts...)
				cs.HistSum = ch.hist.sum
				cs.HistN = ch.hist.n
			}
			fs.Children = append(fs.Children, cs)
		}
		st.Families = append(st.Families, fs)
	}
	return st
}

// RestoreCheckpoint overwrites the registry with a checkpointed state.
// Families and children already registered (by the rebuilt rig's
// constructors) keep their instrument pointers; the rest are created, so
// later lazy registrations find them populated.
func (r *Registry) RestoreCheckpoint(st CheckpointState) {
	for _, fs := range st.Families {
		f := r.familyFor(fs.Name, fs.Help, kind(fs.Kind))
		if kind(fs.Kind) == histogramKind {
			if f.bounds == nil {
				f.bounds = append([]float64(nil), fs.Bounds...)
			} else if !boundsEqual(f.bounds, fs.Bounds) {
				panic(fmt.Sprintf("obs: restore: histogram %q bucket mismatch", fs.Name))
			}
		}
		for _, cs := range fs.Children {
			ch, ok := f.children[cs.Labels]
			if !ok {
				ch = &child{labels: cs.Labels}
				f.children[cs.Labels] = ch
			}
			switch kind(fs.Kind) {
			case counterKind:
				if ch.ctr == nil {
					ch.ctr = &Counter{}
				}
				ch.ctr.v = cs.Value
			case gaugeKind:
				if ch.gauge == nil {
					ch.gauge = &Gauge{}
				}
				ch.gauge.Set(cs.Value)
			case histogramKind:
				if ch.hist == nil {
					ch.hist = &Histogram{bounds: f.bounds, counts: make([]uint64, len(f.bounds)+1)}
				}
				if len(cs.HistCounts) != len(ch.hist.counts) {
					panic(fmt.Sprintf("obs: restore: histogram %q bucket count mismatch", fs.Name))
				}
				copy(ch.hist.counts, cs.HistCounts)
				ch.hist.sum = cs.HistSum
				ch.hist.n = cs.HistN
			}
		}
	}
}
