// SLO accounting primitive: a fixed-size sliding window of goal
// outcomes. The Query Scheduler feeds it one observation per control
// tick and reads back the window's miss fraction as an error-budget
// burn rate; the decision audit log and the qs_slo_* gauges both render
// from it. Deterministic and allocation-free after construction, like
// every instrument in this package.
package obs

import "fmt"

// SLOWindow tracks the most recent goal-attainment outcomes in a ring
// of fixed capacity. The zero value is not usable; construct with
// NewSLOWindow.
type SLOWindow struct {
	bits   []bool // ring of outcomes, true = goal met
	next   int    // ring write position
	n      int    // observations held, <= len(bits)
	misses int    // failed outcomes currently inside the window
}

// NewSLOWindow returns a window holding the last size outcomes.
func NewSLOWindow(size int) *SLOWindow {
	if size <= 0 {
		panic(fmt.Sprintf("obs: SLO window size %d must be positive", size))
	}
	return &SLOWindow{bits: make([]bool, size)}
}

// Observe records one outcome, evicting the oldest once full.
func (w *SLOWindow) Observe(met bool) {
	if w.n == len(w.bits) {
		if !w.bits[w.next] {
			w.misses--
		}
	} else {
		w.n++
	}
	w.bits[w.next] = met
	if !met {
		w.misses++
	}
	w.next = (w.next + 1) % len(w.bits)
}

// Len returns how many outcomes the window currently holds.
func (w *SLOWindow) Len() int { return w.n }

// MissFraction returns the fraction of held outcomes that missed the
// goal; an empty window reports 0.
func (w *SLOWindow) MissFraction() float64 {
	if w.n == 0 {
		return 0
	}
	return float64(w.misses) / float64(w.n)
}

// BurnRate divides the window's miss fraction by the allowed miss
// budget (a fraction in (0, 1]): 1.0 means the class is missing exactly
// at budget, above 1 it is burning error budget faster than allowed.
func (w *SLOWindow) BurnRate(budget float64) float64 {
	if budget <= 0 {
		panic(fmt.Sprintf("obs: SLO budget %v must be positive", budget))
	}
	return w.MissFraction() / budget
}

// SLOWindowState is the serializable snapshot of an SLOWindow.
type SLOWindowState struct {
	Bits []bool
	Next int
	N    int
}

// State captures the window for a checkpoint.
func (w *SLOWindow) State() SLOWindowState {
	return SLOWindowState{Bits: append([]bool(nil), w.bits...), Next: w.next, N: w.n}
}

// SetState restores a snapshot taken from a window of the same size;
// the miss count is recomputed from the restored outcomes.
func (w *SLOWindow) SetState(st SLOWindowState) {
	if len(st.Bits) != len(w.bits) {
		panic(fmt.Sprintf("obs: SLO window restore size %d != %d", len(st.Bits), len(w.bits)))
	}
	copy(w.bits, st.Bits)
	w.next, w.n = st.Next, st.N
	w.misses = 0
	for i := 0; i < w.n; i++ {
		// The n live outcomes end just before the write position.
		idx := (w.next - 1 - i + len(w.bits)) % len(w.bits)
		if !w.bits[idx] {
			w.misses++
		}
	}
}
