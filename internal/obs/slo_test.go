package obs

import (
	"math"
	"testing"
)

func TestSLOWindowRolls(t *testing.T) {
	w := NewSLOWindow(4)
	if w.Len() != 0 || w.MissFraction() != 0 {
		t.Fatalf("empty window: len %d miss %v", w.Len(), w.MissFraction())
	}
	w.Observe(true)
	w.Observe(false)
	w.Observe(false)
	if w.Len() != 3 || math.Abs(w.MissFraction()-2.0/3) > 1e-12 {
		t.Fatalf("len %d miss %v", w.Len(), w.MissFraction())
	}
	w.Observe(true)
	w.Observe(true) // evicts the initial true: window = F F T T
	if w.Len() != 4 || math.Abs(w.MissFraction()-0.5) > 1e-12 {
		t.Fatalf("after roll: len %d miss %v", w.Len(), w.MissFraction())
	}
	w.Observe(true)
	w.Observe(true) // evicts both misses: window = T T T T
	if w.MissFraction() != 0 {
		t.Fatalf("all-met window misses %v", w.MissFraction())
	}
	if got := w.BurnRate(0.1); got != 0 {
		t.Fatalf("burn rate %v", got)
	}
}

func TestSLOWindowBurnRate(t *testing.T) {
	w := NewSLOWindow(10)
	for i := 0; i < 8; i++ {
		w.Observe(true)
	}
	w.Observe(false)
	w.Observe(false)
	// 2 misses / 10 ticks at a 10% budget: burning at exactly 2x.
	if got := w.BurnRate(0.1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("burn rate %v, want 2", got)
	}
}

func TestSLOWindowStateRoundTrip(t *testing.T) {
	w := NewSLOWindow(5)
	outcomes := []bool{true, false, true, true, false, false, true}
	for _, met := range outcomes {
		w.Observe(met)
	}
	st := w.State()
	r := NewSLOWindow(5)
	r.SetState(st)
	if r.Len() != w.Len() || r.MissFraction() != w.MissFraction() {
		t.Fatalf("restored len %d miss %v, want %d / %v",
			r.Len(), r.MissFraction(), w.Len(), w.MissFraction())
	}
	// Continued observations must evolve identically.
	w.Observe(true)
	r.Observe(true)
	if r.MissFraction() != w.MissFraction() {
		t.Fatalf("post-restore divergence: %v vs %v", r.MissFraction(), w.MissFraction())
	}
}

func TestSLOWindowPartialRestoreCountsLiveOutcomesOnly(t *testing.T) {
	w := NewSLOWindow(6)
	w.Observe(false)
	w.Observe(true)
	r := NewSLOWindow(6)
	r.SetState(w.State())
	if r.Len() != 2 || math.Abs(r.MissFraction()-0.5) > 1e-12 {
		t.Fatalf("partial restore: len %d miss %v", r.Len(), r.MissFraction())
	}
}
