package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New(nil)
	c := r.Counter("releases_total", "releases")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	if again := r.Counter("releases_total", "releases"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("negative counter add did not panic")
		}
	}()
	New(nil).Counter("c", "").Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := New(nil)
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatalf("kind mismatch did not panic")
		}
	}()
	r.Gauge("m", "h")
}

func TestLabelsIdentity(t *testing.T) {
	r := New(nil)
	a := r.Counter("c", "h", L("class", "1"), L("kind", "olap"))
	// Same labels in a different order resolve to the same child.
	b := r.Counter("c", "h", L("kind", "olap"), L("class", "1"))
	if a != b {
		t.Fatalf("label order changed instrument identity")
	}
	c := r.Counter("c", "h", L("class", "2"), L("kind", "olap"))
	if a == c {
		t.Fatalf("distinct labels shared an instrument")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New(nil)
	h := r.Histogram("wait_seconds", "waits", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 111.5 {
		t.Fatalf("sum = %v, want 111.5", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`wait_seconds_bucket{le="1"} 2`, // 0.5 and the boundary value 1
		`wait_seconds_bucket{le="5"} 3`,
		`wait_seconds_bucket{le="10"} 4`,
		`wait_seconds_bucket{le="+Inf"} 5`,
		`wait_seconds_sum 111.5`,
		`wait_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	r := New(nil)
	for _, bad := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bad)
				}
			}()
			r.Histogram("h", "", bad)
		}()
	}
	r.Histogram("ok", "", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Errorf("bound mismatch on re-registration did not panic")
		}
	}()
	r.Histogram("ok", "", []float64{1, 3})
}

func TestBoundsEqual(t *testing.T) {
	if !boundsEqual([]float64{1, 2.5}, []float64{1, 2.5}) {
		t.Fatalf("identical bounds reported unequal")
	}
	if boundsEqual([]float64{1}, []float64{1, 2}) || boundsEqual([]float64{1}, []float64{2}) {
		t.Fatalf("different bounds reported equal")
	}
}

// TestExpositionDeterministic registers and touches instruments in two
// different orders and requires byte-identical exposition — the registry
// analogue of the experiment layer's serial-vs-parallel guarantee.
func TestExpositionDeterministic(t *testing.T) {
	build := func(reverse bool) string {
		r := New(func() float64 { return 42.5 })
		ops := []func(){
			func() { r.Counter("b_total", "b", L("class", "1")).Add(3) },
			func() { r.Counter("b_total", "b", L("class", "2")).Add(1) },
			func() { r.Gauge("a_depth", "a").Set(7) },
			func() { r.Histogram("c_wait", "c", []float64{1, 10}, L("class", "1")).Observe(2) },
		}
		if reverse {
			for i := len(ops) - 1; i >= 0; i-- {
				ops[i]()
			}
		} else {
			for _, op := range ops {
				op()
			}
		}
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	fwd, rev := build(false), build(true)
	if fwd != rev {
		t.Fatalf("exposition depends on registration order:\n--- forward\n%s--- reverse\n%s", fwd, rev)
	}
	if !strings.HasPrefix(fwd, "# HELP sim_time_seconds") || !strings.Contains(fwd, "sim_time_seconds 42.5") {
		t.Fatalf("sim_time_seconds missing or not leading:\n%s", fwd)
	}
	// Families must appear in name order after the sim-time stamp.
	ia, ib, ic := strings.Index(fwd, "a_depth"), strings.Index(fwd, "b_total"), strings.Index(fwd, "c_wait")
	if !(ia < ib && ib < ic) {
		t.Fatalf("families not sorted by name:\n%s", fwd)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New(nil)
	r.Counter("c", "h", L("q", "a\"b\\c\nd")).Inc()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `c{q="a\"b\\c\nd"} 1`; !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped label missing %q:\n%s", want, buf.String())
	}
}
