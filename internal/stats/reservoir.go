package stats

import "fmt"

// Reservoir keeps a uniform random sample of a stream (Vitter's
// algorithm R), enabling quantile estimates over unbounded runs with
// bounded memory — how the metrics collector tracks tail response times
// across a 24-hour experiment.
//
// The replacement choices come from an internal deterministic generator
// so experiments stay reproducible; two reservoirs built with the same
// seed over the same stream are identical.
type Reservoir struct {
	k       int
	seen    int
	samples []float64
	state   uint64
}

// NewReservoir returns a reservoir keeping up to k samples.
func NewReservoir(k int, seed uint64) *Reservoir {
	if k <= 0 {
		panic(fmt.Sprintf("stats: non-positive reservoir size %d", k))
	}
	return &Reservoir{k: k, state: seed*2862933555777941757 + 3037000493}
}

func (r *Reservoir) next() uint64 {
	// xorshift64*: tiny, fast, and plenty uniform for sampling.
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 2685821657736338717
}

// Add offers one stream element to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.samples) < r.k {
		r.samples = append(r.samples, x)
		return
	}
	// Replace a random slot with probability k/seen.
	if j := int(r.next() % uint64(r.seen)); j < r.k {
		r.samples[j] = x
	}
}

// Len returns the number of retained samples.
func (r *Reservoir) Len() int { return len(r.samples) }

// Seen returns how many elements were offered.
func (r *Reservoir) Seen() int { return r.seen }

// Quantile estimates the p-quantile of the stream from the sample.
// It returns 0 when the reservoir is empty.
func (r *Reservoir) Quantile(p float64) float64 {
	return Percentile(r.samples, p)
}

// Samples returns a copy of the retained sample.
func (r *Reservoir) Samples() []float64 {
	out := make([]float64, len(r.samples))
	copy(out, r.samples)
	return out
}

// Reset discards all state, keeping the size and the generator position.
func (r *Reservoir) Reset() {
	r.samples = r.samples[:0]
	r.seen = 0
}
