// Package stats provides the small statistical toolkit the controller and
// the experiment harness need: online summaries, percentiles, exponential
// smoothing, histograms, and least-squares regression (the paper fits the
// OLTP performance-model slope "s" with linear regression).
package stats

import (
	"math"
	"sort"
)

// ApproxEqual reports whether a and b agree to within tol, scaled by the
// larger magnitude (an absolute comparison below magnitude 1). It is the
// repository's approved epsilon helper for floating-point equality: the
// qlint floateq check forbids ==/!= on computed floats everywhere else,
// because exact equality flips with evaluation order. The one exact
// comparison below handles infinities and is allowed by name in the lint
// configuration (see internal/lint.DefaultConfig).
func ApproxEqual(a, b, tol float64) bool {
	if a == b {
		return true // covers equal infinities, which produce a NaN diff
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
		return false // unequal non-finite values are never "approximately" equal
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Summary accumulates count, mean, and variance online (Welford's
// algorithm) along with min and max. The zero value is ready to use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddAll folds every value into the summary.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// Merge folds another summary into s (parallel-combinable Welford).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	min, max := s.min, s.max
	if o.min < min {
		min = o.min
	}
	if o.max > max {
		max = o.max
	}
	*s = Summary{n: n, mean: mean, m2: m2, min: min, max: max}
}

// Count returns the number of observations.
func (s *Summary) Count() int { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Variance returns the sample variance (n-1 denominator), or 0 for fewer
// than two observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Reset discards all observations.
func (s *Summary) Reset() { *s = Summary{} }

// Percentile returns the p-quantile (p in [0,1]) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice
// and does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p <= 0 {
		return minOf(xs)
	}
	if p >= 1 {
		return maxOf(xs)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// EWMA is an exponentially weighted moving average. The zero value is not
// usable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Larger
// alpha weights recent observations more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Add folds x into the average. The first observation initializes it.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been added.
func (e *EWMA) Initialized() bool { return e.init }

// Regression is the result of an ordinary least-squares fit y = a + b·x.
type Regression struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
	N         int     // number of points fit
}

// LinearFit fits y = a + b·x by ordinary least squares. ok is false when
// fewer than two points are supplied or all x values coincide (the slope is
// then undefined).
func LinearFit(xs, ys []float64) (r Regression, ok bool) {
	if len(xs) != len(ys) {
		panic("stats: LinearFit length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return Regression{N: n}, false
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Regression{N: n}, false
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 0.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return Regression{Intercept: a, Slope: b, R2: r2, N: n}, true
}

// SlidingRegression keeps the most recent Window (x, y) observations and
// fits them on demand. It is how the controller estimates the OLTP model
// slope from recent control intervals.
type SlidingRegression struct {
	Window int
	xs, ys []float64
}

// NewSlidingRegression returns a SlidingRegression holding up to window
// points. window must be at least 2.
func NewSlidingRegression(window int) *SlidingRegression {
	if window < 2 {
		panic("stats: sliding regression window must be >= 2")
	}
	return &SlidingRegression{Window: window}
}

// Add appends an observation, evicting the oldest when full.
func (s *SlidingRegression) Add(x, y float64) {
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
	if len(s.xs) > s.Window {
		s.xs = s.xs[1:]
		s.ys = s.ys[1:]
	}
}

// Len returns the number of stored observations.
func (s *SlidingRegression) Len() int { return len(s.xs) }

// Fit runs least squares over the stored window.
func (s *SlidingRegression) Fit() (Regression, bool) {
	return LinearFit(s.xs, s.ys)
}

// Reset discards all stored observations.
func (s *SlidingRegression) Reset() {
	s.xs = s.xs[:0]
	s.ys = s.ys[:0]
}

// Histogram counts observations into fixed-width bins over [Lo, Hi);
// values outside the range land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Bins      []int
	Under     int
	Over      int
	summaries Summary
}

// NewHistogram builds a histogram with n equal bins across [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add counts x into its bin.
func (h *Histogram) Add(x float64) {
	h.summaries.Add(x)
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i >= len(h.Bins) {
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns the total number of observations including out-of-range.
func (h *Histogram) Total() int { return h.summaries.Count() }

// Summary returns the running summary of all added values.
func (h *Histogram) Summary() Summary { return h.summaries }

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
