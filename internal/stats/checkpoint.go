// Checkpoint state types: every accumulator in this package can export its
// internal state as a plain exported-field struct (gob-serializable) and
// restore it exactly. The internal fields stay unexported so normal code
// cannot corrupt an accumulator; checkpoint/restore is the one sanctioned
// bypass.
package stats

// SummaryState is Summary's serializable state.
type SummaryState struct {
	N              int
	Mean, M2       float64
	MinVal, MaxVal float64
}

// State exports the summary for a checkpoint.
func (s *Summary) State() SummaryState {
	return SummaryState{N: s.n, Mean: s.mean, M2: s.m2, MinVal: s.min, MaxVal: s.max}
}

// SetState restores a checkpointed summary.
func (s *Summary) SetState(st SummaryState) {
	s.n, s.mean, s.m2, s.min, s.max = st.N, st.Mean, st.M2, st.MinVal, st.MaxVal
}

// EWMAState is EWMA's serializable state.
type EWMAState struct {
	Alpha, Value float64
	Init         bool
}

// State exports the average for a checkpoint.
func (e *EWMA) State() EWMAState {
	return EWMAState{Alpha: e.alpha, Value: e.value, Init: e.init}
}

// SetState restores a checkpointed average.
func (e *EWMA) SetState(st EWMAState) {
	e.alpha, e.value, e.init = st.Alpha, st.Value, st.Init
}

// RegressionState is SlidingRegression's serializable state.
type RegressionState struct {
	Window int
	Xs, Ys []float64
}

// State exports the window for a checkpoint (copies, safe to hold).
func (s *SlidingRegression) State() RegressionState {
	return RegressionState{
		Window: s.Window,
		Xs:     append([]float64(nil), s.xs...),
		Ys:     append([]float64(nil), s.ys...),
	}
}

// SetState restores a checkpointed window.
func (s *SlidingRegression) SetState(st RegressionState) {
	s.Window = st.Window
	s.xs = append(s.xs[:0], st.Xs...)
	s.ys = append(s.ys[:0], st.Ys...)
}

// ReservoirState is Reservoir's serializable state.
type ReservoirState struct {
	K, Seen int
	Samples []float64
	RNG     uint64
}

// State exports the reservoir for a checkpoint (copies, safe to hold).
func (r *Reservoir) State() ReservoirState {
	return ReservoirState{
		K:       r.k,
		Seen:    r.seen,
		Samples: append([]float64(nil), r.samples...),
		RNG:     r.state,
	}
}

// SetState restores a checkpointed reservoir.
func (r *Reservoir) SetState(st ReservoirState) {
	r.k, r.seen, r.state = st.K, st.Seen, st.RNG
	r.samples = append(r.samples[:0], st.Samples...)
}
