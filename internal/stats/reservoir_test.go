package stats

import (
	"math"
	"testing"
)

func TestReservoirKeepsEverythingBelowCapacity(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := 0; i < 7; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 7 || r.Seen() != 7 {
		t.Fatalf("Len/Seen = %d/%d", r.Len(), r.Seen())
	}
	if got := r.Quantile(1); got != 6 {
		t.Fatalf("max = %v", got)
	}
}

func TestReservoirBoundedMemory(t *testing.T) {
	r := NewReservoir(32, 2)
	for i := 0; i < 100000; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 32 {
		t.Fatalf("Len = %d, want 32", r.Len())
	}
	if r.Seen() != 100000 {
		t.Fatalf("Seen = %d", r.Seen())
	}
}

func TestReservoirDeterministic(t *testing.T) {
	a, b := NewReservoir(16, 7), NewReservoir(16, 7)
	for i := 0; i < 10000; i++ {
		a.Add(float64(i))
		b.Add(float64(i))
	}
	sa, sb := a.Samples(), b.Samples()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same-seed reservoirs diverged")
		}
	}
}

func TestReservoirQuantileAccuracy(t *testing.T) {
	// Uniform stream 0..1: the sampled quantiles must approximate the
	// true ones.
	r := NewReservoir(2048, 3)
	n := 200000
	for i := 0; i < n; i++ {
		r.Add(float64(i%1000) / 1000)
	}
	for _, q := range []float64{0.1, 0.5, 0.95} {
		if got := r.Quantile(q); math.Abs(got-q) > 0.05 {
			t.Fatalf("quantile %v = %v", q, got)
		}
	}
}

func TestReservoirSampleIsUnbiasedAcrossStream(t *testing.T) {
	// Stream of 10k items; the retained sample's mean index should be
	// near the middle, not stuck at the start or end.
	r := NewReservoir(512, 5)
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	var sum float64
	for _, v := range r.Samples() {
		sum += v
	}
	mean := sum / float64(r.Len())
	if mean < 3500 || mean > 6500 {
		t.Fatalf("sample mean index %v suggests bias", mean)
	}
}

func TestReservoirReset(t *testing.T) {
	r := NewReservoir(4, 1)
	r.Add(1)
	r.Reset()
	if r.Len() != 0 || r.Seen() != 0 {
		t.Fatal("Reset incomplete")
	}
	if r.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestReservoirInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size 0 did not panic")
		}
	}()
	NewReservoir(0, 1)
}

func TestReservoirSamplesIsCopy(t *testing.T) {
	r := NewReservoir(4, 1)
	r.Add(1)
	s := r.Samples()
	s[0] = 99
	if r.Samples()[0] == 99 {
		t.Fatal("Samples leaked internal state")
	}
}
