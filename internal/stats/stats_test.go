package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("zero-value summary not empty")
	}
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count() != 8 {
		t.Fatalf("Count = %d", s.Count())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if !almost(s.Variance(), 32.0/7, 1e-9) {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !almost(s.Sum(), 40, 1e-9) {
		t.Fatalf("Sum = %v, want 40", s.Sum())
	}
}

func TestSummaryReset(t *testing.T) {
	var s Summary
	s.Add(5)
	s.Reset()
	if s.Count() != 0 || s.Mean() != 0 {
		t.Fatal("Reset did not clear summary")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		var all, a, b Summary
		for i := 0; i < 100; i++ {
			v := rnd.NormFloat64() * 10
			all.Add(v)
			if i%2 == 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		a.Merge(b)
		if a.Count() != all.Count() ||
			!almost(a.Mean(), all.Mean(), 1e-9) ||
			!almost(a.Variance(), all.Variance(), 1e-9) ||
			a.Min() != all.Min() || a.Max() != all.Max() {
			t.Fatalf("trial %d: merged summary differs from sequential", trial)
		}
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(3)
	a.Merge(b) // merging empty is a no-op
	if a.Count() != 1 || a.Mean() != 3 {
		t.Fatal("merge with empty changed summary")
	}
	b.Merge(a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 3 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {1, 50}, {0.5, 35}, {0.25, 20}, {0.75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("Percentile(empty) != 0")
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{10, 20}, 0.5); !almost(got, 15, 1e-9) {
		t.Fatalf("interpolated median = %v, want 15", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2, 1e-12) {
		t.Fatalf("Mean = %v", got)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA claims initialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first value = %v, want 10", e.Value())
	}
	e.Add(20)
	if !almost(e.Value(), 15, 1e-12) {
		t.Fatalf("after second add = %v, want 15", e.Value())
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.1} {
		a := a
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha %v did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	fit, ok := LinearFit(xs, ys)
	if !ok {
		t.Fatal("fit failed")
	}
	if !almost(fit.Slope, 2, 1e-9) || !almost(fit.Intercept, 3, 1e-9) {
		t.Fatalf("fit = %+v, want slope 2 intercept 3", fit)
	}
	if !almost(fit.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearFitRecoversNoisySlope(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, -0.25*x+100+rnd.NormFloat64()*3)
	}
	fit, ok := LinearFit(xs, ys)
	if !ok {
		t.Fatal("fit failed")
	}
	if !almost(fit.Slope, -0.25, 0.01) {
		t.Fatalf("slope = %v, want ~-0.25", fit.Slope)
	}
	if fit.R2 < 0.9 {
		t.Fatalf("R2 = %v, want > 0.9", fit.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, ok := LinearFit([]float64{1}, []float64{2}); ok {
		t.Fatal("single point fit reported ok")
	}
	if _, ok := LinearFit([]float64{3, 3, 3}, []float64{1, 2, 3}); ok {
		t.Fatal("constant-x fit reported ok")
	}
}

func TestLinearFitMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	LinearFit([]float64{1}, []float64{1, 2})
}

func TestSlidingRegressionWindowEviction(t *testing.T) {
	r := NewSlidingRegression(3)
	// Old steep segment followed by a flat segment; after eviction only
	// the flat one should remain.
	r.Add(0, 0)
	r.Add(1, 100)
	r.Add(10, 5)
	r.Add(11, 5)
	r.Add(12, 5)
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	fit, ok := r.Fit()
	if !ok {
		t.Fatal("fit failed")
	}
	if !almost(fit.Slope, 0, 1e-9) {
		t.Fatalf("slope = %v, want 0 after eviction", fit.Slope)
	}
}

func TestSlidingRegressionReset(t *testing.T) {
	r := NewSlidingRegression(4)
	r.Add(1, 1)
	r.Add(2, 2)
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	if _, ok := r.Fit(); ok {
		t.Fatal("fit after reset reported ok")
	}
}

func TestSlidingRegressionTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window 1 did not panic")
		}
	}()
	NewSlidingRegression(1)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(v)
	}
	if h.Under != 1 {
		t.Fatalf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Fatalf("Over = %d, want 2", h.Over)
	}
	wantBins := []int{2, 1, 1, 0, 1} // {0, 1.9}, {2}, {5}, {}, {9.99}
	for i, want := range wantBins {
		if h.Bins[i] != want {
			t.Fatalf("bin %d = %d, want %d (bins %v)", i, h.Bins[i], want, h.Bins)
		}
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d, want 8", h.Total())
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Fatal("Clamp wrong")
	}
}

// Property: Summary mean always lies within [Min, Max].
func TestSummaryMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var s Summary
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes where intermediate arithmetic cannot
			// overflow; the invariant is about ordering, not range.
			v = math.Mod(v, 1e9)
			s.Add(v)
			n++
		}
		if n == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := rnd.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rnd.Float64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				t.Fatalf("percentile not monotone at p=%v", p)
			}
			prev = v
		}
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1.1, 1e-3, false},
		{1e9, 1e9 * (1 + 1e-10), 1e-9, true}, // relative scaling kicks in
		{1e9, 1e9 + 1, 1e-12, false},
		{0, 1e-12, 1e-9, true}, // absolute comparison near zero
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.Inf(1), 1, 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false}, // NaN equals nothing
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}
