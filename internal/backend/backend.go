// Package backend bundles one simulated engine with its admission-
// control stack — patroller, Query Scheduler, per-backend metrics
// collector — behind a single handle the routing tier composes into a
// fleet. The classic single-engine rig is exactly one backend; a fleet
// run stands up N of them on one shared clock, each with its own
// capacity profile, and routes every query to one of them.
package backend

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/patroller"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// Spec is one backend's capacity profile and routing bias — the
// heterogeneous part of a fleet configuration.
type Spec struct {
	// Name labels the backend in traces, decision logs, and metrics.
	Name string
	// CPUCapacity / IOCapacity / ContentionAlpha override the engine's
	// defaults (zero = paper default), so a fleet can mix fast and slow
	// boxes.
	CPUCapacity     float64
	IOCapacity      float64
	ContentionAlpha float64
	// Affinity biases the router's class-affinity scorer toward this
	// backend for the listed classes. Unlisted classes score 1 (no
	// preference); values must be positive.
	Affinity map[engine.ClassID]float64
}

// EngineConfig resolves the spec into a full engine configuration,
// filling unset fields from the paper defaults.
func (s Spec) EngineConfig() engine.Config {
	cfg := engine.DefaultConfig()
	if s.CPUCapacity > 0 {
		cfg.CPUCapacity = s.CPUCapacity
	}
	if s.IOCapacity > 0 {
		cfg.IOCapacity = s.IOCapacity
	}
	if s.ContentionAlpha > 0 {
		cfg.ContentionAlpha = s.ContentionAlpha
	}
	return cfg
}

// DefaultSpecs returns n identical paper-default backends named b1..bn —
// the -backends N fleet. A single default spec reproduces the classic
// single-engine rig exactly.
func DefaultSpecs(n int) []Spec {
	out := make([]Spec, n)
	for i := range out {
		out[i].Name = fmt.Sprintf("b%d", i+1)
	}
	return out
}

// Backend is what the routing tier sees: identity, the engine queries
// execute on, and the queue/load signals the scorers read. Instance is
// the one concrete implementation; the interface keeps the router
// testable with stubs.
type Backend interface {
	// ID is the backend's 1-based fleet index.
	ID() int
	// Name is the spec's label.
	Name() string
	// Engine returns the backend's execution engine.
	Engine() *engine.Engine
	// QueueDepth is the number of queries held at the backend's
	// admission gate (0 when no patroller is attached).
	QueueDepth() int
	// Load is the backend's current demand relative to capacity: the
	// busier station's utilization (may exceed 1 when oversubscribed).
	Load() float64
	// Affinity is the spec's routing bias for a class (1 = neutral).
	Affinity(class engine.ClassID) float64
	// Evacuate pulls every query this backend holds — admission-held,
	// executing, and awaiting retry — off the backend for failover
	// re-dispatch, in deterministic order (held queue in arrival order,
	// then executing queries by ID, then pending retries by event
	// sequence). Each returned query is reset to StateNew.
	Evacuate() []*engine.Query
}

// Instance is one concrete backend: an engine plus (once attached) its
// patroller, per-backend Query Scheduler, and per-backend collector.
type Instance struct {
	id   int
	spec Spec

	Eng *engine.Engine
	Pat *patroller.Patroller
	QS  *core.QueryScheduler
	// Collector is the backend-local period × class view — what landed
	// here, as opposed to the fleet-global collector that sees all
	// backends at once.
	Collector *metrics.Collector
}

// New builds a backend's engine on the shared clock. Control
// (patroller + scheduler) and metrics attach separately, mirroring the
// construction order of the single-engine rig.
func New(id int, spec Spec, clock *simclock.Clock) *Instance {
	if id <= 0 {
		panic(fmt.Sprintf("backend: non-positive backend ID %d", id))
	}
	for class, w := range spec.Affinity {
		if w <= 0 {
			panic(fmt.Sprintf("backend: %s: non-positive affinity %v for class %d", spec.Name, w, class))
		}
	}
	return &Instance{id: id, spec: spec, Eng: engine.New(spec.EngineConfig(), clock)}
}

// ID returns the backend's 1-based fleet index.
func (b *Instance) ID() int { return b.id }

// Name returns the spec's label.
func (b *Instance) Name() string { return b.spec.Name }

// Spec returns the backend's configuration.
func (b *Instance) Spec() Spec { return b.spec }

// Engine returns the backend's execution engine.
func (b *Instance) Engine() *engine.Engine { return b.Eng }

// QueueDepth returns the patroller's held-queue length.
func (b *Instance) QueueDepth() int {
	if b.Pat == nil {
		return 0
	}
	return b.Pat.HeldCount()
}

// Load returns the busier station's demand relative to capacity.
func (b *Instance) Load() float64 {
	cpu, io := b.Eng.Utilization()
	if io > cpu {
		return io
	}
	return cpu
}

// Affinity returns the spec's routing bias for a class (1 = neutral).
func (b *Instance) Affinity(class engine.ClassID) float64 {
	if w, ok := b.spec.Affinity[class]; ok {
		return w
	}
	return 1
}

// Evacuate implements the failover drain: held queries first (arrival
// order), then executing queries (ID order, with their patroller rows
// closed), then pending retries (event-sequence order). The composite
// order is deterministic, so the survivors' submission sequence — and
// every event sequence number downstream of it — replays identically
// run to run and across checkpoint resume.
func (b *Instance) Evacuate() []*engine.Query {
	var out []*engine.Query
	if b.Pat != nil {
		out = append(out, b.Pat.EvacuateHeld()...)
	}
	for _, q := range b.Eng.Evacuate() {
		if b.Pat != nil {
			b.Pat.ForgetActive(q.ID)
		}
		out = append(out, q)
	}
	if b.Pat != nil {
		out = append(out, b.Pat.EvacuateRetries()...)
	}
	return out
}

// AttachControl wires the backend's admission stack: a patroller over
// the OLAP classes and a started per-backend Query Scheduler. The
// scheduler's monitor polls only this backend's engine, so each member
// of a fleet plans against what actually landed on it.
func (b *Instance) AttachControl(qsCfg core.Config, classes []*workload.Class,
	olap []engine.ClassID, oltpClients func() []engine.ClientID) {
	b.Pat = patroller.New(b.Eng, olap...)
	qs, err := core.New(qsCfg, b.Eng, b.Pat, classes, oltpClients)
	if err != nil {
		panic(err)
	}
	b.QS = qs
	qs.Start()
}

// AttachCollector builds the backend-local metrics collector.
func (b *Instance) AttachCollector(classes []*workload.Class, sched workload.Schedule) {
	b.Collector = metrics.NewCollector(b.Eng, classes, sched)
}
