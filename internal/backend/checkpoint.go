// Checkpoint state for one fleet backend: the composed snapshot of its
// engine, patroller, scheduler, and local collector. The fleet runner
// stores one of these per backend, in backend-ID order, so restore
// replays the same construction sequence component by component.
package backend

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/patroller"
)

// CheckpointState is the backend's serializable state.
type CheckpointState struct {
	Engine    engine.CheckpointState
	Pat       patroller.CheckpointState
	QS        core.CheckpointState
	Collector metrics.CheckpointState
}

// CheckpointState captures the backend at a quiescent boundary.
func (b *Instance) CheckpointState() CheckpointState {
	return CheckpointState{
		Engine:    b.Eng.CheckpointState(),
		Pat:       b.Pat.CheckpointState(),
		QS:        b.QS.CheckpointState(),
		Collector: b.Collector.CheckpointState(),
	}
}

// RestoreCheckpoint overwrites a freshly constructed backend with
// checkpointed state. Order mirrors the single-rig resume: the engine
// first (held/active patroller entries re-link to its rebuilt query
// objects), then the patroller, scheduler, and collector.
func (b *Instance) RestoreCheckpoint(st CheckpointState) {
	b.Eng.RestoreCheckpoint(st.Engine)
	b.Pat.RestoreCheckpoint(st.Pat)
	b.QS.RestoreCheckpoint(st.QS)
	b.Collector.RestoreCheckpoint(st.Collector)
}
