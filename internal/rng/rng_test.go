package rng

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions across different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not replay the parent's.
	p, c := New(7), child
	_ = p.Uint64() // consume the draw Split used
	for i := 0; i < 50; i++ {
		if p.Uint64() == c.Uint64() {
			t.Fatal("child stream mirrors parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	s := New(9)
	f := func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		v := s.Range(3, 8)
		if v < 3 || v >= 8 {
			t.Fatalf("Range(3,8) = %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(13)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		v := s.Exp(2.5)
		if v < 0 {
			t.Fatalf("Exp produced negative %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("Exp mean = %v, want ~2.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(17)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("Normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(19)
	n := 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LogNormalMedian(5, 0.5)
	}
	// Median check: count below 5 should be ~half.
	below := 0
	for _, v := range vals {
		if v <= 0 {
			t.Fatalf("LogNormalMedian produced non-positive %v", v)
		}
		if v < 5 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestBoundedParetoBounds(t *testing.T) {
	s := New(23)
	for i := 0; i < 10000; i++ {
		v := s.BoundedPareto(1.1, 2, 50)
		if v < 2 || v > 50 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
}

func TestBoundedParetoSkew(t *testing.T) {
	s := New(29)
	n := 50000
	below := 0
	for i := 0; i < n; i++ {
		if s.BoundedPareto(1.5, 1, 100) < 10 {
			below++
		}
	}
	// A heavy-tailed draw should concentrate near the low bound.
	if frac := float64(below) / float64(n); frac < 0.8 {
		t.Fatalf("only %v below 10; Pareto should skew low", frac)
	}
}

func TestBoundedParetoInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid bounds did not panic")
		}
	}()
	New(1).BoundedPareto(1, 5, 5)
}

func TestWeightedChoiceDistribution(t *testing.T) {
	s := New(31)
	weights := []float64{1, 3, 6}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[s.WeightedChoice(weights)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / float64(n)
		want := w / 10
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("weight %d chosen %v of the time, want ~%v", i, got, want)
		}
	}
}

func TestWeightedChoiceZeroWeightNeverChosen(t *testing.T) {
	s := New(37)
	weights := []float64{0, 1, 0}
	for i := 0; i < 1000; i++ {
		if got := s.WeightedChoice(weights); got != 1 {
			t.Fatalf("chose index %d with zero weight", got)
		}
	}
}

func TestWeightedChoiceInvalid(t *testing.T) {
	for _, weights := range [][]float64{nil, {}, {0, 0}, {-1, 2}} {
		weights := weights
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("weights %v did not panic", weights)
				}
			}()
			New(1).WeightedChoice(weights)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(41)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

// TestConcurrentSourcesAreStreamIndependent covers the lowest layer of the
// parallel-experiment isolation invariant (see internal/experiment/
// parallel.go): a Source has no hidden shared state, so same-seed
// generators driven from concurrent worker goroutines produce exactly the
// sequence a lone serial generator does. Run under `go test -race` this
// also proves separate Sources share no memory.
func TestConcurrentSourcesAreStreamIndependent(t *testing.T) {
	const seed, draws, workers = 77, 5000, 8
	reference := make([]uint64, draws)
	src := New(seed)
	for i := range reference {
		reference[i] = src.Uint64()
	}

	results := make([][]uint64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			s := New(seed) // each worker owns its generator, same seed
			out := make([]uint64, draws)
			for i := range out {
				out[i] = s.Uint64()
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w, out := range results {
		for i := range out {
			if out[i] != reference[i] {
				t.Fatalf("worker %d diverged from the serial stream at draw %d", w, i)
			}
		}
	}
}

// TestSplitStreamsIndependent checks that Split-derived generators do not
// share state with the parent: draining the child must not perturb the
// parent's subsequent stream.
func TestSplitStreamsIndependent(t *testing.T) {
	a := New(5)
	b := New(5)
	childA := a.Split()
	childB := b.Split()
	for i := 0; i < 100; i++ {
		childA.Uint64() // drain only one child
	}
	_ = childB
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draining a Split child perturbed the parent at draw %d", i)
		}
	}
}
