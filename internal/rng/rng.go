// Package rng provides a small deterministic pseudo-random number generator
// and the distributions the workload generators and cost model need.
//
// Experiments in this repository must be reproducible run-to-run, so
// nothing here touches math/rand's global state; every consumer owns a
// Source seeded explicitly.
package rng

import "math"

// Source is a splitmix64-based PRNG. It is small, fast, and passes the
// statistical quality bar needed for workload generation. The zero value is
// a valid generator (seed 0 is remapped internally).
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed + 0x9e3779b97f4a7c15}
}

// Split returns a new, independent Source derived from s. Useful for giving
// each simulated client its own stream so adding a client does not perturb
// the others' draws.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// State returns the generator's raw cursor for checkpointing. Restoring it
// with SetState resumes the stream at exactly the same position.
func (s *Source) State() uint64 { return s.state }

// SetState repositions the generator's cursor (see State).
func (s *Source) SetState(v uint64) { s.state = v }

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box-Muller).
func (s *Source) Normal(mean, stddev float64) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// LogNormal returns a log-normally distributed value where the underlying
// normal has parameters mu and sigma. The median of the result is exp(mu).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LogNormalMedian returns a log-normal draw with the given median and
// shape sigma. Convenient for "typically X, occasionally much larger"
// service demands.
func (s *Source) LogNormalMedian(median, sigma float64) float64 {
	return median * math.Exp(s.Normal(0, sigma))
}

// BoundedPareto returns a Pareto(alpha) draw truncated to [lo, hi]. Used
// for the heavy-tailed OLAP cost distribution.
func (s *Source) BoundedPareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("rng: BoundedPareto requires 0 < lo < hi")
	}
	u := s.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// WeightedChoice returns an index in [0, len(weights)) drawn with
// probability proportional to weights[i]. It panics on an empty or
// non-positive-total weight slice.
func (s *Source) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: WeightedChoice with no positive weights")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
