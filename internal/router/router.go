// Package router is the fleet's routing tier: one routing decision per
// submitted query, computed from orthogonal, independently-evaluated
// scorers combined by weighted argmax with deterministic tie-breaking.
//
// The router sits between the client pool and the backends — it
// implements the pool's Submitter contract, so the closed-loop clients
// are oblivious to how many engines exist. Scoring reads only
// instantaneous backend signals (queue depth, load, class affinity);
// nothing about the decision depends on map iteration or wall time, so
// a fleet run is as deterministic as a single-engine one.
package router

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/engine"
)

// Scorer rates one backend for one query. Higher is better. Scores
// must be finite, non-negative, and independent of evaluation order —
// each scorer sees one (backend, query) pair at a time.
type Scorer interface {
	Name() string
	Score(b backend.Backend, q *engine.Query) float64
}

// QueueDepth prefers backends with shorter admission queues: a backend
// holding h queries scores 1/(1+h).
type QueueDepth struct{}

// Name identifies the scorer in traces.
func (QueueDepth) Name() string { return "queue" }

// Score rates b by its held-queue length.
func (QueueDepth) Score(b backend.Backend, _ *engine.Query) float64 {
	return 1 / (1 + float64(b.QueueDepth()))
}

// Load prefers lightly loaded backends: a backend at utilization u
// (demand over capacity, busier station) scores 1/(1+u). Capacity
// heterogeneity is already folded in — a slow box reaches u=1 sooner,
// so it repels load earlier than a fast one.
type Load struct{}

// Name identifies the scorer in traces.
func (Load) Name() string { return "load" }

// Score rates b by its current utilization.
func (Load) Score(b backend.Backend, _ *engine.Query) float64 {
	return 1 / (1 + b.Load())
}

// Affinity applies the backend spec's per-class routing bias: a backend
// with affinity w for the query's class scores w (1 when unspecified).
type Affinity struct{}

// Name identifies the scorer in traces.
func (Affinity) Name() string { return "affinity" }

// Score rates b by its configured bias for the query's class.
func (Affinity) Score(b backend.Backend, q *engine.Query) float64 {
	return b.Affinity(q.Class)
}

// Weighted pairs a scorer with its weight in the combined score.
type Weighted struct {
	Scorer Scorer
	Weight float64
}

// DefaultScorers is the standard policy: queue depth and load dominate,
// affinity breaks structural preferences.
func DefaultScorers() []Weighted {
	return []Weighted{
		{Scorer: QueueDepth{}, Weight: 1},
		{Scorer: Load{}, Weight: 1},
		{Scorer: Affinity{}, Weight: 0.5},
	}
}

// Decision is one routing outcome: the chosen backend and the combined
// score of every candidate, in roster order. The Scores slice is owned
// by the router and valid only during the OnRoute callback.
type Decision struct {
	// Backend is the chosen backend's 1-based ID.
	Backend int
	// Scores[i] is roster backend i's combined weighted score.
	Scores []float64
}

// Router routes every submitted query to one backend. It implements
// the workload pool's Submitter contract.
type Router struct {
	backends []backend.Backend
	scorers  []Weighted

	// routed / cost are the per-backend tallies (roster order): total
	// queries ever routed, and routed timeron cost since the fleet
	// planner last harvested it — the demand signal the hierarchical
	// budget split is proportional to.
	routed []int64
	cost   []float64

	// Health model (roster order): a down backend is excluded from
	// scoring entirely; a degraded one keeps routing (its load signal
	// already repels queries) but carries its brownout factor so the
	// fleet planner can discount its demand. migrations maps a class to
	// the 1-based backend currently being drained of that class's
	// demand (the migration-before-shedding policy).
	down       []bool
	degraded   []float64
	migrations map[engine.ClassID]int

	onRoute   []func(q *engine.Query, d Decision)
	onReroute []func(q *engine.Query, from, to int)
	//lint:ignore ckptcover reused scoring scratch; dead between Submit calls
	scratch []float64
	//lint:ignore ckptcover transient: the last Submit's choice, read only inside MarkDown's re-dispatch loop
	lastBackend int
}

// New builds a router over the backends (roster order = tie-break
// order) with the given scoring policy.
func New(backends []backend.Backend, scorers []Weighted) *Router {
	if len(backends) == 0 {
		panic("router: no backends")
	}
	if len(scorers) == 0 {
		panic("router: no scorers")
	}
	for _, ws := range scorers {
		if ws.Scorer == nil || ws.Weight <= 0 {
			panic(fmt.Sprintf("router: invalid weighted scorer %+v", ws))
		}
	}
	return &Router{
		backends: backends,
		scorers:  scorers,
		routed:   make([]int64, len(backends)),
		cost:     make([]float64, len(backends)),
		down:     make([]bool, len(backends)),
		degraded: make([]float64, len(backends)),
		scratch:  make([]float64, len(backends)),
	}
}

// Backends returns the roster in tie-break order.
func (r *Router) Backends() []backend.Backend { return r.backends }

// OnRoute registers a routing-decision listener (trace/decision-log
// wiring). Listeners fire after the query has been submitted to the
// chosen backend, so its engine-assigned ID is already set.
func (r *Router) OnRoute(fn func(q *engine.Query, d Decision)) {
	r.onRoute = append(r.onRoute, fn)
}

// AcquireQuery hands out a fresh query object. Fleet queries are
// plain allocations, never pooled: a query's terminal engine recycles
// only its own pooled objects, and cross-backend freelist migration is
// not worth the bookkeeping. Engines ignore non-pooled queries on
// recycle, so this is safe by construction.
func (r *Router) AcquireQuery() *engine.Query { return &engine.Query{} }

// Submit scores every healthy backend for the query, routes it to the
// argmax (lowest roster index wins ties), and fires the routing
// listeners. Down backends are excluded outright; a backend being
// drained of the query's class (an active migration) is skipped unless
// it is the only healthy choice left.
func (r *Router) Submit(q *engine.Query) {
	avoid := 0
	if len(r.migrations) > 0 {
		avoid = r.migrations[q.Class]
	}
	best := -1
	for i, b := range r.backends {
		if r.down[i] {
			r.scratch[i] = 0
			continue
		}
		s := 0.0
		for _, ws := range r.scorers {
			s += ws.Weight * ws.Scorer.Score(b, q)
		}
		r.scratch[i] = s
		if i+1 == avoid {
			continue // drained for this class; scored for the log only
		}
		if best < 0 || s > r.scratch[best] {
			best = i
		}
	}
	if best < 0 && avoid > 0 && !r.down[avoid-1] {
		best = avoid - 1 // the migration source is the only healthy backend
	}
	if best < 0 {
		panic("router: no healthy backend to route to")
	}
	r.routed[best]++
	r.cost[best] += q.Cost
	r.lastBackend = r.backends[best].ID()
	r.backends[best].Engine().Submit(q)
	if len(r.onRoute) > 0 {
		d := Decision{Backend: r.backends[best].ID(), Scores: r.scratch}
		for _, fn := range r.onRoute {
			fn(q, d)
		}
	}
}

// Routed returns the total queries routed to each backend, roster
// order. The slice is a copy.
func (r *Router) Routed() []int64 {
	out := make([]int64, len(r.routed))
	copy(out, r.routed)
	return out
}

// TakeCost returns the routed timeron cost per backend since the last
// call and resets the accumulators — the fleet planner's per-interval
// demand harvest. The returned slice is owned by the caller.
func (r *Router) TakeCost() []float64 {
	out := make([]float64, len(r.cost))
	copy(out, r.cost)
	for i := range r.cost {
		r.cost[i] = 0
	}
	return out
}
