// The hierarchical fleet planner: the top layer of the two-level
// budget split. Each interval it harvests the router's per-backend
// routed-cost demand, folds it into an EWMA, and re-targets every
// backend's SystemCostLimit proportionally — the per-backend Query
// Schedulers then run the existing per-class solver, unchanged,
// against their share. A single-backend fleet degenerates to handing
// the whole budget to backend 1, which is exactly the classic rig.
package router

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/engine"
	"repro/internal/simclock"
)

// PlannerConfig tunes the fleet budget split.
type PlannerConfig struct {
	// Interval is the seconds between splits (typically the control
	// interval of the per-backend schedulers).
	Interval float64
	// Total is the global system cost budget to divide.
	Total float64
	// Alpha is the demand EWMA smoothing factor in (0, 1]; higher
	// tracks routed demand faster. Zero = DefaultAlpha.
	Alpha float64
	// MinShare is the budget fraction every backend keeps even with
	// zero routed demand, so an idle backend can still admit the first
	// queries routed its way. Zero = DefaultMinShare. It doubles as the
	// warm-up floor: a recovered backend rejoins with zeroed demand and
	// lives on this share until routing rebuilds its EWMA.
	MinShare float64
	// Migrate enables the migration-before-shedding policy: when a
	// surviving backend's solver reports an infeasible plan, the planner
	// drains the binding class to the least-loaded healthy peer instead
	// of letting the backend shed it. Off, the planner only re-splits
	// the budget (the mitigation-off fleet of the failover experiment).
	Migrate bool
}

// Planner defaults.
const (
	DefaultAlpha    = 0.3
	DefaultMinShare = 0.1
)

// FleetPlan records one budget split, for logging and tests.
type FleetPlan struct {
	Time simclock.Time
	// Demand[i] is roster backend i's smoothed routed-cost demand.
	Demand []float64
	// Limits[i] is the SystemCostLimit handed to roster backend i
	// (0 for a down backend: it gets no budget and no actuation).
	Limits []float64
}

// FleetDecision is one fleet-level control action beyond the routine
// budget split: a class migration starting or ending, or a shed verdict
// (infeasible with no migration target — repeated each tick the
// condition holds). The decision log persists these so qreport can
// attribute SLO misses to capacity loss.
type FleetDecision struct {
	Time  simclock.Time
	Event string // "migration", "migration-end", "shed"
	// Backend is the decision's subject (the infeasible source), 1-based.
	Backend int
	Class   engine.ClassID
	// Target is the backend receiving migrated demand (0 when n/a).
	Target int
}

// Planner re-splits the global budget across a fleet each interval.
type Planner struct {
	router   *Router
	backends []*backend.Instance
	cfg      PlannerConfig

	ewma       []float64
	ticker     *simclock.Ticker
	onPlan     []func(FleetPlan)
	onDecision []func(FleetDecision)
}

// StartPlanner arms the fleet budget split on the shared clock. The
// first split fires one interval in; until then every backend runs on
// the equal initial split applied here.
func StartPlanner(clock *simclock.Clock, r *Router, backends []*backend.Instance, cfg PlannerConfig) *Planner {
	if len(backends) == 0 {
		panic("router: planner with no backends")
	}
	if cfg.Interval <= 0 {
		panic(fmt.Sprintf("router: non-positive planner interval %v", cfg.Interval))
	}
	if cfg.Total <= 0 {
		panic(fmt.Sprintf("router: non-positive fleet budget %v", cfg.Total))
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		panic(fmt.Sprintf("router: planner alpha %v outside (0, 1]", cfg.Alpha))
	}
	if cfg.MinShare == 0 {
		cfg.MinShare = DefaultMinShare
	}
	if cfg.MinShare < 0 || cfg.MinShare*float64(len(backends)) >= 1 {
		panic(fmt.Sprintf("router: planner min share %v infeasible for %d backends", cfg.MinShare, len(backends)))
	}
	p := &Planner{
		router:   r,
		backends: backends,
		cfg:      cfg,
		ewma:     make([]float64, len(backends)),
	}
	// Equal initial split: no demand observed yet.
	equal := cfg.Total / float64(len(backends))
	for _, b := range backends {
		b.QS.SetSystemCostLimit(equal)
	}
	p.ticker = clock.StartTicker(cfg.Interval, p.tick)
	return p
}

// OnPlan registers a split listener.
func (p *Planner) OnPlan(fn func(FleetPlan)) { p.onPlan = append(p.onPlan, fn) }

// OnDecision registers a fleet-decision listener (migration/shed
// events; the decision-log wiring).
func (p *Planner) OnDecision(fn func(FleetDecision)) { p.onDecision = append(p.onDecision, fn) }

// tick is one fleet planning cycle: harvest routed demand, smooth,
// split the budget across the healthy backends proportionally with the
// min-share floor, re-target every live scheduler, and run the
// migration-before-shedding policy over the survivors' solver verdicts.
//
// Health awareness: a down backend's EWMA zeroes immediately — its
// demand is being served elsewhere now — so the whole budget moves to
// the survivors this same tick, and a later recovery starts from the
// min-share warm-up floor instead of a stale pre-crash share. A
// degraded (browned-out) backend keeps routing but its demand weight is
// discounted by the brownout factor: a box at quarter speed holding
// nominal demand earns a quarter of the budget pull, shifting admission
// capacity toward backends that can actually burn it.
func (p *Planner) tick() {
	cost := p.router.TakeCost()
	total := 0.0
	healthy := 0
	weights := make([]float64, len(p.ewma))
	for i := range p.ewma {
		if p.router.IsDown(i + 1) {
			p.ewma[i] = 0
			continue
		}
		healthy++
		p.ewma[i] = (1-p.cfg.Alpha)*p.ewma[i] + p.cfg.Alpha*cost[i]
		weights[i] = p.ewma[i]
		if f := p.router.DegradedFactor(i + 1); f > 0 {
			weights[i] *= f
		}
		total += weights[i]
	}
	nh := float64(healthy)
	limits := make([]float64, len(p.backends))
	for i := range limits {
		if p.router.IsDown(i + 1) {
			continue // limit 0: no budget, no actuation
		}
		if total <= 0 {
			// Nothing routed anywhere yet: equal split over the living.
			limits[i] = p.cfg.Total / nh
			continue
		}
		// Proportional share with a floor: the floored fraction is
		// reserved equally, the remainder follows weighted demand.
		reserved := p.cfg.MinShare * nh
		share := p.cfg.MinShare + (1-reserved)*(weights[i]/total)
		limits[i] = p.cfg.Total * share
	}
	for i, b := range p.backends {
		if limits[i] > 0 {
			b.QS.SetSystemCostLimit(limits[i])
		}
	}
	if p.cfg.Migrate {
		p.migrate()
	}
	if len(p.onPlan) > 0 {
		plan := FleetPlan{Time: simclock.Time(p.clockNow()), Demand: append([]float64(nil), p.ewma...), Limits: limits}
		for _, fn := range p.onPlan {
			fn(plan)
		}
	}
}

// migrate is the migration-before-shedding policy, run each tick over
// the survivors' latest solver verdicts. An infeasible backend's
// binding class is drained to the healthy peer with the least smoothed
// demand (lowest roster index on ties); the drain ends when the source
// plans feasibly again (or dies). Only when no healthy peer exists —
// the whole fleet is down to one box that still cannot meet its goals —
// does the planner concede a shed verdict, which it re-emits every tick
// the condition persists.
func (p *Planner) migrate() {
	for _, m := range p.router.Migrations() {
		if p.router.IsDown(m.Source) {
			p.router.ClearMigration(m.Class)
			p.decide(FleetDecision{Event: "migration-end", Backend: m.Source, Class: m.Class})
			continue
		}
		rec, ok := p.backends[m.Source-1].QS.LastPlan()
		if ok && !rec.Held && !rec.Search.Infeasible {
			p.router.ClearMigration(m.Class)
			p.decide(FleetDecision{Event: "migration-end", Backend: m.Source, Class: m.Class})
		}
	}
	for i, b := range p.backends {
		if p.router.IsDown(i + 1) {
			continue
		}
		rec, ok := b.QS.LastPlan()
		if !ok || rec.Held || !rec.Search.Infeasible {
			continue
		}
		class := rec.Search.Binding
		if class == 0 || p.router.MigrationSource(class) != 0 {
			continue // no binding class named, or a drain is already running
		}
		target := -1
		for j := range p.backends {
			if j == i || p.router.IsDown(j+1) {
				continue
			}
			if target < 0 || p.ewma[j] < p.ewma[target] {
				target = j
			}
		}
		if target < 0 {
			p.decide(FleetDecision{Event: "shed", Backend: i + 1, Class: class})
			continue
		}
		p.router.SetMigration(class, i+1)
		p.decide(FleetDecision{Event: "migration", Backend: i + 1, Class: class, Target: target + 1})
	}
}

// decide stamps and fans out one fleet decision.
func (p *Planner) decide(d FleetDecision) {
	d.Time = simclock.Time(p.clockNow())
	for _, fn := range p.onDecision {
		fn(d)
	}
}

// clockNow reads the shared clock through any backend's engine.
func (p *Planner) clockNow() float64 {
	return float64(p.backends[0].Eng.Clock().Now())
}
