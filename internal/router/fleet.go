// The hierarchical fleet planner: the top layer of the two-level
// budget split. Each interval it harvests the router's per-backend
// routed-cost demand, folds it into an EWMA, and re-targets every
// backend's SystemCostLimit proportionally — the per-backend Query
// Schedulers then run the existing per-class solver, unchanged,
// against their share. A single-backend fleet degenerates to handing
// the whole budget to backend 1, which is exactly the classic rig.
package router

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/simclock"
)

// PlannerConfig tunes the fleet budget split.
type PlannerConfig struct {
	// Interval is the seconds between splits (typically the control
	// interval of the per-backend schedulers).
	Interval float64
	// Total is the global system cost budget to divide.
	Total float64
	// Alpha is the demand EWMA smoothing factor in (0, 1]; higher
	// tracks routed demand faster. Zero = DefaultAlpha.
	Alpha float64
	// MinShare is the budget fraction every backend keeps even with
	// zero routed demand, so an idle backend can still admit the first
	// queries routed its way. Zero = DefaultMinShare.
	MinShare float64
}

// Planner defaults.
const (
	DefaultAlpha    = 0.3
	DefaultMinShare = 0.1
)

// FleetPlan records one budget split, for logging and tests.
type FleetPlan struct {
	Time simclock.Time
	// Demand[i] is roster backend i's smoothed routed-cost demand.
	Demand []float64
	// Limits[i] is the SystemCostLimit handed to roster backend i.
	Limits []float64
}

// Planner re-splits the global budget across a fleet each interval.
type Planner struct {
	router   *Router
	backends []*backend.Instance
	cfg      PlannerConfig

	ewma   []float64
	ticker *simclock.Ticker
	onPlan []func(FleetPlan)
}

// StartPlanner arms the fleet budget split on the shared clock. The
// first split fires one interval in; until then every backend runs on
// the equal initial split applied here.
func StartPlanner(clock *simclock.Clock, r *Router, backends []*backend.Instance, cfg PlannerConfig) *Planner {
	if len(backends) == 0 {
		panic("router: planner with no backends")
	}
	if cfg.Interval <= 0 {
		panic(fmt.Sprintf("router: non-positive planner interval %v", cfg.Interval))
	}
	if cfg.Total <= 0 {
		panic(fmt.Sprintf("router: non-positive fleet budget %v", cfg.Total))
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		panic(fmt.Sprintf("router: planner alpha %v outside (0, 1]", cfg.Alpha))
	}
	if cfg.MinShare == 0 {
		cfg.MinShare = DefaultMinShare
	}
	if cfg.MinShare < 0 || cfg.MinShare*float64(len(backends)) >= 1 {
		panic(fmt.Sprintf("router: planner min share %v infeasible for %d backends", cfg.MinShare, len(backends)))
	}
	p := &Planner{
		router:   r,
		backends: backends,
		cfg:      cfg,
		ewma:     make([]float64, len(backends)),
	}
	// Equal initial split: no demand observed yet.
	equal := cfg.Total / float64(len(backends))
	for _, b := range backends {
		b.QS.SetSystemCostLimit(equal)
	}
	p.ticker = clock.StartTicker(cfg.Interval, p.tick)
	return p
}

// OnPlan registers a split listener.
func (p *Planner) OnPlan(fn func(FleetPlan)) { p.onPlan = append(p.onPlan, fn) }

// tick is one fleet planning cycle: harvest routed demand, smooth,
// split the budget proportionally with the min-share floor, and
// re-target every backend's scheduler.
func (p *Planner) tick() {
	cost := p.router.TakeCost()
	total := 0.0
	for i := range p.ewma {
		p.ewma[i] = (1-p.cfg.Alpha)*p.ewma[i] + p.cfg.Alpha*cost[i]
		total += p.ewma[i]
	}
	n := float64(len(p.backends))
	limits := make([]float64, len(p.backends))
	if total <= 0 {
		// Nothing routed anywhere yet: hold the equal split.
		for i := range limits {
			limits[i] = p.cfg.Total / n
		}
	} else {
		// Proportional share with a floor: the floored fraction is
		// reserved equally, the remainder follows demand.
		reserved := p.cfg.MinShare * n
		for i := range limits {
			share := p.cfg.MinShare + (1-reserved)*(p.ewma[i]/total)
			limits[i] = p.cfg.Total * share
		}
	}
	for i, b := range p.backends {
		b.QS.SetSystemCostLimit(limits[i])
	}
	if len(p.onPlan) > 0 {
		plan := FleetPlan{Time: simclock.Time(p.clockNow()), Demand: append([]float64(nil), p.ewma...), Limits: limits}
		for _, fn := range p.onPlan {
			fn(plan)
		}
	}
}

// clockNow reads the shared clock through any backend's engine.
func (p *Planner) clockNow() float64 {
	return float64(p.backends[0].Eng.Clock().Now())
}
