package router

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// stub is a scriptable Backend: a real engine (Submit must land
// somewhere) with queue/load/affinity signals set by the test.
type stub struct {
	id    int
	eng   *engine.Engine
	queue int
	load  float64
	aff   map[engine.ClassID]float64
}

func newStub(id int, clock *simclock.Clock) *stub {
	return &stub{id: id, eng: engine.New(engine.DefaultConfig(), clock)}
}

func (s *stub) ID() int                { return s.id }
func (s *stub) Name() string           { return "stub" }
func (s *stub) Engine() *engine.Engine { return s.eng }
func (s *stub) QueueDepth() int        { return s.queue }
func (s *stub) Load() float64          { return s.load }
func (s *stub) Affinity(class engine.ClassID) float64 {
	if w, ok := s.aff[class]; ok {
		return w
	}
	return 1
}

func testRouter(t *testing.T, scorers []Weighted) (*Router, []*stub) {
	t.Helper()
	clock := simclock.New()
	stubs := []*stub{newStub(1, clock), newStub(2, clock), newStub(3, clock)}
	bs := make([]backend.Backend, len(stubs))
	for i, s := range stubs {
		bs[i] = s
	}
	return New(bs, scorers), stubs
}

func submitOne(r *Router, class engine.ClassID) *engine.Query {
	q := r.AcquireQuery()
	q.Class = class
	q.Cost = 100
	q.Demand = engine.Demand{Work: 1, CPURate: 0.1, IORate: 0.1}
	r.Submit(q)
	return q
}

func TestRouterPrefersShortQueue(t *testing.T) {
	r, stubs := testRouter(t, []Weighted{{Scorer: QueueDepth{}, Weight: 1}})
	stubs[0].queue = 5
	stubs[1].queue = 0
	stubs[2].queue = 5
	submitOne(r, 1)
	if got := r.Routed(); got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("routed = %v, want the empty-queue backend", got)
	}
}

func TestRouterPrefersLightLoad(t *testing.T) {
	r, stubs := testRouter(t, []Weighted{{Scorer: Load{}, Weight: 1}})
	stubs[0].load = 1.5
	stubs[1].load = 1.0
	stubs[2].load = 0.2
	submitOne(r, 1)
	if got := r.Routed(); got[2] != 1 {
		t.Fatalf("routed = %v, want the least-loaded backend", got)
	}
}

func TestRouterAffinityBias(t *testing.T) {
	r, stubs := testRouter(t, DefaultScorers())
	stubs[2].aff = map[engine.ClassID]float64{3: 4}
	submitOne(r, 3)
	if got := r.Routed(); got[2] != 1 {
		t.Fatalf("routed = %v, want the high-affinity backend for class 3", got)
	}
	// A class without the bias falls back to the tie-break.
	submitOne(r, 1)
	if got := r.Routed(); got[0] != 1 {
		t.Fatalf("routed = %v, want backend 1 for the unbiased class", got)
	}
}

func TestRouterTieBreaksLowestIndex(t *testing.T) {
	r, _ := testRouter(t, DefaultScorers())
	for i := 0; i < 3; i++ {
		submitOne(r, 1)
	}
	// Identical backends: every decision must tie-break to index 0 (the
	// submitted queries start executing, so load stays equal too — the
	// stubs report scripted signals, not engine state).
	if got := r.Routed(); got[0] != 3 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("routed = %v, want all on the first backend", got)
	}
}

func TestRouterDecisionHookAndTallies(t *testing.T) {
	r, stubs := testRouter(t, []Weighted{{Scorer: QueueDepth{}, Weight: 1}})
	stubs[0].queue = 9
	stubs[2].queue = 9
	var decisions []Decision
	var ids []engine.QueryID
	r.OnRoute(func(q *engine.Query, d Decision) {
		decisions = append(decisions, Decision{Backend: d.Backend, Scores: append([]float64(nil), d.Scores...)})
		ids = append(ids, q.ID)
	})
	q := submitOne(r, 2)
	if len(decisions) != 1 || decisions[0].Backend != 2 {
		t.Fatalf("decisions = %+v, want one decision for backend 2", decisions)
	}
	if len(decisions[0].Scores) != 3 {
		t.Fatalf("decision carries %d scores, want 3", len(decisions[0].Scores))
	}
	if ids[0] == 0 || ids[0] != q.ID {
		t.Fatalf("hook saw query ID %d, want the engine-assigned %d", ids[0], q.ID)
	}
	cost := r.TakeCost()
	if cost[1] != 100 || cost[0] != 0 {
		t.Fatalf("TakeCost = %v, want 100 on backend 2", cost)
	}
	if again := r.TakeCost(); again[1] != 0 {
		t.Fatalf("TakeCost did not reset: %v", again)
	}
}

func TestRouterCheckpointRoundtrip(t *testing.T) {
	r, _ := testRouter(t, DefaultScorers())
	submitOne(r, 1)
	submitOne(r, 1)
	st := r.CheckpointState()

	r2, _ := testRouter(t, DefaultScorers())
	r2.RestoreCheckpoint(st)
	if got, want := r2.Routed(), r.Routed(); got[0] != want[0] {
		t.Fatalf("restored routed = %v, want %v", got, want)
	}
	if got := r2.TakeCost(); got[0] != 200 {
		t.Fatalf("restored cost = %v, want 200 on backend 1", got)
	}
}

// fleetPair builds two real backends with control stacks on one clock —
// the smallest fleet the planner can split a budget across.
func fleetPair(t *testing.T) (*simclock.Clock, *Router, []*backend.Instance) {
	t.Helper()
	clock := simclock.New()
	classes := []*workload.Class{
		{ID: 1, Name: "Class 1", Kind: workload.OLAP, Goal: workload.Goal{Metric: workload.Velocity, Target: 0.4}, Importance: 1},
	}
	qsCfg := core.DefaultConfig()
	qsCfg.SystemCostLimit = 30000
	var instances []*backend.Instance
	var bs []backend.Backend
	for i := 1; i <= 2; i++ {
		b := backend.New(i, backend.Spec{Name: "b"}, clock)
		b.AttachControl(qsCfg, classes, []engine.ClassID{1}, nil)
		instances = append(instances, b)
		bs = append(bs, b)
	}
	return clock, New(bs, DefaultScorers()), instances
}

func TestPlannerSplitsBudgetByDemand(t *testing.T) {
	clock, r, instances := fleetPair(t)
	p := StartPlanner(clock, r, instances, PlannerConfig{Interval: 60, Total: 30000})

	// Initial split is equal.
	for i, b := range instances {
		if got := b.QS.Config().SystemCostLimit; got != 15000 {
			t.Fatalf("backend %d initial limit = %v, want 15000", i+1, got)
		}
	}

	var plans []FleetPlan
	p.OnPlan(func(fp FleetPlan) { plans = append(plans, fp) })

	// All demand lands on backend 1.
	r.cost[0] = 10000
	clock.RunUntil(61)
	if len(plans) != 1 {
		t.Fatalf("planner fired %d times, want 1", len(plans))
	}
	l := plans[0].Limits
	if l[0] <= l[1] {
		t.Fatalf("limits %v: demand-heavy backend should get the larger share", l)
	}
	if sum := l[0] + l[1]; sum < 29999 || sum > 30001 {
		t.Fatalf("limits %v do not sum to the total budget", l)
	}
	// The floor keeps the idle backend alive.
	if l[1] < 30000*DefaultMinShare-1 {
		t.Fatalf("idle backend limit %v fell below the min-share floor", l[1])
	}
	for i, b := range instances {
		//lint:ignore floateq the limit is actuated verbatim from the plan
		if got := b.QS.Config().SystemCostLimit; got != l[i] {
			t.Fatalf("backend %d limit = %v, want actuated %v", i+1, got, l[i])
		}
	}
}

func TestPlannerCheckpointRoundtrip(t *testing.T) {
	clock, r, instances := fleetPair(t)
	p := StartPlanner(clock, r, instances, PlannerConfig{Interval: 60, Total: 30000})
	r.cost[0] = 5000
	clock.RunUntil(61)
	st := p.CheckpointState()
	if len(st.EWMA) != 2 || st.EWMA[0] == 0 {
		t.Fatalf("checkpoint EWMA %v should carry the folded demand", st.EWMA)
	}

	clock2, r2, instances2 := fleetPair(t)
	p2 := StartPlanner(clock2, r2, instances2, PlannerConfig{Interval: 60, Total: 30000})
	clock2.Restore(clock.State())
	p2.RestoreCheckpoint(st)
	got := p2.CheckpointState()
	if got.EWMA[0] != st.EWMA[0] || got.EWMA[1] != st.EWMA[1] {
		t.Fatalf("restored EWMA %v, want %v", got.EWMA, st.EWMA)
	}
}
