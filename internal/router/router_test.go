package router

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// stub is a scriptable Backend: a real engine (Submit must land
// somewhere) with queue/load/affinity signals set by the test.
type stub struct {
	id    int
	eng   *engine.Engine
	queue int
	load  float64
	aff   map[engine.ClassID]float64
}

func newStub(id int, clock *simclock.Clock) *stub {
	return &stub{id: id, eng: engine.New(engine.DefaultConfig(), clock)}
}

func (s *stub) ID() int                { return s.id }
func (s *stub) Name() string           { return "stub" }
func (s *stub) Engine() *engine.Engine { return s.eng }
func (s *stub) QueueDepth() int        { return s.queue }
func (s *stub) Load() float64          { return s.load }
func (s *stub) Affinity(class engine.ClassID) float64 {
	if w, ok := s.aff[class]; ok {
		return w
	}
	return 1
}
func (s *stub) Evacuate() []*engine.Query { return s.eng.Evacuate() }

func testRouter(t *testing.T, scorers []Weighted) (*Router, []*stub) {
	t.Helper()
	clock := simclock.New()
	stubs := []*stub{newStub(1, clock), newStub(2, clock), newStub(3, clock)}
	bs := make([]backend.Backend, len(stubs))
	for i, s := range stubs {
		bs[i] = s
	}
	return New(bs, scorers), stubs
}

func submitOne(r *Router, class engine.ClassID) *engine.Query {
	q := r.AcquireQuery()
	q.Class = class
	q.Cost = 100
	q.Demand = engine.Demand{Work: 1, CPURate: 0.1, IORate: 0.1}
	r.Submit(q)
	return q
}

func TestRouterPrefersShortQueue(t *testing.T) {
	r, stubs := testRouter(t, []Weighted{{Scorer: QueueDepth{}, Weight: 1}})
	stubs[0].queue = 5
	stubs[1].queue = 0
	stubs[2].queue = 5
	submitOne(r, 1)
	if got := r.Routed(); got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("routed = %v, want the empty-queue backend", got)
	}
}

func TestRouterPrefersLightLoad(t *testing.T) {
	r, stubs := testRouter(t, []Weighted{{Scorer: Load{}, Weight: 1}})
	stubs[0].load = 1.5
	stubs[1].load = 1.0
	stubs[2].load = 0.2
	submitOne(r, 1)
	if got := r.Routed(); got[2] != 1 {
		t.Fatalf("routed = %v, want the least-loaded backend", got)
	}
}

func TestRouterAffinityBias(t *testing.T) {
	r, stubs := testRouter(t, DefaultScorers())
	stubs[2].aff = map[engine.ClassID]float64{3: 4}
	submitOne(r, 3)
	if got := r.Routed(); got[2] != 1 {
		t.Fatalf("routed = %v, want the high-affinity backend for class 3", got)
	}
	// A class without the bias falls back to the tie-break.
	submitOne(r, 1)
	if got := r.Routed(); got[0] != 1 {
		t.Fatalf("routed = %v, want backend 1 for the unbiased class", got)
	}
}

func TestRouterTieBreaksLowestIndex(t *testing.T) {
	r, _ := testRouter(t, DefaultScorers())
	for i := 0; i < 3; i++ {
		submitOne(r, 1)
	}
	// Identical backends: every decision must tie-break to index 0 (the
	// submitted queries start executing, so load stays equal too — the
	// stubs report scripted signals, not engine state).
	if got := r.Routed(); got[0] != 3 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("routed = %v, want all on the first backend", got)
	}
}

func TestRouterDecisionHookAndTallies(t *testing.T) {
	r, stubs := testRouter(t, []Weighted{{Scorer: QueueDepth{}, Weight: 1}})
	stubs[0].queue = 9
	stubs[2].queue = 9
	var decisions []Decision
	var ids []engine.QueryID
	r.OnRoute(func(q *engine.Query, d Decision) {
		decisions = append(decisions, Decision{Backend: d.Backend, Scores: append([]float64(nil), d.Scores...)})
		ids = append(ids, q.ID)
	})
	q := submitOne(r, 2)
	if len(decisions) != 1 || decisions[0].Backend != 2 {
		t.Fatalf("decisions = %+v, want one decision for backend 2", decisions)
	}
	if len(decisions[0].Scores) != 3 {
		t.Fatalf("decision carries %d scores, want 3", len(decisions[0].Scores))
	}
	if ids[0] == 0 || ids[0] != q.ID {
		t.Fatalf("hook saw query ID %d, want the engine-assigned %d", ids[0], q.ID)
	}
	cost := r.TakeCost()
	if cost[1] != 100 || cost[0] != 0 {
		t.Fatalf("TakeCost = %v, want 100 on backend 2", cost)
	}
	if again := r.TakeCost(); again[1] != 0 {
		t.Fatalf("TakeCost did not reset: %v", again)
	}
}

func TestRouterCheckpointRoundtrip(t *testing.T) {
	r, _ := testRouter(t, DefaultScorers())
	submitOne(r, 1)
	submitOne(r, 1)
	st := r.CheckpointState()

	r2, _ := testRouter(t, DefaultScorers())
	r2.RestoreCheckpoint(st)
	if got, want := r2.Routed(), r.Routed(); got[0] != want[0] {
		t.Fatalf("restored routed = %v, want %v", got, want)
	}
	if got := r2.TakeCost(); got[0] != 200 {
		t.Fatalf("restored cost = %v, want 200 on backend 1", got)
	}
}

// fleetPair builds two real backends with control stacks on one clock —
// the smallest fleet the planner can split a budget across.
func fleetPair(t *testing.T) (*simclock.Clock, *Router, []*backend.Instance) {
	t.Helper()
	clock := simclock.New()
	classes := []*workload.Class{
		{ID: 1, Name: "Class 1", Kind: workload.OLAP, Goal: workload.Goal{Metric: workload.Velocity, Target: 0.4}, Importance: 1},
	}
	qsCfg := core.DefaultConfig()
	qsCfg.SystemCostLimit = 30000
	var instances []*backend.Instance
	var bs []backend.Backend
	for i := 1; i <= 2; i++ {
		b := backend.New(i, backend.Spec{Name: "b"}, clock)
		b.AttachControl(qsCfg, classes, []engine.ClassID{1}, nil)
		instances = append(instances, b)
		bs = append(bs, b)
	}
	return clock, New(bs, DefaultScorers()), instances
}

func TestPlannerSplitsBudgetByDemand(t *testing.T) {
	clock, r, instances := fleetPair(t)
	p := StartPlanner(clock, r, instances, PlannerConfig{Interval: 60, Total: 30000})

	// Initial split is equal.
	for i, b := range instances {
		if got := b.QS.Config().SystemCostLimit; got != 15000 {
			t.Fatalf("backend %d initial limit = %v, want 15000", i+1, got)
		}
	}

	var plans []FleetPlan
	p.OnPlan(func(fp FleetPlan) { plans = append(plans, fp) })

	// All demand lands on backend 1.
	r.cost[0] = 10000
	clock.RunUntil(61)
	if len(plans) != 1 {
		t.Fatalf("planner fired %d times, want 1", len(plans))
	}
	l := plans[0].Limits
	if l[0] <= l[1] {
		t.Fatalf("limits %v: demand-heavy backend should get the larger share", l)
	}
	if sum := l[0] + l[1]; sum < 29999 || sum > 30001 {
		t.Fatalf("limits %v do not sum to the total budget", l)
	}
	// The floor keeps the idle backend alive.
	if l[1] < 30000*DefaultMinShare-1 {
		t.Fatalf("idle backend limit %v fell below the min-share floor", l[1])
	}
	for i, b := range instances {
		//lint:ignore floateq the limit is actuated verbatim from the plan
		if got := b.QS.Config().SystemCostLimit; got != l[i] {
			t.Fatalf("backend %d limit = %v, want actuated %v", i+1, got, l[i])
		}
	}
}

func TestPlannerCheckpointRoundtrip(t *testing.T) {
	clock, r, instances := fleetPair(t)
	p := StartPlanner(clock, r, instances, PlannerConfig{Interval: 60, Total: 30000})
	r.cost[0] = 5000
	clock.RunUntil(61)
	st := p.CheckpointState()
	if len(st.EWMA) != 2 || st.EWMA[0] == 0 {
		t.Fatalf("checkpoint EWMA %v should carry the folded demand", st.EWMA)
	}

	clock2, r2, instances2 := fleetPair(t)
	p2 := StartPlanner(clock2, r2, instances2, PlannerConfig{Interval: 60, Total: 30000})
	clock2.Restore(clock.State())
	p2.RestoreCheckpoint(st)
	got := p2.CheckpointState()
	if got.EWMA[0] != st.EWMA[0] || got.EWMA[1] != st.EWMA[1] {
		t.Fatalf("restored EWMA %v, want %v", got.EWMA, st.EWMA)
	}
}

func TestRouterFailoverRedispatchesToSurvivors(t *testing.T) {
	r, _ := testRouter(t, DefaultScorers())
	type hop struct{ from, to int }
	var hops []hop
	r.OnReroute(func(q *engine.Query, from, to int) { hops = append(hops, hop{from, to}) })
	q := submitOne(r, 1) // equal backends: tie-break routes to backend 1
	if got := r.Routed(); got[0] != 1 {
		t.Fatalf("routed = %v, want the query on backend 1", got)
	}
	moved := r.MarkDown(1)
	if moved != 1 {
		t.Fatalf("MarkDown moved %d queries, want 1", moved)
	}
	if q.Attempt != 1 {
		t.Errorf("re-dispatched query Attempt = %d, want 1 (continuation marker)", q.Attempt)
	}
	// The survivor with the lowest roster index takes the evacuee.
	if got := r.Routed(); got[1] != 1 {
		t.Errorf("routed = %v, want the evacuee on backend 2", got)
	}
	if len(hops) != 1 || hops[0] != (hop{1, 2}) {
		t.Errorf("reroute hops = %v, want one 1->2", hops)
	}
	if !r.IsDown(1) || r.HealthyCount() != 2 {
		t.Errorf("IsDown(1)=%v healthy=%d, want down with 2 survivors", r.IsDown(1), r.HealthyCount())
	}
	// Marking an already-down backend again is a no-op.
	if again := r.MarkDown(1); again != 0 {
		t.Errorf("second MarkDown moved %d queries, want 0", again)
	}
}

// The tie-break regression the failover path must preserve: a backend
// removed mid-tick leaves ties to the lowest surviving index, and a
// rejoined backend immediately wins ties again.
func TestRouterRemovalAndRejoinTieBreak(t *testing.T) {
	r, _ := testRouter(t, DefaultScorers())
	r.MarkDown(1)
	submitOne(r, 1)
	if got := r.Routed(); got[1] != 1 || got[0] != 0 {
		t.Fatalf("routed = %v, want ties on backend 2 while 1 is down", got)
	}
	r.MarkUp(1)
	submitOne(r, 1)
	if got := r.Routed(); got[0] != 1 {
		t.Fatalf("routed = %v, want the rejoined backend 1 to win ties again", got)
	}
}

func TestRouterLastHealthyBackendDownPanics(t *testing.T) {
	r, _ := testRouter(t, DefaultScorers())
	r.MarkDown(1)
	r.MarkDown(2)
	defer func() {
		if recover() == nil {
			t.Fatal("marking the last healthy backend down did not panic")
		}
	}()
	r.MarkDown(3)
}

func TestRouterMigrationDrainsOnlyTheClass(t *testing.T) {
	r, _ := testRouter(t, DefaultScorers())
	r.SetMigration(1, 1)
	submitOne(r, 1)
	submitOne(r, 2)
	got := r.Routed()
	if got[1] != 1 {
		t.Errorf("routed = %v, want the drained class on backend 2", got)
	}
	if got[0] != 1 {
		t.Errorf("routed = %v, want the unmigrated class still on backend 1", got)
	}
	r.ClearMigration(1)
	submitOne(r, 1)
	if got := r.Routed(); got[0] != 2 {
		t.Errorf("routed = %v, want backend 1 to win ties again after the drain ends", got)
	}
}

func TestRouterMigrationSourceIsLastResort(t *testing.T) {
	r, _ := testRouter(t, DefaultScorers())
	r.MarkDown(2)
	r.MarkDown(3)
	r.SetMigration(1, 1)
	submitOne(r, 1)
	if got := r.Routed(); got[0] != 1 {
		t.Fatalf("routed = %v, want the migration source used when it is the only healthy backend", got)
	}
}

func TestRouterDegradedFactorBounds(t *testing.T) {
	r, _ := testRouter(t, DefaultScorers())
	r.MarkDegraded(2, 0.25)
	if got := r.DegradedFactor(2); got != 0.25 {
		t.Fatalf("DegradedFactor = %v, want 0.25", got)
	}
	// A degraded backend still routes (only the planner discounts it).
	r.MarkDown(1)
	submitOne(r, 1)
	if got := r.Routed(); got[1] != 1 {
		t.Errorf("routed = %v, want the degraded backend still accepting queries", got)
	}
	r.ClearDegraded(2)
	if got := r.DegradedFactor(2); got != 0 {
		t.Fatalf("DegradedFactor after clear = %v, want 0", got)
	}
	for _, bad := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() { recover() }()
			r.MarkDegraded(2, bad)
			t.Errorf("MarkDegraded(%v) did not panic", bad)
		}()
	}
}
