// Checkpoint state for the routing tier. The router's tallies and the
// planner's demand EWMA are run state — a resumed fleet must keep
// splitting the budget from the same smoothed demand, and the planner's
// ticker must re-arm with its original event identity so tick ordering
// reproduces the uninterrupted run exactly.
package router

import "repro/internal/simclock"

// CheckpointState is the router's serializable state.
type CheckpointState struct {
	// Routed / Cost mirror the per-backend tallies, roster order.
	Routed []int64
	Cost   []float64
	// Down / Degraded are the health model, roster order; Migrations
	// are the active class drains, sorted by class. A resume past a
	// failover restores the failed-over fleet without replaying the
	// failover itself.
	Down       []bool
	Degraded   []float64
	Migrations []MigrationRecord
}

// CheckpointState captures the router at a quiescent boundary.
func (r *Router) CheckpointState() CheckpointState {
	return CheckpointState{
		Routed:     append([]int64(nil), r.routed...),
		Cost:       append([]float64(nil), r.cost...),
		Down:       append([]bool(nil), r.down...),
		Degraded:   append([]float64(nil), r.degraded...),
		Migrations: r.Migrations(),
	}
}

// RestoreCheckpoint overwrites a freshly constructed router.
func (r *Router) RestoreCheckpoint(st CheckpointState) {
	if len(st.Routed) != len(r.routed) || len(st.Cost) != len(r.cost) {
		panic("router: checkpoint roster size mismatch")
	}
	copy(r.routed, st.Routed)
	copy(r.cost, st.Cost)
	// Down/Degraded may be absent in pre-failover checkpoints (all
	// healthy); a roster mismatch otherwise is still an error.
	if len(st.Down) > 0 {
		if len(st.Down) != len(r.down) {
			panic("router: checkpoint roster size mismatch")
		}
		copy(r.down, st.Down)
	}
	if len(st.Degraded) > 0 {
		if len(st.Degraded) != len(r.degraded) {
			panic("router: checkpoint roster size mismatch")
		}
		copy(r.degraded, st.Degraded)
	}
	r.migrations = nil
	for _, m := range st.Migrations {
		r.SetMigration(m.Class, m.Source)
	}
}

// PlannerCheckpointState is the fleet planner's serializable state.
type PlannerCheckpointState struct {
	EWMA   []float64
	Ticker simclock.TickerState
}

// CheckpointState captures the planner at a quiescent boundary.
func (p *Planner) CheckpointState() PlannerCheckpointState {
	return PlannerCheckpointState{
		EWMA:   append([]float64(nil), p.ewma...),
		Ticker: p.ticker.State(),
	}
}

// RestoreCheckpoint overwrites a freshly started planner and re-arms
// its ticker with the checkpointed event identity.
func (p *Planner) RestoreCheckpoint(st PlannerCheckpointState) {
	if len(st.EWMA) != len(p.ewma) {
		panic("router: planner checkpoint roster size mismatch")
	}
	copy(p.ewma, st.EWMA)
	p.ticker.Restore(st.Ticker.Ref, st.Ticker.Active)
}
