// The router's backend health model — the fleet's failover mechanism.
//
// A backend dies (MarkDown) and the router removes it from scoring and
// deterministically re-dispatches everything it held to the survivors:
// admission-held queries in arrival order, then executing queries by
// ID, then pending retries by event sequence. Each re-dispatch is an
// ordinary Submit, so it consumes clock sequence numbers exactly the
// same way on every run — byte-identity under -parallel N and across
// checkpoint -resume follows from the order being a pure function of
// simulation state. A recovered backend (MarkUp) rejoins scoring
// empty; the fleet planner's min-share floor is its warm-up budget
// until routed demand rebuilds its EWMA.
package router

import (
	"fmt"
	"sort"

	"repro/internal/engine"
)

// OnReroute registers a failover re-dispatch listener, fired once per
// evacuated query after it lands on a survivor: (query, dead backend's
// 1-based ID, new backend's 1-based ID). The trace layer uses this to
// emit re-route events.
func (r *Router) OnReroute(fn func(q *engine.Query, from, to int)) {
	r.onReroute = append(r.onReroute, fn)
}

// MarkDown fails backend id (1-based): it leaves the scoring set and
// everything it held is re-dispatched to the survivors in evacuation
// order. Returns the number of queries moved. Marking the last healthy
// backend down panics — a fleet with nowhere to route cannot continue
// deterministically. Already-down backends are a no-op.
func (r *Router) MarkDown(id int) int {
	i := r.rosterIndex(id)
	if r.down[i] {
		return 0
	}
	r.down[i] = true
	if r.HealthyCount() == 0 {
		panic("router: every backend is down")
	}
	evac := r.backends[i].Evacuate()
	for _, q := range evac {
		// The bump marks the re-dispatch as a continuation of the same
		// logical query (monitors and collectors skip Attempt > 0
		// arrivals) and invalidates any stale per-attempt fault events
		// still armed against the dead backend.
		q.Attempt++
		r.Submit(q)
		for _, fn := range r.onReroute {
			fn(q, id, r.lastBackend)
		}
	}
	return len(evac)
}

// MarkUp returns a recovered backend (1-based) to the scoring set. It
// rejoins empty — its queue-depth and load scores make it immediately
// attractive, and the planner's min-share floor gives it admission
// budget until demand rebuilds.
func (r *Router) MarkUp(id int) {
	r.down[r.rosterIndex(id)] = false
}

// MarkDegraded records a brownout factor in (0, 1) for backend id: the
// backend keeps routing, but the fleet planner discounts its demand by
// the factor when splitting the budget.
func (r *Router) MarkDegraded(id int, factor float64) {
	if factor <= 0 || factor >= 1 {
		panic(fmt.Sprintf("router: degraded factor %v outside (0, 1)", factor))
	}
	r.degraded[r.rosterIndex(id)] = factor
}

// ClearDegraded ends backend id's brownout.
func (r *Router) ClearDegraded(id int) {
	r.degraded[r.rosterIndex(id)] = 0
}

// IsDown reports whether backend id (1-based) is out of the scoring set.
func (r *Router) IsDown(id int) bool { return r.down[r.rosterIndex(id)] }

// DegradedFactor returns backend id's brownout factor (0 = healthy).
func (r *Router) DegradedFactor(id int) float64 { return r.degraded[r.rosterIndex(id)] }

// HealthyCount returns the number of backends in the scoring set.
func (r *Router) HealthyCount() int {
	n := 0
	for _, d := range r.down {
		if !d {
			n++
		}
	}
	return n
}

// SetMigration drains class demand off backend source (1-based): new
// queries of the class route to the other healthy backends until the
// migration clears. One migration per class; setting again overwrites.
func (r *Router) SetMigration(class engine.ClassID, source int) {
	r.rosterIndex(source)
	if r.migrations == nil {
		r.migrations = make(map[engine.ClassID]int)
	}
	r.migrations[class] = source
}

// ClearMigration ends the class's drain, if any.
func (r *Router) ClearMigration(class engine.ClassID) {
	delete(r.migrations, class)
}

// MigrationSource returns the backend being drained of the class
// (0 = no active migration).
func (r *Router) MigrationSource(class engine.ClassID) int {
	return r.migrations[class]
}

// MigrationRecord is one active class drain, serialized for
// checkpoints and iterated by the planner.
type MigrationRecord struct {
	Class  engine.ClassID
	Source int
}

// Migrations returns the active drains sorted by class — the
// deterministic iteration order for checkpoints and planner policy.
func (r *Router) Migrations() []MigrationRecord {
	if len(r.migrations) == 0 {
		return nil
	}
	out := make([]MigrationRecord, 0, len(r.migrations))
	for c, s := range r.migrations {
		out = append(out, MigrationRecord{Class: c, Source: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// rosterIndex converts a 1-based backend ID to its roster index,
// panicking on IDs outside the roster.
func (r *Router) rosterIndex(id int) int {
	if id < 1 || id > len(r.backends) {
		panic(fmt.Sprintf("router: backend ID %d outside roster of %d", id, len(r.backends)))
	}
	return id - 1
}
