// Package metrics aggregates per-class performance over the experiment's
// periods — the numbers plotted in the paper's Figures 4-6: query velocity
// for the OLAP classes and average response time for the OLTP class,
// per 8-minute period.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ClassAgg accumulates one class's statistics within one period.
// Completion statistics bucket by DoneTime; Submitted buckets by
// SubmitTime, so within one period the two count different query sets.
type ClassAgg struct {
	Completed int
	// Submitted counts queries that arrived during the period, whether
	// or not they finished — the denominator that keeps still-queued and
	// still-running work visible (see Collector.Pending). Retries of an
	// already-counted query are not new arrivals and are excluded.
	Submitted int
	// Failed counts queries that ended the period aborted with no retry
	// left — terminal failures, bucketed by their failure time.
	Failed   int
	Velocity stats.Summary // per-query velocity of completions
	Resp     stats.Summary // response times
	Exec     stats.Summary // execution times
	Cost     stats.Summary // timeron costs of completions
	// RespSample is a fixed-size uniform sample of response times for
	// tail quantiles (see Collector.RespQuantile).
	RespSample *stats.Reservoir
}

// Collector listens to engine completions and buckets them by schedule
// period and class.
//
// Aggregates live in one flat slice, periods × classes, preallocated at
// construction; the per-query hooks index it with a dense class table
// (class id → slot) instead of a map lookup. Determinism is unaffected:
// the layout only changes where an aggregate lives, never the order in
// which values fold into it.
type Collector struct {
	classes  map[engine.ClassID]*workload.Class
	classIDs []engine.ClassID // ascending; defines the dense slot order
	sched    workload.Schedule
	nperiods int
	base     engine.ClassID // smallest tracked id; index is offset by it
	index    []int          // (id - base) → dense slot, -1 untracked
	aggs     []ClassAgg     // period-major: period*len(classIDs) + slot
}

// NewCollector builds a collector for the given classes and schedule and
// hooks it into the engine.
func NewCollector(eng *engine.Engine, classes []*workload.Class, sched workload.Schedule) *Collector {
	c := &Collector{
		classes:  make(map[engine.ClassID]*workload.Class),
		sched:    sched,
		nperiods: sched.Periods(),
	}
	for _, cl := range classes {
		c.classes[cl.ID] = cl
	}
	for id := range c.classes {
		c.classIDs = append(c.classIDs, id)
	}
	sort.Slice(c.classIDs, func(i, j int) bool { return c.classIDs[i] < c.classIDs[j] })
	if len(c.classIDs) > 0 {
		c.base = c.classIDs[0]
		span := int(c.classIDs[len(c.classIDs)-1]-c.base) + 1
		c.index = make([]int, span)
		for i := range c.index {
			c.index[i] = -1
		}
		for slot, id := range c.classIDs {
			c.index[id-c.base] = slot
		}
	}
	c.aggs = make([]ClassAgg, c.nperiods*len(c.classIDs))
	for p := 0; p < c.nperiods; p++ {
		for slot, id := range c.classIDs {
			// Seed per period and class so runs stay reproducible.
			seed := uint64(p)*1000003 + uint64(id)
			c.aggs[p*len(c.classIDs)+slot].RespSample = stats.NewReservoir(512, seed)
		}
	}
	c.Attach(eng)
	return c
}

// Attach subscribes the collector to an additional engine's submit and
// done hooks. A fleet run has one engine per backend but one logical
// workload; attaching the same collector to every engine folds all
// completions into a single period × class view, exactly as if one
// engine had run them.
func (c *Collector) Attach(eng *engine.Engine) {
	eng.OnSubmit(c.onSubmit)
	eng.OnDone(c.onDone)
}

// agg returns the aggregate for a period and class, or nil when the class
// is untracked. The period must be in range.
func (c *Collector) agg(period int, class engine.ClassID) *ClassAgg {
	i := int(class - c.base)
	if i < 0 || i >= len(c.index) {
		return nil
	}
	slot := c.index[i]
	if slot < 0 {
		return nil
	}
	return &c.aggs[period*len(c.classIDs)+slot]
}

//qlint:hotpath
func (c *Collector) onSubmit(q *engine.Query) {
	if q.Attempt > 0 {
		return // a retry re-enters the engine but is not a new arrival
	}
	agg := c.agg(c.sched.PeriodAt(q.SubmitTime), q.Class)
	if agg == nil {
		return // class not tracked (e.g. ad-hoc test query)
	}
	agg.Submitted++
}

//qlint:hotpath
func (c *Collector) onDone(q *engine.Query) {
	agg := c.agg(c.sched.PeriodAt(q.DoneTime), q.Class)
	if agg == nil {
		return // class not tracked (e.g. ad-hoc test query)
	}
	if q.State != engine.StateDone {
		// Terminal failure: no velocity or response time to fold in, but
		// count it so Pending doesn't report it queued forever.
		agg.Failed++
		return
	}
	agg.Completed++
	agg.Velocity.Add(q.Velocity())
	agg.Resp.Add(q.ResponseTime())
	agg.RespSample.Add(q.ResponseTime())
	agg.Exec.Add(q.ExecutionTime())
	agg.Cost.Add(q.Cost)
}

// Classes returns the tracked classes sorted by ID — a stable order for
// rendering, whatever order they were registered in. The collector's
// internal map must never drive output directly: map iteration order is
// randomized per process (enforced tree-wide by the maporder lint check).
func (c *Collector) Classes() []*workload.Class {
	out := make([]*workload.Class, 0, len(c.classIDs))
	for _, id := range c.classIDs {
		out = append(out, c.classes[id])
	}
	return out
}

// ClassIDs returns the tracked class IDs in ascending order.
func (c *Collector) ClassIDs() []engine.ClassID {
	ids := make([]engine.ClassID, len(c.classIDs))
	copy(ids, c.classIDs)
	return ids
}

// Class returns the tracked class with the given ID, or nil.
func (c *Collector) Class(id engine.ClassID) *workload.Class { return c.classes[id] }

// Periods returns the number of schedule periods.
func (c *Collector) Periods() int { return c.nperiods }

// Agg returns the aggregate for a period and class.
func (c *Collector) Agg(period int, class engine.ClassID) *ClassAgg {
	if period < 0 || period >= c.nperiods {
		panic(fmt.Sprintf("metrics: period %d out of range", period))
	}
	agg := c.agg(period, class)
	if agg == nil {
		panic(fmt.Sprintf("metrics: unknown class %d", class))
	}
	return agg
}

// Metric returns the class's goal-metric value for a period: mean velocity
// for OLAP classes, mean response time for OLTP classes. ok is false when
// the period had nothing to measure.
//
// Terminal failures count as velocity-0 deliveries for velocity classes:
// a query that never completes violates a velocity goal maximally, so a
// class cannot "meet" its SLO by shedding queries to fault aborts.
// Response-time classes have no honest number to assign a lost query, so
// their mean stays completions-only.
func (c *Collector) Metric(period int, class engine.ClassID) (v float64, ok bool) {
	cl := c.classes[class]
	agg := c.Agg(period, class)
	if cl.Goal.Metric == workload.Velocity {
		n := agg.Completed + agg.Failed
		if n == 0 {
			return 0, false
		}
		return agg.Velocity.Sum() / float64(n), true
	}
	if agg.Completed == 0 {
		return 0, false
	}
	return agg.Resp.Mean(), true
}

// GoalMet reports whether the class met its goal in the period. Periods
// with no completions count as not measurable (false, with ok=false).
func (c *Collector) GoalMet(period int, class engine.ClassID) (met, ok bool) {
	v, ok := c.Metric(period, class)
	if !ok {
		return false, false
	}
	return c.classes[class].Goal.Met(v), true
}

// GoalSatisfaction returns, for one class, the fraction of measurable
// periods in which the goal was met.
func (c *Collector) GoalSatisfaction(class engine.ClassID) float64 {
	met, measurable := 0, 0
	for p := 0; p < c.nperiods; p++ {
		m, ok := c.GoalMet(p, class)
		if !ok {
			continue
		}
		measurable++
		if m {
			met++
		}
	}
	if measurable == 0 {
		return 0
	}
	return float64(met) / float64(measurable)
}

// Series returns the per-period goal-metric values for a class; periods
// without completions carry the previous period's value (matching how the
// paper's line plots bridge sparse periods).
func (c *Collector) Series(class engine.ClassID) []float64 {
	out := make([]float64, c.nperiods)
	last := 0.0
	for p := 0; p < c.nperiods; p++ {
		if v, ok := c.Metric(p, class); ok {
			last = v
		}
		out[p] = last
	}
	return out
}

// RespQuantile estimates the q-quantile (q in [0,1]) of a class's
// response times within a period — 0 when nothing completed.
func (c *Collector) RespQuantile(period int, class engine.ClassID, q float64) float64 {
	return c.Agg(period, class).RespSample.Quantile(q)
}

// Pending returns how many of a class's queries submitted by the end of
// the period had not completed by then — work still queued at the
// patroller or executing in the engine. Period tables that only count
// completions undercount exactly this backlog.
func (c *Collector) Pending(period int, class engine.ClassID) int {
	if period < 0 || period >= c.nperiods {
		panic(fmt.Sprintf("metrics: period %d out of range", period))
	}
	submitted, resolved := 0, 0
	for p := 0; p <= period; p++ {
		agg := c.Agg(p, class)
		submitted += agg.Submitted
		resolved += agg.Completed + agg.Failed
	}
	if pending := submitted - resolved; pending > 0 {
		return pending
	}
	// Completions can exceed submissions in early periods when the last
	// schedule period absorbs post-horizon submits (PeriodAt clamps);
	// never report negative backlog.
	return 0
}

// Throughput returns completions per second for a class in a period.
func (c *Collector) Throughput(period int, class engine.ClassID) float64 {
	agg := c.Agg(period, class)
	return float64(agg.Completed) / c.sched.PeriodSeconds
}
