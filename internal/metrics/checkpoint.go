// Checkpoint state for the period/class aggregates.
package metrics

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/stats"
)

// ClassAggState is one (period, class) aggregate's serializable state.
type ClassAggState struct {
	Class      engine.ClassID
	Completed  int
	Submitted  int
	Failed     int
	Velocity   stats.SummaryState
	Resp       stats.SummaryState
	Exec       stats.SummaryState
	Cost       stats.SummaryState
	RespSample stats.ReservoirState
}

// CheckpointState is the collector's serializable state.
type CheckpointState struct {
	// Periods[p] holds period p's per-class aggregates, sorted by class id.
	Periods [][]ClassAggState
}

// CheckpointState captures every period/class aggregate.
func (c *Collector) CheckpointState() CheckpointState {
	st := CheckpointState{Periods: make([][]ClassAggState, c.nperiods)}
	ids := c.ClassIDs()
	for p := 0; p < c.nperiods; p++ {
		for _, id := range ids {
			agg := c.Agg(p, id)
			st.Periods[p] = append(st.Periods[p], ClassAggState{
				Class:      id,
				Completed:  agg.Completed,
				Submitted:  agg.Submitted,
				Failed:     agg.Failed,
				Velocity:   agg.Velocity.State(),
				Resp:       agg.Resp.State(),
				Exec:       agg.Exec.State(),
				Cost:       agg.Cost.State(),
				RespSample: agg.RespSample.State(),
			})
		}
	}
	return st
}

// RestoreCheckpoint overwrites a freshly constructed collector. The
// collector must have been built for the same classes and schedule.
func (c *Collector) RestoreCheckpoint(st CheckpointState) {
	if len(st.Periods) != c.nperiods {
		panic(fmt.Sprintf("metrics: restore: %d checkpointed periods, collector has %d",
			len(st.Periods), c.nperiods))
	}
	for p, aggs := range st.Periods {
		for _, rec := range aggs {
			agg := c.agg(p, rec.Class)
			if agg == nil {
				panic(fmt.Sprintf("metrics: restore: class %d not tracked", rec.Class))
			}
			agg.Completed = rec.Completed
			agg.Submitted = rec.Submitted
			agg.Failed = rec.Failed
			agg.Velocity.SetState(rec.Velocity)
			agg.Resp.SetState(rec.Resp)
			agg.Exec.SetState(rec.Exec)
			agg.Cost.SetState(rec.Cost)
			agg.RespSample.SetState(rec.RespSample)
		}
	}
}
