package metrics

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/simclock"
	"repro/internal/workload"
)

func testClasses() []*workload.Class {
	return []*workload.Class{
		{ID: 1, Name: "olap", Kind: workload.OLAP, Goal: workload.Goal{Metric: workload.Velocity, Target: 0.5}, Importance: 1},
		{ID: 2, Name: "oltp", Kind: workload.OLTP, Goal: workload.Goal{Metric: workload.AvgResponseTime, Target: 1.0}, Importance: 2},
	}
}

func testSched(periods int, length float64) workload.Schedule {
	s := workload.Schedule{PeriodSeconds: length}
	for i := 0; i < periods; i++ {
		s.Clients = append(s.Clients, map[engine.ClassID]int{})
	}
	return s
}

func newRig(t *testing.T) (*Collector, *engine.Engine, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 100, IOCapacity: 100}, clock)
	col := NewCollector(eng, testClasses(), testSched(3, 10))
	return col, eng, clock
}

func submit(eng *engine.Engine, class engine.ClassID, work float64) *engine.Query {
	q := &engine.Query{Class: class, Cost: 7, Demand: engine.Demand{Work: work, CPURate: 1}}
	eng.Submit(q)
	return q
}

func TestClassesSortedByIDRegardlessOfRegistrationOrder(t *testing.T) {
	// Register the classes in descending-ID order; the accessors must
	// still return ascending IDs — report rendering iterates Classes()
	// and its order must never depend on map iteration or input order.
	classes := testClasses()
	reversed := []*workload.Class{classes[1], classes[0]}
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 100, IOCapacity: 100}, clock)
	col := NewCollector(eng, reversed, testSched(3, 10))

	ids := col.ClassIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ClassIDs() = %v, want strictly ascending", ids)
		}
	}
	got := col.Classes()
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("Classes() order = %v, want sorted by ID", []engine.ClassID{got[0].ID, got[1].ID})
	}
	if col.Class(2) == nil || col.Class(2).Name != "oltp" {
		t.Fatalf("Class(2) lookup failed")
	}
	if col.Class(42) != nil {
		t.Fatal("Class(42) should be nil for untracked ID")
	}
}

func TestCompletionsBucketedByPeriod(t *testing.T) {
	col, eng, clock := newRig(t)
	submit(eng, 1, 2)                          // completes at t=2, period 0
	clock.At(11, func() { submit(eng, 1, 2) }) // completes at 13, period 1
	clock.At(12, func() { submit(eng, 1, 2) }) // completes at 14, period 1
	clock.Run()
	if got := col.Agg(0, 1).Completed; got != 1 {
		t.Fatalf("period 0 completions = %d", got)
	}
	if got := col.Agg(1, 1).Completed; got != 2 {
		t.Fatalf("period 1 completions = %d", got)
	}
	if got := col.Agg(2, 1).Completed; got != 0 {
		t.Fatalf("period 2 completions = %d", got)
	}
}

func TestMetricSelectsByClassKind(t *testing.T) {
	col, eng, clock := newRig(t)
	submit(eng, 1, 2) // velocity 1 (no queueing)
	submit(eng, 2, 3) // RT 3
	clock.Run()
	v, ok := col.Metric(0, 1)
	if !ok || math.Abs(v-1) > 1e-9 {
		t.Fatalf("OLAP metric = %v, %v; want velocity 1", v, ok)
	}
	rt, ok := col.Metric(0, 2)
	if !ok || math.Abs(rt-3) > 1e-9 {
		t.Fatalf("OLTP metric = %v, %v; want RT 3", rt, ok)
	}
}

func TestMetricUnmeasurableWhenEmpty(t *testing.T) {
	col, _, _ := newRig(t)
	if _, ok := col.Metric(0, 1); ok {
		t.Fatal("empty period reported measurable")
	}
	if _, ok := col.GoalMet(0, 1); ok {
		t.Fatal("empty period reported goal status")
	}
}

func TestGoalMet(t *testing.T) {
	col, eng, clock := newRig(t)
	submit(eng, 2, 0.5) // RT 0.5 <= 1.0 goal
	clock.At(11, func() { submit(eng, 2, 5) })
	clock.Run()
	met, ok := col.GoalMet(0, 2)
	if !ok || !met {
		t.Fatal("period 0 OLTP goal should be met")
	}
	met, ok = col.GoalMet(1, 2)
	if !ok || met {
		t.Fatal("period 1 OLTP goal should be missed (RT 5)")
	}
}

func TestGoalSatisfactionSkipsUnmeasurable(t *testing.T) {
	col, eng, clock := newRig(t)
	submit(eng, 2, 0.5)                        // period 0: met
	clock.At(11, func() { submit(eng, 2, 5) }) // period 1: missed
	// period 2 empty: unmeasurable, excluded
	clock.Run()
	if got := col.GoalSatisfaction(2); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("satisfaction = %v, want 0.5", got)
	}
}

func TestGoalSatisfactionNoData(t *testing.T) {
	col, _, _ := newRig(t)
	if got := col.GoalSatisfaction(1); got != 0 {
		t.Fatalf("satisfaction with no data = %v", got)
	}
}

func TestSeriesBridgesEmptyPeriods(t *testing.T) {
	col, eng, clock := newRig(t)
	submit(eng, 2, 2) // period 0: RT 2
	// periods 1 and 2 empty
	clock.Run()
	s := col.Series(2)
	if len(s) != 3 {
		t.Fatalf("series length %d", len(s))
	}
	if s[0] != 2 || s[1] != 2 || s[2] != 2 {
		t.Fatalf("series = %v, want carried-forward 2s", s)
	}
}

func TestThroughput(t *testing.T) {
	col, eng, clock := newRig(t)
	for i := 0; i < 5; i++ {
		submit(eng, 1, 0.1)
	}
	clock.Run()
	if got := col.Throughput(0, 1); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("throughput = %v, want 5/10s", got)
	}
}

func TestUntrackedClassIgnored(t *testing.T) {
	col, eng, clock := newRig(t)
	submit(eng, 99, 1) // class not registered
	clock.Run()
	if col.Agg(0, 1).Completed != 0 {
		t.Fatal("untracked query leaked into class 1")
	}
}

func TestAggOutOfRangePanics(t *testing.T) {
	col, _, _ := newRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range period did not panic")
		}
	}()
	col.Agg(99, 1)
}

func TestAggUnknownClassPanics(t *testing.T) {
	col, _, _ := newRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown class did not panic")
		}
	}()
	col.Agg(0, 42)
}

func TestVelocityAggregation(t *testing.T) {
	col, eng, clock := newRig(t)
	// Two queries: one intercepted-free (velocity 1), one held 3s before
	// a 1s execution (velocity 0.25).
	submit(eng, 1, 1)
	held := &engine.Query{Class: 1, Cost: 1, Demand: engine.Demand{Work: 1, CPURate: 1}}
	eng.SetInterceptor(holdInterceptor{})
	eng.Submit(held)
	eng.SetInterceptor(nil)
	clock.At(3, func() { eng.Start(held) })
	clock.Run()
	agg := col.Agg(0, 1)
	if agg.Completed != 2 {
		t.Fatalf("completions = %d", agg.Completed)
	}
	want := (1.0 + 0.25) / 2
	if got := agg.Velocity.Mean(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean velocity = %v, want %v", got, want)
	}
	if got := agg.Cost.Mean(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("mean cost = %v, want 4", got)
	}
}

type holdInterceptor struct{}

func (holdInterceptor) Intercept(*engine.Query) bool { return true }

// TestPendingCountsNonCompleted is the regression test for the
// undercounting bug: period tables derived only from completions made
// still-queued and still-running work invisible. Submitted buckets by
// arrival, and Pending reports the backlog at each period's end.
func TestPendingCountsNonCompleted(t *testing.T) {
	col, eng, clock := newRig(t)
	submit(eng, 1, 2) // completes at t=2, inside period 0

	// Held in period 0, released at t=12 (period 1), completes at t=13.
	crossing := &engine.Query{Class: 1, Cost: 1, Demand: engine.Demand{Work: 1, CPURate: 1}}
	eng.SetInterceptor(holdInterceptor{})
	eng.Submit(crossing)
	eng.SetInterceptor(nil)
	clock.At(12, func() { eng.Start(crossing) })

	// Submitted in period 1 and never released: backlog forever.
	clock.At(15, func() {
		eng.SetInterceptor(holdInterceptor{})
		stuck := &engine.Query{Class: 1, Cost: 1, Demand: engine.Demand{Work: 1, CPURate: 1}}
		eng.Submit(stuck)
		eng.SetInterceptor(nil)
	})
	clock.Run()

	if got := col.Agg(0, 1).Submitted; got != 2 {
		t.Fatalf("period 0 submitted = %d, want 2", got)
	}
	if got := col.Agg(1, 1).Submitted; got != 1 {
		t.Fatalf("period 1 submitted = %d, want 1", got)
	}
	if got := col.Agg(0, 1).Completed; got != 1 {
		t.Fatalf("period 0 completed = %d, want 1", got)
	}
	if got := col.Pending(0, 1); got != 1 {
		t.Fatalf("Pending(0) = %d, want 1 (query held across the boundary)", got)
	}
	if got := col.Pending(1, 1); got != 1 {
		t.Fatalf("Pending(1) = %d, want 1 (stuck query)", got)
	}
	if got := col.Pending(2, 1); got != 1 {
		t.Fatalf("Pending(2) = %d, want 1 (stuck query never completes)", got)
	}
	if got := col.Pending(2, 2); got != 0 {
		t.Fatalf("Pending for idle class = %d, want 0", got)
	}
}

func TestPendingOutOfRangePanics(t *testing.T) {
	col, _, _ := newRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range period did not panic")
		}
	}()
	col.Pending(3, 1)
}

func TestRespQuantile(t *testing.T) {
	col, eng, clock := newRig(t)
	// 20 queries with response times 0.1..2.0s (work == RT, no contention).
	for i := 1; i <= 20; i++ {
		submit(eng, 2, float64(i)*0.1)
	}
	clock.Run()
	p95 := col.RespQuantile(0, 2, 0.95)
	if p95 < 1.7 || p95 > 2.0 {
		t.Fatalf("p95 = %v, want near 1.9", p95)
	}
	if med := col.RespQuantile(0, 2, 0.5); med < 0.8 || med > 1.3 {
		t.Fatalf("median = %v, want near 1.05", med)
	}
	if col.RespQuantile(1, 2, 0.95) != 0 {
		t.Fatal("empty period quantile should be 0")
	}
}
