package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrderCheck flags range-over-map loops whose body is sensitive to
// iteration order: Go randomizes map order per process, so anything that
// appends to an outer slice, accumulates a float, or writes output inside
// such a loop produces different bytes (or different rounding) from run
// to run — the classic cross-process nondeterminism. The sorted-keys
// idiom is recognized: an append target that is later passed to a
// sort/slices call in the same function is allowed (collect, sort, then
// use). Keyed map-to-map copies and integer accumulation are inherently
// order-insensitive and pass.
var MapOrderCheck = &Check{
	Name: "maporder",
	Doc:  "flag order-sensitive work (append/output/float accumulation) inside range over a map",
}

func init() {
	MapOrderCheck.Run = func(p *Pass) {
		if !p.SimPackage() {
			return
		}
		for _, f := range p.Pkg.Files {
			if f.Test {
				continue
			}
			var stack []ast.Node
			ast.Inspect(f.AST, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapType(p.TypeOf(rs.X)) {
					return true
				}
				checkMapRangeBody(p, rs, enclosingFuncBody(stack))
				return true
			})
		}
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosingFuncBody returns the body of the innermost function
// declaration or literal on the stack (nil at package scope).
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkMapRangeBody(p *Pass, rs *ast.RangeStmt, encl *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(p, rs, encl, st)
		case *ast.CallExpr:
			if name, ok := outputCall(p, st); ok {
				p.Reportf(MapOrderCheck, st.Pos(),
					"%s inside range over a map: iteration order is randomized per process; iterate over sorted keys instead", name)
			}
		}
		return true
	})
}

// checkMapRangeAssign flags appends to outer slices (unless the target is
// later sorted) and floating-point accumulation into outer variables.
func checkMapRangeAssign(p *Pass, rs *ast.RangeStmt, encl *ast.BlockStmt, st *ast.AssignStmt) {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range st.Rhs {
			if i >= len(st.Lhs) || !isAppendCall(rhs) {
				continue
			}
			obj := rootObject(p, st.Lhs[i])
			if obj == nil || declaredWithin(obj, rs) {
				continue
			}
			if sortedInFunc(p, encl, obj) {
				continue // collect-then-sort idiom
			}
			p.Reportf(MapOrderCheck, st.Pos(),
				"append to %s inside range over a map accumulates in randomized order; collect keys, sort, then iterate (or sort %s before use)",
				obj.Name(), obj.Name())
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(st.Lhs) != 1 {
			return
		}
		if _, indexed := st.Lhs[0].(*ast.IndexExpr); indexed {
			return // keyed writes visit each key once: order-insensitive
		}
		if !isFloat(p.TypeOf(st.Lhs[0])) {
			return // integer accumulation is exact, hence commutative
		}
		obj := rootObject(p, st.Lhs[0])
		if obj == nil || declaredWithin(obj, rs) {
			return
		}
		p.Reportf(MapOrderCheck, st.Pos(),
			"floating-point accumulation into %s inside range over a map: summation order perturbs rounding across runs; iterate over sorted keys",
			obj.Name())
	}
}

func isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// rootObject resolves the leftmost identifier of an lvalue (x, x.f, x.f.g)
// to its object.
func rootObject(p *Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := p.Pkg.Info.Uses[v]; obj != nil {
				return obj
			}
			return p.Pkg.Info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() != token.NoPos && obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
}

// sortedInFunc reports whether fn contains a sort.* or slices.* call
// mentioning obj — the signature of the collect-then-sort idiom.
func sortedInFunc(p *Pass, fn *ast.BlockStmt, obj types.Object) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch p.ImportedPackage(id) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if aid, ok := an.(*ast.Ident); ok && p.Pkg.Info.Uses[aid] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// outputCall reports whether call writes user-visible output: fmt
// print/fprint functions, io.WriteString, or any Write*/Print* method —
// byte emission inside a map loop serializes random order.
func outputCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		switch p.ImportedPackage(id) {
		case "fmt":
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
				return "fmt." + name, true
			}
			return "", false
		case "io":
			if name == "WriteString" || name == "Copy" {
				return "io." + name, true
			}
			return "", false
		}
	}
	// Method call: only flag when it is really a method (selection
	// resolved), so qualified identifiers of other packages don't match.
	if p.Pkg.Info.Selections[sel] == nil {
		return "", false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println":
		return "(method) " + name, true
	}
	return "", false
}
