// ModulePass and the shared call graph: module-wide checks (ckptcover,
// hotalloc) need to reason about what a function reaches, not just what
// one package contains. The loader type-checks every package against the
// same importer, so a *types.Func is one canonical object module-wide —
// which makes a cross-package call graph a map keyed by those objects.
//
// The graph is deliberately lightweight: edges exist only for direct
// static calls (plain function calls and method calls whose receiver
// type is known). Calls through interface values, stored function
// values, and method values are not resolved — the checks that consume
// the graph treat unresolved calls as reaching nothing and rely on
// explicit //qlint:hotpath annotations at the next resolvable function
// (the same trade the repository made choosing go/types over x/tools'
// pointer analysis).
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ModulePass hands a module-level check the whole loaded module plus
// reporting plumbing and the lazily built shared call graph.
type ModulePass struct {
	Fset   *token.FileSet
	Res    *Result
	Config *Config
	report func(Diagnostic)
	graph  *CallGraph
}

// Reportf records a diagnostic for the running check at pos.
func (mp *ModulePass) Reportf(check *Check, pos token.Pos, format string, args ...any) {
	p := &Pass{Fset: mp.Fset, Config: mp.Config, report: mp.report}
	p.Reportf(check, pos, format, args...)
}

// PackagePass adapts the module pass to the per-package Pass helpers
// (TypeOf, SimPackage, ...) for one of its packages.
func (mp *ModulePass) PackagePass(pkg *Package) *Pass {
	return &Pass{Fset: mp.Fset, Pkg: pkg, Config: mp.Config, report: mp.report}
}

// Graph returns the module's call graph, building it on first use so
// the cost is paid once and shared by every module-level check.
func (mp *ModulePass) Graph() *CallGraph {
	if mp.graph == nil {
		mp.graph = buildCallGraph(mp.Res)
	}
	return mp.graph
}

// FuncNode is one declared function or method in the module.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	File *File
	Pkg  *Package
	// Calls are the direct static callees in the body, excluding calls
	// inside function literals (a closure's body runs when the closure
	// is invoked, not when its creator does).
	Calls []*types.Func
	// ClosureCalls are the direct static callees inside function
	// literals in the body — an over-approximation of what the function
	// may cause to run, used where missing an edge is worse than a
	// spurious one (checkpoint coverage).
	ClosureCalls []*types.Func
}

// CallGraph maps every declared function with a body to its node.
type CallGraph struct {
	Funcs map[*types.Func]*FuncNode
}

// buildCallGraph walks every FuncDecl in the module (test files
// included: external-test packages never annotate hot paths, and
// checkpoint helpers are non-test, so consumers filter as needed).
func buildCallGraph(res *Result) *CallGraph {
	g := &CallGraph{Funcs: make(map[*types.Func]*FuncNode)}
	for _, pkg := range res.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fd, File: f, Pkg: pkg}
				collectCalls(pkg.Info, fd.Body, false, node)
				g.Funcs[obj] = node
			}
		}
	}
	return g
}

// collectCalls appends the static callees under n to node, routing calls
// found inside function literals to ClosureCalls.
func collectCalls(info *types.Info, n ast.Node, inClosure bool, node *FuncNode) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			if !inClosure {
				collectCalls(info, c.Body, true, node)
				return false
			}
		case *ast.CallExpr:
			if callee := calleeFunc(info, c); callee != nil {
				if inClosure {
					node.ClosureCalls = append(node.ClosureCalls, callee)
				} else {
					node.Calls = append(node.Calls, callee)
				}
			}
		}
		return true
	})
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// statically, or nil for builtins, conversions, and calls through
// function values or interfaces.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	for {
		p, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = p.X
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // qualified call into another package
		}
	}
	return nil
}

// Reachable returns every node reachable from the roots, following
// Calls edges (and ClosureCalls when closures is set), skipping nodes
// for which stop returns true. The roots themselves are included unless
// stopped.
func (g *CallGraph) Reachable(roots []*types.Func, closures bool, stop func(*FuncNode) bool) map[*types.Func]*FuncNode {
	seen := make(map[*types.Func]*FuncNode)
	var queue []*types.Func
	push := func(f *types.Func) {
		node, ok := g.Funcs[f]
		if !ok {
			return // no body in the module (stdlib, interface method)
		}
		if _, dup := seen[f]; dup {
			return
		}
		if stop != nil && stop(node) {
			return
		}
		seen[f] = node
		queue = append(queue, f)
	}
	for _, r := range roots {
		push(r)
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		node := seen[f]
		for _, c := range node.Calls {
			push(c)
		}
		if closures {
			for _, c := range node.ClosureCalls {
				push(c)
			}
		}
	}
	return seen
}

// funcDisplayName renders obj as pkg-local "Recv.Name" or "Name" for
// diagnostics.
func funcDisplayName(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + obj.Name()
		}
	}
	return obj.Name()
}
