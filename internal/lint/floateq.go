package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEqCheck forbids == and != on floating-point operands. Metric
// comparisons drive planner and patroller decisions, and exact equality
// on computed floats flips with any change to evaluation order or
// optimization level — the kind of nondeterminism no test sweep reliably
// catches. Allowed: comparisons against an exact zero constant (the
// ubiquitous "unset field" sentinel, well-defined in IEEE 754),
// fully-constant comparisons (decided at compile time), and the approved
// epsilon helpers named in Config.FloatEqAllowFuncs.
var FloatEqCheck = &Check{
	Name: "floateq",
	Doc:  "forbid ==/!= on floating-point operands outside approved epsilon helpers",
}

func init() {
	FloatEqCheck.Run = func(p *Pass) {
		if !p.SimPackage() {
			return
		}
		allowed := make(map[string]bool)
		for _, name := range p.Config.FloatEqAllowFuncs[trimTestSuffix(p.Pkg.Path)] {
			allowed[name] = true
		}
		inspectFiles(p, func(f *File, n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if ok && allowed[fd.Name.Name] {
				return false // approved epsilon helper: exact compare allowed
			}
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			lt, rt := p.Pkg.Info.Types[be.X], p.Pkg.Info.Types[be.Y]
			if !isFloat(lt.Type) && !isFloat(rt.Type) {
				return true
			}
			if lt.Value != nil && rt.Value != nil {
				return true // constant expression, decided at compile time
			}
			if isZeroConst(lt) || isZeroConst(rt) {
				return true // exact-zero sentinel check
			}
			p.Reportf(FloatEqCheck, be.OpPos,
				"floating-point %s comparison: exact equality on computed floats is evaluation-order fragile; use an epsilon helper (stats.ApproxEqual) or restructure with < / <=",
				be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(tv types.TypeAndValue) bool {
	return tv.Value != nil && tv.Value.Kind() != constant.Unknown && constant.Sign(tv.Value) == 0
}
