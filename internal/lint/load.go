// Package loading for the analyzer: discover every package under a
// module root, parse it (comments included, so //lint:ignore directives
// survive), and type-check it with nothing but the standard library.
//
// x/tools' go/packages is off-limits (the repository is stdlib-only), so
// this is a small from-scratch loader: walk the tree, build the
// module-internal import graph, topologically sort it, and feed each
// package through go/types with an importer chain that resolves
// module-internal paths from the packages we just checked and standard
// library paths from compiler export data (falling back to type-checking
// the standard library from source when no export data is installed).
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// File is one parsed source file of a package.
type File struct {
	AST  *ast.File
	Name string // absolute path
	Test bool   // *_test.go
}

// Package is one type-checked package unit. In-package test files are
// included in the unit (external foo_test packages become their own unit)
// so that checks can see — and deliberately skip — test code.
type Package struct {
	Path       string // import path ("repro/internal/engine")
	Dir        string
	Files      []*File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error // soft type-check errors, reported by the runner
}

// Result is a loaded set of packages sharing one FileSet, in dependency
// (topological) order.
type Result struct {
	Fset *token.FileSet
	Pkgs []*Package
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)\s*$`)

// FindModuleRoot walks upward from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule loads and type-checks every package under the module rooted
// at root (skipping testdata, vendor, and hidden directories).
func LoadModule(root string) (*Result, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	m := moduleRe.FindSubmatch(modBytes)
	if m == nil {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	modPath := string(m[1])

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	l := newLoader()
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if err := l.parseDir(dir, path); err != nil {
			return nil, err
		}
	}
	return l.typeCheckAll(modPath)
}

// LoadDir loads a single directory as one package with the given import
// path — how the golden tests load testdata packages.
func LoadDir(dir, path string) (*Result, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader()
	if err := l.parseDir(dir, path); err != nil {
		return nil, err
	}
	return l.typeCheckAll(path)
}

type loader struct {
	fset   *token.FileSet
	units  map[string]*unit // by import path
	order  []string         // parse order, for stable topo tie-breaks
	typed  map[string]*types.Package
	gcImp  types.Importer
	srcImp types.Importer
}

type unit struct {
	pkg     *Package
	imports map[string]bool // all import paths (module-internal and std)
}

func newLoader() *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		units:  make(map[string]*unit),
		typed:  make(map[string]*types.Package),
		gcImp:  importer.ForCompiler(fset, "gc", nil),
		srcImp: importer.ForCompiler(fset, "source", nil),
	}
}

// parseDir parses every .go file in dir into package units: the primary
// package (with its in-package test files) and, if present, the external
// foo_test package as a separate unit at path+".test".
func (l *loader) parseDir(dir, path string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	type parsed struct {
		file *File
		ext  bool // external test package (package foo_test)
	}
	var files []parsed
	base := ""
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") ||
			strings.HasPrefix(e.Name(), ".") || strings.HasPrefix(e.Name(), "_") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		af, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		name := af.Name.Name
		test := strings.HasSuffix(e.Name(), "_test.go")
		ext := test && strings.HasSuffix(name, "_test")
		if !ext {
			if base == "" {
				base = name
			} else if name != base {
				return fmt.Errorf("lint: %s: package %s conflicts with %s in %s", full, name, base, dir)
			}
		}
		files = append(files, parsed{&File{AST: af, Name: full, Test: test}, ext})
	}
	if len(files) == 0 {
		return nil
	}
	add := func(path string, sel func(parsed) bool) {
		var fs []*File
		imports := make(map[string]bool)
		for _, p := range files {
			if !sel(p) {
				continue
			}
			fs = append(fs, p.file)
			for _, imp := range p.file.AST.Imports {
				if ip, err := strconv.Unquote(imp.Path.Value); err == nil {
					imports[ip] = true
				}
			}
		}
		if len(fs) == 0 {
			return
		}
		l.units[path] = &unit{pkg: &Package{Path: path, Dir: dir, Files: fs}, imports: imports}
		l.order = append(l.order, path)
	}
	add(path, func(p parsed) bool { return !p.ext })
	add(path+".test", func(p parsed) bool { return p.ext })
	return nil
}

// typeCheckAll topologically sorts the module-internal import graph and
// type-checks each unit. Type errors are collected per package, not fatal:
// the runner surfaces them as diagnostics.
func (l *loader) typeCheckAll(modPath string) (*Result, error) {
	// Kahn's algorithm over module-internal edges, with parse order
	// breaking ties so output order is stable.
	indeg := make(map[string]int, len(l.units))
	dependents := make(map[string][]string, len(l.units))
	for path, u := range l.units {
		for imp := range u.imports {
			if _, ok := l.units[imp]; ok {
				indeg[path]++
				dependents[imp] = append(dependents[imp], path)
			}
		}
		// foo.test implicitly depends on foo.
		if strings.HasSuffix(path, ".test") {
			if _, ok := l.units[strings.TrimSuffix(path, ".test")]; ok {
				indeg[path]++
				dependents[strings.TrimSuffix(path, ".test")] = append(dependents[strings.TrimSuffix(path, ".test")], path)
			}
		}
	}
	var queue, topo []string
	for _, path := range l.order {
		if indeg[path] == 0 {
			queue = append(queue, path)
		}
	}
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		topo = append(topo, path)
		deps := dependents[path]
		sort.Strings(deps)
		for _, d := range deps {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(topo) != len(l.units) {
		var stuck []string
		for path := range l.units {
			if indeg[path] > 0 {
				stuck = append(stuck, path)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("lint: import cycle involving %s", strings.Join(stuck, ", "))
	}

	res := &Result{Fset: l.fset}
	for _, path := range topo {
		u := l.units[path]
		pkg := u.pkg
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		cfg := &types.Config{
			Importer: l,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		asts := make([]*ast.File, len(pkg.Files))
		for i, f := range pkg.Files {
			asts[i] = f.AST
		}
		// Check returns an error on the first problem, but with cfg.Error
		// set it still type-checks as much as it can; keep the partial
		// package so checks run best-effort.
		tpkg, _ := cfg.Check(path, l.fset, asts, info)
		pkg.Types = tpkg
		pkg.Info = info
		l.typed[path] = tpkg
		res.Pkgs = append(res.Pkgs, pkg)
	}
	return res, nil
}

// Import resolves an import for go/types: module-internal packages come
// from the units already checked (topological order guarantees they
// exist), everything else from compiler export data with a
// from-source fallback.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.typed[path]; ok && p != nil {
		return p, nil
	}
	if _, ok := l.units[path]; ok {
		return nil, fmt.Errorf("lint: internal package %s not yet type-checked (import cycle?)", path)
	}
	p, err := l.gcImp.Import(path)
	if err == nil {
		return p, nil
	}
	return l.srcImp.Import(path)
}
