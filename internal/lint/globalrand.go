package lint

import (
	"go/ast"
)

// GlobalRandCheck forbids math/rand (v1 and v2) in simulation code.
// The top-level functions draw from a process-global source, so two runs
// in the same process — or the same sweep fanned across a different
// worker count — would consume different streams. All randomness must
// come from per-run internal/rng streams derived from the run's seed;
// even a locally-constructed rand.Source is a second PRNG family whose
// draws are not covered by the seed-derivation scheme.
var GlobalRandCheck = &Check{
	Name: "globalrand",
	Doc:  "forbid math/rand in simulation packages; randomness must come from per-run internal/rng streams",
}

func init() {
	GlobalRandCheck.Run = func(p *Pass) {
		if !p.SimPackage() {
			return
		}
		inspectFiles(p, func(f *File, n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch p.ImportedPackage(id) {
			case "math/rand", "math/rand/v2":
				p.Reportf(GlobalRandCheck, sel.Pos(),
					"math/rand (%s.%s) in simulation code: randomness must come from per-run internal/rng streams derived from the run seed",
					id.Name, sel.Sel.Name)
			}
			return true
		})
	}
}
