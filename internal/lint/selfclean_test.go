package lint

import (
	"path/filepath"
	"testing"
	"time"
)

// TestRepoIsLintClean is the acceptance gate in test form: qlint over the
// real tree must be silent. Every invariant violation has to be fixed or
// carry a reasoned //lint:ignore — and because unused directives are
// findings too, stale suppressions fail this test as well.
func TestRepoIsLintClean(t *testing.T) {
	root, err := FindModuleRoot("../..")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	start := time.Now()
	res, err := LoadModule(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(res.Pkgs) < 20 {
		t.Fatalf("loaded only %d packages — loader is missing parts of the tree", len(res.Pkgs))
	}
	diags := NewRunner(DefaultChecks(), DefaultConfig()).Run(res)
	// qlint guards `make check`; if a whole-module run (load, type-check,
	// every per-package and module check including the call graph) stops
	// fitting in the budget, the analyzer regressed, not the tree.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("whole-module lint took %v, over the 10s budget — the analyzer has a performance regression", elapsed)
	}
	for _, d := range diags {
		rel, relErr := filepath.Rel(root, d.Pos.Filename)
		if relErr != nil {
			rel = d.Pos.Filename
		}
		t.Errorf("%s:%d:%d: %s: %s", rel, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
}

// TestLoadModulePackages sanity-checks the loader: the packages the
// checks most depend on must be present and type-check without errors.
func TestLoadModulePackages(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	res, err := LoadModule(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	found := map[string]*Package{}
	for _, p := range res.Pkgs {
		found[p.Path] = p
	}
	for _, path := range []string{
		"repro",
		"repro/internal/simclock",
		"repro/internal/engine",
		"repro/internal/experiment",
		"repro/internal/metrics",
		"repro/cmd/qsim",
		"repro/cmd/qlint",
	} {
		p, ok := found[path]
		if !ok {
			t.Errorf("package %s not loaded", path)
			continue
		}
		if len(p.TypeErrors) > 0 {
			t.Errorf("package %s has type errors: %v", path, p.TypeErrors[0])
		}
		if p.Types == nil {
			t.Errorf("package %s has no type information", path)
		}
	}
}
