package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// testConfig mirrors DefaultConfig for the testdata layout: the
// goroutine testdata package approves its own pool file, the floateq
// package approves its own epsilon helper, and the poolsafety package
// declares its own acquire/release pair.
func testConfig() *Config {
	return &Config{
		GoroutineAllow:    map[string][]string{"goroutine": {"allowed.go"}},
		FloatEqAllowFuncs: map[string][]string{"floateq": {"approxEqual", "boundsEqual"}},
		PoolAPIs:          []PoolAPI{{Pkg: "poolsafety", Acquire: "acquire", Release: "release"}},
	}
}

// want is one golden expectation: a diagnostic on file:line whose
// "check: message" text matches re.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRe parses `// want "regex"` markers, each optionally carrying a
// line offset (`want:-1 "regex"` expects the finding one line above the
// comment — used for directive-hygiene findings that land on the
// //lint:ignore line itself).
var wantRe = regexp.MustCompile(`want(?::(-?\d+))?((?:\s+"(?:[^"\\]|\\.)*")+)`)

var wantStrRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func parseWants(t *testing.T, res *Result) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range res.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					pos := res.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						offset := 0
						if m[1] != "" {
							offset, _ = strconv.Atoi(m[1])
						}
						for _, q := range wantStrRe.FindAllString(m[2], -1) {
							pat, err := strconv.Unquote(q)
							if err != nil {
								t.Fatalf("%s: bad want string %s: %v", pos, q, err)
							}
							re, err := regexp.Compile(pat)
							if err != nil {
								t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
							}
							wants = append(wants, &want{file: pos.Filename, line: pos.Line + offset, re: re})
						}
					}
				}
			}
		}
	}
	return wants
}

// runGolden loads testdata/src/<name>, runs all checks with the test
// config, and verifies the diagnostics against the // want markers:
// every marker must match a finding on its line, every finding must be
// claimed by a marker.
func runGolden(t *testing.T, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	res, err := LoadDir(dir, name)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	for _, pkg := range res.Pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("testdata must type-check cleanly: %v", terr)
		}
	}
	diags := NewRunner(DefaultChecks(), testConfig()).Run(res)
	wants := parseWants(t, res)
	for _, d := range diags {
		text := fmt.Sprintf("%s: %s", d.Check, d.Message)
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected finding %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, text)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing finding at %s:%d matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

func TestGoldenWallclock(t *testing.T)  { runGolden(t, "wallclock") }
func TestGoldenGlobalRand(t *testing.T) { runGolden(t, "globalrand") }
func TestGoldenMapOrder(t *testing.T)   { runGolden(t, "maporder") }
func TestGoldenGoroutine(t *testing.T)  { runGolden(t, "goroutine") }
func TestGoldenFloatEq(t *testing.T)    { runGolden(t, "floateq") }
func TestGoldenSuppress(t *testing.T)   { runGolden(t, "suppress") }
func TestGoldenPoolSafety(t *testing.T) { runGolden(t, "poolsafety") }
func TestGoldenCkptCover(t *testing.T)  { runGolden(t, "ckptcover") }
func TestGoldenHotAlloc(t *testing.T)   { runGolden(t, "hotalloc") }

// TestCheckSubsetKeepsSuppressionsValid pins the -checks subset
// behaviour: directives naming real-but-disabled checks are neither
// "unknown check" findings (names validate against the full registry)
// nor "unused" findings (a disabled check generates nothing to match),
// while directive hygiene for malformed or truly unknown names still
// fires.
func TestCheckSubsetKeepsSuppressionsValid(t *testing.T) {
	res, err := LoadDir(filepath.Join("testdata", "src", "suppress"), "suppress")
	if err != nil {
		t.Fatal(err)
	}
	diags := NewRunner([]*Check{CkptCoverCheck}, testConfig()).Run(res)
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "unused lint:ignore"):
			t.Errorf("subset run flagged a disabled check's suppression as unused: %s:%d: %s",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		case strings.Contains(d.Message, "unknown check") &&
			!strings.Contains(d.Message, `"nosuchcheck"`) &&
			!strings.Contains(d.Message, `"poolsafty"`):
			t.Errorf("subset run rejected a registered check's suppression: %s:%d: %s",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	// The genuinely malformed directives must still surface.
	var unknown, noReason int
	for _, d := range diags {
		if strings.Contains(d.Message, "unknown check") {
			unknown++
		}
		if strings.Contains(d.Message, "has no reason") {
			noReason++
		}
	}
	if unknown == 0 || noReason == 0 {
		t.Errorf("directive hygiene vanished under -checks subset: %d unknown, %d no-reason", unknown, noReason)
	}
}

func TestCheckDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range DefaultChecks() {
		if c.Name == "" || c.Doc == "" || (c.Run == nil && c.RunModule == nil) {
			t.Errorf("check %+v missing name, doc, or run function", c)
		}
		if seen[c.Name] {
			t.Errorf("duplicate check name %q", c.Name)
		}
		seen[c.Name] = true
		if strings.ToLower(c.Name) != c.Name {
			t.Errorf("check name %q must be lower-case (used in //lint:ignore directives)", c.Name)
		}
	}
	for _, name := range []string{
		"wallclock", "globalrand", "maporder", "goroutine", "floateq",
		"poolsafety", "ckptcover", "hotalloc",
	} {
		if !seen[name] {
			t.Errorf("required check %q not registered", name)
		}
	}
}

// TestDefaultConfigObsAllowlist pins the metrics registry's floateq
// allowlist entry: obs compares histogram bucket boundaries for identity
// (configuration literals), and that exemption must be scoped to exactly
// the one helper — not the whole package.
func TestDefaultConfigObsAllowlist(t *testing.T) {
	funcs := DefaultConfig().FloatEqAllowFuncs["repro/internal/obs"]
	if len(funcs) != 1 || funcs[0] != "boundsEqual" {
		t.Errorf("obs floateq allowlist = %v, want exactly [boundsEqual]", funcs)
	}
}
