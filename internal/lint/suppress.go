// //lint:ignore directive handling.
//
// A finding is suppressed by
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// either trailing the offending line or on its own line directly above
// it. The reason is mandatory — a suppression without one is itself a
// diagnostic — as is naming a real check; a directive that matches no
// finding is reported as unused so stale suppressions cannot accumulate.
package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// directive is one parsed //lint:ignore comment.
type directive struct {
	file    string
	line    int
	checks  []string
	reason  string
	raw     string
	bad     string // non-empty: why the directive is invalid
	used    bool
	test    bool // directive lives in a _test.go file
	enabled bool // at least one named check runs in this invocation
}

const ignorePrefix = "lint:ignore"

// parseDirectives extracts every //lint:ignore directive from the loaded
// packages. Named checks are validated against the full registry
// (DefaultChecks), not just the checks enabled for this run — a `-checks
// ckptcover` invocation must not flag every suppression for the other
// checks as unknown. enabled records whether any named check is in this
// run's set, which gates unused-directive reporting the same way.
func parseDirectives(res *Result, enabled []*Check) []*directive {
	registry := DefaultChecks()
	var out []*directive
	for _, pkg := range res.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := res.Fset.Position(c.Pos())
					d := &directive{
						file: pos.Filename,
						line: pos.Line,
						raw:  text,
						test: f.Test,
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
					name, reason, _ := strings.Cut(rest, " ")
					d.reason = strings.TrimSpace(reason)
					switch {
					case name == "":
						d.bad = "lint:ignore directive names no check (want //lint:ignore <check> <reason>)"
					case d.reason == "":
						d.bad = "lint:ignore directive has no reason (want //lint:ignore <check> <reason>)"
					default:
						for _, n := range strings.Split(name, ",") {
							n = strings.TrimSpace(n)
							if CheckByName(registry, n) == nil {
								d.bad = fmt.Sprintf("lint:ignore names unknown check %q", n)
								break
							}
							if CheckByName(enabled, n) != nil {
								d.enabled = true
							}
							d.checks = append(d.checks, n)
						}
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// applySuppressions filters diags through the directives in res and
// appends directive-hygiene diagnostics (invalid or unused directives).
// An invalid directive suppresses nothing.
func applySuppressions(res *Result, checks []*Check, diags []Diagnostic) []Diagnostic {
	dirs := parseDirectives(res, checks)
	// Index by file:line for the two lines a directive covers.
	type key struct {
		file string
		line int
	}
	index := make(map[key][]*directive)
	for _, d := range dirs {
		if d.bad != "" {
			continue
		}
		index[key{d.file, d.line}] = append(index[key{d.file, d.line}], d)
		index[key{d.file, d.line + 1}] = append(index[key{d.file, d.line + 1}], d)
	}
	var out []Diagnostic
	for _, diag := range diags {
		suppressed := false
		for _, d := range index[key{diag.Pos.Filename, diag.Pos.Line}] {
			for _, name := range d.checks {
				if name == diag.Check {
					suppressed = true
					d.used = true
				}
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	for _, d := range dirs {
		switch {
		case d.bad != "":
			out = append(out, Diagnostic{
				Pos:     positionAt(d),
				Check:   "lint",
				Message: d.bad,
			})
		case !d.used && !d.test && d.enabled:
			// Unused directives only matter in non-test files (the checks
			// skip test code, so a directive there can never match) and
			// only when a named check actually ran — under a -checks
			// subset, suppressions for the disabled checks have no
			// findings to match and are not stale.
			out = append(out, Diagnostic{
				Pos:     positionAt(d),
				Check:   "lint",
				Message: "unused lint:ignore directive for " + strings.Join(d.checks, ",") + " (no matching finding on this or the next line)",
			})
		}
	}
	return out
}

func positionAt(d *directive) (p token.Position) {
	p.Filename = d.file
	p.Line = d.line
	p.Column = 1
	return p
}
