// Package ckptcover exercises checkpoint-coverage analysis: every
// runtime-mutable field of a checkpointed type must be read by the
// checkpoint method (directly or transitively) or carry a reasoned
// exemption.
package ckptcover

type snapshot struct {
	count int
	seen  int
}

type tracker struct {
	count   int
	dropped int // want "ckptcover: field tracker.dropped is mutated at runtime .e.g. in tick. but never read by CheckpointState"
	seen    int
	hook    func()
	//lint:ignore ckptcover per-tick scratch; dead between calls
	scratch []int
}

func newTracker() *tracker {
	return &tracker{count: -1}
}

func (t *tracker) tick() {
	t.count++
	t.dropped++
	t.seen = t.count
	t.scratch = t.scratch[:0]
	t.hook = func() {} // function-shaped fields are wiring, not state
}

// CheckpointState covers count directly and seen through a helper call
// (transitive coverage over the call graph).
func (t *tracker) CheckpointState() snapshot {
	return snapshot{count: t.count, seen: t.readSeen()}
}

func (t *tracker) readSeen() int { return t.seen }

func (t *tracker) RestoreCheckpoint(s snapshot) {
	t.count = s.count
	t.seen = s.seen
}
