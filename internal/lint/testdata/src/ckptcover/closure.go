package ckptcover

// Writes in a constructor's direct body are initialization, but a
// closure built there runs later — its writes are runtime mutations.
type lazy struct {
	armed bool // want "ckptcover: field lazy.armed is mutated at runtime .e.g. in newLazy. but never read by CheckpointState"
	n     int
}

func newLazy(schedule func(func())) *lazy {
	l := &lazy{}
	l.n = 1
	schedule(func() { l.armed = true })
	return l
}

func (l *lazy) CheckpointState() snapshot { return snapshot{count: l.n} }

func (l *lazy) RestoreCheckpoint(s snapshot) { l.n = s.count }

// A type without a restore method is not checked at all.
type halfPair struct {
	lost int
}

func (h *halfPair) bump() { h.lost++ }

func (h *halfPair) CheckpointState() snapshot { return snapshot{} }
