package hotalloc

// misdirected carries an unknown directive kind.
//
//qlint:fastpath speed please
func misdirected() {} // want:-1 "hotalloc: unknown qlint directive \"fastpath\""

// plain holds a directive outside any doc comment.
func plain() {
	//qlint:hotpath
	_ = 0 // want:-1 "hotalloc: qlint:hotpath directive must sit in a function declaration's doc comment"
}

// noReason marks a coldpath without saying why.
//
//qlint:coldpath
func noReason() {} // want:-1 "hotalloc: qlint:coldpath directive has no reason"

// orphan is cold but nothing hot ever reaches it.
//
//qlint:coldpath nothing calls this from a hot chain
func orphan() {} // want:-1 "hotalloc: unused qlint:coldpath directive"
