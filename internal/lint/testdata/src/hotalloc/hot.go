// Package hotalloc exercises the hot-path allocation check and the
// //qlint: directive grammar.
package hotalloc

import "fmt"

type table struct {
	byName map[string]int
	buf    []int
}

// step is the annotated steady-state entry point.
//
//qlint:hotpath
func (t *table) step(k string) int {
	if t.byName == nil {
		t.slowInit()
	}
	total := 0
	for _, v := range t.byName { // want "hotalloc: map iteration in table.step"
		total += v
	}
	t.buf = append(t.buf[:0], total)
	return t.helper(total)
}

// helper is hot transitively: step calls it.
func (t *table) helper(n int) int {
	tmp := make([]int, n) // want "hotalloc: make allocates in table.helper .hot via //qlint:hotpath on table.step."
	tmp[0] = n
	return len(tmp)
}

// slowInit is reachable from step but deliberately cold.
//
//qlint:coldpath one-time lazy construction of the name index
func (t *table) slowInit() {
	t.byName = make(map[string]int)
}

// render shows the remaining allocating constructs.
//
//qlint:hotpath
func (t *table) render(name string) string {
	s := "metric=" + name // want "hotalloc: string concatenation allocates in table.render"
	cb := func() {}       // want "hotalloc: function literal allocates its closure in table.render"
	cb()
	extra := &table{} // want "hotalloc: &composite literal escapes to the heap in table.render"
	_ = extra
	xs := []int{1} // want "hotalloc: slice literal allocates its backing array in table.render"
	_ = xs
	return fmt.Sprintf("%s/%d", s, len(t.buf)) // want "hotalloc: fmt.Sprintf allocates in table.render"
}

func sink(v interface{}) int {
	_ = v
	return 0
}

// box passes a concrete value where the callee takes an interface.
//
//qlint:hotpath
func box(n int) int {
	return sink(n) // want "hotalloc: int boxed into interface argument allocates in box"
}

// crash path: panic arguments are exempt even on the hot path.
//
//qlint:hotpath
func guard(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n))
	}
	return n
}
