// Seeded violations for the maporder check: order-sensitive work inside
// range-over-map loops, plus the allowed idioms (collect-then-sort,
// keyed copies, integer accumulation).
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out"
	}
	return out
}

func sortedIdiomOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func badPrint(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Println(k, v)       // want "fmt.Println"
		fmt.Fprintf(w, "%d", v) // want "fmt.Fprintf"
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString"
	}
	return b.String()
}

func badFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation into sum"
	}
	return sum
}

func intSumOK(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

func keyedCopyOK(dst, src map[string]float64) {
	for k, v := range src {
		dst[k] = v
		dst[k] += v
	}
}

func localAppendOK(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var evens []int
		evens = append(evens, vs...)
		total += len(evens)
	}
	return total
}
