// Seeded violations for the floateq check: exact float equality is
// forbidden outside approved epsilon helpers; zero-sentinel checks,
// constant folds, and integer comparisons pass.
package floateq

type metric float64

func bad(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func badNeq(a float64) bool {
	return a != 1.5 // want "floating-point != comparison"
}

func badNamed(a, b metric) bool {
	return a == b // want "floating-point == comparison"
}

func badFloat32(a, b float32) bool {
	return a != b // want "floating-point != comparison"
}

func zeroSentinelOK(a float64) bool {
	return a == 0 || a != 0.0
}

func constFoldOK() bool {
	return 0.1+0.2 == 0.3
}

func intOK(a, b int) bool {
	return a == b
}

// approxEqual is this package's approved epsilon helper (allowed via
// Config.FloatEqAllowFuncs): the exact comparison inside is deliberate.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// boundsEqual mirrors the obs registry's histogram-boundary identity
// check (also allowed via Config.FloatEqAllowFuncs): the operands are
// configuration literals, never computed values, so exact comparison is
// the correct semantics.
func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// boundsEqualUnlisted is the same shape without an allowlist entry: the
// per-element comparison is still flagged.
func boundsEqualUnlisted(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] { // want "floating-point != comparison"
			return false
		}
	}
	return true
}
