// Seeded violations for the goroutine check: go statements are confined
// to the approved worker pool file (allowed.go in this testdata package).
package goroutine

import "sync"

func bad() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "go statement outside the approved worker pool"
		defer wg.Done()
	}()
	wg.Wait()
}

func alsoBad(ch chan int) {
	go drain(ch) // want "go statement outside the approved worker pool"
}

func drain(ch chan int) {
	for range ch {
	}
}
