// The approved pool file for this testdata package (the analogue of
// internal/experiment/parallel.go): go statements here are allowed by
// Config.GoroutineAllow.
package goroutine

import "sync"

func pool(n int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
