// Seeded violations for the globalrand check: any math/rand use in
// simulation code is forbidden — the top-level functions share a
// process-global source, and even local sources bypass the per-run
// seed-derivation scheme in internal/rng.
package globalrand

import "math/rand"

var shared = rand.NewSource(1) // want "math/rand"

func bad() int {
	return rand.Intn(10) // want "math/rand"
}

func alsoBad() float64 {
	r := rand.New(rand.NewSource(7)) // want "math/rand" "math/rand"
	return r.Float64()
}
