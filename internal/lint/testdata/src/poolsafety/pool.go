// Package poolsafety exercises the freelist-protocol check: acquire,
// use, release, never touch again, never stash.
package poolsafety

type buf struct {
	n    int
	data []byte
}

type pool struct {
	free []*buf
}

func (p *pool) acquire() *buf {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return &buf{}
}

func (p *pool) release(b *buf) {
	b.n = 0
	b.data = b.data[:0]
	p.free = append(p.free, b)
}
