package poolsafety

// Rule 1: touching a pooled pointer after releasing it reads memory the
// freelist may already have handed to another owner.
func useAfterRelease(p *pool) int {
	b := p.acquire()
	b.n = 1
	p.release(b)
	return b.n // want "poolsafety: b used after being released to the pool"
}

// Re-binding the variable to a fresh acquire clears the poison.
func rebindIsFine(p *pool) int {
	b := p.acquire()
	p.release(b)
	b = p.acquire()
	return b.n
}

// A release on an early-return branch does not poison the other path.
func branchRelease(p *pool, done bool) int {
	b := p.acquire()
	if done {
		p.release(b)
		return 0
	}
	return b.n
}

// Rule 2: stashing a pooled pointer somewhere that outlives the call.
type cache struct {
	last *buf
}

func (c *cache) stash(p *pool) {
	b := p.acquire()
	c.last = b // want "poolsafety: pooled pointer b stored into c.last"
}

var keep []*buf

func stashGlobal(p *pool) {
	b := p.acquire()
	keep = append(keep, b) // want "poolsafety: pooled pointer b stored into keep"
}

// Storing into a local that dies with the function is fine.
func localHolder(p *pool) int {
	var held []*buf
	b := p.acquire()
	held = append(held, b)
	n := held[0].n
	p.release(b)
	return n
}

// Rule 3: only acquired objects may go back to the pool.
func releaseLocal(p *pool) {
	b := &buf{}
	p.release(b) // want "poolsafety: release releases b, which was constructed locally"
}

func releaseFresh(p *pool) {
	p.release(&buf{}) // want "poolsafety: release releases a locally constructed value to the pool"
}

// Ownership transfer by return is allowed: the caller takes over the
// protocol.
func handOff(p *pool) *buf {
	b := p.acquire()
	b.n = 2
	return b
}

// A reasoned //lint:ignore poolsafety suppresses an escape finding.
type registry struct {
	rows map[int]*buf
}

func (r *registry) adopt(p *pool) {
	b := p.acquire()
	//lint:ignore poolsafety the registry owns its rows; evict returns them to the pool
	r.rows[b.n] = b
}
