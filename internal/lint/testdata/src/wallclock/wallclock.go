// Seeded violations for the wallclock check: wall-clock reads and waits
// are forbidden in simulation code; durations and constants are fine.
package wallclock

import "time"

func bad() time.Duration {
	start := time.Now()             // want "wall-clock time.Now"
	time.Sleep(time.Millisecond)    // want "wall-clock time.Sleep"
	<-time.After(time.Second)       // want "wall-clock time.After"
	t := time.NewTimer(time.Second) // want "wall-clock time.NewTimer"
	_ = t
	return time.Since(start) // want "wall-clock time.Since"
}

func okDurations() time.Duration {
	d := 3 * time.Second
	return d + time.Duration(5)*time.Millisecond
}

func okParse() (time.Time, error) {
	return time.Parse(time.RFC3339, "2007-04-15T00:00:00Z")
}
