// Exercises //lint:ignore handling: inline and above-line suppression,
// multi-check directives, and the directive-hygiene diagnostics (missing
// reason, unknown check, unused directive).
package suppress

import (
	"math/rand"
	"time"
)

func inlineOK() time.Time {
	return time.Now() //lint:ignore wallclock testdata exercises inline suppression
}

func aboveLineOK() {
	//lint:ignore wallclock testdata exercises above-line suppression
	time.Sleep(time.Millisecond)
}

//lint:ignore wallclock,globalrand testdata exercises multi-check suppression
var t0, r0 = time.Now(), rand.Int()

func missingReason() {
	//lint:ignore wallclock
	time.Sleep(1) // want "wall-clock time.Sleep" want:-1 "has no reason"
}

func unknownCheck() {
	//lint:ignore nosuchcheck the reason is here but the check is not
	time.Sleep(1) // want "wall-clock time.Sleep" want:-1 "unknown check"
}

func unusedDirective() {
	//lint:ignore goroutine stale suppression that matches nothing
	time.Sleep(1) // want "wall-clock time.Sleep" want:-1 "unused lint:ignore"
}
