// Directive hygiene for the v2 check names: the suppression grammar
// must accept poolsafety/ckptcover/hotalloc (so unused directives are
// findings, not silent no-ops) and reject misspellings.
package suppress

import "time"

func unusedNewCheckIgnore() {
	//lint:ignore hotalloc stale suppression naming a v2 check
	time.Sleep(1) // want "wall-clock time.Sleep" want:-1 "unused lint:ignore"
}

func typoedNewCheck() {
	//lint:ignore poolsafty misspelled check name
	time.Sleep(1) // want "wall-clock time.Sleep" want:-1 "unknown check"
}

func newCheckMissingReason() {
	//lint:ignore ckptcover
	time.Sleep(1) // want "wall-clock time.Sleep" want:-1 "has no reason"
}
