// CkptCoverCheck guards crash-consistent resume: every subsystem with a
// checkpoint/restore pair must snapshot all of its mutable runtime
// state, or say out loud why a field is exempt. "Added a field, forgot
// to checkpoint it" otherwise surfaces only as a silent divergence
// after restore — the worst kind of determinism bug to bisect.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CkptCoverCheck finds, module-wide, every named struct type that has
// both a CheckpointState (or checkpointState) and a RestoreCheckpoint
// (or restoreCheckpoint) method. For each such type it computes the
// runtime-mutable fields — fields assigned anywhere in the module
// outside constructors (New*/new* functions) and the restore method
// itself, where closure bodies count even inside constructors because
// they run later — and requires each to be referenced by the checkpoint
// method or something it transitively calls (the shared call graph,
// closure edges included). An uncovered field is reported at its
// declaration, where a //lint:ignore ckptcover <reason> names why it is
// legitimately rebuilt rather than snapshotted. Fields of function type
// (hooks, cached method values) are wiring, not state, and are exempt.
var CkptCoverCheck = &Check{
	Name: "ckptcover",
	Doc:  "require every mutable field of a checkpointed type to be snapshotted or explicitly exempted",
}

func init() {
	CkptCoverCheck.RunModule = func(mp *ModulePass) {
		pairs := findCheckpointPairs(mp)
		if len(pairs) == 0 {
			return
		}
		graph := mp.Graph()
		mutations := collectFieldMutations(mp, pairs)
		for _, pair := range pairs {
			checkCoverage(mp, graph, pair, mutations[pair.typ])
		}
	}
}

// ckptPair is one type with a checkpoint/restore method pair.
type ckptPair struct {
	typ      *types.Named
	pkg      *Package
	ckpt     *types.Func
	ckptName string
	restore  *types.Func
}

// fieldMutation records where (and by whom) a field was assigned.
type fieldMutation struct {
	fn  string
	pos token.Pos
}

func isCheckpointName(name string) bool {
	return name == "CheckpointState" || name == "checkpointState"
}

func isRestoreName(name string) bool {
	return name == "RestoreCheckpoint" || name == "restoreCheckpoint"
}

// isConstructorName matches the repository's constructor convention;
// assignments there are initialization, not runtime mutation.
func isConstructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

// recvNamed resolves a method's receiver to its named type, or nil.
func recvNamed(obj *types.Func) *types.Named {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func findCheckpointPairs(mp *ModulePass) []*ckptPair {
	byType := map[*types.Named]*ckptPair{}
	var order []*types.Named
	for _, pkg := range mp.Res.Pkgs {
		if !mp.PackagePass(pkg).SimPackage() {
			continue
		}
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil {
					continue
				}
				if !isCheckpointName(fd.Name.Name) && !isRestoreName(fd.Name.Name) {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				named := recvNamed(obj)
				if named == nil {
					continue
				}
				if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
					continue
				}
				pair := byType[named]
				if pair == nil {
					pair = &ckptPair{typ: named, pkg: pkg}
					byType[named] = pair
					order = append(order, named)
				}
				if isCheckpointName(fd.Name.Name) {
					pair.ckpt, pair.ckptName = obj, fd.Name.Name
				} else {
					pair.restore = obj
				}
			}
		}
	}
	var out []*ckptPair
	for _, named := range order {
		if p := byType[named]; p.ckpt != nil && p.restore != nil {
			out = append(out, p)
		}
	}
	return out
}

// receiverField returns the field of one of the paired types that sel
// addresses directly (sel.X's type is T or *T), or nil.
func receiverField(info *types.Info, pairTypes map[*types.Named]bool, sel *ast.SelectorExpr) *types.Var {
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !pairTypes[named] {
		return nil
	}
	if s := info.Selections[sel]; s != nil {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// collectFieldMutations scans every non-test function in the module for
// assignments to fields of the paired types, keyed by type then field.
func collectFieldMutations(mp *ModulePass, pairs []*ckptPair) map[*types.Named]map[*types.Var]fieldMutation {
	pairTypes := map[*types.Named]bool{}
	restores := map[*types.Func]bool{}
	ownerOf := map[*types.Named]*ckptPair{}
	for _, p := range pairs {
		pairTypes[p.typ] = true
		restores[p.restore] = true
		ownerOf[p.typ] = p
	}
	out := map[*types.Named]map[*types.Var]fieldMutation{}
	record := func(info *types.Info, fnName string, lhs ast.Expr) {
		ast.Inspect(lhs, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := receiverField(info, pairTypes, sel)
			if field == nil {
				return true
			}
			tv := info.Types[sel.X]
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named := t.(*types.Named)
			if out[named] == nil {
				out[named] = map[*types.Var]fieldMutation{}
			}
			if _, dup := out[named][field]; !dup {
				out[named][field] = fieldMutation{fn: fnName, pos: sel.Pos()}
			}
			return true
		})
	}
	for _, pkg := range mp.Res.Pkgs {
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fnObj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				skipDirect := isConstructorName(fd.Name.Name) ||
					(fnObj != nil && restores[fnObj])
				walkMutations(fd.Body, false, func(inClosure bool, lhs ast.Expr) {
					if skipDirect && !inClosure {
						return
					}
					record(pkg.Info, fd.Name.Name, lhs)
				})
			}
		}
	}
	return out
}

// walkMutations visits every assigned lvalue under n, tracking whether
// the assignment sits inside a function literal (closures run after
// construction, so their writes are runtime mutations even inside a
// constructor).
func walkMutations(n ast.Node, inClosure bool, visit func(inClosure bool, lhs ast.Expr)) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			if !inClosure {
				walkMutations(c.Body, true, visit)
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range c.Lhs {
				visit(inClosure, lhs)
			}
		case *ast.IncDecStmt:
			visit(inClosure, c.X)
		}
		return true
	})
}

// checkCoverage reports each mutable field of pair.typ that neither the
// checkpoint method nor anything it reaches ever touches.
func checkCoverage(mp *ModulePass, graph *CallGraph, pair *ckptPair, mutated map[*types.Var]fieldMutation) {
	if len(mutated) == 0 {
		return
	}
	covered := map[*types.Var]bool{}
	selfType := map[*types.Named]bool{pair.typ: true}
	for _, node := range graph.Reachable([]*types.Func{pair.ckpt}, true, nil) {
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if field := receiverField(node.Pkg.Info, selfType, sel); field != nil {
					covered[field] = true
				}
			}
			return true
		})
	}
	st := pair.typ.Underlying().(*types.Struct)
	fieldPos := structFieldPositions(pair)
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		mut, isMutated := mutated[field]
		if !isMutated || covered[field] {
			continue
		}
		if isFuncShaped(field.Type()) {
			continue // hooks and cached method values: wiring, not state
		}
		pos := field.Pos()
		if p, ok := fieldPos[field.Name()]; ok {
			pos = p
		}
		mp.Reportf(CkptCoverCheck, pos,
			"field %s.%s is mutated at runtime (e.g. in %s) but never read by %s or anything it calls; checkpoint/restore silently drops it — snapshot it or annotate //lint:ignore ckptcover <reason>",
			pair.typ.Obj().Name(), field.Name(), mut.fn, pair.ckptName)
	}
}

// isFuncShaped reports whether t is a function type or a slice/array of
// functions — values that cannot be serialized and are re-wired by
// construction, never snapshotted.
func isFuncShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Signature:
		return true
	case *types.Slice:
		return isFuncShaped(u.Elem())
	case *types.Array:
		return isFuncShaped(u.Elem())
	}
	return false
}

// structFieldPositions locates the declaration position of each field of
// pair.typ in its package's AST, so findings land where a
// //lint:ignore can suppress them.
func structFieldPositions(pair *ckptPair) map[string]token.Pos {
	out := map[string]token.Pos{}
	typeObj := pair.typ.Obj()
	for _, f := range pair.pkg.Files {
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || pair.pkg.Info.Defs[ts.Name] != typeObj {
					continue
				}
				stype, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range stype.Fields.List {
					for _, name := range fld.Names {
						out[name.Name] = name.Pos()
					}
				}
			}
		}
	}
	return out
}
