package lint

import (
	"go/ast"
	"path/filepath"
)

// GoroutineCheck forbids go statements outside the approved worker pool.
// Parallel safety in this repository rests on per-run isolation enforced
// by one audited fan-out point (internal/experiment/parallel.go); a stray
// goroutine anywhere else can observe shared state in a
// scheduling-dependent order and silently break the bit-identical
// guarantee of the sweep harness.
var GoroutineCheck = &Check{
	Name: "goroutine",
	Doc:  "forbid go statements outside the approved worker pool (internal/experiment/parallel.go)",
}

func init() {
	GoroutineCheck.Run = func(p *Pass) {
		if !p.SimPackage() {
			return
		}
		allowed := make(map[string]bool)
		for _, base := range p.Config.GoroutineAllow[trimTestSuffix(p.Pkg.Path)] {
			allowed[base] = true
		}
		inspectFiles(p, func(f *File, n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok && !allowed[filepath.Base(f.Name)] {
				p.Reportf(GoroutineCheck, n.Pos(),
					"go statement outside the approved worker pool: fan work through experiment.RunAll/Map (internal/experiment/parallel.go) to preserve per-run isolation")
			}
			return true
		})
	}
}
