// HotAllocCheck is the static complement to scripts/alloc_budget.sh:
// the runtime gate samples allocations per steady-state query, this
// check proves at CI time that the annotated hot chain contains no
// allocating construct at all. Functions opt in with //qlint:hotpath in
// their doc comment; everything they statically reach inherits the
// constraint, and //qlint:coldpath <reason> cuts the propagation where
// a reachable function is deliberately slow (checkpointing, fatal error
// formatting).
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAllocCheck flags allocating constructs in annotated hot paths:
// heap-escaping composite literals (&T{...}, slice and map literals),
// new/make, append into function-local backing (field- and
// parameter-backed scratch buffers pass), fmt calls, non-constant
// string concatenation, map iteration (hash-order walk, and the usual
// prelude to allocating its collection), closures, and concrete values
// boxed into interface arguments. Arguments of panic(...) are exempt —
// a crash path's allocations are irrelevant. The hot set is computed
// over the shared call graph from every //qlint:hotpath root, following
// direct static calls only: calls through interfaces or stored function
// values do not propagate, so chains that cross such a boundary
// re-annotate at the next concrete function.
var HotAllocCheck = &Check{
	Name: "hotalloc",
	Doc:  "flag allocating constructs in //qlint:hotpath-annotated call chains",
}

const qlintPrefix = "qlint:"

// hotDirective is one parsed //qlint:... comment.
type hotDirective struct {
	kind string // "hotpath" or "coldpath"
	pos  token.Pos
	fn   *types.Func // documented function, nil when misplaced
	used bool        // coldpath: a hot function actually calls this
}

func init() {
	HotAllocCheck.RunModule = func(mp *ModulePass) {
		directives := parseQlintDirectives(mp)
		var roots []*types.Func
		cold := map[*types.Func]*hotDirective{}
		for _, d := range directives {
			switch d.kind {
			case "hotpath":
				if d.fn != nil {
					roots = append(roots, d.fn)
				}
			case "coldpath":
				if d.fn != nil {
					cold[d.fn] = d
				}
			}
		}
		if len(roots) == 0 && len(cold) == 0 {
			return
		}
		graph := mp.Graph()

		// BFS over direct calls from the annotated roots, cutting at
		// coldpath functions and recording the annotated root each hot
		// function was reached from (for diagnostics).
		rootOf := map[*types.Func]*types.Func{}
		var queue []*types.Func
		for _, r := range roots {
			if node, ok := graph.Funcs[r]; ok && !node.File.Test {
				if _, dup := rootOf[r]; !dup {
					rootOf[r] = r
					queue = append(queue, r)
				}
			}
		}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			node := graph.Funcs[fn]
			for _, callee := range node.Calls {
				if d, isCold := cold[callee]; isCold {
					d.used = true
					continue
				}
				cn, ok := graph.Funcs[callee]
				if !ok || cn.File.Test || !mp.PackagePass(cn.Pkg).SimPackage() {
					continue
				}
				if _, dup := rootOf[callee]; dup {
					continue
				}
				rootOf[callee] = rootOf[fn]
				queue = append(queue, callee)
			}
		}

		for fn, root := range rootOf {
			node := graph.Funcs[fn]
			checkHotBody(mp.PackagePass(node.Pkg), node, fn, root)
		}
		for _, d := range directives {
			if d.kind == "coldpath" && d.fn != nil && !d.used {
				mp.Reportf(HotAllocCheck, d.pos,
					"unused qlint:coldpath directive: no hot path reaches this function")
			}
		}
	}
}

// parseQlintDirectives extracts //qlint: comments from every non-test,
// non-exempt file, attaching each to the function whose doc comment
// holds it; malformed or misplaced directives are findings themselves.
func parseQlintDirectives(mp *ModulePass) []*hotDirective {
	var out []*hotDirective
	for _, pkg := range mp.Res.Pkgs {
		if !mp.PackagePass(pkg).SimPackage() {
			continue
		}
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			// Map each doc-comment line to its documented function.
			docOwner := map[*ast.Comment]*types.Func{}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				for _, c := range fd.Doc.List {
					docOwner[c] = obj
				}
			}
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, qlintPrefix) {
						continue
					}
					rest := strings.TrimPrefix(text, qlintPrefix)
					kind, arg, _ := strings.Cut(rest, " ")
					owner, attached := docOwner[c]
					d := &hotDirective{kind: kind, pos: c.Pos(), fn: owner}
					switch {
					case kind != "hotpath" && kind != "coldpath":
						mp.Reportf(HotAllocCheck, c.Pos(),
							"unknown qlint directive %q (known: //qlint:hotpath, //qlint:coldpath <reason>)", kind)
						continue
					case !attached:
						mp.Reportf(HotAllocCheck, c.Pos(),
							"qlint:%s directive must sit in a function declaration's doc comment", kind)
						continue
					case kind == "coldpath" && strings.TrimSpace(arg) == "":
						mp.Reportf(HotAllocCheck, c.Pos(),
							"qlint:coldpath directive has no reason (want //qlint:coldpath <why this reachable function is exempt>)")
						continue
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// hotContext renders why fn is hot, for diagnostics.
func hotContext(fn, root *types.Func) string {
	if fn == root {
		return "in " + funcDisplayName(fn) + " (annotated //qlint:hotpath)"
	}
	return "in " + funcDisplayName(fn) + " (hot via //qlint:hotpath on " + funcDisplayName(root) + ")"
}

// checkHotBody flags every allocating construct in one hot function.
func checkHotBody(p *Pass, node *FuncNode, fn, root *types.Func) {
	ctx := hotContext(fn, root)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(HotAllocCheck, n.Pos(), "function literal allocates its closure %s", ctx)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					p.Reportf(HotAllocCheck, n.Pos(), "&composite literal escapes to the heap %s", ctx)
					return false
				}
			}
		case *ast.CompositeLit:
			if t := p.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					p.Reportf(HotAllocCheck, n.Pos(), "slice literal allocates its backing array %s", ctx)
					return false
				case *types.Map:
					p.Reportf(HotAllocCheck, n.Pos(), "map literal allocates %s", ctx)
					return false
				}
			}
		case *ast.RangeStmt:
			if isMapType(p.TypeOf(n.X)) {
				p.Reportf(HotAllocCheck, n.Pos(), "map iteration %s: hash-order walk on the hot path (keep a dense index instead)", ctx)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(p, n) && !isConstExpr(p, n) {
				p.Reportf(HotAllocCheck, n.Pos(), "string concatenation allocates %s", ctx)
				return false // one finding per concat chain
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "panic":
						return false // crash-path allocations are irrelevant
					case "new":
						p.Reportf(HotAllocCheck, n.Pos(), "new(...) allocates %s", ctx)
					case "make":
						p.Reportf(HotAllocCheck, n.Pos(), "make allocates %s (hoist into a reused buffer)", ctx)
					case "append":
						if len(n.Args) > 0 && !appendTargetPreallocated(p, node.Decl, n.Args[0]) {
							p.Reportf(HotAllocCheck, n.Pos(),
								"append may grow function-local backing %s (append into a field- or parameter-backed scratch slice)", ctx)
						}
					}
					break
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && p.ImportedPackage(id) == "fmt" {
					p.Reportf(HotAllocCheck, n.Pos(), "fmt.%s allocates %s (use strconv.Append* into a scratch buffer)", sel.Sel.Name, ctx)
					return false
				}
			}
			checkBoxedArgs(p, n, ctx)
		}
		return true
	}
	ast.Inspect(node.Decl.Body, walk)
}

func isStringExpr(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// appendTargetPreallocated reports whether the append destination is
// backed by storage that outlives the call: a field, parameter, or
// package-level slice (or a local derived from one by slicing) — the
// reused-scratch idiom. A local created in-function (or untraceable)
// gets the conservative answer.
func appendTargetPreallocated(p *Pass, fd *ast.FuncDecl, dst ast.Expr) bool {
	seen := 0
	for {
		root := sliceRootExpr(dst)
		id, ok := root.(*ast.Ident)
		if !ok {
			return false
		}
		obj := p.Pkg.Info.Uses[id]
		if obj == nil {
			return false
		}
		if !declaredWithin(obj, fd.Body) {
			return true // parameter, receiver field chain, captured, or global
		}
		// Local: trace its defining assignment.
		origin := definingExpr(p, fd, obj)
		if origin == nil || seen > 4 {
			return false
		}
		seen++
		dst = origin
	}
}

// sliceRootExpr strips slicing, selecting, indexing, derefs, parens,
// and buffer-threading calls (append / strconv.Append*) down to the
// storage root of a slice expression: e.doneScratch[:0] -> e, and
// append(t.detailBuf[:0], ...) -> t.
func sliceRootExpr(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.SliceExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return e
			}
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.CallExpr:
			if !appendShapedCall(v) || len(v.Args) == 0 {
				return e
			}
			e = v.Args[0]
		default:
			return e
		}
	}
}

// appendShapedCall matches calls that thread their first argument's
// backing through: the append builtin and the strconv.Append* family.
func appendShapedCall(call *ast.CallExpr) bool {
	if isAppendCall(call) {
		return true
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return strings.HasPrefix(sel.Sel.Name, "Append")
	}
	return false
}

// definingExpr finds the RHS that defines local obj (`obj := rhs`), or
// nil when there is none or it is not a simple define.
func definingExpr(p *Pass, fd *ast.FuncDecl, obj types.Object) ast.Expr {
	var out ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || out != nil {
			return out == nil
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || p.Pkg.Info.Defs[id] != obj {
				continue
			}
			if i < len(as.Rhs) && len(as.Lhs) == len(as.Rhs) {
				out = as.Rhs[i]
			}
			return false
		}
		return true
	})
	return out
}

// checkBoxedArgs flags concrete, non-pointer-shaped, non-constant
// values passed where the callee takes an interface: the conversion
// boxes the value on the heap.
func checkBoxedArgs(p *Pass, call *ast.CallExpr, ctx string) {
	ft := p.TypeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				param = sl.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param == nil || !types.IsInterface(param) {
			continue
		}
		tv, ok := p.Pkg.Info.Types[arg]
		if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
			continue
		}
		at := tv.Type
		if types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		p.Reportf(HotAllocCheck, arg.Pos(),
			"%s boxed into interface argument allocates %s", at.String(), ctx)
	}
}

// pointerShaped reports whether values of t fit in an interface word
// without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Signature, *types.Map:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
