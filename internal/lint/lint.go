// Core analyzer types: checks, passes, diagnostics, and the runner that
// applies the registered checks to loaded packages and then filters the
// findings through //lint:ignore suppressions.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by file:line:col.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Check is one analyzer: a name (used in diagnostics and //lint:ignore
// directives), a one-line doc string, and at least one run function —
// Run is invoked once per package, RunModule once per loaded module with
// every package (and the shared call graph) in view. A check may have
// both.
type Check struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass hands a check one type-checked package plus reporting plumbing.
type Pass struct {
	Fset   *token.FileSet
	Pkg    *Package
	Config *Config
	report func(Diagnostic)
}

// Reportf records a diagnostic for the running check at pos.
func (p *Pass) Reportf(check *Check, pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when type-checking could not
// resolve it (checks degrade gracefully on partial information).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// ImportedPackage resolves an identifier used as a package qualifier
// (the "time" in time.Now) to the imported package's path, or "".
func (p *Pass) ImportedPackage(id *ast.Ident) string {
	if obj, ok := p.Pkg.Info.Uses[id].(*types.PkgName); ok {
		return obj.Imported().Path()
	}
	return ""
}

// trimTestSuffix maps an external-test unit path (repro/foo.test) back to
// its base package path for config lookups.
func trimTestSuffix(path string) string { return strings.TrimSuffix(path, ".test") }

// SimPackage reports whether the pass's package is simulation code — i.e.
// subject to the determinism checks. Everything in the module is, except
// the analyzer itself (Config.ExemptPackages).
func (p *Pass) SimPackage() bool {
	path := trimTestSuffix(p.Pkg.Path)
	for _, ex := range p.Config.ExemptPackages {
		if path == ex || strings.HasPrefix(path, ex+"/") {
			return false
		}
	}
	return true
}

// Config scopes the checks to this repository's layout.
type Config struct {
	// ExemptPackages are import-path prefixes where no check applies —
	// the analyzer's own packages, which are tooling, not simulation.
	ExemptPackages []string
	// GoroutineAllow maps an import path to file basenames allowed to
	// contain go statements (the approved worker pool).
	GoroutineAllow map[string][]string
	// FloatEqAllowFuncs maps an import path to function names allowed to
	// compare floats exactly (the approved epsilon helpers).
	FloatEqAllowFuncs map[string][]string
	// PoolAPIs lists the freelist lifecycles poolsafety tracks: an
	// acquire function returning a pooled pointer and the release that
	// returns it to the pool.
	PoolAPIs []PoolAPI
}

// PoolAPI names one acquire/release pair of a freelist, scoped to the
// package that defines it.
type PoolAPI struct {
	Pkg     string // import path defining the pair
	Acquire string // function or method returning a pooled pointer
	Release string // function or method returning the pointer to the pool
}

// DefaultConfig returns the configuration for this repository: everything
// is simulation code except the linter; goroutines only in the
// experiment worker pool; exact float comparison only inside the stats
// epsilon helper.
func DefaultConfig() *Config {
	return &Config{
		ExemptPackages: []string{"repro/internal/lint", "repro/cmd/qlint"},
		GoroutineAllow: map[string][]string{
			"repro/internal/experiment": {"parallel.go"},
		},
		FloatEqAllowFuncs: map[string][]string{
			"repro/internal/stats": {"ApproxEqual"},
			// The metrics registry compares histogram bucket boundaries
			// for identity (configuration literals, not computed values),
			// which is exactly what == is for — no per-site //lint:ignore
			// noise required.
			"repro/internal/obs": {"boundsEqual"},
		},
		PoolAPIs: []PoolAPI{
			{Pkg: "repro/internal/engine", Acquire: "AcquireQuery", Release: "Recycle"},
			{Pkg: "repro/internal/patroller", Acquire: "acquireEntry", Release: "releaseEntry"},
		},
	}
}

// DefaultChecks returns every check, in a stable order.
func DefaultChecks() []*Check {
	return []*Check{
		WallclockCheck,
		GlobalRandCheck,
		MapOrderCheck,
		GoroutineCheck,
		FloatEqCheck,
		PoolSafetyCheck,
		CkptCoverCheck,
		HotAllocCheck,
	}
}

// CheckByName returns the check with the given name, or nil.
func CheckByName(checks []*Check, name string) *Check {
	for _, c := range checks {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// maxTypeErrors caps how many type-check errors are surfaced per package,
// so one broken file does not flood the output.
const maxTypeErrors = 10

// Runner applies a set of checks to loaded packages.
type Runner struct {
	Checks []*Check
	Config *Config
}

// NewRunner builds a runner; nil arguments select the defaults.
func NewRunner(checks []*Check, cfg *Config) *Runner {
	if checks == nil {
		checks = DefaultChecks()
	}
	if cfg == nil {
		cfg = DefaultConfig()
	}
	return &Runner{Checks: checks, Config: cfg}
}

// Run applies every check to every package, resolves //lint:ignore
// suppressions (invalid or unused directives become diagnostics
// themselves), and returns the surviving findings sorted by position.
func (r *Runner) Run(res *Result) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range res.Pkgs {
		for i, err := range pkg.TypeErrors {
			if i == maxTypeErrors {
				break
			}
			diags = append(diags, typeErrorDiag(res.Fset, err))
		}
		pass := &Pass{
			Fset:   res.Fset,
			Pkg:    pkg,
			Config: r.Config,
			report: func(d Diagnostic) { diags = append(diags, d) },
		}
		for _, c := range r.Checks {
			if c.Run != nil {
				c.Run(pass)
			}
		}
	}
	mp := &ModulePass{
		Fset:   res.Fset,
		Res:    res,
		Config: r.Config,
		report: func(d Diagnostic) { diags = append(diags, d) },
	}
	for _, c := range r.Checks {
		if c.RunModule != nil {
			c.RunModule(mp)
		}
	}
	diags = applySuppressions(res, r.Checks, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// typeErrorDiag converts a go/types error into a diagnostic under the
// reserved "typecheck" name.
func typeErrorDiag(fset *token.FileSet, err error) Diagnostic {
	d := Diagnostic{Check: "typecheck", Message: err.Error()}
	if te, ok := err.(types.Error); ok {
		d.Pos = te.Fset.Position(te.Pos)
		d.Message = te.Msg
	}
	return d
}

// inspectFiles walks every non-test file of the pass's package (the
// determinism invariants constrain simulation code, not its tests).
func inspectFiles(p *Pass, visit func(f *File, n ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool { return visit(f, n) })
	}
}
