// PoolSafetyCheck guards the freelist lifecycles (engine query pool,
// patroller entry pool) introduced for allocation-free steady state.
// Pooled pointers have a strict protocol — acquire, use, release, never
// touch again, never stash — and violating it corrupts a *later* query
// silently when the pool hands the same object out again.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolSafetyCheck flags, per function: (1) uses of a pooled pointer
// after the call that released it, (2) pooled pointers stored into
// locations that outlive the function (fields, maps, globals — places a
// recycled pointer could be read from after the pool reuses it), and
// (3) releasing a value that was not acquired from the pool (locally
// constructed with &T{} or new). The analysis is intra-procedural and
// source-ordered: a use textually after a release on the same object is
// a finding unless an assignment re-binds the variable in between.
// Ownership transfers by call argument or return are allowed — the
// callee or caller takes over the protocol.
var PoolSafetyCheck = &Check{
	Name: "poolsafety",
	Doc:  "flag use-after-release, escaping stores, and unpooled releases of freelist-managed pointers",
}

func init() {
	PoolSafetyCheck.Run = func(p *Pass) {
		if !p.SimPackage() || len(p.Config.PoolAPIs) == 0 {
			return
		}
		for _, f := range p.Pkg.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkPoolFunc(p, fd)
				}
			}
		}
	}
}

// poolFuncMatch reports whether obj is one of the configured acquire or
// release functions.
func poolFuncMatch(cfg *Config, obj *types.Func, release bool) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	for _, api := range cfg.PoolAPIs {
		name := api.Acquire
		if release {
			name = api.Release
		}
		if obj.Name() == name && obj.Pkg().Path() == api.Pkg {
			return true
		}
	}
	return false
}

func checkPoolFunc(p *Pass, fd *ast.FuncDecl) {
	type event struct {
		end   token.Pos // release call end
		spans []span    // positions poisoned by this release
	}
	released := map[types.Object][]event{} // object -> release events
	cleared := map[types.Object][]token.Pos{}
	pooled := map[types.Object]bool{}   // bound to an acquire result
	unpooled := map[types.Object]bool{} // bound to &T{} or new(T)

	// Pass 1: classify bindings, record releases (with the source spans
	// each one poisons) and re-bindings. The stack tracks enclosing
	// nodes so a release's effect respects block structure.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Pkg.Info.Defs[id]
				if obj == nil {
					obj = p.Pkg.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				cleared[obj] = append(cleared[obj], n.Pos())
				if i < len(n.Rhs) {
					switch origin := poolOrigin(p, n.Rhs[i]); origin {
					case originAcquire:
						pooled[obj] = true
					case originLocalNew:
						unpooled[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			obj := calleeFunc(p.Pkg.Info, n)
			if poolFuncMatch(p.Config, obj, true) && len(n.Args) > 0 {
				if id, ok := n.Args[0].(*ast.Ident); ok {
					if target := p.Pkg.Info.Uses[id]; target != nil {
						released[target] = append(released[target],
							event{n.End(), releaseSpans(stack, n)})
					}
				}
				// Rule 3, direct form: Release(&T{...}) / Release(new(T)).
				if poolOrigin(p, n.Args[0]) == originLocalNew {
					p.Reportf(PoolSafetyCheck, n.Pos(),
						"%s releases a locally constructed value to the pool; only acquire-d objects may be released", obj.Name())
				}
			}
		}
		return true
	})

	// Rule 3, variable form.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeFunc(p.Pkg.Info, call)
		if !poolFuncMatch(p.Config, obj, true) || len(call.Args) == 0 {
			return true
		}
		id, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		target := p.Pkg.Info.Uses[id]
		if target != nil && unpooled[target] && !pooled[target] {
			p.Reportf(PoolSafetyCheck, call.Pos(),
				"%s releases %s, which was constructed locally (not acquired from the pool)", obj.Name(), id.Name)
		}
		return true
	})

	// Rule 1: a use inside a span a release poisons — statements that
	// execute after the release on its own control-flow path — with no
	// re-binding in between, touches freed pool memory.
	if len(released) > 0 {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			for _, rel := range released[obj] {
				hit := false
				for _, s := range rel.spans {
					if id.Pos() >= s.lo && id.Pos() < s.hi {
						hit = true
						break
					}
				}
				if !hit {
					continue
				}
				saved := false
				for _, c := range cleared[obj] {
					if c > rel.end && c <= id.Pos() {
						saved = true
						break
					}
				}
				if !saved {
					p.Reportf(PoolSafetyCheck, id.Pos(),
						"%s used after being released to the pool; the freelist may already have handed it to another owner", id.Name)
					return true
				}
			}
			return true
		})
	}

	// Rule 2: pooled pointers stored where they outlive the function.
	if len(pooled) > 0 {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				stored := storedPooledIdent(p, pooled, rhs)
				if stored == nil {
					continue
				}
				if lhsOutlivesFunc(p, fd, as.Lhs[i]) {
					p.Reportf(PoolSafetyCheck, as.Pos(),
						"pooled pointer %s stored into %s, which outlives this call; a recycled object would be visible there after the pool reuses it",
						stored.Name, lhsDescription(as.Lhs[i]))
				}
			}
			return true
		})
	}
}

// span is a half-open source-position interval [lo, hi).
type span struct{ lo, hi token.Pos }

// releaseSpans computes the source positions a release call poisons:
// the statements after it in its own statement list, ascending into
// enclosing lists only while the inner list falls through (its last
// statement is not a return, branch, or panic — so execution continues
// past the enclosing statement). A release inside an early-return
// branch therefore does not poison the other branch. Loop back-edges
// are not modeled (a use earlier in a loop body is an accepted false
// negative), and a release inside a closure poisons only the closure.
func releaseSpans(stack []ast.Node, call *ast.CallExpr) []span {
	var spans []span
	child := ast.Node(call)
	for i := len(stack) - 1; i >= 0; i-- {
		n := stack[i]
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.FuncLit:
			return spans
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			child = n
			continue
		}
		if len(list) > 0 {
			spans = append(spans, span{child.End(), list[len(list)-1].End()})
			if terminalStmt(list[len(list)-1]) {
				return spans
			}
		}
		child = n
	}
	return spans
}

// terminalStmt reports whether execution cannot fall past s.
func terminalStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

type poolOriginKind int

const (
	originOther poolOriginKind = iota
	originAcquire
	originLocalNew
)

// poolOrigin classifies an expression as an acquire-call result, a
// locally constructed pointer (&T{...} / new(T)), or neither.
func poolOrigin(p *Pass, e ast.Expr) poolOriginKind {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				return originLocalNew
			}
		}
		if poolFuncMatch(p.Config, calleeFunc(p.Pkg.Info, e), false) {
			return originAcquire
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := e.X.(*ast.CompositeLit); ok {
				return originLocalNew
			}
		}
	case *ast.ParenExpr:
		return poolOrigin(p, e.X)
	}
	return originOther
}

// storedPooledIdent returns the identifier when rhs is (or appends) a
// tracked pooled pointer: a plain `q`, or `append(xs, q)`.
func storedPooledIdent(p *Pass, pooled map[types.Object]bool, rhs ast.Expr) *ast.Ident {
	if id, ok := rhs.(*ast.Ident); ok {
		if pooled[p.Pkg.Info.Uses[id]] {
			return id
		}
		return nil
	}
	if call, ok := rhs.(*ast.CallExpr); ok && isAppendCall(call) {
		for _, arg := range call.Args[1:] {
			if id, ok := arg.(*ast.Ident); ok && pooled[p.Pkg.Info.Uses[id]] {
				return id
			}
		}
	}
	return nil
}

// lhsOutlivesFunc reports whether storing into lhs makes the value
// visible beyond the function: a package-level variable, or a field /
// element reached from a receiver, parameter, captured variable, or
// global (anything whose root is not declared in the body itself).
func lhsOutlivesFunc(p *Pass, fd *ast.FuncDecl, lhs ast.Expr) bool {
	switch lhs.(type) {
	case *ast.Ident:
		obj := rootObject(p, lhs)
		return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		obj := rootObject(p, lhsRootExpr(lhs))
		if obj == nil {
			return true // unresolvable roots get the conservative answer
		}
		return !declaredWithin(obj, fd.Body)
	}
	return false
}

// lhsRootExpr strips selectors, indexes, and derefs down to the root
// expression of an lvalue.
func lhsRootExpr(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return e
		}
	}
}

// lhsDescription renders an lvalue for a diagnostic ("p.table[...]").
func lhsDescription(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return lhsDescription(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return lhsDescription(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + lhsDescription(v.X)
	case *ast.ParenExpr:
		return lhsDescription(v.X)
	}
	return "a long-lived location"
}
