package lint

import (
	"go/ast"
)

// wallclockFuncs are the package time entry points that read or wait on
// the machine's clock. Conversions and constants (time.Duration,
// time.Second) are fine: they carry no wall-clock state.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// WallclockCheck forbids wall-clock time in simulation code. Every
// simulated run must be a pure function of its seed, so all time has to
// flow through internal/simclock — a time.Now or time.Sleep anywhere in a
// simulation package couples results to the host machine and breaks the
// bit-identical replay the experiment harness promises.
var WallclockCheck = &Check{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/Sleep/... in simulation packages; time must flow through internal/simclock",
}

func init() {
	WallclockCheck.Run = func(p *Pass) {
		if !p.SimPackage() {
			return
		}
		inspectFiles(p, func(f *File, n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if p.ImportedPackage(id) == "time" && wallclockFuncs[sel.Sel.Name] {
				p.Reportf(WallclockCheck, sel.Pos(),
					"wall-clock time.%s in simulation code: all time must flow through internal/simclock so runs replay bit-identically",
					sel.Sel.Name)
			}
			return true
		})
	}
}
