// Package detect implements the *workload detection* half of the paper's
// framework: "We view workload adaptation in general as consisting of two
// processes, workload detection and workload control. Workload detection
// identifies workload changes by monitoring and characterizing current
// workloads and predicting future workload trends."
//
// A Detector ingests per-interval observations of each service class
// (arrivals, completions, mean cost, concurrency) and maintains:
//
//   - a Characterization: smoothed arrival rate, demand rate (timerons/s
//     offered), cost mix, and trend per class;
//   - shift detection via a CUSUM test on the class's in-system
//     population (or, absent that signal, its arrival rate), flagging the
//     period boundaries of the paper's Figure 3 schedule without being
//     told where they are; and
//   - a one-interval-ahead forecast of offered demand, which the
//     Scheduling Planner can use feed-forward (see core.Config.FeedForward).
package detect

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// Observation is one control interval's raw facts about one class.
type Observation struct {
	Time        simclock.Time
	Class       engine.ClassID
	Arrivals    int     // queries submitted during the interval
	Completions int     // queries finished during the interval
	MeanCost    float64 // mean timeron cost of the interval's arrivals
	Concurrency float64 // mean number executing (time-averaged or sampled)
	Interval    float64 // interval length in seconds
	// Population is the number of in-system queries of the class at
	// harvest time. With the paper's zero-think-time closed-loop clients
	// this equals the active client count exactly, which makes it the
	// preferred change-detection signal: the arrival rate of a closed
	// loop confounds intensity with response time (squeezing a class
	// lowers its arrival rate), while the population shifts only when
	// the offered workload does.
	Population float64
}

// Characterization is the detector's rolling description of one class.
type Characterization struct {
	Class engine.ClassID
	// Population is the smoothed in-system query count.
	Population float64
	// ArrivalRate is the smoothed arrival rate (queries/second).
	ArrivalRate float64
	// DemandRate is the smoothed offered demand (timerons/second).
	DemandRate float64
	// MeanCost is the smoothed per-query cost (timerons).
	MeanCost float64
	// Trend is the per-second slope of the arrival rate over the recent
	// window (queries/second per second); positive means intensifying.
	Trend float64
	// Shifted reports whether the most recent observation triggered the
	// change detector.
	Shifted bool
	// Intervals counts observations folded in so far.
	Intervals int
}

// Forecast is the detector's prediction for the next interval.
type Forecast struct {
	Class engine.ClassID
	// ArrivalRate is the predicted arrival rate (queries/second).
	ArrivalRate float64
	// DemandRate is the predicted offered demand (timerons/second).
	DemandRate float64
	// Confidence is a crude [0,1] score: 1 after a long stable stretch,
	// low right after a detected shift.
	Confidence float64
}

// Config tunes the detector.
type Config struct {
	// Alpha is the EWMA smoothing factor for rates (0 < alpha <= 1).
	Alpha float64
	// TrendWindow is how many intervals the trend regression sees.
	TrendWindow int
	// CUSUMThreshold is the cumulative deviation (in standard deviations)
	// that flags a shift.
	CUSUMThreshold float64
	// CUSUMDrift is the slack per observation (in standard deviations)
	// absorbed before deviations accumulate.
	CUSUMDrift float64
}

// DefaultConfig returns the settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		Alpha:          0.4,
		TrendWindow:    8,
		CUSUMThreshold: 4,
		CUSUMDrift:     0.5,
	}
}

func (c Config) validate() error {
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("detect: alpha %v out of (0,1]", c.Alpha)
	}
	if c.TrendWindow < 2 {
		return fmt.Errorf("detect: trend window %d too small", c.TrendWindow)
	}
	if c.CUSUMThreshold <= 0 || c.CUSUMDrift < 0 {
		return fmt.Errorf("detect: invalid CUSUM parameters")
	}
	return nil
}

type classState struct {
	char     Characterization
	rateEWMA *stats.EWMA
	popEWMA  *stats.EWMA
	costEWMA *stats.EWMA
	trend    *stats.SlidingRegression

	// CUSUM state over the raw arrival rate.
	mean     stats.Summary // long-run rate statistics for normalization
	cusumPos float64
	cusumNeg float64

	sinceShift int
}

// Detector characterizes and forecasts a set of service classes.
type Detector struct {
	cfg    Config
	states map[engine.ClassID]*classState
	shifts []Shift
}

// Shift records one detected workload change.
type Shift struct {
	Time  simclock.Time
	Class engine.ClassID
	// Direction is +1 for intensifying, -1 for receding.
	Direction int
	// Rate is the raw detection-signal value that triggered the
	// detection (population when available, arrival rate otherwise).
	Rate float64
}

// New returns a detector with the given configuration.
func New(cfg Config) *Detector {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Detector{cfg: cfg, states: make(map[engine.ClassID]*classState)}
}

func (d *Detector) state(class engine.ClassID) *classState {
	s, ok := d.states[class]
	if !ok {
		s = &classState{
			rateEWMA: stats.NewEWMA(d.cfg.Alpha),
			popEWMA:  stats.NewEWMA(d.cfg.Alpha),
			costEWMA: stats.NewEWMA(d.cfg.Alpha),
			trend:    stats.NewSlidingRegression(d.cfg.TrendWindow),
		}
		s.char.Class = class
		d.states[class] = s
	}
	return s
}

// Observe folds one interval's observation into the detector and returns
// the updated characterization.
func (d *Detector) Observe(o Observation) Characterization {
	if o.Interval <= 0 {
		panic(fmt.Sprintf("detect: non-positive interval %v", o.Interval))
	}
	s := d.state(o.Class)
	rate := float64(o.Arrivals) / o.Interval

	// Change detection runs on the population signal when the caller
	// provides it (see Observation.Population), else on the raw rate.
	signal := rate
	if o.Population > 0 {
		signal = o.Population
	}
	s.char.Shifted = d.updateCUSUM(s, o, signal)

	s.rateEWMA.Add(rate)
	s.popEWMA.Add(o.Population)
	if o.Arrivals > 0 && o.MeanCost > 0 {
		s.costEWMA.Add(o.MeanCost)
	}
	s.trend.Add(o.Time, rate)
	s.char.Intervals++
	s.sinceShift++

	s.char.ArrivalRate = s.rateEWMA.Value()
	s.char.Population = s.popEWMA.Value()
	s.char.MeanCost = s.costEWMA.Value()
	s.char.DemandRate = s.char.ArrivalRate * s.char.MeanCost
	if fit, ok := s.trend.Fit(); ok {
		s.char.Trend = fit.Slope
	} else {
		s.char.Trend = 0
	}
	return s.char
}

// updateCUSUM runs the two-sided CUSUM change test on the detection
// signal and resets the smoothed state when a shift fires, so the
// characterization re-converges to the new regime quickly.
func (d *Detector) updateCUSUM(s *classState, o Observation, signal float64) bool {
	defer s.mean.Add(signal)
	if s.mean.Count() < 3 {
		return false // not enough history to normalize
	}
	sd := s.mean.StdDev()
	if sd < 1e-9 {
		sd = math.Max(1e-9, math.Abs(s.mean.Mean())*0.1+1e-9)
	}
	z := (signal - s.mean.Mean()) / sd
	s.cusumPos = math.Max(0, s.cusumPos+z-d.cfg.CUSUMDrift)
	s.cusumNeg = math.Max(0, s.cusumNeg-z-d.cfg.CUSUMDrift)
	dir := 0
	switch {
	case s.cusumPos > d.cfg.CUSUMThreshold:
		dir = 1
	case s.cusumNeg > d.cfg.CUSUMThreshold:
		dir = -1
	default:
		return false
	}
	d.shifts = append(d.shifts, Shift{Time: o.Time, Class: o.Class, Direction: dir, Rate: signal})
	s.cusumPos, s.cusumNeg = 0, 0
	s.mean.Reset()
	s.sinceShift = 0
	// Re-anchor the EWMA at the new regime's first sample.
	s.rateEWMA = stats.NewEWMA(d.cfg.Alpha)
	s.trend.Reset()
	return true
}

// Characterization returns the current rolling description of a class
// (zero value if the class was never observed).
func (d *Detector) Characterization(class engine.ClassID) Characterization {
	if s, ok := d.states[class]; ok {
		return s.char
	}
	return Characterization{Class: class}
}

// Shifts returns every detected workload change, in detection order.
func (d *Detector) Shifts() []Shift { return d.shifts }

// Forecast predicts the next interval for a class: the smoothed rate
// extrapolated by the trend, with confidence discounted right after a
// shift.
func (d *Detector) Forecast(class engine.ClassID, horizon float64) Forecast {
	s, ok := d.states[class]
	if !ok || s.char.Intervals == 0 {
		return Forecast{Class: class}
	}
	rate := s.char.ArrivalRate + s.char.Trend*horizon
	if rate < 0 {
		rate = 0
	}
	conf := 1 - math.Exp(-float64(s.sinceShift)/4)
	return Forecast{
		Class:       class,
		ArrivalRate: rate,
		DemandRate:  rate * s.char.MeanCost,
		Confidence:  conf,
	}
}
