// Checkpoint state for the workload detector: per-class smoothers, trend
// windows, CUSUM accumulators, and the shift log.
package detect

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/stats"
)

// ClassStateRecord is one class's serialized detector state.
type ClassStateRecord struct {
	Class      engine.ClassID
	Char       Characterization
	RateEWMA   stats.EWMAState
	PopEWMA    stats.EWMAState
	CostEWMA   stats.EWMAState
	Trend      stats.RegressionState
	Mean       stats.SummaryState
	CusumPos   float64
	CusumNeg   float64
	SinceShift int
}

// CheckpointState is the detector's serializable state.
type CheckpointState struct {
	Classes []ClassStateRecord // sorted by class id
	Shifts  []Shift
}

// CheckpointState captures the detector.
func (d *Detector) CheckpointState() CheckpointState {
	st := CheckpointState{Shifts: append([]Shift(nil), d.shifts...)}
	for class, s := range d.states {
		st.Classes = append(st.Classes, ClassStateRecord{
			Class:      class,
			Char:       s.char,
			RateEWMA:   s.rateEWMA.State(),
			PopEWMA:    s.popEWMA.State(),
			CostEWMA:   s.costEWMA.State(),
			Trend:      s.trend.State(),
			Mean:       s.mean.State(),
			CusumPos:   s.cusumPos,
			CusumNeg:   s.cusumNeg,
			SinceShift: s.sinceShift,
		})
	}
	sort.Slice(st.Classes, func(i, j int) bool { return st.Classes[i].Class < st.Classes[j].Class })
	return st
}

// RestoreCheckpoint overwrites a freshly constructed detector.
func (d *Detector) RestoreCheckpoint(st CheckpointState) {
	d.shifts = append([]Shift(nil), st.Shifts...)
	d.states = make(map[engine.ClassID]*classState, len(st.Classes))
	for _, rec := range st.Classes {
		s := d.state(rec.Class) // allocates the EWMA/regression internals
		s.char = rec.Char
		s.rateEWMA.SetState(rec.RateEWMA)
		s.popEWMA.SetState(rec.PopEWMA)
		s.costEWMA.SetState(rec.CostEWMA)
		s.trend.SetState(rec.Trend)
		s.mean.SetState(rec.Mean)
		s.cusumPos = rec.CusumPos
		s.cusumNeg = rec.CusumNeg
		s.sinceShift = rec.SinceShift
	}
}
