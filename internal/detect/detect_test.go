package detect

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/simclock"
)

func observe(d *Detector, class engine.ClassID, t simclock.Time, arrivals int, cost float64) Characterization {
	return d.Observe(Observation{
		Time:     t,
		Class:    class,
		Arrivals: arrivals,
		MeanCost: cost,
		Interval: 60,
	})
}

func TestCharacterizationConverges(t *testing.T) {
	d := New(DefaultConfig())
	var char Characterization
	for i := 0; i < 30; i++ {
		char = observe(d, 1, float64(i*60), 120, 4000) // 2/s at 4000 timerons
	}
	if math.Abs(char.ArrivalRate-2) > 0.05 {
		t.Fatalf("arrival rate = %v, want ~2/s", char.ArrivalRate)
	}
	if math.Abs(char.MeanCost-4000) > 1 {
		t.Fatalf("mean cost = %v", char.MeanCost)
	}
	if math.Abs(char.DemandRate-8000) > 200 {
		t.Fatalf("demand rate = %v, want ~8000 timerons/s", char.DemandRate)
	}
	if math.Abs(char.Trend) > 1e-3 {
		t.Fatalf("trend = %v on a steady workload", char.Trend)
	}
	if char.Intervals != 30 {
		t.Fatalf("intervals = %d", char.Intervals)
	}
}

func TestClassesAreIndependent(t *testing.T) {
	d := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		observe(d, 1, float64(i*60), 60, 1000)
		observe(d, 2, float64(i*60), 600, 10)
	}
	c1 := d.Characterization(1)
	c2 := d.Characterization(2)
	if math.Abs(c1.ArrivalRate-1) > 0.1 || math.Abs(c2.ArrivalRate-10) > 1 {
		t.Fatalf("rates = %v / %v", c1.ArrivalRate, c2.ArrivalRate)
	}
}

func TestUnknownClassZeroValue(t *testing.T) {
	d := New(DefaultConfig())
	c := d.Characterization(9)
	if c.Intervals != 0 || c.ArrivalRate != 0 {
		t.Fatal("unknown class not zero-valued")
	}
	f := d.Forecast(9, 60)
	if f.ArrivalRate != 0 || f.Confidence != 0 {
		t.Fatal("unknown class forecast not zero-valued")
	}
}

func TestShiftDetection(t *testing.T) {
	d := New(DefaultConfig())
	// Stable regime, then a 3x intensity jump (a Figure 3 period
	// boundary). The CUSUM should fire within a few intervals.
	tick := 0
	for ; tick < 20; tick++ {
		observe(d, 1, float64(tick*60), 100, 1000)
	}
	for ; tick < 30; tick++ {
		observe(d, 1, float64(tick*60), 300, 1000)
	}
	shifts := d.Shifts()
	if len(shifts) == 0 {
		t.Fatal("3x intensity jump not detected")
	}
	up := shifts[0]
	if up.Direction != 1 {
		t.Fatalf("direction = %d, want +1", up.Direction)
	}
	if up.Time < 20*60 || up.Time > 26*60 {
		t.Fatalf("detected at %v, want shortly after t=1200", up.Time)
	}
	// After the shift the characterization re-converges to the new rate.
	c := d.Characterization(1)
	if math.Abs(c.ArrivalRate-5) > 0.5 {
		t.Fatalf("post-shift rate = %v, want ~5/s", c.ArrivalRate)
	}
}

func TestDownwardShiftDetection(t *testing.T) {
	d := New(DefaultConfig())
	tick := 0
	for ; tick < 20; tick++ {
		observe(d, 1, float64(tick*60), 300, 1000)
	}
	for ; tick < 30; tick++ {
		observe(d, 1, float64(tick*60), 60, 1000)
	}
	found := false
	for _, s := range d.Shifts() {
		if s.Direction == -1 {
			found = true
		}
	}
	if !found {
		t.Fatal("5x intensity drop not detected")
	}
}

func TestNoFalseAlarmsOnSteadyLoad(t *testing.T) {
	d := New(DefaultConfig())
	// Mild noise around a constant rate.
	counts := []int{100, 104, 97, 101, 99, 103, 98, 100, 102, 96}
	for i := 0; i < 50; i++ {
		observe(d, 1, float64(i*60), counts[i%len(counts)], 1000)
	}
	if n := len(d.Shifts()); n != 0 {
		t.Fatalf("%d false alarms on steady load", n)
	}
}

func TestTrendOnRamp(t *testing.T) {
	d := New(DefaultConfig())
	var char Characterization
	for i := 0; i < 8; i++ {
		// Arrivals grow every interval: 60, 120, 180, ...
		char = observe(d, 1, float64(i*60), 60*(i+1), 1000)
	}
	if char.Trend <= 0 {
		t.Fatalf("trend = %v on a ramp, want positive", char.Trend)
	}
	fc := d.Forecast(1, 60)
	if fc.ArrivalRate <= char.ArrivalRate {
		t.Fatal("forecast should extrapolate the ramp upward")
	}
}

func TestForecastConfidenceDropsAfterShift(t *testing.T) {
	d := New(DefaultConfig())
	tick := 0
	for ; tick < 25; tick++ {
		observe(d, 1, float64(tick*60), 100, 1000)
	}
	before := d.Forecast(1, 60).Confidence
	for ; tick < 40 && len(d.Shifts()) == 0; tick++ {
		observe(d, 1, float64(tick*60), 500, 1000)
	}
	if len(d.Shifts()) == 0 {
		t.Fatal("shift not detected")
	}
	observe(d, 1, float64(tick*60), 500, 1000)
	after := d.Forecast(1, 60).Confidence
	if after >= before {
		t.Fatalf("confidence %v -> %v should fall after a shift", before, after)
	}
}

func TestForecastNeverNegative(t *testing.T) {
	d := New(DefaultConfig())
	// Steep downward ramp.
	for i := 0; i < 8; i++ {
		observe(d, 1, float64(i*60), 800-i*100, 1000)
	}
	fc := d.Forecast(1, 600) // long horizon to force extrapolation below 0
	if fc.ArrivalRate < 0 || fc.DemandRate < 0 {
		t.Fatalf("negative forecast %+v", fc)
	}
}

func TestZeroArrivalIntervalsKeepCost(t *testing.T) {
	d := New(DefaultConfig())
	observe(d, 1, 0, 100, 2500)
	observe(d, 1, 60, 0, 0) // idle interval: no cost sample
	c := d.Characterization(1)
	if c.MeanCost != 2500 {
		t.Fatalf("idle interval corrupted cost: %v", c.MeanCost)
	}
}

func TestInvalidIntervalPanics(t *testing.T) {
	d := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	d.Observe(Observation{Class: 1, Interval: 0})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Alpha: 0, TrendWindow: 8, CUSUMThreshold: 4, CUSUMDrift: 0.5},
		{Alpha: 1.5, TrendWindow: 8, CUSUMThreshold: 4, CUSUMDrift: 0.5},
		{Alpha: 0.5, TrendWindow: 1, CUSUMThreshold: 4, CUSUMDrift: 0.5},
		{Alpha: 0.5, TrendWindow: 8, CUSUMThreshold: 0, CUSUMDrift: 0.5},
		{Alpha: 0.5, TrendWindow: 8, CUSUMThreshold: 4, CUSUMDrift: -1},
	}
	for i, cfg := range bad {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}
