package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// shortSchedule compresses the paper's intensity pattern into six short
// periods so integration tests run in milliseconds of wall time.
func shortSchedule() workload.Schedule {
	s := workload.Schedule{PeriodSeconds: 600}
	counts := [][3]int{
		{2, 3, 15}, {4, 2, 20}, {3, 4, 25},
		{2, 3, 15}, {3, 4, 20}, {2, 6, 25},
	}
	for _, c := range counts {
		s.Clients = append(s.Clients, map[engine.ClassID]int{1: c[0], 2: c[1], 3: c[2]})
	}
	return s
}

func TestNewRigShape(t *testing.T) {
	rig := NewRig(1, shortSchedule())
	if len(rig.Classes) != 3 {
		t.Fatalf("%d classes", len(rig.Classes))
	}
	if got := rig.OLAPClassIDs(); len(got) != 2 {
		t.Fatalf("OLAP classes = %v", got)
	}
	if rig.OLTPClass() == nil || rig.OLTPClass().ID != 3 {
		t.Fatal("OLTP class missing")
	}
	// Pool must be provisioned for the schedule's maxima.
	for cls, want := range rig.Sched.MaxClients() {
		if got := len(rig.Pool.Clients(cls)); got != want {
			t.Fatalf("class %d has %d clients, want %d", cls, got, want)
		}
	}
}

func TestSampleOLAPCosts(t *testing.T) {
	rig := NewRig(1, shortSchedule())
	costs := rig.SampleOLAPCosts(500, 7)
	if len(costs) != 500 {
		t.Fatalf("%d costs", len(costs))
	}
	var min, max float64 = math.Inf(1), 0
	for _, c := range costs {
		if c <= 0 {
			t.Fatal("non-positive cost sample")
		}
		min = math.Min(min, c)
		max = math.Max(max, c)
	}
	if max/min < 10 {
		t.Fatalf("sample spread %v too tight", max/min)
	}
}

func TestRunMixedAllModes(t *testing.T) {
	for _, mode := range []Mode{NoControl, QPPriority, QPNoPriority, QueryScheduler} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			res := RunMixed(MixedConfig{Mode: mode, Sched: shortSchedule(), Seed: 1})
			if err := res.Validate(); err != nil {
				t.Fatal(err)
			}
			if res.Periods != 6 {
				t.Fatalf("periods = %d", res.Periods)
			}
			// Every class must complete work in most periods.
			for i := range res.Classes {
				measured := 0
				for p := 0; p < res.Periods; p++ {
					if res.Measurable[i][p] {
						measured++
					}
				}
				if measured < res.Periods/2 {
					t.Fatalf("class %d measurable in only %d periods", i, measured)
				}
			}
			// OLTP responses must be sane (sub-second under all modes).
			for p := 0; p < res.Periods; p++ {
				if res.Measurable[2][p] && (res.Metric[2][p] <= 0 || res.Metric[2][p] > 2) {
					t.Fatalf("OLTP RT in period %d = %v", p, res.Metric[2][p])
				}
			}
			if mode == QueryScheduler {
				if res.CostLimits == nil || len(res.PlanHistory) == 0 {
					t.Fatal("QS run missing plan history")
				}
				for _, rec := range res.PlanHistory {
					if math.Abs(rec.Limits.Sum()-SystemCostLimit) > 1e-6 {
						t.Fatalf("plan sum %v", rec.Limits.Sum())
					}
				}
			} else if res.CostLimits != nil {
				t.Fatal("non-QS run has cost limits")
			}
		})
	}
}

func TestQPPriorityDifferentiatesOLAPClasses(t *testing.T) {
	res := RunMixed(MixedConfig{Mode: QPPriority, Sched: shortSchedule(), Seed: 1})
	better := 0
	comparable := 0
	for p := 0; p < res.Periods; p++ {
		if !res.Measurable[0][p] || !res.Measurable[1][p] {
			continue
		}
		comparable++
		if res.Metric[1][p] >= res.Metric[0][p] {
			better++
		}
	}
	if comparable == 0 {
		t.Fatal("no comparable periods")
	}
	if float64(better)/float64(comparable) < 0.7 {
		t.Fatalf("class 2 beat class 1 in only %d/%d periods under priority control",
			better, comparable)
	}
}

func TestQSBeatsStaticControlOnOLTPGoal(t *testing.T) {
	qp := RunMixed(MixedConfig{Mode: QPPriority, Sched: shortSchedule(), Seed: 1})
	qs := RunMixed(MixedConfig{Mode: QueryScheduler, Sched: shortSchedule(), Seed: 1})
	if qs.Satisfaction[2] < qp.Satisfaction[2] {
		t.Fatalf("QS OLTP satisfaction %v below QP %v", qs.Satisfaction[2], qp.Satisfaction[2])
	}
	// And the heavy-period response time must improve.
	heavy := 5 // period 6: (2, 6, 25)
	if qs.Measurable[2][heavy] && qp.Measurable[2][heavy] {
		if qs.Metric[2][heavy] > qp.Metric[2][heavy]*1.1 {
			t.Fatalf("QS heavy-period RT %v worse than QP %v",
				qs.Metric[2][heavy], qp.Metric[2][heavy])
		}
	}
}

func TestRunFig2Monotone(t *testing.T) {
	cfg := Fig2Config{
		Pairs:  [][2]int{{20, 4}},
		Limits: []float64{4000, 16000, 28000},
		Window: 900,
		Seed:   1,
	}
	curves := RunFig2(cfg)
	if len(curves) != 1 {
		t.Fatalf("%d curves", len(curves))
	}
	c := curves[0]
	if len(c.MeanRT) != 3 {
		t.Fatalf("%d points", len(c.MeanRT))
	}
	// OLTP response time must not decrease as the OLAP limit grows.
	if c.MeanRT[2] < c.MeanRT[0] {
		t.Fatalf("RT fell with OLAP limit: %v", c.MeanRT)
	}
	for _, rt := range c.MeanRT {
		if rt <= 0 || rt > 2 {
			t.Fatalf("implausible RT %v", rt)
		}
	}
}

func TestRunSaturationShape(t *testing.T) {
	cfg := SaturationConfig{
		Limits:      []float64{15000, 30000, 60000},
		OLAPClients: 10,
		Window:      1800,
		Seed:        1,
	}
	points := RunSaturation(cfg)
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	for _, p := range points {
		if p.QueriesPerHour <= 0 {
			t.Fatalf("no throughput at limit %v", p.Limit)
		}
	}
	// Throughput must saturate: the step from 30k to 60k should gain far
	// less than the step from 15k to 30k gained (if anything).
	gainLow := points[1].QueriesPerHour - points[0].QueriesPerHour
	gainHigh := points[2].QueriesPerHour - points[1].QueriesPerHour
	if gainHigh > gainLow && gainHigh > 0.2*points[1].QueriesPerHour {
		t.Fatalf("no saturation: %v", points)
	}
}

func TestRunInterceptionOverhead(t *testing.T) {
	res := RunInterceptionOverhead(10, 0.05, 1, 0)
	if res.DirectMeanRT <= res.UnmanagedMeanRT {
		t.Fatalf("interception with overhead must hurt: %+v", res)
	}
	if res.DirectMeanRT < 1.5*res.UnmanagedMeanRT {
		t.Fatalf("overhead effect too small to motivate the paper's design: %+v", res)
	}
}

func TestConstantScheduleShape(t *testing.T) {
	s := ConstantSchedule(100, 100, map[engine.ClassID]int{1: 2})
	if s.Periods() != 2 || s.Duration() != 200 {
		t.Fatalf("schedule = %+v", s)
	}
	// Mutating the input map must not affect the schedule.
	in := map[engine.ClassID]int{1: 2}
	s = ConstantSchedule(50, 50, in)
	in[1] = 99
	if s.Clients[0][1] != 2 {
		t.Fatal("schedule aliases caller's map")
	}
}

func TestConstantScheduleMismatchSplits(t *testing.T) {
	// Unequal windows used to panic; they now split into equal-length
	// periods at the windows' greatest common divisor.
	s := ConstantSchedule(10, 20, map[engine.ClassID]int{1: 1})
	if s.PeriodSeconds != 10 || s.Periods() != 3 {
		t.Fatalf("ConstantSchedule(10, 20) = %d periods of %vs, want 3 of 10s",
			s.Periods(), s.PeriodSeconds)
	}
}

func TestReportRendering(t *testing.T) {
	res := RunMixed(MixedConfig{Mode: QueryScheduler, Sched: shortSchedule(), Seed: 1})
	var b strings.Builder
	WriteMixed(&b, res)
	out := b.String()
	for _, want := range []string{"query-scheduler", "Class 1", "velocity >= 0.40", "met"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteMixed output missing %q", want)
		}
	}
	b.Reset()
	WriteCostLimits(&b, res)
	if !strings.Contains(b.String(), "Figure 7") || !strings.Contains(b.String(), "total") {
		t.Fatal("WriteCostLimits output malformed")
	}
	// Non-QS result prints a notice instead.
	b.Reset()
	WriteCostLimits(&b, &MixedResult{Mode: NoControl, Periods: 0})
	if !strings.Contains(b.String(), "does not adapt") {
		t.Fatal("missing non-QS notice")
	}
	b.Reset()
	WriteSchedule(&b, workload.PaperSchedule(), workload.PaperClasses())
	if !strings.Contains(b.String(), "Figure 3") {
		t.Fatal("WriteSchedule malformed")
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, []float64{1, 2}, []float64{3, 4})
	want := "a,b\n1,3\n2,4\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
	if CSV([]string{"x"}) != "x\n" {
		t.Fatal("empty CSV wrong")
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		NoControl: "no-control", QPPriority: "qp-priority",
		QPNoPriority: "qp-no-priority", QueryScheduler: "query-scheduler",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("Mode(%d).String() = %q", int(m), m.String())
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := RunMixed(MixedConfig{Mode: QueryScheduler, Sched: shortSchedule(), Seed: 5})
	b := RunMixed(MixedConfig{Mode: QueryScheduler, Sched: shortSchedule(), Seed: 5})
	for i := range a.Metric {
		for p := range a.Metric[i] {
			if a.Metric[i][p] != b.Metric[i][p] {
				t.Fatalf("run not reproducible at class %d period %d", i, p)
			}
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a := RunMixed(MixedConfig{Mode: NoControl, Sched: shortSchedule(), Seed: 1})
	b := RunMixed(MixedConfig{Mode: NoControl, Sched: shortSchedule(), Seed: 2})
	same := true
	for i := range a.Metric {
		for p := range a.Metric[i] {
			if a.Metric[i][p] != b.Metric[i][p] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}
