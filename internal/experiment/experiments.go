// The paper's experiments, one runner per table/figure. See DESIGN.md's
// per-experiment index and EXPERIMENTS.md for paper-vs-measured results.
package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/patroller"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ConstantSchedule returns a schedule with fixed client counts covering a
// warm-up window followed by a measurement window. The Schedule type uses
// equal-length periods, so unequal windows are split at their greatest
// common divisor: ConstantSchedule(600, 3600, …) yields seven 600-second
// periods (one warm-up + six measurement). Equal windows produce exactly
// two periods, as before; use MeasureStartPeriod to locate the first
// measurement period in the general case.
func ConstantSchedule(warmup, measure float64, clients map[engine.ClassID]int) workload.Schedule {
	period, nw, nm := splitWindows(warmup, measure)
	sched := workload.Schedule{PeriodSeconds: period}
	for i := 0; i < nw+nm; i++ {
		sched.Clients = append(sched.Clients, cloneCounts(clients))
	}
	return sched
}

// MeasureStartPeriod returns the index of the first measurement period in
// the schedule ConstantSchedule(warmup, measure, …) produces. With equal
// windows this is 1 (period 0 warms up, period 1 measures).
func MeasureStartPeriod(warmup, measure float64) int {
	_, nw, _ := splitWindows(warmup, measure)
	return nw
}

// splitWindows finds the common period length for the two windows and how
// many periods each spans.
func splitWindows(warmup, measure float64) (period float64, warmupPeriods, measurePeriods int) {
	if warmup <= 0 || measure <= 0 {
		panic(fmt.Sprintf("experiment: non-positive window (%v warm-up, %v measure)", warmup, measure))
	}
	//lint:ignore floateq equal-window configs carry the identical literal, so exact equality holds; shortcut skips GCD noise
	if warmup == measure {
		return warmup, 1, 1
	}
	period = floatGCD(warmup, measure)
	warmupPeriods = int(warmup/period + 0.5)
	measurePeriods = int(measure/period + 0.5)
	if warmupPeriods+measurePeriods > 10000 {
		panic(fmt.Sprintf(
			"experiment: windows %v and %v are incommensurable (%d periods); pick window lengths with a reasonable common divisor",
			warmup, measure, warmupPeriods+measurePeriods))
	}
	return period, warmupPeriods, measurePeriods
}

// floatGCD is Euclid's algorithm with a relative tolerance, so 600 and
// 3600 (or 0.3 and 0.5, despite binary rounding) divide cleanly.
func floatGCD(a, b float64) float64 {
	eps := 1e-9 * math.Max(a, b)
	for b > eps {
		a, b = b, math.Mod(a, b)
	}
	return a
}

func cloneCounts(m map[engine.ClassID]int) map[engine.ClassID]int {
	out := make(map[engine.ClassID]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// SaturationPoint is one sample of the system cost-limit calibration curve
// (E0): throughput and performance of an OLAP-only workload at one system
// cost limit.
type SaturationPoint struct {
	Limit           float64
	QueriesPerHour  float64
	MeanRespSeconds float64
	MeanVelocity    float64
}

// SaturationConfig tunes E0.
type SaturationConfig struct {
	Limits      []float64
	OLAPClients int
	Window      float64 // seconds per warm-up/measure window
	Seed        uint64
	// Parallel is the sweep's worker count: 0 = GOMAXPROCS, 1 = serial.
	// Results are identical either way (each limit runs in its own Rig).
	Parallel int
}

// DefaultSaturationConfig sweeps 2k-60k timerons with a saturating client
// population.
func DefaultSaturationConfig() SaturationConfig {
	var limits []float64
	for l := 2000.0; l <= 60000; l += 4000 {
		limits = append(limits, l)
	}
	return SaturationConfig{Limits: limits, OLAPClients: 16, Window: 3600, Seed: 1}
}

// RunSaturation regenerates the paper's calibration step: "plotting the
// curve of the throughput versus the system cost limit" to pick a healthy
// (under-saturated) operating point. The knee of the resulting curve
// motivates SystemCostLimit = 30,000.
func RunSaturation(cfg SaturationConfig) []SaturationPoint {
	return Map(cfg.Parallel, cfg.Limits, func(limit float64, _ int) SaturationPoint {
		sched := ConstantSchedule(cfg.Window, cfg.Window, map[engine.ClassID]int{
			1: cfg.OLAPClients, 2: 0, 3: 0,
		})
		rig := NewRig(cfg.Seed, sched)
		rig.Pat = patroller.New(rig.Eng, rig.OLAPClassIDs()...)
		rig.Pat.SetPolicy(patroller.SystemLimit{Limit: limit})
		rig.Run()

		agg := rig.Collector.Agg(1, 1) // class 1, measurement period
		return SaturationPoint{
			Limit:           limit,
			QueriesPerHour:  float64(agg.Completed) / cfg.Window * 3600,
			MeanRespSeconds: agg.Resp.Mean(),
			MeanVelocity:    agg.Velocity.Mean(),
		}
	})
}

// Fig2Curve is one legend entry of Figure 2: OLTP average response time as
// a function of the total OLAP cost limit, for a fixed client mix.
type Fig2Curve struct {
	OLTPClients int
	OLAPClients int
	Limits      []float64
	MeanRT      []float64
}

// Fig2Config tunes E1.
type Fig2Config struct {
	// Pairs lists (OLTP clients, OLAP clients) mixes. The paper's legend
	// reads (30,4), (30,8), (30,2), (50,8).
	Pairs  [][2]int
	Limits []float64
	Window float64
	Seed   uint64
	// Parallel is the sweep's worker count: 0 = GOMAXPROCS, 1 = serial.
	Parallel int
}

// DefaultFig2Config matches the paper's Figure 2 axes: OLAP cost limits up
// to 40k timerons.
func DefaultFig2Config() Fig2Config {
	var limits []float64
	for l := 2000.0; l <= 40000; l += 4000 {
		limits = append(limits, l)
	}
	return Fig2Config{
		Pairs:  [][2]int{{30, 4}, {30, 8}, {30, 2}, {50, 8}},
		Limits: limits,
		Window: 2400,
		Seed:   1,
	}
}

// RunFig2 measures OLTP performance against the OLAP cost limit — the
// experiment justifying the linear OLTP performance model. All OLAP
// clients run under a single static cost limit; the OLTP class runs
// unintercepted.
func RunFig2(cfg Fig2Config) []Fig2Curve {
	// Flatten the (mix, limit) grid so every cell is one independent job.
	type cell struct {
		pair  [2]int
		limit float64
	}
	var cells []cell
	for _, pair := range cfg.Pairs {
		for _, limit := range cfg.Limits {
			cells = append(cells, cell{pair, limit})
		}
	}
	rts := Map(cfg.Parallel, cells, func(c cell, _ int) float64 {
		sched := ConstantSchedule(cfg.Window, cfg.Window, map[engine.ClassID]int{
			1: c.pair[1], 2: 0, 3: c.pair[0],
		})
		rig := NewRig(cfg.Seed, sched)
		rig.Pat = patroller.New(rig.Eng, rig.OLAPClassIDs()...)
		rig.Pat.SetPolicy(patroller.SystemLimit{Limit: c.limit})
		rig.Run()
		return rig.Collector.Agg(1, 3).Resp.Mean()
	})

	var out []Fig2Curve
	for pi, pair := range cfg.Pairs {
		curve := Fig2Curve{OLTPClients: pair[0], OLAPClients: pair[1], Limits: cfg.Limits}
		curve.MeanRT = append(curve.MeanRT, rts[pi*len(cfg.Limits):(pi+1)*len(cfg.Limits)]...)
		out = append(out, curve)
	}
	return out
}

// MixedResult is the outcome of one full 18-period mixed-workload run —
// the data behind Figures 4, 5, 6, and (for Query Scheduler mode) 7.
type MixedResult struct {
	Mode    Mode
	Classes []*workload.Class
	Periods int
	// Metric[i][p] is class i's goal-metric value in period p (velocity
	// for OLAP classes, mean response time for the OLTP class).
	Metric [][]float64
	// Measurable[i][p] reports whether the class completed anything in p.
	Measurable [][]bool
	// GoalMet[i][p] reports goal attainment (false when unmeasurable).
	GoalMet [][]bool
	// Satisfaction[i] is the fraction of measurable periods class i met
	// its goal in.
	Satisfaction []float64
	// Completed[i][p] counts class i completions in period p.
	Completed [][]int
	// RespP95[i][p] is the 95th-percentile response time of class i in
	// period p (0 when nothing completed) — tail visibility the paper's
	// mean-based goals hide.
	RespP95 [][]float64
	// CostLimits[i][p], present only in Query Scheduler mode, is the mean
	// cost limit assigned to class i during period p (Figure 7).
	CostLimits [][]float64
	// PlanHistory, present only in Query Scheduler mode, is the full
	// control-interval record.
	PlanHistory []core.PlanRecord
	// Pending[i][p] counts class i queries submitted by the end of period
	// p that had not completed by then (still queued or running).
	Pending [][]int
	// ExportErr carries the first trace/metrics export failure, when the
	// run was configured with observability writers. The simulation
	// itself still completed; callers decide whether a truncated export
	// is fatal.
	ExportErr error
	// Faults counts what the fault injector actually did (zero when the
	// run had no fault plan).
	Faults fault.Stats
	// PatStats is the patroller's cumulative counters — interceptions,
	// failures, retries, timeouts — for fault-matrix reporting.
	PatStats patroller.Stats
	// Crashed reports that a fault-plan crash stopped the run mid-
	// simulation. The tables above cover only the completed prefix;
	// resume the run from its checkpoints with ResumeMixed.
	Crashed bool
}

// MixedConfig tunes the mixed-workload experiments.
type MixedConfig struct {
	Mode  Mode
	Sched workload.Schedule
	Seed  uint64
	// QS optionally overrides the Query Scheduler configuration.
	QS *core.Config
	// Classes optionally replaces the paper's three service classes.
	Classes []*workload.Class
	// Experiment names the run in the trace header (defaults to the
	// mode's name).
	Experiment string
	// Trace, when non-nil, receives the run's lossless JSONL event
	// stream (readable by cmd/qtrace).
	Trace io.Writer
	// Metrics, when non-nil, receives the run's metrics registry as
	// Prometheus-style text exposition after the run.
	Metrics io.Writer
	// Decisions, when non-nil, receives the control plane's decision
	// audit log as JSONL (readable by cmd/qreport). Query Scheduler
	// mode only — the other controllers make no per-tick decisions.
	Decisions io.Writer
	// Faults, when non-nil and non-empty, injects the fault plan into
	// the run's engine and (in Query Scheduler mode) monitor.
	Faults *fault.Plan
	// Retry, when non-nil, arms the patroller's per-query timeout and
	// bounded-retry mitigation. If its RefreshCost is nil and a fault
	// plan is active, retries are re-costed through the injector's
	// misestimation factors.
	Retry *patroller.RetryPolicy
	// CheckpointEvery, when positive, writes a crash-consistent snapshot
	// into CheckpointDir every N control boundaries (control ticks in
	// Query Scheduler mode, schedule periods otherwise). See
	// checkpoint.go; resume with ResumeMixed.
	CheckpointEvery int
	// CheckpointDir is where checkpoint files land; required when
	// CheckpointEvery is set.
	CheckpointDir string
	// StreamingClients builds the run's client pool with the streaming
	// generator: clients materialize lazily on first activation instead of
	// up front. Behaviour is byte-identical to the eager pool; the point is
	// memory — million-client schedules only pay for the clients a period
	// actually activates.
	StreamingClients bool
	// Backends, when it lists two or more specs, runs the workload on a
	// fleet: N backends (each with its own engine, patroller, and Query
	// Scheduler) behind the routing tier, with the hierarchical planner
	// splitting SystemCostLimit across them by routed demand. Query
	// Scheduler mode only. Faults and Retry apply per backend: every
	// backend gets its own injector (seeded per roster ID) and retry
	// policy, and backend-scoped fault kinds (crash/brownout/dropout)
	// target roster IDs directly. Zero or one spec takes the classic
	// single-engine path, byte-identical to a config without this field.
	Backends []backend.Spec
	// DisableFleetMitigation turns off the fleet's failover response:
	// backend crashes still stall their engines, but the router is never
	// told (no re-dispatch, no scoring removal) and the planner neither
	// re-splits the budget away from the dead backend nor migrates
	// demand on infeasibility. The control arm of the failover
	// experiment; pointless outside it.
	DisableFleetMitigation bool
}

// DefaultMixedConfig runs the given mode over the paper's Figure 3
// schedule (18 periods, 24 hours).
func DefaultMixedConfig(mode Mode) MixedConfig {
	return MixedConfig{Mode: mode, Sched: workload.PaperSchedule(), Seed: 1}
}

// RunMixed executes one mixed-workload experiment. Two or more backend
// specs dispatch to the fleet runner (RunFleet); zero or one run the
// classic single-engine rig.
func RunMixed(cfg MixedConfig) *MixedResult {
	if len(cfg.Backends) >= 2 {
		return RunFleet(cfg).MixedResult
	}
	if cfg.CheckpointEvery > 0 {
		validateCheckpointing(cfg)
	}
	rig, obsAttach, obsErr := buildMixedRig(cfg, false)
	var spec RunSpec
	if cfg.CheckpointEvery > 0 {
		spec = specFromConfig(cfg, rig.Classes)
	}
	inst := rig.Sched.Install(rig.Clock, rig.Pool, nil)
	crashed, runErr := runBoundaries(rig, obsAttach, inst, &spec, cfg, 0)
	if obsErr == nil {
		obsErr = runErr
	}
	if obsErr == nil && !crashed {
		obsErr = obsAttach.finish()
	}
	res := collectMixed(cfg, rig, obsErr)
	res.Crashed = crashed
	return res
}

// buildMixedRig runs RunMixed's construction sequence: rig, fault
// injector, controller, retry policy, observability — in that order.
// ResumeMixed replays the identical sequence (resume=true switches the
// tracer to sink re-attachment without a fresh meta line), which is what
// lets a checkpoint re-arm recorded events onto structurally identical
// components.
func buildMixedRig(cfg MixedConfig, resume bool) (*Rig, *runObs, error) {
	classes := cfg.Classes
	if classes == nil {
		classes = workload.PaperClasses()
	}
	rig := newRig(cfg.Seed, cfg.Sched, classes, cfg.StreamingClients)
	qsCfg := cfg.QS
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		inj := fault.NewInjector(*cfg.Faults, rig.Clock)
		inj.AttachEngine(rig.Eng)
		rig.Faults = inj
		if cfg.Mode == QueryScheduler {
			// Copy the scheduler config (never mutate the caller's) and
			// point its monitor at the injector so snapshot/harvest drops
			// land.
			qc := core.DefaultConfig()
			qc.SystemCostLimit = SystemCostLimit
			if qsCfg != nil {
				qc = *qsCfg
			}
			qc.MonitorFaults = inj
			qsCfg = &qc
		}
	}
	rig.AttachController(cfg.Mode, qsCfg)
	if cfg.Retry != nil {
		rp := *cfg.Retry
		if rp.RefreshCost == nil && rig.Faults != nil {
			rp.RefreshCost = rig.Faults.RefreshCost
		}
		rig.Pat.SetRetryPolicy(&rp)
	}
	obsAttach, obsErr := attachObs(rig, cfg, cfg.Trace, cfg.Metrics, resume)
	return rig, obsAttach, obsErr
}

// collectMixed assembles the result tables from a finished (or crashed)
// rig.
func collectMixed(cfg MixedConfig, rig *Rig, obsErr error) *MixedResult {
	res := &MixedResult{
		Mode: cfg.Mode,
		// The collector returns classes sorted by ID, so report columns
		// come out in the same stable order however the caller ordered
		// its class slice.
		Classes: rig.Collector.Classes(),
		Periods: cfg.Sched.Periods(),
	}
	fillMixedTables(res, rig.Collector)
	res.ExportErr = obsErr
	if rig.Faults != nil {
		res.Faults = rig.Faults.Stats()
	}
	if rig.Pat != nil {
		res.PatStats = rig.Pat.Stats()
	}

	if rig.QS != nil {
		res.PlanHistory = rig.QS.History()
		// res.Classes (not rig.Classes) keeps limit rows aligned with the
		// sorted report columns.
		res.CostLimits = averageLimitsPerPeriod(res.PlanHistory, res.Classes, cfg.Sched)
	}
	return res
}

// fillMixedTables populates the per-class period tables of res from a
// collector — the single-engine rig's, or the fleet-global one that
// folds every backend's completions into one view.
func fillMixedTables(res *MixedResult, col *metrics.Collector) {
	for _, cl := range res.Classes {
		metricRow := make([]float64, res.Periods)
		measurableRow := make([]bool, res.Periods)
		metRow := make([]bool, res.Periods)
		completedRow := make([]int, res.Periods)
		p95Row := make([]float64, res.Periods)
		pendingRow := make([]int, res.Periods)
		for p := 0; p < res.Periods; p++ {
			v, ok := col.Metric(p, cl.ID)
			metricRow[p] = v
			measurableRow[p] = ok
			if ok {
				metRow[p] = cl.Goal.Met(v)
			}
			completedRow[p] = col.Agg(p, cl.ID).Completed
			p95Row[p] = col.RespQuantile(p, cl.ID, 0.95)
			pendingRow[p] = col.Pending(p, cl.ID)
		}
		res.Metric = append(res.Metric, metricRow)
		res.Measurable = append(res.Measurable, measurableRow)
		res.GoalMet = append(res.GoalMet, metRow)
		res.Completed = append(res.Completed, completedRow)
		res.RespP95 = append(res.RespP95, p95Row)
		res.Pending = append(res.Pending, pendingRow)
		res.Satisfaction = append(res.Satisfaction, col.GoalSatisfaction(cl.ID))
	}
}

// averageLimitsPerPeriod folds per-interval plans into per-period means —
// the series Figure 7 plots.
func averageLimitsPerPeriod(hist []core.PlanRecord, classes []*workload.Class,
	sched workload.Schedule) [][]float64 {

	sums := make([][]stats.Summary, len(classes))
	for i := range sums {
		sums[i] = make([]stats.Summary, sched.Periods())
	}
	for _, rec := range hist {
		// A plan chosen at time T governs the interval starting at T;
		// attribute it to the period containing T.
		p := sched.PeriodAt(rec.Time)
		for i, cl := range classes {
			sums[i][p].Add(rec.Limits[cl.ID])
		}
	}
	out := make([][]float64, len(classes))
	for i := range sums {
		out[i] = make([]float64, sched.Periods())
		for p := range sums[i] {
			out[i][p] = sums[i][p].Mean()
		}
	}
	return out
}

// InterceptionOverheadResult quantifies the paper's Section 3 argument:
// intercepting sub-second OLTP queries costs more than running them.
type InterceptionOverheadResult struct {
	OLTPClients      int
	DirectMeanRT     float64 // OLTP intercepted and managed (with overhead)
	UnmanagedMeanRT  float64 // OLTP left alone (the paper's choice)
	OverheadCPU      float64
	MeanOLTPExecTime float64
}

// RunInterceptionOverhead compares the OLTP class intercepted-with-
// overhead against the unmanaged baseline, holding everything else fixed.
// The two arms run on the worker pool (0 workers = GOMAXPROCS).
func RunInterceptionOverhead(oltpClients int, overheadCPU float64, seed uint64, parallel int) InterceptionOverheadResult {
	window := 1200.0
	run := func(manage bool) (meanRT, meanExec float64) {
		sched := ConstantSchedule(window, window, map[engine.ClassID]int{
			1: 0, 2: 0, 3: oltpClients,
		})
		rig := NewRig(seed, sched)
		if manage {
			pat := patroller.New(rig.Eng, 3)
			pat.InterceptOverheadCPU = overheadCPU
			pat.SetPolicy(patroller.SystemLimit{Limit: SystemCostLimit})
		}
		rig.Run()
		agg := rig.Collector.Agg(1, 3)
		return agg.Resp.Mean(), agg.Exec.Mean()
	}
	type arm struct{ rt, exec float64 }
	arms := Map(parallel, []bool{true, false}, func(manage bool, _ int) arm {
		rt, exec := run(manage)
		return arm{rt, exec}
	})
	direct := arms[0].rt
	unmanaged, exec := arms[1].rt, arms[1].exec
	return InterceptionOverheadResult{
		OLTPClients:      oltpClients,
		DirectMeanRT:     direct,
		UnmanagedMeanRT:  unmanaged,
		OverheadCPU:      overheadCPU,
		MeanOLTPExecTime: exec,
	}
}

// Validate sanity-checks a mixed result's shape; used by tests and by
// cmd/qsim before printing.
func (r *MixedResult) Validate() error {
	if len(r.Metric) != len(r.Classes) {
		return fmt.Errorf("experiment: %d metric rows for %d classes", len(r.Metric), len(r.Classes))
	}
	for i, row := range r.Metric {
		if len(row) != r.Periods {
			return fmt.Errorf("experiment: class %d has %d periods, want %d", i, len(row), r.Periods)
		}
	}
	return nil
}
