// Observability wiring for experiment runs: attaches the tracer's JSONL
// sink and the obs metrics registry to a rig, honouring the one-tracer/
// one-registry-per-run isolation the parallel runner depends on. The
// writers are caller-owned; export errors are collected into the result
// rather than interrupting a simulation mid-run.
package experiment

import (
	"fmt"
	"io"

	"repro/internal/decisionlog"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/patroller"
	"repro/internal/trace"
	"repro/internal/workload"
)

// traceRingCap bounds the tracer's in-memory ring during exports. The
// JSONL sink is lossless regardless; the ring only serves interactive
// inspection.
const traceRingCap = 4096

// runObs holds one run's observability attachments.
type runObs struct {
	tracer *trace.Tracer
	reg    *obs.Registry
	mw     io.Writer
	dlog   *decisionlog.Writer
}

// attachObs wires trace export and metrics onto a rig whose controller is
// already attached (hooks chain on top of the monitor's). Call before
// rig.Run; nil writers disable the respective output. With resume=true
// the tracer attaches its sink without writing a meta line — the resumed
// trace file already carries the original header.
func attachObs(rig *Rig, cfg MixedConfig, tw, mw io.Writer, resume bool) (*runObs, error) {
	o := &runObs{}
	if tw != nil {
		tr := trace.New(traceRingCap)
		tr.SetPeriodMapper(cfg.Sched.PeriodAt)
		if resume {
			if err := tr.ResumeJSONL(tw); err != nil {
				return nil, err
			}
		} else if err := tr.StreamJSONL(tw, traceMeta(cfg, rig.Classes)); err != nil {
			return nil, err
		}
		trace.AttachEngine(tr, rig.Eng)
		if rig.Pat != nil {
			trace.AttachPatroller(tr, rig.Pat, rig.Clock)
		}
		if rig.QS != nil {
			trace.AttachScheduler(tr, rig.QS)
		}
		o.tracer = tr
	}
	if mw != nil {
		reg := obs.New(func() float64 { return rig.Clock.Now() })
		instrumentEngine(reg, rig.Eng, rig.Classes)
		if rig.Faults != nil {
			instrumentFaults(reg, rig.Faults)
		}
		if rig.Pat != nil {
			instrumentRetries(reg, rig.Pat)
		}
		if rig.QS != nil {
			rig.QS.Instrument(reg)
		}
		o.reg = reg
		o.mw = mw
	}
	if cfg.Decisions != nil {
		if rig.QS == nil {
			return nil, fmt.Errorf("experiment: decision log requires a query-scheduler run")
		}
		var dw *decisionlog.Writer
		var err error
		if resume {
			dw, err = decisionlog.ResumeWriter(cfg.Decisions, decisionMeta(cfg, rig))
		} else {
			dw, err = decisionlog.NewWriter(cfg.Decisions, decisionMeta(cfg, rig))
		}
		if err != nil {
			return nil, err
		}
		rig.QS.OnPlan(dw.Note)
		o.dlog = dw
	}
	return o, nil
}

// finish flushes the metrics exposition and reports the first export
// error (trace sink or metrics write) the run hit.
func (o *runObs) finish() error {
	if o == nil {
		return nil
	}
	if o.tracer != nil {
		if err := o.tracer.SinkErr(); err != nil {
			return fmt.Errorf("experiment: trace export: %w", err)
		}
	}
	if o.dlog != nil {
		o.dlog.Flush()
		if err := o.dlog.Err(); err != nil {
			return fmt.Errorf("experiment: decision-log export: %w", err)
		}
	}
	if o.reg != nil {
		if err := o.reg.WriteText(o.mw); err != nil {
			return fmt.Errorf("experiment: metrics export: %w", err)
		}
	}
	return nil
}

// decisionMeta builds the decision log's meta line for a mixed run.
func decisionMeta(cfg MixedConfig, rig *Rig) decisionlog.Meta {
	qc := rig.QS.Config()
	m := decisionlog.Meta{
		Experiment:      cfg.Experiment,
		Seed:            int64(cfg.Seed),
		ControlInterval: qc.ControlInterval,
		SLOWindow:       qc.SLOWindow,
		SLOBudget:       qc.SLOBudget,
		Classes:         decisionlog.ClassesMeta(rig.Classes),
	}
	if m.Experiment == "" {
		m.Experiment = cfg.Mode.String()
	}
	return m
}

// traceMeta builds the trace header for a mixed run.
func traceMeta(cfg MixedConfig, classes []*workload.Class) trace.Meta {
	m := trace.Meta{
		Experiment:    cfg.Experiment,
		Seed:          int64(cfg.Seed),
		PeriodSeconds: cfg.Sched.PeriodSeconds,
		Periods:       cfg.Sched.Periods(),
	}
	if m.Experiment == "" {
		m.Experiment = cfg.Mode.String()
	}
	for _, c := range classes {
		m.Classes = append(m.Classes, trace.ClassMeta{
			ID:     int(c.ID),
			Name:   c.Name,
			Kind:   c.Kind.String(),
			Goal:   c.Goal.String(),
			Target: c.Goal.Target,
		})
	}
	return m
}

// classDense caches a per-class instrument in a slice indexed by
// (class - base), falling back to a lazy map for classes outside the
// span the run was configured with. The engine's lifecycle hooks fire
// once per query, so these caches are on the allocation-free hot path.
type classDense[T any] struct {
	base  engine.ClassID
	dense []*T
	far   map[engine.ClassID]*T
}

func newClassDense[T any](classes []*workload.Class) *classDense[T] {
	d := &classDense[T]{}
	if len(classes) > 0 {
		lo, hi := classes[0].ID, classes[0].ID
		for _, c := range classes {
			if c.ID < lo {
				lo = c.ID
			}
			if c.ID > hi {
				hi = c.ID
			}
		}
		d.base = lo
		d.dense = make([]*T, int(hi-lo)+1)
	}
	return d
}

// get returns the cached instrument for id, or nil if make must be called.
func (d *classDense[T]) get(id engine.ClassID, mk func() *T) *T {
	if s := int(id - d.base); s >= 0 && s < len(d.dense) {
		if d.dense[s] == nil {
			d.dense[s] = mk()
		}
		return d.dense[s]
	}
	v, ok := d.far[id]
	if !ok {
		v = mk()
		if d.far == nil {
			d.far = make(map[engine.ClassID]*T)
		}
		d.far[id] = v
	}
	return v
}

// instrumentEngine registers run-level query counters and latency
// histograms fed from the engine's lifecycle hooks, so every mode — not
// just Query Scheduler runs — produces a metrics exposition. Fleet runs
// pass an extra backend label per engine; the instruments are created
// lazily once per class, so the label slice is built off the hot path.
func instrumentEngine(reg *obs.Registry, eng *engine.Engine, classes []*workload.Class, extra ...obs.Label) {
	submitted := newClassDense[obs.Counter](classes)
	completed := newClassDense[obs.Counter](classes)
	failed := newClassDense[obs.Counter](classes)
	resp := newClassDense[obs.Histogram](classes)
	labels := func(id engine.ClassID) []obs.Label {
		ls := append([]obs.Label{}, extra...)
		return append(ls, obs.L("class", fmt.Sprintf("%d", int(id))))
	}
	eng.OnSubmit(func(q *engine.Query) {
		submitted.get(q.Class, func() *obs.Counter {
			return reg.Counter("queries_submitted_total",
				"Queries submitted to the engine, per class.", labels(q.Class)...)
		}).Inc()
	})
	eng.OnDone(func(q *engine.Query) {
		if q.State != engine.StateDone {
			// Terminal failure: count separately, and keep the response
			// histogram honest (an aborted query has no response time).
			failed.get(q.Class, func() *obs.Counter {
				return reg.Counter("queries_failed_total",
					"Queries that ended in terminal failure (aborted, retries exhausted), per class.",
					labels(q.Class)...)
			}).Inc()
			return
		}
		completed.get(q.Class, func() *obs.Counter {
			return reg.Counter("queries_completed_total",
				"Queries completed by the engine, per class.", labels(q.Class)...)
		}).Inc()
		resp.get(q.Class, func() *obs.Histogram {
			return reg.Histogram("query_response_seconds",
				"End-to-end response time (submit to done), per class.",
				obs.DefaultDurationBuckets(), labels(q.Class)...)
		}).Observe(q.ResponseTime())
	})
}

// instrumentFaults exposes every injection as fault_injected_total{kind,
// class}, chaining any OnInject observer already installed.
func instrumentFaults(reg *obs.Registry, inj *fault.Injector) {
	counters := make(map[string]*obs.Counter)
	prev := inj.OnInject
	inj.OnInject = func(kind string, class engine.ClassID) {
		if prev != nil {
			prev(kind, class)
		}
		key := fmt.Sprintf("%s/%d", kind, int(class))
		c, ok := counters[key]
		if !ok {
			c = reg.Counter("fault_injected_total",
				"Faults injected, by kind and class (class 0 = system-wide).",
				obs.L("kind", kind), obs.L("class", fmt.Sprintf("%d", int(class))))
			counters[key] = c
		}
		c.Inc()
	}
}

// instrumentRetries exposes query_retries_total{class}, chaining the
// patroller's retry hook.
func instrumentRetries(reg *obs.Registry, pat *patroller.Patroller) {
	counters := make(map[engine.ClassID]*obs.Counter)
	prev := pat.OnRetry
	pat.OnRetry = func(qi *patroller.QueryInfo) {
		if prev != nil {
			prev(qi)
		}
		c, ok := counters[qi.Class]
		if !ok {
			c = reg.Counter("query_retries_total",
				"Failed managed queries resubmitted by the retry policy, per class.",
				obs.L("class", fmt.Sprintf("%d", int(qi.Class))))
			counters[qi.Class] = c
		}
		c.Inc()
	}
}
