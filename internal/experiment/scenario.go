// JSON scenario definitions: run a custom mix of service classes, goals,
// and a client schedule through any of the controllers without writing
// Go. Used by `qsim -scenario file.json`; see examples/scenarios/.
package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/patroller"
	"repro/internal/workload"
)

// ScenarioSpec is the JSON shape of a custom experiment.
type ScenarioSpec struct {
	// Name labels the scenario in output.
	Name string `json:"name"`
	// Mode is one of "no-control", "qp-priority", "qp-no-priority",
	// "query-scheduler".
	Mode string `json:"mode"`
	// Seed is the run's random seed (default 1).
	Seed uint64 `json:"seed"`
	// PeriodMinutes is the length of every schedule period.
	PeriodMinutes float64 `json:"period_minutes"`
	// Classes defines the service classes in order; the i-th entry of
	// each Periods row is the client count for Classes[i].
	Classes []ScenarioClass `json:"classes"`
	// Periods lists client counts per period, one row per period.
	Periods [][]int `json:"periods"`
	// SystemCostLimit overrides the default 30,000 timerons (optional).
	SystemCostLimit float64 `json:"system_cost_limit"`
	// ControlIntervalSeconds overrides the Query Scheduler's re-planning
	// period (optional).
	ControlIntervalSeconds float64 `json:"control_interval_seconds"`
	// Backends, when it lists two or more entries, runs the scenario on a
	// fleet behind the routing tier (query-scheduler mode only). Each
	// entry may override the engine's CPU/IO capacity, so heterogeneous
	// fleets are plain configuration.
	Backends []ScenarioBackend `json:"backends"`
}

// ScenarioBackend is one fleet backend in a scenario file.
type ScenarioBackend struct {
	Name string `json:"name"`
	// CPUCapacity / IOCapacity override the engine defaults (0 = paper
	// default).
	CPUCapacity float64 `json:"cpu_capacity"`
	IOCapacity  float64 `json:"io_capacity"`
	// Affinity biases the router toward this backend for a class, keyed
	// by 1-based class index ("1", "2", ...); values must be positive.
	Affinity map[string]float64 `json:"affinity"`
}

// ScenarioClass is one service class in a scenario file.
type ScenarioClass struct {
	Name string `json:"name"`
	// Kind is "olap" or "oltp".
	Kind string `json:"kind"`
	// GoalMetric is "velocity" or "response_time".
	GoalMetric string  `json:"goal_metric"`
	GoalTarget float64 `json:"goal_target"`
	Importance int     `json:"importance"`
}

// Scenario is a parsed, validated scenario ready to run.
type Scenario struct {
	Name    string
	Mode    Mode
	Seed    uint64
	Classes []*workload.Class
	Sched   workload.Schedule
	QS      *core.Config
	// Trace/Metrics/Decisions optionally receive the run's JSONL event
	// stream, metrics exposition, and decision audit log (set by the
	// caller, not the JSON spec).
	Trace     io.Writer
	Metrics   io.Writer
	Decisions io.Writer
	// Faults/Retry optionally inject a fault plan and arm the retry
	// mitigation (set by the caller, not the JSON spec — fault plans have
	// their own file format, see fault.ParseSpec).
	Faults *fault.Plan
	Retry  *patroller.RetryPolicy
	// CheckpointEvery/CheckpointDir arm crash-consistent checkpointing
	// (set by the caller, not the JSON spec); see MixedConfig.
	CheckpointEvery int
	CheckpointDir   string
	// Backends, when it lists two or more specs, runs the scenario on a
	// fleet behind the routing tier; see MixedConfig.Backends.
	Backends []backend.Spec
}

// ParseScenario reads and validates a JSON scenario.
func ParseScenario(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec ScenarioSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return buildScenario(spec)
}

func buildScenario(spec ScenarioSpec) (*Scenario, error) {
	s := &Scenario{Name: spec.Name, Seed: spec.Seed}
	if s.Seed == 0 {
		s.Seed = 1
	}
	switch spec.Mode {
	case "no-control", "":
		s.Mode = NoControl
	case "qp-priority":
		s.Mode = QPPriority
	case "qp-no-priority":
		s.Mode = QPNoPriority
	case "query-scheduler":
		s.Mode = QueryScheduler
	default:
		return nil, fmt.Errorf("scenario: unknown mode %q", spec.Mode)
	}

	if len(spec.Classes) == 0 {
		return nil, fmt.Errorf("scenario: no classes")
	}
	oltpCount := 0
	for i, sc := range spec.Classes {
		c := &workload.Class{
			ID:         engine.ClassID(i + 1),
			Name:       sc.Name,
			Importance: sc.Importance,
		}
		if c.Name == "" {
			c.Name = fmt.Sprintf("Class %d", i+1)
		}
		if c.Importance < 1 {
			return nil, fmt.Errorf("scenario: class %q importance %d < 1", c.Name, sc.Importance)
		}
		switch sc.Kind {
		case "olap":
			c.Kind = workload.OLAP
		case "oltp":
			c.Kind = workload.OLTP
			oltpCount++
		default:
			return nil, fmt.Errorf("scenario: class %q has unknown kind %q", c.Name, sc.Kind)
		}
		switch sc.GoalMetric {
		case "velocity":
			if sc.GoalTarget <= 0 || sc.GoalTarget > 1 {
				return nil, fmt.Errorf("scenario: class %q velocity goal %v out of (0,1]", c.Name, sc.GoalTarget)
			}
			c.Goal = workload.Goal{Metric: workload.Velocity, Target: sc.GoalTarget}
		case "response_time":
			if sc.GoalTarget <= 0 {
				return nil, fmt.Errorf("scenario: class %q response-time goal %v must be positive", c.Name, sc.GoalTarget)
			}
			c.Goal = workload.Goal{Metric: workload.AvgResponseTime, Target: sc.GoalTarget}
		default:
			return nil, fmt.Errorf("scenario: class %q has unknown goal metric %q", c.Name, sc.GoalMetric)
		}
		s.Classes = append(s.Classes, c)
	}
	if oltpCount > 1 {
		return nil, fmt.Errorf("scenario: at most one OLTP class is supported, got %d", oltpCount)
	}

	if spec.PeriodMinutes <= 0 {
		return nil, fmt.Errorf("scenario: period_minutes %v must be positive", spec.PeriodMinutes)
	}
	if len(spec.Periods) == 0 {
		return nil, fmt.Errorf("scenario: no periods")
	}
	s.Sched = workload.Schedule{PeriodSeconds: spec.PeriodMinutes * 60}
	for p, row := range spec.Periods {
		if len(row) != len(s.Classes) {
			return nil, fmt.Errorf("scenario: period %d has %d counts for %d classes",
				p+1, len(row), len(s.Classes))
		}
		counts := make(map[engine.ClassID]int, len(row))
		for i, n := range row {
			if n < 0 {
				return nil, fmt.Errorf("scenario: period %d class %d negative count", p+1, i+1)
			}
			counts[s.Classes[i].ID] = n
		}
		s.Sched.Clients = append(s.Sched.Clients, counts)
	}

	if len(spec.Backends) > 0 {
		if len(spec.Backends) >= 2 && s.Mode != QueryScheduler {
			return nil, fmt.Errorf("scenario: fleets need mode \"query-scheduler\", got %q", spec.Mode)
		}
		for i, sb := range spec.Backends {
			bs := backend.Spec{
				Name:        sb.Name,
				CPUCapacity: sb.CPUCapacity,
				IOCapacity:  sb.IOCapacity,
			}
			if bs.Name == "" {
				bs.Name = fmt.Sprintf("b%d", i+1)
			}
			if bs.CPUCapacity < 0 || bs.IOCapacity < 0 {
				return nil, fmt.Errorf("scenario: backend %q has negative capacity", bs.Name)
			}
			for key, w := range sb.Affinity {
				id, err := strconv.Atoi(key)
				if err != nil || id < 1 || id > len(s.Classes) {
					return nil, fmt.Errorf("scenario: backend %q affinity key %q is not a class index in 1..%d",
						bs.Name, key, len(s.Classes))
				}
				if w <= 0 {
					return nil, fmt.Errorf("scenario: backend %q affinity for class %s must be positive, got %v",
						bs.Name, key, w)
				}
				if bs.Affinity == nil {
					bs.Affinity = make(map[engine.ClassID]float64, len(sb.Affinity))
				}
				bs.Affinity[engine.ClassID(id)] = w
			}
			s.Backends = append(s.Backends, bs)
		}
	}

	if spec.SystemCostLimit != 0 || spec.ControlIntervalSeconds != 0 {
		cfg := core.DefaultConfig()
		if spec.SystemCostLimit != 0 {
			cfg.SystemCostLimit = spec.SystemCostLimit
		}
		if spec.ControlIntervalSeconds != 0 {
			cfg.ControlInterval = spec.ControlIntervalSeconds
		}
		s.QS = &cfg
	}
	return s, nil
}

// Run executes the scenario.
func (s *Scenario) Run() *MixedResult {
	name := s.Name
	if name == "" {
		name = "scenario"
	}
	return RunMixed(MixedConfig{
		Mode:            s.Mode,
		Sched:           s.Sched,
		Seed:            s.Seed,
		QS:              s.QS,
		Classes:         s.Classes,
		Experiment:      name,
		Trace:           s.Trace,
		Metrics:         s.Metrics,
		Decisions:       s.Decisions,
		Faults:          s.Faults,
		Retry:           s.Retry,
		CheckpointEvery: s.CheckpointEvery,
		CheckpointDir:   s.CheckpointDir,
		Backends:        s.Backends,
	})
}
