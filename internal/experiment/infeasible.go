// E13: the infeasible-goals experiment. Every class is given a goal the
// shared 30k-timeron budget cannot satisfy simultaneously — two OLAP
// classes demanding near-ideal velocity under heavy contention plus an
// overloaded OLTP class with an aggressive response-time goal — so the
// Performance Solver flags infeasibility on most ticks and the decision
// log records which goal binds. This is the scenario the paper's
// utility-function machinery exists for: when not everything can be
// met, importance decides who hurts.
package experiment

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

// InfeasibleClasses returns the E13 roster: jointly unsatisfiable goals.
func InfeasibleClasses() []*workload.Class {
	return []*workload.Class{
		{ID: 1, Name: "Class 1", Kind: workload.OLAP,
			Goal: workload.Goal{Metric: workload.Velocity, Target: 0.85}, Importance: 1},
		{ID: 2, Name: "Class 2", Kind: workload.OLAP,
			Goal: workload.Goal{Metric: workload.Velocity, Target: 0.90}, Importance: 2},
		{ID: 3, Name: "Class 3", Kind: workload.OLTP,
			Goal: workload.Goal{Metric: workload.AvgResponseTime, Target: 0.05}, Importance: 3},
	}
}

// InfeasibleMixedConfig builds the E13 run: a constant heavy mix (one
// warm-up period, three measured) under the Query Scheduler.
func InfeasibleMixedConfig() MixedConfig {
	return MixedConfig{
		Mode: QueryScheduler,
		Sched: ConstantSchedule(600, 1800, map[engine.ClassID]int{
			1: 6, 2: 6, 3: 40,
		}),
		Classes:    InfeasibleClasses(),
		Seed:       1,
		Experiment: "infeasible",
	}
}

// InfeasibilitySummary aggregates the solver's feasibility verdicts over
// a run's plan history.
type InfeasibilitySummary struct {
	Ticks           int
	HeldTicks       int
	InfeasibleTicks int
	// Binding[class] counts infeasible ticks where that class's goal was
	// the binding constraint.
	Binding map[engine.ClassID]int
	// FinalAttainment/FinalBurnRate are each class's SLO accounting at
	// the last planned (non-held) tick.
	FinalAttainment map[engine.ClassID]float64
	FinalBurnRate   map[engine.ClassID]float64
}

// SummarizeInfeasibility folds a plan history into a summary.
func SummarizeInfeasibility(hist []core.PlanRecord) InfeasibilitySummary {
	s := InfeasibilitySummary{Binding: make(map[engine.ClassID]int)}
	for _, rec := range hist {
		s.Ticks++
		if rec.Held {
			s.HeldTicks++
			continue
		}
		if rec.Search.Infeasible {
			s.InfeasibleTicks++
			s.Binding[rec.Search.Binding]++
		}
		if rec.Attainment != nil {
			s.FinalAttainment = rec.Attainment
			s.FinalBurnRate = rec.BurnRate
		}
	}
	return s
}

// WriteInfeasibility prints the E13 verdict table: how often the solver
// found no feasible plan, which goal bound, and where the SLO accounting
// ended up.
func WriteInfeasibility(w io.Writer, res *MixedResult) {
	s := SummarizeInfeasibility(res.PlanHistory)
	fmt.Fprintf(w, "Solver feasibility (%d control ticks, %d held):\n", s.Ticks, s.HeldTicks)
	planned := s.Ticks - s.HeldTicks
	if planned > 0 {
		fmt.Fprintf(w, "  infeasible ticks: %d/%d (%.0f%%)\n",
			s.InfeasibleTicks, planned, 100*float64(s.InfeasibleTicks)/float64(planned))
	}
	var ids []engine.ClassID
	for id := range s.Binding {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		name := fmt.Sprintf("class %d", id)
		for _, c := range res.Classes {
			if c.ID == id {
				name = c.Name
			}
		}
		fmt.Fprintf(w, "  binding constraint: %s on %d ticks\n", name, s.Binding[id])
	}
	if s.FinalAttainment != nil {
		fmt.Fprintf(w, "  final attainment:")
		for _, c := range res.Classes {
			fmt.Fprintf(w, " %s=%.2f", c.Name, s.FinalAttainment[c.ID])
		}
		fmt.Fprintln(w)
	}
}
