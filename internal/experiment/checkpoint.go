// Crash-consistent checkpoint/restore for mixed-workload runs.
//
// A checkpoint is taken only at a quiescent boundary — between RunUntil
// calls, when every event at or before the current time has fired — so
// each component's state is internally consistent. The snapshot records
// the run's construction parameters (RunSpec) next to every component's
// logical state; closures are never serialized. Resume rebuilds the rig
// by re-running the exact construction sequence RunMixed uses, wipes the
// constructor-scheduled clock events wholesale (Clock.Restore), and then
// re-arms each component's recorded future events with their original
// (time, seq, id) triples, so FIFO tie-breaking and all later sequence
// draws reproduce the uninterrupted run exactly.
package experiment

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/backend"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/decisionlog"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/patroller"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/solver"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RetrySpec mirrors patroller.RetryPolicy without its RefreshCost func
// (which cannot be serialized; resume re-wires it to the injector the
// same way RunMixed does).
type RetrySpec struct {
	MaxAttempts    int
	Backoff        float64
	TimeoutFloor   float64
	TimeoutPerCost float64
}

// RunSpec is the gob-safe record of how a checkpointed run was
// constructed. Resume rebuilds an identical rig from it; only the output
// writers are supplied fresh by the resuming caller.
type RunSpec struct {
	Mode       Mode
	Seed       uint64
	Sched      workload.Schedule
	Classes    []*workload.Class
	Experiment string
	// HasQSCfg records whether the run carried a custom core.Config. The
	// config's interface fields travel out of band: SolverName +
	// GreedyMaxMoves stand in for Config.Solver, and MonitorFaults is
	// re-wired to the rebuilt injector.
	HasQSCfg       bool
	QS             core.Config
	SolverName     string
	GreedyMaxMoves int
	HasFaults      bool
	Faults         fault.Plan
	HasRetry       bool
	Retry          RetrySpec
	// HasTrace/HasMetrics/HasDecisions record which exports were
	// attached; resume must re-attach the same set or the outputs would
	// diverge.
	HasTrace     bool
	HasMetrics   bool
	HasDecisions bool
	// Streaming records whether the pool used the streaming client
	// generator; resume must rebuild it the same way.
	Streaming bool
	// Backends records the fleet roster for multi-backend runs (nil for
	// the classic single-engine rig); resume rebuilds the same fleet.
	Backends []backend.Spec
	// NoMitigation records MixedConfig.DisableFleetMitigation; resume
	// must rebuild the same (absent) failover wiring.
	NoMitigation bool
}

// runSnapshot is the gob payload of one checkpoint file.
type runSnapshot struct {
	Spec  RunSpec
	Index int // boundary index the snapshot was taken at
	Clock simclock.State

	Engine     engine.CheckpointState
	Pool       workload.PoolState
	Boundaries []workload.BoundaryRef
	Pat        patroller.CheckpointState
	Collector  metrics.CheckpointState
	HasQS      bool
	QS         core.CheckpointState
	HasFaults  bool
	Faults     fault.CheckpointState
	HasTrace   bool
	Trace      trace.CheckpointState
	HasReg     bool
	Reg        obs.CheckpointState
	HasDlog    bool
	Dlog       decisionlog.CheckpointState

	// Fleet sections, populated only when Spec.Backends lists two or more
	// specs (the Engine/Pat/QS/Collector fields above stay zero then; the
	// shared sections — Clock, Pool, Boundaries, exports — are reused).
	FleetBackends []backend.CheckpointState
	Router        router.CheckpointState
	Planner       router.PlannerCheckpointState
	// FleetFaults holds the per-backend injector states in roster order
	// when the fleet ran a fault plan (HasFaults set, Faults field unused).
	FleetFaults []fault.CheckpointState
}

// solverSpec names a solver for the run spec. Only the built-in
// (stateless) solvers are serializable.
func solverSpec(s solver.Solver) (name string, greedyMaxMoves int) {
	switch v := s.(type) {
	case nil:
		return "", 0
	case solver.Greedy:
		return "greedy", v.MaxMoves
	case solver.Grid:
		return "grid", 0
	default:
		panic(fmt.Sprintf("experiment: checkpointing cannot serialize solver %T", s))
	}
}

// solverFromSpec inverts solverSpec. Unknown names are an error (the
// checkpoint may come from a newer build), not a panic.
func solverFromSpec(name string, greedyMaxMoves int) (solver.Solver, error) {
	switch name {
	case "":
		return nil, nil
	case "greedy":
		return solver.Greedy{MaxMoves: greedyMaxMoves}, nil
	case "grid":
		return solver.Grid{}, nil
	default:
		return nil, fmt.Errorf("experiment: checkpoint names unknown solver %q", name)
	}
}

// specFromConfig records a checkpointable run's construction parameters.
// It panics on configurations that cannot round-trip through a
// checkpoint (custom solver or RefreshCost closures).
func specFromConfig(cfg MixedConfig, classes []*workload.Class) RunSpec {
	spec := RunSpec{
		Mode:         cfg.Mode,
		Seed:         cfg.Seed,
		Sched:        cfg.Sched,
		Classes:      classes,
		Experiment:   cfg.Experiment,
		HasTrace:     cfg.Trace != nil,
		HasMetrics:   cfg.Metrics != nil,
		HasDecisions: cfg.Decisions != nil,
		Streaming:    cfg.StreamingClients,
		Backends:     cfg.Backends,
		NoMitigation: cfg.DisableFleetMitigation,
	}
	if cfg.QS != nil {
		spec.HasQSCfg = true
		qc := *cfg.QS
		spec.SolverName, spec.GreedyMaxMoves = solverSpec(qc.Solver)
		qc.Solver = nil
		qc.MonitorFaults = nil
		spec.QS = qc
	}
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		spec.HasFaults = true
		spec.Faults = *cfg.Faults
	}
	if cfg.Retry != nil {
		if cfg.Retry.RefreshCost != nil {
			panic("experiment: checkpointing cannot serialize a custom RetryPolicy.RefreshCost; leave it nil")
		}
		spec.HasRetry = true
		spec.Retry = RetrySpec{
			MaxAttempts:    cfg.Retry.MaxAttempts,
			Backoff:        cfg.Retry.Backoff,
			TimeoutFloor:   cfg.Retry.TimeoutFloor,
			TimeoutPerCost: cfg.Retry.TimeoutPerCost,
		}
	}
	return spec
}

// config rebuilds the MixedConfig a resumed run is constructed from. The
// writers are the resuming caller's; everything else comes from the spec.
func (s *RunSpec) config(tw, mw, dw io.Writer) (MixedConfig, error) {
	cfg := MixedConfig{
		Mode:       s.Mode,
		Sched:      s.Sched,
		Seed:       s.Seed,
		Classes:    s.Classes,
		Experiment: s.Experiment,
		Trace:      tw,
		Metrics:    mw,
		Decisions:  dw,

		StreamingClients:       s.Streaming,
		Backends:               s.Backends,
		DisableFleetMitigation: s.NoMitigation,
	}
	if s.HasQSCfg {
		qc := s.QS
		sol, err := solverFromSpec(s.SolverName, s.GreedyMaxMoves)
		if err != nil {
			return MixedConfig{}, err
		}
		qc.Solver = sol
		cfg.QS = &qc
	}
	if s.HasFaults {
		p := s.Faults
		cfg.Faults = &p
	}
	if s.HasRetry {
		cfg.Retry = &patroller.RetryPolicy{
			MaxAttempts:    s.Retry.MaxAttempts,
			Backoff:        s.Retry.Backoff,
			TimeoutFloor:   s.Retry.TimeoutFloor,
			TimeoutPerCost: s.Retry.TimeoutPerCost,
		}
	}
	return cfg, nil
}

// boundaryStep is the distance between checkpointable boundaries: the
// control interval in Query Scheduler mode (so "-checkpoint-every N"
// means every N control ticks), one schedule period otherwise.
func boundaryStep(cfg MixedConfig) float64 {
	if cfg.Mode == QueryScheduler {
		if cfg.QS != nil && cfg.QS.ControlInterval > 0 {
			return cfg.QS.ControlInterval
		}
		return core.DefaultConfig().ControlInterval
	}
	return cfg.Sched.PeriodSeconds
}

// validateCheckpointing rejects run configurations whose outputs cannot
// survive a resume: a rotating or compressed trace sink has no stable
// byte offset to truncate back to.
func validateCheckpointing(cfg MixedConfig) {
	if cfg.CheckpointDir == "" {
		panic("experiment: CheckpointEvery set without CheckpointDir")
	}
	if s, ok := cfg.Trace.(*trace.Sink); ok && (s.Rotating() || s.Gzipped()) {
		panic("experiment: checkpointing requires a plain trace sink (no rotation, no gzip)")
	}
}

// snapshotRun captures the full simulation state at a quiescent boundary.
func snapshotRun(rig *Rig, o *runObs, inst *workload.Installation, spec *RunSpec, idx int) *runSnapshot {
	snap := &runSnapshot{
		Spec:       *spec,
		Index:      idx,
		Clock:      rig.Clock.State(),
		Engine:     rig.Eng.CheckpointState(),
		Pool:       rig.Pool.CheckpointState(),
		Boundaries: inst.CheckpointState(rig.Clock.Now()),
		Pat:        rig.Pat.CheckpointState(),
		Collector:  rig.Collector.CheckpointState(),
	}
	if rig.QS != nil {
		snap.HasQS = true
		snap.QS = rig.QS.CheckpointState()
	}
	if rig.Faults != nil {
		snap.HasFaults = true
		snap.Faults = rig.Faults.CheckpointState()
	}
	if o != nil && o.tracer != nil {
		snap.HasTrace = true
		snap.Trace = o.tracer.CheckpointState()
	}
	if o != nil && o.reg != nil {
		snap.HasReg = true
		snap.Reg = o.reg.CheckpointState()
	}
	if o != nil && o.dlog != nil {
		snap.HasDlog = true
		snap.Dlog = o.dlog.CheckpointState()
	}
	return snap
}

// runBoundaries drives the simulation to the end of the schedule. With
// checkpointing disabled it is a single RunUntil, exactly as Rig.Run;
// with checkpointing enabled the run is split at boundary multiples —
// behaviour-neutral, since all events at or before each boundary have
// fired either way — and a snapshot is written every CheckpointEvery
// boundaries. Returns crashed=true when a fault-plan crash stopped the
// clock mid-run (the "process death" the recovery experiments resume
// from); nothing is written or finished after a crash.
func runBoundaries(rig *Rig, o *runObs, inst *workload.Installation, spec *RunSpec, cfg MixedConfig, startIdx int) (crashed bool, err error) {
	duration := rig.Sched.Duration()
	died := func() bool { return rig.Faults != nil && rig.Faults.Crashed() }
	if cfg.CheckpointEvery <= 0 {
		rig.Clock.RunUntil(duration)
		return died(), nil
	}
	step := boundaryStep(cfg)
	// atEnd marks a resume that restored a terminal snapshot: the clock is
	// already at the schedule end, so the loop below must not write a
	// second (higher-indexed) terminal snapshot.
	atEnd := float64(startIdx)*step >= duration
	for idx := startIdx; ; idx++ {
		t := float64(idx+1) * step
		last := t >= duration
		if last {
			t = duration
		}
		rig.Clock.RunUntil(t)
		if died() {
			return true, nil
		}
		if last {
			// Terminal snapshot: mark the run complete on disk. Without
			// it, resuming a value that already finished (qsweep -resume
			// over a partially interrupted sweep) restores the last
			// mid-run boundary and re-simulates the whole tail; with it,
			// the resume restores the finished state and only re-emits
			// the final exports.
			if !atEnd {
				snap := snapshotRun(rig, o, inst, spec, idx+1)
				if werr := checkpoint.Write(cfg.CheckpointDir, idx+1, snap); werr != nil {
					return false, werr
				}
			}
			return false, nil
		}
		if (idx+1)%cfg.CheckpointEvery == 0 {
			snap := snapshotRun(rig, o, inst, spec, idx+1)
			if werr := checkpoint.Write(cfg.CheckpointDir, idx+1, snap); werr != nil {
				return false, werr
			}
		}
	}
}

// ResumeOptions configures ResumeMixed.
type ResumeOptions struct {
	// Dir is the checkpoint directory of the interrupted run.
	Dir string
	// Index selects a specific checkpoint by boundary index; 0 resumes
	// from the newest valid one.
	Index int
	// TracePath is the interrupted run's trace file. Required when the
	// run exported a trace: the file is truncated to the checkpointed
	// byte offset and appended to, reproducing the uninterrupted export.
	TracePath string
	// DecisionsPath is the interrupted run's decision-log file. Required
	// when the run exported a decision log; rewound the same way the
	// trace is.
	DecisionsPath string
	// Metrics receives the metrics exposition after the resumed run.
	// Required when the checkpointed run had a metrics writer.
	Metrics io.Writer
	// CheckpointEvery continues checkpointing the resumed run at this
	// cadence (0 = stop checkpointing).
	CheckpointEvery int
	// Warn receives corrupt-checkpoint warnings (nil = discard).
	Warn io.Writer
}

// ResumeMixed restores the newest (or selected) checkpoint from an
// interrupted run and drives the simulation to completion. The final
// period tables, metrics exposition, and trace file are byte-identical
// to a run that was never interrupted.
func ResumeMixed(opts ResumeOptions) (*MixedResult, error) {
	warn := opts.Warn
	if warn == nil {
		warn = io.Discard
	}
	snap := new(runSnapshot)
	if opts.Index > 0 {
		if err := checkpoint.Read(filepath.Join(opts.Dir, checkpoint.FileName(opts.Index)), snap); err != nil {
			return nil, err
		}
		if snap.Index != opts.Index {
			return nil, fmt.Errorf("experiment: checkpoint %d carries boundary index %d", opts.Index, snap.Index)
		}
	} else {
		idx, ok, err := checkpoint.Latest(opts.Dir, snap, warn)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("experiment: no usable checkpoint in %s", opts.Dir)
		}
		if snap.Index != idx {
			return nil, fmt.Errorf("experiment: checkpoint %d carries boundary index %d", idx, snap.Index)
		}
	}
	if snap.HasTrace != (opts.TracePath != "") {
		if snap.HasTrace {
			return nil, fmt.Errorf("experiment: checkpointed run exported a trace; TracePath is required")
		}
		return nil, fmt.Errorf("experiment: checkpointed run had no trace export; TracePath must be empty")
	}
	if snap.Spec.HasMetrics != (opts.Metrics != nil) {
		if snap.Spec.HasMetrics {
			return nil, fmt.Errorf("experiment: checkpointed run exported metrics; Metrics is required")
		}
		return nil, fmt.Errorf("experiment: checkpointed run had no metrics export; Metrics must be nil")
	}
	if snap.HasDlog != (opts.DecisionsPath != "") {
		if snap.HasDlog {
			return nil, fmt.Errorf("experiment: checkpointed run exported a decision log; DecisionsPath is required")
		}
		return nil, fmt.Errorf("experiment: checkpointed run had no decision log; DecisionsPath must be empty")
	}

	// Rewind the trace and decision-log files to the checkpointed
	// offsets: everything the interrupted run wrote after this boundary
	// is discarded and will be re-emitted, byte for byte, by the
	// resumed run.
	var tw, dw io.Writer
	var files []*rewoundFile
	closeFiles := func() error {
		var first error
		for _, rf := range files {
			if err := rf.close(); first == nil {
				first = err
			}
		}
		files = nil
		return first
	}
	fail := func(err error) (*MixedResult, error) {
		closeFiles()
		return nil, err
	}
	if snap.HasTrace {
		rf, err := rewindFile(opts.TracePath, snap.Trace.SinkBytes)
		if err != nil {
			return fail(fmt.Errorf("experiment: resume trace: %w", err))
		}
		files = append(files, rf)
		tw = rf.bw
	}
	if snap.HasDlog {
		rf, err := rewindFile(opts.DecisionsPath, snap.Dlog.SinkBytes)
		if err != nil {
			return fail(fmt.Errorf("experiment: resume decision log: %w", err))
		}
		files = append(files, rf)
		dw = rf.bw
	}

	cfg, err := snap.Spec.config(tw, opts.Metrics, dw)
	if err != nil {
		return fail(err)
	}
	cfg.CheckpointEvery = opts.CheckpointEvery
	cfg.CheckpointDir = opts.Dir

	// Fleet checkpoints resume through the fleet runner: same rewound
	// writers, same snapshot container, different rig shape.
	if len(cfg.Backends) >= 2 {
		fres, ferr := resumeFleet(cfg, snap)
		if ferr != nil {
			return fail(ferr)
		}
		if cerr := closeFiles(); fres.ExportErr == nil {
			fres.ExportErr = cerr
		}
		return fres.MixedResult, nil
	}

	// Reconstruction must mirror RunMixed exactly (same constructor and
	// hook-attachment order), so restored event closures and listener
	// chains line up with the checkpointed run's.
	rig, o, obsErr := buildMixedRig(cfg, true)
	if obsErr != nil {
		return fail(obsErr)
	}
	if (rig.QS != nil) != snap.HasQS || (rig.Faults != nil) != snap.HasFaults {
		return fail(fmt.Errorf("experiment: checkpoint state does not match its run spec"))
	}

	// Wipe the constructor-scheduled events and re-arm the recorded ones.
	// Order matters: the clock first (everything re-arms onto it), the
	// engine before the patroller (held/active entries re-link to the
	// engine's rebuilt query objects).
	rig.Clock.Restore(snap.Clock)
	rig.Eng.RestoreCheckpoint(snap.Engine)
	rig.Pool.RestoreCheckpoint(snap.Pool)
	inst := rig.Sched.RestoreBoundaries(rig.Clock, rig.Pool, nil, snap.Boundaries)
	rig.Pat.RestoreCheckpoint(snap.Pat)
	if rig.QS != nil {
		rig.QS.RestoreCheckpoint(snap.QS)
	}
	rig.Collector.RestoreCheckpoint(snap.Collector)
	if rig.Faults != nil {
		rig.Faults.RestoreCheckpoint(snap.Faults)
	}
	if o != nil && o.tracer != nil {
		o.tracer.RestoreCheckpoint(snap.Trace)
	}
	if o != nil && o.reg != nil && snap.HasReg {
		o.reg.RestoreCheckpoint(snap.Reg)
	}
	if o != nil && o.dlog != nil {
		o.dlog.RestoreCheckpoint(snap.Dlog)
	}

	spec := snap.Spec
	crashed, runErr := runBoundaries(rig, o, inst, &spec, cfg, snap.Index)
	obsErr = runErr
	if obsErr == nil && !crashed {
		obsErr = o.finish()
	}
	if cerr := closeFiles(); obsErr == nil {
		obsErr = cerr
	}
	res := collectMixed(cfg, rig, obsErr)
	res.Crashed = crashed
	return res, nil
}

// rewoundFile is a resume-reopened export file: truncated to the
// checkpointed byte offset, positioned for append, buffered.
type rewoundFile struct {
	f  *os.File
	bw *bufio.Writer
}

func rewindFile(path string, offset int64) (*rewoundFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &rewoundFile{f: f, bw: bufio.NewWriterSize(f, 1<<20)}, nil
}

func (rf *rewoundFile) close() error {
	ferr := rf.bw.Flush()
	if cerr := rf.f.Close(); ferr == nil {
		ferr = cerr
	}
	return ferr
}
