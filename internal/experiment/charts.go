// Chart renderings of the experiment results — the paper's figures as
// terminal line charts (see internal/report).
package experiment

import (
	"fmt"
	"io"

	"repro/internal/report"
	"repro/internal/workload"
)

// WriteMixedCharts draws the Figure 4/5/6-style plot: OLAP velocities and
// OLTP response time per period, with the goal lines, matching the
// paper's shared 0..1 axis ("Query Velocity / Response Time (s)").
func WriteMixedCharts(w io.Writer, r *MixedResult) {
	chart := report.Chart{
		Title:  fmt.Sprintf("Performance with %s (periods 1-%d)", r.Mode, r.Periods),
		YLabel: "velocity / response time (s)",
		XLabel: "period",
		YMin:   0,
		YMax:   1,
	}
	for i, c := range r.Classes {
		chart.Series = append(chart.Series, report.Series{
			Name:   fmt.Sprintf("%s (%s)", c.Name, c.Goal.Metric),
			Values: r.Metric[i],
			Mask:   r.Measurable[i],
		})
		chart.Goals = append(chart.Goals, c.Goal.Target)
	}
	io.WriteString(w, chart.Render())
}

// WriteCostLimitCharts draws Figure 7: per-period class cost limits.
func WriteCostLimitCharts(w io.Writer, r *MixedResult) {
	if r.CostLimits == nil {
		fmt.Fprintf(w, "(no cost-limit history: mode %s does not adapt limits)\n", r.Mode)
		return
	}
	chart := report.Chart{
		Title:  "Adjustment of class cost limits (timerons)",
		XLabel: "period",
		YMin:   0,
		YMax:   SystemCostLimit,
	}
	for i, c := range r.Classes {
		chart.Series = append(chart.Series, report.Series{
			Name:   c.Name,
			Values: r.CostLimits[i],
		})
	}
	io.WriteString(w, chart.Render())
}

// WriteFig2Charts draws Figure 2: OLTP response time vs. OLAP cost limit.
func WriteFig2Charts(w io.Writer, curves []Fig2Curve) {
	chart := report.Chart{
		Title:  "OLTP response time vs. OLAP cost limit",
		YLabel: "avg response time (s)",
		XLabel: "OLAP cost limit sweep (2k..40k timerons)",
	}
	for _, c := range curves {
		chart.Series = append(chart.Series, report.Series{
			Name:   fmt.Sprintf("(%d,%d)", c.OLTPClients, c.OLAPClients),
			Values: c.MeanRT,
		})
	}
	io.WriteString(w, chart.Render())
}

// WriteSaturationChart draws the E0 calibration curve.
func WriteSaturationChart(w io.Writer, points []SaturationPoint) {
	var xs []float64
	for _, p := range points {
		xs = append(xs, p.QueriesPerHour)
	}
	chart := report.Chart{
		Title:  "Throughput vs. system cost limit (calibration)",
		YLabel: "queries/hour",
		XLabel: fmt.Sprintf("limit sweep (%.0f..%.0f timerons)", points[0].Limit, points[len(points)-1].Limit),
		Series: []report.Series{{Name: "OLAP throughput", Values: xs}},
	}
	io.WriteString(w, chart.Render())
}

// WriteScheduleChart draws Figure 3: client counts per period.
func WriteScheduleChart(w io.Writer, s workload.Schedule, classes []*workload.Class) {
	chart := report.Chart{
		Title:  "Workload (clients per period)",
		XLabel: "period",
		YMin:   0,
		YMax:   26,
	}
	for _, c := range classes {
		var counts []float64
		for p := 0; p < s.Periods(); p++ {
			counts = append(counts, float64(s.Clients[p][c.ID]))
		}
		chart.Series = append(chart.Series, report.Series{Name: c.Name, Values: counts})
	}
	io.WriteString(w, chart.Render())
}
