package experiment

import "testing"

func curve(pairs ...[2]float64) []SaturationPoint {
	var out []SaturationPoint
	for _, p := range pairs {
		out = append(out, SaturationPoint{Limit: p[0], QueriesPerHour: p[1]})
	}
	return out
}

func TestCalibrateFromCurvePicksPlateau(t *testing.T) {
	// Ramp, plateau 20k-40k, decline.
	c := CalibrateFromCurve(curve(
		[2]float64{10000, 100}, [2]float64{20000, 360}, [2]float64{30000, 370},
		[2]float64{40000, 355}, [2]float64{50000, 300},
	))
	if c.PeakThroughput != 370 {
		t.Fatalf("peak = %v", c.PeakThroughput)
	}
	if c.PlateauLow != 20000 || c.PlateauHigh != 40000 {
		t.Fatalf("plateau = [%v, %v]", c.PlateauLow, c.PlateauHigh)
	}
	if c.Recommended < 20000 || c.Recommended > 40000 {
		t.Fatalf("recommended %v off the plateau", c.Recommended)
	}
	// Biased toward the low-middle, snapped to the 10k sweep step.
	if c.Recommended != 30000 {
		t.Fatalf("recommended = %v, want 30000", c.Recommended)
	}
}

func TestCalibrateFromCurveDegenerate(t *testing.T) {
	if c := CalibrateFromCurve(nil); c.Recommended != 0 {
		t.Fatal("empty curve should recommend nothing")
	}
	c := CalibrateFromCurve(curve([2]float64{5000, 42}))
	if c.Recommended != 5000 {
		t.Fatalf("single point recommendation = %v", c.Recommended)
	}
}

func TestFindSystemCostLimitOnSimulator(t *testing.T) {
	cal := FindSystemCostLimit(DefaultSaturationConfig())
	if cal.PeakThroughput <= 0 {
		t.Fatal("no throughput measured")
	}
	// The committed operating point must lie in the measured plateau.
	if float64(SystemCostLimit) < cal.PlateauLow || float64(SystemCostLimit) > cal.PlateauHigh {
		t.Fatalf("30k outside measured plateau [%v, %v]", cal.PlateauLow, cal.PlateauHigh)
	}
	if cal.Recommended < cal.PlateauLow || cal.Recommended > cal.PlateauHigh {
		t.Fatalf("recommendation %v off its own plateau", cal.Recommended)
	}
}
