// Text rendering of experiment results: the same rows and series the
// paper's figures report, as aligned tables (and CSV for plotting).
package experiment

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/workload"
)

// WriteSaturation renders the E0 calibration curve.
func WriteSaturation(w io.Writer, points []SaturationPoint) {
	fmt.Fprintf(w, "System cost limit calibration (OLAP-only; pick the knee)\n")
	fmt.Fprintf(w, "%12s %16s %14s %10s\n", "limit(tmr)", "queries/hour", "mean RT(s)", "velocity")
	for _, p := range points {
		fmt.Fprintf(w, "%12.0f %16.1f %14.1f %10.3f\n",
			p.Limit, p.QueriesPerHour, p.MeanRespSeconds, p.MeanVelocity)
	}
}

// WriteFig2 renders Figure 2: OLTP response time vs. OLAP cost limit, one
// column per client mix.
func WriteFig2(w io.Writer, curves []Fig2Curve) {
	if len(curves) == 0 {
		return
	}
	fmt.Fprintf(w, "Figure 2: OLTP avg response time (s) vs. OLAP cost limit\n")
	fmt.Fprintf(w, "%12s", "limit(tmr)")
	for _, c := range curves {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("(%d,%d)", c.OLTPClients, c.OLAPClients))
	}
	fmt.Fprintln(w)
	for i, limit := range curves[0].Limits {
		fmt.Fprintf(w, "%12.0f", limit)
		for _, c := range curves {
			fmt.Fprintf(w, " %10.3f", c.MeanRT[i])
		}
		fmt.Fprintln(w)
	}
}

// WriteSchedule renders Figure 3: the client counts per period.
func WriteSchedule(w io.Writer, s workload.Schedule, classes []*workload.Class) {
	fmt.Fprintf(w, "Figure 3: workload schedule (%d periods x %.0f min)\n",
		s.Periods(), s.PeriodSeconds/60)
	fmt.Fprintf(w, "%8s", "period")
	for _, c := range classes {
		fmt.Fprintf(w, " %10s", c.Name)
	}
	fmt.Fprintln(w)
	for p := 0; p < s.Periods(); p++ {
		fmt.Fprintf(w, "%8d", p+1)
		for _, c := range classes {
			fmt.Fprintf(w, " %10d", s.Clients[p][c.ID])
		}
		fmt.Fprintln(w)
	}
}

// WriteMixed renders a Figure 4/5/6-style table: per-period goal-metric
// values per class, with goal attainment marks.
func WriteMixed(w io.Writer, r *MixedResult) {
	fmt.Fprintf(w, "Per-period performance under %s\n", r.Mode)
	fmt.Fprintf(w, "(velocity for OLAP classes; avg response time in seconds for OLTP; * = goal missed)\n")
	fmt.Fprintf(w, "%8s", "period")
	for _, c := range r.Classes {
		fmt.Fprintf(w, " %14s", c.Name)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%8s", "goal")
	for _, c := range r.Classes {
		fmt.Fprintf(w, " %14s", c.Goal.String())
	}
	fmt.Fprintln(w)
	for p := 0; p < r.Periods; p++ {
		fmt.Fprintf(w, "%8d", p+1)
		for i := range r.Classes {
			mark := " "
			switch {
			case !r.Measurable[i][p]:
				mark = "?"
			case !r.GoalMet[i][p]:
				mark = "*"
			}
			fmt.Fprintf(w, " %13.3f%s", r.Metric[i][p], mark)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%8s", "met")
	for i := range r.Classes {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("%.0f%%", 100*r.Satisfaction[i]))
	}
	fmt.Fprintln(w)
}

// WriteCostLimits renders Figure 7: the Query Scheduler's per-period mean
// class cost limits.
func WriteCostLimits(w io.Writer, r *MixedResult) {
	if r.CostLimits == nil {
		fmt.Fprintf(w, "(no cost-limit history: mode %s does not adapt limits)\n", r.Mode)
		return
	}
	fmt.Fprintf(w, "Figure 7: class cost limits (timerons) under Query Scheduler control\n")
	fmt.Fprintf(w, "%8s", "period")
	for _, c := range r.Classes {
		fmt.Fprintf(w, " %10s", c.Name)
	}
	fmt.Fprintf(w, " %10s\n", "total")
	for p := 0; p < r.Periods; p++ {
		fmt.Fprintf(w, "%8d", p+1)
		total := 0.0
		for i := range r.Classes {
			fmt.Fprintf(w, " %10.0f", r.CostLimits[i][p])
			total += r.CostLimits[i][p]
		}
		fmt.Fprintf(w, " %10.0f\n", total)
	}
}

// WriteInterception renders the Section 3 overhead comparison.
func WriteInterception(w io.Writer, r InterceptionOverheadResult) {
	fmt.Fprintf(w, "OLTP interception overhead (%d clients, %.0f ms overhead per query)\n",
		r.OLTPClients, r.OverheadCPU*1000)
	fmt.Fprintf(w, "  mean OLTP execution time:        %8.1f ms\n", r.MeanOLTPExecTime*1000)
	fmt.Fprintf(w, "  unmanaged mean response time:    %8.1f ms\n", r.UnmanagedMeanRT*1000)
	fmt.Fprintf(w, "  intercepted mean response time:  %8.1f ms (%.1fx)\n",
		r.DirectMeanRT*1000, r.DirectMeanRT/r.UnmanagedMeanRT)
}

// CSV renders any per-period matrix as CSV with a header, for plotting.
func CSV(header []string, cols ...[]float64) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	if len(cols) == 0 {
		return b.String()
	}
	for row := 0; row < len(cols[0]); row++ {
		for i, col := range cols {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", col[row])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SaturationCSV renders the E0 curve as CSV.
func SaturationCSV(points []SaturationPoint) string {
	var limits, qph, rt, vel []float64
	for _, p := range points {
		limits = append(limits, p.Limit)
		qph = append(qph, p.QueriesPerHour)
		rt = append(rt, p.MeanRespSeconds)
		vel = append(vel, p.MeanVelocity)
	}
	return CSV([]string{"limit", "queries_per_hour", "mean_rt_s", "velocity"},
		limits, qph, rt, vel)
}

// Fig2CSV renders the Figure 2 curves as CSV, one column per client mix.
func Fig2CSV(curves []Fig2Curve) string {
	if len(curves) == 0 {
		return ""
	}
	header := []string{"olap_limit"}
	cols := [][]float64{curves[0].Limits}
	for _, c := range curves {
		header = append(header, fmt.Sprintf("rt_%d_%d", c.OLTPClients, c.OLAPClients))
		cols = append(cols, c.MeanRT)
	}
	return CSV(header, cols...)
}

// MixedCSV renders a mixed run's per-period metrics (and P95s) as CSV.
func MixedCSV(r *MixedResult) string {
	header := []string{"period"}
	periods := make([]float64, r.Periods)
	for p := range periods {
		periods[p] = float64(p + 1)
	}
	cols := [][]float64{periods}
	for i, c := range r.Classes {
		header = append(header, fmt.Sprintf("%s_metric", csvName(c.Name)))
		cols = append(cols, r.Metric[i])
		header = append(header, fmt.Sprintf("%s_p95_s", csvName(c.Name)))
		cols = append(cols, r.RespP95[i])
	}
	return CSV(header, cols...)
}

// CostLimitsCSV renders Figure 7's per-period limits as CSV.
func CostLimitsCSV(r *MixedResult) string {
	if r.CostLimits == nil {
		return ""
	}
	header := []string{"period"}
	periods := make([]float64, r.Periods)
	for p := range periods {
		periods[p] = float64(p + 1)
	}
	cols := [][]float64{periods}
	for i, c := range r.Classes {
		header = append(header, fmt.Sprintf("%s_limit", csvName(c.Name)))
		cols = append(cols, r.CostLimits[i])
	}
	return CSV(header, cols...)
}

func csvName(s string) string {
	return strings.ToLower(strings.ReplaceAll(s, " ", "_"))
}
