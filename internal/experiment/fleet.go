// The fleet runner: N backends behind the routing tier, driven by the
// same schedule, clients, and observability stack as the single-engine
// rig. Construction order is load-bearing exactly as in newRig — resume
// replays this sequence verbatim so restored clock events and listener
// chains line up with the checkpointed run's.
//
// The control plane is hierarchical: the fleet planner (router.Planner)
// splits the global SystemCostLimit across backends proportionally to
// their smoothed routed-cost demand, and each backend's own Query
// Scheduler runs the existing per-class solver, unchanged, against its
// share. A single-backend config never reaches this file — RunMixed
// dispatches it to the classic rig, byte-identical to before the fleet
// existed.
package experiment

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/decisionlog"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/workload"
)

// FleetRig is one fully wired fleet testbed: the shared clock, the
// backend roster in ID order, the routing tier, and the fleet-global
// collector that folds every backend's completions into one period ×
// class view (each backend also keeps its own local collector).
type FleetRig struct {
	Clock    *simclock.Clock
	Backends []*backend.Instance
	Router   *router.Router
	Planner  *router.Planner
	Pool     *workload.Pool
	Classes  []*workload.Class
	Sched    workload.Schedule
	// Collector is the fleet-global view; Backends[i].Collector holds the
	// per-backend one.
	Collector *metrics.Collector
	// Plans records every fleet budget split the planner made.
	Plans []router.FleetPlan
	// Faults holds the per-backend fault injectors in roster order (nil
	// when the run has no fault plan).
	Faults []*fault.Injector
}

// FleetResult extends MixedResult (computed from the fleet-global
// collector, so the period tables mean the same thing as a single-engine
// run's) with per-backend routing and planning detail.
type FleetResult struct {
	*MixedResult
	// Specs is the backend roster the fleet ran with.
	Specs []backend.Spec
	// Routed[i] counts the queries the router sent to roster backend i.
	Routed []int64
	// BackendCompleted[i][p] counts roster backend i's completions (all
	// classes) in period p.
	BackendCompleted [][]int
	// Plans is the fleet planner's budget-split history.
	Plans []router.FleetPlan
	// Histories[i] is roster backend i's per-tick plan record — the same
	// shape MixedResult.PlanHistory has for a single-engine run.
	Histories [][]core.PlanRecord
}

// validateFleet rejects configurations the fleet runner does not
// support, feature by feature: the mode must be Query Scheduler (the
// hierarchical control plane is the point of the fleet), and a fault
// plan's backend-scoped targets must fit the roster. Class-scoped
// faults and retry policies are fine — each backend gets its own
// injector and retry policy.
func validateFleet(cfg MixedConfig) {
	if cfg.Mode != QueryScheduler {
		panic(fmt.Sprintf("experiment: a fleet run requires Query Scheduler mode, got %v", cfg.Mode))
	}
	if cfg.Faults != nil {
		if mb := cfg.Faults.MaxBackend(); mb > len(cfg.Backends) {
			panic(fmt.Sprintf("experiment: fault plan targets backend %d of a %d-backend fleet", mb, len(cfg.Backends)))
		}
	}
}

// newFleetRig builds the fleet testbed. The construction order mirrors
// newRig where the stages overlap (clock, engines, template sets, pool,
// clients seeded from one rng stream) and appends the fleet-only stages
// in a fixed order (control per backend in roster order, collectors,
// planner last — so on each shared tick every backend plans before the
// fleet re-splits the budget).
func newFleetRig(cfg MixedConfig) *FleetRig {
	classes := cfg.Classes
	if classes == nil {
		classes = workload.PaperClasses()
	}
	clock := simclock.New()
	instances := make([]*backend.Instance, len(cfg.Backends))
	engines := make([]*engine.Engine, len(cfg.Backends))
	roster := make([]backend.Backend, len(cfg.Backends))
	for i, spec := range cfg.Backends {
		b := backend.New(i+1, spec, clock)
		instances[i], engines[i], roster[i] = b, b.Eng, b
	}

	model := optimizer.DefaultModel()
	olapSet := workload.NewSet(optimizer.New(model, workload.TPCHCatalog()), workload.TPCHTemplates())
	oltpSet := workload.NewSet(optimizer.New(model, workload.TPCCCatalog()), workload.TPCCTemplates())

	rt := router.New(roster, router.DefaultScorers())
	pool := workload.NewRoutedPool(rt, engines)
	src := rng.New(cfg.Seed)
	maxClients := cfg.Sched.MaxClients()
	for _, c := range classes {
		set := olapSet
		if c.Kind == workload.OLTP {
			set = oltpSet
		}
		if cfg.StreamingClients {
			pool.AddClientsStreaming(c, set, maxClients[c.ID], src)
		} else {
			pool.AddClients(c, set, maxClients[c.ID], src)
		}
	}

	qc := core.DefaultConfig()
	qc.SystemCostLimit = SystemCostLimit
	if cfg.QS != nil {
		qc = *cfg.QS
	}
	var olap []engine.ClassID
	var oltpClients func() []engine.ClientID
	for _, c := range classes {
		if c.Kind == workload.OLAP {
			olap = append(olap, c.ID)
		} else if oltpClients == nil {
			id := c.ID
			oltpClients = func() []engine.ClientID { return pool.ActiveClients(id) }
		}
	}
	// Per-backend fault injectors, in roster order before any control
	// attaches (mirroring the single-engine sequence rig → injector →
	// controller). Each backend's injector runs the whole plan against
	// its own engine with a per-backend rng stream; backend-scoped
	// events arm only on their target.
	var injectors []*fault.Injector
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		injectors = make([]*fault.Injector, len(instances))
		for i, b := range instances {
			inj := fault.NewBackendInjector(*cfg.Faults, clock, i+1)
			inj.AttachEngine(b.Eng)
			injectors[i] = inj
		}
	}
	for i, b := range instances {
		qcb := qc
		if injectors != nil {
			// Each scheduler's monitor drops snapshots/harvests through its
			// own backend's injector (dropouts are backend-scoped).
			qcb.MonitorFaults = injectors[i]
		}
		b.AttachControl(qcb, classes, olap, oltpClients)
		if cfg.Retry != nil {
			rp := *cfg.Retry
			if rp.RefreshCost == nil && injectors != nil {
				rp.RefreshCost = injectors[i].RefreshCost
			}
			b.Pat.SetRetryPolicy(&rp)
		}
	}
	for _, b := range instances {
		b.AttachCollector(classes, cfg.Sched)
	}
	global := metrics.NewCollector(engines[0], classes, cfg.Sched)
	for _, e := range engines[1:] {
		global.Attach(e)
	}

	frig := &FleetRig{
		Clock:     clock,
		Backends:  instances,
		Router:    rt,
		Pool:      pool,
		Classes:   classes,
		Sched:     cfg.Sched,
		Collector: global,
		Faults:    injectors,
	}
	// The per-backend control interval is the fleet planning interval:
	// read it back validated from an attached scheduler rather than
	// trusting the raw config.
	qcv := instances[0].QS.Config()
	frig.Planner = router.StartPlanner(clock, rt, instances, router.PlannerConfig{
		Interval: qcv.ControlInterval,
		Total:    qcv.SystemCostLimit,
		// Migration-before-shedding only arms on faulted, mitigated runs:
		// an unfaulted fleet keeps the exact planner behaviour (and
		// output bytes) it had before the health model existed.
		Migrate: injectors != nil && !cfg.DisableFleetMitigation,
	})
	frig.Planner.OnPlan(func(fp router.FleetPlan) { frig.Plans = append(frig.Plans, fp) })
	return frig
}

// wireFleetMitigation installs the failover response: the injectors'
// backend-scoped transitions drive the router's health model, and every
// availability or mitigation event lands in the decision log as a fleet
// record. With mitigation disabled nothing is wired — crashes still
// stall their engines (capacity is really lost), but the router is
// never told and the planner keeps feeding the dead backend its
// demand-weighted share; the decision log then carries no fleet records
// at all, which is itself the signature of the control arm.
func wireFleetMitigation(frig *FleetRig, o *runObs, cfg MixedConfig) {
	if frig.Faults == nil || cfg.DisableFleetMitigation {
		return
	}
	note := func(fr decisionlog.FleetRecord) {
		if o != nil && o.dlog != nil {
			fr.T = float64(frig.Clock.Now())
			o.dlog.NoteFleet(fr)
		}
	}
	for i, inj := range frig.Faults {
		id := frig.Backends[i].ID()
		inj.SetFleetHooks(fault.FleetHooks{
			Down: func() {
				moved := frig.Router.MarkDown(id)
				note(decisionlog.FleetRecord{Event: "failover", Backend: id, Moved: moved})
			},
			Up: func() {
				frig.Router.MarkUp(id)
				note(decisionlog.FleetRecord{Event: "recover", Backend: id})
			},
			Degraded: func(f float64) {
				frig.Router.MarkDegraded(id, f)
				note(decisionlog.FleetRecord{Event: "degraded", Backend: id, Factor: f})
			},
			Restored: func() {
				frig.Router.ClearDegraded(id)
				note(decisionlog.FleetRecord{Event: "restored", Backend: id})
			},
		})
	}
	if o != nil && o.dlog != nil {
		dw := o.dlog
		frig.Planner.OnDecision(func(d router.FleetDecision) {
			dw.NoteFleet(decisionlog.FleetRecord{
				T:       float64(d.Time),
				Event:   d.Event,
				Backend: d.Backend,
				Class:   int(d.Class),
				Target:  d.Target,
			})
		})
	}
}

// backendsMeta resolves the roster into the trace/decision-log header
// entry: 1-based ID, label, and resolved capacities.
func backendsMeta(specs []backend.Spec) []trace.BackendMeta {
	out := make([]trace.BackendMeta, len(specs))
	for i, s := range specs {
		ec := s.EngineConfig()
		out[i] = trace.BackendMeta{ID: i + 1, Name: s.Name, CPU: ec.CPUCapacity, IO: ec.IOCapacity}
	}
	return out
}

// attachFleetObs mirrors attachObs for a fleet: one tracer, one
// registry, one decision log — all streams carry the backend dimension.
// Attachment order (trace, metrics, decisions; backends in roster order
// within each) is part of the resume contract.
func attachFleetObs(frig *FleetRig, cfg MixedConfig, resume bool) (*runObs, error) {
	o := &runObs{}
	if cfg.Trace != nil {
		tr := trace.New(traceRingCap)
		tr.SetPeriodMapper(cfg.Sched.PeriodAt)
		if resume {
			if err := tr.ResumeJSONL(cfg.Trace); err != nil {
				return nil, err
			}
		} else {
			meta := traceMeta(cfg, frig.Classes)
			meta.Backends = backendsMeta(cfg.Backends)
			if err := tr.StreamJSONL(cfg.Trace, meta); err != nil {
				return nil, err
			}
		}
		for _, b := range frig.Backends {
			trace.AttachEngine(tr, b.Eng)
			trace.AttachPatroller(tr, b.Pat, frig.Clock)
		}
		// Routing decisions are traced; per-backend plan changes are not
		// (the trace's plan events carry no backend dimension — the
		// decision log is the per-backend planning record).
		trace.AttachRouter(tr, frig.Router, frig.Clock)
		o.tracer = tr
	}
	if cfg.Metrics != nil {
		reg := obs.New(func() float64 { return frig.Clock.Now() })
		for _, b := range frig.Backends {
			instrumentEngine(reg, b.Eng, frig.Classes, obs.L("backend", b.Name()))
		}
		o.reg = reg
		o.mw = cfg.Metrics
	}
	if cfg.Decisions != nil {
		qc := frig.Backends[0].QS.Config()
		meta := decisionlog.Meta{
			Experiment:      cfg.Experiment,
			Seed:            int64(cfg.Seed),
			ControlInterval: qc.ControlInterval,
			SLOWindow:       qc.SLOWindow,
			SLOBudget:       qc.SLOBudget,
			Classes:         decisionlog.ClassesMeta(frig.Classes),
		}
		if meta.Experiment == "" {
			meta.Experiment = cfg.Mode.String()
		}
		for _, bm := range backendsMeta(cfg.Backends) {
			meta.Backends = append(meta.Backends, decisionlog.BackendMeta(bm))
		}
		var dw *decisionlog.Writer
		var err error
		if resume {
			dw, err = decisionlog.ResumeWriter(cfg.Decisions, meta)
		} else {
			dw, err = decisionlog.NewWriter(cfg.Decisions, meta)
		}
		if err != nil {
			return nil, err
		}
		for _, b := range frig.Backends {
			id := b.ID()
			b.QS.OnPlan(func(rec core.PlanRecord) { dw.NoteBackend(id, rec) })
		}
		o.dlog = dw
	}
	return o, nil
}

// buildFleetRig is the fleet counterpart of buildMixedRig: rig,
// observability, then the mitigation wiring (which needs both), in the
// order resume replays.
func buildFleetRig(cfg MixedConfig, resume bool) (*FleetRig, *runObs, error) {
	frig := newFleetRig(cfg)
	o, err := attachFleetObs(frig, cfg, resume)
	if err != nil {
		return frig, o, err
	}
	wireFleetMitigation(frig, o, cfg)
	return frig, o, nil
}

// snapshotFleet captures the full fleet state at a quiescent boundary.
// It reuses the single-engine snapshot container: the shared sections
// (clock, pool, boundaries, global collector, exports) land in their
// usual fields, and the per-backend stacks plus router/planner state
// fill the fleet sections.
func snapshotFleet(frig *FleetRig, o *runObs, inst *workload.Installation, spec *RunSpec, idx int) *runSnapshot {
	snap := &runSnapshot{
		Spec:       *spec,
		Index:      idx,
		Clock:      frig.Clock.State(),
		Pool:       frig.Pool.CheckpointState(),
		Boundaries: inst.CheckpointState(frig.Clock.Now()),
		Collector:  frig.Collector.CheckpointState(),
		Router:     frig.Router.CheckpointState(),
		Planner:    frig.Planner.CheckpointState(),
	}
	for _, b := range frig.Backends {
		snap.FleetBackends = append(snap.FleetBackends, b.CheckpointState())
	}
	if frig.Faults != nil {
		snap.HasFaults = true
		for _, inj := range frig.Faults {
			snap.FleetFaults = append(snap.FleetFaults, inj.CheckpointState())
		}
	}
	if o != nil && o.tracer != nil {
		snap.HasTrace = true
		snap.Trace = o.tracer.CheckpointState()
	}
	if o != nil && o.reg != nil {
		snap.HasReg = true
		snap.Reg = o.reg.CheckpointState()
	}
	if o != nil && o.dlog != nil {
		snap.HasDlog = true
		snap.Dlog = o.dlog.CheckpointState()
	}
	return snap
}

// runFleetBoundaries drives a fleet run to the end of the schedule,
// mirroring runBoundaries: a run-level fault-plan crash on any backend
// stops the clock mid-run (crashed=true; nothing written or finished
// after it), for the recovery experiments to resume from.
func runFleetBoundaries(frig *FleetRig, o *runObs, inst *workload.Installation, spec *RunSpec, cfg MixedConfig, startIdx int) (crashed bool, err error) {
	duration := frig.Sched.Duration()
	died := func() bool {
		for _, inj := range frig.Faults {
			if inj.Crashed() {
				return true
			}
		}
		return false
	}
	if cfg.CheckpointEvery <= 0 {
		frig.Clock.RunUntil(duration)
		return died(), nil
	}
	step := boundaryStep(cfg)
	// As in runBoundaries: a resume that restored a terminal snapshot must
	// not write a second terminal snapshot at a higher index.
	atEnd := float64(startIdx)*step >= duration
	for idx := startIdx; ; idx++ {
		t := float64(idx+1) * step
		last := t >= duration
		if last {
			t = duration
		}
		frig.Clock.RunUntil(t)
		if died() {
			return true, nil
		}
		if last {
			if !atEnd {
				snap := snapshotFleet(frig, o, inst, spec, idx+1)
				if werr := checkpoint.Write(cfg.CheckpointDir, idx+1, snap); werr != nil {
					return false, werr
				}
			}
			return false, nil
		}
		if (idx+1)%cfg.CheckpointEvery == 0 {
			snap := snapshotFleet(frig, o, inst, spec, idx+1)
			if werr := checkpoint.Write(cfg.CheckpointDir, idx+1, snap); werr != nil {
				return false, werr
			}
		}
	}
}

// collectFleet assembles the result from a finished fleet: the standard
// mixed tables from the fleet-global collector, fleet-wide per-class
// cost limits as the sum of the per-backend plans, and the per-backend
// routing/planning detail.
func collectFleet(cfg MixedConfig, frig *FleetRig, obsErr error) *FleetResult {
	res := &MixedResult{
		Mode:    cfg.Mode,
		Classes: frig.Collector.Classes(),
		Periods: cfg.Sched.Periods(),
	}
	fillMixedTables(res, frig.Collector)
	res.ExportErr = obsErr
	for _, inj := range frig.Faults {
		res.Faults.Add(inj.Stats())
	}
	for _, b := range frig.Backends {
		res.PatStats.Add(b.Pat.Stats())
	}

	fr := &FleetResult{
		MixedResult: res,
		Specs:       append([]backend.Spec(nil), cfg.Backends...),
		Routed:      frig.Router.Routed(),
		Plans:       frig.Plans,
	}
	for _, b := range frig.Backends {
		hist := b.QS.History()
		fr.Histories = append(fr.Histories, hist)
		limits := averageLimitsPerPeriod(hist, res.Classes, cfg.Sched)
		if res.CostLimits == nil {
			res.CostLimits = limits
		} else {
			for i := range limits {
				for p := range limits[i] {
					res.CostLimits[i][p] += limits[i][p]
				}
			}
		}
		row := make([]int, res.Periods)
		for p := 0; p < res.Periods; p++ {
			for _, cl := range res.Classes {
				row[p] += b.Collector.Agg(p, cl.ID).Completed
			}
		}
		fr.BackendCompleted = append(fr.BackendCompleted, row)
	}
	return fr
}

// RunFleet executes one mixed-workload experiment on a fleet of two or
// more backends behind the routing tier. RunMixed dispatches here
// automatically; call it directly when the per-backend detail in
// FleetResult is wanted.
func RunFleet(cfg MixedConfig) *FleetResult {
	if len(cfg.Backends) < 2 {
		panic(fmt.Sprintf("experiment: RunFleet needs at least 2 backend specs, got %d", len(cfg.Backends)))
	}
	validateFleet(cfg)
	if cfg.CheckpointEvery > 0 {
		validateCheckpointing(cfg)
	}
	frig, o, obsErr := buildFleetRig(cfg, false)
	var spec RunSpec
	if cfg.CheckpointEvery > 0 {
		spec = specFromConfig(cfg, frig.Classes)
	}
	inst := frig.Sched.Install(frig.Clock, frig.Pool, nil)
	crashed, runErr := runFleetBoundaries(frig, o, inst, &spec, cfg, 0)
	if obsErr == nil {
		obsErr = runErr
	}
	if obsErr == nil && !crashed {
		obsErr = o.finish()
	}
	fr := collectFleet(cfg, frig, obsErr)
	fr.Crashed = crashed
	return fr
}

// resumeFleet restores a fleet checkpoint onto a freshly rebuilt fleet
// rig and drives the run to completion. The restore order mirrors the
// single-engine resume: clock first, every engine before the pool (held
// and active entries re-link to engine-owned query objects), control
// stacks after the boundaries, collectors last.
func resumeFleet(cfg MixedConfig, snap *runSnapshot) (*FleetResult, error) {
	frig, o, obsErr := buildFleetRig(cfg, true)
	if obsErr != nil {
		return nil, obsErr
	}
	if len(snap.FleetBackends) != len(frig.Backends) {
		return nil, fmt.Errorf("experiment: checkpoint carries %d backends for a %d-backend fleet",
			len(snap.FleetBackends), len(frig.Backends))
	}
	if snap.HasFaults != (frig.Faults != nil) || len(snap.FleetFaults) != len(frig.Faults) {
		return nil, fmt.Errorf("experiment: checkpoint fault state does not match its run spec")
	}
	frig.Clock.Restore(snap.Clock)
	for i, b := range frig.Backends {
		b.Eng.RestoreCheckpoint(snap.FleetBackends[i].Engine)
	}
	frig.Pool.RestoreCheckpoint(snap.Pool)
	inst := frig.Sched.RestoreBoundaries(frig.Clock, frig.Pool, nil, snap.Boundaries)
	for i, b := range frig.Backends {
		b.Pat.RestoreCheckpoint(snap.FleetBackends[i].Pat)
	}
	for i, b := range frig.Backends {
		b.QS.RestoreCheckpoint(snap.FleetBackends[i].QS)
	}
	frig.Router.RestoreCheckpoint(snap.Router)
	frig.Planner.RestoreCheckpoint(snap.Planner)
	for i, b := range frig.Backends {
		b.Collector.RestoreCheckpoint(snap.FleetBackends[i].Collector)
	}
	frig.Collector.RestoreCheckpoint(snap.Collector)
	for i, inj := range frig.Faults {
		inj.RestoreCheckpoint(snap.FleetFaults[i])
	}
	if o.tracer != nil {
		o.tracer.RestoreCheckpoint(snap.Trace)
	}
	if o.reg != nil && snap.HasReg {
		o.reg.RestoreCheckpoint(snap.Reg)
	}
	if o.dlog != nil {
		o.dlog.RestoreCheckpoint(snap.Dlog)
	}

	spec := snap.Spec
	crashed, runErr := runFleetBoundaries(frig, o, inst, &spec, cfg, snap.Index)
	obsErr = runErr
	if obsErr == nil && !crashed {
		obsErr = o.finish()
	}
	fr := collectFleet(cfg, frig, obsErr)
	fr.Crashed = crashed
	return fr, nil
}
