// Byte-identity goldens for the hot-path overhaul: the files under
// testdata/golden were captured from the pre-optimization seed code, so
// any allocation work (query freelists, dense per-class slices, batched
// trace dispatch, the streaming client generator) that perturbs a table,
// the metrics exposition, or a single JSONL trace byte fails here. Each
// artifact is additionally produced under the parallel runner, extending
// the guarantee to -parallel 8 sweeps.
//
// Regenerate with: go test ./internal/experiment -run Golden -update-golden
// (only legitimate when an intentional output-format change lands).
package experiment

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/decisionlog"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden files from this build's output")

// goldenCompare checks got against the named golden file, reporting the
// first diverging byte with context.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s unreadable (regenerate with -update-golden): %v", name, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	window := func(b []byte) []byte {
		lo, hi := i-60, i+60
		if lo < 0 {
			lo = 0
		}
		if hi > len(b) {
			hi = len(b)
		}
		return b[lo:hi]
	}
	t.Errorf("%s deviates from the seed output at byte %d (got %d bytes, want %d)\n got: %q\nwant: %q",
		name, i, len(got), len(want), window(got), window(want))
}

// goldenTraceDigest pins a multi-megabyte JSONL trace without committing
// it: total length, SHA-256 of the whole stream, and the first 64 KiB
// verbatim (so head divergences still show in context). Equality of the
// digest is byte-identity of the trace.
func goldenTraceDigest(trace []byte) []byte {
	head := trace
	if len(head) > 64*1024 {
		head = head[:64*1024]
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "bytes=%d sha256=%x\n", len(trace), sha256.Sum256(trace))
	b.Write(head)
	return b.Bytes()
}

// mixedGoldenArtifacts runs one mixed experiment with trace and metrics
// capture and renders the period tables. Query-scheduler runs also
// export the control plane's decision log (other modes have no control
// ticks to record).
func mixedGoldenArtifacts(t *testing.T, cfg MixedConfig) (trace, metrics, tables, decisions []byte) {
	t.Helper()
	var tb, mb, db bytes.Buffer
	cfg.Trace = &tb
	cfg.Metrics = &mb
	if cfg.Mode == QueryScheduler {
		cfg.Decisions = &db
	}
	res := RunMixed(cfg)
	if res.ExportErr != nil {
		t.Fatal(res.ExportErr)
	}
	return tb.Bytes(), mb.Bytes(), []byte(mixedTables(res)), db.Bytes()
}

// qreportRender runs the qreport views (summary, timeline, one -why
// query) over a decision log, so the operator-facing rendering is pinned
// alongside the log bytes themselves.
func qreportRender(t *testing.T, decisions []byte) []byte {
	t.Helper()
	var qb bytes.Buffer
	if err := decisionlog.Summarize(&qb, bytes.NewReader(decisions)); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&qb)
	if err := decisionlog.Timeline(&qb, bytes.NewReader(decisions), decisionlog.TickRange{}); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&qb)
	if err := decisionlog.Why(&qb, bytes.NewReader(decisions), "class=A", decisionlog.TickRange{}); err != nil {
		t.Fatal(err)
	}
	return qb.Bytes()
}

// TestGoldenMixedQuick pins the full observability surface of a mixed run
// — JSONL trace, metrics exposition, period tables — for the controller
// modes with distinct hot paths, against seed-path captures.
func TestGoldenMixedQuick(t *testing.T) {
	for _, mode := range []Mode{NoControl, QueryScheduler} {
		cfg := MixedConfig{Mode: mode, Sched: shortSchedule(), Seed: 1, Experiment: "golden"}
		trace, metrics, tables, decisions := mixedGoldenArtifacts(t, cfg)
		prefix := strings.ReplaceAll(mode.String(), "-", "_")
		goldenCompare(t, prefix+"_trace.digest", goldenTraceDigest(trace))
		goldenCompare(t, prefix+"_metrics.txt", metrics)
		goldenCompare(t, prefix+"_tables.txt", tables)
		if mode == QueryScheduler {
			goldenCompare(t, prefix+"_decisions.jsonl", decisions)
			goldenCompare(t, prefix+"_qreport.txt", qreportRender(t, decisions))
		}
	}
}

// TestGoldenMixedQuickParallel reruns the golden mixed runs on the
// 8-worker pool: per-run isolation must hold for the optimized path too.
func TestGoldenMixedQuickParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel golden sweep is slow under -race")
	}
	modes := []Mode{NoControl, QueryScheduler}
	type artifacts struct{ trace, metrics, tables, decisions []byte }
	outs := Map(8, modes, func(mode Mode, _ int) artifacts {
		var tb, mb, db bytes.Buffer
		cfg := MixedConfig{Mode: mode, Sched: shortSchedule(), Seed: 1,
			Experiment: "golden", Trace: &tb, Metrics: &mb}
		if mode == QueryScheduler {
			cfg.Decisions = &db
		}
		res := RunMixed(cfg)
		if res.ExportErr != nil {
			t.Error(res.ExportErr)
		}
		return artifacts{tb.Bytes(), mb.Bytes(), []byte(mixedTables(res)), db.Bytes()}
	})
	for i, mode := range modes {
		prefix := strings.ReplaceAll(mode.String(), "-", "_")
		goldenCompare(t, prefix+"_trace.digest", goldenTraceDigest(outs[i].trace))
		goldenCompare(t, prefix+"_metrics.txt", outs[i].metrics)
		goldenCompare(t, prefix+"_tables.txt", outs[i].tables)
		if mode == QueryScheduler {
			goldenCompare(t, prefix+"_decisions.jsonl", outs[i].decisions)
		}
	}
}

// TestGoldenFig2Quick pins a scaled-down Figure 2 sweep, serially and on
// the worker pool.
func TestGoldenFig2Quick(t *testing.T) {
	cfg := Fig2Config{
		Pairs:  [][2]int{{10, 2}, {20, 4}},
		Limits: []float64{5000, 15000, 25000},
		Window: 600,
		Seed:   2,
	}
	cfg.Parallel = 1
	serial := RunFig2(cfg)
	var table bytes.Buffer
	WriteFig2(&table, serial)
	goldenCompare(t, "fig2_quick.csv", []byte(Fig2CSV(serial)))
	goldenCompare(t, "fig2_quick_table.txt", table.Bytes())

	cfg.Parallel = 8
	if got := Fig2CSV(RunFig2(cfg)); got != Fig2CSV(serial) {
		t.Error("fig2 quick sweep diverges between -parallel 1 and -parallel 8")
	}
}

// TestGoldenFaultMatrixQuick pins the CI-sized fault matrix — the run
// shape with aborts, retries, misestimation, and degraded control ticks —
// serially and on the worker pool.
func TestGoldenFaultMatrixQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("fault matrix is slow under -race")
	}
	cfg := QuickFaultMatrixConfig()
	cfg.Parallel = 1
	serial := RunFaultMatrix(cfg)
	var table bytes.Buffer
	WriteFaultMatrix(&table, serial)
	goldenCompare(t, "faultmatrix_quick.csv", []byte(FaultMatrixCSV(serial)))
	goldenCompare(t, "faultmatrix_quick_table.txt", table.Bytes())

	cfg.Parallel = 8
	if got := FaultMatrixCSV(RunFaultMatrix(cfg)); got != FaultMatrixCSV(serial) {
		t.Error("fault matrix diverges between -parallel 1 and -parallel 8")
	}
}

// TestGoldenStreamingPoolMatchesEager is the streaming-generator identity
// property: a pool that materializes clients lazily from recorded
// generator cursors must reproduce the eager pool's runs byte for byte.
// (The golden files above pin the eager path; transitivity extends the
// guarantee to the seed output.)
func TestGoldenStreamingPoolMatchesEager(t *testing.T) {
	for _, mode := range []Mode{NoControl, QueryScheduler} {
		cfg := MixedConfig{Mode: mode, Sched: shortSchedule(), Seed: 1, Experiment: "golden"}
		eagerTrace, eagerMetrics, eagerTables, eagerDecisions := mixedGoldenArtifacts(t, cfg)
		cfg.StreamingClients = true
		lazyTrace, lazyMetrics, lazyTables, lazyDecisions := mixedGoldenArtifacts(t, cfg)
		if !bytes.Equal(eagerTrace, lazyTrace) {
			t.Errorf("%v: streaming pool perturbs the JSONL trace", mode)
		}
		if !bytes.Equal(eagerMetrics, lazyMetrics) {
			t.Errorf("%v: streaming pool perturbs the metrics exposition", mode)
		}
		if !bytes.Equal(eagerTables, lazyTables) {
			t.Errorf("%v: streaming pool perturbs the period tables", mode)
		}
		if !bytes.Equal(eagerDecisions, lazyDecisions) {
			t.Errorf("%v: streaming pool perturbs the decision log", mode)
		}
	}
}

// refOutputsWithDecisions mirrors refOutputs with the decision log also
// streamed (buffered) to its own file, returning its final bytes too.
func refOutputsWithDecisions(t *testing.T, cfg MixedConfig, tracePath, decPath string) (tables string, metrics, trace, decisions []byte) {
	t.Helper()
	df, err := os.Create(decPath)
	if err != nil {
		t.Fatal(err)
	}
	dw := bufio.NewWriterSize(df, 1<<20)
	cfg.Decisions = dw
	tables, metrics, trace = refOutputs(t, cfg, tracePath)
	if err := dw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := df.Close(); err != nil {
		t.Fatal(err)
	}
	decisions, err = os.ReadFile(decPath)
	if err != nil {
		t.Fatal(err)
	}
	return tables, metrics, trace, decisions
}

// TestGoldenResumeSurvivesPooling proves checkpoint/restore still works
// over pooled queries, generator cursors, and the decision log: checkpoint
// at every control boundary, resume from each, and demand byte-identity
// with the uninterrupted reference (which itself is pinned transitively
// through the checkpoint-neutrality test against the golden mixed runs).
func TestGoldenResumeSurvivesPooling(t *testing.T) {
	if testing.Short() {
		t.Skip("every-boundary resume sweep is slow under -race")
	}
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	refTrace := filepath.Join(dir, "ref.jsonl")
	refDec := filepath.Join(dir, "ref-decisions.jsonl")
	cfg := ckptTestConfig(ckptDir, 1)
	cfg.StreamingClients = true
	refTables, refMetrics, refTraceBytes, refDecBytes := refOutputsWithDecisions(t, cfg, refTrace, refDec)
	for _, idx := range checkpointIndices(t, ckptDir) {
		tmp := filepath.Join(dir, fmt.Sprintf("resume-%02d.jsonl", idx))
		dmp := filepath.Join(dir, fmt.Sprintf("resume-%02d-decisions.jsonl", idx))
		copyFile(t, refTrace, tmp)
		copyFile(t, refDec, dmp)
		var mb bytes.Buffer
		res, err := ResumeMixed(ResumeOptions{
			Dir: ckptDir, Index: idx, TracePath: tmp, DecisionsPath: dmp, Metrics: &mb,
		})
		if err != nil {
			t.Fatalf("boundary %d: %v", idx, err)
		}
		if got := mixedTables(res); got != refTables {
			t.Errorf("boundary %d: period tables diverged", idx)
		}
		if !bytes.Equal(mb.Bytes(), refMetrics) {
			t.Errorf("boundary %d: metrics exposition diverged", idx)
		}
		tb, err := os.ReadFile(tmp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tb, refTraceBytes) {
			t.Errorf("boundary %d: trace file diverged", idx)
		}
		db, err := os.ReadFile(dmp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(db, refDecBytes) {
			t.Errorf("boundary %d: decision log diverged", idx)
		}
	}
}
