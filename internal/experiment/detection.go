// E10: workload-detection accuracy. The framework's detection process
// must "identify workload changes"; this experiment runs the Figure 3
// schedule and scores the detector's shift reports against the true
// period boundaries (which the detector never sees).
package experiment

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/engine"
	"repro/internal/workload"
)

// DetectionResult scores one class's shift detection.
type DetectionResult struct {
	Class engine.ClassID
	Name  string
	// TrueShifts counts period boundaries where the class's client count
	// actually changed.
	TrueShifts int
	// Detected counts shifts the detector reported.
	Detected int
	// Matched counts detections within MatchWindow seconds after a true
	// boundary (each boundary matches at most one detection).
	Matched int
	// FalseAlarms counts detections matching no boundary.
	FalseAlarms int
	// MeanDelay is the average seconds from a matched boundary to its
	// detection.
	MeanDelay float64
}

// Precision returns matched / detected (1 when nothing was detected).
func (r DetectionResult) Precision() float64 {
	if r.Detected == 0 {
		return 1
	}
	return float64(r.Matched) / float64(r.Detected)
}

// Recall returns matched / true shifts (1 when nothing changed).
func (r DetectionResult) Recall() float64 {
	if r.TrueShifts == 0 {
		return 1
	}
	return float64(r.Matched) / float64(r.TrueShifts)
}

// DetectionConfig tunes E10.
type DetectionConfig struct {
	Sched workload.Schedule
	Seed  uint64
	// MatchWindow is how long after a boundary a detection still counts
	// as that boundary's (seconds).
	MatchWindow float64
	// MinRelativeChange ignores boundaries whose client count changed by
	// less than this fraction — sub-noise changes are not detectable
	// even in principle.
	MinRelativeChange float64
}

// DefaultDetectionConfig scores detection over the paper schedule with a
// half-period match window.
func DefaultDetectionConfig() DetectionConfig {
	sched := workload.PaperSchedule()
	return DetectionConfig{
		Sched:             sched,
		Seed:              1,
		MatchWindow:       sched.PeriodSeconds / 2,
		MinRelativeChange: 0.25,
	}
}

// RunDetection runs the Query Scheduler over the schedule and scores its
// embedded detector's shift log per class.
func RunDetection(cfg DetectionConfig) []DetectionResult {
	rig := NewRig(cfg.Seed, cfg.Sched)
	rig.AttachController(QueryScheduler, nil)
	rig.Run()
	shifts := rig.QS.Detector().Shifts()

	var out []DetectionResult
	for _, c := range rig.Classes {
		res := DetectionResult{Class: c.ID, Name: c.Name}
		// True boundaries with a material intensity change.
		var boundaries []float64
		for p := 1; p < cfg.Sched.Periods(); p++ {
			prev := cfg.Sched.Clients[p-1][c.ID]
			cur := cfg.Sched.Clients[p][c.ID]
			if prev == cur {
				continue
			}
			base := prev
			if cur > base {
				base = cur
			}
			if base == 0 {
				continue
			}
			rel := float64(abs(cur-prev)) / float64(base)
			if rel < cfg.MinRelativeChange {
				continue
			}
			boundaries = append(boundaries, float64(p)*cfg.Sched.PeriodSeconds)
		}
		res.TrueShifts = len(boundaries)

		var detections []float64
		for _, s := range shifts {
			if s.Class == c.ID {
				detections = append(detections, s.Time)
			}
		}
		sort.Float64s(detections)
		res.Detected = len(detections)

		used := make([]bool, len(detections))
		var delaySum float64
		for _, b := range boundaries {
			for i, d := range detections {
				if used[i] || d < b || d > b+cfg.MatchWindow {
					continue
				}
				used[i] = true
				res.Matched++
				delaySum += d - b
				break
			}
		}
		res.FalseAlarms = res.Detected - res.Matched
		if res.Matched > 0 {
			res.MeanDelay = delaySum / float64(res.Matched)
		}
		out = append(out, res)
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// RunDetectionReplicated scores detection across several seeds on the
// worker pool and returns per-class counts summed over the runs (so
// precision/recall become multi-run estimates). Folding happens in seed
// order; the outcome is identical for any worker count.
func RunDetectionReplicated(cfg DetectionConfig, seeds []uint64, workers int) []DetectionResult {
	if len(seeds) == 0 {
		panic("experiment: no seeds")
	}
	perSeed := Map(workers, seeds, func(seed uint64, _ int) []DetectionResult {
		c := cfg
		c.Seed = seed
		return RunDetection(c)
	})
	agg := perSeed[0]
	delaySums := make([]float64, len(agg))
	for i, r := range agg {
		delaySums[i] = r.MeanDelay * float64(r.Matched)
	}
	for _, results := range perSeed[1:] {
		for i, r := range results {
			agg[i].TrueShifts += r.TrueShifts
			agg[i].Detected += r.Detected
			agg[i].Matched += r.Matched
			agg[i].FalseAlarms += r.FalseAlarms
			delaySums[i] += r.MeanDelay * float64(r.Matched)
		}
	}
	for i := range agg {
		if agg[i].Matched > 0 {
			agg[i].MeanDelay = delaySums[i] / float64(agg[i].Matched)
		}
	}
	return agg
}

// WriteDetection renders the E10 scores.
func WriteDetection(w io.Writer, results []DetectionResult) {
	fmt.Fprintf(w, "Workload-shift detection accuracy (CUSUM on in-system population)\n")
	fmt.Fprintf(w, "%-10s %8s %9s %8s %8s %10s %8s %11s\n",
		"class", "shifts", "detected", "matched", "false+", "precision", "recall", "delay(s)")
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %8d %9d %8d %8d %9.0f%% %7.0f%% %11.0f\n",
			r.Name, r.TrueShifts, r.Detected, r.Matched, r.FalseAlarms,
			100*r.Precision(), 100*r.Recall(), r.MeanDelay)
	}
}
