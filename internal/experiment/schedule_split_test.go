package experiment

import (
	"math"
	"testing"

	"repro/internal/engine"
)

func TestConstantScheduleEqualWindowsUnchanged(t *testing.T) {
	clients := map[engine.ClassID]int{1: 4, 2: 0, 3: 10}
	s := ConstantSchedule(1800, 1800, clients)
	if s.PeriodSeconds != 1800 || s.Periods() != 2 {
		t.Fatalf("equal windows: got %d periods of %vs, want 2 of 1800s",
			s.Periods(), s.PeriodSeconds)
	}
	for p := 0; p < 2; p++ {
		if s.Clients[p][1] != 4 || s.Clients[p][3] != 10 {
			t.Fatalf("period %d clients = %v", p, s.Clients[p])
		}
	}
	if MeasureStartPeriod(1800, 1800) != 1 {
		t.Fatalf("MeasureStartPeriod(equal) = %d, want 1", MeasureStartPeriod(1800, 1800))
	}
}

func TestConstantScheduleUnequalWindowsSplit(t *testing.T) {
	clients := map[engine.ClassID]int{1: 2}
	s := ConstantSchedule(600, 3600, clients)
	if s.PeriodSeconds != 600 {
		t.Fatalf("period = %v, want 600", s.PeriodSeconds)
	}
	if s.Periods() != 7 {
		t.Fatalf("periods = %d, want 7 (1 warm-up + 6 measure)", s.Periods())
	}
	if got := MeasureStartPeriod(600, 3600); got != 1 {
		t.Fatalf("MeasureStartPeriod = %d, want 1", got)
	}
	if d := s.Duration(); math.Abs(d-4200) > 1e-6 {
		t.Fatalf("duration = %v, want 4200", d)
	}

	// The reverse split: long warm-up, short measurement.
	s = ConstantSchedule(900, 600, clients)
	if s.PeriodSeconds != 300 || s.Periods() != 5 {
		t.Fatalf("900/600: got %d periods of %vs, want 5 of 300s", s.Periods(), s.PeriodSeconds)
	}
	if got := MeasureStartPeriod(900, 600); got != 3 {
		t.Fatalf("MeasureStartPeriod(900, 600) = %d, want 3", got)
	}
}

func TestConstantScheduleUnequalWindowsRuns(t *testing.T) {
	// End-to-end: an unequal-window schedule must install and run, and the
	// measurement periods must see completions.
	sched := ConstantSchedule(300, 900, map[engine.ClassID]int{1: 0, 2: 0, 3: 6})
	rig := NewRig(1, sched)
	rig.Run()
	start := MeasureStartPeriod(300, 900)
	total := 0
	for p := start; p < sched.Periods(); p++ {
		total += rig.Collector.Agg(p, 3).Completed
	}
	if total == 0 {
		t.Fatal("no completions in the measurement window")
	}
}

func TestConstantScheduleRejectsBadWindows(t *testing.T) {
	for _, tc := range [][2]float64{{0, 100}, {100, 0}, {-1, 100}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("windows %v did not panic", tc)
				}
			}()
			ConstantSchedule(tc[0], tc[1], nil)
		}()
	}
}
