// E9: the paper's future-work comparison — indirect OLTP control (the
// Query Scheduler squeezing OLAP admission) versus direct control inside
// the DBMS (weighted fair sharing driven by the wlm controller), and the
// two combined, under sustained heavy mixed load.
package experiment

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/patroller"
	"repro/internal/wlm"
)

// DirectControlResult is one strategy's steady-state outcome.
type DirectControlResult struct {
	Strategy      string
	OLTPMeanRT    float64
	OLTPP95RT     float64
	OLTPGoalMet   bool
	OLAPVelocity  float64 // mean of completions across both OLAP classes
	OLAPPerHour   float64
	OLTPPerSecond float64
	// FinalOLTPShare is the OLTP class's final control setting: virtual
	// cost limit (indirect) or sharing weight (direct); 0 when unused.
	FinalOLTPShare float64
}

// DirectControlConfig tunes E9.
type DirectControlConfig struct {
	OLTPClients int
	OLAPClients int // per OLAP class
	Window      float64
	Seed        uint64
	// Parallel is the worker count for the strategy comparison:
	// 0 = GOMAXPROCS, 1 = serial.
	Parallel int
}

// DefaultDirectControlConfig uses the paper's heaviest intensity.
func DefaultDirectControlConfig() DirectControlConfig {
	return DirectControlConfig{OLTPClients: 25, OLAPClients: 4, Window: 4800, Seed: 1}
}

// RunDirectControl compares four strategies on the same heavy mixed load:
// no class control, indirect (Query Scheduler), direct (in-DBMS weighted
// sharing), and indirect+direct combined.
func RunDirectControl(cfg DirectControlConfig) []DirectControlResult {
	type strategy struct {
		name     string
		indirect bool
		direct   bool
	}
	strategies := []strategy{
		{"no-control", false, false},
		{"indirect (QS admission)", true, false},
		{"direct (in-DBMS shares)", false, true},
		{"indirect + direct", true, true},
	}

	return Map(cfg.Parallel, strategies, func(s strategy, _ int) DirectControlResult {
		sched := ConstantSchedule(cfg.Window, cfg.Window, map[engine.ClassID]int{
			1: cfg.OLAPClients, 2: cfg.OLAPClients, 3: cfg.OLTPClients,
		})
		rig := NewRig(cfg.Seed, sched)
		oltp := rig.OLTPClass()

		var qs *core.QueryScheduler
		if s.indirect {
			rig.AttachController(QueryScheduler, nil)
			qs = rig.QS
		} else {
			rig.Pat = patroller.New(rig.Eng, rig.OLAPClassIDs()...)
			rig.Pat.SetPolicy(patroller.SystemLimit{Limit: SystemCostLimit})
		}

		var direct *wlm.Controller
		if s.direct {
			var err error
			direct, err = wlm.New(wlm.DefaultConfig(), rig.Eng, oltp.ID, oltp.Goal.Target,
				func() []engine.ClientID { return rig.Pool.ActiveClients(oltp.ID) })
			if err != nil {
				panic(err)
			}
			direct.Start()
		}

		rig.Run()

		oltpAgg := rig.Collector.Agg(1, oltp.ID)
		var velSum float64
		var velN int
		var olapDone int
		for _, id := range rig.OLAPClassIDs() {
			agg := rig.Collector.Agg(1, id)
			if agg.Completed > 0 {
				velSum += agg.Velocity.Mean() * float64(agg.Completed)
				velN += agg.Completed
			}
			olapDone += agg.Completed
		}
		res := DirectControlResult{
			Strategy:      s.name,
			OLTPMeanRT:    oltpAgg.Resp.Mean(),
			OLTPP95RT:     rig.Collector.RespQuantile(1, oltp.ID, 0.95),
			OLTPGoalMet:   oltp.Goal.Met(oltpAgg.Resp.Mean()),
			OLAPPerHour:   float64(olapDone) / cfg.Window * 3600,
			OLTPPerSecond: float64(oltpAgg.Completed) / cfg.Window,
		}
		if velN > 0 {
			res.OLAPVelocity = velSum / float64(velN)
		}
		switch {
		case s.direct:
			res.FinalOLTPShare = direct.Weight()
		case qs != nil:
			res.FinalOLTPShare = qs.CostLimits()[oltp.ID]
		}
		return res
	})
}

// WriteDirectControl renders the E9 comparison.
func WriteDirectControl(w io.Writer, cfg DirectControlConfig, results []DirectControlResult) {
	fmt.Fprintf(w, "Direct vs. indirect OLTP control (%d OLTP + 2x%d OLAP clients, goal 0.25s)\n",
		cfg.OLTPClients, cfg.OLAPClients)
	fmt.Fprintf(w, "%-26s %12s %9s %6s %10s %10s %10s\n",
		"strategy", "OLTP RT(ms)", "p95(ms)", "goal", "OLAP vel", "OLAP q/h", "OLTP tx/s")
	for _, r := range results {
		goal := "miss"
		if r.OLTPGoalMet {
			goal = "met"
		}
		fmt.Fprintf(w, "%-26s %12.0f %9.0f %6s %10.3f %10.0f %10.0f\n",
			r.Strategy, r.OLTPMeanRT*1000, r.OLTPP95RT*1000, goal,
			r.OLAPVelocity, r.OLAPPerHour, r.OLTPPerSecond)
	}
}
