package experiment

import (
	"strings"
	"testing"
)

func shortDetectionConfig() DetectionConfig {
	cfg := DefaultDetectionConfig()
	cfg.Sched = shortSchedule() // 6 periods x 10 min
	cfg.MatchWindow = cfg.Sched.PeriodSeconds / 2
	return cfg
}

func TestRunDetectionScoresAllClasses(t *testing.T) {
	results := RunDetection(shortDetectionConfig())
	if len(results) != 3 {
		t.Fatalf("%d class results, want 3", len(results))
	}
	for _, r := range results {
		if r.TrueShifts == 0 {
			t.Fatalf("%s: no true shifts in a varying schedule", r.Name)
		}
		if r.Matched > r.Detected || r.Matched > r.TrueShifts {
			t.Fatalf("%s: inconsistent counts %+v", r.Name, r)
		}
		if r.FalseAlarms != r.Detected-r.Matched {
			t.Fatalf("%s: false-alarm arithmetic wrong %+v", r.Name, r)
		}
		if p := r.Precision(); p < 0 || p > 1 {
			t.Fatalf("%s: precision %v", r.Name, p)
		}
		if rec := r.Recall(); rec < 0 || rec > 1 {
			t.Fatalf("%s: recall %v", r.Name, rec)
		}
		if r.MeanDelay < 0 || r.MeanDelay > cfg().MatchWindow {
			t.Fatalf("%s: delay %v outside match window", r.Name, r.MeanDelay)
		}
	}
}

func cfg() DetectionConfig { return shortDetectionConfig() }

func TestRunDetectionFindsOLTPSwings(t *testing.T) {
	// The OLTP class swings 15 -> 25 clients — a 40% change the
	// population-based detector must catch most of the time.
	results := RunDetection(shortDetectionConfig())
	oltp := results[2]
	if oltp.Recall() < 0.5 {
		t.Fatalf("OLTP recall %v too low (%+v)", oltp.Recall(), oltp)
	}
}

func TestDetectionResultEdgeCases(t *testing.T) {
	empty := DetectionResult{}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Fatal("empty result should score perfect by convention")
	}
	r := DetectionResult{TrueShifts: 4, Detected: 8, Matched: 2}
	if r.Precision() != 0.25 || r.Recall() != 0.5 {
		t.Fatalf("scores = %v/%v", r.Precision(), r.Recall())
	}
}

func TestWriteDetection(t *testing.T) {
	var b strings.Builder
	WriteDetection(&b, []DetectionResult{{
		Name: "x", TrueShifts: 2, Detected: 3, Matched: 2, FalseAlarms: 1, MeanDelay: 60,
	}})
	out := b.String()
	for _, want := range []string{"detection accuracy", "precision", "recall", "67%", "100%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
