package experiment

import (
	"bytes"
	"testing"

	"repro/internal/decisionlog"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/patroller"
	"repro/internal/workload"
)

// The qreport -attr all-aborted regression, end to end: under an
// abort-rate-1.0 fault plan the heavy OLAP class completes zero logical
// queries, yet the attribution row must carry the full goal miss (no
// NaN, shares summing exactly to the miss) instead of silently
// reporting zero.
func TestAttributionSurvivesAllAbortedClass(t *testing.T) {
	s := workload.Schedule{PeriodSeconds: 300}
	for _, c := range [][3]int{{2, 2, 10}, {3, 1, 12}} {
		s.Clients = append(s.Clients, map[engine.ClassID]int{1: c[0], 2: c[1], 3: c[2]})
	}
	var tb, db bytes.Buffer
	cfg := MixedConfig{
		Mode:       QueryScheduler,
		Sched:      s,
		Seed:       3,
		Experiment: "attr-lost-test",
		Trace:      &tb,
		Decisions:  &db,
		Faults: &fault.Plan{
			Seed:      11,
			AbortRate: map[engine.ClassID]float64{1: 1.0},
		},
		Retry: &patroller.RetryPolicy{MaxAttempts: 2, Backoff: 30},
	}
	if res := RunMixed(cfg); res.ExportErr != nil {
		t.Fatal(res.ExportErr)
	}

	rows, _, err := decisionlog.Attribute(bytes.NewReader(db.Bytes()), bytes.NewReader(tb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var lost *decisionlog.Attribution
	for i := range rows {
		if rows[i].Class.ID == 1 {
			lost = &rows[i]
		}
	}
	if lost == nil {
		t.Fatal("class 1 missing from attribution roster")
	}
	if lost.Completed != 0 || lost.Submitted == 0 || lost.Aborted == 0 {
		t.Fatalf("abort-rate-1.0 class should be all-lost: %+v", lost)
	}
	if lost.Miss != lost.Class.Target || lost.Observed != 0 {
		t.Fatalf("all-lost class must miss its whole target: %+v", lost)
	}
	sum := lost.InfeasibleShare + lost.FaultShare + lost.WaitShare + lost.ExecShare
	if d := sum - lost.Miss; d > 1e-9 || d < -1e-9 {
		t.Fatalf("shares %v do not sum to miss %v: %+v", sum, lost.Miss, lost)
	}
	for _, v := range []float64{lost.Observed, lost.Miss, lost.InfeasibleShare, lost.FaultShare, lost.WaitShare, lost.ExecShare} {
		if v != v || v < 0 {
			t.Fatalf("NaN or negative share: %+v", lost)
		}
	}
}
