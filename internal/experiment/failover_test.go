package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/decisionlog"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/trace"
)

// failoverFleetConfig is the fleet test config with backend 2 crashed
// mid-run and the mitigation stack on — the smallest rig that exercises
// failover re-dispatch, budget redistribution, and migration.
func failoverFleetConfig() MixedConfig {
	cfg := fleetTestConfig()
	cfg.Experiment = "fleet-failover-test"
	// The doomed backend carries a routing affinity (the E15 shape): the
	// stalled engine's queue and load scores repel organically, so
	// without the bias nothing would route into the black hole and the
	// mitigation-off arm would have nothing to measure.
	cfg.Backends[1].Affinity = map[engine.ClassID]float64{2: 2}
	cfg.Faults = &fault.Plan{
		Seed:           9,
		BackendCrashes: []fault.BackendCrash{{Backend: 2, At: 450}},
	}
	return cfg
}

// scanFleetRecords collects the fleet records out of a decision log.
func scanFleetRecords(t *testing.T, dec []byte) []decisionlog.FleetRecord {
	t.Helper()
	var out []decisionlog.FleetRecord
	err := decisionlog.ScanJSONLWithFleet(bytes.NewReader(dec),
		func(decisionlog.Meta) error { return nil },
		func(decisionlog.Record) error { return nil },
		func(fr decisionlog.FleetRecord) error { out = append(out, fr); return nil })
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// A backend crash on a mitigated fleet must surface everywhere the
// operator looks: a failover record in the decision log, reroute events
// in the trace matching the re-dispatch count, and a DOWN span in the
// qreport timeline.
func TestFleetFailoverIsObservable(t *testing.T) {
	_, traceBytes, dec := fleetOutputs(t, failoverFleetConfig())

	frs := scanFleetRecords(t, dec)
	var failover *decisionlog.FleetRecord
	for i, fr := range frs {
		if fr.Event == "failover" {
			if failover != nil {
				t.Fatalf("multiple failover records: %+v", frs)
			}
			failover = &frs[i]
		}
	}
	if failover == nil {
		t.Fatalf("no failover record in the decision log; fleet records: %+v", frs)
	}
	if failover.Backend != 2 || failover.T != 450 {
		t.Errorf("failover record %+v, want backend 2 at t=450", failover)
	}
	reroutes := bytes.Count(traceBytes, []byte(`"kind":"reroute"`))
	if reroutes != failover.Moved {
		t.Errorf("trace carries %d reroute events, decision log says %d queries moved", reroutes, failover.Moved)
	}

	var sb strings.Builder
	if err := decisionlog.Timeline(&sb, bytes.NewReader(dec), decisionlog.TickRange{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Backend availability:",
		"backend 2: UP 0s-450s, DOWN 450s-end",
		"backend 2 DOWN — failover",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q\n%s", want, out)
		}
	}
}

// With mitigation disabled the router is never told about the crash: no
// fleet records, no reroutes, and the dead backend keeps receiving
// queries after the crash — the black-hole control arm. (Whole-run
// tallies are not comparable between the arms — the migration policy is
// live from t=0 in the mitigated one — so the assertion is on
// post-crash routing specifically.)
func TestFleetMitigationOffKeepsRoutingToDeadBackend(t *testing.T) {
	_, mitTrace, _ := fleetOutputs(t, failoverFleetConfig())

	off := failoverFleetConfig()
	off.DisableFleetMitigation = true
	_, offTrace, offDec := fleetOutputs(t, off)

	if frs := scanFleetRecords(t, offDec); len(frs) != 0 {
		t.Errorf("mitigation-off run wrote %d fleet records, want none: %+v", len(frs), frs)
	}
	if n := bytes.Count(offTrace, []byte(`"kind":"reroute"`)); n != 0 {
		t.Errorf("mitigation-off trace carries %d reroute events, want none", n)
	}
	deadRoutesAfterCrash := func(traceBytes []byte) int {
		n := 0
		err := trace.ScanJSONL(bytes.NewReader(traceBytes),
			func(trace.Meta) error { return nil },
			func(e trace.Event) error {
				if e.Kind == trace.QueryRouted && int(e.Value) == 2 && float64(e.Time) > 450 {
					n++
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := deadRoutesAfterCrash(mitTrace); n != 0 {
		t.Errorf("mitigated run routed %d queries to the dead backend after the crash, want 0", n)
	}
	if n := deadRoutesAfterCrash(offTrace); n == 0 {
		t.Error("mitigation-off run routed nothing to the dead backend after the crash — no black hole to measure")
	}
}

// Resuming a faulted fleet from any checkpoint boundary — before or
// after the crash — must reproduce the uninterrupted run's outputs byte
// for byte. This is the failover extension of the fleet resume contract:
// router health, planner budget state, and the injector's remaining
// backend events all have to survive the round trip.
func TestFleetFailoverResumeIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	cfg := failoverFleetConfig()
	cfg.CheckpointEvery = 2
	cfg.CheckpointDir = ckptDir

	refTrace := filepath.Join(dir, "ref-trace.jsonl")
	refDec := filepath.Join(dir, "ref-decisions.jsonl")
	tf, err := os.Create(refTrace)
	if err != nil {
		t.Fatal(err)
	}
	df, err := os.Create(refDec)
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	cfg.Trace = tf
	cfg.Decisions = df
	cfg.Metrics = &mb
	res := RunFleet(cfg)
	if res.ExportErr != nil {
		t.Fatal(res.ExportErr)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := df.Close(); err != nil {
		t.Fatal(err)
	}
	refTables := mixedTables(res.MixedResult)
	refMetrics := append([]byte(nil), mb.Bytes()...)
	refTraceBytes, err := os.ReadFile(refTrace)
	if err != nil {
		t.Fatal(err)
	}
	refDecBytes, err := os.ReadFile(refDec)
	if err != nil {
		t.Fatal(err)
	}

	indices := checkpointIndices(t, ckptDir)
	sort.Ints(indices)
	// The contract needs boundaries on both sides of the t=450 crash;
	// with a 60s control interval and checkpoints every 2 boundaries,
	// the boundary times straddle it. Sample first/middle/last under
	// -short like the unfaulted resume test.
	if testing.Short() {
		indices = []int{indices[0], indices[len(indices)/2], indices[len(indices)-1]}
	}
	for _, idx := range indices {
		tmpTrace := filepath.Join(dir, fmt.Sprintf("resume-%02d-trace.jsonl", idx))
		tmpDec := filepath.Join(dir, fmt.Sprintf("resume-%02d-decisions.jsonl", idx))
		copyFile(t, refTrace, tmpTrace)
		copyFile(t, refDec, tmpDec)
		var rm bytes.Buffer
		rres, err := ResumeMixed(ResumeOptions{
			Dir:           ckptDir,
			Index:         idx,
			TracePath:     tmpTrace,
			DecisionsPath: tmpDec,
			Metrics:       &rm,
		})
		if err != nil {
			t.Fatalf("boundary %d: %v", idx, err)
		}
		if rres.ExportErr != nil {
			t.Fatalf("boundary %d: export: %v", idx, rres.ExportErr)
		}
		if got := mixedTables(rres); got != refTables {
			t.Errorf("boundary %d: period tables diverged", idx)
		}
		if !bytes.Equal(rm.Bytes(), refMetrics) {
			t.Errorf("boundary %d: metrics exposition diverged", idx)
		}
		tb, err := os.ReadFile(tmpTrace)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tb, refTraceBytes) {
			t.Errorf("boundary %d: trace file diverged", idx)
		}
		db, err := os.ReadFile(tmpDec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(db, refDecBytes) {
			t.Errorf("boundary %d: decision log diverged", idx)
		}
	}
}

// The E15 acceptance bar: with one of three backends dead for most of
// the measurement window, failover + migration keep the critical class's
// delivered attainment at >= 90% of the no-fault baseline, while the
// mitigation-off fleet lands visibly below both.
func TestFailoverExperimentQuickAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full quick fleet simulations")
	}
	r := RunFailover(FailoverConfig{Seed: 1, Quick: true})
	if r.Baseline.Attainment < 0.8 {
		t.Errorf("baseline attainment %.3f: the healthy fleet should be comfortable", r.Baseline.Attainment)
	}
	if ret := r.Retention(r.Failover); ret < 0.9 {
		t.Errorf("failover retention %.3f, want >= 0.9 of baseline", ret)
	}
	if r.NoMitig.Attainment >= r.Failover.Attainment {
		t.Errorf("mitigation-off attainment %.3f >= failover %.3f: the control arm should collapse",
			r.NoMitig.Attainment, r.Failover.Attainment)
	}
	if r.NoMitig.Completed >= r.Failover.Completed {
		t.Errorf("mitigation-off completed %d >= failover %d: the black hole should swallow throughput",
			r.NoMitig.Completed, r.Failover.Completed)
	}
}
