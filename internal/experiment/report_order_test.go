package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// TestMixedReportColumnsSortedByClassID guards the map-order audit: the
// per-period report must print class columns in ascending-ID order and
// render identically across repeated calls, even when the caller supplies
// its class slice in a scrambled order.
func TestMixedReportColumnsSortedByClassID(t *testing.T) {
	classes := []*workload.Class{
		{ID: 3, Name: "zeta", Kind: workload.OLTP, Goal: workload.Goal{Metric: workload.AvgResponseTime, Target: 0.25}, Importance: 3},
		{ID: 1, Name: "alpha", Kind: workload.OLAP, Goal: workload.Goal{Metric: workload.Velocity, Target: 0.4}, Importance: 1},
		{ID: 2, Name: "beta", Kind: workload.OLAP, Goal: workload.Goal{Metric: workload.Velocity, Target: 0.6}, Importance: 2},
	}
	sched := workload.Schedule{
		PeriodSeconds: 30,
		Clients: []map[engine.ClassID]int{
			{1: 1, 2: 1, 3: 1},
			{1: 1, 2: 1, 3: 1},
		},
	}
	res := RunMixed(MixedConfig{Mode: NoControl, Sched: sched, Seed: 1, Classes: classes})

	for i := 1; i < len(res.Classes); i++ {
		if res.Classes[i-1].ID >= res.Classes[i].ID {
			t.Fatalf("MixedResult.Classes not sorted by ID: %v then %v",
				res.Classes[i-1].ID, res.Classes[i].ID)
		}
	}

	var first, second bytes.Buffer
	WriteMixed(&first, res)
	WriteMixed(&second, res)
	if first.String() != second.String() {
		t.Fatal("WriteMixed output is not stable across renders")
	}
	header := strings.SplitN(first.String(), "\n", 4)[2]
	alpha := strings.Index(header, "alpha")
	beta := strings.Index(header, "beta")
	zeta := strings.Index(header, "zeta")
	if alpha < 0 || beta < 0 || zeta < 0 {
		t.Fatalf("header missing class names: %q", header)
	}
	if !(alpha < beta && beta < zeta) {
		t.Fatalf("header columns not in class-ID order: %q", header)
	}
}
