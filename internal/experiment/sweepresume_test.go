package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/checkpoint"
)

// sweepRow renders a result the way qsweep prints one table row: per-class
// goal satisfaction plus the heavy-period OLTP mean. Byte-identity of the
// merged sweep table reduces to string equality of these rows.
func sweepRow(v float64, res *MixedResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%14g", v)
	for ci := range res.Classes {
		fmt.Fprintf(&sb, " %11.0f%%", 100*res.Satisfaction[ci])
	}
	var heavy float64
	var n int
	for p := 2; p < res.Periods; p += 3 {
		if res.Measurable[len(res.Classes)-1][p] {
			heavy += res.Metric[len(res.Classes)-1][p]
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(&sb, " %14.0f", heavy/float64(n)*1000)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// The qsweep -resume regression: a sweep where one value already completed,
// one was interrupted mid-run, and one never started must, on resume,
// produce a merged table and per-value artifacts byte-identical to an
// uninterrupted sweep — and the completed value must not re-simulate.
func TestSweepResumeSkipsCompletedValues(t *testing.T) {
	const every = 1
	dir := t.TempDir()
	seeds := []uint64{3, 4, 5}

	// Uninterrupted reference sweep: every value runs to completion with
	// checkpointing on, exactly as qsweep -checkpoint-every would.
	refTables := make([]string, len(seeds))
	refMetrics := make([][]byte, len(seeds))
	refTrace := make([][]byte, len(seeds))
	refRows := make([]string, len(seeds))
	ckptDirs := make([]string, len(seeds))
	tracePaths := make([]string, len(seeds))
	for i, seed := range seeds {
		ckptDirs[i] = filepath.Join(dir, fmt.Sprintf("ckpt-%d", i))
		tracePaths[i] = filepath.Join(dir, fmt.Sprintf("trace-%d.jsonl", i))
		cfg := ckptTestConfig(ckptDirs[i], every)
		cfg.Seed = seed
		var mb bytes.Buffer
		res, err := runToFile(cfg, tracePaths[i], &mb)
		if err != nil {
			t.Fatal(err)
		}
		refTables[i] = mixedTables(res)
		refMetrics[i] = mb.Bytes()
		refRows[i] = sweepRow(float64(seed), res)
		tb, err := os.ReadFile(tracePaths[i])
		if err != nil {
			t.Fatal(err)
		}
		refTrace[i] = tb
	}

	// A completed checkpointed run must leave a terminal snapshot — the
	// marker that lets a later -resume skip re-simulation.
	finalIdx := checkpointIndices(t, ckptDirs[0])
	sort.Ints(finalIdx)
	last := finalIdx[len(finalIdx)-1]
	snap := new(runSnapshot)
	if err := checkpoint.Read(filepath.Join(ckptDirs[0], checkpoint.FileName(last)), snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Clock.Now; got < snap.Spec.Sched.Duration() {
		t.Fatalf("terminal snapshot clock at %v, want schedule end %v", got, snap.Spec.Sched.Duration())
	}

	// Fabricate the interrupted sweep: value 0 completed (state kept as
	// is), value 1 died mid-run (trace truncated to a mid-boundary offset,
	// later checkpoints lost), value 2 never started.
	indices := checkpointIndices(t, ckptDirs[1])
	sort.Ints(indices)
	mid := indices[len(indices)/2]
	if mid == indices[len(indices)-1] {
		t.Fatalf("mid boundary %d is the terminal one; need a longer run", mid)
	}
	midSnap := new(runSnapshot)
	if err := checkpoint.Read(filepath.Join(ckptDirs[1], checkpoint.FileName(mid)), midSnap); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tracePaths[1], midSnap.Trace.SinkBytes); err != nil {
		t.Fatal(err)
	}
	for _, idx := range indices {
		if idx > mid {
			if err := os.Remove(filepath.Join(ckptDirs[1], checkpoint.FileName(idx))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := os.Remove(tracePaths[2]); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(ckptDirs[2]); err != nil {
		t.Fatal(err)
	}

	preResume := checkpointIndices(t, ckptDirs[0])
	sort.Ints(preResume)

	// The resume pass, value by value, exactly as qsweep decides it:
	// values with a checkpoint resume, the rest run fresh.
	var mergedRef, mergedGot strings.Builder
	for i, seed := range seeds {
		mergedRef.WriteString(refRows[i])
		var res *MixedResult
		var mb bytes.Buffer
		if HasCheckpoint(ckptDirs[i]) {
			var err error
			res, err = ResumeMixed(ResumeOptions{
				Dir:             ckptDirs[i],
				TracePath:       tracePaths[i],
				Metrics:         &mb,
				CheckpointEvery: every,
			})
			if err != nil {
				t.Fatalf("value %d: resume: %v", i, err)
			}
		} else {
			cfg := ckptTestConfig(ckptDirs[i], every)
			cfg.Seed = seed
			var err error
			res, err = runToFile(cfg, tracePaths[i], &mb)
			if err != nil {
				t.Fatalf("value %d: fresh run: %v", i, err)
			}
		}
		if res.ExportErr != nil {
			t.Fatalf("value %d: export: %v", i, res.ExportErr)
		}
		mergedGot.WriteString(sweepRow(float64(seed), res))
		if got := mixedTables(res); got != refTables[i] {
			t.Errorf("value %d: period tables diverged from uninterrupted sweep", i)
		}
		if !bytes.Equal(mb.Bytes(), refMetrics[i]) {
			t.Errorf("value %d: metrics exposition diverged from uninterrupted sweep", i)
		}
		tb, err := os.ReadFile(tracePaths[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tb, refTrace[i]) {
			t.Errorf("value %d: trace file diverged from uninterrupted sweep", i)
		}
	}
	if mergedGot.String() != mergedRef.String() {
		t.Errorf("merged sweep table diverged:\ngot:\n%swant:\n%s", mergedGot.String(), mergedRef.String())
	}

	// The completed value must not have re-simulated: with checkpointing
	// at every boundary, crossing even one would have written a new file.
	postResume := checkpointIndices(t, ckptDirs[0])
	sort.Ints(postResume)
	if fmt.Sprint(postResume) != fmt.Sprint(preResume) {
		t.Errorf("completed value re-simulated: checkpoints %v -> %v", preResume, postResume)
	}

	// The interrupted value's resume must have restored the terminal
	// marker, so a second -resume pass would skip it too.
	after := checkpointIndices(t, ckptDirs[1])
	sort.Ints(after)
	if after[len(after)-1] != last {
		t.Errorf("resumed value left no terminal snapshot: have %v, want last %d", after, last)
	}
}
