package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapPreservesInputOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i * 3
	}
	for _, workers := range []int{0, 1, 4, 7, 200} {
		out := Map(workers, items, func(v, idx int) int {
			if items[idx] != v {
				t.Errorf("workers=%d: fn got item %d at index %d", workers, v, idx)
			}
			return v * 2
		})
		if len(out) != len(items) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(out), len(items))
		}
		for i, v := range out {
			if v != items[i]*2 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, items[i]*2)
			}
		}
	}
}

func TestRunAllRunsEveryIndexOnce(t *testing.T) {
	n := 500
	counts := make([]atomic.Int32, n)
	RunAll(8, n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, got)
		}
	}
}

func TestRunAllEmptyAndSingle(t *testing.T) {
	RunAll(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	RunAll(4, 1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("fn not called for n=1")
	}
}

// TestRunAllIsConcurrent proves the pool really runs fn bodies
// concurrently: four jobs block on a barrier that only opens once all four
// have started, which can only happen with >= 4 live workers. (This is
// also the test that exercises the pool under `go test -race`.)
func TestRunAllIsConcurrent(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // goroutines interleave even on 1 core
	defer runtime.GOMAXPROCS(prev)
	var barrier sync.WaitGroup
	barrier.Add(4)
	done := make(chan struct{})
	go func() {
		RunAll(4, 4, func(int) {
			barrier.Done()
			barrier.Wait()
		})
		close(done)
	}()
	<-done // deadlocks (and the test times out) if the pool serializes
}

func TestRunAllSerialWorkerRunsInOrder(t *testing.T) {
	var order []int
	RunAll(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial pool ran out of order: %v", order)
		}
	}
}

func TestRunAllPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic in worker was swallowed")
		}
	}()
	RunAll(4, 16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}
