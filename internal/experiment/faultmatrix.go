// The fault matrix (E8): every fault scenario crossed with the
// mitigation stack off/on, all under the Query Scheduler. "Mitigations"
// are the control loop's robustness features added alongside the fault
// subsystem: per-query timeout + bounded retry with refreshed cost at
// the patroller, plan-hold degradation + last-fit slope fallback at the
// planner. The off arm runs the paper's plain scheduler against the same
// deterministic fault plan, so each row is a controlled before/after.
package experiment

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/patroller"
	"repro/internal/stats"
	"repro/internal/workload"
)

// FaultScenario is one named deterministic fault plan.
type FaultScenario struct {
	Name string
	Plan fault.Plan
}

// DefaultFaultScenarios returns the standard scenario set, with windows
// placed as fractions of the schedule's duration so the same scenarios
// scale from the CI smoke schedule to the full 24-hour one.
func DefaultFaultScenarios(sched workload.Schedule) []FaultScenario {
	d := sched.Duration()
	return []FaultScenario{
		{
			Name: "abort-storm",
			Plan: fault.Plan{
				Seed:      11,
				AbortRate: map[engine.ClassID]float64{1: 0.12, 2: 0.12},
				AbortBursts: []fault.Burst{
					{Window: fault.Window{Start: 0.25 * d, End: 0.45 * d}, Class: 2, Rate: 0.6},
				},
			},
		},
		{
			Name: "misestimate",
			Plan: fault.Plan{
				Seed:        12,
				Misestimate: map[engine.ClassID]float64{1: 3, 2: 3},
			},
		},
		{
			Name: "abort+misestimate",
			Plan: fault.Plan{
				Seed:      13,
				AbortRate: map[engine.ClassID]float64{1: 0.25, 2: 0.25},
				AbortBursts: []fault.Burst{
					{Window: fault.Window{Start: 0.25 * d, End: 0.45 * d}, Class: 2, Rate: 0.6},
				},
				Misestimate: map[engine.ClassID]float64{1: 3, 2: 3},
			},
		},
		{
			Name: "monitor-outage",
			Plan: fault.Plan{
				Seed:            14,
				SnapshotDrop:    0.3,
				SnapshotOutages: []fault.Window{{Start: 0.3 * d, End: 0.5 * d}},
				HarvestOutages:  []fault.Window{{Start: 0.3 * d, End: 0.5 * d}},
			},
		},
		{
			Name: "slowdown",
			Plan: fault.Plan{
				Seed: 15,
				Slowdowns: []fault.Slowdown{
					{Window: fault.Window{Start: 0.6 * d, End: 0.7 * d}, Factor: 0.25},
				},
			},
		},
	}
}

// DefaultRetryPolicy is the mitigation stack's retry arm: up to four
// total attempts, linear backoff, and a per-query timeout generous
// enough that honestly-costed queries never trip it under processor
// sharing (exec time stays within a few multiples of stand-alone time at
// a healthy operating point) while 3x-misestimated queries running into
// a saturated engine do.
func DefaultRetryPolicy() patroller.RetryPolicy {
	return patroller.RetryPolicy{
		MaxAttempts:    4,
		Backoff:        5,
		TimeoutFloor:   120,
		TimeoutPerCost: 0.15,
	}
}

// MitigatedQSConfig is the scheduler configuration for the mitigation-on
// arm: plan-hold degradation (bounded) and last-fit OLTP slope fallback
// on top of the paper defaults.
func MitigatedQSConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SystemCostLimit = SystemCostLimit
	cfg.Degradation = core.Degradation{HoldPlanOnDropout: true, MaxHeldTicks: 5}
	cfg.OLTP.FallbackToLastFit = true
	return cfg
}

// FaultMatrixConfig tunes RunFaultMatrix.
type FaultMatrixConfig struct {
	// Scenarios defaults to DefaultFaultScenarios(Sched) when nil.
	Scenarios []FaultScenario
	Sched     workload.Schedule
	Seed      uint64
	// Retry overrides the mitigation arm's retry policy (nil = default).
	Retry *patroller.RetryPolicy
	// Parallel is the worker count: 0 = GOMAXPROCS, 1 = serial. Cell
	// results are identical for any worker count.
	Parallel int
}

// QuickFaultMatrixConfig is the CI-smoke-sized matrix: a one-hour
// six-period schedule instead of the 24-hour paper one.
func QuickFaultMatrixConfig() FaultMatrixConfig {
	s := workload.Schedule{PeriodSeconds: 600}
	counts := [][3]int{
		{2, 3, 15}, {4, 2, 20}, {3, 4, 25},
		{2, 3, 15}, {3, 4, 20}, {2, 6, 25},
	}
	for _, c := range counts {
		s.Clients = append(s.Clients, map[engine.ClassID]int{1: c[0], 2: c[1], 3: c[2]})
	}
	return FaultMatrixConfig{Sched: s, Seed: 1}
}

// DefaultFaultMatrixConfig runs the matrix over the paper's Figure 3
// schedule.
func DefaultFaultMatrixConfig() FaultMatrixConfig {
	return FaultMatrixConfig{Sched: workload.PaperSchedule(), Seed: 1}
}

// FaultCell is one (scenario, mitigation) outcome.
type FaultCell struct {
	Scenario  string
	Mitigated bool
	// Satisfaction[i] is class i's goal satisfaction, in MixedResult's
	// sorted class order.
	Satisfaction []float64
	// OLAPSatisfaction averages goal satisfaction over the OLAP classes —
	// the matrix's headline SLO-adherence number.
	OLAPSatisfaction float64
	// OLTPMeanRT is the OLTP class's mean response time over measurable
	// periods (seconds).
	OLTPMeanRT float64
	// Injected counts what the fault plan actually did to this run.
	Injected fault.Stats
	// Retried/TimedOut/Exhausted/Failed are the patroller's fault-path
	// counters (all zero with mitigations off: no retry policy is armed,
	// so every abort is terminal).
	Retried   uint64
	TimedOut  uint64
	Exhausted uint64
	Failed    uint64
	// PlansHeld counts degraded control ticks that held the previous
	// plan.
	PlansHeld int
}

// RunFaultMatrix crosses every fault scenario with mitigations off/on and
// measures SLO adherence under each combination. Cells run independently
// (own rig, clock, injector), fanned across the worker pool.
func RunFaultMatrix(cfg FaultMatrixConfig) []FaultCell {
	scenarios := cfg.Scenarios
	if scenarios == nil {
		scenarios = DefaultFaultScenarios(cfg.Sched)
	}
	type job struct {
		sc        FaultScenario
		mitigated bool
	}
	var jobs []job
	for _, sc := range scenarios {
		jobs = append(jobs, job{sc, false}, job{sc, true})
	}
	return Map(cfg.Parallel, jobs, func(j job, _ int) FaultCell {
		return runFaultCell(j.sc, j.mitigated, cfg)
	})
}

// runFaultCell executes one matrix cell.
func runFaultCell(sc FaultScenario, mitigated bool, cfg FaultMatrixConfig) FaultCell {
	plan := sc.Plan
	mc := MixedConfig{
		Mode:       QueryScheduler,
		Sched:      cfg.Sched,
		Seed:       cfg.Seed,
		Faults:     &plan,
		Experiment: fmt.Sprintf("faultmatrix/%s/mitigated=%t", sc.Name, mitigated),
	}
	if mitigated {
		qc := MitigatedQSConfig()
		mc.QS = &qc
		rp := cfg.Retry
		if rp == nil {
			d := DefaultRetryPolicy()
			rp = &d
		}
		mc.Retry = rp
	}
	res := RunMixed(mc)

	cell := FaultCell{
		Scenario:     sc.Name,
		Mitigated:    mitigated,
		Satisfaction: res.Satisfaction,
		Injected:     res.Faults,
		Retried:      res.PatStats.Retried,
		TimedOut:     res.PatStats.TimedOut,
		Exhausted:    res.PatStats.Exhausted,
		Failed:       res.PatStats.Failed,
	}
	var olap stats.Summary
	var oltp stats.Summary
	for i, cl := range res.Classes {
		if cl.Kind == workload.OLAP {
			olap.Add(res.Satisfaction[i])
			continue
		}
		for p := 0; p < res.Periods; p++ {
			if res.Measurable[i][p] {
				oltp.Add(res.Metric[i][p])
			}
		}
	}
	cell.OLAPSatisfaction = olap.Mean()
	cell.OLTPMeanRT = oltp.Mean()
	for _, rec := range res.PlanHistory {
		if rec.Held {
			cell.PlansHeld++
		}
	}
	return cell
}

// WriteFaultMatrix renders the matrix as a before/after table, one
// scenario per row pair.
func WriteFaultMatrix(w io.Writer, cells []FaultCell) {
	fmt.Fprintln(w, "Fault matrix: scenario x mitigation (timeout+retry, plan hold, slope fallback)")
	fmt.Fprintf(w, "%-20s %-10s %10s %12s %8s %8s %8s %8s %6s\n",
		"scenario", "mitigated", "OLAP sat", "OLTP RT(ms)", "faults", "retries", "timeout", "failed", "held")
	for _, c := range cells {
		fmt.Fprintf(w, "%-20s %-10t %9.0f%% %12.0f %8d %8d %8d %8d %6d\n",
			c.Scenario, c.Mitigated, 100*c.OLAPSatisfaction, 1000*c.OLTPMeanRT,
			c.Injected.Total(), c.Retried, c.TimedOut, c.Failed, c.PlansHeld)
	}
}

// FaultMatrixCSV renders the matrix as CSV for plotting.
func FaultMatrixCSV(cells []FaultCell) string {
	out := "scenario,mitigated,olap_satisfaction,oltp_mean_rt_seconds,faults_injected,retries,timeouts,exhausted,failed,plans_held\n"
	for _, c := range cells {
		out += fmt.Sprintf("%s,%t,%.6g,%.6g,%d,%d,%d,%d,%d,%d\n",
			c.Scenario, c.Mitigated, c.OLAPSatisfaction, c.OLTPMeanRT,
			c.Injected.Total(), c.Retried, c.TimedOut, c.Exhausted, c.Failed, c.PlansHeld)
	}
	return out
}
