package experiment

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

const validScenario = `{
  "name": "test",
  "mode": "query-scheduler",
  "seed": 3,
  "period_minutes": 5,
  "classes": [
    {"name": "a", "kind": "olap", "goal_metric": "velocity", "goal_target": 0.4, "importance": 1},
    {"name": "b", "kind": "oltp", "goal_metric": "response_time", "goal_target": 0.3, "importance": 2}
  ],
  "periods": [[2, 10], [3, 12]]
}`

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario(strings.NewReader(validScenario))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "test" || sc.Mode != QueryScheduler || sc.Seed != 3 {
		t.Fatalf("scenario header = %+v", sc)
	}
	if len(sc.Classes) != 2 {
		t.Fatalf("%d classes", len(sc.Classes))
	}
	if sc.Classes[0].Kind != workload.OLAP || sc.Classes[1].Kind != workload.OLTP {
		t.Fatal("class kinds wrong")
	}
	if sc.Classes[1].Goal.Metric != workload.AvgResponseTime || sc.Classes[1].Goal.Target != 0.3 {
		t.Fatalf("goal = %+v", sc.Classes[1].Goal)
	}
	if sc.Sched.PeriodSeconds != 300 || sc.Sched.Periods() != 2 {
		t.Fatalf("schedule = %+v", sc.Sched)
	}
	if sc.Sched.Clients[1][sc.Classes[1].ID] != 12 {
		t.Fatal("client counts misassigned")
	}
	if sc.QS != nil {
		t.Fatal("QS overrides set without being requested")
	}
}

func TestParseScenarioDefaults(t *testing.T) {
	sc, err := ParseScenario(strings.NewReader(`{
	  "period_minutes": 1,
	  "classes": [{"kind": "olap", "goal_metric": "velocity", "goal_target": 0.5, "importance": 1}],
	  "periods": [[1]]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Mode != NoControl || sc.Seed != 1 {
		t.Fatalf("defaults = %+v", sc)
	}
	if sc.Classes[0].Name != "Class 1" {
		t.Fatalf("default name = %q", sc.Classes[0].Name)
	}
}

func TestParseScenarioOverrides(t *testing.T) {
	sc, err := ParseScenario(strings.NewReader(`{
	  "mode": "query-scheduler",
	  "period_minutes": 1,
	  "system_cost_limit": 12000,
	  "control_interval_seconds": 30,
	  "classes": [{"kind": "olap", "goal_metric": "velocity", "goal_target": 0.5, "importance": 1}],
	  "periods": [[1]]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.QS == nil || sc.QS.SystemCostLimit != 12000 || sc.QS.ControlInterval != 30 {
		t.Fatalf("QS overrides = %+v", sc.QS)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"unknown field":  `{"period_minutes": 1, "bogus": 1, "classes": [{"kind": "olap", "goal_metric": "velocity", "goal_target": 0.5, "importance": 1}], "periods": [[1]]}`,
		"bad mode":       `{"mode": "magic", "period_minutes": 1, "classes": [{"kind": "olap", "goal_metric": "velocity", "goal_target": 0.5, "importance": 1}], "periods": [[1]]}`,
		"no classes":     `{"period_minutes": 1, "periods": [[1]]}`,
		"bad kind":       `{"period_minutes": 1, "classes": [{"kind": "olxp", "goal_metric": "velocity", "goal_target": 0.5, "importance": 1}], "periods": [[1]]}`,
		"bad metric":     `{"period_minutes": 1, "classes": [{"kind": "olap", "goal_metric": "latency", "goal_target": 0.5, "importance": 1}], "periods": [[1]]}`,
		"bad velocity":   `{"period_minutes": 1, "classes": [{"kind": "olap", "goal_metric": "velocity", "goal_target": 1.5, "importance": 1}], "periods": [[1]]}`,
		"bad rt":         `{"period_minutes": 1, "classes": [{"kind": "oltp", "goal_metric": "response_time", "goal_target": 0, "importance": 1}], "periods": [[1]]}`,
		"bad importance": `{"period_minutes": 1, "classes": [{"kind": "olap", "goal_metric": "velocity", "goal_target": 0.5, "importance": 0}], "periods": [[1]]}`,
		"two oltp": `{"period_minutes": 1, "classes": [
			{"kind": "oltp", "goal_metric": "response_time", "goal_target": 0.5, "importance": 1},
			{"kind": "oltp", "goal_metric": "response_time", "goal_target": 0.5, "importance": 2}], "periods": [[1, 1]]}`,
		"no periods":    `{"period_minutes": 1, "classes": [{"kind": "olap", "goal_metric": "velocity", "goal_target": 0.5, "importance": 1}], "periods": []}`,
		"bad row":       `{"period_minutes": 1, "classes": [{"kind": "olap", "goal_metric": "velocity", "goal_target": 0.5, "importance": 1}], "periods": [[1, 2]]}`,
		"negative":      `{"period_minutes": 1, "classes": [{"kind": "olap", "goal_metric": "velocity", "goal_target": 0.5, "importance": 1}], "periods": [[-1]]}`,
		"no period len": `{"classes": [{"kind": "olap", "goal_metric": "velocity", "goal_target": 0.5, "importance": 1}], "periods": [[1]]}`,
	}
	for name, raw := range cases {
		if _, err := ParseScenario(strings.NewReader(raw)); err == nil {
			t.Fatalf("case %q: invalid scenario accepted", name)
		}
	}
}

func TestScenarioRuns(t *testing.T) {
	sc, err := ParseScenario(strings.NewReader(validScenario))
	if err != nil {
		t.Fatal(err)
	}
	res := sc.Run()
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Periods != 2 || len(res.Classes) != 2 {
		t.Fatalf("result shape %d periods %d classes", res.Periods, len(res.Classes))
	}
	if res.CostLimits == nil {
		t.Fatal("query-scheduler scenario missing plan history")
	}
	// Both classes should do work.
	for i := range res.Classes {
		total := 0
		for p := 0; p < res.Periods; p++ {
			total += res.Completed[i][p]
		}
		if total == 0 {
			t.Fatalf("class %d completed nothing", i)
		}
	}
}

func TestCSVRenderers(t *testing.T) {
	sat := SaturationCSV([]SaturationPoint{{Limit: 1000, QueriesPerHour: 50, MeanRespSeconds: 2, MeanVelocity: 0.5}})
	if !strings.Contains(sat, "limit,queries_per_hour") || !strings.Contains(sat, "1000,50,2,0.5") {
		t.Fatalf("saturation csv:\n%s", sat)
	}
	f2 := Fig2CSV([]Fig2Curve{{OLTPClients: 30, OLAPClients: 8, Limits: []float64{2000}, MeanRT: []float64{0.3}}})
	if !strings.Contains(f2, "rt_30_8") || !strings.Contains(f2, "2000,0.3") {
		t.Fatalf("fig2 csv:\n%s", f2)
	}
	if Fig2CSV(nil) != "" {
		t.Fatal("empty fig2 csv should be empty")
	}
	res := RunMixed(MixedConfig{Mode: QueryScheduler, Sched: shortSchedule(), Seed: 1})
	mix := MixedCSV(res)
	if !strings.Contains(mix, "class_1_metric") || !strings.Contains(mix, "class_3_p95_s") {
		t.Fatalf("mixed csv header wrong:\n%.200s", mix)
	}
	lim := CostLimitsCSV(res)
	if !strings.Contains(lim, "class_2_limit") {
		t.Fatalf("limits csv header wrong:\n%.200s", lim)
	}
	if CostLimitsCSV(&MixedResult{}) != "" {
		t.Fatal("limits csv without history should be empty")
	}
}
