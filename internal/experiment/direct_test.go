package experiment

import (
	"strings"
	"testing"
)

func shortDirectConfig() DirectControlConfig {
	return DirectControlConfig{OLTPClients: 25, OLAPClients: 4, Window: 600, Seed: 1}
}

func TestRunDirectControlStrategies(t *testing.T) {
	cfg := shortDirectConfig()
	results := RunDirectControl(cfg)
	if len(results) != 4 {
		t.Fatalf("%d strategies, want 4", len(results))
	}
	byName := map[string]DirectControlResult{}
	for _, r := range results {
		byName[r.Strategy] = r
		if r.OLTPMeanRT <= 0 || r.OLTPMeanRT > 2 {
			t.Fatalf("%s: implausible OLTP RT %v", r.Strategy, r.OLTPMeanRT)
		}
		if r.OLTPPerSecond <= 0 {
			t.Fatalf("%s: no OLTP throughput", r.Strategy)
		}
	}
	none := byName["no-control"]
	direct := byName["direct (in-DBMS shares)"]
	if direct.OLTPMeanRT >= none.OLTPMeanRT {
		t.Fatalf("direct control did not improve OLTP RT: %v vs %v",
			direct.OLTPMeanRT, none.OLTPMeanRT)
	}
	// Direct control pays in OLAP throughput. In this shortened window
	// the completion counts are small, so allow counting noise; the full
	// 80-minute run in EXPERIMENTS.md shows the trade sharply.
	if direct.OLAPPerHour > none.OLAPPerHour*1.3 {
		t.Fatalf("direct control should not boost OLAP throughput: %v vs %v",
			direct.OLAPPerHour, none.OLAPPerHour)
	}
	// The direct strategies report the controller's weight.
	if direct.FinalOLTPShare <= 1 {
		t.Fatalf("direct strategy weight = %v, want raised above minimum", direct.FinalOLTPShare)
	}
	indirect := byName["indirect (QS admission)"]
	if indirect.FinalOLTPShare < 0 {
		t.Fatalf("indirect strategy share = %v", indirect.FinalOLTPShare)
	}
}

func TestDirectControlDeterministic(t *testing.T) {
	// The weighted-sharing path must be exactly reproducible: any map
	// iteration leaking into the float arithmetic would diverge here.
	cfg := shortDirectConfig()
	a := RunDirectControl(cfg)
	b := RunDirectControl(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("strategy %q not reproducible:\n%+v\n%+v", a[i].Strategy, a[i], b[i])
		}
	}
}

func TestWriteDirectControl(t *testing.T) {
	cfg := shortDirectConfig()
	var b strings.Builder
	WriteDirectControl(&b, cfg, []DirectControlResult{{
		Strategy:    "x",
		OLTPMeanRT:  0.2,
		OLTPGoalMet: true,
	}})
	out := b.String()
	for _, want := range []string{"Direct vs. indirect", "met", "OLTP RT(ms)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunReplicatedAggregates(t *testing.T) {
	sched := shortSchedule()
	rep := RunReplicated(NoControl, sched, []uint64{1, 2, 3}, 0)
	if len(rep.Seeds) != 3 {
		t.Fatalf("seeds = %v", rep.Seeds)
	}
	if len(rep.Satisfaction) != 3 {
		t.Fatalf("%d satisfaction rows", len(rep.Satisfaction))
	}
	for i, s := range rep.Satisfaction {
		if s.Count() != 3 {
			t.Fatalf("class %d has %d samples", i, s.Count())
		}
		if s.Mean() < 0 || s.Mean() > 1 {
			t.Fatalf("class %d satisfaction %v out of [0,1]", i, s.Mean())
		}
	}
	if rep.HeavyOLTPRT.Count() == 0 {
		t.Fatal("no heavy-period samples")
	}
	if rep.Class2Beats1.Count() == 0 {
		t.Fatal("no differentiation samples")
	}
}

func TestDefaultSeeds(t *testing.T) {
	seeds := DefaultSeeds(4)
	if len(seeds) != 4 || seeds[0] != 1 || seeds[3] != 4 {
		t.Fatalf("seeds = %v", seeds)
	}
}

func TestWriteReplication(t *testing.T) {
	sched := shortSchedule()
	reps := []Replication{RunReplicated(NoControl, sched, []uint64{1, 2}, 0)}
	var b strings.Builder
	WriteReplication(&b, RunMixed(MixedConfig{Mode: NoControl, Sched: sched, Seed: 1}).Classes, reps)
	out := b.String()
	for _, want := range []string{"2 seeds", "no-control", "±", "P(class2 >= class1)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Empty input is a no-op.
	b.Reset()
	WriteReplication(&b, nil, nil)
	if b.Len() != 0 {
		t.Fatal("empty replication rendered output")
	}
}

func TestChartsRender(t *testing.T) {
	res := RunMixed(MixedConfig{Mode: QueryScheduler, Sched: shortSchedule(), Seed: 1})
	var b strings.Builder
	WriteMixedCharts(&b, res)
	if !strings.Contains(b.String(), "query-scheduler") || !strings.Contains(b.String(), "goal") {
		t.Fatalf("mixed chart malformed:\n%s", b.String())
	}
	b.Reset()
	WriteCostLimitCharts(&b, res)
	if !strings.Contains(b.String(), "cost limits") {
		t.Fatal("cost-limit chart malformed")
	}
	b.Reset()
	WriteCostLimitCharts(&b, &MixedResult{Mode: NoControl})
	if !strings.Contains(b.String(), "does not adapt") {
		t.Fatal("missing non-QS chart notice")
	}
	b.Reset()
	WriteFig2Charts(&b, []Fig2Curve{{OLTPClients: 30, OLAPClients: 8, MeanRT: []float64{0.2, 0.3}}})
	if !strings.Contains(b.String(), "(30,8)") {
		t.Fatal("fig2 chart malformed")
	}
	b.Reset()
	WriteSaturationChart(&b, []SaturationPoint{{Limit: 1000, QueriesPerHour: 10}, {Limit: 2000, QueriesPerHour: 20}})
	if !strings.Contains(b.String(), "queries/hour") {
		t.Fatal("saturation chart malformed")
	}
}
