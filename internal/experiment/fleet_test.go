package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/decisionlog"
	"repro/internal/engine"
	"repro/internal/workload"
)

// fleetTestConfig is a short heterogeneous fleet run: two paper-default
// backends plus a half-capacity one, heavy enough that routing and the
// budget split both have something to do.
func fleetTestConfig() MixedConfig {
	return MixedConfig{
		Mode: QueryScheduler,
		Sched: ConstantSchedule(300, 600, map[engine.ClassID]int{
			1: 6, 2: 4, 3: 20,
		}),
		Classes:    workload.PaperClasses(),
		Seed:       5,
		Experiment: "fleet-test",
		Backends: []backend.Spec{
			{Name: "fast-1"},
			{Name: "fast-2"},
			{Name: "slow", CPUCapacity: 1, IOCapacity: 7},
		},
	}
}

// fleetOutputs runs cfg with trace and decision log captured in memory.
func fleetOutputs(t *testing.T, cfg MixedConfig) (*FleetResult, []byte, []byte) {
	t.Helper()
	var tb, db bytes.Buffer
	cfg.Trace = &tb
	cfg.Decisions = &db
	res := RunFleet(cfg)
	if res.ExportErr != nil {
		t.Fatal(res.ExportErr)
	}
	return res, tb.Bytes(), db.Bytes()
}

// A single default backend spec must take the classic single-engine
// path: trace and decision log byte-identical to a config that never
// mentions backends. This is what keeps `-backends 1` a no-op.
func TestSingleBackendSpecIsByteIdenticalToLegacy(t *testing.T) {
	base := MixedConfig{
		Mode:       QueryScheduler,
		Sched:      ConstantSchedule(300, 300, map[engine.ClassID]int{1: 4, 2: 2, 3: 12}),
		Seed:       3,
		Experiment: "legacy-equivalence",
	}
	run := func(cfg MixedConfig) ([]byte, []byte, *MixedResult) {
		var tb, db bytes.Buffer
		cfg.Trace = &tb
		cfg.Decisions = &db
		res := RunMixed(cfg)
		if res.ExportErr != nil {
			t.Fatal(res.ExportErr)
		}
		return tb.Bytes(), db.Bytes(), res
	}
	legacyTrace, legacyDec, legacyRes := run(base)
	speced := base
	speced.Backends = backend.DefaultSpecs(1)
	specTrace, specDec, specRes := run(speced)

	if !bytes.Equal(legacyTrace, specTrace) {
		t.Error("one default backend spec changed the trace bytes")
	}
	if !bytes.Equal(legacyDec, specDec) {
		t.Error("one default backend spec changed the decision log bytes")
	}
	if mixedTables(legacyRes) != mixedTables(specRes) {
		t.Error("one default backend spec changed the period tables")
	}
}

// A fleet run is as deterministic as a single-engine one: identical
// bytes for identical configs.
func TestFleetRunIsDeterministic(t *testing.T) {
	res1, trace1, dec1 := fleetOutputs(t, fleetTestConfig())
	res2, trace2, dec2 := fleetOutputs(t, fleetTestConfig())
	if !bytes.Equal(trace1, trace2) {
		t.Error("fleet trace bytes differ between identical runs")
	}
	if !bytes.Equal(dec1, dec2) {
		t.Error("fleet decision-log bytes differ between identical runs")
	}
	if mixedTables(res1.MixedResult) != mixedTables(res2.MixedResult) {
		t.Error("fleet period tables differ between identical runs")
	}
}

// The router must shift load away from the half-capacity backend: it
// reaches saturation sooner, so the load scorer repels work earlier
// than on the full-capacity boxes.
func TestFleetRoutingShiftsLoadOffSlowBackend(t *testing.T) {
	res, traceBytes, _ := fleetOutputs(t, fleetTestConfig())

	if len(res.Routed) != 3 {
		t.Fatalf("routed tallies for %d backends, want 3", len(res.Routed))
	}
	slow := res.Routed[2]
	for i := 0; i < 2; i++ {
		if res.Routed[i] <= slow {
			t.Errorf("backend %d (fast) routed %d queries, slow routed %d — router did not shift load",
				i+1, res.Routed[i], slow)
		}
	}
	var total int64
	for _, n := range res.Routed {
		total += n
	}
	if slow >= total/3 {
		t.Errorf("slow backend got %d of %d routed queries — at least a fair share", slow, total)
	}
	// Every routing decision lands in the trace.
	routeLines := bytes.Count(traceBytes, []byte(`"kind":"route"`))
	if int64(routeLines) != total {
		t.Errorf("trace carries %d route events for %d routed queries", routeLines, total)
	}

	// The planner actuates the split: by the end the slow backend's
	// budget share should not exceed either fast backend's.
	if len(res.Plans) == 0 {
		t.Fatal("no fleet plans recorded")
	}
	final := res.Plans[len(res.Plans)-1].Limits
	if final[2] > final[0] || final[2] > final[1] {
		t.Errorf("final budget split %v gives the slow backend the largest share", final)
	}
}

// The per-backend decision streams surface in qreport's summary, one
// section per backend with its own SLO accounting.
func TestFleetDecisionLogSummarizesPerBackend(t *testing.T) {
	_, _, dec := fleetOutputs(t, fleetTestConfig())
	var sb strings.Builder
	if err := decisionlog.Summarize(&sb, bytes.NewReader(dec)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"3 backends",
		`backend 1 "fast-1"`,
		`backend 3 "slow": cpu 1, io 7`,
		"=== backend 1: fast-1 ===",
		"=== backend 2: fast-2 ===",
		"=== backend 3: slow ===",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet summary missing %q\n%s", want, out)
		}
	}
}

// Resuming a fleet checkpoint from any boundary must reproduce the
// uninterrupted run's outputs byte for byte, exactly like the
// single-engine resume contract.
func TestFleetResumeIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	cfg := fleetTestConfig()
	cfg.CheckpointEvery = 2
	cfg.CheckpointDir = ckptDir

	refTrace := filepath.Join(dir, "ref-trace.jsonl")
	refDec := filepath.Join(dir, "ref-decisions.jsonl")
	tf, err := os.Create(refTrace)
	if err != nil {
		t.Fatal(err)
	}
	df, err := os.Create(refDec)
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	cfg.Trace = tf
	cfg.Decisions = df
	cfg.Metrics = &mb
	res := RunFleet(cfg)
	if res.ExportErr != nil {
		t.Fatal(res.ExportErr)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := df.Close(); err != nil {
		t.Fatal(err)
	}
	refTables := mixedTables(res.MixedResult)
	refMetrics := append([]byte(nil), mb.Bytes()...)
	refTraceBytes, err := os.ReadFile(refTrace)
	if err != nil {
		t.Fatal(err)
	}
	refDecBytes, err := os.ReadFile(refDec)
	if err != nil {
		t.Fatal(err)
	}

	indices := checkpointIndices(t, ckptDir)
	sort.Ints(indices)
	if testing.Short() {
		// Sample the boundaries (first, middle, last) under -short; the
		// full every-boundary sweep runs without it.
		indices = []int{indices[0], indices[len(indices)/2], indices[len(indices)-1]}
	}
	for _, idx := range indices {
		tmpTrace := filepath.Join(dir, fmt.Sprintf("resume-%02d-trace.jsonl", idx))
		tmpDec := filepath.Join(dir, fmt.Sprintf("resume-%02d-decisions.jsonl", idx))
		copyFile(t, refTrace, tmpTrace)
		copyFile(t, refDec, tmpDec)
		var rm bytes.Buffer
		rres, err := ResumeMixed(ResumeOptions{
			Dir:           ckptDir,
			Index:         idx,
			TracePath:     tmpTrace,
			DecisionsPath: tmpDec,
			Metrics:       &rm,
		})
		if err != nil {
			t.Fatalf("boundary %d: %v", idx, err)
		}
		if rres.ExportErr != nil {
			t.Fatalf("boundary %d: export: %v", idx, rres.ExportErr)
		}
		if got := mixedTables(rres); got != refTables {
			t.Errorf("boundary %d: period tables diverged", idx)
		}
		if !bytes.Equal(rm.Bytes(), refMetrics) {
			t.Errorf("boundary %d: metrics exposition diverged", idx)
		}
		tb, err := os.ReadFile(tmpTrace)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tb, refTraceBytes) {
			t.Errorf("boundary %d: trace file diverged", idx)
		}
		db, err := os.ReadFile(tmpDec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(db, refDecBytes) {
			t.Errorf("boundary %d: decision log diverged", idx)
		}
	}
}
