// Ablations of the Query Scheduler's design decisions (DESIGN.md §5),
// runnable as one parallel batch: every variant is an independent seeded
// run, so the whole table fans out on the worker pool instead of
// executing variant-by-variant.
package experiment

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/workload"
)

// AblationSpec is one Query Scheduler variant: a name and a mutation of
// the paper-default configuration.
type AblationSpec struct {
	Name   string
	Detail string
	Mutate func(*core.Config)
}

// AblationSpecs returns the standard variant set, baseline first — the
// same design decisions bench_test.go's per-variant benchmarks cover.
func AblationSpecs() []AblationSpec {
	return []AblationSpec{
		{"baseline", "paper defaults", func(*core.Config) {}},
		{"grid-solver", "exhaustive grid search instead of greedy exchange",
			func(c *core.Config) { c.Solver = solver.Grid{} }},
		{"starvation-guard", "dispatcher releases oversized queries",
			func(c *core.Config) { c.StarvationGuard = true }},
		{"coarse-snapshots", "60s snapshot sampling instead of 10s",
			func(c *core.Config) { c.SnapshotInterval = 60 }},
		{"short-regression", "OLTP model fit over 4 intervals instead of 16",
			func(c *core.Config) { c.OLTP.Window = 4 }},
		{"slow-control-loop", "re-plan every 300s instead of 60s",
			func(c *core.Config) { c.ControlInterval = 300 }},
		{"throughput-model", "saturation-aware OLTP model",
			func(c *core.Config) { c.OLTPModel = core.ThroughputOLTPModel }},
		{"feed-forward", "planner uses the detector's demand forecasts",
			func(c *core.Config) { c.FeedForward = true }},
	}
}

// RunAblations runs every variant over the given schedule (typically
// workload.PaperSchedule()) with the given seed, fanning the runs across
// the worker pool (0 = GOMAXPROCS, 1 = serial). Results are returned in
// spec order regardless of worker count.
func RunAblations(specs []AblationSpec, sched workload.Schedule, seed uint64, workers int) []*MixedResult {
	return Map(workers, specs, func(spec AblationSpec, _ int) *MixedResult {
		qs := core.DefaultConfig()
		qs.SystemCostLimit = SystemCostLimit
		spec.Mutate(&qs)
		return RunMixed(MixedConfig{
			Mode:  QueryScheduler,
			Sched: sched,
			Seed:  seed,
			QS:    &qs,
		})
	})
}

// WriteAblations renders the ablation comparison: per-class goal
// satisfaction plus the heavy-period OLTP response time for each variant.
func WriteAblations(w io.Writer, specs []AblationSpec, results []*MixedResult) {
	if len(results) == 0 {
		return
	}
	fmt.Fprintf(w, "Query Scheduler ablations (paper schedule)\n")
	fmt.Fprintf(w, "%-18s", "variant")
	for _, c := range results[0].Classes {
		fmt.Fprintf(w, " %10s", c.Name+" %")
	}
	fmt.Fprintf(w, " %15s  %s\n", "oltp-heavy(ms)", "what changed")
	for i, res := range results {
		fmt.Fprintf(w, "%-18s", specs[i].Name)
		for ci := range res.Classes {
			fmt.Fprintf(w, " %9.0f%%", 100*res.Satisfaction[ci])
		}
		var heavy float64
		var n int
		for p := 2; p < res.Periods; p += 3 {
			if res.Measurable[2][p] {
				heavy += res.Metric[2][p]
				n++
			}
		}
		if n > 0 {
			fmt.Fprintf(w, " %15.0f", heavy/float64(n)*1000)
		} else {
			fmt.Fprintf(w, " %15s", "-")
		}
		fmt.Fprintf(w, "  %s\n", specs[i].Detail)
	}
}
