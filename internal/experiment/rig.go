// Package experiment assembles complete testbeds — engine, workloads,
// controllers, metrics — and runs the paper's experiments. Every figure in
// the paper's evaluation section has a runner here; cmd/qsim and the
// benchmarks in bench_test.go are thin wrappers over this package.
package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/patroller"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/solver"
	"repro/internal/workload"
)

// Mode selects the workload controller under test.
type Mode int

// Controller modes, matching the paper's three experiment configurations.
const (
	// NoControl exerts nothing beyond the system cost limit (Figure 4).
	NoControl Mode = iota
	// QPPriority is static DB2 QP control: cost groups plus class
	// priorities (Figure 5).
	QPPriority
	// QPNoPriority is DB2 QP group control without priorities; the paper
	// notes its results match NoControl.
	QPNoPriority
	// QueryScheduler is the paper's dynamic workload adaptation
	// (Figures 6 and 7).
	QueryScheduler
)

func (m Mode) String() string {
	switch m {
	case NoControl:
		return "no-control"
	case QPPriority:
		return "qp-priority"
	case QPNoPriority:
		return "qp-no-priority"
	case QueryScheduler:
		return "query-scheduler"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SystemCostLimit is the experimentally determined healthy operating
// point (timerons) — the paper's 30,000. The saturation experiment (E0)
// regenerates the curve this value is read from.
const SystemCostLimit = 30000

// Rig is one fully wired testbed.
type Rig struct {
	Clock     *simclock.Clock
	Eng       *engine.Engine
	Pool      *workload.Pool
	Classes   []*workload.Class
	OLAPSet   *workload.Set
	OLTPSet   *workload.Set
	Sched     workload.Schedule
	Collector *metrics.Collector
	Pat       *patroller.Patroller
	QS        *core.QueryScheduler
	// Faults is the run's fault injector, when one is attached.
	Faults *fault.Injector
}

// OLAPClassIDs returns the IDs of the rig's OLAP classes.
func (r *Rig) OLAPClassIDs() []engine.ClassID {
	var ids []engine.ClassID
	for _, c := range r.Classes {
		if c.Kind == workload.OLAP {
			ids = append(ids, c.ID)
		}
	}
	return ids
}

// OLTPClass returns the rig's OLTP class (nil if none).
func (r *Rig) OLTPClass() *workload.Class {
	for _, c := range r.Classes {
		if c.Kind == workload.OLTP {
			return c
		}
	}
	return nil
}

// NewRig builds the paper's testbed: a simulated DB2-like engine, the
// TPC-H-like and TPC-C-like template sets in separate databases, the three
// service classes, and enough parked clients to cover the schedule. No
// controller is attached yet.
func NewRig(seed uint64, sched workload.Schedule) *Rig {
	return NewCustomRig(seed, sched, workload.PaperClasses())
}

// NewCustomRig is NewRig with caller-defined service classes: every OLAP
// class draws from the TPC-H-like set, every OLTP class from the
// TPC-C-like set.
func NewCustomRig(seed uint64, sched workload.Schedule, classes []*workload.Class) *Rig {
	return newRig(seed, sched, classes, false)
}

// NewStreamingRig is NewCustomRig with the streaming client generator:
// clients materialize lazily on first activation. Byte-identical to the
// eager rig; use it when the schedule's client population is large.
func NewStreamingRig(seed uint64, sched workload.Schedule, classes []*workload.Class) *Rig {
	return newRig(seed, sched, classes, true)
}

func newRig(seed uint64, sched workload.Schedule, classes []*workload.Class, streaming bool) *Rig {
	clock := simclock.New()
	eng := engine.New(engine.DefaultConfig(), clock)

	model := optimizer.DefaultModel()
	olapOpt := optimizer.New(model, workload.TPCHCatalog())
	oltpOpt := optimizer.New(model, workload.TPCCCatalog())
	olapSet := workload.NewSet(olapOpt, workload.TPCHTemplates())
	oltpSet := workload.NewSet(oltpOpt, workload.TPCCTemplates())

	pool := workload.NewPool(eng)
	src := rng.New(seed)
	maxClients := sched.MaxClients()
	for _, c := range classes {
		set := olapSet
		if c.Kind == workload.OLTP {
			set = oltpSet
		}
		if streaming {
			pool.AddClientsStreaming(c, set, maxClients[c.ID], src)
		} else {
			pool.AddClients(c, set, maxClients[c.ID], src)
		}
	}

	return &Rig{
		Clock:     clock,
		Eng:       eng,
		Pool:      pool,
		Classes:   classes,
		OLAPSet:   olapSet,
		OLTPSet:   oltpSet,
		Sched:     sched,
		Collector: metrics.NewCollector(eng, classes, sched),
	}
}

// SampleOLAPCosts draws a cost sample from the rig's OLAP workload — what
// an administrator would mine from QP's historical control tables to set
// the group thresholds.
func (r *Rig) SampleOLAPCosts(n int, seed uint64) []float64 {
	src := rng.New(seed)
	costs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		costs = append(costs, r.OLAPSet.Generate(src).Timerons)
	}
	return costs
}

// AttachController wires the controller for the given mode. For
// QueryScheduler the scheduler is started immediately (its dispatcher
// becomes the patroller's policy). qsCfg customizes the scheduler; pass
// nil for the paper defaults.
func (r *Rig) AttachController(mode Mode, qsCfg *core.Config) {
	olap := r.OLAPClassIDs()
	r.Pat = patroller.New(r.Eng, olap...)
	limit := float64(SystemCostLimit)
	if qsCfg != nil && qsCfg.SystemCostLimit > 0 {
		limit = qsCfg.SystemCostLimit
	}

	switch mode {
	case NoControl:
		r.Pat.SetPolicy(patroller.SystemLimit{Limit: limit})

	case QPPriority, QPNoPriority:
		thresholds := patroller.ThresholdsFromSample(r.SampleOLAPCosts(4096, 99))
		pol := patroller.GroupPriority{
			TotalLimit:    limit,
			Thresholds:    thresholds,
			MaxConcurrent: patroller.DefaultGroupCaps(),
			Priority:      map[engine.ClassID]int{},
		}
		if mode == QPPriority {
			// The paper sets Class 2's priority above Class 1's; in
			// general QP priorities follow class importance.
			for _, c := range r.Classes {
				if c.Kind == workload.OLAP {
					pol.Priority[c.ID] = c.Importance
				}
			}
		}
		r.Pat.SetPolicy(pol)

	case QueryScheduler:
		cfg := core.DefaultConfig()
		cfg.SystemCostLimit = limit
		if qsCfg != nil {
			cfg = *qsCfg
		}
		oltp := r.OLTPClass()
		var clients func() []engine.ClientID
		if oltp != nil {
			id := oltp.ID
			clients = func() []engine.ClientID { return r.Pool.ActiveClients(id) }
		}
		qs, err := core.New(cfg, r.Eng, r.Pat, r.Classes, clients)
		if err != nil {
			panic(err)
		}
		r.QS = qs
		qs.Start()

	default:
		panic(fmt.Sprintf("experiment: unknown mode %v", mode))
	}
}

// Run installs the schedule and runs the simulation to the end of the
// last period.
func (r *Rig) Run() {
	r.Sched.Install(r.Clock, r.Pool, nil)
	r.Clock.RunUntil(r.Sched.Duration())
}

// QSPlan exposes the Query Scheduler's current plan; nil in other modes.
func (r *Rig) QSPlan() solver.Plan {
	if r.QS == nil {
		return nil
	}
	return r.QS.CostLimits()
}
