package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationSpecsWellFormed(t *testing.T) {
	specs := AblationSpecs()
	if len(specs) < 7 {
		t.Fatalf("only %d ablation specs", len(specs))
	}
	if specs[0].Name != "baseline" {
		t.Fatalf("first spec = %q, want baseline", specs[0].Name)
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || s.Detail == "" || s.Mutate == nil {
			t.Fatalf("incomplete spec %+v", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestWriteAblationsRendersEveryVariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full QS runs are slow under -race")
	}
	// Two cheap variants on the short schedule suffice to prove the batch
	// runner + writer wiring; the full set is exercised by
	// cmd/qsim -exp ablations and the benches.
	specs := []AblationSpec{AblationSpecs()[0], AblationSpecs()[2]}
	results := RunAblations(specs, shortSchedule(), 1, 2)
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	var buf bytes.Buffer
	WriteAblations(&buf, specs, results)
	out := buf.String()
	for _, s := range specs {
		if !strings.Contains(out, s.Name) {
			t.Fatalf("output missing variant %q:\n%s", s.Name, out)
		}
	}
}
