// Multi-seed replication: the paper reports single 24-hour runs; the
// simulator can afford replications, so the headline comparisons come
// with run-to-run variance attached.
package experiment

import (
	"fmt"
	"io"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Replication summarizes one mode across several seeded runs.
type Replication struct {
	Mode  Mode
	Seeds []uint64
	// Satisfaction[i] aggregates class i's goal satisfaction across runs.
	Satisfaction []stats.Summary
	// HeavyOLTPRT aggregates the mean OLTP response time over the
	// heavy-intensity periods (3, 6, 9, ... in the paper's schedule).
	HeavyOLTPRT stats.Summary
	// Class2Beats1 aggregates the fraction of comparable periods where
	// class 2's velocity was at least class 1's.
	Class2Beats1 stats.Summary
}

// RunReplicated runs the mixed experiment across the given seeds, fanning
// the (independent) seeded runs across at most Workers(workers)
// goroutines. Results are folded in seed order, so the outcome is
// identical for any worker count.
func RunReplicated(mode Mode, sched workload.Schedule, seeds []uint64, workers int) Replication {
	if len(seeds) == 0 {
		panic("experiment: no seeds")
	}
	results := Map(workers, seeds, func(seed uint64, _ int) *MixedResult {
		return RunMixed(MixedConfig{Mode: mode, Sched: sched, Seed: seed})
	})
	rep := Replication{Mode: mode, Seeds: seeds}
	for _, res := range results {
		if rep.Satisfaction == nil {
			rep.Satisfaction = make([]stats.Summary, len(res.Classes))
		}
		for i := range res.Classes {
			rep.Satisfaction[i].Add(res.Satisfaction[i])
		}
		var heavy stats.Summary
		for p := 2; p < res.Periods; p += 3 {
			if res.Measurable[2][p] {
				heavy.Add(res.Metric[2][p])
			}
		}
		if heavy.Count() > 0 {
			rep.HeavyOLTPRT.Add(heavy.Mean())
		}
		better, comparable := 0, 0
		for p := 0; p < res.Periods; p++ {
			if res.Measurable[0][p] && res.Measurable[1][p] {
				comparable++
				if res.Metric[1][p] >= res.Metric[0][p] {
					better++
				}
			}
		}
		if comparable > 0 {
			rep.Class2Beats1.Add(float64(better) / float64(comparable))
		}
	}
	return rep
}

// DefaultSeeds returns the seed set used for replicated results.
func DefaultSeeds(n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

// WriteReplication renders a replicated comparison across modes.
func WriteReplication(w io.Writer, classes []*workload.Class, reps []Replication) {
	if len(reps) == 0 {
		return
	}
	fmt.Fprintf(w, "Replicated results over %d seeds (mean ± stddev)\n", len(reps[0].Seeds))
	fmt.Fprintf(w, "%-34s", "goal satisfaction")
	for _, r := range reps {
		fmt.Fprintf(w, " %22s", r.Mode)
	}
	fmt.Fprintln(w)
	for ci, c := range classes {
		fmt.Fprintf(w, "%-34s", fmt.Sprintf("%s (%s)", c.Name, c.Goal))
		for _, r := range reps {
			s := r.Satisfaction[ci]
			fmt.Fprintf(w, " %14.0f%% ± %3.0f%%", 100*s.Mean(), 100*s.StdDev())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-34s", "OLTP heavy-period mean RT (ms)")
	for _, r := range reps {
		fmt.Fprintf(w, " %15.0f ± %3.0f", 1000*r.HeavyOLTPRT.Mean(), 1000*r.HeavyOLTPRT.StdDev())
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-34s", "P(class2 >= class1)")
	for _, r := range reps {
		fmt.Fprintf(w, " %14.0f%% ± %3.0f%%", 100*r.Class2Beats1.Mean(), 100*r.Class2Beats1.StdDev())
	}
	fmt.Fprintln(w)
}
