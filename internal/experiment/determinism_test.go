// Determinism regression tests for the parallel experiment layer: a sweep
// fanned across 8 workers must produce byte-identical summarized output to
// the same sweep run serially. This is the guard for the per-run isolation
// invariant documented in parallel.go — any shared mutable state between
// runs would eventually break these (and trip `go test -race`, see
// scripts/check.sh).
package experiment

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

// Replicated runs below reuse shortSchedule from experiment_test.go — a
// scaled-down Figure-3-style schedule that stays fast under -race.

func TestSaturationParallelMatchesSerial(t *testing.T) {
	cfg := SaturationConfig{
		Limits:      []float64{4000, 10000, 16000, 22000, 28000, 34000},
		OLAPClients: 8,
		Window:      600,
		Seed:        3,
	}
	cfg.Parallel = 1
	serial := RunSaturation(cfg)
	cfg.Parallel = 8
	parallel := RunSaturation(cfg)

	got, want := SaturationCSV(parallel), SaturationCSV(serial)
	if got != want {
		t.Fatalf("parallel sweep diverged from serial:\nserial:\n%s\nparallel:\n%s", want, got)
	}
	var a, b bytes.Buffer
	WriteSaturation(&a, serial)
	WriteSaturation(&b, parallel)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("rendered tables differ:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
}

func TestReplicatedParallelMatchesSerial(t *testing.T) {
	sched := shortSchedule()
	seeds := []uint64{1, 2, 3, 4}
	serial := RunReplicated(NoControl, sched, seeds, 1)
	parallel := RunReplicated(NoControl, sched, seeds, 8)

	classes := workload.PaperClasses()
	var a, b bytes.Buffer
	WriteReplication(&a, classes, []Replication{serial})
	WriteReplication(&b, classes, []Replication{parallel})
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("replicated output differs between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s",
			a.String(), b.String())
	}
}

func TestFig2ParallelMatchesSerial(t *testing.T) {
	cfg := Fig2Config{
		Pairs:  [][2]int{{10, 2}, {20, 4}},
		Limits: []float64{5000, 15000, 25000},
		Window: 600,
		Seed:   2,
	}
	cfg.Parallel = 1
	serial := RunFig2(cfg)
	cfg.Parallel = 6
	parallel := RunFig2(cfg)
	if got, want := Fig2CSV(parallel), Fig2CSV(serial); got != want {
		t.Fatalf("fig2 parallel sweep diverged:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

// TestTraceExportParallelMatchesSerial extends the isolation invariant to
// the observability layer: the JSONL trace and metrics exposition of each
// run in a sweep must come out byte-identical whether the sweep ran
// serially or on 8 workers. Each run owns its tracer, registry, and
// output buffer, so any divergence means shared mutable state leaked in.
func TestTraceExportParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("QS runs are slow under -race")
	}
	sched := shortSchedule()
	seeds := []uint64{1, 2, 3}
	export := func(parallel int) (traces, metrics [][]byte) {
		type artifacts struct{ trace, metrics []byte }
		outs := Map(parallel, seeds, func(seed uint64, _ int) artifacts {
			var tb, mb bytes.Buffer
			res := RunMixed(MixedConfig{
				Mode: QueryScheduler, Sched: sched, Seed: seed,
				Experiment: "determinism", Trace: &tb, Metrics: &mb,
			})
			if res.ExportErr != nil {
				t.Error(res.ExportErr)
			}
			return artifacts{tb.Bytes(), mb.Bytes()}
		})
		for _, o := range outs {
			traces = append(traces, o.trace)
			metrics = append(metrics, o.metrics)
		}
		return traces, metrics
	}
	serialT, serialM := export(1)
	parallelT, parallelM := export(8)
	for i := range seeds {
		if !bytes.Equal(serialT[i], parallelT[i]) {
			t.Errorf("seed %d: JSONL trace differs between -parallel 1 and -parallel 8", seeds[i])
		}
		if len(serialT[i]) == 0 || bytes.Count(serialT[i], []byte("\n")) < 2 {
			t.Errorf("seed %d: trace export suspiciously small (%d bytes)", seeds[i], len(serialT[i]))
		}
		if !bytes.Equal(serialM[i], parallelM[i]) {
			t.Errorf("seed %d: metrics exposition differs between -parallel 1 and -parallel 8", seeds[i])
		}
		if !bytes.Contains(serialM[i], []byte("sim_time_seconds")) {
			t.Errorf("seed %d: metrics exposition missing sim_time_seconds:\n%s", seeds[i], serialM[i])
		}
	}
}

func TestDetectionReplicatedParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("QS runs are slow under -race")
	}
	cfg := DefaultDetectionConfig()
	cfg.Sched = shortSchedule()
	cfg.MatchWindow = cfg.Sched.PeriodSeconds / 2
	seeds := []uint64{1, 2, 3, 4}
	serial := RunDetectionReplicated(cfg, seeds, 1)
	parallel := RunDetectionReplicated(cfg, seeds, 4)
	var a, b bytes.Buffer
	WriteDetection(&a, serial)
	WriteDetection(&b, parallel)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("detection aggregate differs:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
}
