package experiment

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/patroller"
	"repro/internal/workload"
)

// ckptTestConfig is a short Query Scheduler run with enough moving parts
// to exercise every snapshot section: faults (aborts, misestimation, a
// slowdown window) feed the injector and the retry policy, so checkpoint
// boundaries land with queries held, running, timed out, and awaiting
// retries.
func ckptTestConfig(dir string, every int) MixedConfig {
	s := workload.Schedule{PeriodSeconds: 300}
	for _, c := range [][3]int{{2, 2, 10}, {3, 1, 12}} {
		s.Clients = append(s.Clients, map[engine.ClassID]int{1: c[0], 2: c[1], 3: c[2]})
	}
	return MixedConfig{
		Mode:       QueryScheduler,
		Sched:      s,
		Seed:       3,
		Experiment: "checkpoint-test",
		Faults: &fault.Plan{
			Seed:        11,
			AbortRate:   map[engine.ClassID]float64{1: 0.1},
			Misestimate: map[engine.ClassID]float64{2: 2},
			Slowdowns:   []fault.Slowdown{{Window: fault.Window{Start: 200, End: 500}, Factor: 0.5}},
		},
		Retry:           &patroller.RetryPolicy{MaxAttempts: 2, Backoff: 30},
		CheckpointEvery: every,
		CheckpointDir:   dir,
	}
}

// refOutputs runs cfg with trace and metrics captured, returning the
// rendered tables, the metrics exposition, and the trace file bytes.
func refOutputs(t *testing.T, cfg MixedConfig, tracePath string) (tables string, metrics, trace []byte) {
	t.Helper()
	var mb bytes.Buffer
	res, err := runToFile(cfg, tracePath, &mb)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatal("uninterrupted run reported a crash")
	}
	tb, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	return mixedTables(res), mb.Bytes(), tb
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Checkpointing must not perturb the simulation: splitting the run at
// boundaries and serializing state are pure observations.
func TestCheckpointingIsBehaviorNeutral(t *testing.T) {
	dir := t.TempDir()
	plain := ckptTestConfig("", 0)
	plainTables, plainMetrics, plainTrace := refOutputs(t, plain, filepath.Join(dir, "plain.jsonl"))

	ckpt := ckptTestConfig(filepath.Join(dir, "ckpt"), 2)
	ckptTables, ckptMetrics, ckptTrace := refOutputs(t, ckpt, filepath.Join(dir, "ckpt.jsonl"))

	if plainTables != ckptTables {
		t.Error("checkpointing changed the period tables")
	}
	if !bytes.Equal(plainMetrics, ckptMetrics) {
		t.Error("checkpointing changed the metrics exposition")
	}
	if !bytes.Equal(plainTrace, ckptTrace) {
		t.Error("checkpointing changed the trace export")
	}
	if !HasCheckpoint(filepath.Join(dir, "ckpt")) {
		t.Error("checkpointed run left no checkpoint files")
	}
}

// checkpointIndices lists the boundary indices present in dir.
func checkpointIndices(t *testing.T, dir string) []int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d.bin", &n); err == nil {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		t.Fatal("no checkpoints written")
	}
	return out
}

// The tentpole property: restoring a snapshot from ANY control-tick
// boundary and running to completion reproduces the uninterrupted run's
// tables, metrics exposition, and trace file byte for byte — serially
// and under the parallel runner (checkpoint files are read-only shared
// state, so concurrent resumes must be race-clean).
func TestResumeAtEveryBoundaryIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	refTrace := filepath.Join(dir, "ref.jsonl")
	refTables, refMetrics, refTraceBytes := refOutputs(t, ckptTestConfig(ckptDir, 1), refTrace)
	indices := checkpointIndices(t, ckptDir)
	sort.Ints(indices)
	pars := []int{1, 8}
	if testing.Short() {
		// Race-enabled short runs sample the boundaries (first, middle,
		// last) under the parallel runner; the full serial + parallel
		// every-boundary sweep runs without -short.
		indices = []int{indices[0], indices[len(indices)/2], indices[len(indices)-1]}
		pars = []int{8}
	}

	resumeAt := func(idx int, _ int) error {
		tmp := filepath.Join(dir, fmt.Sprintf("resume-%02d.jsonl", idx))
		copyFile(t, refTrace, tmp)
		var mb bytes.Buffer
		res, err := ResumeMixed(ResumeOptions{
			Dir:       ckptDir,
			Index:     idx,
			TracePath: tmp,
			Metrics:   &mb,
		})
		if err != nil {
			return fmt.Errorf("boundary %d: %w", idx, err)
		}
		if res.ExportErr != nil {
			return fmt.Errorf("boundary %d: export: %w", idx, res.ExportErr)
		}
		if got := mixedTables(res); got != refTables {
			return fmt.Errorf("boundary %d: period tables diverged", idx)
		}
		if !bytes.Equal(mb.Bytes(), refMetrics) {
			return fmt.Errorf("boundary %d: metrics exposition diverged", idx)
		}
		tb, err := os.ReadFile(tmp)
		if err != nil {
			return err
		}
		if !bytes.Equal(tb, refTraceBytes) {
			return fmt.Errorf("boundary %d: trace file diverged", idx)
		}
		return nil
	}

	for _, par := range pars {
		for _, err := range Map(par, indices, resumeAt) {
			if err != nil {
				t.Errorf("parallel=%d: %v", par, err)
			}
		}
	}
}

// A torn or corrupt newest checkpoint must not sink the resume: Latest
// warns, skips it, and falls back to the previous one — and the resumed
// run still reproduces the reference outputs.
func TestResumeFallsBackPastCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	refTrace := filepath.Join(dir, "ref.jsonl")
	refTables, refMetrics, refTraceBytes := refOutputs(t, ckptTestConfig(ckptDir, 1), refTrace)

	indices := checkpointIndices(t, ckptDir)
	newest := indices[0]
	for _, n := range indices {
		if n > newest {
			newest = n
		}
	}
	// Flip a payload byte in the newest file (checksum now fails) to
	// simulate on-disk corruption after a hard crash.
	path := filepath.Join(ckptDir, checkpoint.FileName(newest))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	runTrace := filepath.Join(dir, "resume.jsonl")
	copyFile(t, refTrace, runTrace)
	var mb, warn bytes.Buffer
	res, err := ResumeMixed(ResumeOptions{
		Dir:       ckptDir,
		TracePath: runTrace,
		Metrics:   &mb,
		Warn:      &warn,
	})
	if err != nil {
		t.Fatalf("resume did not fall back past the corrupt checkpoint: %v", err)
	}
	if !strings.Contains(warn.String(), "skipping") {
		t.Errorf("no corruption warning emitted: %q", warn.String())
	}
	if got := mixedTables(res); got != refTables {
		t.Error("fallback resume: period tables diverged")
	}
	if !bytes.Equal(mb.Bytes(), refMetrics) {
		t.Error("fallback resume: metrics exposition diverged")
	}
	tb, err := os.ReadFile(runTrace)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tb, refTraceBytes) {
		t.Error("fallback resume: trace file diverged")
	}
}

// The same fallback, but with the crash shape a torn write actually
// leaves: the newest file truncated mid-payload rather than bit-flipped.
// The resume must warn, fall back to the older valid snapshot, and still
// reproduce the uninterrupted run byte for byte.
func TestResumeFallsBackPastTruncatedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	refTrace := filepath.Join(dir, "ref.jsonl")
	refTables, refMetrics, refTraceBytes := refOutputs(t, ckptTestConfig(ckptDir, 1), refTrace)

	indices := checkpointIndices(t, ckptDir)
	newest := indices[0]
	for _, n := range indices {
		if n > newest {
			newest = n
		}
	}
	path := filepath.Join(ckptDir, checkpoint.FileName(newest))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	runTrace := filepath.Join(dir, "resume.jsonl")
	copyFile(t, refTrace, runTrace)
	var mb, warn bytes.Buffer
	res, err := ResumeMixed(ResumeOptions{
		Dir:       ckptDir,
		TracePath: runTrace,
		Metrics:   &mb,
		Warn:      &warn,
	})
	if err != nil {
		t.Fatalf("resume did not fall back past the truncated checkpoint: %v", err)
	}
	if !strings.Contains(warn.String(), "skipping") {
		t.Errorf("no truncation warning emitted: %q", warn.String())
	}
	if got := mixedTables(res); got != refTables {
		t.Error("fallback resume: period tables diverged")
	}
	if !bytes.Equal(mb.Bytes(), refMetrics) {
		t.Error("fallback resume: metrics exposition diverged")
	}
	tb, err := os.ReadFile(runTrace)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tb, refTraceBytes) {
		t.Error("fallback resume: trace file diverged")
	}
}

// Resume output wiring must match the checkpointed run exactly; silent
// mismatches would produce diverging exports.
func TestResumeRejectsMismatchedOutputs(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	refTrace := filepath.Join(dir, "ref.jsonl")
	refOutputs(t, ckptTestConfig(ckptDir, 1), refTrace)

	if _, err := ResumeMixed(ResumeOptions{Dir: ckptDir, Metrics: io.Discard}); err == nil {
		t.Error("missing TracePath accepted for a run that exported a trace")
	}
	if _, err := ResumeMixed(ResumeOptions{Dir: ckptDir, TracePath: refTrace}); err == nil {
		t.Error("missing Metrics accepted for a run that exported metrics")
	}
	if _, err := ResumeMixed(ResumeOptions{Dir: t.TempDir(), TracePath: refTrace, Metrics: io.Discard}); err == nil {
		t.Error("empty checkpoint directory accepted")
	}
}

// E12 end to end: kill the run at several virtual times via the fault
// plan's crash, resume from the newest surviving checkpoint, and demand
// byte-identity with the never-interrupted reference — serially and with
// cells running on the worker pool.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery matrix is slow; run without -short")
	}
	for _, par := range []int{1, 8} {
		cfg := DefaultCrashRecoveryConfig()
		cfg.Parallel = par
		for _, cell := range RunCrashRecovery(cfg) {
			if !cell.Recovered() {
				t.Errorf("parallel=%d crash at t=%v (resumed from boundary %d): table=%v metrics=%v trace=%v err=%v",
					par, cell.CrashTime, cell.ResumedFrom,
					cell.TableMatch, cell.MetricsMatch, cell.TraceMatch, cell.Err)
			}
		}
	}
}
