package experiment

import (
	"bytes"
	"testing"
)

// TestFaultMatrixParallelMatchesSerial extends the per-run isolation
// invariant to the fault layer: every cell owns its rig, injector, and
// RNG stream, so the matrix must come out byte-identical whether the
// cells ran serially or on 8 workers (and clean under -race).
func TestFaultMatrixParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("fault matrix is too slow for -short")
	}
	cfg := QuickFaultMatrixConfig()
	cfg.Parallel = 1
	serial := RunFaultMatrix(cfg)
	cfg.Parallel = 8
	parallel := RunFaultMatrix(cfg)

	if got, want := FaultMatrixCSV(parallel), FaultMatrixCSV(serial); got != want {
		t.Fatalf("fault matrix diverged between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s", want, got)
	}
	var a, b bytes.Buffer
	WriteFaultMatrix(&a, serial)
	WriteFaultMatrix(&b, parallel)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("rendered tables differ:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
}

// TestFaultMatrixMitigationHelpsUnderAbortStorm is the PR's acceptance
// criterion in miniature: under the combined abort+misestimation
// scenario, the mitigation stack (retry/backoff + hold-plan degradation +
// last-fit fallback) must beat the unmitigated run on OLAP SLO adherence
// AND OLTP mean response time, and the fault-path counters must show the
// machinery actually engaged.
func TestFaultMatrixMitigationHelpsUnderAbortStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("fault matrix is too slow for -short")
	}
	cfg := QuickFaultMatrixConfig()
	cells := RunFaultMatrix(cfg)

	find := func(name string, mitigated bool) *FaultCell {
		for i := range cells {
			if cells[i].Scenario == name && cells[i].Mitigated == mitigated {
				return &cells[i]
			}
		}
		t.Fatalf("cell %s/mitigated=%t missing", name, mitigated)
		return nil
	}
	off := find("abort+misestimate", false)
	on := find("abort+misestimate", true)

	if off.Injected.Aborts == 0 || on.Retried == 0 {
		t.Fatalf("scenario did not engage: off=%+v on.Retried=%d", off.Injected, on.Retried)
	}
	if off.Retried != 0 || off.TimedOut != 0 {
		t.Fatalf("unmitigated cell ran retries: %+v", off)
	}
	if on.OLAPSatisfaction <= off.OLAPSatisfaction {
		t.Fatalf("mitigated OLAP satisfaction %.3f did not beat unmitigated %.3f",
			on.OLAPSatisfaction, off.OLAPSatisfaction)
	}
	if on.OLTPMeanRT >= off.OLTPMeanRT {
		t.Fatalf("mitigated OLTP mean RT %.4fs did not beat unmitigated %.4fs",
			on.OLTPMeanRT, off.OLTPMeanRT)
	}
}
