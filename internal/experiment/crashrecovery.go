// E12: crash-recovery validation. Each cell kills one mixed run at a
// chosen virtual time via a fault-plan crash, resumes it from the newest
// surviving checkpoint, and compares the finished run's period tables,
// metrics exposition, and trace JSONL byte-for-byte against a reference
// run that was never interrupted (same plan with the crash removed).
package experiment

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/workload"
)

// CrashRecoveryConfig tunes E12.
type CrashRecoveryConfig struct {
	Mode  Mode
	Sched workload.Schedule
	Seed  uint64
	// Faults is the base fault plan both arms run under (its Crash field
	// is overwritten per arm: the crash time in the interrupted arm,
	// zero in the reference arm).
	Faults fault.Plan
	// CrashTimes are the virtual times the interrupted arm dies at.
	CrashTimes []float64
	// Every is the checkpoint cadence in control boundaries.
	Every int
	// Dir is the scratch directory ("" = a fresh temp dir).
	Dir string
	// Parallel is the cell worker count: 0 = GOMAXPROCS, 1 = serial.
	Parallel int
}

// DefaultCrashRecoveryConfig crashes a Query Scheduler run over a short
// six-period mixed schedule early, mid, and late, with a slowdown window
// and an abort rate active so real fault state crosses the checkpoints.
func DefaultCrashRecoveryConfig() CrashRecoveryConfig {
	s := workload.Schedule{PeriodSeconds: 600}
	counts := [][3]int{
		{2, 3, 15}, {4, 2, 20}, {3, 4, 25},
		{2, 3, 15}, {3, 4, 20}, {2, 6, 25},
	}
	for _, c := range counts {
		s.Clients = append(s.Clients, map[engine.ClassID]int{1: c[0], 2: c[1], 3: c[2]})
	}
	return CrashRecoveryConfig{
		Mode:  QueryScheduler,
		Sched: s,
		Seed:  1,
		Faults: fault.Plan{
			Seed:      7,
			AbortRate: map[engine.ClassID]float64{1: 0.05},
			Slowdowns: []fault.Slowdown{{Window: fault.Window{Start: 1000, End: 1600}, Factor: 0.6}},
		},
		CrashTimes: []float64{700, 1800, 3300},
		Every:      5,
	}
}

// CrashRecoveryCell is one crash time's outcome.
type CrashRecoveryCell struct {
	CrashTime   float64
	ResumedFrom int // boundary index of the checkpoint resumed from
	// TableMatch/MetricsMatch/TraceMatch report byte-identity of the
	// resumed run's period tables, metrics exposition, and trace JSONL
	// against the uninterrupted reference.
	TableMatch   bool
	MetricsMatch bool
	TraceMatch   bool
	Err          error
}

// Recovered reports full byte-identity with no errors.
func (c CrashRecoveryCell) Recovered() bool {
	return c.Err == nil && c.TableMatch && c.MetricsMatch && c.TraceMatch
}

// mixedTables renders the result tables the recovery check compares.
func mixedTables(res *MixedResult) string {
	var sb strings.Builder
	WriteMixed(&sb, res)
	if res.CostLimits != nil {
		WriteCostLimits(&sb, res)
	}
	return sb.String()
}

// RunCrashRecovery runs one cell per crash time. Cells are independent
// runs in private scratch directories, so they parallelize like any
// other sweep.
func RunCrashRecovery(cfg CrashRecoveryConfig) []CrashRecoveryCell {
	root := cfg.Dir
	if root == "" {
		d, err := os.MkdirTemp("", "crashrecovery")
		if err != nil {
			panic(err)
		}
		root = d
		defer os.RemoveAll(d)
	}
	return Map(cfg.Parallel, cfg.CrashTimes, func(crashAt float64, i int) CrashRecoveryCell {
		cell := CrashRecoveryCell{CrashTime: crashAt}
		cell.Err = runCrashRecoveryCell(cfg, crashAt, filepath.Join(root, fmt.Sprintf("crash-%02d", i)), &cell)
		return cell
	})
}

// runCrashRecoveryCell executes reference, crash, and resume for one
// crash time, filling in the cell's comparison flags.
func runCrashRecoveryCell(cfg CrashRecoveryConfig, crashAt float64, dir string, cell *CrashRecoveryCell) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := MixedConfig{
		Mode:       cfg.Mode,
		Sched:      cfg.Sched,
		Seed:       cfg.Seed,
		Experiment: "crashrecovery",
	}

	// Reference arm: same plan, crash removed, no interruption.
	refPlan := cfg.Faults
	refPlan.Crash = 0
	refTrace := filepath.Join(dir, "ref.jsonl")
	var refMetrics bytes.Buffer
	refCfg := base
	refCfg.Faults = &refPlan
	refRes, err := runToFile(refCfg, refTrace, &refMetrics)
	if err != nil {
		return err
	}
	if refRes.Crashed {
		return fmt.Errorf("experiment: reference arm crashed")
	}

	// Crash arm: same run, checkpointing on, killed at crashAt.
	crashPlan := cfg.Faults
	crashPlan.Crash = crashAt
	runTrace := filepath.Join(dir, "run.jsonl")
	ckptDir := filepath.Join(dir, "ckpt")
	crashCfg := base
	crashCfg.Faults = &crashPlan
	crashCfg.CheckpointEvery = cfg.Every
	crashCfg.CheckpointDir = ckptDir
	crashRes, err := runToFile(crashCfg, runTrace, io.Discard)
	if err != nil {
		return err
	}
	if !crashRes.Crashed {
		return fmt.Errorf("experiment: crash at t=%v never fired", crashAt)
	}

	// Resume from the newest checkpoint that survived.
	snap := new(runSnapshot)
	idx, ok, err := checkpoint.Latest(ckptDir, snap, io.Discard)
	if err != nil || !ok {
		return fmt.Errorf("experiment: no checkpoint survived the crash at t=%v: %v", crashAt, err)
	}
	cell.ResumedFrom = idx
	var resumedMetrics bytes.Buffer
	resumedRes, err := ResumeMixed(ResumeOptions{
		Dir:       ckptDir,
		TracePath: runTrace,
		Metrics:   &resumedMetrics,
	})
	if err != nil {
		return err
	}
	if resumedRes.Crashed {
		return fmt.Errorf("experiment: resumed run crashed again")
	}
	if resumedRes.ExportErr != nil {
		return resumedRes.ExportErr
	}

	cell.TableMatch = mixedTables(resumedRes) == mixedTables(refRes)
	cell.MetricsMatch = bytes.Equal(resumedMetrics.Bytes(), refMetrics.Bytes())
	refBytes, err := os.ReadFile(refTrace)
	if err != nil {
		return err
	}
	runBytes, err := os.ReadFile(runTrace)
	if err != nil {
		return err
	}
	cell.TraceMatch = bytes.Equal(refBytes, runBytes)
	return nil
}

// runToFile runs one mixed config with its trace streamed (buffered) to
// path and metrics to mw, flushing and closing the file afterwards. A
// crashed run's partial trace is flushed too — the resume path truncates
// it back to the checkpointed offset regardless of where the interrupted
// process got to.
func runToFile(cfg MixedConfig, tracePath string, mw io.Writer) (*MixedResult, error) {
	f, err := os.Create(tracePath)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	cfg.Trace = bw
	cfg.Metrics = mw
	res := RunMixed(cfg)
	if err := bw.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if res.ExportErr != nil && !res.Crashed {
		return nil, res.ExportErr
	}
	return res, nil
}

// WriteCrashRecovery tabulates E12: one row per crash time, with the
// checkpoint boundary the run resumed from and the three byte-identity
// verdicts against the uninterrupted reference.
func WriteCrashRecovery(w io.Writer, cells []CrashRecoveryCell) {
	fmt.Fprintln(w, "Crash recovery: kill at t, resume from newest checkpoint, compare to uninterrupted run")
	fmt.Fprintf(w, "%10s %12s %8s %9s %7s %s\n",
		"crash(s)", "resumed-from", "tables", "metrics", "trace", "error")
	for _, c := range cells {
		errStr := ""
		if c.Err != nil {
			errStr = c.Err.Error()
		}
		fmt.Fprintf(w, "%10.0f %12d %8t %9t %7t %s\n",
			c.CrashTime, c.ResumedFrom, c.TableMatch, c.MetricsMatch, c.TraceMatch, errStr)
	}
}

// CrashRecoveryCSV renders the cells as CSV.
func CrashRecoveryCSV(cells []CrashRecoveryCell) string {
	out := "crash_seconds,resumed_from_boundary,tables_match,metrics_match,trace_match,error\n"
	for _, c := range cells {
		errStr := ""
		if c.Err != nil {
			errStr = c.Err.Error()
		}
		out += fmt.Sprintf("%.6g,%d,%t,%t,%t,%s\n",
			c.CrashTime, c.ResumedFrom, c.TableMatch, c.MetricsMatch, c.TraceMatch, errStr)
	}
	return out
}

// HasCheckpoint reports whether dir contains at least one readable
// checkpoint — how a resuming caller decides between ResumeMixed and a
// fresh run.
func HasCheckpoint(dir string) bool {
	snap := new(runSnapshot)
	_, ok, err := checkpoint.Latest(dir, snap, io.Discard)
	return err == nil && ok
}
