// E15: the fleet failover experiment. Three equal backends serve a
// mixed workload sized so that three boxes meet every goal but two
// cannot; one backend is crashed mid-run and never recovers. Three arms
// separate the mechanisms:
//
//   - baseline: no fault — the attainment ceiling.
//   - failover: the crash with mitigation on. The router evacuates and
//     re-dispatches the dead backend's queries, the planner moves its
//     whole budget to the survivors, and migration-before-shedding
//     drains the binding class off an infeasible survivor. The
//     highest-importance class should hold near the baseline.
//   - no-mitigation: the same crash with DisableFleetMitigation. The
//     engine stalls but the router keeps routing into the black hole
//     and the planner keeps reserving the dead backend's budget share,
//     so the survivors run half the fleet's demand on a third of its
//     budget — the critical class visibly collapses.
//
// The headline metric is delivered attainment: of every critical-class
// query submitted during the measurement window, the fraction that
// completed in a period where the class met its goal. Queries swallowed
// by the dead backend (still pending at run end) count as misses, so a
// black-holed closed loop cannot hide behind the response times of the
// queries that escaped it.
package experiment

import (
	"fmt"
	"io"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/workload"
)

// FailoverConfig tunes the E15 run.
type FailoverConfig struct {
	Seed uint64
	// Quick shrinks the schedule to CI-smoke size.
	Quick bool
	// Trace/Metrics/Decisions attach observability to the failover arm
	// only (the arm the exports are about; the other two arms are
	// controls).
	Trace, Metrics, Decisions io.Writer
	// CheckpointEvery/CheckpointDir checkpoint the failover arm.
	CheckpointEvery int
	CheckpointDir   string
}

// FailoverClasses returns the E15 roster: a sheddable batch class, the
// critical OLAP class carrying the top importance, and an OLTP class in
// between. The solver's importance ordering is what the mitigation arm
// is supposed to protect.
func FailoverClasses() []*workload.Class {
	return []*workload.Class{
		{ID: 1, Name: "Batch", Kind: workload.OLAP, Goal: workload.Goal{Metric: workload.Velocity, Target: 0.30}, Importance: 1},
		{ID: 2, Name: "Critical", Kind: workload.OLAP, Goal: workload.Goal{Metric: workload.Velocity, Target: 0.40}, Importance: 3},
		{ID: 3, Name: "OLTP", Kind: workload.OLTP, Goal: workload.Goal{Metric: workload.AvgResponseTime, Target: 0.25}, Importance: 2},
	}
}

// FailoverBackends returns the E15 roster: three paper-default
// backends, with backend 2 — the one the fault plan kills — carrying a
// routing affinity for the critical class. The affinity concentrates
// the class the fleet most needs to protect on the backend about to
// die, which is exactly the hard case: the mitigation arm must
// evacuate and re-home those clients, while the no-mitigation arm
// black-holes them.
func FailoverBackends() []backend.Spec {
	specs := backend.DefaultSpecs(3)
	specs[1].Affinity = map[engine.ClassID]float64{2: 2}
	return specs
}

// failoverShape is the schedule/crash geometry of one E15 variant.
type failoverShape struct {
	warmup, measure float64
	crashAt         float64
	clients         map[engine.ClassID]int
}

func failoverShapeFor(quick bool) failoverShape {
	if quick {
		return failoverShape{
			warmup: 300, measure: 900, crashAt: 450,
			clients: map[engine.ClassID]int{1: 8, 2: 6, 3: 24},
		}
	}
	return failoverShape{
		warmup: 600, measure: 3600, crashAt: 1200,
		clients: map[engine.ClassID]int{1: 12, 2: 8, 3: 36},
	}
}

// FailoverPlan returns the E15 fault plan: backend 2 crashes at crashAt
// and never recovers.
func FailoverPlan(seed uint64, quick bool) fault.Plan {
	return fault.Plan{
		Seed:           seed,
		BackendCrashes: []fault.BackendCrash{{Backend: 2, At: failoverShapeFor(quick).crashAt}},
	}
}

// FailoverMixedConfig builds one E15 arm. plan nil is the baseline;
// mitigationOff selects the control arm.
func FailoverMixedConfig(cfg FailoverConfig, plan *fault.Plan, mitigationOff bool) MixedConfig {
	shape := failoverShapeFor(cfg.Quick)
	// A three-backend fleet gets double the single-engine budget: the
	// point of E15 is capacity loss, so the healthy fleet must start
	// comfortable — every goal met — for the crash to be what breaks it.
	qc := core.DefaultConfig()
	qc.SystemCostLimit = 2 * SystemCostLimit
	return MixedConfig{
		Mode:                   QueryScheduler,
		Sched:                  ConstantSchedule(shape.warmup, shape.measure, shape.clients),
		Classes:                FailoverClasses(),
		Seed:                   cfg.Seed,
		QS:                     &qc,
		Experiment:             "failover",
		Backends:               FailoverBackends(),
		Faults:                 plan,
		DisableFleetMitigation: mitigationOff,
	}
}

// FailoverArm is one of the three runs plus its headline number.
type FailoverArm struct {
	Name   string
	Result *FleetResult
	// Attainment is the critical class's delivered attainment over the
	// measurement periods.
	Attainment float64
	// Completed/Pending are the critical class's measurement-window
	// completions and the queries still stuck at run end.
	Completed int
	Pending   int
}

// FailoverResult is the three-arm comparison.
type FailoverResult struct {
	Classes  []*workload.Class
	Critical *workload.Class
	CrashAt  float64
	Baseline FailoverArm
	Failover FailoverArm
	NoMitig  FailoverArm
}

// Retention returns an arm's attainment relative to the baseline's
// (1 when the baseline itself delivered nothing).
func (r *FailoverResult) Retention(arm FailoverArm) float64 {
	if r.Baseline.Attainment <= 0 {
		return 1
	}
	return arm.Attainment / r.Baseline.Attainment
}

// criticalClass picks the highest-importance class (lowest ID on ties).
func criticalClass(classes []*workload.Class) *workload.Class {
	var best *workload.Class
	for _, c := range classes {
		if best == nil || c.Importance > best.Importance {
			best = c
		}
	}
	return best
}

// deliveredAttainment computes the E15 headline metric for one class:
// goal-met completions over all completions plus end-of-run pending,
// measurement periods only. A query that never came back (black-holed
// on a dead backend) is a miss, not a statistical no-show.
func deliveredAttainment(res *MixedResult, class engine.ClassID, fromPeriod int) (att float64, done, pending int) {
	ci := -1
	for i, c := range res.Classes {
		if c.ID == class {
			ci = i
		}
	}
	if ci < 0 {
		return 0, 0, 0
	}
	met := 0
	for p := fromPeriod; p < res.Periods; p++ {
		n := res.Completed[ci][p]
		done += n
		if res.GoalMet[ci][p] {
			met += n
		}
	}
	pending = res.Pending[ci][res.Periods-1]
	if done+pending == 0 {
		return 0, 0, 0
	}
	return float64(met) / float64(done+pending), done, pending
}

// RunFailover executes the three E15 arms.
func RunFailover(cfg FailoverConfig) *FailoverResult {
	shape := failoverShapeFor(cfg.Quick)
	classes := FailoverClasses()
	critical := criticalClass(classes)
	from := MeasureStartPeriod(shape.warmup, shape.measure)
	plan := FailoverPlan(cfg.Seed, cfg.Quick)

	arm := func(name string, p *fault.Plan, off, instrumented bool) FailoverArm {
		mc := FailoverMixedConfig(cfg, p, off)
		if instrumented {
			mc.Trace = cfg.Trace
			mc.Metrics = cfg.Metrics
			mc.Decisions = cfg.Decisions
			mc.CheckpointEvery = cfg.CheckpointEvery
			mc.CheckpointDir = cfg.CheckpointDir
		}
		res := RunFleet(mc)
		a := FailoverArm{Name: name, Result: res}
		a.Attainment, a.Completed, a.Pending = deliveredAttainment(res.MixedResult, critical.ID, from)
		return a
	}

	return &FailoverResult{
		Classes:  classes,
		Critical: critical,
		CrashAt:  shape.crashAt,
		Baseline: arm("baseline", nil, false, false),
		Failover: arm("failover", &plan, false, true),
		NoMitig:  arm("no-mitigation", &plan, true, false),
	}
}

// WriteFailover prints the E15 verdict table.
func WriteFailover(w io.Writer, r *FailoverResult) {
	fmt.Fprintf(w, "Fleet failover (3 backends, backend 2 crashes at t=%.0fs, never recovers):\n", r.CrashAt)
	fmt.Fprintf(w, "critical class: %s (importance %d, %s goal)\n",
		r.Critical.Name, r.Critical.Importance, r.Critical.Goal.Metric)
	fmt.Fprintf(w, "%-14s %12s %10s %8s %10s\n",
		"arm", "attainment", "completed", "pending", "retention")
	for _, arm := range []FailoverArm{r.Baseline, r.Failover, r.NoMitig} {
		fmt.Fprintf(w, "%-14s %11.1f%% %10d %8d %9.1f%%\n",
			arm.Name, 100*arm.Attainment, arm.Completed, arm.Pending, 100*r.Retention(arm))
	}
	fmt.Fprintf(w, "per-backend routed queries (failover arm):")
	for i, n := range r.Failover.Result.Routed {
		fmt.Fprintf(w, " b%d=%d", i+1, n)
	}
	fmt.Fprintln(w)
}

// FailoverCSV renders the verdict table as CSV.
func FailoverCSV(r *FailoverResult) string {
	s := "arm,attainment,completed,pending,retention\n"
	for _, arm := range []FailoverArm{r.Baseline, r.Failover, r.NoMitig} {
		s += fmt.Sprintf("%s,%.4f,%d,%d,%.4f\n",
			arm.Name, arm.Attainment, arm.Completed, arm.Pending, r.Retention(arm))
	}
	return s
}
