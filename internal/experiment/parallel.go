// Parallel experiment execution: a bounded worker pool that fans
// independent simulation runs out across GOMAXPROCS goroutines with
// deterministic, input-ordered result collection.
//
// # Isolation invariant
//
// Parallel safety rests on per-run isolation: every run constructs its own
// Rig — Clock, Engine, Pool, rng.Source, Collector, controllers — from its
// own seed, and nothing in this repository keeps lazily-built mutable
// package-level state (catalogs and template sets are rebuilt per Rig; the
// only package-level variable in the tree is a constant byte table in
// internal/report). A worker therefore never shares mutable state with
// another worker, and a run's results depend only on its inputs, never on
// which goroutine executed it or in what order runs finished. New code
// must preserve this: no package-level caches without a mutex AND a
// determinism argument. The invariant is enforced by the determinism tests
// in determinism_test.go and exercised under `go test -race` (see
// scripts/check.sh).
package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n <= 0 selects GOMAXPROCS (use all
// cores), any positive n is taken literally (1 = serial, today's
// single-core behaviour).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// RunAll invokes fn(0..n-1), fanning calls across at most Workers(workers)
// goroutines. It returns when every call has finished. With workers == 1
// (or n < 2) the calls run inline on the caller's goroutine in index
// order — bit-for-bit the pre-parallel behaviour. A panic in any fn is
// re-raised on the caller's goroutine after the pool drains.
func RunAll(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs fn over items on the RunAll pool and collects the results in
// input order, so output is independent of scheduling. fn also receives
// the item's index for seed derivation or labelling.
func Map[I, O any](workers int, items []I, fn func(item I, idx int) O) []O {
	out := make([]O, len(items))
	RunAll(workers, len(items), func(i int) { out[i] = fn(items[i], i) })
	return out
}
