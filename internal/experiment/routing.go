// E14: the fleet routing experiment. Three backends — two at paper
// capacity and one at half capacity — serve the paper's three service
// classes behind the routing tier. The router's load scorer should
// steer queries away from the slow box as its utilization climbs, and
// the hierarchical planner should hand it a correspondingly smaller
// slice of the global cost budget, while the fleet-global period tables
// stay comparable to a single-engine run.
package experiment

import (
	"fmt"
	"io"

	"repro/internal/backend"
	"repro/internal/engine"
	"repro/internal/workload"
)

// RoutingBackends returns the E14 roster: two paper-default backends
// and one at half CPU/IO capacity.
func RoutingBackends() []backend.Spec {
	return []backend.Spec{
		{Name: "fast-1"},
		{Name: "fast-2"},
		{Name: "slow", CPUCapacity: 1, IOCapacity: 7},
	}
}

// RoutingMixedConfig builds the E14 run: a constant heavy mix (one
// warm-up period, three measured) on the heterogeneous fleet.
func RoutingMixedConfig() MixedConfig {
	return MixedConfig{
		Mode: QueryScheduler,
		Sched: ConstantSchedule(600, 1800, map[engine.ClassID]int{
			1: 8, 2: 8, 3: 40,
		}),
		Classes:    workload.PaperClasses(),
		Seed:       1,
		Experiment: "routing",
		Backends:   RoutingBackends(),
	}
}

// WriteRouting prints the E14 verdict table: where the router sent the
// work, what each backend completed, and how the planner split the
// budget.
func WriteRouting(w io.Writer, res *FleetResult) {
	var totalRouted int64
	for _, n := range res.Routed {
		totalRouted += n
	}
	fmt.Fprintf(w, "Fleet routing (%d backends, %d queries routed):\n", len(res.Specs), totalRouted)
	var finalLimits []float64
	if len(res.Plans) > 0 {
		finalLimits = res.Plans[len(res.Plans)-1].Limits
	}
	fmt.Fprintf(w, "%10s %6s %6s %10s %8s %10s %12s\n",
		"backend", "cpu", "io", "routed", "share", "completed", "final-limit")
	for i, spec := range res.Specs {
		ec := spec.EngineConfig()
		share := 0.0
		if totalRouted > 0 {
			share = float64(res.Routed[i]) / float64(totalRouted)
		}
		completed := 0
		for _, n := range res.BackendCompleted[i] {
			completed += n
		}
		limit := "-"
		if i < len(finalLimits) {
			limit = fmt.Sprintf("%.0f", finalLimits[i])
		}
		fmt.Fprintf(w, "%10s %6g %6g %10d %7.0f%% %10d %12s\n",
			spec.Name, ec.CPUCapacity, ec.IOCapacity, res.Routed[i], 100*share, completed, limit)
	}
	// Final per-backend attainment, from each backend's own control loop.
	for i, hist := range res.Histories {
		var att map[engine.ClassID]float64
		for _, rec := range hist {
			if rec.Attainment != nil {
				att = rec.Attainment
			}
		}
		if att == nil {
			continue
		}
		fmt.Fprintf(w, "  %s attainment:", res.Specs[i].Name)
		for _, c := range res.Classes {
			fmt.Fprintf(w, " %s=%.2f", c.Name, att[c.ID])
		}
		fmt.Fprintln(w)
	}
}
