// Autonomic calibration of the system cost limit. The paper determines
// the limit "experimentally by plotting the curve of the throughput
// versus the system cost limit" — a human reading a chart. An autonomic
// DBMS should do the reading itself; FindSystemCostLimit automates the
// knee selection from the measured curve.
package experiment

// Calibration is the outcome of automatic system-cost-limit selection.
type Calibration struct {
	// Points is the measured throughput curve.
	Points []SaturationPoint
	// PeakThroughput is the highest measured queries/hour.
	PeakThroughput float64
	// PlateauLow / PlateauHigh bound the healthy region: limits whose
	// throughput is within Tolerance of the peak.
	PlateauLow, PlateauHigh float64
	// Recommended is the selected operating point: the midpoint of the
	// plateau, rounded to the sweep's granularity, biased low (staying
	// under-saturated is the stated objective).
	Recommended float64
}

// calibrationTolerance is the fraction of peak throughput a limit may
// lose and still count as healthy.
const calibrationTolerance = 0.05

// FindSystemCostLimit runs the saturation sweep and picks the operating
// point automatically.
func FindSystemCostLimit(cfg SaturationConfig) Calibration {
	points := RunSaturation(cfg)
	return CalibrateFromCurve(points)
}

// CalibrateFromCurve selects the operating point from an existing curve
// (exposed separately so tests can feed synthetic curves).
func CalibrateFromCurve(points []SaturationPoint) Calibration {
	cal := Calibration{Points: points}
	if len(points) == 0 {
		return cal
	}
	for _, p := range points {
		if p.QueriesPerHour > cal.PeakThroughput {
			cal.PeakThroughput = p.QueriesPerHour
		}
	}
	threshold := (1 - calibrationTolerance) * cal.PeakThroughput
	for _, p := range points {
		if p.QueriesPerHour < threshold {
			continue
		}
		if cal.PlateauLow == 0 {
			cal.PlateauLow = p.Limit
		}
		cal.PlateauHigh = p.Limit
	}
	if cal.PlateauLow == 0 {
		// Degenerate curve: recommend the best single point.
		for _, p := range points {
			// >= rather than == so the argmax is found without an exact
			// float comparison (PeakThroughput was copied from a point).
			if p.QueriesPerHour >= cal.PeakThroughput {
				cal.Recommended = p.Limit
				cal.PlateauLow, cal.PlateauHigh = p.Limit, p.Limit
				break
			}
		}
		return cal
	}
	// Bias toward the low-middle of the plateau: maximal headroom before
	// the saturation overhead region while keeping full throughput.
	cal.Recommended = cal.PlateauLow + (cal.PlateauHigh-cal.PlateauLow)*0.4
	// Snap to the sweep granularity for a reportable number.
	if len(points) > 1 {
		step := points[1].Limit - points[0].Limit
		if step > 0 {
			cal.Recommended = float64(int(cal.Recommended/step+0.5)) * step
		}
	}
	return cal
}
