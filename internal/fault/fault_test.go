package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/simclock"
)

func newBench() (*engine.Engine, *simclock.Clock) {
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 100, IOCapacity: 100}, clock)
	return eng, clock
}

func cpuQuery(class engine.ClassID, work float64) *engine.Query {
	return &engine.Query{Class: class, Cost: work * 10, Demand: engine.Demand{Work: work, CPURate: 1}}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := map[string]Plan{
		"abort rate > 1":    {AbortRate: map[engine.ClassID]float64{1: 1.5}},
		"negative rate":     {AbortRate: map[engine.ClassID]float64{1: -0.1}},
		"inverted window":   {AbortBursts: []Burst{{Window: Window{Start: 10, End: 5}, Rate: 0.5}}},
		"empty window":      {SnapshotOutages: []Window{{Start: 5, End: 5}}},
		"burst rate":        {AbortBursts: []Burst{{Window: Window{Start: 0, End: 1}, Rate: 2}}},
		"misestimate inf":   {Misestimate: map[engine.ClassID]float64{1: -1}},
		"slowdown factor":   {Slowdowns: []Slowdown{{Window: Window{Start: 0, End: 1}, Factor: 1}}},
		"slowdown overlap":  {Slowdowns: []Slowdown{{Window: Window{Start: 0, End: 10}, Factor: 0.5}, {Window: Window{Start: 5, End: 15}, Factor: 0.5}}},
		"snapshot drop > 1": {SnapshotDrop: 1.5},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
	if !(Plan{}).Empty() {
		t.Error("zero plan not Empty")
	}
	if (Plan{SnapshotDrop: 0.1}).Empty() {
		t.Error("snapshot-drop plan reported Empty")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := `{
		"seed": 7,
		"abort_rate": {"1": 0.15, "2": 0.2},
		"abort_bursts": [{"start": 100, "end": 200, "class": 2, "rate": 0.8}],
		"misestimate": {"1": 3},
		"slowdowns": [{"start": 300, "end": 400, "factor": 0.25}],
		"snapshot_drop": 0.5,
		"snapshot_outages": [{"start": 500, "end": 600}],
		"harvest_outages": [{"start": 500, "end": 600}]
	}`
	p, err := ParseSpec(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.AbortRate[1] != 0.15 || p.AbortRate[2] != 0.2 {
		t.Fatalf("plan = %+v", p)
	}
	if len(p.AbortBursts) != 1 || p.AbortBursts[0].Class != 2 || p.AbortBursts[0].Rate != 0.8 {
		t.Fatalf("bursts = %+v", p.AbortBursts)
	}
	if p.Misestimate[1] != 3 || len(p.Slowdowns) != 1 || p.Slowdowns[0].Factor != 0.25 {
		t.Fatalf("plan = %+v", p)
	}
	if p.SnapshotDrop != 0.5 || len(p.SnapshotOutages) != 1 || len(p.HarvestOutages) != 1 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"seed": 1, "abort_rte": {}}`,
		"non-int class":   `{"abort_rate": {"one": 0.1}}`,
		"invalid rate":    `{"abort_rate": {"1": 7}}`,
		"not json":        `{`,
		"overlap windows": `{"slowdowns": [{"start":0,"end":10,"factor":0.5},{"start":5,"end":15,"factor":0.5}]}`,
	}
	for name, in := range cases {
		if _, err := ParseSpec(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMisestimateRewritesDemandOnceOnly(t *testing.T) {
	eng, clock := newBench()
	inj := NewInjector(Plan{Misestimate: map[engine.ClassID]float64{1: 3}}, clock)
	inj.AttachEngine(eng)
	fresh := cpuQuery(1, 10)
	retry := cpuQuery(1, 10)
	retry.Attempt = 1
	other := cpuQuery(2, 10)
	eng.Submit(fresh)
	eng.Submit(retry)
	eng.Submit(other)
	if fresh.Demand.Work != 30 {
		t.Fatalf("fresh work = %v, want 30", fresh.Demand.Work)
	}
	if retry.Demand.Work != 10 {
		t.Fatalf("retry work rewritten to %v; retries must keep their demand", retry.Demand.Work)
	}
	if other.Demand.Work != 10 {
		t.Fatalf("unlisted class rewritten to %v", other.Demand.Work)
	}
	if s := inj.Stats(); s.Misestimates != 1 || s.Total() != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAbortDrawsAreDeterministicAndMidFlight(t *testing.T) {
	run := func() (aborts uint64, failTimes []float64) {
		eng, clock := newBench()
		inj := NewInjector(Plan{Seed: 42, AbortRate: map[engine.ClassID]float64{1: 0.5}}, clock)
		inj.AttachEngine(eng)
		eng.OnDone(func(q *engine.Query) {
			if q.State == engine.StateFailed {
				failTimes = append(failTimes, q.DoneTime)
			}
		})
		for i := 0; i < 40; i++ {
			eng.Submit(cpuQuery(1, 10))
		}
		clock.Run()
		return inj.Stats().Aborts, failTimes
	}
	a1, t1 := run()
	a2, t2 := run()
	if a1 == 0 || a1 == 40 {
		t.Fatalf("aborts = %d, want a strict subset at rate 0.5", a1)
	}
	if a1 != a2 || len(t1) != len(t2) {
		t.Fatalf("non-deterministic: %d/%d aborts", a1, a2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("abort time %d differs: %v vs %v", i, t1[i], t2[i])
		}
		// delay = Range(0.2, 0.9) * Work lands strictly mid-flight.
		if t1[i] <= 0 || t1[i] >= 10 {
			t.Fatalf("abort at %v is not mid-flight for 10s work", t1[i])
		}
	}
}

func TestBurstOverridesBaseRate(t *testing.T) {
	inj := NewInjector(Plan{
		AbortRate: map[engine.ClassID]float64{1: 0.1},
		AbortBursts: []Burst{
			{Window: Window{Start: 100, End: 200}, Class: 1, Rate: 0.9},
			{Window: Window{Start: 300, End: 400}, Class: 0, Rate: 0.5},
		},
	}, simclock.New())
	if r := inj.abortRateAt(50, 1); r != 0.1 {
		t.Fatalf("outside burst rate = %v", r)
	}
	if r := inj.abortRateAt(150, 1); r != 0.9 {
		t.Fatalf("in-burst rate = %v", r)
	}
	if r := inj.abortRateAt(150, 2); r != 0 {
		t.Fatalf("other class in class-scoped burst = %v", r)
	}
	if r := inj.abortRateAt(350, 2); r != 0.5 {
		t.Fatalf("class-0 burst missed class 2: %v", r)
	}
	if r := inj.abortRateAt(200, 1); r != 0.1 {
		t.Fatalf("window end must be exclusive, rate = %v", r)
	}
}

func TestSlowdownWindowStretchesExecution(t *testing.T) {
	eng, clock := newBench()
	inj := NewInjector(Plan{
		Slowdowns: []Slowdown{{Window: Window{Start: 2, End: 6}, Factor: 0.5}},
	}, clock)
	inj.AttachEngine(eng)
	q := cpuQuery(1, 10)
	eng.Submit(q)
	clock.Run()
	// 2s at full speed, 4s at half speed (2 work), then 6 remaining: 12.
	if q.State != engine.StateDone || q.DoneTime != 12 {
		t.Fatalf("done = %v (state %v), want 12", q.DoneTime, q.State)
	}
	if s := inj.Stats(); s.Slowdowns != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if eng.Speed() != 1 {
		t.Fatalf("speed not restored: %v", eng.Speed())
	}
}

func TestMonitorDrops(t *testing.T) {
	inj := NewInjector(Plan{
		SnapshotDrop:    1,
		SnapshotOutages: []Window{{Start: 100, End: 200}},
		HarvestOutages:  []Window{{Start: 100, End: 200}},
	}, simclock.New())
	if !inj.DropSnapshot(150) {
		t.Fatal("in-outage snapshot kept")
	}
	if !inj.DropSnapshot(50) {
		t.Fatal("probability-1 snapshot drop kept")
	}
	if !inj.DropHarvest(150) {
		t.Fatal("in-outage harvest kept")
	}
	if inj.DropHarvest(250) {
		t.Fatal("out-of-window harvest dropped")
	}
	if s := inj.Stats(); s.SnapshotDrops != 2 || s.HarvestDrops != 1 {
		t.Fatalf("stats = %+v", s)
	}

	none := NewInjector(Plan{}, simclock.New())
	if none.DropSnapshot(1) || none.DropHarvest(1) {
		t.Fatal("empty plan dropped a poll")
	}
}

func TestRefreshCostScalesByMisestimate(t *testing.T) {
	inj := NewInjector(Plan{Misestimate: map[engine.ClassID]float64{1: 3}}, simclock.New())
	if c := inj.RefreshCost(&engine.Query{Class: 1, Cost: 100}); c != 300 {
		t.Fatalf("refreshed cost = %v, want 300", c)
	}
	if c := inj.RefreshCost(&engine.Query{Class: 2, Cost: 100}); c != 100 {
		t.Fatalf("unlisted class refreshed to %v", c)
	}
}

func TestOnInjectObservesEveryInjection(t *testing.T) {
	eng, clock := newBench()
	inj := NewInjector(Plan{
		Misestimate: map[engine.ClassID]float64{1: 2},
		Slowdowns:   []Slowdown{{Window: Window{Start: 1, End: 2}, Factor: 0.5}},
	}, clock)
	seen := make(map[string]int)
	inj.OnInject = func(kind string, class engine.ClassID) { seen[kind]++ }
	inj.AttachEngine(eng)
	eng.Submit(cpuQuery(1, 10))
	clock.Run()
	if seen[KindMisestimate] != 1 || seen[KindSlowdown] != 1 {
		t.Fatalf("observed = %v", seen)
	}
}

func TestAttachTwicePanics(t *testing.T) {
	eng, clock := newBench()
	inj := NewInjector(Plan{}, clock)
	inj.AttachEngine(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("second AttachEngine did not panic")
		}
	}()
	inj.AttachEngine(eng)
}

func TestExamplePlansParse(t *testing.T) {
	files, err := filepath.Glob("../../examples/faults/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no example fault plans found: %v", err)
	}
	for _, f := range files {
		r, err := os.Open(f)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ParseSpec(r)
		r.Close()
		if err != nil {
			t.Errorf("%s: %v", f, err)
		} else if p.Empty() {
			t.Errorf("%s: parsed to an empty plan", f)
		}
	}
}

func TestParseSpecBackendFaults(t *testing.T) {
	spec := `{
		"seed": 3,
		"backend_crashes": [{"backend": 3, "at": 1200, "recover_at": 2400}],
		"backend_brownouts": [{"backend": 2, "start": 600, "end": 900, "factor": 0.25}],
		"backend_dropouts": [{"backend": 1, "start": 600, "end": 900}]
	}`
	p, err := ParseSpec(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.BackendCrashes) != 1 || p.BackendCrashes[0] != (BackendCrash{Backend: 3, At: 1200, RecoverAt: 2400}) {
		t.Fatalf("crashes = %+v", p.BackendCrashes)
	}
	if len(p.BackendBrownouts) != 1 || p.BackendBrownouts[0].Backend != 2 || p.BackendBrownouts[0].Factor != 0.25 {
		t.Fatalf("brownouts = %+v", p.BackendBrownouts)
	}
	if len(p.BackendDropouts) != 1 || p.BackendDropouts[0].Backend != 1 {
		t.Fatalf("dropouts = %+v", p.BackendDropouts)
	}
	if p.Empty() {
		t.Error("backend-fault plan reported Empty")
	}
	if got := p.MaxBackend(); got != 3 {
		t.Errorf("MaxBackend = %d, want 3", got)
	}
}

func TestParseSpecRejectsBadBackendFaults(t *testing.T) {
	cases := map[string]string{
		"zero backend":       `{"backend_crashes": [{"backend": 0, "at": 100}]}`,
		"negative at":        `{"backend_crashes": [{"backend": 1, "at": -5}]}`,
		"recover before at":  `{"backend_crashes": [{"backend": 1, "at": 100, "recover_at": 50}]}`,
		"brownout factor 1":  `{"backend_brownouts": [{"backend": 1, "start": 0, "end": 10, "factor": 1}]}`,
		"brownout factor 0":  `{"backend_brownouts": [{"backend": 1, "start": 0, "end": 10, "factor": 0}]}`,
		"dropout bad window": `{"backend_dropouts": [{"backend": 1, "start": 10, "end": 5}]}`,
	}
	for name, in := range cases {
		if _, err := ParseSpec(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
