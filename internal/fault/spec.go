// JSON fault-plan specs — the on-disk format behind qsim/qsweep's
// -faults flag. Class IDs are JSON object keys, so they appear as
// strings; windows are {"start": s, "end": e} pairs in virtual seconds.
//
//	{
//	  "seed": 7,
//	  "abort_rate": {"1": 0.15, "2": 0.15},
//	  "abort_bursts": [{"start": 3600, "end": 7200, "class": 2, "rate": 0.8}],
//	  "misestimate": {"1": 3, "2": 3},
//	  "slowdowns": [{"start": 28800, "end": 30000, "factor": 0.25}],
//	  "snapshot_drop": 0.5,
//	  "snapshot_outages": [{"start": 14400, "end": 18000}],
//	  "harvest_outages": [{"start": 14400, "end": 18000}],
//	  "backend_crashes": [{"backend": 3, "at": 1200, "recover_at": 2400}],
//	  "backend_brownouts": [{"backend": 2, "start": 600, "end": 900, "factor": 0.25}],
//	  "backend_dropouts": [{"backend": 1, "start": 600, "end": 900}]
//	}
//
// The backend_* fields are fleet-only (1-based roster IDs); single-
// engine runs reject plans that use them.
package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/engine"
)

type jsonWindow struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

type jsonBurst struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Class int     `json:"class"`
	Rate  float64 `json:"rate"`
}

type jsonSlowdown struct {
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Factor float64 `json:"factor"`
}

type jsonBackendCrash struct {
	Backend   int     `json:"backend"`
	At        float64 `json:"at"`
	RecoverAt float64 `json:"recover_at"`
}

type jsonBackendSlowdown struct {
	Backend int     `json:"backend"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
	Factor  float64 `json:"factor"`
}

type jsonBackendOutage struct {
	Backend int     `json:"backend"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
}

type jsonPlan struct {
	Seed             uint64                `json:"seed"`
	AbortRate        map[string]float64    `json:"abort_rate"`
	AbortBursts      []jsonBurst           `json:"abort_bursts"`
	Misestimate      map[string]float64    `json:"misestimate"`
	Slowdowns        []jsonSlowdown        `json:"slowdowns"`
	SnapshotDrop     float64               `json:"snapshot_drop"`
	SnapshotOutages  []jsonWindow          `json:"snapshot_outages"`
	HarvestOutages   []jsonWindow          `json:"harvest_outages"`
	Crash            float64               `json:"crash"`
	BackendCrashes   []jsonBackendCrash    `json:"backend_crashes"`
	BackendBrownouts []jsonBackendSlowdown `json:"backend_brownouts"`
	BackendDropouts  []jsonBackendOutage   `json:"backend_dropouts"`
}

// ParseSpec reads a JSON fault plan. Unknown fields are rejected (a typo
// must not silently disable a fault), and the resulting plan is
// validated.
func ParseSpec(r io.Reader) (Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var js jsonPlan
	if err := dec.Decode(&js); err != nil {
		return Plan{}, fmt.Errorf("fault: parse spec: %w", err)
	}
	p := Plan{
		Seed:         js.Seed,
		SnapshotDrop: js.SnapshotDrop,
		Crash:        js.Crash,
	}
	var err error
	if p.AbortRate, err = classMap(js.AbortRate, "abort_rate"); err != nil {
		return Plan{}, err
	}
	if p.Misestimate, err = classMap(js.Misestimate, "misestimate"); err != nil {
		return Plan{}, err
	}
	for _, b := range js.AbortBursts {
		p.AbortBursts = append(p.AbortBursts, Burst{
			Window: Window{Start: b.Start, End: b.End},
			Class:  engine.ClassID(b.Class),
			Rate:   b.Rate,
		})
	}
	for _, s := range js.Slowdowns {
		p.Slowdowns = append(p.Slowdowns, Slowdown{
			Window: Window{Start: s.Start, End: s.End},
			Factor: s.Factor,
		})
	}
	for _, w := range js.SnapshotOutages {
		p.SnapshotOutages = append(p.SnapshotOutages, Window(w))
	}
	for _, w := range js.HarvestOutages {
		p.HarvestOutages = append(p.HarvestOutages, Window(w))
	}
	for _, bc := range js.BackendCrashes {
		p.BackendCrashes = append(p.BackendCrashes, BackendCrash{
			Backend: bc.Backend, At: bc.At, RecoverAt: bc.RecoverAt,
		})
	}
	for _, bs := range js.BackendBrownouts {
		p.BackendBrownouts = append(p.BackendBrownouts, BackendSlowdown{
			Backend: bs.Backend,
			Window:  Window{Start: bs.Start, End: bs.End},
			Factor:  bs.Factor,
		})
	}
	for _, bo := range js.BackendDropouts {
		p.BackendDropouts = append(p.BackendDropouts, BackendOutage{
			Backend: bo.Backend,
			Window:  Window{Start: bo.Start, End: bo.End},
		})
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// classMap converts string class-ID keys to engine.ClassID.
func classMap(m map[string]float64, field string) (map[engine.ClassID]float64, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(map[engine.ClassID]float64, len(m))
	for k, v := range m {
		id, err := strconv.Atoi(k)
		if err != nil {
			return nil, fmt.Errorf("fault: %s: class key %q is not an integer", field, k)
		}
		out[engine.ClassID(id)] = v
	}
	return out, nil
}
