// Checkpoint state for the fault injector: the RNG cursor, the injection
// counters, and every still-pending fault event. The plan's crash event
// is deliberately NOT checkpointed — a resumed run continues past the
// crash point instead of dying again.
package fault

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/simclock"
)

// SlowdownRecord is one pending engine-speed transition.
type SlowdownRecord struct {
	Ref     simclock.EventRef
	Factor  float64
	IsStart bool
}

// AbortRecord is one pending doomed-query abort.
type AbortRecord struct {
	Ref     simclock.EventRef
	Query   engine.QueryID
	Class   engine.ClassID
	Attempt int
}

// BackendEventRecord is one pending backend availability transition
// (crash, recovery, brownout edge).
type BackendEventRecord struct {
	Ref    simclock.EventRef
	Code   int
	Factor float64
}

// CheckpointState is the injector's serializable state.
type CheckpointState struct {
	RNG       uint64
	Stats     Stats
	Slowdowns []SlowdownRecord // pending transitions, in scheduling order
	Aborts    []AbortRecord    // sorted by event seq
	// Backend holds pending backend availability transitions, in
	// scheduling order. Transitions that already fired are NOT re-armed:
	// the fleet's post-failover state lives in the engine, router, and
	// planner checkpoints, so a resume past a crash stays failed-over
	// without replaying the failover.
	Backend []BackendEventRecord
}

// CheckpointState captures the injector at a quiescent boundary. Only
// events strictly after now are pending (everything at or before now has
// fired at a boundary).
func (in *Injector) CheckpointState() CheckpointState {
	st := CheckpointState{RNG: in.src.State(), Stats: in.stats}
	now := in.clock.Now()
	for _, se := range in.slowEvents {
		if se.ref.At > now {
			st.Slowdowns = append(st.Slowdowns, SlowdownRecord{Ref: se.ref, Factor: se.factor, IsStart: se.isStart})
		}
	}
	for _, pa := range in.aborts {
		st.Aborts = append(st.Aborts, AbortRecord{Ref: pa.ref, Query: pa.query, Class: pa.class, Attempt: pa.attempt})
	}
	sort.Slice(st.Aborts, func(i, j int) bool { return st.Aborts[i].Ref.Seq < st.Aborts[j].Ref.Seq })
	for _, be := range in.backendEvents {
		if be.ref.At > now {
			st.Backend = append(st.Backend, BackendEventRecord{Ref: be.ref, Code: be.code, Factor: be.factor})
		}
	}
	return st
}

// RestoreCheckpoint overwrites a freshly attached injector after
// Clock.Restore wiped its construction-time events, re-arming exactly
// the checkpointed pending faults.
func (in *Injector) RestoreCheckpoint(st CheckpointState) {
	in.src.SetState(st.RNG)
	in.stats = st.Stats
	in.crashed = false
	in.slowEvents = in.slowEvents[:0]
	for _, sr := range st.Slowdowns {
		in.clock.RestoreEvent(sr.Ref, in.slowdownFn(sr.Factor, sr.IsStart))
		in.slowEvents = append(in.slowEvents, slowEvent{ref: sr.Ref, factor: sr.Factor, isStart: sr.IsStart})
	}
	in.aborts = nil
	if len(st.Aborts) > 0 {
		in.aborts = make(map[uint64]*pendingAbort, len(st.Aborts))
	}
	for _, ar := range st.Aborts {
		pa := &pendingAbort{ref: ar.Ref, query: ar.Query, class: ar.Class, attempt: ar.Attempt}
		in.clock.RestoreEvent(pa.ref, in.restoredAbortFn(pa))
		in.aborts[pa.ref.Seq] = pa
	}
	in.backendEvents = in.backendEvents[:0]
	for _, br := range st.Backend {
		in.clock.RestoreEvent(br.Ref, in.backendEventFn(br.Code, br.Factor))
		in.backendEvents = append(in.backendEvents, backendEvent{ref: br.Ref, code: br.Code, factor: br.Factor})
	}
}
