// Package fault is a deterministic, seeded fault-plan subsystem for the
// simulated testbed: it injects query aborts (per-class base rates plus
// scheduled bursts), optimizer cost misestimation (actual demand differs
// from the timeron estimate by a per-class multiplier), engine slowdown
// and stall windows, and monitor dropouts (snapshot polls and whole
// harvests). The control loop's robustness features — per-query timeout,
// bounded retry with refreshed cost, plan-hold degradation — are
// evaluated against exactly these faults (see experiment.RunFaultMatrix).
//
// Everything is driven by one Plan and one owned RNG stream, so a run
// with a given (workload seed, fault plan) pair is bit-reproducible: the
// injector draws only at deterministic simulation events (query starts,
// snapshot polls) and never from shared or global randomness.
package fault

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// Injection kinds, as reported through Injector.OnInject and counted in
// Stats. They double as the obs label values of fault_injected_total.
const (
	KindAbort        = "abort"
	KindMisestimate  = "misestimate"
	KindSlowdown     = "slowdown"
	KindSnapshotDrop = "snapshot_drop"
	KindHarvestDrop  = "harvest_drop"
	KindCrash        = "crash"
	// Backend-scoped kinds: faults that hit one fleet backend instead of
	// the whole run. Injected only by backend injectors (NewBackendInjector).
	KindBackendCrash    = "backend_crash"
	KindBackendRecover  = "backend_recover"
	KindBackendBrownout = "backend_brownout"
	KindBackendDropout  = "backend_dropout"
)

// Window is a half-open interval [Start, End) of virtual seconds.
type Window struct {
	Start float64
	End   float64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool { return t >= w.Start && t < w.End }

func (w Window) validate(what string) error {
	if math.IsNaN(w.Start) || math.IsNaN(w.End) || w.Start < 0 || w.End <= w.Start {
		return fmt.Errorf("fault: %s window [%v, %v) is invalid", what, w.Start, w.End)
	}
	return nil
}

// Burst raises the abort probability inside a window — a failure storm.
type Burst struct {
	Window Window
	// Class restricts the burst to one service class; 0 hits every class.
	Class engine.ClassID
	// Rate is the per-query abort probability while the burst is active.
	// It replaces (not adds to) the base rate when larger.
	Rate float64
}

// Slowdown scales the engine's progress rate inside a window. Factor 0 is
// a full stall (the engine freezes; queries neither progress nor finish).
type Slowdown struct {
	Window Window
	Factor float64
}

// BackendCrash kills one fleet backend at a virtual time: its engine
// stalls (SetSpeed 0) and the router's health model takes it out of
// scoring. A positive RecoverAt brings the backend back; zero means it
// stays dead for the rest of the run.
type BackendCrash struct {
	// Backend is the 1-based roster ID of the backend to kill.
	Backend   int
	At        float64
	RecoverAt float64
}

// BackendSlowdown is a brownout: one backend's engine runs at Factor
// speed inside the window (Factor 0 would be a crash; use BackendCrash
// for that, so brownout factors live in (0, 1)).
type BackendSlowdown struct {
	Backend int
	Window  Window
	Factor  float64
}

// BackendOutage severs one backend's monitor/planner reporting inside
// the window: every snapshot poll and control-interval harvest on that
// backend is lost, exactly as if its telemetry link dropped.
type BackendOutage struct {
	Backend int
	Window  Window
}

// Plan is one deterministic fault scenario. The zero value injects
// nothing.
type Plan struct {
	// Seed seeds the injector's private RNG stream (abort draws and
	// probabilistic snapshot drops). Zero is a valid seed.
	Seed uint64
	// AbortRate is the base per-query abort probability per class,
	// drawn once when a query starts executing.
	AbortRate map[engine.ClassID]float64
	// AbortBursts are scheduled failure storms layered over AbortRate.
	AbortBursts []Burst
	// Misestimate multiplies a class's actual resource demand relative
	// to its optimizer estimate: 3 means the query really needs 3x what
	// the timeron cost claims (the admission controller over-admits);
	// 0 or absent leaves the class alone.
	Misestimate map[engine.ClassID]float64
	// Slowdowns are engine-wide degradation windows. Windows must not
	// overlap.
	Slowdowns []Slowdown
	// SnapshotDrop is the probability that one snapshot-monitor poll is
	// lost (all clients, that tick).
	SnapshotDrop float64
	// SnapshotOutages are windows in which every snapshot poll is lost.
	SnapshotOutages []Window
	// HarvestOutages are windows in which the monitor's whole control-
	// interval harvest is lost: the planner receives a zeroed
	// measurement flagged Dropped.
	HarvestOutages []Window
	// Crash, when positive, kills the run at that virtual time: the clock
	// stops mid-simulation as if the process died. Used by the crash-
	// recovery experiments to exercise checkpoint/resume; a resumed run
	// does not re-arm the crash.
	Crash float64
	// BackendCrashes kill individual fleet backends (with optional
	// recovery). Fleet runs only; single-engine runs reject them.
	BackendCrashes []BackendCrash
	// BackendBrownouts degrade individual backends inside windows.
	BackendBrownouts []BackendSlowdown
	// BackendDropouts sever individual backends' monitor reporting.
	BackendDropouts []BackendOutage
}

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	return len(p.AbortRate) == 0 && len(p.AbortBursts) == 0 &&
		len(p.Misestimate) == 0 && len(p.Slowdowns) == 0 &&
		p.SnapshotDrop <= 0 && len(p.SnapshotOutages) == 0 && len(p.HarvestOutages) == 0 &&
		p.Crash <= 0 && !p.HasBackendFaults()
}

// HasBackendFaults reports whether the plan contains any backend-scoped
// faults — those require a fleet run (two or more backends).
func (p Plan) HasBackendFaults() bool {
	return len(p.BackendCrashes) > 0 || len(p.BackendBrownouts) > 0 || len(p.BackendDropouts) > 0
}

// MaxBackend returns the highest backend ID any backend-scoped fault
// references (0 when there are none), so a runner can reject plans that
// name backends outside its roster.
func (p Plan) MaxBackend() int {
	max := 0
	for _, bc := range p.BackendCrashes {
		if bc.Backend > max {
			max = bc.Backend
		}
	}
	for _, bs := range p.BackendBrownouts {
		if bs.Backend > max {
			max = bs.Backend
		}
	}
	for _, bo := range p.BackendDropouts {
		if bo.Backend > max {
			max = bo.Backend
		}
	}
	return max
}

// Validate checks rates, multipliers, and window shapes.
func (p Plan) Validate() error {
	for _, class := range sortedClassKeys(p.AbortRate) {
		if r := p.AbortRate[class]; r < 0 || r > 1 || math.IsNaN(r) {
			return fmt.Errorf("fault: abort rate %v for class %d out of [0, 1]", r, class)
		}
	}
	for i, b := range p.AbortBursts {
		if err := b.Window.validate("abort burst"); err != nil {
			return err
		}
		if b.Rate < 0 || b.Rate > 1 || math.IsNaN(b.Rate) {
			return fmt.Errorf("fault: burst %d rate %v out of [0, 1]", i, b.Rate)
		}
	}
	for _, class := range sortedClassKeys(p.Misestimate) {
		if m := p.Misestimate[class]; m < 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return fmt.Errorf("fault: misestimate factor %v for class %d is invalid", m, class)
		}
	}
	slow := append([]Slowdown(nil), p.Slowdowns...)
	sort.Slice(slow, func(i, j int) bool { return slow[i].Window.Start < slow[j].Window.Start })
	for i, s := range slow {
		if err := s.Window.validate("slowdown"); err != nil {
			return err
		}
		if s.Factor < 0 || s.Factor >= 1 || math.IsNaN(s.Factor) {
			return fmt.Errorf("fault: slowdown factor %v out of [0, 1)", s.Factor)
		}
		if i > 0 && s.Window.Start < slow[i-1].Window.End {
			return fmt.Errorf("fault: slowdown windows overlap at t=%v", s.Window.Start)
		}
	}
	if p.SnapshotDrop < 0 || p.SnapshotDrop > 1 || math.IsNaN(p.SnapshotDrop) {
		return fmt.Errorf("fault: snapshot drop %v out of [0, 1]", p.SnapshotDrop)
	}
	for _, w := range p.SnapshotOutages {
		if err := w.validate("snapshot outage"); err != nil {
			return err
		}
	}
	for _, w := range p.HarvestOutages {
		if err := w.validate("harvest outage"); err != nil {
			return err
		}
	}
	if p.Crash < 0 || math.IsNaN(p.Crash) || math.IsInf(p.Crash, 0) {
		return fmt.Errorf("fault: crash time %v is invalid", p.Crash)
	}
	crashes := append([]BackendCrash(nil), p.BackendCrashes...)
	sort.Slice(crashes, func(i, j int) bool {
		if crashes[i].Backend != crashes[j].Backend {
			return crashes[i].Backend < crashes[j].Backend
		}
		return crashes[i].At < crashes[j].At
	})
	for i, bc := range crashes {
		if bc.Backend < 1 {
			return fmt.Errorf("fault: backend crash references backend %d (IDs are 1-based)", bc.Backend)
		}
		if bc.At <= 0 || math.IsNaN(bc.At) || math.IsInf(bc.At, 0) {
			return fmt.Errorf("fault: backend %d crash time %v is invalid", bc.Backend, bc.At)
		}
		if bc.RecoverAt != 0 && (bc.RecoverAt <= bc.At || math.IsNaN(bc.RecoverAt) || math.IsInf(bc.RecoverAt, 0)) {
			return fmt.Errorf("fault: backend %d recovery time %v must follow crash time %v", bc.Backend, bc.RecoverAt, bc.At)
		}
		if i > 0 && crashes[i-1].Backend == bc.Backend {
			prev := crashes[i-1]
			if prev.RecoverAt == 0 || bc.At < prev.RecoverAt {
				return fmt.Errorf("fault: backend %d crash at t=%v overlaps an earlier outage", bc.Backend, bc.At)
			}
		}
	}
	brown := append([]BackendSlowdown(nil), p.BackendBrownouts...)
	sort.Slice(brown, func(i, j int) bool {
		if brown[i].Backend != brown[j].Backend {
			return brown[i].Backend < brown[j].Backend
		}
		return brown[i].Window.Start < brown[j].Window.Start
	})
	for i, bs := range brown {
		if bs.Backend < 1 {
			return fmt.Errorf("fault: backend brownout references backend %d (IDs are 1-based)", bs.Backend)
		}
		if err := bs.Window.validate("backend brownout"); err != nil {
			return err
		}
		if bs.Factor <= 0 || bs.Factor >= 1 || math.IsNaN(bs.Factor) {
			return fmt.Errorf("fault: backend brownout factor %v out of (0, 1)", bs.Factor)
		}
		if i > 0 && brown[i-1].Backend == bs.Backend && bs.Window.Start < brown[i-1].Window.End {
			return fmt.Errorf("fault: backend %d brownout windows overlap at t=%v", bs.Backend, bs.Window.Start)
		}
	}
	for _, bo := range p.BackendDropouts {
		if bo.Backend < 1 {
			return fmt.Errorf("fault: backend dropout references backend %d (IDs are 1-based)", bo.Backend)
		}
		if err := bo.Window.validate("backend dropout"); err != nil {
			return err
		}
	}
	return nil
}

// Stats counts injections, total and per kind.
type Stats struct {
	Aborts           uint64
	Misestimates     uint64
	Slowdowns        uint64
	SnapshotDrops    uint64
	HarvestDrops     uint64
	Crashes          uint64
	BackendCrashes   uint64
	BackendRecovers  uint64
	BackendBrownouts uint64
	BackendDropouts  uint64
}

// Total sums all injection counters.
func (s Stats) Total() uint64 {
	return s.Aborts + s.Misestimates + s.Slowdowns + s.SnapshotDrops + s.HarvestDrops + s.Crashes +
		s.BackendCrashes + s.BackendRecovers + s.BackendBrownouts + s.BackendDropouts
}

// Add folds another stats block into s — fleet runs sum their
// per-backend injectors' counters into one run-level block.
func (s *Stats) Add(o Stats) {
	s.Aborts += o.Aborts
	s.Misestimates += o.Misestimates
	s.Slowdowns += o.Slowdowns
	s.SnapshotDrops += o.SnapshotDrops
	s.HarvestDrops += o.HarvestDrops
	s.Crashes += o.Crashes
	s.BackendCrashes += o.BackendCrashes
	s.BackendRecovers += o.BackendRecovers
	s.BackendBrownouts += o.BackendBrownouts
	s.BackendDropouts += o.BackendDropouts
}

// Injector executes a Plan against one engine + monitor pair. Construct
// with NewInjector, call AttachEngine before the run starts, and hand the
// injector to the Query Scheduler config as its MonitorFaults source.
type Injector struct {
	plan  Plan
	clock *simclock.Clock
	//lint:ignore ckptcover wiring backref installed by AttachEngine on both fresh and restored runs
	eng   *engine.Engine
	src   *rng.Source
	stats Stats

	// backendID scopes the injector to one fleet backend (1-based); 0 is
	// a classic single-engine injector. Backend-scoped faults fire only
	// on the injector whose backendID matches, and the run-level crash is
	// armed only by backend 1 (exactly once per fleet).
	backendID int
	//lint:ignore ckptcover wiring installed by SetFleetHooks on both fresh and restored runs
	hooks FleetHooks

	// slowEvents records every scheduled slowdown transition with its
	// event ref; aborts tracks pending doomed-query aborts by event seq.
	// backendEvents records scheduled backend crash/recover/brownout
	// transitions the same way. All exist so a checkpoint can re-arm
	// exactly the still-pending fault events on resume.
	slowEvents    []slowEvent
	aborts        map[uint64]*pendingAbort
	backendEvents []backendEvent
	//lint:ignore ckptcover restore itself clears the crash flag; a restored injector is by definition post-crash
	crashed bool

	// OnInject, when set, observes every injection as (kind, class);
	// class is 0 for class-less kinds (slowdown, monitor drops). The obs
	// wiring uses this to expose fault_injected_total.
	OnInject func(kind string, class engine.ClassID)
}

// FleetHooks are the fleet-facing callbacks a backend injector fires on
// its backend's availability transitions — the experiment wiring routes
// them into the router's health model and the decision log. A crash or
// brownout always stalls/slows the local engine regardless of hooks, so
// a mitigation-off fleet still loses the capacity; the hooks are the
// mitigation.
type FleetHooks struct {
	Down     func()               // backend crash fired
	Up       func()               // backend recovered
	Degraded func(factor float64) // brownout window opened
	Restored func()               // brownout window closed
}

// slowEvent is one scheduled engine-speed transition.
type slowEvent struct {
	ref     simclock.EventRef
	factor  float64
	isStart bool // window start (counts as an injection) vs window end
}

// pendingAbort is one scheduled doomed-query abort.
type pendingAbort struct {
	ref     simclock.EventRef
	query   engine.QueryID
	class   engine.ClassID
	attempt int
}

// Backend transition codes, serialized in BackendEventRecord.
const (
	bevCrash = iota
	bevRecover
	bevBrownoutStart
	bevBrownoutEnd
)

// backendEvent is one scheduled backend availability transition.
type backendEvent struct {
	ref    simclock.EventRef
	code   int
	factor float64 // brownout speed factor; unused for crash/recover
}

// NewInjector builds an injector for the plan on the given clock. The
// plan must validate. Single-engine runs only: backend-scoped faults
// need NewBackendInjector (one per roster slot).
func NewInjector(plan Plan, clock *simclock.Clock) *Injector {
	if clock == nil {
		panic("fault: nil clock")
	}
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	if plan.HasBackendFaults() {
		panic("fault: backend-scoped faults require a fleet (use NewBackendInjector)")
	}
	return &Injector{plan: plan, clock: clock, src: rng.New(plan.Seed)}
}

// NewBackendInjector builds the injector for one fleet backend
// (1-based roster ID). Class-scoped faults (aborts, misestimation,
// engine-wide slowdowns, monitor drops) apply to this backend's engine
// and monitor like any single-engine run; backend-scoped faults fire
// only where the plan's Backend field matches. Each backend draws from
// its own RNG stream, decorrelated from its siblings by the roster ID,
// so a fleet's abort storms don't strike every box in lockstep. The
// run-level Crash is armed by backend 1 alone.
func NewBackendInjector(plan Plan, clock *simclock.Clock, backendID int) *Injector {
	if clock == nil {
		panic("fault: nil clock")
	}
	if backendID < 1 {
		panic("fault: backend injector IDs are 1-based")
	}
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	seed := plan.Seed + uint64(backendID)*0x9e3779b97f4a7c15
	return &Injector{plan: plan, clock: clock, src: rng.New(seed), backendID: backendID}
}

// SetFleetHooks installs the fleet-facing availability callbacks. Call
// before the simulation runs (fresh or resumed); unset hooks are
// simply skipped, which is the mitigation-off configuration.
func (in *Injector) SetFleetHooks(h FleetHooks) { in.hooks = h }

// Plan returns the injector's fault plan.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns cumulative injection counters.
func (in *Injector) Stats() Stats { return in.stats }

func (in *Injector) note(kind string, class engine.ClassID) {
	if in.OnInject != nil {
		in.OnInject(kind, class)
	}
}

// AttachEngine hooks the plan into an engine: misestimation rewrites
// demand at submit, abort draws happen at execution start, and slowdown
// windows are scheduled as clock events. Call exactly once, before the
// simulation runs.
func (in *Injector) AttachEngine(eng *engine.Engine) {
	if in.eng != nil {
		panic("fault: injector already attached to an engine")
	}
	in.eng = eng
	if len(in.plan.Misestimate) > 0 {
		eng.OnSubmit(func(q *engine.Query) {
			if q.Attempt > 0 {
				return // a retry's demand was already rewritten
			}
			m, ok := in.plan.Misestimate[q.Class]
			if !ok || m <= 0 {
				return
			}
			q.Demand.Work *= m
			in.stats.Misestimates++
			in.note(KindMisestimate, q.Class)
		})
	}
	if len(in.plan.AbortRate) > 0 || len(in.plan.AbortBursts) > 0 {
		eng.OnStart(func(q *engine.Query) { in.maybeScheduleAbort(q) })
	}
	for _, s := range in.plan.Slowdowns {
		in.armSlowdown(s.Window.Start, s.Factor, true)
		in.armSlowdown(s.Window.End, 1, false)
	}
	for _, bc := range in.plan.BackendCrashes {
		if bc.Backend != in.backendID {
			continue
		}
		in.armBackendEvent(bc.At, bevCrash, 0)
		if bc.RecoverAt > 0 {
			in.armBackendEvent(bc.RecoverAt, bevRecover, 1)
		}
	}
	for _, bs := range in.plan.BackendBrownouts {
		if bs.Backend != in.backendID {
			continue
		}
		in.armBackendEvent(bs.Window.Start, bevBrownoutStart, bs.Factor)
		in.armBackendEvent(bs.Window.End, bevBrownoutEnd, 1)
	}
	if in.plan.Crash > 0 && in.backendID <= 1 {
		in.clock.At(in.plan.Crash, func() {
			in.crashed = true
			in.stats.Crashes++
			in.note(KindCrash, 0)
			in.clock.Stop()
		})
	}
}

// armBackendEvent schedules one backend availability transition and
// records its ref for checkpointing.
func (in *Injector) armBackendEvent(at float64, code int, factor float64) {
	ref := in.clock.AtRef(at, in.backendEventFn(code, factor))
	in.backendEvents = append(in.backendEvents, backendEvent{ref: ref, code: code, factor: factor})
}

func (in *Injector) backendEventFn(code int, factor float64) simclock.EventFunc {
	return func() {
		switch code {
		case bevCrash:
			in.stats.BackendCrashes++
			in.note(KindBackendCrash, 0)
			in.eng.SetSpeed(0)
			if in.hooks.Down != nil {
				in.hooks.Down()
			}
		case bevRecover:
			in.stats.BackendRecovers++
			in.note(KindBackendRecover, 0)
			in.eng.SetSpeed(1)
			if in.hooks.Up != nil {
				in.hooks.Up()
			}
		case bevBrownoutStart:
			in.stats.BackendBrownouts++
			in.note(KindBackendBrownout, 0)
			in.eng.SetSpeed(factor)
			if in.hooks.Degraded != nil {
				in.hooks.Degraded(factor)
			}
		case bevBrownoutEnd:
			in.eng.SetSpeed(1)
			if in.hooks.Restored != nil {
				in.hooks.Restored()
			}
		}
	}
}

// Crashed reports whether the plan's crash event has fired — the run is
// dead and its driver must stop as if the process were killed.
func (in *Injector) Crashed() bool { return in.crashed }

// armSlowdown schedules one engine-speed transition and records its ref.
func (in *Injector) armSlowdown(at float64, factor float64, isStart bool) {
	ref := in.clock.AtRef(at, in.slowdownFn(factor, isStart))
	in.slowEvents = append(in.slowEvents, slowEvent{ref: ref, factor: factor, isStart: isStart})
}

func (in *Injector) slowdownFn(factor float64, isStart bool) simclock.EventFunc {
	return func() {
		if isStart {
			in.stats.Slowdowns++
			in.note(KindSlowdown, 0)
		}
		in.eng.SetSpeed(factor)
	}
}

// abortRateAt returns the effective abort probability for a class at time
// t: the largest of the base rate and any active burst covering the
// class.
func (in *Injector) abortRateAt(t float64, class engine.ClassID) float64 {
	rate := in.plan.AbortRate[class]
	for _, b := range in.plan.AbortBursts {
		if b.Window.Contains(t) && (b.Class == 0 || b.Class == class) && b.Rate > rate {
			rate = b.Rate
		}
	}
	return rate
}

// maybeScheduleAbort draws the query's fate at execution start; a doomed
// query gets an abort event at a uniform fraction of its stand-alone
// execution time, so the abort always lands mid-flight (a query running
// at rate <= 1 cannot finish before Work seconds have passed).
func (in *Injector) maybeScheduleAbort(q *engine.Query) {
	rate := in.abortRateAt(in.clock.Now(), q.Class)
	if rate <= 0 || in.src.Float64() >= rate {
		return
	}
	delay := in.src.Range(0.2, 0.9) * q.Demand.Work
	pa := &pendingAbort{query: q.ID, class: q.Class, attempt: q.Attempt}
	pa.ref = in.clock.AfterRef(delay, in.abortFn(pa, q))
	if in.aborts == nil {
		in.aborts = make(map[uint64]*pendingAbort)
	}
	in.aborts[pa.ref.Seq] = pa
}

// abortFn fires one scheduled abort against the query object the draw
// doomed. A stale fire (the attempt already finished, timed out, or was
// retried) must be a no-op; the id/attempt guard decides it, because the
// object itself may have been recycled into a different live query by
// the engine's freelist after the doomed attempt ended.
func (in *Injector) abortFn(pa *pendingAbort, q *engine.Query) simclock.EventFunc {
	return func() {
		delete(in.aborts, pa.ref.Seq)
		if q.ID != pa.query || q.Attempt != pa.attempt {
			return
		}
		if in.eng.Abort(q) {
			in.stats.Aborts++
			in.note(KindAbort, pa.class)
		}
	}
}

// restoredAbortFn is abortFn rebuilt after a checkpoint restore: the
// original *Query pointer is gone, so the closure re-finds the query by
// id and guards on the attempt counter — an id whose doomed attempt
// already ended (and possibly retried under the same id) must no-op,
// exactly as the original closure's stale-pointer Abort would.
func (in *Injector) restoredAbortFn(pa *pendingAbort) simclock.EventFunc {
	return func() {
		delete(in.aborts, pa.ref.Seq)
		q := in.eng.ActiveQuery(pa.query)
		if q == nil || q.Attempt != pa.attempt {
			return
		}
		if in.eng.Abort(q) {
			in.stats.Aborts++
			in.note(KindAbort, pa.class)
		}
	}
}

// DropSnapshot reports whether the snapshot poll at time t is lost —
// part of the Query Scheduler's MonitorFaultInjector contract. Outage
// windows drop deterministically; otherwise SnapshotDrop draws from the
// injector's RNG.
func (in *Injector) DropSnapshot(t simclock.Time) bool {
	if in.inBackendDropout(t) {
		return true
	}
	for _, w := range in.plan.SnapshotOutages {
		if w.Contains(t) {
			in.stats.SnapshotDrops++
			in.note(KindSnapshotDrop, 0)
			return true
		}
	}
	if in.plan.SnapshotDrop > 0 && in.src.Float64() < in.plan.SnapshotDrop {
		in.stats.SnapshotDrops++
		in.note(KindSnapshotDrop, 0)
		return true
	}
	return false
}

// DropHarvest reports whether the whole control-interval harvest at time
// t is lost (windows only; losing an entire harvest is an outage-class
// event, not per-poll noise).
func (in *Injector) DropHarvest(t simclock.Time) bool {
	if in.inBackendDropout(t) {
		return true
	}
	for _, w := range in.plan.HarvestOutages {
		if w.Contains(t) {
			in.stats.HarvestDrops++
			in.note(KindHarvestDrop, 0)
			return true
		}
	}
	return false
}

// inBackendDropout reports whether this injector's backend is inside a
// dropout window at t — all of its monitor reporting (snapshot polls
// and whole harvests) is severed.
func (in *Injector) inBackendDropout(t simclock.Time) bool {
	if in.backendID == 0 {
		return false
	}
	for _, o := range in.plan.BackendDropouts {
		if o.Backend == in.backendID && o.Window.Contains(t) {
			in.stats.BackendDropouts++
			in.note(KindBackendDropout, 0)
			return true
		}
	}
	return false
}

// RefreshCost is the corrected timeron estimate for a retried query:
// the original estimate scaled by the class's misestimation factor —
// what a re-cost after a failed attempt would reveal. With no
// misestimation it returns the original cost unchanged. Wire it as
// patroller.RetryPolicy.RefreshCost so retries are admitted under their
// true footprint.
func (in *Injector) RefreshCost(q *engine.Query) float64 {
	if m, ok := in.plan.Misestimate[q.Class]; ok && m > 0 {
		return q.Cost * m
	}
	return q.Cost
}

// sortedClassKeys returns m's keys in ascending order so validation
// messages (and any per-class iteration) are deterministic.
func sortedClassKeys(m map[engine.ClassID]float64) []engine.ClassID {
	out := make([]engine.ClassID, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
