// Package fault is a deterministic, seeded fault-plan subsystem for the
// simulated testbed: it injects query aborts (per-class base rates plus
// scheduled bursts), optimizer cost misestimation (actual demand differs
// from the timeron estimate by a per-class multiplier), engine slowdown
// and stall windows, and monitor dropouts (snapshot polls and whole
// harvests). The control loop's robustness features — per-query timeout,
// bounded retry with refreshed cost, plan-hold degradation — are
// evaluated against exactly these faults (see experiment.RunFaultMatrix).
//
// Everything is driven by one Plan and one owned RNG stream, so a run
// with a given (workload seed, fault plan) pair is bit-reproducible: the
// injector draws only at deterministic simulation events (query starts,
// snapshot polls) and never from shared or global randomness.
package fault

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// Injection kinds, as reported through Injector.OnInject and counted in
// Stats. They double as the obs label values of fault_injected_total.
const (
	KindAbort        = "abort"
	KindMisestimate  = "misestimate"
	KindSlowdown     = "slowdown"
	KindSnapshotDrop = "snapshot_drop"
	KindHarvestDrop  = "harvest_drop"
	KindCrash        = "crash"
)

// Window is a half-open interval [Start, End) of virtual seconds.
type Window struct {
	Start float64
	End   float64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool { return t >= w.Start && t < w.End }

func (w Window) validate(what string) error {
	if math.IsNaN(w.Start) || math.IsNaN(w.End) || w.Start < 0 || w.End <= w.Start {
		return fmt.Errorf("fault: %s window [%v, %v) is invalid", what, w.Start, w.End)
	}
	return nil
}

// Burst raises the abort probability inside a window — a failure storm.
type Burst struct {
	Window Window
	// Class restricts the burst to one service class; 0 hits every class.
	Class engine.ClassID
	// Rate is the per-query abort probability while the burst is active.
	// It replaces (not adds to) the base rate when larger.
	Rate float64
}

// Slowdown scales the engine's progress rate inside a window. Factor 0 is
// a full stall (the engine freezes; queries neither progress nor finish).
type Slowdown struct {
	Window Window
	Factor float64
}

// Plan is one deterministic fault scenario. The zero value injects
// nothing.
type Plan struct {
	// Seed seeds the injector's private RNG stream (abort draws and
	// probabilistic snapshot drops). Zero is a valid seed.
	Seed uint64
	// AbortRate is the base per-query abort probability per class,
	// drawn once when a query starts executing.
	AbortRate map[engine.ClassID]float64
	// AbortBursts are scheduled failure storms layered over AbortRate.
	AbortBursts []Burst
	// Misestimate multiplies a class's actual resource demand relative
	// to its optimizer estimate: 3 means the query really needs 3x what
	// the timeron cost claims (the admission controller over-admits);
	// 0 or absent leaves the class alone.
	Misestimate map[engine.ClassID]float64
	// Slowdowns are engine-wide degradation windows. Windows must not
	// overlap.
	Slowdowns []Slowdown
	// SnapshotDrop is the probability that one snapshot-monitor poll is
	// lost (all clients, that tick).
	SnapshotDrop float64
	// SnapshotOutages are windows in which every snapshot poll is lost.
	SnapshotOutages []Window
	// HarvestOutages are windows in which the monitor's whole control-
	// interval harvest is lost: the planner receives a zeroed
	// measurement flagged Dropped.
	HarvestOutages []Window
	// Crash, when positive, kills the run at that virtual time: the clock
	// stops mid-simulation as if the process died. Used by the crash-
	// recovery experiments to exercise checkpoint/resume; a resumed run
	// does not re-arm the crash.
	Crash float64
}

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	return len(p.AbortRate) == 0 && len(p.AbortBursts) == 0 &&
		len(p.Misestimate) == 0 && len(p.Slowdowns) == 0 &&
		p.SnapshotDrop <= 0 && len(p.SnapshotOutages) == 0 && len(p.HarvestOutages) == 0 &&
		p.Crash <= 0
}

// Validate checks rates, multipliers, and window shapes.
func (p Plan) Validate() error {
	for _, class := range sortedClassKeys(p.AbortRate) {
		if r := p.AbortRate[class]; r < 0 || r > 1 || math.IsNaN(r) {
			return fmt.Errorf("fault: abort rate %v for class %d out of [0, 1]", r, class)
		}
	}
	for i, b := range p.AbortBursts {
		if err := b.Window.validate("abort burst"); err != nil {
			return err
		}
		if b.Rate < 0 || b.Rate > 1 || math.IsNaN(b.Rate) {
			return fmt.Errorf("fault: burst %d rate %v out of [0, 1]", i, b.Rate)
		}
	}
	for _, class := range sortedClassKeys(p.Misestimate) {
		if m := p.Misestimate[class]; m < 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return fmt.Errorf("fault: misestimate factor %v for class %d is invalid", m, class)
		}
	}
	slow := append([]Slowdown(nil), p.Slowdowns...)
	sort.Slice(slow, func(i, j int) bool { return slow[i].Window.Start < slow[j].Window.Start })
	for i, s := range slow {
		if err := s.Window.validate("slowdown"); err != nil {
			return err
		}
		if s.Factor < 0 || s.Factor >= 1 || math.IsNaN(s.Factor) {
			return fmt.Errorf("fault: slowdown factor %v out of [0, 1)", s.Factor)
		}
		if i > 0 && s.Window.Start < slow[i-1].Window.End {
			return fmt.Errorf("fault: slowdown windows overlap at t=%v", s.Window.Start)
		}
	}
	if p.SnapshotDrop < 0 || p.SnapshotDrop > 1 || math.IsNaN(p.SnapshotDrop) {
		return fmt.Errorf("fault: snapshot drop %v out of [0, 1]", p.SnapshotDrop)
	}
	for _, w := range p.SnapshotOutages {
		if err := w.validate("snapshot outage"); err != nil {
			return err
		}
	}
	for _, w := range p.HarvestOutages {
		if err := w.validate("harvest outage"); err != nil {
			return err
		}
	}
	if p.Crash < 0 || math.IsNaN(p.Crash) || math.IsInf(p.Crash, 0) {
		return fmt.Errorf("fault: crash time %v is invalid", p.Crash)
	}
	return nil
}

// Stats counts injections, total and per kind.
type Stats struct {
	Aborts        uint64
	Misestimates  uint64
	Slowdowns     uint64
	SnapshotDrops uint64
	HarvestDrops  uint64
	Crashes       uint64
}

// Total sums all injection counters.
func (s Stats) Total() uint64 {
	return s.Aborts + s.Misestimates + s.Slowdowns + s.SnapshotDrops + s.HarvestDrops + s.Crashes
}

// Injector executes a Plan against one engine + monitor pair. Construct
// with NewInjector, call AttachEngine before the run starts, and hand the
// injector to the Query Scheduler config as its MonitorFaults source.
type Injector struct {
	plan  Plan
	clock *simclock.Clock
	//lint:ignore ckptcover wiring backref installed by AttachEngine on both fresh and restored runs
	eng   *engine.Engine
	src   *rng.Source
	stats Stats

	// slowEvents records every scheduled slowdown transition with its
	// event ref; aborts tracks pending doomed-query aborts by event seq.
	// Both exist so a checkpoint can re-arm exactly the still-pending
	// fault events on resume.
	slowEvents []slowEvent
	aborts     map[uint64]*pendingAbort
	//lint:ignore ckptcover restore itself clears the crash flag; a restored injector is by definition post-crash
	crashed bool

	// OnInject, when set, observes every injection as (kind, class);
	// class is 0 for class-less kinds (slowdown, monitor drops). The obs
	// wiring uses this to expose fault_injected_total.
	OnInject func(kind string, class engine.ClassID)
}

// slowEvent is one scheduled engine-speed transition.
type slowEvent struct {
	ref     simclock.EventRef
	factor  float64
	isStart bool // window start (counts as an injection) vs window end
}

// pendingAbort is one scheduled doomed-query abort.
type pendingAbort struct {
	ref     simclock.EventRef
	query   engine.QueryID
	class   engine.ClassID
	attempt int
}

// NewInjector builds an injector for the plan on the given clock. The
// plan must validate.
func NewInjector(plan Plan, clock *simclock.Clock) *Injector {
	if clock == nil {
		panic("fault: nil clock")
	}
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	return &Injector{plan: plan, clock: clock, src: rng.New(plan.Seed)}
}

// Plan returns the injector's fault plan.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns cumulative injection counters.
func (in *Injector) Stats() Stats { return in.stats }

func (in *Injector) note(kind string, class engine.ClassID) {
	if in.OnInject != nil {
		in.OnInject(kind, class)
	}
}

// AttachEngine hooks the plan into an engine: misestimation rewrites
// demand at submit, abort draws happen at execution start, and slowdown
// windows are scheduled as clock events. Call exactly once, before the
// simulation runs.
func (in *Injector) AttachEngine(eng *engine.Engine) {
	if in.eng != nil {
		panic("fault: injector already attached to an engine")
	}
	in.eng = eng
	if len(in.plan.Misestimate) > 0 {
		eng.OnSubmit(func(q *engine.Query) {
			if q.Attempt > 0 {
				return // a retry's demand was already rewritten
			}
			m, ok := in.plan.Misestimate[q.Class]
			if !ok || m <= 0 {
				return
			}
			q.Demand.Work *= m
			in.stats.Misestimates++
			in.note(KindMisestimate, q.Class)
		})
	}
	if len(in.plan.AbortRate) > 0 || len(in.plan.AbortBursts) > 0 {
		eng.OnStart(func(q *engine.Query) { in.maybeScheduleAbort(q) })
	}
	for _, s := range in.plan.Slowdowns {
		in.armSlowdown(s.Window.Start, s.Factor, true)
		in.armSlowdown(s.Window.End, 1, false)
	}
	if in.plan.Crash > 0 {
		in.clock.At(in.plan.Crash, func() {
			in.crashed = true
			in.stats.Crashes++
			in.note(KindCrash, 0)
			in.clock.Stop()
		})
	}
}

// Crashed reports whether the plan's crash event has fired — the run is
// dead and its driver must stop as if the process were killed.
func (in *Injector) Crashed() bool { return in.crashed }

// armSlowdown schedules one engine-speed transition and records its ref.
func (in *Injector) armSlowdown(at float64, factor float64, isStart bool) {
	ref := in.clock.AtRef(at, in.slowdownFn(factor, isStart))
	in.slowEvents = append(in.slowEvents, slowEvent{ref: ref, factor: factor, isStart: isStart})
}

func (in *Injector) slowdownFn(factor float64, isStart bool) simclock.EventFunc {
	return func() {
		if isStart {
			in.stats.Slowdowns++
			in.note(KindSlowdown, 0)
		}
		in.eng.SetSpeed(factor)
	}
}

// abortRateAt returns the effective abort probability for a class at time
// t: the largest of the base rate and any active burst covering the
// class.
func (in *Injector) abortRateAt(t float64, class engine.ClassID) float64 {
	rate := in.plan.AbortRate[class]
	for _, b := range in.plan.AbortBursts {
		if b.Window.Contains(t) && (b.Class == 0 || b.Class == class) && b.Rate > rate {
			rate = b.Rate
		}
	}
	return rate
}

// maybeScheduleAbort draws the query's fate at execution start; a doomed
// query gets an abort event at a uniform fraction of its stand-alone
// execution time, so the abort always lands mid-flight (a query running
// at rate <= 1 cannot finish before Work seconds have passed).
func (in *Injector) maybeScheduleAbort(q *engine.Query) {
	rate := in.abortRateAt(in.clock.Now(), q.Class)
	if rate <= 0 || in.src.Float64() >= rate {
		return
	}
	delay := in.src.Range(0.2, 0.9) * q.Demand.Work
	pa := &pendingAbort{query: q.ID, class: q.Class, attempt: q.Attempt}
	pa.ref = in.clock.AfterRef(delay, in.abortFn(pa, q))
	if in.aborts == nil {
		in.aborts = make(map[uint64]*pendingAbort)
	}
	in.aborts[pa.ref.Seq] = pa
}

// abortFn fires one scheduled abort against the query object the draw
// doomed. A stale fire (the attempt already finished, timed out, or was
// retried) must be a no-op; the id/attempt guard decides it, because the
// object itself may have been recycled into a different live query by
// the engine's freelist after the doomed attempt ended.
func (in *Injector) abortFn(pa *pendingAbort, q *engine.Query) simclock.EventFunc {
	return func() {
		delete(in.aborts, pa.ref.Seq)
		if q.ID != pa.query || q.Attempt != pa.attempt {
			return
		}
		if in.eng.Abort(q) {
			in.stats.Aborts++
			in.note(KindAbort, pa.class)
		}
	}
}

// restoredAbortFn is abortFn rebuilt after a checkpoint restore: the
// original *Query pointer is gone, so the closure re-finds the query by
// id and guards on the attempt counter — an id whose doomed attempt
// already ended (and possibly retried under the same id) must no-op,
// exactly as the original closure's stale-pointer Abort would.
func (in *Injector) restoredAbortFn(pa *pendingAbort) simclock.EventFunc {
	return func() {
		delete(in.aborts, pa.ref.Seq)
		q := in.eng.ActiveQuery(pa.query)
		if q == nil || q.Attempt != pa.attempt {
			return
		}
		if in.eng.Abort(q) {
			in.stats.Aborts++
			in.note(KindAbort, pa.class)
		}
	}
}

// DropSnapshot reports whether the snapshot poll at time t is lost —
// part of the Query Scheduler's MonitorFaultInjector contract. Outage
// windows drop deterministically; otherwise SnapshotDrop draws from the
// injector's RNG.
func (in *Injector) DropSnapshot(t simclock.Time) bool {
	for _, w := range in.plan.SnapshotOutages {
		if w.Contains(t) {
			in.stats.SnapshotDrops++
			in.note(KindSnapshotDrop, 0)
			return true
		}
	}
	if in.plan.SnapshotDrop > 0 && in.src.Float64() < in.plan.SnapshotDrop {
		in.stats.SnapshotDrops++
		in.note(KindSnapshotDrop, 0)
		return true
	}
	return false
}

// DropHarvest reports whether the whole control-interval harvest at time
// t is lost (windows only; losing an entire harvest is an outage-class
// event, not per-poll noise).
func (in *Injector) DropHarvest(t simclock.Time) bool {
	for _, w := range in.plan.HarvestOutages {
		if w.Contains(t) {
			in.stats.HarvestDrops++
			in.note(KindHarvestDrop, 0)
			return true
		}
	}
	return false
}

// RefreshCost is the corrected timeron estimate for a retried query:
// the original estimate scaled by the class's misestimation factor —
// what a re-cost after a failed attempt would reveal. With no
// misestimation it returns the original cost unchanged. Wire it as
// patroller.RetryPolicy.RefreshCost so retries are admitted under their
// true footprint.
func (in *Injector) RefreshCost(q *engine.Query) float64 {
	if m, ok := in.plan.Misestimate[q.Class]; ok && m > 0 {
		return q.Cost * m
	}
	return q.Cost
}

// sortedClassKeys returns m's keys in ascending order so validation
// messages (and any per-class iteration) are deterministic.
func sortedClassKeys(m map[engine.ClassID]float64) []engine.ClassID {
	out := make([]engine.ClassID, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
