package fault

import (
	"bytes"
	"testing"
)

// FuzzParseSpec asserts the fault-plan parser's contract on arbitrary
// input: a validated plan or an error, never a panic.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed":7,"abort_rate":{"1":0.15},"misestimate":{"2":3}}`))
	f.Add([]byte(`{"abort_bursts":[{"start":3600,"end":7200,"class":2,"rate":0.8}]}`))
	f.Add([]byte(`{"slowdowns":[{"start":100,"end":200,"factor":0.25}],"crash":500}`))
	f.Add([]byte(`{"snapshot_drop":0.5,"snapshot_outages":[{"start":1,"end":2}],"harvest_outages":[{"start":1,"end":2}]}`))
	f.Add([]byte(`{"backend_crashes":[{"backend":3,"at":1200,"recover_at":2400}]}`))
	f.Add([]byte(`{"backend_brownouts":[{"backend":2,"start":600,"end":900,"factor":0.25}]}`))
	f.Add([]byte(`{"backend_dropouts":[{"backend":1,"start":600,"end":900}]}`))
	f.Add([]byte(`{"backend_crashes":[{"backend":0,"at":5}]}`))                         // 0 is not a roster ID
	f.Add([]byte(`{"backend_crashes":[{"backend":1,"at":5,"recover_at":4}]}`))          // recovery before crash
	f.Add([]byte(`{"backend_brownouts":[{"backend":1,"start":0,"end":9,"factor":0}]}`)) // factor 0 is a crash
	f.Add([]byte(`{"abort_rate":{"not-a-class":0.5}}`))                                 // non-integer class key
	f.Add([]byte(`{"unknown_field":1}`))                                                // rejected by DisallowUnknownFields
	f.Add([]byte(`{"abort_rate":{"1":2.5}}`))                                           // out-of-range rate
	f.Add([]byte(`{"seed":`))                                                           // truncated JSON
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseSpec(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A parsed plan must be valid: ParseSpec validates before returning.
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ParseSpec returned an invalid plan: %v", verr)
		}
	})
}
