// Static release policies — the paper's two baseline controllers.
package patroller

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/stats"
)

// SystemLimit is the "no class control" baseline: a single FIFO queue over
// all managed classes, released while the total executing cost stays within
// the system cost limit. No differentiation between classes.
type SystemLimit struct {
	Limit float64
}

// SelectReleases implements Policy: arrival order, releasing every query
// that fits the remaining budget. Queries costing more than the whole
// limit can never run — exactly DB2 QP's behaviour with a maximum-cost
// threshold — so a too-low system limit starves the big end of the
// workload rather than wedging the queue.
func (s SystemLimit) SelectReleases(v *View) []engine.QueryID {
	var out []engine.QueryID
	budget := s.Limit - v.ActiveCost()
	for _, qi := range v.Held {
		if qi.Cost > budget {
			continue
		}
		budget -= qi.Cost
		out = append(out, qi.ID)
	}
	return out
}

// Group is a DB2 QP query class by size.
type Group int

// Query size groups: the paper partitions the OLAP workload so the top 5%
// of queries by cost are "large", the next 15% "medium", the rest "small".
const (
	Small Group = iota
	Medium
	Large
)

func (g Group) String() string {
	switch g {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return "Group(?)"
	}
}

// GroupThresholds holds the cost cutoffs separating the groups.
type GroupThresholds struct {
	// MediumMin is the cost at and above which a query is medium.
	MediumMin float64
	// LargeMin is the cost at and above which a query is large.
	LargeMin float64
}

// GroupOf classifies one query cost.
func (t GroupThresholds) GroupOf(cost float64) Group {
	switch {
	case cost >= t.LargeMin:
		return Large
	case cost >= t.MediumMin:
		return Medium
	default:
		return Small
	}
}

// ThresholdsFromSample derives the paper's 5%/15% partition from a sample
// of workload costs: large = top 5%, medium = next 15%.
func ThresholdsFromSample(costs []float64) GroupThresholds {
	return GroupThresholds{
		MediumMin: stats.Percentile(costs, 0.80),
		LargeMin:  stats.Percentile(costs, 0.95),
	}
}

// GroupPriority is the "class control with DB2 QP" baseline: a static
// total cost limit over the managed (OLAP) classes, per-size-group
// concurrency caps, and optional class priorities. Higher-priority classes
// are always drained first; within a priority level arrival order wins.
// The limits never adapt — that is the point of the comparison.
type GroupPriority struct {
	TotalLimit float64
	Thresholds GroupThresholds
	// MaxConcurrent caps how many queries of each group may execute at
	// once (a missing entry means unlimited).
	MaxConcurrent map[Group]int
	// Priority orders classes; higher runs first. Missing classes get 0.
	Priority map[engine.ClassID]int
}

// SelectReleases implements Policy.
func (g GroupPriority) SelectReleases(v *View) []engine.QueryID {
	running := map[Group]int{}
	for _, qi := range v.Active {
		running[g.Thresholds.GroupOf(qi.Cost)]++
	}
	budget := g.TotalLimit - v.ActiveCost()

	order := make([]*QueryInfo, len(v.Held))
	copy(order, v.Held)
	sort.SliceStable(order, func(i, j int) bool {
		pi, pj := g.Priority[order[i].Class], g.Priority[order[j].Class]
		if pi != pj {
			return pi > pj
		}
		return order[i].SubmitTime < order[j].SubmitTime
	})

	var out []engine.QueryID
	for _, qi := range order {
		grp := g.Thresholds.GroupOf(qi.Cost)
		if cap, capped := g.MaxConcurrent[grp]; capped && running[grp] >= cap {
			continue
		}
		if qi.Cost > budget {
			continue
		}
		budget -= qi.Cost
		running[grp]++
		out = append(out, qi.ID)
	}
	return out
}

// DefaultGroupCaps returns the typical DB2 QP configuration the paper
// describes: one large query at a time, a few mediums, many smalls.
func DefaultGroupCaps() map[Group]int {
	return map[Group]int{Large: 1, Medium: 3, Small: 12}
}

// ReleaseAll unconditionally releases every held query — the drain policy
// a controller installs at shutdown so nothing stays blocked forever.
type ReleaseAll struct{}

// SelectReleases implements Policy.
func (ReleaseAll) SelectReleases(v *View) []engine.QueryID {
	out := make([]engine.QueryID, 0, len(v.Held))
	for _, qi := range v.Held {
		out = append(out, qi.ID)
	}
	return out
}
