package patroller

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/simclock"
)

// retryRig arms a retry policy on a patroller whose policy releases
// everything, so queries flow and timeouts are exercised.
func retryRig(rp RetryPolicy) (*Patroller, *engine.Engine, *simclock.Clock) {
	p, eng, clock := newRig(1)
	p.SetPolicy(ReleaseAll{})
	p.SetRetryPolicy(&rp)
	return p, eng, clock
}

func TestAbortedManagedQueryIsRetriedAndCompletes(t *testing.T) {
	p, eng, clock := retryRig(RetryPolicy{MaxAttempts: 3, Backoff: 2})
	query := q(1, 100, 10)
	var retries []*QueryInfo
	p.OnRetry = func(qi *QueryInfo) { retries = append(retries, qi) }
	eng.Submit(query)
	clock.After(4, func() { eng.Abort(query) })
	clock.Run()
	st := p.Stats()
	if st.Failed != 1 || st.Retried != 1 || st.Exhausted != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(retries) != 1 || retries[0].Attempt != 0 {
		t.Fatalf("retry hook saw %+v", retries)
	}
	if st.Completed != 1 {
		t.Fatalf("retry never completed: %+v", st)
	}
	// Failed attempt's row stays Failed; the retry has its own row.
	table := p.ControlTable()
	if len(table) != 2 || table[0].State != Failed || table[1].State != Completed {
		t.Fatalf("control table = %+v", table)
	}
	if table[1].Attempt != 1 {
		t.Fatalf("retry row attempt = %d", table[1].Attempt)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	p, eng, clock := retryRig(RetryPolicy{MaxAttempts: 2, Backoff: 1})
	// Abort every execution attempt as it starts (plus a bit).
	eng.OnStart(func(query *engine.Query) {
		clock.After(1, func() { eng.Abort(query) })
	})
	eng.Submit(q(1, 100, 10))
	clock.Run()
	st := p.Stats()
	if st.Failed != 2 || st.Retried != 1 || st.Exhausted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Completed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for _, qi := range p.ControlTable() {
		if qi.State != Failed {
			t.Fatalf("row state = %v, want Failed", qi.State)
		}
	}
}

func TestTimeoutAbortsOverrunningQuery(t *testing.T) {
	p, eng, clock := retryRig(RetryPolicy{
		MaxAttempts: 3, Backoff: 1, TimeoutFloor: 5, TimeoutPerCost: 0.01,
	})
	// Cost 100 -> timeout 6s; work 20s overruns it.
	eng.Submit(q(1, 100, 20))
	clock.RunUntil(6.5)
	st := p.Stats()
	if st.TimedOut != 1 || st.Failed != 1 || st.Retried != 1 {
		t.Fatalf("stats = %+v", st)
	}
	clock.Run()
	// Attempt 2 times out too; the final attempt runs untimed and wins.
	st = p.Stats()
	if st.TimedOut != 2 || st.Exhausted != 0 || st.Completed != 1 {
		t.Fatalf("final stats = %+v", st)
	}
}

func TestTimeoutRefreshesCostForRetry(t *testing.T) {
	rp := RetryPolicy{
		MaxAttempts: 3, Backoff: 1, TimeoutFloor: 5, TimeoutPerCost: 0.01,
		RefreshCost: func(failed *engine.Query) float64 { return failed.Cost * 3 },
	}
	p, eng, clock := retryRig(rp)
	eng.Submit(q(1, 100, 8))
	clock.Run()
	table := p.ControlTable()
	if len(table) != 2 {
		t.Fatalf("control table = %+v", table)
	}
	if table[1].Cost != 300 {
		t.Fatalf("retry cost = %v, want 300 after refresh", table[1].Cost)
	}
	// Refreshed cost also grows the retry's timeout (5 + 0.01*300 = 8s),
	// enough for the 8s work to finish on attempt 2.
	if st := p.Stats(); st.Completed != 1 || st.TimedOut != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCompletionCancelsPendingTimeout(t *testing.T) {
	p, eng, clock := retryRig(RetryPolicy{
		MaxAttempts: 3, TimeoutFloor: 100, TimeoutPerCost: 0.01,
	})
	eng.Submit(q(1, 100, 10))
	clock.Run()
	st := p.Stats()
	if st.TimedOut != 0 || st.Failed != 0 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(p.timeouts) != 0 {
		t.Fatalf("%d timeout events leaked", len(p.timeouts))
	}
}

func TestUnmanagedAbortIsNotClaimed(t *testing.T) {
	p, eng, clock := retryRig(RetryPolicy{MaxAttempts: 3, Backoff: 1})
	unmanaged := q(9, 100, 10)
	var terminal bool
	eng.OnDone(func(query *engine.Query) {
		if query == unmanaged && query.State == engine.StateFailed {
			terminal = true
		}
	})
	eng.Submit(unmanaged)
	clock.After(2, func() { eng.Abort(unmanaged) })
	clock.Run()
	if !terminal {
		t.Fatal("unmanaged abort was claimed by the patroller")
	}
	if st := p.Stats(); st.Failed != 0 || st.Retried != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvalidRetryPolicyPanics(t *testing.T) {
	p, _, _ := newRig(1)
	defer func() {
		if recover() == nil {
			t.Fatal("MaxAttempts 0 accepted")
		}
	}()
	p.SetRetryPolicy(&RetryPolicy{MaxAttempts: 0})
}
