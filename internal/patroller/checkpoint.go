// Checkpoint support: the patroller's control table, hold queue, active
// set, pending timeouts, and pending retry resubmissions export to plain
// data and restore onto a freshly constructed patroller. Restore must run
// after the engine's checkpoint restore (active entries re-link to the
// engine's rebuilt query objects) and after the clock restore (timeout
// and retry events are re-armed with their original triples).
package patroller

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/simclock"
)

// TimeoutRecord is one armed per-query timeout.
type TimeoutRecord struct {
	Query engine.QueryID
	Ref   simclock.EventRef
}

// RetryRecord is one pending retry resubmission; Old is the failed
// attempt the resubmission clones.
type RetryRecord struct {
	Ref simclock.EventRef
	Old engine.QueryRecord
}

// CheckpointState is the patroller's serializable state at a quiescent
// boundary.
type CheckpointState struct {
	Table []QueryInfo // every control-table row, in arrival order
	// Order lists the currently held query ids in arrival order; Held[i]
	// is Order[i]'s queued engine query.
	Order    []engine.QueryID
	Held     []engine.QueryRecord
	Active   []engine.QueryID // sorted; re-linked to the engine on restore
	Stats    Stats
	Timeouts []TimeoutRecord // sorted by query id
	Retries  []RetryRecord   // sorted by event seq
}

// CheckpointState captures the patroller. It panics on a non-quiescent
// patroller (a poke event pending means an event at the current time has
// not fired yet, so this is not a checkpointable boundary).
func (p *Patroller) CheckpointState() CheckpointState {
	if p.pokePending {
		panic("patroller: checkpoint at a non-quiescent boundary (poke pending)")
	}
	st := CheckpointState{Stats: p.stats}
	for _, info := range p.table {
		st.Table = append(st.Table, *info)
	}
	p.compactAllOrder()
	for _, id := range p.order {
		e := p.held[id]
		st.Order = append(st.Order, id)
		st.Held = append(st.Held, engine.RecordQuery(e.q))
	}
	for id := range p.active {
		st.Active = append(st.Active, id)
	}
	sort.Slice(st.Active, func(i, j int) bool { return st.Active[i] < st.Active[j] })
	for id, evt := range p.timeouts {
		ref, ok := p.clock.Ref(evt)
		if !ok {
			panic(fmt.Sprintf("patroller: timeout for query %d not pending in clock", id))
		}
		st.Timeouts = append(st.Timeouts, TimeoutRecord{Query: id, Ref: ref})
	}
	sort.Slice(st.Timeouts, func(i, j int) bool { return st.Timeouts[i].Query < st.Timeouts[j].Query })
	for _, pr := range p.retries {
		st.Retries = append(st.Retries, RetryRecord{Ref: pr.ref, Old: engine.RecordQuery(pr.old)})
	}
	sort.Slice(st.Retries, func(i, j int) bool { return st.Retries[i].Ref.Seq < st.Retries[j].Ref.Seq })
	return st
}

// compactAllOrder drops every stale id from the arrival-order list
// (unconditional version of compactOrder, for checkpointing).
func (p *Patroller) compactAllOrder() {
	kept := p.order[:0]
	for _, id := range p.order {
		if _, ok := p.held[id]; ok {
			kept = append(kept, id)
		}
	}
	p.order = kept
}

// RestoreCheckpoint overwrites a freshly constructed patroller with a
// checkpointed state. Hooks, policy, retry policy, and overhead settings
// are not restored here — the caller re-attaches them by re-running the
// same construction sequence as the checkpointed run.
func (p *Patroller) RestoreCheckpoint(st CheckpointState) {
	if len(p.table) != 0 {
		panic("patroller: checkpoint restore onto a used patroller")
	}
	p.stats = st.Stats
	rows := make(map[engine.QueryID]*QueryInfo, len(st.Table))
	for i := range st.Table {
		info := st.Table[i] // copy out of the state slice
		row := &info
		p.table = append(p.table, row)
		rows[row.ID] = row
	}
	p.order = append([]engine.QueryID(nil), st.Order...)
	for i, id := range st.Order {
		row, ok := rows[id]
		if !ok {
			panic(fmt.Sprintf("patroller: restore: held query %d has no control-table row", id))
		}
		p.held[id] = &entry{info: row, q: engine.RebuildQuery(st.Held[i])}
	}
	for _, id := range st.Active {
		row, ok := rows[id]
		if !ok {
			panic(fmt.Sprintf("patroller: restore: active query %d has no control-table row", id))
		}
		q := p.eng.ActiveQuery(id)
		if q == nil {
			panic(fmt.Sprintf("patroller: restore: active query %d not executing in engine", id))
		}
		p.active[id] = &entry{info: row, q: q}
	}
	for _, tr := range st.Timeouts {
		q := p.eng.ActiveQuery(tr.Query)
		if q == nil {
			panic(fmt.Sprintf("patroller: restore: timed query %d not executing in engine", tr.Query))
		}
		p.clock.RestoreEvent(tr.Ref, p.timeoutFn(q))
		p.timeouts[tr.Query] = tr.Ref.ID
	}
	if len(st.Retries) > 0 && p.retries == nil {
		p.retries = make(map[uint64]*pendingRetry)
	}
	for _, rr := range st.Retries {
		pr := &pendingRetry{ref: rr.Ref, old: engine.RebuildQuery(rr.Old)}
		p.clock.RestoreEvent(rr.Ref, p.retryFn(pr))
		p.retries[pr.ref.Seq] = pr
	}
}
