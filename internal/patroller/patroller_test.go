package patroller

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/simclock"
)

func newRig(managed ...engine.ClassID) (*Patroller, *engine.Engine, *simclock.Clock) {
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 100, IOCapacity: 100}, clock)
	p := New(eng, managed...)
	return p, eng, clock
}

func q(class engine.ClassID, cost, work float64) *engine.Query {
	return &engine.Query{
		Class:  class,
		Cost:   cost,
		Demand: engine.Demand{Work: work, CPURate: 1},
	}
}

func TestUnmanagedClassPassesThrough(t *testing.T) {
	p, eng, _ := newRig(1)
	query := q(2, 100, 10)
	eng.Submit(query)
	if query.State != engine.StateExecuting {
		t.Fatalf("unmanaged query state = %v", query.State)
	}
	if p.HeldCount() != 0 || len(p.ControlTable()) != 0 {
		t.Fatal("unmanaged query recorded")
	}
}

func TestManagedQueryHeldWithoutPolicy(t *testing.T) {
	p, eng, clock := newRig(1)
	query := q(1, 100, 10)
	eng.Submit(query)
	if query.State != engine.StateQueued {
		t.Fatalf("state = %v, want queued", query.State)
	}
	clock.RunUntil(5)
	if query.State != engine.StateQueued {
		t.Fatal("query started without a release")
	}
	if p.HeldCount() != 1 {
		t.Fatalf("HeldCount = %d", p.HeldCount())
	}
}

func TestExplicitRelease(t *testing.T) {
	p, eng, clock := newRig(1)
	query := q(1, 100, 10)
	eng.Submit(query)
	clock.RunUntil(3)
	if err := p.Release(query.ID); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	if query.State != engine.StateDone {
		t.Fatalf("state = %v", query.State)
	}
	info := p.ControlTable()[0]
	if info.State != Completed {
		t.Fatalf("control table state = %v", info.State)
	}
	if info.ReleaseTime != 3 || info.SubmitTime != 0 {
		t.Fatalf("times = %+v", info)
	}
	if info.WaitTime(clock.Now()) != 3 {
		t.Fatalf("wait = %v, want 3", info.WaitTime(clock.Now()))
	}
}

func TestReleaseUnknownFails(t *testing.T) {
	p, _, _ := newRig(1)
	if err := p.Release(999); err == nil {
		t.Fatal("release of unknown query succeeded")
	}
}

func TestDoubleReleaseFails(t *testing.T) {
	p, eng, _ := newRig(1)
	query := q(1, 100, 10)
	eng.Submit(query)
	if err := p.Release(query.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(query.ID); err == nil {
		t.Fatal("double release succeeded")
	}
}

func TestSystemLimitPolicyAdmitsWithinBudget(t *testing.T) {
	p, eng, clock := newRig(1)
	p.SetPolicy(SystemLimit{Limit: 250})
	a, b, c := q(1, 100, 10), q(1, 100, 10), q(1, 100, 10)
	eng.Submit(a)
	eng.Submit(b)
	eng.Submit(c)
	clock.RunUntil(0.001) // let the deferred poke run
	if a.State != engine.StateExecuting || b.State != engine.StateExecuting {
		t.Fatal("first two queries should be admitted (200 <= 250)")
	}
	if c.State != engine.StateQueued {
		t.Fatal("third query should wait (300 > 250)")
	}
	clock.RunUntil(11) // a and b finish, freeing budget
	if c.State == engine.StateQueued {
		t.Fatal("third query not released after completions")
	}
}

func TestSystemLimitSkipsOversizedQueries(t *testing.T) {
	p, eng, clock := newRig(1)
	p.SetPolicy(SystemLimit{Limit: 100})
	big := q(1, 500, 10)
	small := q(1, 50, 10)
	eng.Submit(big)
	eng.Submit(small)
	clock.RunUntil(1)
	if big.State != engine.StateQueued {
		t.Fatal("oversized query must never run")
	}
	if small.State == engine.StateQueued {
		t.Fatal("small query blocked behind oversized head")
	}
}

func TestArrivalOrderRespected(t *testing.T) {
	p, eng, clock := newRig(1)
	p.SetPolicy(SystemLimit{Limit: 100})
	first := q(1, 80, 10)
	second := q(1, 80, 5)
	eng.Submit(first)
	eng.Submit(second)
	clock.RunUntil(0.001)
	if first.State != engine.StateExecuting || second.State != engine.StateQueued {
		t.Fatal("arrival order violated")
	}
	_ = p
}

func TestInterceptOverheadInflatesDemand(t *testing.T) {
	p, eng, clock := newRig(1)
	p.InterceptOverheadCPU = 5
	p.SetPolicy(SystemLimit{Limit: 1000})
	query := q(1, 10, 10)
	eng.Submit(query)
	clock.Run()
	if got := query.ExecutionTime(); got < 14.9 {
		t.Fatalf("exec = %v, want ~15 with overhead", got)
	}
}

func TestCallbacksFire(t *testing.T) {
	p, eng, clock := newRig(1)
	var arrivals, releases, dones []engine.QueryID
	p.OnArrival = func(qi *QueryInfo) { arrivals = append(arrivals, qi.ID) }
	p.OnRelease = func(qi *QueryInfo) { releases = append(releases, qi.ID) }
	p.OnManagedDone = func(qi *QueryInfo) { dones = append(dones, qi.ID) }
	p.SetPolicy(SystemLimit{Limit: 1000})
	query := q(1, 10, 1)
	eng.Submit(query)
	clock.Run()
	if len(arrivals) != 1 || len(releases) != 1 || len(dones) != 1 {
		t.Fatalf("callbacks = %d/%d/%d", len(arrivals), len(releases), len(dones))
	}
}

func TestStatsAccumulate(t *testing.T) {
	p, eng, clock := newRig(1)
	p.SetPolicy(SystemLimit{Limit: 100})
	a, b := q(1, 80, 10), q(1, 80, 10)
	eng.Submit(a)
	eng.Submit(b)
	clock.Run()
	st := p.Stats()
	if st.Intercepted != 2 || st.Released != 2 || st.Completed != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WaitSeconds <= 0 {
		t.Fatal("second query must have waited")
	}
}

func TestActiveCostByClass(t *testing.T) {
	p, eng, clock := newRig(1, 2)
	p.SetPolicy(SystemLimit{Limit: 1000})
	eng.Submit(q(1, 100, 50))
	eng.Submit(q(2, 70, 50))
	clock.RunUntil(0.001)
	m := p.ActiveCostByClass()
	if m[1] != 100 || m[2] != 70 {
		t.Fatalf("ActiveCostByClass = %v", m)
	}
	if p.ActiveCount() != 2 {
		t.Fatalf("ActiveCount = %d", p.ActiveCount())
	}
}

func TestPolicySwapTriggersReevaluation(t *testing.T) {
	p, eng, clock := newRig(1)
	p.SetPolicy(SystemLimit{Limit: 10}) // too small to admit
	query := q(1, 100, 5)
	eng.Submit(query)
	clock.RunUntil(1)
	if query.State != engine.StateQueued {
		t.Fatal("query admitted beyond limit")
	}
	p.SetPolicy(SystemLimit{Limit: 1000})
	if query.State != engine.StateExecuting {
		t.Fatal("policy swap did not release")
	}
}

func TestViewDeterministicOrder(t *testing.T) {
	p, eng, clock := newRig(1)
	for i := 0; i < 20; i++ {
		eng.Submit(q(1, float64(i+1), 10))
	}
	clock.RunUntil(0.001)
	v := p.view()
	for i := 1; i < len(v.Held); i++ {
		if v.Held[i].SubmitTime < v.Held[i-1].SubmitTime {
			t.Fatal("held queries out of arrival order")
		}
	}
}

func TestCompactOrderKeepsHeldQueries(t *testing.T) {
	p, eng, clock := newRig(1)
	p.SetPolicy(SystemLimit{Limit: 150})
	// Churn many small queries through while one oversized query stays
	// held, forcing order compaction.
	big := q(1, 500, 1)
	eng.Submit(big)
	for i := 0; i < 100; i++ {
		eng.Submit(q(1, 100, 0.1))
		clock.RunUntil(clock.Now() + 0.2)
	}
	if big.State != engine.StateQueued {
		t.Fatal("oversized query should still be held")
	}
	v := p.view()
	if len(v.Held) != 1 || v.Held[0].ID != big.ID {
		t.Fatalf("view lost the held query after compaction: %d held", len(v.Held))
	}
}

func TestGroupThresholds(t *testing.T) {
	costs := make([]float64, 100)
	for i := range costs {
		costs[i] = float64(i + 1) // 1..100
	}
	th := ThresholdsFromSample(costs)
	if th.MediumMin <= 75 || th.MediumMin > 85 {
		t.Fatalf("MediumMin = %v, want ~80th percentile", th.MediumMin)
	}
	if th.LargeMin <= 90 || th.LargeMin > 97 {
		t.Fatalf("LargeMin = %v, want ~95th percentile", th.LargeMin)
	}
	if th.GroupOf(10) != Small || th.GroupOf(th.MediumMin) != Medium || th.GroupOf(99) != Large {
		t.Fatal("group classification wrong")
	}
}

func TestGroupPriorityReleasesHigherClassFirst(t *testing.T) {
	p, eng, clock := newRig(1, 2)
	pol := GroupPriority{
		TotalLimit:    100,
		Thresholds:    GroupThresholds{MediumMin: 1e9, LargeMin: 1e9},
		MaxConcurrent: map[Group]int{},
		Priority:      map[engine.ClassID]int{1: 1, 2: 2},
	}
	p.SetPolicy(pol)
	low := q(1, 80, 10)
	high := q(2, 80, 10)
	eng.Submit(low) // arrives first
	eng.Submit(high)
	clock.RunUntil(0.001)
	if high.State != engine.StateExecuting {
		t.Fatal("high-priority class not released first")
	}
	if low.State != engine.StateQueued {
		t.Fatal("low-priority class released beyond budget")
	}
}

func TestGroupPriorityEqualPriorityFIFO(t *testing.T) {
	p, eng, clock := newRig(1, 2)
	p.SetPolicy(GroupPriority{
		TotalLimit: 100,
		Thresholds: GroupThresholds{MediumMin: 1e9, LargeMin: 1e9},
	})
	first := q(2, 80, 10)
	second := q(1, 80, 10)
	eng.Submit(first)
	eng.Submit(second)
	clock.RunUntil(0.001)
	if first.State != engine.StateExecuting || second.State != engine.StateQueued {
		t.Fatal("equal priorities must fall back to arrival order")
	}
}

func TestGroupPriorityConcurrencyCaps(t *testing.T) {
	p, eng, clock := newRig(1)
	p.SetPolicy(GroupPriority{
		TotalLimit:    1e9,
		Thresholds:    GroupThresholds{MediumMin: 50, LargeMin: 100},
		MaxConcurrent: map[Group]int{Large: 1, Medium: 2},
	})
	larges := []*engine.Query{q(1, 200, 10), q(1, 200, 10)}
	mediums := []*engine.Query{q(1, 60, 10), q(1, 60, 10), q(1, 60, 10)}
	small := q(1, 10, 10)
	for _, query := range append(append([]*engine.Query{}, larges...), mediums...) {
		eng.Submit(query)
	}
	eng.Submit(small)
	clock.RunUntil(0.001)
	if larges[0].State != engine.StateExecuting || larges[1].State != engine.StateQueued {
		t.Fatal("large cap violated")
	}
	running := 0
	for _, m := range mediums {
		if m.State == engine.StateExecuting {
			running++
		}
	}
	if running != 2 {
		t.Fatalf("%d mediums running, want 2", running)
	}
	if small.State != engine.StateExecuting {
		t.Fatal("uncapped small blocked")
	}
}

func TestGroupPriorityRespectsBudgetAcrossGroups(t *testing.T) {
	p, eng, clock := newRig(1)
	p.SetPolicy(GroupPriority{
		TotalLimit: 100,
		Thresholds: GroupThresholds{MediumMin: 50, LargeMin: 1000},
	})
	eng.Submit(q(1, 60, 10))
	blocked := q(1, 60, 10)
	eng.Submit(blocked)
	clock.RunUntil(0.001)
	if blocked.State != engine.StateQueued {
		t.Fatal("budget exceeded across groups")
	}
}

func TestDefaultGroupCaps(t *testing.T) {
	caps := DefaultGroupCaps()
	if caps[Large] != 1 || caps[Medium] <= caps[Large] || caps[Small] <= caps[Medium] {
		t.Fatalf("caps = %v; want progressively looser", caps)
	}
}

func TestPolicyFuncAdapter(t *testing.T) {
	called := false
	var pf Policy = PolicyFunc(func(v *View) []engine.QueryID {
		called = true
		return nil
	})
	pf.SelectReleases(&View{})
	if !called {
		t.Fatal("PolicyFunc did not delegate")
	}
}

func TestViewAggregates(t *testing.T) {
	v := &View{Active: []*QueryInfo{
		{ID: 1, Class: 1, Cost: 10},
		{ID: 2, Class: 2, Cost: 20},
		{ID: 3, Class: 1, Cost: 5},
	}}
	if v.ActiveCost() != 35 {
		t.Fatalf("ActiveCost = %v", v.ActiveCost())
	}
	by := v.ActiveCostByClass()
	if by[1] != 15 || by[2] != 20 {
		t.Fatalf("ActiveCostByClass = %v", by)
	}
}
