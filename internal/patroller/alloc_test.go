//go:build !race

package patroller

import (
	"testing"

	"repro/internal/engine"
)

// TestViewAllocFree pins the hotalloc fix that replaced view()'s
// per-poke sort.Slice closure with an insertion sort: assembling the
// policy view must not allocate once its scratch slices are warm.
// (Skipped under -race: instrumentation adds its own allocations.)
func TestViewAllocFree(t *testing.T) {
	p, eng, _ := newRig(1)
	for i := 0; i < 8; i++ {
		eng.Submit(q(1, 100, 1000))
	}
	// Release half so the view carries both held and active entries.
	ids := append([]engine.QueryID(nil), p.order[:4]...)
	for _, id := range ids {
		if err := p.Release(id); err != nil {
			t.Fatalf("release %d: %v", id, err)
		}
	}
	_ = p.view() // warm-up grows the scratch slices
	allocs := testing.AllocsPerRun(100, func() { _ = p.view() })
	if allocs != 0 {
		t.Fatalf("view() allocates %v per poke; the dispatch path must be allocation-free", allocs)
	}
}
