package patroller

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/simclock"
)

// TestSystemLimitInvariantProperty drives random arrival patterns through
// the SystemLimit policy and asserts the core admission invariant: the
// total cost of executing managed queries never exceeds the limit, at any
// instant, regardless of arrival order, costs, or service times.
func TestSystemLimitInvariantProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := seed
		next := func() float64 {
			r = r*1664525 + 1013904223
			return float64(r%1000)/1000.0 + 1e-3
		}
		clock := simclock.New()
		eng := engine.New(engine.Config{CPUCapacity: 2, IOCapacity: 4}, clock)
		p := New(eng, 1)
		limit := 500 + next()*2000
		p.SetPolicy(SystemLimit{Limit: limit})

		violated := false
		check := func() {
			total := 0.0
			for _, c := range p.ActiveCostByClass() {
				total += c
			}
			if total > limit+1e-6 {
				violated = true
			}
		}
		p.OnRelease = func(*QueryInfo) { check() }

		n := int(next()*40) + 5
		for i := 0; i < n; i++ {
			cost := next() * limit * 1.2 // some queries exceed the limit outright
			work := next() * 5
			at := next() * 30
			clock.At(at, func() {
				eng.Submit(&engine.Query{
					Class:  1,
					Cost:   cost,
					Demand: engine.Demand{Work: work, CPURate: 1},
				})
			})
		}
		clock.RunUntil(500)
		check()
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupPriorityInvariantProperty does the same for the QP baseline,
// additionally asserting the per-group concurrency caps.
func TestGroupPriorityInvariantProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := seed
		next := func() float64 {
			r = r*1664525 + 1013904223
			return float64(r%1000)/1000.0 + 1e-3
		}
		clock := simclock.New()
		eng := engine.New(engine.Config{CPUCapacity: 2, IOCapacity: 4}, clock)
		p := New(eng, 1, 2)
		limit := 1000 + next()*3000
		th := GroupThresholds{MediumMin: limit / 5, LargeMin: limit / 2}
		caps := map[Group]int{Large: 1, Medium: 2, Small: 5}
		p.SetPolicy(GroupPriority{
			TotalLimit:    limit,
			Thresholds:    th,
			MaxConcurrent: caps,
			Priority:      map[engine.ClassID]int{1: 1, 2: 2},
		})

		violated := false
		check := func() {
			total := 0.0
			running := map[Group]int{}
			for _, e := range p.active {
				total += e.info.Cost
				running[th.GroupOf(e.info.Cost)]++
			}
			if total > limit+1e-6 {
				violated = true
			}
			for g, cap := range caps {
				if running[g] > cap {
					violated = true
				}
			}
		}
		p.OnRelease = func(*QueryInfo) { check() }

		n := int(next()*40) + 5
		for i := 0; i < n; i++ {
			cost := next() * limit
			work := next() * 5
			class := engine.ClassID(1 + int(next()*2)%2)
			at := next() * 30
			clock.At(at, func() {
				eng.Submit(&engine.Query{
					Class:  class,
					Cost:   cost,
					Demand: engine.Demand{Work: work, CPURate: 1},
				})
			})
		}
		clock.RunUntil(500)
		check()
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
