// Package patroller reimplements the slice of IBM DB2 Query Patroller the
// paper depends on: it intercepts queries of managed classes before
// execution, records their identification, cost, and timing in a control
// table, blocks the agent responsible for the query, and releases it when
// told to — either by its own static policy (the paper's DB2 QP baseline)
// or by an external controller calling the unblocking API (how the Query
// Scheduler drives it).
package patroller

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/simclock"
)

// QueryState tracks an intercepted query through the control table.
type QueryState int

// Control-table states.
const (
	Held QueryState = iota
	Running
	Completed
	// Failed marks a query aborted during execution. A retried query
	// gets a fresh control-table row; the failed row stays Failed.
	Failed
	// Evacuated marks a query pulled off this backend by a fleet
	// failover. The query lives on — re-dispatched to a survivor, where
	// it gets a fresh row — but this backend's row is closed.
	Evacuated
)

func (s QueryState) String() string {
	switch s {
	case Held:
		return "held"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	case Evacuated:
		return "evacuated"
	default:
		return fmt.Sprintf("QueryState(%d)", int(s))
	}
}

// QueryInfo is one control-table row: what the Monitor can learn about an
// intercepted query.
type QueryInfo struct {
	ID          engine.QueryID
	Client      engine.ClientID
	Class       engine.ClassID
	Template    string
	Cost        float64 // optimizer timeron estimate
	SubmitTime  simclock.Time
	ReleaseTime simclock.Time
	DoneTime    simclock.Time
	State       QueryState
	// Attempt is 0 for the first submission, counting up per retry.
	Attempt int
}

// WaitTime returns how long the query was (or has been) blocked.
func (qi *QueryInfo) WaitTime(now simclock.Time) float64 {
	if qi.State == Held {
		return now - qi.SubmitTime
	}
	return qi.ReleaseTime - qi.SubmitTime
}

// View is the patroller state a Policy decides over.
type View struct {
	Now simclock.Time
	// Held lists blocked queries in arrival order.
	Held []*QueryInfo
	// Active lists managed queries currently executing.
	Active []*QueryInfo
}

// ActiveCost sums the timeron cost of all executing managed queries.
func (v *View) ActiveCost() float64 {
	total := 0.0
	for _, qi := range v.Active {
		total += qi.Cost
	}
	return total
}

// ActiveCostByClass sums executing cost per class.
func (v *View) ActiveCostByClass() map[engine.ClassID]float64 {
	m := make(map[engine.ClassID]float64)
	for _, qi := range v.Active {
		m[qi.Class] += qi.Cost
	}
	return m
}

// Policy selects which held queries to release, given the current view.
// It is invoked on every arrival and completion of a managed query (and on
// explicit Poke calls). Returning IDs not currently held is an error.
type Policy interface {
	SelectReleases(v *View) []engine.QueryID
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(v *View) []engine.QueryID

// SelectReleases implements Policy.
func (f PolicyFunc) SelectReleases(v *View) []engine.QueryID { return f(v) }

// Stats counts patroller activity.
type Stats struct {
	Intercepted uint64
	Released    uint64
	Completed   uint64
	// WaitSeconds accumulates total blocked time of released queries.
	WaitSeconds float64
	// Failed counts managed queries aborted mid-execution (fault or
	// timeout), whether or not they were retried afterwards.
	Failed uint64
	// TimedOut counts aborts issued by the patroller's own per-query
	// timeout (a subset of Failed).
	TimedOut uint64
	// Retried counts failed attempts that were re-queued.
	Retried uint64
	// Exhausted counts queries whose failure was terminal because the
	// retry budget was spent (or no retry policy was armed).
	Exhausted uint64
	// Evacuated counts control-table rows closed because a fleet
	// failover pulled the query off this backend (held, executing, or
	// awaiting retry).
	Evacuated uint64
}

// Add folds another stats block into s — fleet runs sum their
// per-backend patrollers' counters into one run-level block.
func (s *Stats) Add(o Stats) {
	s.Intercepted += o.Intercepted
	s.Released += o.Released
	s.Completed += o.Completed
	s.WaitSeconds += o.WaitSeconds
	s.Failed += o.Failed
	s.TimedOut += o.TimedOut
	s.Retried += o.Retried
	s.Exhausted += o.Exhausted
	s.Evacuated += o.Evacuated
}

// RetryPolicy arms the patroller's per-query timeout and bounded-retry
// mitigation. Without a policy a managed query's abort is always
// terminal.
type RetryPolicy struct {
	// MaxAttempts is the total number of execution attempts a query may
	// consume (first run included); must be >= 1.
	MaxAttempts int
	// Backoff spaces retries deterministically: attempt n (1-based
	// retry count) is resubmitted Backoff*n virtual seconds after its
	// failure.
	Backoff float64
	// TimeoutFloor + TimeoutPerCost*cost is the execution budget armed
	// at release: a query still executing past it is aborted and
	// retried. TimeoutPerCost 0 disables timeouts (aborts still retry).
	// The final permitted attempt runs without a timeout so a
	// misestimated query is guaranteed to finish eventually.
	TimeoutFloor   float64
	TimeoutPerCost float64
	// RefreshCost, when set, re-estimates a failed query's timeron cost
	// before the retry is re-queued — the post-mortem re-cost that lets
	// the dispatcher admit the retry under its true footprint. Nil keeps
	// the original estimate.
	RefreshCost func(*engine.Query) float64
}

func (rp RetryPolicy) validate() error {
	if rp.MaxAttempts < 1 {
		return fmt.Errorf("patroller: retry MaxAttempts %d must be >= 1", rp.MaxAttempts)
	}
	if rp.Backoff < 0 || rp.TimeoutFloor < 0 || rp.TimeoutPerCost < 0 {
		return fmt.Errorf("patroller: negative retry timing (backoff %v, floor %v, per-cost %v)",
			rp.Backoff, rp.TimeoutFloor, rp.TimeoutPerCost)
	}
	return nil
}

// Patroller is the workload controller. Construct with New, then attach a
// Policy (or drive releases externally) and it manages every query whose
// class is in its managed set; all other queries pass straight through.
type Patroller struct {
	eng     *engine.Engine
	clock   *simclock.Clock
	managed map[engine.ClassID]bool
	//lint:ignore ckptcover wiring: the policy is re-attached by construction on restore
	policy Policy

	held        map[engine.QueryID]*entry
	order       []engine.QueryID // arrival order of held queries (may hold stale IDs)
	active      map[engine.QueryID]*entry
	table       []*QueryInfo
	stats       Stats
	pokePending bool
	pokeFn      simclock.EventFunc // bound once; scheduling a poke allocates no closure
	//lint:ignore ckptcover recycled wrappers; freelist warm-up state is never part of a snapshot
	freeEntries []*entry // recycled held/active wrappers
	viewScratch View     // reused per poke; valid only during SelectReleases

	//lint:ignore ckptcover retry policy is configuration re-applied by construction, not runtime state
	retry    *RetryPolicy
	timeouts map[engine.QueryID]simclock.EventID
	retries  map[uint64]*pendingRetry // pending resubmissions by event seq
	//lint:ignore ckptcover transient flag set and consumed within one resubmit call chain; never true at a checkpoint boundary
	requeueHead bool // next Intercept joins the queue head (retry re-queue)

	// InterceptOverheadCPU, when positive, adds this many CPU-seconds to
	// every intercepted query — the per-query cost of interception and
	// management the paper measured to be prohibitive for sub-second OLTP
	// queries. Zero by default.
	//lint:ignore ckptcover experiment configuration set before the run starts, not runtime state
	InterceptOverheadCPU float64

	// OnArrival, when set, is called for every newly intercepted query
	// after it is recorded (the Query Scheduler's Monitor hook).
	OnArrival func(*QueryInfo)

	// OnRelease, when set, is called when a query starts executing.
	OnRelease func(*QueryInfo)

	// OnManagedDone, when set, is called when a managed query completes.
	OnManagedDone func(*QueryInfo)

	// OnRetry, when set, is called when a failed managed query is
	// re-queued; the info is the failed attempt's row (its Attempt field
	// counts the attempts consumed so far, starting at 0).
	OnRetry func(*QueryInfo)
}

type entry struct {
	info *QueryInfo
	q    *engine.Query
}

// acquireEntry pops a recycled wrapper or allocates one. Entries pair a
// control-table row with its live query only while the query is held or
// active; the row itself stays in the table forever, so only the wrapper
// is pooled.
func (p *Patroller) acquireEntry(info *QueryInfo, q *engine.Query) *entry {
	if n := len(p.freeEntries); n > 0 {
		e := p.freeEntries[n-1]
		p.freeEntries[n-1] = nil
		p.freeEntries = p.freeEntries[:n-1]
		e.info, e.q = info, q
		return e
	}
	//lint:ignore hotalloc pool growth: allocates only until the entry freelist reaches peak depth
	return &entry{info: info, q: q}
}

// releaseEntry returns a wrapper to the freelist once its query reached a
// terminal state and it has been removed from held/active.
func (p *Patroller) releaseEntry(e *entry) {
	e.info, e.q = nil, nil
	p.freeEntries = append(p.freeEntries, e)
}

// pendingRetry is one scheduled resubmission of a failed query.
type pendingRetry struct {
	ref simclock.EventRef
	old *engine.Query
}

// New builds a patroller on eng managing the given classes, installing
// itself as the engine's interceptor and completion listener.
func New(eng *engine.Engine, managed ...engine.ClassID) *Patroller {
	p := &Patroller{
		eng:      eng,
		clock:    eng.Clock(),
		managed:  make(map[engine.ClassID]bool),
		held:     make(map[engine.QueryID]*entry),
		active:   make(map[engine.QueryID]*entry),
		timeouts: make(map[engine.QueryID]simclock.EventID),
	}
	for _, c := range managed {
		p.managed[c] = true
	}
	eng.SetInterceptor(p)
	eng.OnDone(p.onDone)
	return p
}

// SetRetryPolicy arms timeout + bounded-retry handling for managed
// queries, claiming the engine's abort-handler slot. Passing nil disarms
// retries (aborts become terminal failures again) but keeps the handler
// so failed rows are still recorded.
func (p *Patroller) SetRetryPolicy(rp *RetryPolicy) {
	if rp != nil {
		if err := rp.validate(); err != nil {
			panic(err)
		}
		cp := *rp
		rp = &cp
	}
	p.retry = rp
	p.eng.SetAbortHandler(p.onAbort)
}

// RetryPolicy returns the armed policy (nil when retries are disarmed).
func (p *Patroller) RetryPolicy() *RetryPolicy { return p.retry }

// SetPolicy installs the release policy and immediately re-evaluates it.
func (p *Patroller) SetPolicy(pol Policy) {
	p.policy = pol
	p.Poke()
}

// Manages reports whether the patroller intercepts the class.
func (p *Patroller) Manages(c engine.ClassID) bool { return p.managed[c] }

// Intercept implements engine.Interceptor.
//
//qlint:hotpath
func (p *Patroller) Intercept(q *engine.Query) bool {
	if !p.managed[q.Class] {
		return false
	}
	if p.InterceptOverheadCPU > 0 {
		q.Demand = addCPUOverhead(q.Demand, p.InterceptOverheadCPU)
	}
	//lint:ignore hotalloc control-table rows outlive their query by design; one allocation per managed arrival
	info := &QueryInfo{
		ID:         q.ID,
		Client:     q.Client,
		Class:      q.Class,
		Template:   q.Template,
		Cost:       q.Cost,
		SubmitTime: p.clock.Now(),
		State:      Held,
		Attempt:    q.Attempt,
	}
	e := p.acquireEntry(info, q)
	//lint:ignore poolsafety the held table is the entry's owner; rows are deleted from it before releaseEntry recycles them
	p.held[q.ID] = e
	if p.requeueHead {
		// A retry re-queues at the head so the failed attempt's place in
		// line is not lost (head-of-line is per class, so only its own
		// class sees it first).
		//lint:ignore hotalloc retry re-queue at the head is rare and inherently builds a fresh order prefix
		p.order = append([]engine.QueryID{q.ID}, p.order...)
	} else {
		p.order = append(p.order, q.ID)
	}
	p.table = append(p.table, info)
	p.stats.Intercepted++
	if p.OnArrival != nil {
		p.OnArrival(info)
	}
	// Release decisions run in a fresh event so the engine's Submit call
	// finishes first (Start during Intercept would double-start).
	p.schedulePoke()
	return true
}

// addCPUOverhead grows a demand by pure CPU work, preserving its total I/O.
func addCPUOverhead(d engine.Demand, cpu float64) engine.Demand {
	cpuSec := d.CPUSeconds() + cpu
	ioSec := d.IOSeconds()
	work := d.Work + cpu // overhead is serial: it extends the critical path
	return engine.Demand{Work: work, CPURate: cpuSec / work, IORate: ioSec / work}
}

// onDone is the engine completion listener for managed queries.
//
//qlint:hotpath
func (p *Patroller) onDone(q *engine.Query) {
	e, ok := p.active[q.ID]
	if !ok {
		return
	}
	delete(p.active, q.ID)
	p.cancelTimeout(q.ID)
	e.info.DoneTime = p.clock.Now()
	if q.State != engine.StateDone {
		// Terminal failure that no abort handler intercepted (retries
		// were never armed): record the failed row, free the slot.
		e.info.State = Failed
		p.stats.Failed++
		p.stats.Exhausted++
		p.releaseEntry(e)
		p.schedulePoke()
		return
	}
	e.info.State = Completed
	p.stats.Completed++
	if p.OnManagedDone != nil {
		p.OnManagedDone(e.info)
	}
	p.releaseEntry(e)
	p.schedulePoke()
}

// onAbort is the engine's abort-handler: it retires the failed attempt's
// control-table row and, while the retry budget lasts, claims the abort
// and schedules a resubmission with deterministic backoff. Unmanaged
// queries and spent budgets return false (the abort is terminal).
//
//qlint:hotpath
func (p *Patroller) onAbort(q *engine.Query) bool {
	e, ok := p.active[q.ID]
	if !ok {
		return false
	}
	delete(p.active, q.ID)
	p.cancelTimeout(q.ID)
	e.info.State = Failed
	e.info.DoneTime = p.clock.Now()
	p.stats.Failed++
	rp := p.retry
	if rp == nil || q.Attempt+1 >= rp.MaxAttempts {
		p.stats.Exhausted++
		p.releaseEntry(e)
		p.schedulePoke()
		return false
	}
	p.stats.Retried++
	if p.OnRetry != nil {
		p.OnRetry(e.info)
	}
	delay := rp.Backoff * float64(q.Attempt+1)
	p.scheduleRetry(q, delay)
	p.releaseEntry(e)
	p.schedulePoke()
	return true
}

// scheduleRetry arms the backoff-delayed resubmission of a failed query,
// tracking the event so checkpoints can capture and restores re-arm it.
//
//qlint:coldpath per-retry bookkeeping that runs only after an abort, off the steady-state completion path
func (p *Patroller) scheduleRetry(old *engine.Query, delay float64) {
	pr := &pendingRetry{old: old}
	pr.ref = p.clock.AfterRef(delay, p.retryFn(pr))
	if p.retries == nil {
		p.retries = make(map[uint64]*pendingRetry)
	}
	p.retries[pr.ref.Seq] = pr
}

// retryFn builds the resubmission callback for one pending retry — shared
// by the live scheduling path and checkpoint restore.
func (p *Patroller) retryFn(pr *pendingRetry) simclock.EventFunc {
	return func() {
		delete(p.retries, pr.ref.Seq)
		if pr.old == nil {
			return // withdrawn by a fleet evacuation; the event fires empty
		}
		p.resubmit(pr.old)
	}
}

// resubmit re-queues a failed query as a fresh submission with a bumped
// attempt counter and a refreshed cost estimate. The engine assigns a new
// query ID; monitors skip Attempt > 0 arrivals, so system-level
// accounting sees one logical query.
//
//qlint:hotpath
func (p *Patroller) resubmit(old *engine.Query) {
	cost := old.Cost
	if p.retry != nil && p.retry.RefreshCost != nil {
		cost = p.retry.RefreshCost(old)
	}
	q := p.eng.AcquireQuery()
	q.Client = old.Client
	q.Class = old.Class
	q.Template = old.Template
	q.Cost = cost
	q.Demand = old.Demand
	q.Attempt = old.Attempt + 1
	// The failed attempt was claimed at abort time and is dead now that
	// its fields are copied; hand it back to the engine's freelist.
	p.eng.Recycle(old)
	p.requeueHead = true
	p.eng.Submit(q)
	p.requeueHead = false
}

// EvacuateHeld drains every held query, in arrival order, for failover
// re-dispatch: each row closes as Evacuated and the query object is
// reclaimed to StateNew so a surviving backend's engine accepts it as a
// fresh submission. Used by the router's health model when this
// patroller's backend dies.
func (p *Patroller) EvacuateHeld() []*engine.Query {
	if len(p.held) == 0 {
		return nil
	}
	out := make([]*engine.Query, 0, len(p.held))
	for _, id := range p.order {
		e, ok := p.held[id]
		if !ok {
			continue // stale ID left behind by compaction bookkeeping
		}
		delete(p.held, id)
		e.info.State = Evacuated
		e.info.DoneTime = p.clock.Now()
		q := e.q
		p.eng.Reclaim(q)
		p.stats.Evacuated++
		p.releaseEntry(e)
		out = append(out, q)
	}
	p.order = p.order[:0]
	return out
}

// EvacuateRetries withdraws every pending retry, in event-sequence
// order, for failover re-dispatch. The armed backoff events stay in the
// clock but fire empty (they are not cancellable), which keeps fresh
// and resumed runs byte-identical: an empty fire has no side effects.
func (p *Patroller) EvacuateRetries() []*engine.Query {
	if len(p.retries) == 0 {
		return nil
	}
	seqs := make([]uint64, 0, len(p.retries))
	for s := range p.retries {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]*engine.Query, 0, len(seqs))
	for _, s := range seqs {
		pr := p.retries[s]
		delete(p.retries, s)
		q := pr.old
		pr.old = nil
		p.eng.Reclaim(q)
		p.stats.Evacuated++
		out = append(out, q)
	}
	return out
}

// ForgetActive closes the control-table row of a query the engine
// evacuated out from under this patroller (fleet failover): the entry
// leaves the active set, its timeout disarms, and the row closes as
// Evacuated. Unmanaged or unknown IDs return false.
func (p *Patroller) ForgetActive(id engine.QueryID) bool {
	e, ok := p.active[id]
	if !ok {
		return false
	}
	delete(p.active, id)
	p.cancelTimeout(id)
	e.info.State = Evacuated
	e.info.DoneTime = p.clock.Now()
	p.stats.Evacuated++
	p.releaseEntry(e)
	return true
}

// cancelTimeout disarms a query's pending timeout event, if any.
func (p *Patroller) cancelTimeout(id engine.QueryID) {
	if evt, ok := p.timeouts[id]; ok {
		delete(p.timeouts, id)
		p.clock.Cancel(evt)
	}
}

// Release unblocks one held query — the explicit operator command of the
// DB2 QP API. External controllers (the Query Scheduler's dispatcher) call
// this; policies return IDs instead.
//
//qlint:hotpath
func (p *Patroller) Release(id engine.QueryID) error {
	e, ok := p.held[id]
	if !ok {
		//lint:ignore hotalloc error construction on the invalid-release path only
		return fmt.Errorf("patroller: query %d is not held", id)
	}
	delete(p.held, id)
	e.info.State = Running
	e.info.ReleaseTime = p.clock.Now()
	p.active[id] = e
	p.stats.Released++
	p.stats.WaitSeconds += e.info.ReleaseTime - e.info.SubmitTime
	p.armTimeout(e)
	if p.OnRelease != nil {
		p.OnRelease(e.info)
	}
	p.eng.Start(e.q)
	return nil
}

// armTimeout schedules the per-query execution budget at release time:
// TimeoutFloor + TimeoutPerCost * cost. The last permitted attempt runs
// untimed so a query whose budget is systematically too small (cost
// misestimation) still finishes.
func (p *Patroller) armTimeout(e *entry) {
	rp := p.retry
	if rp == nil || rp.TimeoutPerCost <= 0 || e.q.Attempt+1 >= rp.MaxAttempts {
		return
	}
	d := rp.TimeoutFloor + rp.TimeoutPerCost*e.info.Cost
	p.timeouts[e.q.ID] = p.clock.AfterCancellable(d, p.timeoutFn(e.q))
}

// timeoutFn builds the timeout callback for one released query — shared
// by the live arming path and checkpoint restore.
func (p *Patroller) timeoutFn(q *engine.Query) simclock.EventFunc {
	id := q.ID
	//lint:ignore hotalloc the timeout callback must capture its query; armed once per release, cancelled on completion
	return func() {
		delete(p.timeouts, id)
		// The id guard keeps a stale fire harmless even if the engine
		// recycled the object into a different query (completion and
		// abort both cancel the timeout, but a same-instant race still
		// dequeues the event).
		if q.ID != id || q.State != engine.StateExecuting {
			return
		}
		// Abort reports false when the query completes at this exact
		// instant (completion wins the tie); only a landed abort counts.
		if p.eng.Abort(q) {
			p.stats.TimedOut++
		}
	}
}

// schedulePoke coalesces policy evaluation into one zero-delay event.
func (p *Patroller) schedulePoke() {
	if p.pokePending || p.policy == nil {
		return
	}
	p.pokePending = true
	if p.pokeFn == nil {
		//lint:ignore hotalloc bound once and cached in p.pokeFn; never reallocated afterwards
		p.pokeFn = func() {
			p.pokePending = false
			p.Poke()
		}
	}
	p.clock.After(0, p.pokeFn)
}

// Poke synchronously evaluates the policy and applies its releases. It is
// a no-op without a policy.
//
//qlint:hotpath
func (p *Patroller) Poke() {
	if p.policy == nil {
		return
	}
	// Loop because releasing queries changes the view; policies that
	// return everything releasable at once converge in one round.
	for i := 0; i < maxPokeRounds; i++ {
		ids := p.policy.SelectReleases(p.view())
		if len(ids) == 0 {
			return
		}
		for _, id := range ids {
			if err := p.Release(id); err != nil {
				panic(err) // policy bug: released an unknown query
			}
		}
	}
}

const maxPokeRounds = 64

// view assembles the policy's decision input. The returned View (and its
// slices) is scratch space reused across pokes — policies must not retain
// it past SelectReleases.
func (p *Patroller) view() *View {
	v := &p.viewScratch
	v.Now = p.clock.Now()
	v.Held = v.Held[:0]
	v.Active = v.Active[:0]
	p.compactOrder()
	for _, id := range p.order {
		if e, ok := p.held[id]; ok {
			v.Held = append(v.Held, e.info)
		}
	}
	for _, e := range p.active { //lint:ignore hotalloc,maporder active is a map by design; the view is insertion-sorted by ID below
		v.Active = append(v.Active, e.info)
	}
	// Map iteration is random; keep the view deterministic. Query IDs
	// are unique, so this insertion sort yields exactly sort.Slice's
	// order without boxing a comparator closure every poke.
	a := v.Active
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].ID < a[j-1].ID; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
	return v
}

// compactOrder drops released IDs from the arrival-order list once they
// dominate it, keeping view assembly O(held).
func (p *Patroller) compactOrder() {
	if len(p.order) < 2*len(p.held)+16 {
		return
	}
	kept := p.order[:0]
	for _, id := range p.order {
		if _, ok := p.held[id]; ok {
			kept = append(kept, id)
		}
	}
	p.order = kept
}

// HeldCount returns the number of currently blocked queries.
func (p *Patroller) HeldCount() int { return len(p.held) }

// ActiveCount returns the number of managed queries executing.
func (p *Patroller) ActiveCount() int { return len(p.active) }

// ActiveCostByClass sums executing managed cost per class.
func (p *Patroller) ActiveCostByClass() map[engine.ClassID]float64 {
	m := make(map[engine.ClassID]float64)
	for _, e := range p.active {
		m[e.info.Class] += e.info.Cost
	}
	return m
}

// ControlTable returns all recorded query rows in arrival order. The slice
// is owned by the patroller; callers must not mutate it.
func (p *Patroller) ControlTable() []*QueryInfo { return p.table }

// Stats returns cumulative patroller counters.
func (p *Patroller) Stats() Stats { return p.stats }
