// Metrics instrumentation for the Query Scheduler: dispatcher
// hold/release counters, cost-limit gauges, admission-wait histograms,
// and the perf models' predicted-vs-actual error — the controller-quality
// observables. All instruments live in a caller-owned obs.Registry, so
// the parallel runner's one-registry-per-run isolation holds. Every
// method on schedObs is nil-receiver safe: an uninstrumented scheduler
// pays one pointer test per call site and nothing else.
package core

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/patroller"
)

// Metric names exported by the scheduler.
const (
	MetricReleases  = "qs_dispatch_releases_total"
	MetricHolds     = "qs_dispatch_holds_total"
	MetricCostLimit = "qs_cost_limit_timerons"
	MetricTicks     = "qs_control_ticks_total"
	MetricUtility   = "qs_plan_utility"
	MetricPredErr   = "qs_prediction_abs_error"
	MetricAdmitWait = "qs_admission_wait_seconds"
	MetricPlanHeld  = "qs_plan_held_total"
	// SLO attainment accounting and the solver's infeasibility signal.
	MetricAttainment = "qs_slo_attainment_ratio"
	MetricBurnRate   = "qs_slo_burn_rate"
	MetricInfeasible = "qs_infeasible_ticks_total"
	MetricBinding    = "qs_infeasible_binding_total"
)

// schedObs caches the scheduler's instruments per class so the dispatch
// path does not re-render label sets on every decision. The release/hold
// counters — touched once per held-queue evaluation — live in dense
// slices indexed by (class - base); classes outside the span (a custom
// classifier inventing ids) fall back to lazy maps.
type schedObs struct {
	reg         *obs.Registry
	oltpID      engine.ClassID // -1 when there is no OLTP class
	base        engine.ClassID
	releases    []*obs.Counter
	holds       []*obs.Counter
	farReleases map[engine.ClassID]*obs.Counter
	farHolds    map[engine.ClassID]*obs.Counter
	limits      map[engine.ClassID]*obs.Gauge
	predErr     map[engine.ClassID]*obs.Histogram
	attainment  map[engine.ClassID]*obs.Gauge
	burnRate    map[engine.ClassID]*obs.Gauge
	binding     map[engine.ClassID]*obs.Counter
	ticks       *obs.Counter
	utility     *obs.Gauge
	held        *obs.Counter
	infeasible  *obs.Counter
}

// Instrument registers the scheduler's observables in reg and begins
// updating them: release/hold counters per dispatch decision, cost-limit
// gauges and prediction-error histograms per control tick, and an
// admission-wait histogram fed from the patroller's release hook. Call
// before Start, at most once.
func (qs *QueryScheduler) Instrument(reg *obs.Registry) {
	if reg == nil {
		panic("core: nil registry")
	}
	if qs.instr != nil {
		panic("core: scheduler already instrumented")
	}
	o := &schedObs{
		reg:        reg,
		oltpID:     -1,
		base:       qs.dispBase,
		releases:   make([]*obs.Counter, len(qs.dispCost)),
		holds:      make([]*obs.Counter, len(qs.dispCost)),
		limits:     make(map[engine.ClassID]*obs.Gauge),
		predErr:    make(map[engine.ClassID]*obs.Histogram),
		attainment: make(map[engine.ClassID]*obs.Gauge),
		burnRate:   make(map[engine.ClassID]*obs.Gauge),
		binding:    make(map[engine.ClassID]*obs.Counter),
	}
	if qs.oltpClass != nil {
		o.oltpID = qs.oltpClass.ID
	}
	o.ticks = reg.Counter(MetricTicks, "Control-loop ticks executed.")
	o.utility = reg.Gauge(MetricUtility, "Total utility of the current scheduling plan.")
	// Registered eagerly so a zero-fault run still exposes the series.
	o.held = reg.Counter(MetricPlanHeld,
		"Control ticks that held the previous plan because the harvest was fault-dropped.")
	// Likewise eager: a run whose goals were always satisfiable must
	// still expose the zero-valued infeasibility signal.
	o.infeasible = reg.Counter(MetricInfeasible,
		"Control ticks where the solver found no plan meeting all class goals.")
	qs.instr = o

	// Admission wait becomes observable at release time; chain the
	// patroller hook the same way the monitor and tracer do.
	clock := qs.eng.Clock()
	waits := make(map[engine.ClassID]*obs.Histogram)
	prev := qs.pat.OnRelease
	qs.pat.OnRelease = func(qi *patroller.QueryInfo) {
		if prev != nil {
			prev(qi)
		}
		h, ok := waits[qi.Class]
		if !ok {
			h = reg.Histogram(MetricAdmitWait,
				"Time from interception to release, per class (seconds).",
				obs.DefaultDurationBuckets(), classLabel(qi.Class))
			waits[qi.Class] = h
		}
		h.Observe(qi.WaitTime(clock.Now()))
	}
}

// classLabel renders the per-class label.
func classLabel(id engine.ClassID) obs.Label {
	return obs.L("class", strconv.Itoa(int(id)))
}

// noteRelease counts one dispatcher release decision.
func (o *schedObs) noteRelease(class engine.ClassID) {
	if o == nil {
		return
	}
	if s := int(class - o.base); s >= 0 && s < len(o.releases) {
		c := o.releases[s]
		if c == nil {
			c = o.reg.Counter(MetricReleases,
				"Held queries the dispatcher released, per class.", classLabel(class))
			o.releases[s] = c
		}
		c.Inc()
		return
	}
	c, ok := o.farReleases[class]
	if !ok {
		c = o.reg.Counter(MetricReleases,
			"Held queries the dispatcher released, per class.", classLabel(class))
		if o.farReleases == nil {
			//lint:ignore hotalloc one-time lazy init of the far-class spill map
			o.farReleases = make(map[engine.ClassID]*obs.Counter)
		}
		o.farReleases[class] = c
	}
	c.Inc()
}

// noteHold counts one dispatcher keep-held decision (a held query
// evaluated and left in the queue this dispatch round).
func (o *schedObs) noteHold(class engine.ClassID) {
	if o == nil {
		return
	}
	if s := int(class - o.base); s >= 0 && s < len(o.holds) {
		c := o.holds[s]
		if c == nil {
			c = o.reg.Counter(MetricHolds,
				"Held queries the dispatcher evaluated and kept held, per class.", classLabel(class))
			o.holds[s] = c
		}
		c.Inc()
		return
	}
	c, ok := o.farHolds[class]
	if !ok {
		c = o.reg.Counter(MetricHolds,
			"Held queries the dispatcher evaluated and kept held, per class.", classLabel(class))
		if o.farHolds == nil {
			//lint:ignore hotalloc one-time lazy init of the far-class spill map
			o.farHolds = make(map[engine.ClassID]*obs.Counter)
		}
		o.farHolds[class] = c
	}
	c.Inc()
}

// noteTick records one control interval: the new plan's limits and
// utility, plus the previous tick's prediction error now that the
// interval it forecast has been measured.
func (o *schedObs) noteTick(rec PlanRecord, prevPredicted map[engine.ClassID]float64) {
	if o == nil {
		return
	}
	o.ticks.Inc()
	if !rec.Held {
		o.utility.Set(rec.Utility)
	}
	for _, id := range sortedClassIDs(rec.Limits) {
		g, ok := o.limits[id]
		if !ok {
			g = o.reg.Gauge(MetricCostLimit,
				"Current class cost limit in timerons.", classLabel(id))
			o.limits[id] = g
		}
		g.Set(rec.Limits[id])
	}
	for _, id := range sortedClassIDs(prevPredicted) {
		actual := rec.Measurement.Velocity[id]
		if id == o.oltpID {
			actual = rec.Measurement.OLTPRespTime
		}
		h, ok := o.predErr[id]
		if !ok {
			h = o.reg.Histogram(MetricPredErr,
				"Absolute error of the per-class performance prediction (velocity for OLAP, seconds for OLTP).",
				obs.DefaultErrorBuckets(), classLabel(id))
			o.predErr[id] = h
		}
		h.Observe(math.Abs(prevPredicted[id] - actual))
	}
	for _, id := range sortedClassIDs(rec.Attainment) {
		g, ok := o.attainment[id]
		if !ok {
			g = o.reg.Gauge(MetricAttainment,
				"Fraction of measured control ticks in which the class met its goal.", classLabel(id))
			o.attainment[id] = g
		}
		g.Set(rec.Attainment[id])
	}
	for _, id := range sortedClassIDs(rec.BurnRate) {
		g, ok := o.burnRate[id]
		if !ok {
			g = o.reg.Gauge(MetricBurnRate,
				"Error-budget burn rate over the sliding SLO window (1 = missing exactly at budget).",
				classLabel(id))
			o.burnRate[id] = g
		}
		g.Set(rec.BurnRate[id])
	}
	if !rec.Held && rec.Search.Infeasible {
		o.infeasible.Inc()
		c, ok := o.binding[rec.Search.Binding]
		if !ok {
			c = o.reg.Counter(MetricBinding,
				"Infeasible control ticks by binding class (the goal the solver could not satisfy).",
				classLabel(rec.Search.Binding))
			o.binding[rec.Search.Binding] = c
		}
		c.Inc()
	}
}

// notePlanHeld counts one degraded control tick (plan held, models not
// updated).
func (o *schedObs) notePlanHeld() {
	if o == nil {
		return
	}
	o.held.Inc()
}

// sortedClassIDs returns m's keys in ascending order (deterministic map
// iteration for instrument updates).
func sortedClassIDs(m map[engine.ClassID]float64) []engine.ClassID {
	ids := make([]engine.ClassID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
