package core

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/patroller"
	"repro/internal/simclock"
)

// TestDispatcherInvariantProperty drives random OLAP arrival patterns
// through the Query Scheduler and checks the dispatcher's contract at
// every release: the class *receiving* the release never exceeds its
// current cost limit (the starvation guard is off, so the bound is
// strict). Other classes may legitimately sit above a freshly shrunken
// limit — admission control cannot preempt — so the invariant is scoped
// to the admitting class.
func TestDispatcherInvariantProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := seed
		next := func() float64 {
			r = r*1664525 + 1013904223
			return float64(r%1000)/1000.0 + 1e-3
		}
		clock := simclock.New()
		eng := engine.New(engine.Config{CPUCapacity: 2, IOCapacity: 14}, clock)
		pat := patroller.New(eng, 1, 2)
		cfg := DefaultConfig()
		cfg.SystemCostLimit = 8000 + next()*22000
		qs, err := New(cfg, eng, pat, testClasses(),
			func() []engine.ClientID { return nil })
		if err != nil {
			t.Fatal(err)
		}

		violated := false
		pat.OnRelease = func(qi *patroller.QueryInfo) {
			limit := qs.CostLimits()[qi.Class]
			if cost := pat.ActiveCostByClass()[qi.Class]; cost > limit+1e-6 {
				t.Logf("violation: class %d cost %.1f > limit %.1f at t=%.1f",
					qi.Class, cost, limit, clock.Now())
				violated = true
			}
		}
		qs.Start()

		n := int(next()*50) + 10
		for i := 0; i < n; i++ {
			class := engine.ClassID(1 + int(next()*2)%2)
			cost := next() * cfg.SystemCostLimit / 2
			work := next() * 60
			at := next() * 1800
			clock.At(at, func() {
				eng.Submit(&engine.Query{
					Class:  class,
					Cost:   cost,
					Demand: engine.Demand{Work: work, CPURate: 0.3, IORate: 1},
				})
			})
		}
		clock.RunUntil(3600)
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDispatcherInvariantSurvivesPlanShrink checks the subtle case: when
// a re-plan shrinks a class's limit below its already-executing cost, the
// dispatcher must simply stop admitting (it cannot preempt), and resume
// only once enough queries drain.
func TestDispatcherInvariantSurvivesPlanShrink(t *testing.T) {
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 2, IOCapacity: 14}, clock)
	pat := patroller.New(eng, 1, 2)
	cfg := DefaultConfig()
	cfg.SystemCostLimit = 10000
	classes := testClasses()
	qs, err := New(cfg, eng, pat, classes, func() []engine.ClientID { return []engine.ClientID{9} })
	if err != nil {
		t.Fatal(err)
	}
	qs.Start()

	// Fill class 1 close to its initial ~3333 limit with long queries.
	for i := 0; i < 3; i++ {
		eng.Submit(&engine.Query{Class: 1, Cost: 1000,
			Demand: engine.Demand{Work: 5000, CPURate: 0.2, IORate: 1}})
	}
	// Saturate the OLTP snapshot with a violating loop so the planner
	// shrinks the OLAP limits hard.
	var loop func()
	loop = func() {
		eng.Submit(&engine.Query{Client: 9, Class: 3, Cost: 2,
			Demand: engine.Demand{Work: 0.35, CPURate: 1}})
	}
	eng.OnDone(func(q *engine.Query) {
		if q.Client == 9 {
			loop()
		}
	})
	loop()
	clock.RunUntil(10 * 60)

	// Class 1's limit should now be far below its executing 3000 cost.
	if lim := qs.CostLimits()[engine.ClassID(1)]; lim >= 3000 {
		t.Skipf("planner did not shrink class 1 (limit %v); scenario not exercised", lim)
	}
	// A new class-1 query must NOT be admitted while over the limit.
	blocked := &engine.Query{Class: 1, Cost: 400,
		Demand: engine.Demand{Work: 10, CPURate: 0.2, IORate: 1}}
	eng.Submit(blocked)
	clock.RunUntil(11 * 60)
	if blocked.State != engine.StateQueued {
		t.Fatalf("query admitted while class is over its shrunken limit (state %v)", blocked.State)
	}
}
