// Package core implements the paper's contribution: the Query Scheduler, a
// prototype of the workload-adaptation framework for autonomic DBMSs,
// extended to mixed OLAP/OLTP workloads.
//
// Architecture (the paper's Figure 1): Query Patroller intercepts queries
// of the managed (OLAP) classes and blocks them; the Monitor collects
// query information from the control tables and — for the unmanaged OLTP
// class — from the engine's snapshot monitor; the Classifier assigns each
// query to a service class; the Scheduling Planner periodically consults
// the Performance Solver for a utility-optimal scheduling plan (a vector
// of class cost limits summing to the system cost limit); and the
// Dispatcher releases blocked queries so each class's executing cost stays
// within its limit.
//
// The OLTP class is never intercepted (the interception overhead would
// dwarf sub-second transactions); it is controlled indirectly: its
// "virtual" cost limit claims a share of the system cost limit, and
// whatever the OLTP class holds is withheld from the OLAP classes.
package core

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/perfmodel"
	"repro/internal/solver"
)

// Config tunes the Query Scheduler.
type Config struct {
	// SystemCostLimit is the fixed total the class cost limits sum to,
	// in timerons — determined experimentally so the DBMS stays
	// under-saturated (30,000 in the paper; see the saturation example).
	SystemCostLimit float64
	// ControlInterval is how often the Scheduling Planner re-plans, in
	// seconds.
	ControlInterval float64
	// SnapshotInterval is how often the Monitor samples the snapshot
	// monitor for OLTP response times, in seconds (10 in the paper —
	// small enough for accuracy, large enough to keep overhead low).
	SnapshotInterval float64
	// PlanStep is the solver's cost-limit granularity in timerons.
	PlanStep float64
	// MinOLAPLimit is the smallest limit an OLAP class may be assigned;
	// keeping it positive lets a throttled class still make progress so
	// its measured velocity stays informative.
	MinOLAPLimit float64
	// MinOLTPLimit is the smallest virtual limit for the OLTP class.
	MinOLTPLimit float64
	// StarvationGuard, when true, releases a class's head-of-queue query
	// even if its cost alone exceeds the class limit, provided the class
	// has nothing executing. The paper's dispatcher has no such guard
	// (an under-allocated class's velocity collapses and the planner
	// reacts instead); it is kept as an ablation.
	StarvationGuard bool
	// Solver picks the plan optimizer (default: greedy coordinate
	// exchange; the grid solver is the exhaustive ablation).
	Solver solver.Solver
	// OLTP tunes the OLTP response-time model.
	OLTP perfmodel.OLTPConfig
	// OLTPModel selects the prediction model for the OLTP class:
	// LinearOLTPModel is the paper's t + s·ΔC; ThroughputOLTPModel is
	// the future-work saturation-aware model (R = N/X with X affine in
	// the virtual limit), falling back to the linear model until its fit
	// is usable.
	OLTPModel OLTPModelKind
	// Detection tunes the workload detector that characterizes each
	// class and flags intensity shifts (always running; its output is
	// recorded in the plan history).
	Detection detect.Config
	// FeedForward, when true, lets the planner use the detector's
	// demand forecast: an OLAP class forecast to intensify has its
	// velocity anchor discounted proportionally, so the plan leads the
	// workload change instead of trailing it by one interval.
	FeedForward bool
	// Degradation tunes the control loop's behaviour when the monitor's
	// view is corrupted (fault injection, lost harvests).
	Degradation Degradation
	// MonitorFaults, when non-nil, lets a fault plan corrupt the
	// monitor's observations (see internal/fault). Nil in production
	// runs.
	MonitorFaults MonitorFaultInjector
	// SLOWindow is the sliding-window length, in control ticks, of the
	// per-class error-budget accounting (qs_slo_burn_rate and the
	// decision audit log's burn column). 0 means the default.
	SLOWindow int
	// SLOBudget is the allowed miss fraction inside the window: a class
	// missing its goal in more than SLOBudget of the window's ticks has
	// a burn rate above 1. 0 means the default.
	SLOBudget float64
}

// MonitorFaultInjector is the monitor-side fault contract: whether the
// snapshot poll or the whole control-interval harvest at time t is lost.
// Implemented by fault.Injector.
type MonitorFaultInjector interface {
	DropSnapshot(t float64) bool
	DropHarvest(t float64) bool
}

// Degradation configures graceful degradation of the Scheduling Planner.
type Degradation struct {
	// HoldPlanOnDropout keeps the previous scheduling plan when a
	// harvest is lost or the OLTP view is entirely fault-dropped,
	// instead of feeding the zeroed measurement into the performance
	// models. Off by default (the paper's planner has no such guard).
	HoldPlanOnDropout bool
	// MaxHeldTicks bounds how many consecutive control intervals the
	// plan may be held; after that the planner replans with whatever
	// data it has rather than freeze indefinitely. 0 means no bound.
	MaxHeldTicks int
}

// OLTPModelKind selects the OLTP performance model.
type OLTPModelKind int

// OLTP model kinds.
const (
	// LinearOLTPModel is the paper's regression-fitted linear model.
	LinearOLTPModel OLTPModelKind = iota
	// ThroughputOLTPModel predicts through the throughput curve
	// (perfmodel.OLTPThroughput).
	ThroughputOLTPModel
)

// DefaultConfig returns the configuration used in the paper's experiments.
func DefaultConfig() Config {
	return Config{
		SystemCostLimit:  30000,
		ControlInterval:  60,
		SnapshotInterval: 10,
		PlanStep:         500,
		MinOLAPLimit:     500,
		MinOLTPLimit:     0,
		StarvationGuard:  false,
		Solver:           solver.Greedy{},
		OLTP:             perfmodel.DefaultOLTPConfig(),
		Detection:        detect.DefaultConfig(),
		SLOWindow:        DefaultSLOWindow,
		SLOBudget:        DefaultSLOBudget,
	}
}

// SLO accounting defaults: a 10-tick window with 10% of ticks allowed
// to miss. At the paper's 60 s control interval the window spans ten
// minutes — long enough to smooth single-tick blips, short enough that
// a burst's burn rate crosses 1 within a couple of ticks.
const (
	DefaultSLOWindow = 10
	DefaultSLOBudget = 0.1
)

// withDefaults fills in zero-valued sub-configurations so hand-built
// Configs keep working.
func (c Config) withDefaults() Config {
	if c.Detection == (detect.Config{}) {
		c.Detection = detect.DefaultConfig()
	}
	if c.SLOWindow == 0 {
		c.SLOWindow = DefaultSLOWindow
	}
	if c.SLOBudget == 0 {
		c.SLOBudget = DefaultSLOBudget
	}
	return c
}

func (c Config) validate() error {
	if c.SystemCostLimit <= 0 {
		return fmt.Errorf("core: system cost limit %v must be positive", c.SystemCostLimit)
	}
	if c.ControlInterval <= 0 || c.SnapshotInterval <= 0 {
		return fmt.Errorf("core: intervals must be positive")
	}
	if c.PlanStep <= 0 || c.PlanStep > c.SystemCostLimit {
		return fmt.Errorf("core: plan step %v out of range", c.PlanStep)
	}
	if c.MinOLAPLimit < 0 || c.MinOLTPLimit < 0 {
		return fmt.Errorf("core: negative class minimum")
	}
	if c.Solver == nil {
		return fmt.Errorf("core: nil solver")
	}
	if c.SLOWindow < 0 {
		return fmt.Errorf("core: SLO window %d must be positive", c.SLOWindow)
	}
	if c.SLOBudget < 0 || c.SLOBudget > 1 {
		return fmt.Errorf("core: SLO budget %v out of (0, 1]", c.SLOBudget)
	}
	return nil
}
