package core

import (
	"fmt"
	"sort"

	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/patroller"
	"repro/internal/perfmodel"
	"repro/internal/simclock"
	"repro/internal/solver"
	"repro/internal/utility"
	"repro/internal/workload"
)

// Classifier assigns an intercepted query to a service class based on its
// recorded information. The default keeps the class the submitting
// connection was tagged with — the common production setup where service
// classes map to applications or user groups.
type Classifier interface {
	Classify(qi *patroller.QueryInfo) engine.ClassID
}

// TagClassifier classifies by the query's submitted class tag.
type TagClassifier struct{}

// Classify implements Classifier.
func (TagClassifier) Classify(qi *patroller.QueryInfo) engine.ClassID { return qi.Class }

// PlanRecord is one control interval's outcome: the measurements the
// planner saw and the scheduling plan it chose. The sequence of records
// regenerates the paper's Figure 7.
type PlanRecord struct {
	Time        simclock.Time
	Measurement Measurement
	Limits      solver.Plan
	Utility     float64
	OLTPSlope   float64
	// Workload holds the detector's characterization per class at
	// planning time.
	Workload map[engine.ClassID]detect.Characterization
	// Predicted is the performance each class's model forecast for the
	// coming interval at the chosen limits (velocity for OLAP classes,
	// mean response time for the OLTP class). Comparing it against the
	// next record's Measurement yields the model's prediction error.
	Predicted map[engine.ClassID]float64
	// Held marks a degraded tick: the harvest (or the entire OLTP view)
	// was fault-dropped and the planner kept the previous plan instead of
	// feeding zeros to the models. Workload and Predicted are nil.
	Held bool
	// Search summarizes the Performance Solver's run for this tick —
	// candidates considered, improving moves, runner-up utility, and the
	// goal-feasibility analysis (infeasible plan, binding class).
	// Zero-valued on held ticks and under non-introspecting solvers.
	Search solver.Search
	// Provenance records, per class, which performance model produced
	// the prediction and the anchor it extrapolated from. Nil on held
	// ticks.
	Provenance map[engine.ClassID]Provenance
	// Attainment and BurnRate carry the scheduler's SLO accounting after
	// this tick's measurement folded in: the cumulative goal-attainment
	// ratio and the error-budget burn rate over the sliding window, per
	// class. Nil on held ticks (the degraded measurement is not folded).
	Attainment map[engine.ClassID]float64
	BurnRate   map[engine.ClassID]float64
}

// Provenance identifies the performance model behind one class's
// prediction: the model's name plus the anchor measurement and the cost
// limit that anchor was measured under.
type Provenance struct {
	Model       string
	Anchor      float64
	AnchorLimit float64
}

// ProvenanceIdle marks an idle OLAP class: no model ran, the prediction
// is the ideal velocity 1 at any limit.
const ProvenanceIdle = "idle"

// Clone returns a deep copy of the record; callers may hold or mutate it
// without aliasing the scheduler's live maps.
func (r PlanRecord) Clone() PlanRecord {
	r.Measurement = r.Measurement.Clone()
	r.Limits = r.Limits.Clone()
	r.Workload = cloneMap(r.Workload)
	r.Predicted = cloneMap(r.Predicted)
	r.Search = r.Search.Clone()
	r.Provenance = cloneMap(r.Provenance)
	r.Attainment = cloneMap(r.Attainment)
	r.BurnRate = cloneMap(r.BurnRate)
	return r
}

// QueryScheduler wires Monitor, Classifier, Dispatcher, Scheduling
// Planner, and Performance Solver around a Query Patroller, adapting a
// mixed workload to its SLOs.
type QueryScheduler struct {
	cfg Config
	eng *engine.Engine
	//lint:ignore ckptcover wiring backref to the patroller; re-attached by construction on restore
	pat *patroller.Patroller
	//lint:ignore ckptcover wiring: the classifier is re-attached by construction on restore
	classifier Classifier

	classes     []*workload.Class
	olapClasses []*workload.Class
	//lint:ignore ckptcover derived deterministically from config by initialPlan; recomputed identically on restore
	oltpClass *workload.Class

	mon       *monitor
	oltpModel *perfmodel.OLTPResponse
	oltpTput  *perfmodel.OLTPThroughput
	velModel  perfmodel.OLAPVelocity
	detector  *detect.Detector

	limits    solver.Plan
	ticker    *simclock.Ticker
	history   []PlanRecord
	planHooks []func(PlanRecord)

	// SLO accounting, fed one observation per measured (non-held,
	// non-dropped) control tick and surfaced through PlanRecord and the
	// qs_slo_* metrics. All three maps are fully populated at
	// construction; only their values mutate.
	sloObserved map[engine.ClassID]int
	sloMet      map[engine.ClassID]int
	sloWin      map[engine.ClassID]*obs.SLOWindow
	//lint:ignore ckptcover observability wiring re-attached via Instrument, not runtime state
	instr     *schedObs
	running   bool
	heldTicks int // consecutive degraded ticks holding the plan

	// Dispatch scratch: per-class executing cost/count indexed by
	// (class - dispBase), reset and refilled on every SelectReleases call
	// so the per-poke hot path allocates nothing. Classes outside the span
	// are never in qs.limits, so they skip accounting entirely (they are
	// released unconditionally).
	dispBase  engine.ClassID
	dispCost  []float64
	dispCount []int
	//lint:ignore ckptcover per-poke scratch buffer; contents are dead between SelectReleases calls
	releaseOut []engine.QueryID
}

// New builds a Query Scheduler for the given classes. At most one class
// may be OLTP-kind (the paper's setup); it is left unintercepted and
// controlled indirectly. oltpClients must return the currently active
// OLTP client connections for snapshot sampling (nil is allowed when there
// is no OLTP class).
func New(cfg Config, eng *engine.Engine, pat *patroller.Patroller,
	classes []*workload.Class, oltpClients func() []engine.ClientID) (*QueryScheduler, error) {

	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("core: no service classes")
	}
	qs := &QueryScheduler{
		cfg:        cfg,
		eng:        eng,
		pat:        pat,
		classifier: TagClassifier{},
		classes:    classes,
		oltpModel:  perfmodel.NewOLTPResponse(cfg.OLTP),
		oltpTput:   perfmodel.NewOLTPThroughput(perfmodel.DefaultThroughputConfig()),
		velModel:   perfmodel.OLAPVelocity{Floor: perfmodel.DefaultVelocityFloor},
		detector:   detect.New(cfg.Detection),
	}
	for _, c := range classes {
		switch c.Kind {
		case workload.OLAP:
			if !pat.Manages(c.ID) {
				return nil, fmt.Errorf("core: OLAP class %d is not managed by the patroller", c.ID)
			}
			qs.olapClasses = append(qs.olapClasses, c)
		case workload.OLTP:
			if qs.oltpClass != nil {
				return nil, fmt.Errorf("core: more than one OLTP class")
			}
			if pat.Manages(c.ID) {
				return nil, fmt.Errorf("core: OLTP class %d must not be intercepted (overhead)", c.ID)
			}
			qs.oltpClass = c
		}
	}
	if qs.oltpClass != nil && oltpClients == nil {
		return nil, fmt.Errorf("core: OLTP class present but no client source for snapshots")
	}
	sort.Slice(qs.olapClasses, func(i, j int) bool { return qs.olapClasses[i].ID < qs.olapClasses[j].ID })

	lo, hi := classes[0].ID, classes[0].ID
	for _, c := range classes {
		if c.ID < lo {
			lo = c.ID
		}
		if c.ID > hi {
			hi = c.ID
		}
	}
	qs.dispBase = lo
	qs.dispCost = make([]float64, int(hi-lo)+1)
	qs.dispCount = make([]int, int(hi-lo)+1)

	qs.sloObserved = make(map[engine.ClassID]int, len(classes))
	qs.sloMet = make(map[engine.ClassID]int, len(classes))
	qs.sloWin = make(map[engine.ClassID]*obs.SLOWindow, len(classes))
	for _, c := range classes {
		qs.sloObserved[c.ID] = 0
		qs.sloMet[c.ID] = 0
		qs.sloWin[c.ID] = obs.NewSLOWindow(cfg.SLOWindow)
	}

	qs.limits = qs.initialPlan()
	qs.mon = newMonitor(eng, pat, qs.olapClasses, qs.oltpClass, oltpClients, cfg.SnapshotInterval)
	qs.mon.faults = cfg.MonitorFaults
	return qs, nil
}

// SetClassifier replaces the default classifier.
func (qs *QueryScheduler) SetClassifier(c Classifier) {
	if c == nil {
		panic("core: nil classifier")
	}
	qs.classifier = c
}

// initialPlan splits the system cost limit equally across all classes
// (including the OLTP class's virtual share).
func (qs *QueryScheduler) initialPlan() solver.Plan {
	plan := make(solver.Plan)
	n := len(qs.olapClasses)
	if qs.oltpClass != nil {
		n++
	}
	share := qs.cfg.SystemCostLimit / float64(n)
	for _, c := range qs.olapClasses {
		plan[c.ID] = share
	}
	if qs.oltpClass != nil {
		plan[qs.oltpClass.ID] = share
	}
	return plan
}

// Start installs the dispatcher as the patroller's policy and begins the
// control loop.
func (qs *QueryScheduler) Start() {
	if qs.running {
		panic("core: scheduler already started")
	}
	qs.running = true
	qs.pat.SetPolicy(qs)
	// A restart after StopWith(StopDrain) must also undo the drain's side
	// effects: SetPolicy above replaces the installed ReleaseAll policy,
	// and the monitor's snapshot ticker — stopped by StopWith — has to be
	// re-armed or the OLTP class would never be measured again.
	qs.mon.start()
	if qs.ticker != nil {
		qs.ticker.Start()
	} else {
		qs.ticker = qs.eng.Clock().StartTicker(qs.cfg.ControlInterval, qs.controlTick)
	}
}

// StopMode selects what happens to still-held queries when the control
// loop shuts down.
type StopMode int

// Stop modes.
const (
	// StopFreeze halts the control loop and leaves held queries held —
	// the historical behaviour, right for end-of-simulation teardown
	// where nothing will run again anyway.
	StopFreeze StopMode = iota
	// StopDrain halts the control loop and installs an unconditional
	// release policy, so every held query (and any still arriving) is
	// admitted instead of stranded. Use when the engine keeps running
	// after the controller goes away.
	StopDrain
)

// Stop halts the control loop, freezing held queries (StopFreeze).
func (qs *QueryScheduler) Stop() { qs.StopWith(StopFreeze) }

// StopWith halts the control loop with the given shutdown mode.
func (qs *QueryScheduler) StopWith(mode StopMode) {
	if !qs.running {
		return
	}
	qs.running = false
	qs.ticker.Stop()
	qs.mon.stop()
	if mode == StopDrain {
		qs.pat.SetPolicy(patroller.ReleaseAll{})
		qs.pat.Poke()
	}
}

// CostLimits returns the current scheduling plan (class cost limits,
// including the OLTP class's virtual limit). The returned plan is a copy.
func (qs *QueryScheduler) CostLimits() solver.Plan { return qs.limits.Clone() }

// SetSystemCostLimit re-targets the total budget the per-class solver
// splits. A fleet-level controller calls this each interval to hand
// every backend its share of the global budget; the next control tick
// plans against the new total. Single-backend runs never call it, so
// their byte-identical goldens are untouched. The current plan is left
// as is — the solver rescales at the next tick.
func (qs *QueryScheduler) SetSystemCostLimit(limit float64) {
	if limit <= 0 {
		panic(fmt.Sprintf("core: system cost limit %v must be positive", limit))
	}
	qs.cfg.SystemCostLimit = limit
}

// History returns all control-interval records so far, deep-copied:
// mutating the result never corrupts the scheduler's live state.
func (qs *QueryScheduler) History() []PlanRecord {
	out := make([]PlanRecord, len(qs.history))
	for i, r := range qs.history {
		out[i] = r.Clone()
	}
	return out
}

// LastPlan returns the most recent control-interval record without
// copying the whole history — the fleet planner reads each backend's
// solver verdict (infeasible plan, binding class) from it every tick.
// The record is deep-copied; false means no tick has run yet.
func (qs *QueryScheduler) LastPlan() (PlanRecord, bool) {
	if len(qs.history) == 0 {
		return PlanRecord{}, false
	}
	return qs.history[len(qs.history)-1].Clone(), true
}

// OnPlan registers a hook called with each control interval's PlanRecord
// as it is appended to the history. Hooks run in registration order; the
// trace layer uses this to emit plan-change events.
func (qs *QueryScheduler) OnPlan(h func(PlanRecord)) {
	if h == nil {
		panic("core: nil plan hook")
	}
	qs.planHooks = append(qs.planHooks, h)
}

// Config returns the scheduler's effective configuration (defaults
// filled in) — what the decision log's meta line records.
func (qs *QueryScheduler) Config() Config { return qs.cfg }

// OLTPModel exposes the fitted response-time model (for diagnostics).
func (qs *QueryScheduler) OLTPModel() *perfmodel.OLTPResponse { return qs.oltpModel }

// Detector exposes the workload detector (for diagnostics and reports).
func (qs *QueryScheduler) Detector() *detect.Detector { return qs.detector }

// SelectReleases implements patroller.Policy — the Dispatcher. Per class,
// queries are released in arrival order while the class's executing cost
// plus the candidate's cost stays within the class cost limit.
//
//qlint:hotpath
func (qs *QueryScheduler) SelectReleases(v *patroller.View) []engine.QueryID {
	cost, count := qs.dispCost, qs.dispCount
	for i := range cost {
		cost[i] = 0
		count[i] = 0
	}
	for _, qi := range v.Active {
		if s := int(qi.Class - qs.dispBase); s >= 0 && s < len(cost) {
			cost[s] += qi.Cost
			count[s]++
		}
	}
	out := qs.releaseOut[:0]
	for _, qi := range v.Held {
		class := qs.classifier.Classify(qi)
		limit, ok := qs.limits[class]
		if !ok {
			// Unknown class: release immediately rather than strand it.
			qs.instr.noteRelease(class)
			out = append(out, qi.ID)
			continue
		}
		// Classes with a limit are always inside the dispatch span.
		s := int(class - qs.dispBase)
		fits := cost[s]+qi.Cost <= limit+1e-9
		starving := qs.cfg.StarvationGuard && count[s] == 0 && qi.Cost > limit
		if !fits && !starving {
			qs.instr.noteHold(class)
			continue // head-of-line blocks only its own class
		}
		cost[s] += qi.Cost
		count[s]++
		qs.instr.noteRelease(class)
		out = append(out, qi.ID)
	}
	qs.releaseOut = out[:0]
	return out
}

// controlTick is one Scheduling Planner cycle: harvest measurements, feed
// the performance models, consult the Performance Solver, and hand the new
// plan to the dispatcher.
func (qs *QueryScheduler) controlTick() {
	meas := qs.mon.harvest()

	// Graceful degradation: a fault-dropped harvest (or an interval whose
	// entire OLTP view was lost) carries zeros, not measurements. Feeding
	// them forward would collapse the velocity anchors and poison the
	// OLTP regression, so — when enabled — hold the previous plan and
	// skip the model updates, up to MaxHeldTicks consecutive intervals.
	deg := qs.cfg.Degradation
	if (meas.Dropped || meas.OLTPDropout) && deg.HoldPlanOnDropout &&
		(deg.MaxHeldTicks <= 0 || qs.heldTicks < deg.MaxHeldTicks) {
		qs.heldTicks++
		rec := PlanRecord{
			Time:        meas.Time,
			Measurement: meas,
			Limits:      qs.limits.Clone(),
			OLTPSlope:   qs.oltpModel.Slope(),
			Held:        true,
		}
		qs.history = append(qs.history, rec)
		qs.instr.noteTick(rec, nil)
		qs.instr.notePlanHeld()
		for _, h := range qs.planHooks {
			h(rec.Clone())
		}
		qs.pat.Poke()
		return
	}
	qs.heldTicks = 0
	attainment, burnRate := qs.sloObserve(meas)

	// Workload detection: characterize each class's interval and, when
	// feed-forward is enabled, compute demand forecasts for the coming
	// interval.
	chars := make(map[engine.ClassID]detect.Characterization, len(qs.classes))
	for _, c := range qs.classes {
		chars[c.ID] = qs.detector.Observe(detect.Observation{
			Time:       meas.Time,
			Class:      c.ID,
			Arrivals:   meas.Arrivals[c.ID],
			MeanCost:   meas.ArrivalMeanCost[c.ID],
			Interval:   qs.cfg.ControlInterval,
			Population: float64(meas.Population[c.ID]),
		})
	}

	if qs.oltpClass != nil {
		qs.oltpModel.Observe(qs.limits[qs.oltpClass.ID], meas.OLTPRespTime)
		qs.oltpTput.ObserveLoad(qs.limits[qs.oltpClass.ID], meas.OLTPRespTime,
			float64(meas.Population[qs.oltpClass.ID]))
	}

	problem := solver.Problem{
		Total: qs.cfg.SystemCostLimit,
		Step:  qs.cfg.PlanStep,
	}
	provenance := make(map[engine.ClassID]Provenance, len(qs.classes))
	for _, c := range qs.olapClasses {
		c := c
		vPrev := meas.Velocity[c.ID]
		cPrev := qs.limits[c.ID]
		idle := meas.Idle[c.ID]
		if vPrev <= 0 && !idle {
			// A busy class measured at zero velocity (every in-flight
			// query still blocked, or a zeroed dropout measurement) would
			// predict 0 at every candidate limit — the solver could never
			// justify giving it capacity again. Anchor at the model floor
			// so recovery stays reachable.
			vPrev = qs.velModel.Floor
		}
		if qs.cfg.FeedForward && !idle {
			vPrev = qs.feedForwardAnchor(c.ID, vPrev, chars[c.ID])
		}
		model := qs.velModel.Name()
		if idle {
			model = ProvenanceIdle
		}
		provenance[c.ID] = Provenance{Model: model, Anchor: vPrev, AnchorLimit: cPrev}
		problem.Classes = append(problem.Classes, solver.ClassSpec{
			ID:      c.ID,
			Utility: utility.NewVelocity(c.Goal.Target, c.Importance),
			Min:     qs.cfg.MinOLAPLimit,
			Predict: func(limit float64) float64 {
				if idle {
					// No workload to delay: ideal at any limit.
					return 1
				}
				return qs.velModel.Predict(vPrev, cPrev, limit)
			},
			GoalDir:    solver.GoalAtLeast,
			GoalTarget: c.Goal.Target,
		})
	}
	if qs.oltpClass != nil {
		c := qs.oltpClass
		tPrev := meas.OLTPRespTime
		cPrev := qs.limits[c.ID]
		useTput := qs.cfg.OLTPModel == ThroughputOLTPModel && qs.oltpTput.Usable()
		model := qs.oltpModel.Name()
		if useTput {
			model = qs.oltpTput.Name()
		}
		provenance[c.ID] = Provenance{Model: model, Anchor: tPrev, AnchorLimit: cPrev}
		problem.Classes = append(problem.Classes, solver.ClassSpec{
			ID:      c.ID,
			Utility: utility.NewResponseTime(c.Goal.Target, c.Importance),
			Min:     qs.cfg.MinOLTPLimit,
			Predict: func(limit float64) float64 {
				if useTput {
					return qs.oltpTput.Predict(tPrev, cPrev, limit)
				}
				return qs.oltpModel.Predict(tPrev, cPrev, limit)
			},
			GoalDir:    solver.GoalAtMost,
			GoalTarget: c.Goal.Target,
		})
	}

	var plan solver.Plan
	var search solver.Search
	if in, ok := qs.cfg.Solver.(solver.Introspector); ok {
		plan, search = in.SolveIntrospect(problem, qs.limits)
	} else {
		plan = qs.cfg.Solver.Solve(problem, qs.limits)
	}
	predicted := make(map[engine.ClassID]float64, len(problem.Classes))
	for _, spec := range problem.Classes {
		predicted[spec.ID] = spec.Predict(plan[spec.ID])
	}
	var prevPredicted map[engine.ClassID]float64
	if n := len(qs.history); n > 0 {
		prevPredicted = qs.history[n-1].Predicted
	}
	qs.limits = plan
	rec := PlanRecord{
		Time:        meas.Time,
		Measurement: meas,
		Limits:      plan.Clone(),
		Utility:     solver.Utility(problem, plan),
		OLTPSlope:   qs.oltpModel.Slope(),
		Workload:    chars,
		Predicted:   predicted,
		Search:      search,
		Provenance:  provenance,
		Attainment:  attainment,
		BurnRate:    burnRate,
	}
	qs.history = append(qs.history, rec)
	qs.instr.noteTick(rec, prevPredicted)
	for _, h := range qs.planHooks {
		h(rec.Clone())
	}
	qs.pat.Poke() // apply the new limits right away
}

// feedForwardAnchor discounts a class's measured velocity by the
// forecast demand growth: with a class cost limit fixed, velocity is
// inversely proportional to offered demand (more clients waiting behind
// the same admission budget), so an intensity forecast of +20% anchors
// the model at vMeas/1.2 before the solver runs.
func (qs *QueryScheduler) feedForwardAnchor(class engine.ClassID, vMeas float64,
	char detect.Characterization) float64 {

	fc := qs.detector.Forecast(class, qs.cfg.ControlInterval)
	if fc.Confidence <= 0 || char.DemandRate <= 0 || fc.DemandRate <= 0 {
		return vMeas
	}
	ratio := fc.DemandRate / char.DemandRate
	// Blend by confidence and keep the correction bounded.
	ratio = 1 + fc.Confidence*(ratio-1)
	if ratio < 0.5 {
		ratio = 0.5
	}
	if ratio > 2 {
		ratio = 2
	}
	return vMeas / ratio
}
