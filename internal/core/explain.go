package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/utility"
	"repro/internal/workload"
)

// ExplainPlan renders why a control interval's plan looks the way it
// does: per class, the measured performance, its goal, the utility earned
// at the chosen limit, and what the detector saw. Autonomic systems are
// notoriously opaque; this is the operator's window into the planner.
func (qs *QueryScheduler) ExplainPlan(rec PlanRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plan at t=%.0fs (total utility %.3f, OLTP model slope %.2g)\n",
		rec.Time, rec.Utility, rec.OLTPSlope)
	fmt.Fprintf(&b, "%-10s %10s %12s %10s %10s %9s %s\n",
		"class", "limit", "measured", "goal", "utility", "pop", "notes")

	classes := append([]*workload.Class{}, qs.classes...)
	sort.Slice(classes, func(i, j int) bool { return classes[i].ID < classes[j].ID })
	for _, c := range classes {
		var measured float64
		var u utility.Function
		var notes []string
		switch c.Kind {
		case workload.OLAP:
			measured = rec.Measurement.Velocity[c.ID]
			u = utility.NewVelocity(c.Goal.Target, c.Importance)
			if rec.Measurement.Idle[c.ID] {
				notes = append(notes, "idle")
			} else if rec.Measurement.VelocitySamples[c.ID] == 0 {
				notes = append(notes, "in-flight estimate")
			}
		case workload.OLTP:
			measured = rec.Measurement.OLTPRespTime
			u = utility.NewResponseTime(c.Goal.Target, c.Importance)
			notes = append(notes, fmt.Sprintf("%d snapshot samples", rec.Measurement.OLTPSamples))
			notes = append(notes, "virtual limit (not intercepted)")
		}
		if !c.Goal.Met(measured) {
			notes = append(notes, "VIOLATING")
		}
		if ch, ok := rec.Workload[c.ID]; ok && ch.Shifted {
			notes = append(notes, "workload shift detected")
		}
		fmt.Fprintf(&b, "%-10s %10.0f %12.3f %10s %10.3f %9.1f %s\n",
			c.Name, rec.Limits[c.ID], measured, c.Goal,
			u.Utility(measured), rec.Workload[c.ID].Population,
			strings.Join(notes, ", "))
	}
	return b.String()
}
