package core

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/patroller"
	"repro/internal/simclock"
	"repro/internal/stats"
	"repro/internal/workload"
)

// monitor is the Query Scheduler's Monitor component. It measures, per
// control interval:
//
//   - each managed (OLAP) class's query velocity, from control-table rows
//     of queries that completed during the interval, falling back to
//     in-flight progress estimates when nothing completed (big queries can
//     outlive an interval); and
//   - the OLTP class's average response time, by sampling the engine's
//     snapshot monitor every SnapshotInterval seconds across the active
//     OLTP clients and averaging the samples — exactly the workaround the
//     paper describes for observing a class that is not intercepted.
type monitor struct {
	eng   *engine.Engine
	pat   *patroller.Patroller
	clock *simclock.Clock

	olapClasses []*workload.Class
	oltpClass   *workload.Class
	oltpClients func() []engine.ClientID

	oltpResp stats.Summary
	lastOLTP float64 // sticky last measured OLTP mean RT
	ticker   *simclock.Ticker

	// faults, when non-nil, can drop snapshot polls and whole harvests.
	faults MonitorFaultInjector
	// snapPolls/snapDropped count this interval's snapshot polls and how
	// many of them the fault injector swallowed.
	snapPolls   int
	snapDropped int

	// Per-class interval state lives in dense slices indexed by
	// (class - base): the submit/done hooks run once per query, so a map
	// lookup there is the dominant monitor cost at scale. trackedIDs keeps
	// the tracked classes in ascending id order for harvest iteration.
	base        engine.ClassID
	trackedIDs  []engine.ClassID
	velWindow   []stats.Summary // olap classes only; untracked slots stay unused
	hasVel      []bool
	arrivals    []int
	arrivalCost []stats.Summary
	inflight    []int
	//lint:ignore ckptcover class-tracking flags are construction wiring; a restored monitor is built over the same classes
	tracked []bool
}

func newMonitor(eng *engine.Engine, pat *patroller.Patroller, olap []*workload.Class,
	oltp *workload.Class, oltpClients func() []engine.ClientID, snapshotInterval float64) *monitor {

	m := &monitor{
		eng:         eng,
		pat:         pat,
		clock:       eng.Clock(),
		olapClasses: olap,
		oltpClass:   oltp,
		oltpClients: oltpClients,
	}
	lo, hi := engine.ClassID(0), engine.ClassID(0)
	first := true
	span := func(id engine.ClassID) {
		if first {
			lo, hi, first = id, id, false
			return
		}
		if id < lo {
			lo = id
		}
		if id > hi {
			hi = id
		}
	}
	for _, c := range olap {
		span(c.ID)
	}
	if oltp != nil {
		span(oltp.ID)
	}
	n := 0
	if !first {
		n = int(hi-lo) + 1
	}
	m.base = lo
	m.velWindow = make([]stats.Summary, n)
	m.hasVel = make([]bool, n)
	m.arrivals = make([]int, n)
	m.arrivalCost = make([]stats.Summary, n)
	m.inflight = make([]int, n)
	m.tracked = make([]bool, n)
	for _, c := range olap {
		m.hasVel[c.ID-lo] = true
		m.trackClass(c.ID)
	}
	if oltp != nil {
		m.trackClass(oltp.ID)
	}
	sort.Slice(m.trackedIDs, func(i, j int) bool { return m.trackedIDs[i] < m.trackedIDs[j] })
	// Arrivals are observed at the engine (not the patroller) so the
	// unintercepted OLTP class is characterized too.
	eng.OnSubmit(func(q *engine.Query) {
		// A retry is the same logical query re-entering the system, not a
		// new arrival; counting it would inflate the detector's demand
		// estimate. In-flight balance still holds because the engine
		// reports done/failed only for terminal outcomes.
		s := int(q.Class - m.base)
		if q.Attempt > 0 || s < 0 || s >= len(m.tracked) || !m.tracked[s] {
			return
		}
		m.arrivals[s]++
		m.inflight[s]++
		m.arrivalCost[s].Add(q.Cost)
	})
	eng.OnDone(func(q *engine.Query) {
		if s := int(q.Class - m.base); s >= 0 && s < len(m.tracked) && m.tracked[s] {
			m.inflight[s]--
		}
	})
	if oltp != nil {
		m.lastOLTP = oltp.Goal.Target // optimistic prior until measured
		m.ticker = m.clock.StartTicker(snapshotInterval, m.sampleSnapshot)
	}
	prev := pat.OnManagedDone
	pat.OnManagedDone = func(qi *patroller.QueryInfo) {
		if prev != nil {
			prev(qi)
		}
		m.onManagedDone(qi)
	}
	return m
}

// slot maps a tracked class to its dense index, panicking on a class the
// monitor was not built for (checkpoint/monitor mismatch).
func (m *monitor) slot(id engine.ClassID) int {
	s := int(id - m.base)
	if s < 0 || s >= len(m.tracked) || !m.tracked[s] {
		panic(fmt.Sprintf("core: monitor does not track class %d", id))
	}
	return s
}

// trackClass marks a class tracked (dedup-safe).
func (m *monitor) trackClass(id engine.ClassID) {
	s := int(id - m.base)
	if m.tracked[s] {
		return
	}
	m.tracked[s] = true
	m.trackedIDs = append(m.trackedIDs, id)
}

// onManagedDone folds a completed managed query's velocity into its
// class's interval window.
//
//qlint:hotpath
func (m *monitor) onManagedDone(qi *patroller.QueryInfo) {
	s := int(qi.Class - m.base)
	if s < 0 || s >= len(m.hasVel) || !m.hasVel[s] {
		return
	}
	w := &m.velWindow[s]
	resp := qi.DoneTime - qi.SubmitTime
	if resp <= 0 {
		w.Add(1)
		return
	}
	w.Add((qi.DoneTime - qi.ReleaseTime) / resp)
}

// sampleSnapshot polls the snapshot monitor: one response-time sample per
// active OLTP client that has finished at least one statement. A fault
// dropout loses the whole poll (all clients, this tick).
func (m *monitor) sampleSnapshot() {
	m.snapPolls++
	if m.faults != nil && m.faults.DropSnapshot(m.clock.Now()) {
		m.snapDropped++
		return
	}
	for _, id := range m.oltpClients() {
		if s, ok := m.eng.LastFinished(id); ok {
			m.oltpResp.Add(s.RespTime)
		}
	}
}

// Measurement is what the monitor hands the planner each control interval.
type Measurement struct {
	Time simclock.Time
	// Velocity holds each managed class's measured mean velocity.
	Velocity map[engine.ClassID]float64
	// VelocitySamples counts the completions behind each velocity (0
	// means the value is an in-flight estimate or idle default).
	VelocitySamples map[engine.ClassID]int
	// Idle marks managed classes that had neither completions nor
	// in-flight queries during the interval: no workload to speed up, so
	// any cost limit yields ideal velocity.
	Idle map[engine.ClassID]bool
	// OLTPRespTime is the OLTP class's mean response time over the
	// interval's snapshot samples (sticky from the previous interval if
	// no sample arrived).
	OLTPRespTime float64
	// OLTPSamples counts snapshot samples behind OLTPRespTime.
	OLTPSamples int
	// Arrivals counts the interval's submissions per tracked class —
	// input to workload detection.
	Arrivals map[engine.ClassID]int
	// ArrivalMeanCost is the mean timeron cost of the interval's
	// arrivals per class (0 when none arrived).
	ArrivalMeanCost map[engine.ClassID]float64
	// Population is the number of in-system (queued or executing)
	// queries per class at harvest time — with zero-think-time clients,
	// exactly the active client count. The detector's change signal.
	Population map[engine.ClassID]int
	// Dropped marks a harvest the fault injector swallowed whole: every
	// value above is zeroed and the interval's raw data is lost.
	Dropped bool
	// OLTPDropout marks an interval in which every snapshot poll was
	// fault-dropped, so OLTPRespTime is only the sticky previous value.
	OLTPDropout bool
}

// Clone returns a deep copy: the caller may hold or mutate it without
// aliasing the monitor's (or the plan history's) internal maps.
func (m Measurement) Clone() Measurement {
	m.Velocity = cloneMap(m.Velocity)
	m.VelocitySamples = cloneMap(m.VelocitySamples)
	m.Idle = cloneMap(m.Idle)
	m.Arrivals = cloneMap(m.Arrivals)
	m.ArrivalMeanCost = cloneMap(m.ArrivalMeanCost)
	m.Population = cloneMap(m.Population)
	return m
}

// cloneMap copies a per-class map, preserving nil.
func cloneMap[V any](m map[engine.ClassID]V) map[engine.ClassID]V {
	if m == nil {
		return nil
	}
	out := make(map[engine.ClassID]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// harvest closes the current interval: it computes the measurement and
// resets the windows. A fault-dropped harvest loses the interval's data
// entirely: the windows still reset (the raw samples are gone) and the
// planner receives a zeroed measurement flagged Dropped.
func (m *monitor) harvest() Measurement {
	if m.faults != nil && m.faults.DropHarvest(m.clock.Now()) {
		meas := Measurement{
			Time:            m.clock.Now(),
			Dropped:         true,
			Velocity:        make(map[engine.ClassID]float64),
			VelocitySamples: make(map[engine.ClassID]int),
			Idle:            make(map[engine.ClassID]bool),
			Arrivals:        make(map[engine.ClassID]int),
			ArrivalMeanCost: make(map[engine.ClassID]float64),
			Population:      make(map[engine.ClassID]int),
		}
		m.resetWindows()
		return meas
	}
	meas := Measurement{
		Time:            m.clock.Now(),
		Velocity:        make(map[engine.ClassID]float64),
		VelocitySamples: make(map[engine.ClassID]int),
		Idle:            make(map[engine.ClassID]bool),
	}
	// Index in-flight managed queries per class for fallback estimates.
	// Failed rows are terminal, not in flight — a progress estimate from
	// an aborted query would drag the class's velocity toward zero.
	held := make(map[engine.ClassID][]*patroller.QueryInfo)
	for _, qi := range m.pat.ControlTable() {
		if qi.State != patroller.Completed && qi.State != patroller.Failed {
			held[qi.Class] = append(held[qi.Class], qi)
		}
	}
	now := m.clock.Now()
	for _, c := range m.olapClasses {
		w := &m.velWindow[c.ID-m.base]
		switch {
		case w.Count() > 0:
			meas.Velocity[c.ID] = w.Mean()
			meas.VelocitySamples[c.ID] = w.Count()
		case len(held[c.ID]) > 0:
			// No completions: estimate velocity from in-flight progress.
			// A still-blocked query has velocity 0 so far; an executing
			// one has exec/(wait+exec) so far.
			var est stats.Summary
			for _, qi := range held[c.ID] {
				total := now - qi.SubmitTime
				if total <= 0 {
					continue
				}
				exec := 0.0
				if qi.State == patroller.Running {
					exec = now - qi.ReleaseTime
				}
				est.Add(exec / total)
			}
			if est.Count() > 0 {
				meas.Velocity[c.ID] = est.Mean()
			} else {
				meas.Velocity[c.ID] = 1
			}
		default:
			// Idle class: nothing to speed up; report the ideal and
			// flag it so the planner knows the limit is irrelevant.
			meas.Velocity[c.ID] = 1
			meas.Idle[c.ID] = true
		}
		w.Reset()
	}
	if m.oltpClass != nil {
		if m.oltpResp.Count() > 0 {
			m.lastOLTP = m.oltpResp.Mean()
			meas.OLTPSamples = m.oltpResp.Count()
		}
		meas.OLTPRespTime = m.lastOLTP
		meas.OLTPDropout = m.snapPolls > 0 && m.snapDropped == m.snapPolls
		m.oltpResp.Reset()
	}
	m.snapPolls, m.snapDropped = 0, 0
	meas.Arrivals = make(map[engine.ClassID]int, len(m.trackedIDs))
	meas.ArrivalMeanCost = make(map[engine.ClassID]float64, len(m.trackedIDs))
	meas.Population = make(map[engine.ClassID]int, len(m.trackedIDs))
	for _, cls := range m.trackedIDs {
		s := int(cls - m.base)
		meas.Arrivals[cls] = m.arrivals[s]
		meas.Population[cls] = m.inflight[s]
		if cs := &m.arrivalCost[s]; cs.Count() > 0 {
			meas.ArrivalMeanCost[cls] = cs.Mean()
			cs.Reset()
		}
		m.arrivals[s] = 0
	}
	return meas
}

// resetWindows discards the interval's accumulated samples — used when a
// fault drops the whole harvest.
func (m *monitor) resetWindows() {
	for i := range m.velWindow {
		m.velWindow[i].Reset()
	}
	m.oltpResp.Reset()
	for _, cls := range m.trackedIDs {
		s := int(cls - m.base)
		m.arrivals[s] = 0
		m.arrivalCost[s].Reset()
	}
	m.snapPolls, m.snapDropped = 0, 0
}

// stop halts the snapshot ticker.
func (m *monitor) stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// start re-arms the snapshot ticker after a stop (scheduler restart); a
// no-op on first start, when the constructor's ticker is still active.
func (m *monitor) start() {
	if m.ticker != nil {
		m.ticker.Start()
	}
}
