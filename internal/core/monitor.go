package core

import (
	"repro/internal/engine"
	"repro/internal/patroller"
	"repro/internal/simclock"
	"repro/internal/stats"
	"repro/internal/workload"
)

// monitor is the Query Scheduler's Monitor component. It measures, per
// control interval:
//
//   - each managed (OLAP) class's query velocity, from control-table rows
//     of queries that completed during the interval, falling back to
//     in-flight progress estimates when nothing completed (big queries can
//     outlive an interval); and
//   - the OLTP class's average response time, by sampling the engine's
//     snapshot monitor every SnapshotInterval seconds across the active
//     OLTP clients and averaging the samples — exactly the workaround the
//     paper describes for observing a class that is not intercepted.
type monitor struct {
	eng   *engine.Engine
	pat   *patroller.Patroller
	clock *simclock.Clock

	olapClasses []*workload.Class
	oltpClass   *workload.Class
	oltpClients func() []engine.ClientID

	velWindow map[engine.ClassID]*stats.Summary
	oltpResp  stats.Summary
	lastOLTP  float64 // sticky last measured OLTP mean RT
	ticker    *simclock.Ticker

	// faults, when non-nil, can drop snapshot polls and whole harvests.
	faults MonitorFaultInjector
	// snapPolls/snapDropped count this interval's snapshot polls and how
	// many of them the fault injector swallowed.
	snapPolls   int
	snapDropped int

	arrivals    map[engine.ClassID]int
	arrivalCost map[engine.ClassID]*stats.Summary
	inflight    map[engine.ClassID]int
	tracked     map[engine.ClassID]bool
}

func newMonitor(eng *engine.Engine, pat *patroller.Patroller, olap []*workload.Class,
	oltp *workload.Class, oltpClients func() []engine.ClientID, snapshotInterval float64) *monitor {

	m := &monitor{
		eng:         eng,
		pat:         pat,
		clock:       eng.Clock(),
		olapClasses: olap,
		oltpClass:   oltp,
		oltpClients: oltpClients,
		velWindow:   make(map[engine.ClassID]*stats.Summary),
		arrivals:    make(map[engine.ClassID]int),
		arrivalCost: make(map[engine.ClassID]*stats.Summary),
		inflight:    make(map[engine.ClassID]int),
		tracked:     make(map[engine.ClassID]bool),
	}
	for _, c := range olap {
		m.velWindow[c.ID] = &stats.Summary{}
		m.tracked[c.ID] = true
	}
	if oltp != nil {
		m.tracked[oltp.ID] = true
	}
	// Arrivals are observed at the engine (not the patroller) so the
	// unintercepted OLTP class is characterized too.
	eng.OnSubmit(func(q *engine.Query) {
		// A retry is the same logical query re-entering the system, not a
		// new arrival; counting it would inflate the detector's demand
		// estimate. In-flight balance still holds because the engine
		// reports done/failed only for terminal outcomes.
		if q.Attempt > 0 || !m.tracked[q.Class] {
			return
		}
		m.arrivals[q.Class]++
		m.inflight[q.Class]++
		cs, ok := m.arrivalCost[q.Class]
		if !ok {
			cs = &stats.Summary{}
			m.arrivalCost[q.Class] = cs
		}
		cs.Add(q.Cost)
	})
	eng.OnDone(func(q *engine.Query) {
		if m.tracked[q.Class] {
			m.inflight[q.Class]--
		}
	})
	if oltp != nil {
		m.lastOLTP = oltp.Goal.Target // optimistic prior until measured
		m.ticker = m.clock.StartTicker(snapshotInterval, m.sampleSnapshot)
	}
	prev := pat.OnManagedDone
	pat.OnManagedDone = func(qi *patroller.QueryInfo) {
		if prev != nil {
			prev(qi)
		}
		m.onManagedDone(qi)
	}
	return m
}

// onManagedDone folds a completed managed query's velocity into its
// class's interval window.
func (m *monitor) onManagedDone(qi *patroller.QueryInfo) {
	w, ok := m.velWindow[qi.Class]
	if !ok {
		return
	}
	resp := qi.DoneTime - qi.SubmitTime
	if resp <= 0 {
		w.Add(1)
		return
	}
	w.Add((qi.DoneTime - qi.ReleaseTime) / resp)
}

// sampleSnapshot polls the snapshot monitor: one response-time sample per
// active OLTP client that has finished at least one statement. A fault
// dropout loses the whole poll (all clients, this tick).
func (m *monitor) sampleSnapshot() {
	m.snapPolls++
	if m.faults != nil && m.faults.DropSnapshot(m.clock.Now()) {
		m.snapDropped++
		return
	}
	for _, id := range m.oltpClients() {
		if s, ok := m.eng.LastFinished(id); ok {
			m.oltpResp.Add(s.RespTime)
		}
	}
}

// Measurement is what the monitor hands the planner each control interval.
type Measurement struct {
	Time simclock.Time
	// Velocity holds each managed class's measured mean velocity.
	Velocity map[engine.ClassID]float64
	// VelocitySamples counts the completions behind each velocity (0
	// means the value is an in-flight estimate or idle default).
	VelocitySamples map[engine.ClassID]int
	// Idle marks managed classes that had neither completions nor
	// in-flight queries during the interval: no workload to speed up, so
	// any cost limit yields ideal velocity.
	Idle map[engine.ClassID]bool
	// OLTPRespTime is the OLTP class's mean response time over the
	// interval's snapshot samples (sticky from the previous interval if
	// no sample arrived).
	OLTPRespTime float64
	// OLTPSamples counts snapshot samples behind OLTPRespTime.
	OLTPSamples int
	// Arrivals counts the interval's submissions per tracked class —
	// input to workload detection.
	Arrivals map[engine.ClassID]int
	// ArrivalMeanCost is the mean timeron cost of the interval's
	// arrivals per class (0 when none arrived).
	ArrivalMeanCost map[engine.ClassID]float64
	// Population is the number of in-system (queued or executing)
	// queries per class at harvest time — with zero-think-time clients,
	// exactly the active client count. The detector's change signal.
	Population map[engine.ClassID]int
	// Dropped marks a harvest the fault injector swallowed whole: every
	// value above is zeroed and the interval's raw data is lost.
	Dropped bool
	// OLTPDropout marks an interval in which every snapshot poll was
	// fault-dropped, so OLTPRespTime is only the sticky previous value.
	OLTPDropout bool
}

// Clone returns a deep copy: the caller may hold or mutate it without
// aliasing the monitor's (or the plan history's) internal maps.
func (m Measurement) Clone() Measurement {
	m.Velocity = cloneMap(m.Velocity)
	m.VelocitySamples = cloneMap(m.VelocitySamples)
	m.Idle = cloneMap(m.Idle)
	m.Arrivals = cloneMap(m.Arrivals)
	m.ArrivalMeanCost = cloneMap(m.ArrivalMeanCost)
	m.Population = cloneMap(m.Population)
	return m
}

// cloneMap copies a per-class map, preserving nil.
func cloneMap[V any](m map[engine.ClassID]V) map[engine.ClassID]V {
	if m == nil {
		return nil
	}
	out := make(map[engine.ClassID]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// harvest closes the current interval: it computes the measurement and
// resets the windows. A fault-dropped harvest loses the interval's data
// entirely: the windows still reset (the raw samples are gone) and the
// planner receives a zeroed measurement flagged Dropped.
func (m *monitor) harvest() Measurement {
	if m.faults != nil && m.faults.DropHarvest(m.clock.Now()) {
		meas := Measurement{
			Time:            m.clock.Now(),
			Dropped:         true,
			Velocity:        make(map[engine.ClassID]float64),
			VelocitySamples: make(map[engine.ClassID]int),
			Idle:            make(map[engine.ClassID]bool),
			Arrivals:        make(map[engine.ClassID]int),
			ArrivalMeanCost: make(map[engine.ClassID]float64),
			Population:      make(map[engine.ClassID]int),
		}
		m.resetWindows()
		return meas
	}
	meas := Measurement{
		Time:            m.clock.Now(),
		Velocity:        make(map[engine.ClassID]float64),
		VelocitySamples: make(map[engine.ClassID]int),
		Idle:            make(map[engine.ClassID]bool),
	}
	// Index in-flight managed queries per class for fallback estimates.
	// Failed rows are terminal, not in flight — a progress estimate from
	// an aborted query would drag the class's velocity toward zero.
	held := make(map[engine.ClassID][]*patroller.QueryInfo)
	for _, qi := range m.pat.ControlTable() {
		if qi.State != patroller.Completed && qi.State != patroller.Failed {
			held[qi.Class] = append(held[qi.Class], qi)
		}
	}
	now := m.clock.Now()
	for _, c := range m.olapClasses {
		w := m.velWindow[c.ID]
		switch {
		case w.Count() > 0:
			meas.Velocity[c.ID] = w.Mean()
			meas.VelocitySamples[c.ID] = w.Count()
		case len(held[c.ID]) > 0:
			// No completions: estimate velocity from in-flight progress.
			// A still-blocked query has velocity 0 so far; an executing
			// one has exec/(wait+exec) so far.
			var est stats.Summary
			for _, qi := range held[c.ID] {
				total := now - qi.SubmitTime
				if total <= 0 {
					continue
				}
				exec := 0.0
				if qi.State == patroller.Running {
					exec = now - qi.ReleaseTime
				}
				est.Add(exec / total)
			}
			if est.Count() > 0 {
				meas.Velocity[c.ID] = est.Mean()
			} else {
				meas.Velocity[c.ID] = 1
			}
		default:
			// Idle class: nothing to speed up; report the ideal and
			// flag it so the planner knows the limit is irrelevant.
			meas.Velocity[c.ID] = 1
			meas.Idle[c.ID] = true
		}
		w.Reset()
	}
	if m.oltpClass != nil {
		if m.oltpResp.Count() > 0 {
			m.lastOLTP = m.oltpResp.Mean()
			meas.OLTPSamples = m.oltpResp.Count()
		}
		meas.OLTPRespTime = m.lastOLTP
		meas.OLTPDropout = m.snapPolls > 0 && m.snapDropped == m.snapPolls
		m.oltpResp.Reset()
	}
	m.snapPolls, m.snapDropped = 0, 0
	meas.Arrivals = make(map[engine.ClassID]int, len(m.arrivals))
	meas.ArrivalMeanCost = make(map[engine.ClassID]float64, len(m.arrivals))
	meas.Population = make(map[engine.ClassID]int, len(m.inflight))
	for cls := range m.tracked {
		meas.Arrivals[cls] = m.arrivals[cls]
		meas.Population[cls] = m.inflight[cls]
		if cs, ok := m.arrivalCost[cls]; ok && cs.Count() > 0 {
			meas.ArrivalMeanCost[cls] = cs.Mean()
			cs.Reset()
		}
		m.arrivals[cls] = 0
	}
	return meas
}

// resetWindows discards the interval's accumulated samples — used when a
// fault drops the whole harvest.
func (m *monitor) resetWindows() {
	for _, w := range m.velWindow {
		w.Reset()
	}
	m.oltpResp.Reset()
	for cls := range m.tracked {
		m.arrivals[cls] = 0
		if cs, ok := m.arrivalCost[cls]; ok {
			cs.Reset()
		}
	}
	m.snapPolls, m.snapDropped = 0, 0
}

// stop halts the snapshot ticker.
func (m *monitor) stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// start re-arms the snapshot ticker after a stop (scheduler restart); a
// no-op on first start, when the constructor's ticker is still active.
func (m *monitor) start() {
	if m.ticker != nil {
		m.ticker.Start()
	}
}
