package core

import "testing"

// Regression: StopWith(StopDrain) stops both the control ticker and the
// monitor's snapshot ticker. A later Start() used to re-arm only the
// control loop, so the OLTP class was never measured again — every
// post-restart plan ran on the stale sticky response time. Start() must
// undo all of the drain's side effects.
func TestStopDrainThenRestartResumesMeasurement(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	submitOLTPLoop(r, 1)
	submitOLTPLoop(r, 2)
	driveOLAPLoop(r, 31, 1, 1000, 10)
	r.clock.RunUntil(5 * 60)

	r.qs.StopWith(StopDrain)
	stopped := len(r.qs.History())
	r.clock.RunUntil(10 * 60)
	if n := len(r.qs.History()); n != stopped {
		t.Fatalf("control loop kept planning while stopped: %d -> %d records", stopped, n)
	}

	r.qs.Start()
	r.clock.RunUntil(20 * 60)
	hist := r.qs.History()
	if len(hist) <= stopped {
		t.Fatalf("control loop did not resume after restart: still %d records", len(hist))
	}
	last := hist[len(hist)-1]
	if last.Measurement.OLTPSamples == 0 {
		t.Fatal("monitor snapshot ticker not re-armed: no OLTP samples after restart")
	}
}

// Starting twice in a row must still panic; the restart path only
// applies to a scheduler that was stopped.
func TestDoubleStartStillPanics(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	r.qs.Start()
}
