package core

import (
	"strings"
	"testing"

	"repro/internal/engine"
)

// driveOLAPLoop keeps one closed-loop client of the class submitting
// fixed-size queries through the rig's patroller.
func driveOLAPLoop(r *rig, client engine.ClientID, class engine.ClassID, cost, work float64) {
	var submit func()
	submit = func() {
		r.eng.Submit(&engine.Query{
			Client: client,
			Class:  class,
			Cost:   cost,
			Demand: engine.Demand{Work: work, CPURate: 0.2, IORate: 1},
		})
	}
	r.eng.OnDone(func(q *engine.Query) {
		if q.Client == client {
			submit()
		}
	})
	submit()
}

func TestPlanRecordCarriesWorkloadCharacterization(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	driveOLAPLoop(r, 51, 1, 1000, 20)
	driveOLAPLoop(r, 52, 1, 1000, 20)
	r.clock.RunUntil(10 * 60)
	hist := r.qs.History()
	if len(hist) == 0 {
		t.Fatal("no plan records")
	}
	last := hist[len(hist)-1]
	if last.Workload == nil {
		t.Fatal("plan record missing workload characterization")
	}
	char := last.Workload[1]
	if char.Intervals == 0 {
		t.Fatal("class 1 never characterized")
	}
	// Two closed-loop clients: in-system population must hover at 2.
	if char.Population < 1.5 || char.Population > 2.5 {
		t.Fatalf("population = %v, want ~2", char.Population)
	}
	if char.MeanCost < 500 || char.MeanCost > 2000 {
		t.Fatalf("mean cost = %v, want ~1000", char.MeanCost)
	}
}

func TestMonitorCountsArrivalsAndPopulation(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ControlInterval = 100 })
	r.qs.Start()
	// Three queries submitted, all held by a tiny class limit... use
	// class 2 with default limits so they run; population = in-system.
	for i := 0; i < 3; i++ {
		r.eng.Submit(olapQuery(2, 500, 1e6)) // effectively never finish
	}
	r.clock.RunUntil(101)
	meas := r.qs.History()[0].Measurement
	if meas.Arrivals[2] != 3 {
		t.Fatalf("arrivals = %v", meas.Arrivals)
	}
	if meas.Population[2] != 3 {
		t.Fatalf("population = %v", meas.Population)
	}
	if meas.ArrivalMeanCost[2] < 400 || meas.ArrivalMeanCost[2] > 600 {
		t.Fatalf("mean arrival cost = %v", meas.ArrivalMeanCost[2])
	}
	// Second interval: no new arrivals, population persists.
	r.clock.RunUntil(201)
	meas = r.qs.History()[1].Measurement
	if meas.Arrivals[2] != 0 {
		t.Fatalf("second-interval arrivals = %v", meas.Arrivals[2])
	}
	if meas.Population[2] != 3 {
		t.Fatalf("second-interval population = %v", meas.Population[2])
	}
}

func TestDetectorSeesShiftThroughScheduler(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	// Phase 1: one client; phase 2 (after 30 intervals): five clients.
	driveOLAPLoop(r, 61, 1, 200, 5)
	r.clock.RunUntil(30 * 60)
	for i := 0; i < 4; i++ {
		id := engine.ClientID(70 + i)
		driveOLAPLoop(r, id, 1, 200, 5)
	}
	r.clock.RunUntil(60 * 60)
	shifts := r.qs.Detector().Shifts()
	found := false
	for _, s := range shifts {
		if s.Class == 1 && s.Direction == 1 && s.Time > 30*60 {
			found = true
		}
	}
	if !found {
		t.Fatalf("5x population jump not detected; shifts = %v", shifts)
	}
}

func TestFeedForwardSchedulerRuns(t *testing.T) {
	r := newRig(t, func(c *Config) { c.FeedForward = true })
	r.qs.Start()
	driveOLAPLoop(r, 81, 1, 1000, 10)
	driveOLAPLoop(r, 82, 2, 1000, 10)
	r.clock.RunUntil(15 * 60)
	hist := r.qs.History()
	if len(hist) < 10 {
		t.Fatalf("only %d plans with feed-forward", len(hist))
	}
	for _, rec := range hist {
		if rec.Limits.Sum() < 9999 {
			t.Fatalf("plan sum %v broken under feed-forward", rec.Limits.Sum())
		}
	}
}

func TestFeedForwardAnchorBounded(t *testing.T) {
	r := newRig(t, func(c *Config) { c.FeedForward = true })
	r.qs.Start()
	// Build detector history so forecasts have confidence.
	driveOLAPLoop(r, 91, 1, 1000, 10)
	r.clock.RunUntil(20 * 60)
	char := r.qs.Detector().Characterization(1)
	anchor := r.qs.feedForwardAnchor(1, 0.5, char)
	// The correction is clamped to [0.5x, 2x] of the measurement.
	if anchor < 0.25-1e-9 || anchor > 1.0+1e-9 {
		t.Fatalf("anchor %v outside clamp", anchor)
	}
}

func TestThroughputModelPathRuns(t *testing.T) {
	r := newRig(t, func(c *Config) { c.OLTPModel = ThroughputOLTPModel })
	r.qs.Start()
	submitOLTPLoop(r, 1)
	driveOLAPLoop(r, 55, 1, 1000, 10)
	r.clock.RunUntil(20 * 60)
	hist := r.qs.History()
	if len(hist) < 15 {
		t.Fatalf("control loop stalled under throughput model: %d plans", len(hist))
	}
	for _, rec := range hist {
		if rec.Limits.Sum() < 9999 {
			t.Fatalf("plan sum %v", rec.Limits.Sum())
		}
	}
}

func TestExplainPlan(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	submitOLTPLoop(r, 1)
	driveOLAPLoop(r, 57, 1, 1000, 10)
	r.clock.RunUntil(5 * 60)
	hist := r.qs.History()
	out := r.qs.ExplainPlan(hist[len(hist)-1])
	for _, want := range []string{"Plan at t=", "olap1", "oltp", "virtual limit", "snapshot samples"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
}
