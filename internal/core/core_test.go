package core

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/patroller"
	"repro/internal/simclock"
	"repro/internal/solver"
	"repro/internal/workload"
)

func testClasses() []*workload.Class {
	return []*workload.Class{
		{ID: 1, Name: "olap1", Kind: workload.OLAP, Goal: workload.Goal{Metric: workload.Velocity, Target: 0.4}, Importance: 1},
		{ID: 2, Name: "olap2", Kind: workload.OLAP, Goal: workload.Goal{Metric: workload.Velocity, Target: 0.6}, Importance: 2},
		{ID: 3, Name: "oltp", Kind: workload.OLTP, Goal: workload.Goal{Metric: workload.AvgResponseTime, Target: 0.25}, Importance: 3},
	}
}

type rig struct {
	clock *simclock.Clock
	eng   *engine.Engine
	pat   *patroller.Patroller
	qs    *QueryScheduler
}

func newRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	clock, eng, pat, qs := buildScheduler(t, mutate, testClasses())
	return &rig{clock: clock, eng: eng, pat: pat, qs: qs}
}

func buildScheduler(t *testing.T, mutate func(*Config), classes []*workload.Class) (
	*simclock.Clock, *engine.Engine, *patroller.Patroller, *QueryScheduler) {

	t.Helper()
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 2, IOCapacity: 14}, clock)
	var olap []engine.ClassID
	for _, c := range classes {
		if c.Kind == workload.OLAP {
			olap = append(olap, c.ID)
		}
	}
	pat := patroller.New(eng, olap...)
	cfg := DefaultConfig()
	cfg.SystemCostLimit = 10000
	cfg.PlanStep = 500
	if mutate != nil {
		mutate(&cfg)
	}
	qs, err := New(cfg, eng, pat, classes, func() []engine.ClientID { return []engine.ClientID{1, 2} })
	if err != nil {
		t.Fatal(err)
	}
	return clock, eng, pat, qs
}

func olapQuery(class engine.ClassID, cost, work float64) *engine.Query {
	return &engine.Query{Class: class, Cost: cost, Demand: engine.Demand{Work: work, CPURate: 0.2, IORate: 1}}
}

func TestNewValidation(t *testing.T) {
	clock := simclock.New()
	eng := engine.New(engine.DefaultConfig(), clock)
	classes := testClasses()
	clients := func() []engine.ClientID { return nil }

	// OLAP class not managed by the patroller.
	pat := patroller.New(eng, 1) // class 2 missing
	if _, err := New(DefaultConfig(), eng, pat, classes, clients); err == nil {
		t.Fatal("unmanaged OLAP class accepted")
	}

	// OLTP class managed by the patroller.
	eng2 := engine.New(engine.DefaultConfig(), simclock.New())
	pat2 := patroller.New(eng2, 1, 2, 3)
	if _, err := New(DefaultConfig(), eng2, pat2, classes, clients); err == nil {
		t.Fatal("intercepted OLTP class accepted")
	}

	// Missing OLTP client source.
	eng3 := engine.New(engine.DefaultConfig(), simclock.New())
	pat3 := patroller.New(eng3, 1, 2)
	if _, err := New(DefaultConfig(), eng3, pat3, classes, nil); err == nil {
		t.Fatal("nil client source accepted with an OLTP class")
	}

	// Two OLTP classes.
	eng4 := engine.New(engine.DefaultConfig(), simclock.New())
	pat4 := patroller.New(eng4, 1, 2)
	dup := append(append([]*workload.Class{}, classes...),
		&workload.Class{ID: 4, Kind: workload.OLTP, Goal: workload.Goal{Metric: workload.AvgResponseTime, Target: 1}, Importance: 1})
	if _, err := New(DefaultConfig(), eng4, pat4, dup, clients); err == nil {
		t.Fatal("two OLTP classes accepted")
	}

	// No classes.
	if _, err := New(DefaultConfig(), eng, pat, nil, clients); err == nil {
		t.Fatal("empty class list accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.SystemCostLimit = 0 },
		func(c *Config) { c.ControlInterval = 0 },
		func(c *Config) { c.SnapshotInterval = -1 },
		func(c *Config) { c.PlanStep = 0 },
		func(c *Config) { c.PlanStep = c.SystemCostLimit * 2 },
		func(c *Config) { c.MinOLAPLimit = -1 },
		func(c *Config) { c.Solver = nil },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.validate() == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if err := DefaultConfig().validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInitialPlanSplitsEqually(t *testing.T) {
	r := newRig(t, nil)
	plan := r.qs.CostLimits()
	for id, want := range map[engine.ClassID]float64{1: 10000.0 / 3, 2: 10000.0 / 3, 3: 10000.0 / 3} {
		if math.Abs(plan[id]-want) > 1e-9 {
			t.Fatalf("initial plan = %v", plan)
		}
	}
}

func TestCostLimitsReturnsCopy(t *testing.T) {
	r := newRig(t, nil)
	p := r.qs.CostLimits()
	p[1] = -1
	if r.qs.CostLimits()[1] == -1 {
		t.Fatal("CostLimits leaked internal state")
	}
}

func TestDispatcherRespectsClassLimits(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	// Initial limits: ~3333 per class. Submit class-1 queries of cost
	// 2000 each: only one fits.
	a := olapQuery(1, 2000, 100)
	b := olapQuery(1, 2000, 100)
	r.eng.Submit(a)
	r.eng.Submit(b)
	r.clock.RunUntil(1)
	if a.State != engine.StateExecuting {
		t.Fatalf("first query state %v", a.State)
	}
	if b.State != engine.StateQueued {
		t.Fatal("second query should exceed the class limit")
	}
}

func TestDispatcherIsolatesClasses(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	// Class 1 full; class 2 must still flow.
	r.eng.Submit(olapQuery(1, 3000, 100))
	blocked := olapQuery(1, 3000, 100)
	r.eng.Submit(blocked)
	other := olapQuery(2, 3000, 100)
	r.eng.Submit(other)
	r.clock.RunUntil(1)
	if blocked.State != engine.StateQueued {
		t.Fatal("class 1 over-admitted")
	}
	if other.State != engine.StateExecuting {
		t.Fatal("class 2 blocked by class 1's queue")
	}
}

func TestDispatcherHeadOfLinePerClass(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	big := olapQuery(1, 9000, 100) // bigger than the class limit
	small := olapQuery(1, 500, 100)
	r.eng.Submit(big)
	r.eng.Submit(small)
	r.clock.RunUntil(1)
	// Without the starvation guard the big head blocks only itself;
	// the small one behind it still fits the limit.
	if big.State != engine.StateQueued {
		t.Fatal("oversized query must wait")
	}
	if small.State != engine.StateExecuting {
		t.Fatal("small query should pass the blocked head")
	}
}

func TestStarvationGuardReleasesOversized(t *testing.T) {
	r := newRig(t, func(c *Config) { c.StarvationGuard = true })
	r.qs.Start()
	big := olapQuery(1, 9000, 100)
	r.eng.Submit(big)
	r.clock.RunUntil(1)
	if big.State != engine.StateExecuting {
		t.Fatal("starvation guard did not release the idle class's head")
	}
}

func TestUnknownClassReleasedImmediately(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	// Patroller manages class 1 and 2 only, so an unknown class can only
	// appear via a classifier change; simulate with a custom classifier.
	r.qs.SetClassifier(classifierFunc(func(qi *patroller.QueryInfo) engine.ClassID { return 42 }))
	q := olapQuery(1, 9999999, 10)
	r.eng.Submit(q)
	r.clock.RunUntil(1)
	if q.State != engine.StateExecuting {
		t.Fatal("query of unknown class stranded")
	}
}

type classifierFunc func(*patroller.QueryInfo) engine.ClassID

func (f classifierFunc) Classify(qi *patroller.QueryInfo) engine.ClassID { return f(qi) }

func TestPlanAlwaysSumsToSystemLimit(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	// Drive a small mixed load across several control intervals.
	for i := 0; i < 6; i++ {
		at := float64(i * 30)
		r.clock.At(at, func() { r.eng.Submit(olapQuery(1, 1500, 40)) })
		r.clock.At(at+1, func() { r.eng.Submit(olapQuery(2, 1500, 40)) })
	}
	r.clock.RunUntil(10 * 60)
	hist := r.qs.History()
	if len(hist) < 5 {
		t.Fatalf("only %d control intervals recorded", len(hist))
	}
	for _, rec := range hist {
		if math.Abs(rec.Limits.Sum()-10000) > 1e-6 {
			t.Fatalf("plan sum %v != system limit", rec.Limits.Sum())
		}
		for id, v := range rec.Limits {
			if v < 0 {
				t.Fatalf("negative limit for class %d: %v", id, v)
			}
		}
	}
}

func TestViolatedOLTPGainsVirtualLimit(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	// Saturate the OLTP clients: continuous slow transactions keep the
	// snapshot RT far above the 0.25 goal while OLAP classes are idle.
	submitOLTP := func(client engine.ClientID) {
		var loop func()
		loop = func() {
			q := &engine.Query{Client: client, Class: 3, Cost: 2,
				Demand: engine.Demand{Work: 1.0, CPURate: 1}}
			r.eng.Submit(q)
		}
		r.eng.OnDone(func(q *engine.Query) {
			if q.Client == client {
				loop()
			}
		})
		loop()
	}
	submitOLTP(1)
	submitOLTP(2)
	r.clock.RunUntil(15 * 60)
	hist := r.qs.History()
	last := hist[len(hist)-1]
	// OLTP (class 3) is violating badly; the planner should assign it
	// the lion's share of the virtual budget, squeezing OLAP to minimums.
	if last.Limits[3] < 8000 {
		t.Fatalf("violated OLTP limit = %v, want most of the budget (plan %v)", last.Limits[3], last.Limits)
	}
	if last.Limits[1] > 1500 || last.Limits[2] > 1500 {
		t.Fatalf("idle OLAP classes keep %v", last.Limits)
	}
	// The measurement should reflect the saturated RT (~2s with two
	// CPU-bound 1s queries sharing the box... actually 2 CPUs, so ~1s).
	if last.Measurement.OLTPRespTime < 0.5 {
		t.Fatalf("measured OLTP RT = %v, expected ~1s", last.Measurement.OLTPRespTime)
	}
	if last.Measurement.OLTPSamples == 0 {
		t.Fatal("no snapshot samples recorded")
	}
}

func TestIdleClassesMeasureVelocityOne(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	r.clock.RunUntil(120)
	hist := r.qs.History()
	for _, rec := range hist {
		if rec.Measurement.Velocity[1] != 1 || rec.Measurement.Velocity[2] != 1 {
			t.Fatalf("idle velocity = %v", rec.Measurement.Velocity)
		}
	}
}

func TestVelocityMeasuredFromCompletions(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ControlInterval = 200 })
	r.qs.Start()
	// One query held ~0s then runs 60s -> velocity ~1; it finishes well
	// inside the first 200s control interval.
	q := olapQuery(1, 1000, 60)
	r.eng.Submit(q)
	r.clock.RunUntil(201)
	hist := r.qs.History()
	if len(hist) != 1 {
		t.Fatalf("%d intervals", len(hist))
	}
	v := hist[0].Measurement.Velocity[1]
	if v < 0.95 || v > 1 {
		t.Fatalf("measured velocity = %v, want ~1", v)
	}
	if hist[0].Measurement.VelocitySamples[1] != 1 {
		t.Fatalf("velocity samples = %v", hist[0].Measurement.VelocitySamples)
	}
}

func TestInFlightVelocityFallback(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ControlInterval = 100 })
	r.qs.Start()
	// A very long query: no completions in the first interval, so the
	// monitor must estimate from in-flight progress (released at ~0,
	// running since: velocity ~1).
	q := olapQuery(1, 1000, 10000)
	r.eng.Submit(q)
	r.clock.RunUntil(101)
	hist := r.qs.History()
	v := hist[0].Measurement.Velocity[1]
	if v < 0.9 {
		t.Fatalf("in-flight velocity estimate = %v, want ~1 for a running query", v)
	}
	if hist[0].Measurement.VelocitySamples[1] != 0 {
		t.Fatal("in-flight estimate should report zero completion samples")
	}
}

func TestHeldQueryDragsInFlightVelocity(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ControlInterval = 100; c.MinOLAPLimit = 0 })
	r.qs.Start()
	// Squeeze class 1 to zero by classifying its queries into a class
	// whose limit is 0... simpler: submit a query too big for the class
	// limit; it stays held, so the in-flight estimate is 0.
	q := olapQuery(1, 9000, 10000)
	r.eng.Submit(q)
	r.clock.RunUntil(101)
	v := r.qs.History()[0].Measurement.Velocity[1]
	if v > 0.05 {
		t.Fatalf("held-query velocity estimate = %v, want ~0", v)
	}
}

func TestStartStopLifecycle(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	r.clock.RunUntil(120)
	n := len(r.qs.History())
	r.qs.Stop()
	r.clock.RunUntil(600)
	if len(r.qs.History()) != n {
		t.Fatal("control loop kept planning after Stop")
	}
	r.qs.Stop() // idempotent
}

func TestDoubleStartPanics(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	r.qs.Start()
}

func TestGridSolverDropIn(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Solver = solver.Grid{} })
	r.qs.Start()
	r.eng.Submit(olapQuery(1, 1500, 30))
	r.clock.RunUntil(180)
	if len(r.qs.History()) == 0 {
		t.Fatal("no plans with grid solver")
	}
}

func TestOLTPModelExposed(t *testing.T) {
	r := newRig(t, nil)
	if r.qs.OLTPModel() == nil {
		t.Fatal("nil OLTP model")
	}
}

func TestNoOLTPClassScheduler(t *testing.T) {
	clock := simclock.New()
	eng := engine.New(engine.Config{CPUCapacity: 2, IOCapacity: 14}, clock)
	pat := patroller.New(eng, 1, 2)
	classes := testClasses()[:2]
	cfg := DefaultConfig()
	cfg.SystemCostLimit = 10000
	qs, err := New(cfg, eng, pat, classes, nil)
	if err != nil {
		t.Fatal(err)
	}
	qs.Start()
	eng.Submit(olapQuery(1, 1000, 30))
	clock.RunUntil(120)
	hist := qs.History()
	if len(hist) == 0 {
		t.Fatal("no planning without OLTP class")
	}
	if math.Abs(hist[0].Limits.Sum()-10000) > 1e-6 {
		t.Fatal("plan sum wrong without OLTP class")
	}
}
