// Checkpoint state for the Query Scheduler: the current plan, the full
// plan history, the control and snapshot tickers, and the monitor's
// interval windows, plus the embedded perfmodel and detector state.
//
// Restore runs on a freshly constructed and Start()ed scheduler after
// Clock.Restore has wiped the heap: the constructor-scheduled ticker
// events are gone and RestoreCheckpoint re-arms them with the
// checkpointed refs, so they fire with the original sequence numbers.
package core

import (
	"fmt"
	"sort"

	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/simclock"
	"repro/internal/solver"
	"repro/internal/stats"
)

// PlanEntry is one class's cost limit in serialized (sorted) form.
type PlanEntry struct {
	Class engine.ClassID
	Limit float64
}

// ClassCount is a per-class integer in serialized (sorted) form.
type ClassCount struct {
	Class engine.ClassID
	N     int
}

// ClassSummary is a per-class Summary in serialized (sorted) form.
type ClassSummary struct {
	Class engine.ClassID
	S     stats.SummaryState
}

// ClassWindow is a per-class SLO window in serialized (sorted) form.
type ClassWindow struct {
	Class  engine.ClassID
	Window obs.SLOWindowState
}

// MonitorState is the monitor's serializable state.
type MonitorState struct {
	VelWindow   []ClassSummary // sorted by class
	OLTPResp    stats.SummaryState
	LastOLTP    float64
	SnapPolls   int
	SnapDropped int
	Arrivals    []ClassCount   // sorted by class
	ArrivalCost []ClassSummary // sorted by class
	Inflight    []ClassCount   // sorted by class
	HasTicker   bool
	Ticker      simclock.TickerState
}

// CheckpointState is the scheduler's serializable state.
type CheckpointState struct {
	Limits    []PlanEntry // sorted by class
	History   []PlanRecord
	HeldTicks int
	Running   bool
	Ticker    simclock.TickerState
	OLTPModel perfmodel.OLTPResponseState
	OLTPTput  perfmodel.OLTPThroughputState
	Detector  detect.CheckpointState
	Monitor   MonitorState
	// SLO accounting (attainment counters and burn-rate windows), so a
	// resumed run's qs_slo_* gauges and decision-log columns continue
	// byte-identically.
	SLOObserved []ClassCount  // sorted by class
	SLOMet      []ClassCount  // sorted by class
	SLOWindows  []ClassWindow // sorted by class
	// SystemCostLimit is the budget in force at the boundary: a fleet
	// controller may have re-targeted it via SetSystemCostLimit since
	// construction, so the config value alone is not authoritative.
	SystemCostLimit float64
}

func planEntries(p solver.Plan) []PlanEntry {
	out := make([]PlanEntry, 0, len(p))
	for class, limit := range p {
		out = append(out, PlanEntry{Class: class, Limit: limit})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// CheckpointState captures the scheduler at a quiescent boundary.
func (qs *QueryScheduler) CheckpointState() CheckpointState {
	st := CheckpointState{
		Limits:    planEntries(qs.limits),
		History:   qs.History(), // deep copy — gob encoding must not alias live maps
		HeldTicks: qs.heldTicks,
		Running:   qs.running,
		OLTPModel: qs.oltpModel.CheckpointState(),
		OLTPTput:  qs.oltpTput.CheckpointState(),
		Detector:  qs.detector.CheckpointState(),
		Monitor:   qs.mon.checkpointState(),

		SystemCostLimit: qs.cfg.SystemCostLimit,
	}
	if qs.ticker != nil {
		st.Ticker = qs.ticker.State()
	}
	st.SLOObserved = classCounts(qs.sloObserved)
	st.SLOMet = classCounts(qs.sloMet)
	for _, id := range sortedSLOClasses(qs.sloWin) {
		st.SLOWindows = append(st.SLOWindows, ClassWindow{Class: id, Window: qs.sloWin[id].State()})
	}
	return st
}

// classCounts serializes a per-class counter map sorted by class.
func classCounts(m map[engine.ClassID]int) []ClassCount {
	out := make([]ClassCount, 0, len(m))
	for class, n := range m {
		out = append(out, ClassCount{Class: class, N: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// sortedSLOClasses returns the window map's keys in ascending order.
func sortedSLOClasses(m map[engine.ClassID]*obs.SLOWindow) []engine.ClassID {
	ids := make([]engine.ClassID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RestoreCheckpoint overwrites a freshly started scheduler with a
// checkpointed state and re-arms its control ticker.
func (qs *QueryScheduler) RestoreCheckpoint(st CheckpointState) {
	if len(qs.history) != 0 {
		panic("core: checkpoint restore onto a used scheduler")
	}
	qs.limits = make(solver.Plan, len(st.Limits))
	for _, e := range st.Limits {
		qs.limits[e.Class] = e.Limit
	}
	qs.history = st.History
	qs.heldTicks = st.HeldTicks
	qs.running = st.Running
	if st.SystemCostLimit > 0 {
		qs.cfg.SystemCostLimit = st.SystemCostLimit
	}
	qs.ticker.Restore(st.Ticker.Ref, st.Ticker.Active)
	qs.oltpModel.RestoreCheckpoint(st.OLTPModel)
	qs.oltpTput.RestoreCheckpoint(st.OLTPTput)
	qs.detector.RestoreCheckpoint(st.Detector)
	qs.mon.restoreCheckpoint(st.Monitor)
	for _, rec := range st.SLOObserved {
		qs.sloOwn(rec.Class)
		qs.sloObserved[rec.Class] = rec.N
	}
	for _, rec := range st.SLOMet {
		qs.sloOwn(rec.Class)
		qs.sloMet[rec.Class] = rec.N
	}
	for _, rec := range st.SLOWindows {
		qs.sloOwn(rec.Class)
		qs.sloWin[rec.Class].SetState(rec.Window)
	}
}

// sloOwn panics when a checkpoint names a class this scheduler was not
// constructed with — the same construction-mismatch guard the monitor
// applies.
func (qs *QueryScheduler) sloOwn(class engine.ClassID) {
	if _, ok := qs.sloWin[class]; !ok {
		panic(fmt.Sprintf("core: restore: SLO state for unknown class %d", class))
	}
}

func (m *monitor) checkpointState() MonitorState {
	st := MonitorState{
		OLTPResp:    m.oltpResp.State(),
		LastOLTP:    m.lastOLTP,
		SnapPolls:   m.snapPolls,
		SnapDropped: m.snapDropped,
	}
	// trackedIDs is kept sorted, so every per-class list below is too.
	for _, class := range m.trackedIDs {
		s := int(class - m.base)
		if m.hasVel[s] {
			st.VelWindow = append(st.VelWindow, ClassSummary{Class: class, S: m.velWindow[s].State()})
		}
		st.Arrivals = append(st.Arrivals, ClassCount{Class: class, N: m.arrivals[s]})
		st.ArrivalCost = append(st.ArrivalCost, ClassSummary{Class: class, S: m.arrivalCost[s].State()})
		st.Inflight = append(st.Inflight, ClassCount{Class: class, N: m.inflight[s]})
	}
	if m.ticker != nil {
		st.HasTicker = true
		st.Ticker = m.ticker.State()
	}
	return st
}

func (m *monitor) restoreCheckpoint(st MonitorState) {
	for _, rec := range st.VelWindow {
		s := int(rec.Class - m.base)
		if s < 0 || s >= len(m.hasVel) || !m.hasVel[s] {
			panic(fmt.Sprintf("core: restore: velocity window for unknown class %d", rec.Class))
		}
		m.velWindow[s].SetState(rec.S)
	}
	m.oltpResp.SetState(st.OLTPResp)
	m.lastOLTP = st.LastOLTP
	m.snapPolls, m.snapDropped = st.SnapPolls, st.SnapDropped
	for _, rec := range st.Arrivals {
		m.arrivals[m.slot(rec.Class)] = rec.N
	}
	for _, rec := range st.ArrivalCost {
		m.arrivalCost[m.slot(rec.Class)].SetState(rec.S)
	}
	for _, rec := range st.Inflight {
		m.inflight[m.slot(rec.Class)] = rec.N
	}
	if st.HasTicker != (m.ticker != nil) {
		panic("core: restore: snapshot ticker presence mismatch")
	}
	if m.ticker != nil {
		m.ticker.Restore(st.Ticker.Ref, st.Ticker.Active)
	}
}
