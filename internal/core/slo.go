// SLO attainment accounting for the Query Scheduler: one observation
// per measured control tick per class — did the class's harvested metric
// meet its goal — folded into a cumulative attainment ratio and a
// sliding-window error-budget burn rate (obs.SLOWindow). The results
// ride on every PlanRecord, feeding the qs_slo_* gauges, the decision
// audit log, and qreport's attainment tables.
package core

import (
	"repro/internal/engine"
	"repro/internal/workload"
)

// sloObserve folds one harvested measurement into the scheduler's SLO
// accounting and returns the per-class attainment ratio and burn rate
// after this tick. Classes without a trustworthy measurement this tick
// — idle OLAP classes, an OLTP interval with no sampled responses, or
// any fault-dropped view — keep their accumulated state and are simply
// re-reported.
func (qs *QueryScheduler) sloObserve(meas Measurement) (att, burn map[engine.ClassID]float64) {
	att = make(map[engine.ClassID]float64, len(qs.classes))
	burn = make(map[engine.ClassID]float64, len(qs.classes))
	for _, c := range qs.classes {
		var v float64
		observed := false
		if !meas.Dropped {
			switch c.Kind {
			case workload.OLAP:
				if !meas.Idle[c.ID] {
					v, observed = meas.Velocity[c.ID], true
				}
			case workload.OLTP:
				if meas.OLTPSamples > 0 && !meas.OLTPDropout {
					v, observed = meas.OLTPRespTime, true
				}
			}
		}
		if observed {
			qs.sloObserved[c.ID]++
			met := c.Goal.Met(v)
			if met {
				qs.sloMet[c.ID]++
			}
			qs.sloWin[c.ID].Observe(met)
		}
		att[c.ID] = qs.sloAttainment(c.ID)
		burn[c.ID] = qs.sloWin[c.ID].BurnRate(qs.cfg.SLOBudget)
	}
	return att, burn
}

// sloAttainment returns the class's cumulative goal-attainment ratio —
// the fraction of measured ticks that met the goal. With nothing
// measured yet it reports 1: no evidence of violation.
func (qs *QueryScheduler) sloAttainment(id engine.ClassID) float64 {
	n := qs.sloObserved[id]
	if n == 0 {
		return 1
	}
	return float64(qs.sloMet[id]) / float64(n)
}
