package core

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

func TestUnreachableOLTPGoalDoesNotWedge(t *testing.T) {
	// Goal 1ms is physically impossible; the scheduler must keep
	// producing valid plans (squeezing OLAP to minimums) without
	// panicking or starving the budget.
	classes := testClasses()
	classes[2].Goal = workload.Goal{Metric: workload.AvgResponseTime, Target: 0.001}
	r := newRigWithClasses(t, nil, classes)
	r.qs.Start()
	submitOLTPLoop(r, 1)
	submitOLTPLoop(r, 2)
	driveOLAPLoop(r, 31, 1, 1000, 10)
	r.clock.RunUntil(20 * 60)
	hist := r.qs.History()
	if len(hist) < 15 {
		t.Fatalf("control loop stalled: %d plans", len(hist))
	}
	last := hist[len(hist)-1]
	if math.Abs(last.Limits.Sum()-10000) > 1e-6 {
		t.Fatalf("plan sum %v", last.Limits.Sum())
	}
	// The violated important class holds the largest share. It does not
	// necessarily take everything: with a physically hopeless goal the
	// marginal utility of further resources vanishes (the prediction
	// cannot reach the goal), so the solver rationally stops bidding —
	// resources that cannot fix the SLO still serve the other classes.
	if last.Limits[3] < last.Limits[1] || last.Limits[3] < last.Limits[2] {
		t.Fatalf("starving class 3 not favored: %v", last.Limits)
	}
}

func TestOverloadStormDrains(t *testing.T) {
	// A burst of 200 OLAP queries lands at once; every one must
	// eventually run and complete under the class limits.
	r := newRig(t, nil)
	r.qs.Start()
	for i := 0; i < 200; i++ {
		r.eng.Submit(olapQuery(1, 800, 2))
	}
	r.clock.RunUntil(6 * 3600)
	st := r.eng.Stats()
	if st.Completed != 200 {
		t.Fatalf("only %d/200 completed after six hours", st.Completed)
	}
	if r.pat.HeldCount() != 0 {
		t.Fatalf("%d queries still held", r.pat.HeldCount())
	}
}

func TestZeroCostQueriesFlow(t *testing.T) {
	// Estimation noise can round a cost to ~0; the dispatcher must not
	// divide by it or loop.
	r := newRig(t, nil)
	r.qs.Start()
	for i := 0; i < 5; i++ {
		q := olapQuery(1, 0, 1)
		r.eng.Submit(q)
	}
	r.clock.RunUntil(60)
	if r.eng.Stats().Completed != 5 {
		t.Fatalf("zero-cost queries stuck: %d done", r.eng.Stats().Completed)
	}
}

func TestSchedulerSurvivesClientlessIntervals(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	// No load at all for an hour: plans must keep flowing and stay valid.
	r.clock.RunUntil(3600)
	hist := r.qs.History()
	if len(hist) < 50 {
		t.Fatalf("%d plans over an idle hour", len(hist))
	}
	for _, rec := range hist {
		if rec.Limits.Sum() < 9999 {
			t.Fatalf("idle plan sum %v", rec.Limits.Sum())
		}
		if rec.Measurement.OLTPSamples != 0 {
			t.Fatal("phantom OLTP samples while idle")
		}
	}
}

// newRigWithClasses mirrors newRig with custom classes.
func newRigWithClasses(t *testing.T, mutate func(*Config), classes []*workload.Class) *rig {
	t.Helper()
	r := &rig{}
	r.clock, r.eng, r.pat, r.qs = buildScheduler(t, mutate, classes)
	return r
}

func submitOLTPLoop(r *rig, client engine.ClientID) {
	var submit func()
	submit = func() {
		r.eng.Submit(&engine.Query{
			Client: client,
			Class:  3,
			Cost:   2,
			Demand: engine.Demand{Work: 0.5, CPURate: 1},
		})
	}
	r.eng.OnDone(func(q *engine.Query) {
		if q.Client == client && q.Class == 3 {
			submit()
		}
	})
	submit()
}
