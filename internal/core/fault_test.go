package core

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
)

// fakeFaults drops every harvest inside [from, to) — a deterministic
// stand-in for the fault injector's MonitorFaultInjector contract.
type fakeFaults struct{ from, to float64 }

func (f fakeFaults) DropSnapshot(t float64) bool { return false }
func (f fakeFaults) DropHarvest(t float64) bool  { return t >= f.from && t < f.to }

func TestHistoryReturnsDeepCopies(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	driveOLAPLoop(r, 51, 1, 1000, 20)
	submitOLTPLoop(r, 61)
	r.clock.RunUntil(5 * 60)

	hist := r.qs.History()
	if len(hist) == 0 {
		t.Fatal("no plans")
	}
	last := hist[len(hist)-1]
	wantLimit := last.Limits[1]
	wantVel := last.Measurement.Velocity[1]

	// A caller scribbling on the returned record must not reach the
	// scheduler's live maps.
	last.Limits[1] += 4242
	last.Measurement.Velocity[1] = -1
	if last.Predicted != nil {
		last.Predicted[1] = -1
	}

	again := r.qs.History()[len(hist)-1]
	if again.Limits[1] != wantLimit {
		t.Fatalf("live limits mutated through History: %v", again.Limits[1])
	}
	if again.Measurement.Velocity[1] != wantVel {
		t.Fatalf("live measurement mutated through History: %v", again.Measurement.Velocity[1])
	}
	if lim := r.qs.CostLimits()[1]; lim != wantLimit {
		t.Fatalf("scheduler's working plan mutated: %v", lim)
	}
}

func TestOnPlanHookReceivesDeepCopies(t *testing.T) {
	r := newRig(t, nil)
	var seen []PlanRecord
	r.qs.OnPlan(func(rec PlanRecord) {
		rec.Limits[1] = -99 // hostile hook: must not reach the scheduler
		rec.Measurement.Velocity[1] = -99
		seen = append(seen, rec)
	})
	r.qs.Start()
	driveOLAPLoop(r, 51, 1, 1000, 20)
	r.clock.RunUntil(5 * 60)
	if len(seen) == 0 {
		t.Fatal("hook never fired")
	}
	for i, rec := range r.qs.History() {
		if rec.Limits[1] == -99 || rec.Measurement.Velocity[1] == -99 {
			t.Fatalf("record %d aliased into the hook's copy", i)
		}
	}
	if r.qs.CostLimits()[1] == -99 {
		t.Fatal("working plan aliased into the hook's copy")
	}
}

func TestBlockedClassRecoversWithinTwoTicks(t *testing.T) {
	// One oversized class-1 query: costlier than the initial class limit,
	// so it sits held and the class measures velocity 0 while plainly not
	// idle. The anchored velocity floor must keep the predicted gradient
	// alive so the solver grows the limit and releases the query within
	// two control ticks of the first zero-velocity harvest.
	r := newRig(t, nil)
	r.qs.Start()
	big := olapQuery(1, 6000, 30)
	r.eng.Submit(big)
	if big.State != engine.StateQueued {
		t.Fatalf("state = %v, want held at cost 6000", big.State)
	}
	interval := DefaultConfig().ControlInterval
	r.clock.RunUntil(3 * interval)
	if big.State == engine.StateQueued {
		t.Fatalf("query still held after two ticks past the first harvest; limits = %v",
			r.qs.CostLimits())
	}
	r.clock.RunUntil(3600)
	if big.State != engine.StateDone {
		t.Fatalf("state = %v", big.State)
	}
}

func TestStopDrainReleasesEveryHeldQuery(t *testing.T) {
	r := newRig(t, nil)
	r.qs.Start()
	var queries []*engine.Query
	for i := 0; i < 40; i++ {
		q := olapQuery(1, 800, 60)
		queries = append(queries, q)
		r.eng.Submit(q)
	}
	r.clock.RunUntil(30)
	if r.pat.HeldCount() == 0 {
		t.Fatal("test needs a backlog of held queries")
	}
	r.qs.StopWith(StopDrain)
	r.clock.Run()
	if held := r.pat.HeldCount(); held != 0 {
		t.Fatalf("%d queries still held after drain", held)
	}
	for i, q := range queries {
		if q.State != engine.StateDone {
			t.Fatalf("query %d state = %v after drain", i, q.State)
		}
	}
}

func TestStopFreezeKeepsFrozenLimits(t *testing.T) {
	// StopFreeze halts the control loop but does not force-release the
	// backlog: held queries stay held until normal admission under the
	// frozen limits frees budget for them (unlike StopDrain, which
	// installs ReleaseAll and empties the hold queue immediately).
	r := newRig(t, nil)
	r.qs.Start()
	for i := 0; i < 40; i++ {
		r.eng.Submit(olapQuery(1, 800, 60))
	}
	r.clock.RunUntil(30)
	before := r.pat.HeldCount()
	if before == 0 {
		t.Fatal("test needs a backlog of held queries")
	}
	frozen := r.qs.CostLimits()
	plans := len(r.qs.History())
	r.qs.Stop()
	// Every query carries 60s of work, so nothing completes before t=60:
	// with no completion pokes and no ReleaseAll, the backlog must be
	// exactly as deep as it was at the stop.
	r.clock.RunUntil(45)
	if held := r.pat.HeldCount(); held != before {
		t.Fatalf("held = %d at t=45, want %d (freeze must not force-release)", held, before)
	}
	// The plan is frozen for good: no further control ticks, no new
	// history records, limits byte-identical to the stop-time plan.
	r.clock.Run()
	if got := len(r.qs.History()); got != plans {
		t.Fatalf("history grew from %d to %d records after Stop", plans, got)
	}
	for id, lim := range r.qs.CostLimits() {
		if frozen[id] != lim {
			t.Fatalf("limit[%d] drifted after Stop: %v -> %v", id, frozen[id], lim)
		}
	}
}

func TestDroppedHarvestHoldsPlan(t *testing.T) {
	interval := DefaultConfig().ControlInterval
	r := newRig(t, func(cfg *Config) {
		cfg.MonitorFaults = fakeFaults{from: 4.5 * interval, to: 11.5 * interval}
		cfg.Degradation = Degradation{HoldPlanOnDropout: true, MaxHeldTicks: 2}
	})
	reg := obs.New(func() float64 { return r.clock.Now() })
	r.qs.Instrument(reg)
	r.qs.Start()
	driveOLAPLoop(r, 51, 1, 1000, 20)
	submitOLTPLoop(r, 61)
	r.clock.RunUntil(15 * interval)

	hist := r.qs.History()
	var held, consecutive, maxConsecutive int
	for i, rec := range hist {
		if !rec.Held {
			consecutive = 0
			continue
		}
		held++
		consecutive++
		if consecutive > maxConsecutive {
			maxConsecutive = consecutive
		}
		if i == 0 {
			t.Fatal("first record held with nothing to hold")
		}
		prev := hist[i-1]
		for id, lim := range rec.Limits {
			if prev.Limits[id] != lim {
				t.Fatalf("held record %d changed limit[%d]: %v -> %v", i, id, prev.Limits[id], lim)
			}
		}
		if rec.Workload != nil || rec.Predicted != nil {
			t.Fatalf("held record %d carries model state: %+v", i, rec)
		}
	}
	if held == 0 {
		t.Fatal("no held records despite a dropped-harvest window")
	}
	if maxConsecutive > 2 {
		t.Fatalf("%d consecutive held ticks exceeds MaxHeldTicks 2", maxConsecutive)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "qs_plan_held_total") {
		t.Fatal("qs_plan_held_total missing from exposition")
	}
}

func TestDegradationOffFeedsDroppedHarvestThrough(t *testing.T) {
	interval := DefaultConfig().ControlInterval
	r := newRig(t, func(cfg *Config) {
		cfg.MonitorFaults = fakeFaults{from: 4.5 * interval, to: 6.5 * interval}
	})
	r.qs.Start()
	driveOLAPLoop(r, 51, 1, 1000, 20)
	r.clock.RunUntil(8 * interval)
	for _, rec := range r.qs.History() {
		if rec.Held {
			t.Fatal("plan held with degradation disabled")
		}
	}
}
