package queueing

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLittlesLaw(t *testing.T) {
	if LittlesLaw(10, 0.5) != 5 {
		t.Fatal("N = X·R broken")
	}
}

func TestUtilizationLaw(t *testing.T) {
	if UtilizationLaw(100, 0.005) != 0.5 {
		t.Fatal("U = X·S broken")
	}
}

func TestInteractiveResponse(t *testing.T) {
	if got := InteractiveResponse(20, 4, 2); !almost(got, 3, 1e-12) {
		t.Fatalf("R = %v, want N/X - Z = 3", got)
	}
	if !math.IsInf(InteractiveResponse(5, 0, 1), 1) {
		t.Fatal("zero throughput must yield infinite response")
	}
}

func TestMM1KnownValues(t *testing.T) {
	r, err := MM1(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.Utilization, 0.5, 1e-12) {
		t.Fatalf("rho = %v", r.Utilization)
	}
	if !almost(r.MeanResponse, 2, 1e-12) {
		t.Fatalf("R = %v, want 1/(mu-lambda) = 2", r.MeanResponse)
	}
	if !almost(r.MeanInSystem, 1, 1e-12) {
		t.Fatalf("N = %v, want rho/(1-rho) = 1", r.MeanInSystem)
	}
	if !almost(r.MeanWait, 1, 1e-12) {
		t.Fatalf("W = %v", r.MeanWait)
	}
	// Little's law cross-check.
	if !almost(LittlesLaw(0.5, r.MeanResponse), r.MeanInSystem, 1e-12) {
		t.Fatal("MM1 violates Little's law")
	}
}

func TestMM1Unstable(t *testing.T) {
	if _, err := MM1(2, 1); err == nil {
		t.Fatal("unstable M/M/1 accepted")
	}
	if _, err := MM1(-1, 1); err == nil {
		t.Fatal("negative lambda accepted")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// c=1 reduces to rho.
	p, err := ErlangC(1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p, 0.6, 1e-12) {
		t.Fatalf("ErlangC(1, 0.6) = %v, want rho", p)
	}
	// Classic tabulated value: c=2, a=1 -> 1/3.
	p, err = ErlangC(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p, 1.0/3, 1e-9) {
		t.Fatalf("ErlangC(2, 1) = %v, want 1/3", p)
	}
	// Saturated.
	p, _ = ErlangC(2, 2.5)
	if p != 1 {
		t.Fatalf("saturated Erlang-C = %v, want 1", p)
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	a, err := MMc(1, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := MM1(0.5, 1)
	if !almost(a.MeanResponse, b.MeanResponse, 1e-9) || !almost(a.MeanWait, b.MeanWait, 1e-9) {
		t.Fatalf("MMc(1) = %+v, MM1 = %+v", a, b)
	}
}

func TestMMcPoolingBeatsSplitQueues(t *testing.T) {
	// Two pooled servers beat one server at half the load (pooling
	// effect): response time of M/M/2 at lambda < response of M/M/1 at
	// lambda/2... actually the comparison is waits; check waits.
	two, err := MMc(2, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	one, err := MM1(0.75, 1)
	if err != nil {
		t.Fatal(err)
	}
	if two.MeanWait >= one.MeanWait {
		t.Fatalf("pooling effect violated: MM2 wait %v >= split %v", two.MeanWait, one.MeanWait)
	}
}

func TestMMcLittleCrossCheck(t *testing.T) {
	r, err := MMc(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(LittlesLaw(2, r.MeanResponse), r.MeanInSystem, 1e-9) {
		t.Fatal("MMc violates Little's law")
	}
}

func TestAsymptoticBounds(t *testing.T) {
	// D = 2s total, bottleneck 1s on 1 server, Z = 8s think.
	b := AsymptoticBounds(5, 2, 1, 1, 8)
	// Below the knee (N* = 10): X bounded by N/(D+Z).
	if !almost(b.MaxThroughput, 0.5, 1e-12) {
		t.Fatalf("X bound = %v, want 0.5", b.MaxThroughput)
	}
	if !almost(b.Knee, 10, 1e-12) {
		t.Fatalf("knee = %v, want 10", b.Knee)
	}
	// Far above the knee: X bounded by c/Dmax, R grows linearly.
	b = AsymptoticBounds(50, 2, 1, 1, 8)
	if !almost(b.MaxThroughput, 1, 1e-12) {
		t.Fatalf("saturated X bound = %v, want 1", b.MaxThroughput)
	}
	if !almost(b.MinResponse, 42, 1e-12) {
		t.Fatalf("R bound = %v, want N·Dmax - Z = 42", b.MinResponse)
	}
}

func TestMVASingleQueueMatchesClosedForm(t *testing.T) {
	// One PS queue with demand D and a think station Z: the classic
	// machine-repairman model; for N=1, X = 1/(D+Z).
	res, err := MVA([]Station{{Demand: 1}, {Demand: 4, Delay: true}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Throughput, 0.2, 1e-12) {
		t.Fatalf("X(1) = %v, want 0.2", res.Throughput)
	}
	if !almost(res.Response, 1, 1e-12) {
		t.Fatalf("R(1) = %v, want D", res.Response)
	}
}

func TestMVAApproachesBottleneckBound(t *testing.T) {
	stations := []Station{{Demand: 0.5}, {Demand: 2, Delay: true}}
	res, err := MVA(stations, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Throughput, 2, 0.01) {
		t.Fatalf("X(100) = %v, want ~1/Dmax = 2", res.Throughput)
	}
	// Interactive response-time law must hold exactly in MVA.
	want := InteractiveResponse(100, res.Throughput, 2)
	if !almost(res.Response, want, 1e-9) {
		t.Fatalf("R = %v, law says %v", res.Response, want)
	}
}

func TestMVAThroughputMonotoneInPopulation(t *testing.T) {
	stations := []Station{{Demand: 1}, {Demand: 0.4}, {Demand: 3, Delay: true}}
	prev := 0.0
	for n := 1; n <= 30; n++ {
		res, err := MVA(stations, n)
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput < prev-1e-12 {
			t.Fatalf("throughput not monotone at N=%d", n)
		}
		prev = res.Throughput
	}
	if prev > 1/1.0 {
		t.Fatalf("throughput %v exceeded bottleneck bound", prev)
	}
}

func TestMVAValidation(t *testing.T) {
	if _, err := MVA([]Station{{Demand: 1}}, 0); err == nil {
		t.Fatal("population 0 accepted")
	}
	if _, err := MVA([]Station{{Demand: -1}}, 1); err == nil {
		t.Fatal("negative demand accepted")
	}
}
