// Package queueing provides the analytic queueing-theory references the
// test suite validates the simulated engine against: operational laws
// (Little, utilization), open M/M/1 and M/M/c formulas, asymptotic bounds
// for closed interactive systems, and exact Mean Value Analysis for
// closed product-form networks.
//
// The reproduction's evaluation rests on a simulator instead of the
// paper's hardware, so the simulator itself must be defensible: the
// engine_validation tests check that, in the regimes where closed-form
// results exist (processor sharing is product-form), the engine's
// throughput and response times match theory, not just intuition.
package queueing

import (
	"fmt"
	"math"
)

// --- Operational laws ---

// LittlesLaw returns the mean population N = X·R implied by throughput X
// and mean residence time R.
func LittlesLaw(throughput, residence float64) float64 {
	return throughput * residence
}

// UtilizationLaw returns the utilization U = X·S implied by throughput X
// and mean service demand S (per server when divided by server count).
func UtilizationLaw(throughput, service float64) float64 {
	return throughput * service
}

// InteractiveResponse returns the response-time law for a closed
// interactive system: R = N/X − Z (N clients, throughput X, think time Z).
func InteractiveResponse(n float64, throughput, think float64) float64 {
	if throughput <= 0 {
		return math.Inf(1)
	}
	return n/throughput - think
}

// --- Open systems ---

// MM1 returns the steady-state metrics of an M/M/1 queue.
type MM1Result struct {
	Utilization  float64
	MeanInSystem float64 // jobs
	MeanResponse float64 // seconds
	MeanWait     float64 // seconds (excluding service)
}

// MM1 evaluates an M/M/1 queue with arrival rate lambda and service rate
// mu (jobs/second). It returns an error for an unstable system.
func MM1(lambda, mu float64) (MM1Result, error) {
	if lambda < 0 || mu <= 0 {
		return MM1Result{}, fmt.Errorf("queueing: invalid rates λ=%v µ=%v", lambda, mu)
	}
	rho := lambda / mu
	if rho >= 1 {
		return MM1Result{}, fmt.Errorf("queueing: unstable M/M/1 (ρ=%v)", rho)
	}
	r := 1 / (mu - lambda)
	return MM1Result{
		Utilization:  rho,
		MeanInSystem: rho / (1 - rho),
		MeanResponse: r,
		MeanWait:     r - 1/mu,
	}, nil
}

// ErlangC returns the probability an arriving job waits in an M/M/c
// queue with offered load a = λ/µ and c servers.
func ErlangC(c int, a float64) (float64, error) {
	if c < 1 || a < 0 {
		return 0, fmt.Errorf("queueing: invalid Erlang-C inputs c=%d a=%v", c, a)
	}
	if a >= float64(c) {
		return 1, nil // saturated: everyone waits
	}
	// Sum a^k/k! computed iteratively for numerical stability.
	term := 1.0
	sum := 1.0
	for k := 1; k < c; k++ {
		term *= a / float64(k)
		sum += term
	}
	term *= a / float64(c)
	last := term * float64(c) / (float64(c) - a)
	return last / (sum + last), nil
}

// MMc evaluates an M/M/c queue.
func MMc(c int, lambda, mu float64) (MM1Result, error) {
	if lambda < 0 || mu <= 0 || c < 1 {
		return MM1Result{}, fmt.Errorf("queueing: invalid M/M/c inputs")
	}
	a := lambda / mu
	if a >= float64(c) {
		return MM1Result{}, fmt.Errorf("queueing: unstable M/M/c (a=%v, c=%d)", a, c)
	}
	pw, err := ErlangC(c, a)
	if err != nil {
		return MM1Result{}, err
	}
	wait := pw / (float64(c)*mu - lambda)
	return MM1Result{
		Utilization:  a / float64(c),
		MeanInSystem: a + pw*a/(float64(c)-a),
		MeanResponse: wait + 1/mu,
		MeanWait:     wait,
	}, nil
}

// --- Closed systems ---

// AsymptoticBounds returns the classic closed-system bounds for N
// clients, total service demand D at the bottleneck station, per-visit
// demand Dmax at the bottleneck (with c servers), and think time Z:
//
//	X(N) <= min(N/(D+Z), c/Dmax)
//	R(N) >= max(D, N·Dmax/c − Z)
type Bounds struct {
	MaxThroughput float64
	MinResponse   float64
	// Knee is the client count N* = c·(D+Z)/Dmax where the two
	// throughput bounds cross — the population where queueing begins.
	Knee float64
}

// AsymptoticBounds computes the bounds above.
func AsymptoticBounds(n float64, totalDemand, bottleneckDemand float64, servers int, think float64) Bounds {
	c := float64(servers)
	xMax := math.Min(n/(totalDemand+think), c/bottleneckDemand)
	rMin := math.Max(totalDemand, n*bottleneckDemand/c-think)
	return Bounds{
		MaxThroughput: xMax,
		MinResponse:   rMin,
		Knee:          c * (totalDemand + think) / bottleneckDemand,
	}
}

// Station describes one service station of a closed product-form network
// for MVA: the per-visit service demand (visit ratio folded in) and the
// number of servers (1 for a queueing station; use Delay for pure delays).
type Station struct {
	Demand float64
	Delay  bool // infinite-server (think/delay) station
}

// MVAResult is the output of exact Mean Value Analysis.
type MVAResult struct {
	Throughput float64
	Response   float64   // total residence time across queueing stations
	Residence  []float64 // per-station residence times at population N
}

// MVA runs exact single-class Mean Value Analysis for a closed network
// with the given stations and population n. Single-server stations are
// treated as PS/FCFS exponential (product form); Delay stations
// contribute their demand with no queueing.
func MVA(stations []Station, n int) (MVAResult, error) {
	if n < 1 {
		return MVAResult{}, fmt.Errorf("queueing: MVA population %d < 1", n)
	}
	for i, s := range stations {
		if s.Demand < 0 {
			return MVAResult{}, fmt.Errorf("queueing: station %d negative demand", i)
		}
	}
	queueLen := make([]float64, len(stations))
	var res MVAResult
	for pop := 1; pop <= n; pop++ {
		residence := make([]float64, len(stations))
		var total float64
		for i, s := range stations {
			if s.Delay {
				residence[i] = s.Demand
			} else {
				residence[i] = s.Demand * (1 + queueLen[i])
			}
			total += residence[i]
		}
		x := float64(pop) / total
		for i := range stations {
			queueLen[i] = x * residence[i]
		}
		res = MVAResult{Throughput: x, Response: total, Residence: residence}
	}
	// Response conventionally excludes delay stations.
	for i, s := range stations {
		if s.Delay {
			res.Response -= res.Residence[i]
		}
	}
	return res, nil
}
