// Checkpoint support: the engine's mutable state — executing queries,
// counters, the snapshot monitor, the armed completion event — exports to
// a plain-data CheckpointState and restores onto a freshly constructed
// engine. Restore must run after the clock has been restored (the
// completion event is re-armed with its original scheduling triple) and
// before any new simulation activity.
package engine

import (
	"sort"

	"repro/internal/simclock"
)

// QueryRecord is one query's serializable state. It also serves
// controllers (the patroller) that checkpoint queries they hold outside
// the engine's active set.
type QueryRecord struct {
	ID         QueryID
	Client     ClientID
	Class      ClassID
	Template   string
	Cost       float64
	Demand     Demand
	Attempt    int
	State      State
	SubmitTime simclock.Time
	StartTime  simclock.Time
	DoneTime   simclock.Time
	Remaining  float64
}

// RecordQuery captures a query's full state for a checkpoint.
func RecordQuery(q *Query) QueryRecord {
	return QueryRecord{
		ID:         q.ID,
		Client:     q.Client,
		Class:      q.Class,
		Template:   q.Template,
		Cost:       q.Cost,
		Demand:     q.Demand,
		Attempt:    q.Attempt,
		State:      q.State,
		SubmitTime: q.SubmitTime,
		StartTime:  q.StartTime,
		DoneTime:   q.DoneTime,
		Remaining:  q.remaining,
	}
}

// RebuildQuery reconstructs a query object from its record. The query is
// detached (not in any engine's active set); the restoring controller
// re-links it wherever the original lived.
func RebuildQuery(rec QueryRecord) *Query {
	return &Query{
		ID:         rec.ID,
		Client:     rec.Client,
		Class:      rec.Class,
		Template:   rec.Template,
		Cost:       rec.Cost,
		Demand:     rec.Demand,
		Attempt:    rec.Attempt,
		State:      rec.State,
		SubmitTime: rec.SubmitTime,
		StartTime:  rec.StartTime,
		DoneTime:   rec.DoneTime,
		remaining:  rec.Remaining,
		index:      -1,
	}
}

// ClassWeightRecord is one entry of the class-weight map, serialized in
// sorted order.
type ClassWeightRecord struct {
	Class  ClassID
	Weight float64
}

// CheckpointState is the engine's serializable state at a quiescent
// boundary. Progress rates are not stored: they are a deterministic
// function of the active set, weights, and speed, recomputed on restore.
type CheckpointState struct {
	NextID        QueryID
	LastUpdate    simclock.Time
	Speed         float64
	Stats         Stats
	Snapshots     []Snapshot // sorted by client id
	HasWeights    bool
	Weights       []ClassWeightRecord // sorted by class id
	Active        []QueryRecord       // in active-slice order (listener firing order)
	HasCompletion bool
	Completion    simclock.EventRef
}

// CheckpointState captures the engine for a checkpoint. The engine must be
// quiescent: no event at or before the current time may be pending.
func (e *Engine) CheckpointState() CheckpointState {
	st := CheckpointState{
		NextID:     e.nextID,
		LastUpdate: e.lastUpdate,
		Speed:      e.speed,
		Stats:      e.stats,
		HasWeights: e.weights != nil,
	}
	for id, ok := range e.snapsSet {
		if ok {
			st.Snapshots = append(st.Snapshots, e.snaps[id])
		}
	}
	for _, s := range e.snapsFar {
		st.Snapshots = append(st.Snapshots, s)
	}
	sort.Slice(st.Snapshots, func(i, j int) bool { return st.Snapshots[i].Client < st.Snapshots[j].Client })
	for c, w := range e.weights {
		st.Weights = append(st.Weights, ClassWeightRecord{Class: c, Weight: w})
	}
	sort.Slice(st.Weights, func(i, j int) bool { return st.Weights[i].Class < st.Weights[j].Class })
	for _, q := range e.active {
		st.Active = append(st.Active, RecordQuery(q))
	}
	if e.hasEvt {
		ref, ok := e.clock.Ref(e.pendingEvt)
		if !ok {
			panic("engine: pending completion event not found in clock")
		}
		st.HasCompletion = true
		st.Completion = ref
	}
	return st
}

// RestoreCheckpoint overwrites a freshly constructed engine with a
// checkpointed state, rebuilding the active queries in their original
// order and re-arming the completion event. The clock must already be
// restored to the checkpoint's time.
func (e *Engine) RestoreCheckpoint(st CheckpointState) {
	if len(e.active) != 0 || e.stats.Submitted != 0 {
		panic("engine: checkpoint restore onto a used engine")
	}
	e.nextID = st.NextID
	e.lastUpdate = st.LastUpdate
	e.speed = st.Speed
	e.stats = st.Stats
	e.snaps, e.snapsSet, e.snapsFar = nil, nil, nil
	for _, s := range st.Snapshots {
		e.recordSnapshot(s)
	}
	if st.HasWeights {
		e.weights = make(map[ClassID]float64, len(st.Weights))
		for _, w := range st.Weights {
			e.weights[w.Class] = w.Weight
		}
	} else {
		e.weights = nil
	}
	e.active = make([]*Query, 0, len(st.Active))
	for i, rec := range st.Active {
		q := RebuildQuery(rec)
		q.index = i
		e.active = append(e.active, q)
	}
	e.recomputeRates()
	e.hasEvt = false
	if st.HasCompletion {
		e.clock.RestoreEvent(st.Completion, e.completionFn)
		e.pendingEvt = st.Completion.ID
		e.hasEvt = true
	}
}

// ActiveQuery returns the executing query with the given id, or nil —
// restoring controllers use it to re-link their references to the
// engine's rebuilt query objects.
func (e *Engine) ActiveQuery(id QueryID) *Query {
	for _, q := range e.active {
		if q.ID == id {
			return q
		}
	}
	return nil
}
